// Evaluation metrics (paper §VI): turnaround time, fairness, IPC geomean,
// plus the pair-selection statistics behind Table V.
#pragma once

#include <cstdint>
#include <vector>

#include "sched/thread_manager.hpp"
#include "workloads/groups.hpp"

namespace synpa::metrics {

struct WorkloadMetrics {
    double turnaround_quanta = 0.0;  ///< time of the slowest original task
    double fairness = 0.0;           ///< 1 - sigma(IS) / mu(IS)   [24]
    double ipc_geomean = 0.0;        ///< geomean of per-app SMT IPCs
    double antt = 0.0;               ///< average normalized turnaround (1/IS mean)
    std::vector<double> individual_speedups;  ///< per slot, IPC_smt / IPC_st
};

/// Derives all metrics from one completed run.
WorkloadMetrics compute_metrics(const sched::RunResult& run);

/// TT speedup of `optimized` over `baseline` (>1 = optimized is faster).
double turnaround_speedup(const WorkloadMetrics& baseline, const WorkloadMetrics& optimized);

/// IPC speedup of `optimized` over `baseline`.
double ipc_speedup(const WorkloadMetrics& baseline, const WorkloadMetrics& optimized);

/// Table V statistics: how often slot X ran with slot Y, split by whether X
/// behaved frontend- or backend-dominant that quantum, and the fraction of
/// time X was paired with a partner from the *other* static group
/// ("diff. group" column — the synergistic-pair rate).
struct PairBehaviorStats {
    int slots = 0;
    /// fe_share[x][y] = % of x's quanta where x was frontend-dominant while
    /// paired with y; be_share[x][y] analogous for backend-dominant.
    std::vector<std::vector<double>> fe_share;
    std::vector<std::vector<double>> be_share;
    /// % of quanta in which the pairing was cross-group (frontend-behaving
    /// task with a backend-bound partner, or vice versa).
    std::vector<double> diff_group_pct;
};

/// `slot_groups` gives each workload slot's static Table III group.
PairBehaviorStats pair_behavior_stats(const sched::RunResult& run,
                                      const std::vector<workloads::Group>& slot_groups);

}  // namespace synpa::metrics
