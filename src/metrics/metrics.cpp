#include "metrics/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "common/stats.hpp"

namespace synpa::metrics {

WorkloadMetrics compute_metrics(const sched::RunResult& run) {
    WorkloadMetrics m;
    m.turnaround_quanta = run.turnaround_quanta;

    std::vector<double> speedups, ipcs, inverse;
    for (const sched::TaskOutcome& out : run.outcomes) {
        speedups.push_back(out.individual_speedup);
        ipcs.push_back(out.ipc_smt);
        if (out.individual_speedup > 0.0) inverse.push_back(1.0 / out.individual_speedup);
    }
    m.individual_speedups = speedups;
    if (!speedups.empty()) {
        const double mu = common::mean(speedups);
        const double sigma = common::stddev(speedups);
        m.fairness = mu > 0.0 ? 1.0 - sigma / mu : 0.0;
    }
    m.ipc_geomean = common::geomean(ipcs);
    m.antt = inverse.empty() ? 0.0 : common::mean(inverse);
    return m;
}

double turnaround_speedup(const WorkloadMetrics& baseline, const WorkloadMetrics& optimized) {
    return optimized.turnaround_quanta > 0.0
               ? baseline.turnaround_quanta / optimized.turnaround_quanta
               : 0.0;
}

double ipc_speedup(const WorkloadMetrics& baseline, const WorkloadMetrics& optimized) {
    return baseline.ipc_geomean > 0.0 ? optimized.ipc_geomean / baseline.ipc_geomean : 0.0;
}

PairBehaviorStats pair_behavior_stats(const sched::RunResult& run,
                                      const std::vector<workloads::Group>& slot_groups) {
    const int n = static_cast<int>(run.traces.size());
    PairBehaviorStats stats;
    stats.slots = n;
    stats.fe_share.assign(static_cast<std::size_t>(n),
                          std::vector<double>(static_cast<std::size_t>(n), 0.0));
    stats.be_share = stats.fe_share;
    stats.diff_group_pct.assign(static_cast<std::size_t>(n), 0.0);

    for (int x = 0; x < n; ++x) {
        const auto& trace = run.traces[static_cast<std::size_t>(x)];
        if (trace.empty()) continue;
        double cross = 0.0, total = 0.0;
        for (const sched::QuantumTrace& t : trace) {
            if (t.corunner_slot < 0 || t.corunner_slot >= n) continue;
            auto& share = t.frontend_dominant ? stats.fe_share : stats.be_share;
            share[static_cast<std::size_t>(x)][static_cast<std::size_t>(t.corunner_slot)] +=
                1.0;
            total += 1.0;
            const workloads::Group partner =
                slot_groups[static_cast<std::size_t>(t.corunner_slot)];
            // Synergistic: frontend behaviour next to a backend-bound
            // partner, or backend behaviour next to a frontend-bound one.
            if ((t.frontend_dominant && partner == workloads::Group::kBackendBound) ||
                (!t.frontend_dominant && partner == workloads::Group::kFrontendBound))
                cross += 1.0;
        }
        if (total > 0.0) {
            for (int y = 0; y < n; ++y) {
                stats.fe_share[static_cast<std::size_t>(x)][static_cast<std::size_t>(y)] *=
                    100.0 / total;
                stats.be_share[static_cast<std::size_t>(x)][static_cast<std::size_t>(y)] *=
                    100.0 / total;
            }
            stats.diff_group_pct[static_cast<std::size_t>(x)] = 100.0 * cross / total;
        }
    }
    return stats;
}

}  // namespace synpa::metrics
