#include "exp/aggregators.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "metrics/metrics.hpp"

namespace synpa::exp {
namespace {

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default: out += c;
        }
    }
    return out;
}

std::string joined_samples(const std::vector<double>& xs, char sep) {
    std::ostringstream os;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        if (i) os << sep;
        os << xs[i];
    }
    return os.str();
}

}  // namespace

GroupFn workload_prefix_group() {
    return [](const std::string& workload) { return workload.substr(0, 2); };
}

GroupMeanAggregator::GroupMeanAggregator(MetricFn metric, GroupFn group)
    : metric_(std::move(metric)), group_(std::move(group)) {}

void GroupMeanAggregator::on_cell(const CellResult& cell) {
    const std::string group = group_(cell.workload);
    if (std::find(group_order_.begin(), group_order_.end(), group) == group_order_.end())
        group_order_.push_back(group);
    groups_[{cell.policy, group}].add(metric_(cell));
}

PairedSpeedupAggregator::PairedSpeedupAggregator(std::string baseline_label)
    : baseline_label_(std::move(baseline_label)) {}

void PairedSpeedupAggregator::on_cell(const CellResult& cell) {
    const std::pair<std::size_t, std::size_t> key{cell.config_index, cell.workload_index};
    if (cell.policy == baseline_label_) {
        baselines_[key] = cell.result.mean_metrics;
        return;
    }
    const auto it = baselines_.find(key);
    if (it == baselines_.end()) return;  // baseline column absent or later in grid
    rows_.push_back(
        {cell.policy, paired_comparison(cell.workload, it->second, cell.result.mean_metrics)});
}

std::vector<workloads::PolicyComparison> PairedSpeedupAggregator::comparisons(
    const std::string& treatment) const {
    std::vector<workloads::PolicyComparison> out;
    for (const auto& row : rows_)
        if (row.treatment == treatment) out.push_back(row.comparison);
    return out;
}

CsvAggregator::CsvAggregator(std::ostream& os) : os_(os) {}

void CsvAggregator::on_cell(const CellResult& cell) {
    if (!header_written_) {
        os_ << "config,chips,cores,smt_ways,workload,policy,adaptive,turnaround_quanta,"
               "fairness,ipc_geomean,antt,reps_kept,turnaround_samples\n";
        header_written_ = true;
    }
    const auto& m = cell.result.mean_metrics;
    os_ << cell.config_index << ',' << cell.chips << ',' << cell.cores << ','
        << cell.smt_ways << ',' << cell.workload << ',' << cell.policy << ','
        << (cell.adaptive ? 1 : 0) << ',' << m.turnaround_quanta << ','
        << m.fairness << ',' << m.ipc_geomean << ',' << m.antt << ','
        << cell.result.turnaround_samples.size() << ','
        << joined_samples(cell.result.turnaround_samples, ';') << '\n';
}

void CsvAggregator::finish() { os_.flush(); }

JsonAggregator::JsonAggregator(std::ostream& os) : os_(os) {}

void JsonAggregator::on_cell(const CellResult& cell) {
    os_ << (first_ ? "[\n" : ",\n");
    first_ = false;
    const auto& m = cell.result.mean_metrics;
    os_ << "  {\"config\": " << cell.config_index << ", \"chips\": " << cell.chips
        << ", \"cores\": " << cell.cores
        << ", \"smt_ways\": " << cell.smt_ways << ", \"workload\": \""
        << json_escape(cell.workload) << "\", \"policy\": \"" << json_escape(cell.policy)
        << "\", \"turnaround_quanta\": " << m.turnaround_quanta
        << ", \"fairness\": " << m.fairness << ", \"ipc_geomean\": " << m.ipc_geomean
        << ", \"antt\": " << m.antt << ", \"turnaround_samples\": ["
        << joined_samples(cell.result.turnaround_samples, ',') << "]}";
}

void JsonAggregator::finish() {
    os_ << (first_ ? "[]\n" : "\n]\n");
    os_.flush();
}

}  // namespace synpa::exp
