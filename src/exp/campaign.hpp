// The parallel campaign engine.
//
// The paper's evaluation (Figures 5-9, Tables III-V) is a grid of
// (config x workload x policy x repetition) simulator runs.  A Campaign
// declares that grid once — which configs, which workloads (explicit or
// the paper's 20), which policies, which shared artifacts (trained model,
// suite characterization, phase calibration) — and the CampaignRunner
// executes every repetition over a persistent thread pool.
//
// Determinism: each repetition derives its RNG streams purely from
// (methodology seed, workload name, rep), and finished cells are released
// to aggregators in grid order through a reorder buffer, so campaign
// results are bit-identical for threads=1 and threads=N.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "exp/artifact_cache.hpp"
#include "model/trainer.hpp"
#include "sched/policy.hpp"
#include "uarch/sim_config.hpp"
#include "workloads/methodology.hpp"
#include "workloads/workload.hpp"

namespace synpa::exp {

/// Shared inputs resolved (through the ArtifactCache) for one campaign
/// config before any of its cells run.  Entries the campaign did not
/// request stay null.
struct ArtifactSet {
    std::shared_ptr<const model::TrainingResult> training;
    std::shared_ptr<const std::vector<workloads::AppCharacterization>> characterizations;
};

/// One policy column of the grid.  The factory runs once per repetition and
/// receives the config's artifacts plus the deterministic repetition seed.
struct PolicySpec {
    std::string label;
    std::function<std::unique_ptr<sched::AllocationPolicy>(const ArtifactSet&,
                                                           std::uint64_t rep_seed)>
        make;
    /// Policy retrains its model online (sched::OnlinePolicy); flows into
    /// result rows and the CSV `adaptive` column.
    bool adaptive = false;
};

/// Adapts a methodology-level PolicyFactory (no artifact inputs).
PolicySpec policy(std::string label, workloads::PolicyFactory factory);

/// A grid column for a registered policy name (sched/registry.hpp): the
/// factory feeds the config's trained model (when resolved) and the
/// repetition seed into sched::make_policy.  Throws for unknown names.
PolicySpec registry_policy(std::string name);

/// Expands a `policy=` axis of registered names into grid columns.
std::vector<PolicySpec> registry_policies(std::span<const std::string> names);

/// Declarative description of an evaluation grid.
struct Campaign {
    std::string name;

    /// Grid axes.  `configs` must be non-empty; `workloads` lists explicit
    /// specs, or set `use_paper_workloads` to expand the paper's twenty
    /// evaluation workloads per config (from its suite characterization).
    std::vector<uarch::SimConfig> configs;
    std::vector<workloads::WorkloadSpec> workloads;
    bool use_paper_workloads = false;
    std::vector<PolicySpec> policies;
    /// Registered policy names appended to `policies` as additional grid
    /// columns (expanded through registry_policy); lets campaigns declare a
    /// `policy=` axis by name with no compile-time wiring.
    std::vector<std::string> policy_names;

    /// Repetitions, seeds, profiling windows, CV discard (paper §V-B).
    workloads::MethodologyOptions methodology;

    /// Shared artifacts.  Training and characterization are resolved once
    /// per config through the ArtifactCache; calibration fills in the
    /// suite's oracle phase categories (needed by OraclePolicy).
    bool needs_training = false;
    model::TrainerOptions trainer;
    std::vector<std::string> training_apps;  ///< empty = workloads::training_apps()
    bool needs_characterizations = false;
    std::uint64_t characterization_quanta = 60;
    bool needs_calibration = false;
    std::uint64_t calibration_quanta = 30;
};

/// One finished grid point.
struct CellResult {
    std::size_t config_index = 0;
    std::size_t workload_index = 0;
    std::size_t policy_index = 0;
    int chips = 0;     ///< platform shape of the cell's config
    int cores = 0;     ///< cores per chip
    int smt_ways = 0;  ///< SMT width of the cell's config
    std::string workload;
    std::string policy;    ///< PolicySpec label
    bool adaptive = false; ///< policy column retrains its model online
    workloads::RepeatedResult result;
};

/// Streaming consumer of finished cells.  on_cell is called exactly once
/// per cell, in grid order (config-major, then workload, then policy),
/// regardless of how execution interleaves across threads.
class Aggregator {
public:
    virtual ~Aggregator() = default;
    virtual void on_cell(const CellResult& cell) = 0;
    /// Called once after the last cell.
    virtual void finish() {}
};

struct CampaignResult {
    std::vector<CellResult> cells;  ///< grid order
    /// The shared artifacts the runner resolved, one per campaign config —
    /// so consumers (e.g. bench_table5) reuse exactly what the cells saw
    /// instead of re-deriving cache keys.
    std::vector<ArtifactSet> artifacts;
    std::size_t reps_executed = 0;
    double wall_seconds = 0.0;

    /// First cell matching (workload, policy label); null when absent.
    const CellResult* find(const std::string& workload, const std::string& policy) const;
};

class CampaignRunner {
public:
    struct Options {
        std::size_t threads = 0;      ///< workers; 0 = hardware concurrency
        std::ostream* log = nullptr;  ///< optional per-cell progress lines
    };

    /// `cache` defaults to ArtifactCache::global(); pass a local cache to
    /// isolate artifact reuse (tests do).
    CampaignRunner();
    explicit CampaignRunner(Options opts, ArtifactCache* cache = nullptr);

    /// Executes the whole grid; streams cells into `aggregators` (in grid
    /// order) and returns them all.  The first exception thrown by any
    /// repetition is rethrown here after the grid drains.
    CampaignResult run(const Campaign& campaign,
                       const std::vector<Aggregator*>& aggregators = {});

private:
    Options opts_;
    ArtifactCache* cache_;
    common::ThreadPool pool_;  ///< persistent across run() calls
};

/// The paper's paired speedups/deltas for one workload's (baseline,
/// treatment) metrics — the single definition shared by compare_to_baseline
/// and PairedSpeedupAggregator.
workloads::PolicyComparison paired_comparison(const std::string& workload,
                                              const metrics::WorkloadMetrics& baseline,
                                              const metrics::WorkloadMetrics& treatment);

/// Per-workload paired comparison of two policy columns (the shape the
/// figure benches consume).  Assumes a single-config campaign.
std::vector<workloads::PolicyComparison> compare_to_baseline(
    const CampaignResult& result, std::size_t baseline_policy = 0,
    std::size_t treatment_policy = 1);

}  // namespace synpa::exp
