#include "exp/fleet_grid.hpp"

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <ostream>
#include <stdexcept>

#include "common/rng.hpp"
#include "fleet/policy.hpp"
#include "workloads/groups.hpp"

namespace synpa::exp {

const FleetCellResult* FleetGridResult::find(const std::string& scenario,
                                             const std::string& fleet_policy) const {
    for (const auto& c : cells)
        if (c.scenario == scenario && c.fleet_policy == fleet_policy) return &c;
    return nullptr;
}

FleetGridRunner::FleetGridRunner() : FleetGridRunner(Options{}) {}

FleetGridRunner::FleetGridRunner(Options opts, ArtifactCache* cache)
    : opts_(opts),
      cache_(cache != nullptr ? cache : &ArtifactCache::global()),
      pool_(opts.threads) {}

FleetGridResult FleetGridRunner::run(const FleetCampaign& campaign,
                                     const std::vector<FleetAggregator*>& aggregators) {
    const auto start = std::chrono::steady_clock::now();
    if (campaign.node_configs.empty()) throw std::invalid_argument("fleet grid: no configs");
    if (campaign.scenarios.empty()) throw std::invalid_argument("fleet grid: no scenarios");
    if (campaign.fleet_policies.empty())
        throw std::invalid_argument("fleet grid: no fleet policies");
    for (const std::string& name : campaign.fleet_policies)
        if (fleet::find_fleet_policy(name) == nullptr)
            fleet::make_fleet_policy(name, {});  // throws with the inventory

    // ---- resolve shared artifacts per config ------------------------------
    std::vector<ArtifactSet> artifacts(campaign.node_configs.size());
    for (std::size_t ci = 0; ci < campaign.node_configs.size(); ++ci) {
        if (campaign.needs_training) {
            const std::vector<std::string> apps = campaign.training_apps.empty()
                                                      ? workloads::training_apps()
                                                      : campaign.training_apps;
            artifacts[ci].training =
                cache_->training(campaign.node_configs[ci], campaign.trainer, apps);
        }
    }

    // ---- flat cell list in grid order -------------------------------------
    const int reps = std::max(1, campaign.reps);
    struct CellState {
        std::size_t index = 0;
        std::size_t config_index = 0, scenario_index = 0, policy_index = 0;
        std::vector<fleet::FleetResult> runs;
        std::atomic<int> remaining{0};
    };
    std::vector<std::unique_ptr<CellState>> cells;
    for (std::size_t ci = 0; ci < campaign.node_configs.size(); ++ci)
        for (std::size_t si = 0; si < campaign.scenarios.size(); ++si)
            for (std::size_t pi = 0; pi < campaign.fleet_policies.size(); ++pi) {
                auto cell = std::make_unique<CellState>();
                cell->index = cells.size();
                cell->config_index = ci;
                cell->scenario_index = si;
                cell->policy_index = pi;
                cell->runs.resize(static_cast<std::size_t>(reps));
                cell->remaining.store(reps, std::memory_order_relaxed);
                cells.push_back(std::move(cell));
            }

    // ---- reorder buffer: release finished cells in grid order -------------
    std::mutex emit_mutex;
    std::vector<std::unique_ptr<FleetCellResult>> finished(cells.size());
    std::size_t next_emit = 0;
    std::vector<FleetCellResult> emitted;
    emitted.reserve(cells.size());
    const auto emit_ready = [&](std::unique_ptr<FleetCellResult> done, std::size_t index) {
        const std::lock_guard lock(emit_mutex);
        finished[index] = std::move(done);
        while (next_emit < finished.size() && finished[next_emit]) {
            FleetCellResult& cell = *finished[next_emit];
            for (FleetAggregator* agg : aggregators) agg->on_cell(cell);
            if (opts_.log != nullptr)
                *opts_.log << "[" << (next_emit + 1) << "/" << cells.size() << "] "
                           << cell.scenario << " / " << cell.fleet_policy
                           << " p99_slowdown=" << cell.summary.all.p99_slowdown
                           << " goodput=" << cell.summary.goodput << "\n";
            emitted.push_back(std::move(cell));
            finished[next_emit].reset();
            ++next_emit;
        }
    };

    // ---- schedule every repetition over the persistent pool ---------------
    for (const auto& cell_ptr : cells) {
        CellState* cell = cell_ptr.get();
        for (int rep = 0; rep < reps; ++rep) {
            pool_.submit([this, &campaign, &artifacts, cell, rep, &emit_ready] {
                const uarch::SimConfig& cfg = campaign.node_configs[cell->config_index];
                // Repetitions re-sample the arrival process with a derived
                // seed; rep 0 keeps the spec verbatim so its memoized trace
                // is shared with direct scenario_trace callers.
                scenario::ScenarioSpec spec = campaign.scenarios[cell->scenario_index];
                if (rep > 0)
                    spec.seed = common::derive_key(spec.seed, 0x9e9,
                                                   static_cast<std::uint64_t>(rep));
                const auto trace = cache_->scenario_trace(spec, cfg);
                const std::uint64_t rep_seed =
                    common::derive_key(spec.seed, 0x9001, static_cast<std::uint64_t>(rep));

                fleet::FleetOptions fo;
                fo.nodes = campaign.nodes;
                fo.node_config = cfg;
                fo.node_policy = campaign.node_policy;
                fo.fleet_policy = campaign.fleet_policies[cell->policy_index];
                fo.fleet_seed = common::derive_key(rep_seed, 0xf1ee);
                fo.preemption = campaign.preemption;
                // Nested parallelism composes by capping under the grid pool
                // (identical results at any thread count).
                fo.threads = static_cast<std::size_t>(uarch::nested_sim_threads(
                    static_cast<int>(std::max<std::size_t>(campaign.fleet_threads, 1)),
                    pool_.size()));
                fo.max_quanta = campaign.max_quanta;
                fo.record_timeline = campaign.record_timelines;
                const ArtifactSet& arts = artifacts[cell->config_index];
                if (arts.training)
                    fo.policy_config.model =
                        std::shared_ptr<const model::InterferenceModel>(
                            arts.training, &arts.training->model);
                else if (campaign.model)
                    fo.policy_config.model = campaign.model;
                fo.policy_config.seed = rep_seed;

                fleet::FleetRunner runner(*trace, std::move(fo));
                cell->runs[static_cast<std::size_t>(rep)] = runner.run();
                if (cell->remaining.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
                // Last repetition of this cell: finalize and stream it out.
                auto done = std::make_unique<FleetCellResult>();
                done->config_index = cell->config_index;
                done->scenario_index = cell->scenario_index;
                done->policy_index = cell->policy_index;
                done->nodes = campaign.nodes;
                done->chips = cfg.num_chips;
                done->cores = cfg.cores;
                done->smt_ways = cfg.smt_ways;
                done->scenario = campaign.scenarios[cell->scenario_index].name;
                done->fleet_policy = campaign.fleet_policies[cell->policy_index];
                done->node_policy = campaign.node_policy;
                done->runs = std::move(cell->runs);
                done->summary = fleet::summarize(done->runs);
                emit_ready(std::move(done), cell->index);
            });
        }
    }
    pool_.wait_idle();  // rethrows the first repetition failure, if any

    for (FleetAggregator* agg : aggregators) agg->finish();

    FleetGridResult result;
    result.cells = std::move(emitted);
    result.artifacts = std::move(artifacts);
    result.reps_executed = cells.size() * static_cast<std::size_t>(reps);
    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    return result;
}

// ---------------------------------------------------------- aggregators --

FleetCsvAggregator::FleetCsvAggregator(std::ostream& os) : os_(os) {}

void FleetCsvAggregator::on_cell(const FleetCellResult& cell) {
    if (!header_written_) {
        os_ << "config,nodes,chips,cores,smt_ways,scenario_index,policy_index,scenario,"
               "fleet_policy,node_policy,planned,completed,"
               "p50_slowdown,p99_slowdown,p999_slowdown,mean_slowdown,"
               "p99_slowdown_lc,p999_slowdown_lc,violation_rate_lc,violation_rate_batch,"
               "goodput,throughput,preemptions_per_kquanta,mean_queue\n";
        header_written_ = true;
    }
    const fleet::FleetSummary& s = cell.summary;
    os_ << cell.config_index << ',' << cell.nodes << ',' << cell.chips << ','
        << cell.cores << ',' << cell.smt_ways << ',' << cell.scenario_index << ','
        << cell.policy_index << ',' << cell.scenario << ',' << cell.fleet_policy << ','
        << cell.node_policy << ',' << s.all.planned << ',' << s.all.completed << ','
        << s.all.p50_slowdown << ',' << s.all.p99_slowdown << ',' << s.all.p999_slowdown
        << ',' << s.all.mean_slowdown << ',' << s.latency_critical.p99_slowdown << ','
        << s.latency_critical.p999_slowdown << ',' << s.latency_critical.violation_rate
        << ',' << s.batch.violation_rate << ',' << s.goodput << ',' << s.throughput
        << ',' << s.preemptions_per_kquanta << ',' << s.all.mean_queue_quanta << '\n';
}

void FleetCsvAggregator::finish() { os_.flush(); }

}  // namespace synpa::exp
