#include "exp/artifact_cache.hpp"

#include <bit>

#include "common/rng.hpp"
#include "model/trainer.hpp"

namespace synpa::exp {
namespace {

std::uint64_t hash_double(double v) noexcept {
    return common::splitmix64(std::bit_cast<std::uint64_t>(v));
}

std::uint64_t hash_names(const std::vector<std::string>& names) noexcept {
    std::uint64_t h = common::hash_string("app-set");
    for (const auto& n : names) h = common::derive_key(h, common::hash_string(n));
    return h;
}

/// Every TrainerOptions field that can change the trained model.  `threads`
/// is deliberately excluded: training is deterministic in the options and
/// seed regardless of worker count.
std::uint64_t trainer_fingerprint(const model::TrainerOptions& o) noexcept {
    std::uint64_t h = common::derive_key(o.isolated_quanta, o.pair_quanta, o.warmup_quanta,
                                         o.seed);
    h = common::derive_key(h, hash_double(o.sample_fraction),
                           o.include_self_pairs ? 1u : 0u);
    return h;
}

}  // namespace

template <class T, class Build>
std::shared_ptr<const T> ArtifactCache::memoize(
    std::unordered_map<std::uint64_t, Slot<T>>& map, std::uint64_t key,
    std::size_t Stats::*counter, Build&& build) {
    std::promise<std::shared_ptr<const T>> promise;
    Slot<T> slot;
    bool owner = false;
    {
        const std::lock_guard lock(mutex_);
        const auto it = map.find(key);
        if (it == map.end()) {
            slot = promise.get_future().share();
            map.emplace(key, slot);
            stats_.*counter += 1;
            owner = true;
        } else {
            slot = it->second;
            ++stats_.hits;
        }
    }
    if (owner) {
        try {
            promise.set_value(std::make_shared<const T>(build()));
        } catch (...) {
            // Drop the failed entry so a later request can retry (waiters
            // already holding this slot still observe the exception).
            {
                const std::lock_guard lock(mutex_);
                map.erase(key);
            }
            promise.set_exception(std::current_exception());
        }
    }
    return slot.get();
}

std::shared_ptr<const model::TrainingResult> ArtifactCache::training(
    const uarch::SimConfig& cfg, const model::TrainerOptions& opts,
    const std::vector<std::string>& app_names) {
    const std::uint64_t key = common::derive_key(
        uarch::config_fingerprint(cfg), trainer_fingerprint(opts), hash_names(app_names));
    return memoize(training_, key, &Stats::trainer_runs, [&] {
        return model::Trainer(cfg, opts).train(app_names);
    });
}

std::shared_ptr<const std::vector<workloads::AppCharacterization>>
ArtifactCache::characterizations(const uarch::SimConfig& cfg, std::uint64_t quanta,
                                 std::uint64_t seed) {
    const std::uint64_t key =
        common::derive_key(uarch::config_fingerprint(cfg), quanta, seed, 0xCA11);
    return memoize(characterizations_, key, &Stats::characterization_runs,
                   [&] { return workloads::characterize_suite(cfg, quanta, seed); });
}

std::shared_ptr<const workloads::PreparedWorkload> ArtifactCache::prepared(
    const workloads::WorkloadSpec& spec, const uarch::SimConfig& cfg,
    const workloads::MethodologyOptions& opts, int rep) {
    // Preparation depends only on the slot seeds (methodology seed, workload
    // name, rep) and the profiling window; reps/cv/threads do not matter.
    std::uint64_t key = common::derive_key(uarch::config_fingerprint(cfg),
                                           common::hash_string(spec.name),
                                           hash_names(spec.app_names));
    key = common::derive_key(key, opts.seed, opts.target_isolated_quanta,
                             static_cast<std::uint64_t>(rep));
    return memoize(prepared_, key, &Stats::prepared_builds, [&] {
        workloads::MethodologyOptions inner = opts;
        inner.threads = 1;  // parallelism lives at the campaign-cell grain
        return workloads::prepare_workload(spec, cfg, inner, rep);
    });
}

std::shared_ptr<const scenario::ScenarioTrace> ArtifactCache::scenario_trace(
    const scenario::ScenarioSpec& spec, const uarch::SimConfig& cfg) {
    const std::uint64_t key = common::derive_key(
        uarch::config_fingerprint(cfg), scenario::scenario_fingerprint(spec), 0x5ce0);
    return memoize(scenarios_, key, &Stats::scenario_builds,
                   [&] { return scenario::build_trace(spec, cfg); });
}

ArtifactCache::Stats ArtifactCache::stats() const {
    const std::lock_guard lock(mutex_);
    return stats_;
}

void ArtifactCache::clear() {
    const std::lock_guard lock(mutex_);
    training_.clear();
    characterizations_.clear();
    prepared_.clear();
    scenarios_.clear();
}

ArtifactCache& ArtifactCache::global() {
    static ArtifactCache cache;
    return cache;
}

}  // namespace synpa::exp
