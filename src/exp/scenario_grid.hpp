// Scenario-grid campaigns: the open-system counterpart of exp::Campaign.
//
// A ScenarioCampaign declares a (config x scenario x policy x repetition)
// grid of dynamic-workload runs; ScenarioGridRunner executes every
// repetition over a persistent thread pool with the same guarantees as the
// classic engine — deterministic per-rep seeds, scenario traces memoized in
// the ArtifactCache (shared across policy columns), and finished cells
// streamed to aggregators in grid order through a reorder buffer, so
// results are bit-identical for threads=1 and threads=N.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "exp/campaign.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"

namespace synpa::exp {

/// Declarative description of a scenario evaluation grid.  Policy columns
/// reuse exp::PolicySpec, so the classic benches' policy definitions work
/// unchanged.
struct ScenarioCampaign {
    std::string name;
    std::vector<uarch::SimConfig> configs;
    std::vector<scenario::ScenarioSpec> scenarios;
    std::vector<PolicySpec> policies;
    /// Registered policy names appended to `policies` as additional grid
    /// columns (the `policy=` axis; see exp::registry_policy).
    std::vector<std::string> policy_names;

    int reps = 1;  ///< repetitions re-sample arrivals (derived seeds)
    std::uint64_t max_quanta = 20'000;
    bool record_timelines = true;

    /// Shared artifacts (resolved per config through the ArtifactCache).
    bool needs_training = false;
    model::TrainerOptions trainer;
    std::vector<std::string> training_apps;  ///< empty = workloads::training_apps()
};

/// Aggregate summary of one grid cell across its repetitions.
struct ScenarioSummary {
    std::size_t planned_tasks = 0;
    std::size_t completed_tasks = 0;
    bool all_completed = true;
    double mean_turnaround = 0.0;
    double p50_turnaround = 0.0;
    double p95_turnaround = 0.0;  ///< tail latency of turnaround
    double p99_turnaround = 0.0;
    double mean_queue = 0.0;       ///< quanta spent waiting for a hardware thread
    double mean_slowdown = 0.0;    ///< per-task slowdown vs. isolated execution
    double mean_utilization = 0.0; ///< bound hardware threads / capacity
    double throughput = 0.0;       ///< completed tasks per executed quantum
    double migrations_per_quantum = 0.0;
    double cross_chip_per_quantum = 0.0;  ///< cross-chip subset of migrations

    /// Online adaptation across the repetitions (sched::OnlinePolicy).
    bool adaptive = false;
    double phase_changes_per_run = 0.0;
    double model_refits_per_run = 0.0;
};

ScenarioSummary summarize_runs(std::span<const scenario::ScenarioResult> runs);

/// One finished grid point.
struct ScenarioCellResult {
    std::size_t config_index = 0;
    std::size_t scenario_index = 0;
    std::size_t policy_index = 0;
    int chips = 0;     ///< platform shape of the cell's config
    int cores = 0;     ///< cores per chip
    int smt_ways = 0;  ///< SMT width of the cell's config
    std::string scenario;
    std::string policy;    ///< PolicySpec label
    bool adaptive = false; ///< policy column retrains its model online
    std::vector<scenario::ScenarioResult> runs;  ///< one per repetition
    ScenarioSummary summary;
};

/// Streaming consumer of finished scenario cells (grid order, exactly once).
class ScenarioAggregator {
public:
    virtual ~ScenarioAggregator() = default;
    virtual void on_cell(const ScenarioCellResult& cell) = 0;
    virtual void finish() {}
};

struct ScenarioGridResult {
    std::vector<ScenarioCellResult> cells;  ///< grid order
    std::vector<ArtifactSet> artifacts;     ///< one per campaign config
    std::size_t reps_executed = 0;
    double wall_seconds = 0.0;

    const ScenarioCellResult* find(const std::string& scenario,
                                   const std::string& policy) const;
};

class ScenarioGridRunner {
public:
    struct Options {
        std::size_t threads = 0;      ///< workers; 0 = hardware concurrency
        std::ostream* log = nullptr;  ///< optional per-cell progress lines
    };

    ScenarioGridRunner();
    explicit ScenarioGridRunner(Options opts, ArtifactCache* cache = nullptr);

    ScenarioGridResult run(const ScenarioCampaign& campaign,
                           const std::vector<ScenarioAggregator*>& aggregators = {});

private:
    Options opts_;
    ArtifactCache* cache_;
    common::ThreadPool pool_;
};

// ---------------------------------------------------------- aggregators --

/// One CSV row per cell: grid indices, labels, and the full summary.
class ScenarioCsvAggregator final : public ScenarioAggregator {
public:
    explicit ScenarioCsvAggregator(std::ostream& os);
    void on_cell(const ScenarioCellResult& cell) override;
    void finish() override;

private:
    std::ostream& os_;
    bool header_written_ = false;
};

/// Time-series utilization: mean utilization per quantum bucket, one series
/// per (scenario, policy) cell (averaged across repetitions).  Requires
/// record_timelines.
class UtilizationSeriesAggregator final : public ScenarioAggregator {
public:
    struct Series {
        std::string scenario;
        std::string policy;
        std::vector<double> mean_utilization;  ///< one value per bucket
    };

    explicit UtilizationSeriesAggregator(std::size_t buckets = 20);
    void on_cell(const ScenarioCellResult& cell) override;
    const std::vector<Series>& series() const noexcept { return series_; }

private:
    std::size_t buckets_;
    std::vector<Series> series_;
};

/// Per-task slowdown-vs-isolated distribution per (scenario, policy).
class SlowdownAggregator final : public ScenarioAggregator {
public:
    void on_cell(const ScenarioCellResult& cell) override;
    /// (scenario, policy) -> running stats over completed tasks' slowdowns.
    const std::map<std::pair<std::string, std::string>, common::RunningStats>& stats()
        const noexcept {
        return stats_;
    }

private:
    std::map<std::pair<std::string, std::string>, common::RunningStats> stats_;
};

/// Turnaround tail latency per (scenario, policy): p50/p95/p99/max over the
/// pooled completed tasks of every repetition.
class TurnaroundTailAggregator final : public ScenarioAggregator {
public:
    struct Row {
        std::string scenario;
        std::string policy;
        double p50 = 0.0, p95 = 0.0, p99 = 0.0, max = 0.0;
        std::size_t samples = 0;
    };

    void on_cell(const ScenarioCellResult& cell) override;
    const std::vector<Row>& rows() const noexcept { return rows_; }

private:
    std::vector<Row> rows_;
};

}  // namespace synpa::exp
