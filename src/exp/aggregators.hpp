// Streaming aggregators for campaign results: per-group means, paired
// speedups, and CSV/JSON export.  All of them rely on the runner's grid-
// order delivery guarantee, so their outputs are deterministic regardless
// of worker count.
#pragma once

#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "exp/campaign.hpp"
#include "workloads/methodology.hpp"

namespace synpa::exp {

/// Extracts one scalar per finished cell (e.g. mean turnaround).
using MetricFn = std::function<double(const CellResult&)>;

/// Maps a workload name to its group label; the default takes the paper's
/// two-letter prefix (be/fe/fb).
using GroupFn = std::function<std::string(const std::string& workload)>;

GroupFn workload_prefix_group();

/// Mean/stddev of a metric per (policy label, workload group).
class GroupMeanAggregator final : public Aggregator {
public:
    explicit GroupMeanAggregator(MetricFn metric, GroupFn group = workload_prefix_group());

    void on_cell(const CellResult& cell) override;

    /// (policy label, group) -> running stats, in deterministic map order.
    const std::map<std::pair<std::string, std::string>, common::RunningStats>& groups()
        const noexcept {
        return groups_;
    }
    /// Groups seen, in first-seen (grid) order.
    const std::vector<std::string>& group_order() const noexcept { return group_order_; }

private:
    MetricFn metric_;
    GroupFn group_;
    std::map<std::pair<std::string, std::string>, common::RunningStats> groups_;
    std::vector<std::string> group_order_;
};

/// Pairs every workload's baseline cell with each treatment cell as they
/// stream by and computes the paper's paired speedups.
class PairedSpeedupAggregator final : public Aggregator {
public:
    struct Row {
        std::string treatment;  ///< treatment policy label
        workloads::PolicyComparison comparison;
    };

    explicit PairedSpeedupAggregator(std::string baseline_label);

    void on_cell(const CellResult& cell) override;

    /// One row per (workload, treatment policy), in grid order.
    const std::vector<Row>& rows() const noexcept { return rows_; }

    /// Comparisons for one treatment label, in grid (workload) order.
    std::vector<workloads::PolicyComparison> comparisons(const std::string& treatment) const;

private:
    std::string baseline_label_;
    /// (config, workload) -> baseline metrics; grid order guarantees the
    /// baseline cell of a workload precedes its treatments.
    std::map<std::pair<std::size_t, std::size_t>, metrics::WorkloadMetrics> baselines_;
    std::vector<Row> rows_;
};

/// Writes one CSV row per cell: grid indices, labels, the aggregate
/// metrics, and the retained turnaround samples (';'-joined).
class CsvAggregator final : public Aggregator {
public:
    explicit CsvAggregator(std::ostream& os);
    void on_cell(const CellResult& cell) override;
    void finish() override;

private:
    std::ostream& os_;
    bool header_written_ = false;
};

/// Writes the whole campaign as one JSON array of cell objects.
class JsonAggregator final : public Aggregator {
public:
    explicit JsonAggregator(std::ostream& os);
    void on_cell(const CellResult& cell) override;
    void finish() override;

private:
    std::ostream& os_;
    bool first_ = true;
};

}  // namespace synpa::exp
