#include "exp/scenario_grid.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <ostream>
#include <stdexcept>

#include "common/rng.hpp"
#include "obs/trace.hpp"
#include "workloads/groups.hpp"

namespace synpa::exp {

ScenarioSummary summarize_runs(std::span<const scenario::ScenarioResult> runs) {
    ScenarioSummary s;
    std::vector<double> turnarounds;
    double queue_sum = 0.0, slowdown_sum = 0.0, util_sum = 0.0;
    double quanta_total = 0.0, migrations_total = 0.0, cross_chip_total = 0.0;
    std::size_t util_runs = 0;
    for (const scenario::ScenarioResult& run : runs) {
        s.planned_tasks += run.tasks.size();
        s.completed_tasks += run.completed_tasks;
        s.all_completed = s.all_completed && run.completed;
        for (const scenario::TaskRecord& rec : run.tasks) {
            if (!rec.completed) continue;
            turnarounds.push_back(rec.turnaround_quanta);
            queue_sum += rec.queue_quanta;
            slowdown_sum += rec.slowdown;
        }
        if (!run.timeline.empty()) {
            util_sum += run.mean_utilization();
            ++util_runs;
        }
        quanta_total += static_cast<double>(run.quanta_executed);
        migrations_total += static_cast<double>(run.migrations);
        cross_chip_total += static_cast<double>(run.cross_chip_migrations);
        s.adaptive = s.adaptive || run.adaptive;
        s.phase_changes_per_run += static_cast<double>(run.phase_changes);
        s.model_refits_per_run += static_cast<double>(run.model_refits);
    }
    if (!runs.empty()) {
        s.phase_changes_per_run /= static_cast<double>(runs.size());
        s.model_refits_per_run /= static_cast<double>(runs.size());
    }
    if (!turnarounds.empty()) {
        double sum = 0.0;
        for (double t : turnarounds) sum += t;
        const auto n = static_cast<double>(turnarounds.size());
        s.mean_turnaround = sum / n;
        std::sort(turnarounds.begin(), turnarounds.end());
        s.p50_turnaround = common::percentile_sorted(turnarounds, 0.50);
        s.p95_turnaround = common::percentile_sorted(turnarounds, 0.95);
        s.p99_turnaround = common::percentile_sorted(turnarounds, 0.99);
        s.mean_queue = queue_sum / n;
        s.mean_slowdown = slowdown_sum / n;
    }
    if (util_runs > 0) s.mean_utilization = util_sum / static_cast<double>(util_runs);
    if (quanta_total > 0.0) {
        s.throughput = static_cast<double>(s.completed_tasks) / quanta_total;
        s.migrations_per_quantum = migrations_total / quanta_total;
        s.cross_chip_per_quantum = cross_chip_total / quanta_total;
    }
    return s;
}

const ScenarioCellResult* ScenarioGridResult::find(const std::string& scenario,
                                                   const std::string& policy) const {
    for (const auto& c : cells)
        if (c.scenario == scenario && c.policy == policy) return &c;
    return nullptr;
}

ScenarioGridRunner::ScenarioGridRunner() : ScenarioGridRunner(Options{}) {}

ScenarioGridRunner::ScenarioGridRunner(Options opts, ArtifactCache* cache)
    : opts_(opts),
      cache_(cache != nullptr ? cache : &ArtifactCache::global()),
      pool_(opts.threads) {}

ScenarioGridResult ScenarioGridRunner::run(
    const ScenarioCampaign& campaign, const std::vector<ScenarioAggregator*>& aggregators) {
    const auto start = std::chrono::steady_clock::now();
    if (campaign.configs.empty()) throw std::invalid_argument("scenario grid: no configs");
    if (campaign.scenarios.empty())
        throw std::invalid_argument("scenario grid: no scenarios");
    // The policy axis: explicit columns first, then registered names.
    std::vector<PolicySpec> policies = campaign.policies;
    for (const std::string& name : campaign.policy_names)
        policies.push_back(registry_policy(name));
    if (policies.empty()) throw std::invalid_argument("scenario grid: no policies");

    // ---- resolve shared artifacts per config ------------------------------
    std::vector<ArtifactSet> artifacts(campaign.configs.size());
    for (std::size_t ci = 0; ci < campaign.configs.size(); ++ci) {
        if (campaign.needs_training) {
            const std::vector<std::string> apps = campaign.training_apps.empty()
                                                      ? workloads::training_apps()
                                                      : campaign.training_apps;
            artifacts[ci].training =
                cache_->training(campaign.configs[ci], campaign.trainer, apps);
        }
    }

    // ---- flat cell list in grid order -------------------------------------
    const int reps = std::max(1, campaign.reps);
    struct CellState {
        std::size_t index = 0;
        std::size_t config_index = 0, scenario_index = 0, policy_index = 0;
        std::vector<scenario::ScenarioResult> runs;
        std::atomic<int> remaining{0};
    };
    std::vector<std::unique_ptr<CellState>> cells;
    for (std::size_t ci = 0; ci < campaign.configs.size(); ++ci)
        for (std::size_t si = 0; si < campaign.scenarios.size(); ++si)
            for (std::size_t pi = 0; pi < policies.size(); ++pi) {
                auto cell = std::make_unique<CellState>();
                cell->index = cells.size();
                cell->config_index = ci;
                cell->scenario_index = si;
                cell->policy_index = pi;
                cell->runs.resize(static_cast<std::size_t>(reps));
                cell->remaining.store(reps, std::memory_order_relaxed);
                cells.push_back(std::move(cell));
            }

    // ---- reorder buffer: release finished cells in grid order -------------
    std::mutex emit_mutex;
    std::vector<std::unique_ptr<ScenarioCellResult>> finished(cells.size());
    std::size_t next_emit = 0;
    std::vector<ScenarioCellResult> emitted;
    emitted.reserve(cells.size());
    const auto emit_ready = [&](std::unique_ptr<ScenarioCellResult> done, std::size_t index) {
        const std::lock_guard lock(emit_mutex);
        finished[index] = std::move(done);
        while (next_emit < finished.size() && finished[next_emit]) {
            ScenarioCellResult& cell = *finished[next_emit];
            for (ScenarioAggregator* agg : aggregators) agg->on_cell(cell);
            if (opts_.log != nullptr)
                *opts_.log << "[" << (next_emit + 1) << "/" << cells.size() << "] "
                           << cell.scenario << " / " << cell.policy
                           << " TTmean=" << cell.summary.mean_turnaround
                           << " util=" << cell.summary.mean_utilization << "\n";
            emitted.push_back(std::move(cell));
            finished[next_emit].reset();
            ++next_emit;
        }
    };

    // Per-cell flight recording: with SYNPA_TRACE and a SYNPA_TRACE_FILE
    // set, every repetition gets its own tracer and trace file (tagged
    // c<config>s<scenario>p<policy>r<rep>), so parallel cells never share a
    // recorder and memoized traces stay byte-identical.
    const obs::TraceConfig trace_cfg = obs::TraceConfig::from_env();

    // ---- schedule every repetition over the persistent pool ---------------
    for (const auto& cell_ptr : cells) {
        CellState* cell = cell_ptr.get();
        for (int rep = 0; rep < reps; ++rep) {
            pool_.submit([this, &campaign, &policies, &artifacts, cell, rep, &emit_ready,
                          &trace_cfg] {
                const uarch::SimConfig& cfg = campaign.configs[cell->config_index];
                // Repetitions re-sample the arrival process with a derived
                // seed; rep 0 keeps the spec verbatim so its memoized trace
                // is shared with direct scenario_trace callers.
                scenario::ScenarioSpec spec = campaign.scenarios[cell->scenario_index];
                if (rep > 0)
                    spec.seed = common::derive_key(spec.seed, 0x9e9,
                                                   static_cast<std::uint64_t>(rep));
                const auto trace = cache_->scenario_trace(spec, cfg);
                const std::uint64_t rep_seed =
                    common::derive_key(spec.seed, 0x9001, static_cast<std::uint64_t>(rep));
                const auto policy = policies[cell->policy_index].make(
                    artifacts[cell->config_index], rep_seed);
                // Nested parallelism composes by capping: the grid already
                // fans out across cells, so the cell's platform only keeps
                // sim_threads the host has spare (results are identical at
                // any thread count).
                uarch::SimConfig cell_cfg = cfg;
                cell_cfg.sim_threads =
                    uarch::nested_sim_threads(cfg.sim_threads, pool_.size());
                uarch::Platform platform(cell_cfg);
                std::unique_ptr<obs::Tracer> tracer;
                if (trace_cfg.enabled && !trace_cfg.file.empty()) {
                    char tag[64];
                    std::snprintf(tag, sizeof(tag), "c%zus%zup%zur%d", cell->config_index,
                                  cell->scenario_index, cell->policy_index, rep);
                    obs::TraceConfig cell_trace = trace_cfg;
                    cell_trace.file = obs::derive_trace_path(trace_cfg.file, tag);
                    tracer = std::make_unique<obs::Tracer>(std::move(cell_trace));
                }
                scenario::ScenarioRunner runner(
                    platform, *policy, *trace,
                    {.max_quanta = campaign.max_quanta,
                     .record_timeline = campaign.record_timelines,
                     .tracer = tracer.get()});
                cell->runs[static_cast<std::size_t>(rep)] = runner.run();
                if (tracer) tracer->finish();
                if (cell->remaining.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
                // Last repetition of this cell: finalize and stream it out.
                auto done = std::make_unique<ScenarioCellResult>();
                done->config_index = cell->config_index;
                done->scenario_index = cell->scenario_index;
                done->policy_index = cell->policy_index;
                done->chips = cfg.num_chips;
                done->cores = cfg.cores;
                done->smt_ways = cfg.smt_ways;
                done->scenario = campaign.scenarios[cell->scenario_index].name;
                done->policy = policies[cell->policy_index].label;
                done->adaptive = policies[cell->policy_index].adaptive;
                done->runs = std::move(cell->runs);
                done->summary = summarize_runs(done->runs);
                emit_ready(std::move(done), cell->index);
            });
        }
    }
    pool_.wait_idle();  // rethrows the first repetition failure, if any

    for (ScenarioAggregator* agg : aggregators) agg->finish();

    ScenarioGridResult result;
    result.cells = std::move(emitted);
    result.artifacts = std::move(artifacts);
    result.reps_executed = cells.size() * static_cast<std::size_t>(reps);
    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    return result;
}

// ---------------------------------------------------------- aggregators --

ScenarioCsvAggregator::ScenarioCsvAggregator(std::ostream& os) : os_(os) {}

void ScenarioCsvAggregator::on_cell(const ScenarioCellResult& cell) {
    if (!header_written_) {
        // `adaptive` stays the trailing column: the CI smoke checks address
        // the leading columns positionally.
        os_ << "config,chips,cores,smt_ways,scenario_index,policy_index,scenario,policy,"
               "planned,completed,all_completed,mean_tt,p50_tt,p95_tt,p99_tt,mean_queue,"
               "mean_slowdown,mean_utilization,throughput,migrations_per_quantum,"
               "cross_chip_per_quantum,adaptive\n";
        header_written_ = true;
    }
    const ScenarioSummary& s = cell.summary;
    os_ << cell.config_index << ',' << cell.chips << ',' << cell.cores << ','
        << cell.smt_ways << ',' << cell.scenario_index << ',' << cell.policy_index
        << ',' << cell.scenario << ',' << cell.policy << ',' << s.planned_tasks << ','
        << s.completed_tasks << ',' << (s.all_completed ? 1 : 0) << ',' << s.mean_turnaround
        << ',' << s.p50_turnaround << ',' << s.p95_turnaround << ',' << s.p99_turnaround
        << ',' << s.mean_queue << ',' << s.mean_slowdown << ',' << s.mean_utilization << ','
        << s.throughput << ',' << s.migrations_per_quantum << ','
        // Measured, not declared: true when the runs' policy actually
        // implemented sched::OnlinePolicy, whatever the PolicySpec said.
        << s.cross_chip_per_quantum << ',' << (s.adaptive ? 1 : 0) << '\n';
}

void ScenarioCsvAggregator::finish() { os_.flush(); }

UtilizationSeriesAggregator::UtilizationSeriesAggregator(std::size_t buckets)
    : buckets_(std::max<std::size_t>(buckets, 1)) {}

void UtilizationSeriesAggregator::on_cell(const ScenarioCellResult& cell) {
    Series series;
    series.scenario = cell.scenario;
    series.policy = cell.policy;
    series.mean_utilization.assign(buckets_, 0.0);
    std::vector<std::size_t> counts(buckets_, 0);
    for (const scenario::ScenarioResult& run : cell.runs) {
        if (run.timeline.empty()) continue;
        const auto span = static_cast<double>(run.timeline.size());
        for (const scenario::QuantumSample& sample : run.timeline) {
            const auto bucket = std::min(
                buckets_ - 1, static_cast<std::size_t>(
                                  static_cast<double>(sample.quantum) / span *
                                  static_cast<double>(buckets_)));
            series.mean_utilization[bucket] += sample.utilization;
            ++counts[bucket];
        }
    }
    for (std::size_t b = 0; b < buckets_; ++b)
        if (counts[b] > 0)
            series.mean_utilization[b] /= static_cast<double>(counts[b]);
    series_.push_back(std::move(series));
}

void SlowdownAggregator::on_cell(const ScenarioCellResult& cell) {
    common::RunningStats& stats = stats_[{cell.scenario, cell.policy}];
    for (const scenario::ScenarioResult& run : cell.runs)
        for (const scenario::TaskRecord& rec : run.tasks)
            if (rec.completed) stats.add(rec.slowdown);
}

void TurnaroundTailAggregator::on_cell(const ScenarioCellResult& cell) {
    std::vector<double> turnarounds;
    for (const scenario::ScenarioResult& run : cell.runs)
        for (const scenario::TaskRecord& rec : run.tasks)
            if (rec.completed) turnarounds.push_back(rec.turnaround_quanta);
    Row row;
    row.scenario = cell.scenario;
    row.policy = cell.policy;
    row.samples = turnarounds.size();
    if (!turnarounds.empty()) {
        std::sort(turnarounds.begin(), turnarounds.end());
        row.p50 = common::percentile_sorted(turnarounds, 0.50);
        row.p95 = common::percentile_sorted(turnarounds, 0.95);
        row.p99 = common::percentile_sorted(turnarounds, 0.99);
        row.max = turnarounds.back();
    }
    rows_.push_back(std::move(row));
}

}  // namespace synpa::exp
