// Memoization of the expensive shared inputs of an evaluation campaign.
//
// Every figure/table bench needs the same three artifacts before it can run
// a single cell: a trained interference model (~minutes of all-pairs SMT
// runs), the isolated characterization of the 28-app suite, and per-slot
// target profiles for each workload repetition.  All three are pure
// functions of (SimConfig, options, seed), so the cache keys them by a
// deterministic fingerprint and computes each at most once per process —
// a campaign trains once no matter how many benches' worth of cells it
// runs, and concurrent requesters of the same artifact block on the first
// computation instead of duplicating it.
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "model/trainer.hpp"
#include "scenario/scenario.hpp"
#include "uarch/sim_config.hpp"
#include "workloads/groups.hpp"
#include "workloads/methodology.hpp"

namespace synpa::exp {

class ArtifactCache {
public:
    /// Build counters (misses) and lookup hits, for tests and perf reports.
    struct Stats {
        std::size_t trainer_runs = 0;
        std::size_t characterization_runs = 0;
        std::size_t prepared_builds = 0;
        std::size_t scenario_builds = 0;
        std::size_t hits = 0;
    };

    ArtifactCache() = default;
    ArtifactCache(const ArtifactCache&) = delete;
    ArtifactCache& operator=(const ArtifactCache&) = delete;

    /// Trained model for (cfg, opts, app set); the trainer runs exactly once
    /// per distinct key, even under concurrent requests.
    std::shared_ptr<const model::TrainingResult> training(
        const uarch::SimConfig& cfg, const model::TrainerOptions& opts,
        const std::vector<std::string>& app_names);

    /// Isolated suite characterization (Figure 4 / Table III input).
    std::shared_ptr<const std::vector<workloads::AppCharacterization>> characterizations(
        const uarch::SimConfig& cfg, std::uint64_t quanta, std::uint64_t seed);

    /// A workload with per-slot targets/isolated IPCs for one repetition.
    std::shared_ptr<const workloads::PreparedWorkload> prepared(
        const workloads::WorkloadSpec& spec, const uarch::SimConfig& cfg,
        const workloads::MethodologyOptions& opts, int rep);

    /// A sampled dynamic scenario (arrivals + per-task service demands).
    /// Keyed by (config fingerprint, scenario_fingerprint(spec)) — the
    /// fingerprint covers *every* spec field including the arrival seed, so
    /// two scenarios differing only in seed never alias, while every policy
    /// column of a scenario grid shares one build.
    std::shared_ptr<const scenario::ScenarioTrace> scenario_trace(
        const scenario::ScenarioSpec& spec, const uarch::SimConfig& cfg);

    Stats stats() const;

    /// Drops every memoized artifact (counters are kept).
    void clear();

    /// Process-wide instance shared by the methodology wrappers and benches.
    static ArtifactCache& global();

private:
    template <class T>
    using Slot = std::shared_future<std::shared_ptr<const T>>;

    /// Returns the artifact for `key`, computing it via `build` exactly once.
    template <class T, class Build>
    std::shared_ptr<const T> memoize(std::unordered_map<std::uint64_t, Slot<T>>& map,
                                     std::uint64_t key, std::size_t Stats::*counter,
                                     Build&& build);

    mutable std::mutex mutex_;
    Stats stats_;
    std::unordered_map<std::uint64_t, Slot<model::TrainingResult>> training_;
    std::unordered_map<std::uint64_t, Slot<std::vector<workloads::AppCharacterization>>>
        characterizations_;
    std::unordered_map<std::uint64_t, Slot<workloads::PreparedWorkload>> prepared_;
    std::unordered_map<std::uint64_t, Slot<scenario::ScenarioTrace>> scenarios_;
};

}  // namespace synpa::exp
