#include "exp/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "metrics/metrics.hpp"
#include "obs/trace.hpp"
#include "sched/registry.hpp"
#include "workloads/groups.hpp"

namespace synpa::exp {
namespace {

/// The paper's repetition aggregation (§V-B): CV-based outlier discard on
/// the turnaround samples, then averaging of the retained metrics.  This is
/// the single implementation — workloads::run_workload goes through here.
workloads::RepeatedResult aggregate_repetitions(
    const workloads::WorkloadSpec& spec, std::vector<sched::RunResult> runs,
    const std::vector<metrics::WorkloadMetrics>& run_metrics, double cv_limit) {
    std::vector<double> tts;
    tts.reserve(run_metrics.size());
    for (const auto& m : run_metrics) tts.push_back(m.turnaround_quanta);
    const std::vector<double> kept = common::discard_outliers_until_cv(tts, cv_limit);

    workloads::RepeatedResult result;
    result.workload = spec.name;
    result.policy = runs.front().policy_name;
    result.turnaround_samples = kept;

    metrics::WorkloadMetrics mean{};
    int used = 0;
    for (std::size_t rep = 0; rep < run_metrics.size(); ++rep) {
        const double tt = run_metrics[rep].turnaround_quanta;
        if (std::find(kept.begin(), kept.end(), tt) == kept.end()) continue;
        mean.turnaround_quanta += run_metrics[rep].turnaround_quanta;
        mean.fairness += run_metrics[rep].fairness;
        mean.ipc_geomean += run_metrics[rep].ipc_geomean;
        mean.antt += run_metrics[rep].antt;
        ++used;
    }
    if (used > 0) {
        mean.turnaround_quanta /= used;
        mean.fairness /= used;
        mean.ipc_geomean /= used;
        mean.antt /= used;
    }
    mean.individual_speedups = run_metrics.front().individual_speedups;
    result.mean_metrics = mean;
    result.exemplar = std::move(runs.front());
    return result;
}

}  // namespace

PolicySpec policy(std::string label, workloads::PolicyFactory factory) {
    return {std::move(label),
            [factory = std::move(factory)](const ArtifactSet&, std::uint64_t rep_seed) {
                return factory(rep_seed);
            },
            /*adaptive=*/false};
}

PolicySpec registry_policy(std::string name) {
    const sched::PolicyInfo* info = sched::find_policy(name);
    if (info == nullptr)
        throw std::invalid_argument("registry_policy: unknown policy '" + name +
                                    "' (see sched::registered_policies())");
    PolicySpec spec;
    spec.label = name;
    spec.adaptive = info->adaptive;
    spec.make = [name = std::move(name)](const ArtifactSet& artifacts,
                                         std::uint64_t rep_seed) {
        sched::PolicyConfig config;
        if (artifacts.training)
            // Aliasing pointer: the model lives inside the shared training
            // artifact, which stays alive as long as any cell holds it.
            config.model = std::shared_ptr<const model::InterferenceModel>(
                artifacts.training, &artifacts.training->model);
        config.seed = rep_seed;
        return sched::make_policy(name, config);
    };
    return spec;
}

std::vector<PolicySpec> registry_policies(std::span<const std::string> names) {
    std::vector<PolicySpec> specs;
    specs.reserve(names.size());
    for (const std::string& name : names) specs.push_back(registry_policy(name));
    return specs;
}

const CellResult* CampaignResult::find(const std::string& workload,
                                       const std::string& policy) const {
    for (const auto& c : cells)
        if (c.workload == workload && c.policy == policy) return &c;
    return nullptr;
}

CampaignRunner::CampaignRunner() : CampaignRunner(Options{}) {}

CampaignRunner::CampaignRunner(Options opts, ArtifactCache* cache)
    : opts_(opts),
      cache_(cache != nullptr ? cache : &ArtifactCache::global()),
      pool_(opts.threads) {}

CampaignResult CampaignRunner::run(const Campaign& campaign,
                                   const std::vector<Aggregator*>& aggregators) {
    const auto start = std::chrono::steady_clock::now();
    if (campaign.configs.empty()) throw std::invalid_argument("campaign: no configs");
    // The policy axis: explicit columns first, then registered names.
    std::vector<PolicySpec> policies = campaign.policies;
    for (const std::string& name : campaign.policy_names)
        policies.push_back(registry_policy(name));
    if (policies.empty()) throw std::invalid_argument("campaign: no policies");

    // ---- resolve shared artifacts and the workload axis per config -------
    struct ConfigPlan {
        uarch::SimConfig cfg;
        ArtifactSet artifacts;
        std::vector<workloads::WorkloadSpec> workloads;
    };
    std::vector<ConfigPlan> plans;
    plans.reserve(campaign.configs.size());
    for (const auto& cfg : campaign.configs) {
        ConfigPlan plan;
        plan.cfg = cfg;
        if (campaign.needs_training) {
            const std::vector<std::string> apps = campaign.training_apps.empty()
                                                      ? workloads::training_apps()
                                                      : campaign.training_apps;
            plan.artifacts.training = cache_->training(cfg, campaign.trainer, apps);
        }
        if (campaign.needs_characterizations || campaign.use_paper_workloads)
            plan.artifacts.characterizations = cache_->characterizations(
                cfg, campaign.characterization_quanta, campaign.methodology.seed);
        if (campaign.needs_calibration)
            workloads::calibrate_suite(cfg, campaign.calibration_quanta,
                                       campaign.methodology.seed);
        plan.workloads = campaign.use_paper_workloads
                             ? workloads::paper_workloads(*plan.artifacts.characterizations,
                                                          campaign.methodology.seed)
                             : campaign.workloads;
        if (plan.workloads.empty()) throw std::invalid_argument("campaign: no workloads");
        plans.push_back(std::move(plan));
    }

    // ---- build the flat cell list in grid order ---------------------------
    const int reps = std::max(1, campaign.methodology.reps);
    struct CellState {
        std::size_t index = 0;  ///< position in grid order
        std::size_t config_index = 0, workload_index = 0, policy_index = 0;
        const ConfigPlan* plan = nullptr;
        const workloads::WorkloadSpec* spec = nullptr;
        const PolicySpec* policy = nullptr;
        std::vector<sched::RunResult> runs;
        std::vector<metrics::WorkloadMetrics> run_metrics;
        std::atomic<int> remaining{0};
    };
    std::vector<std::unique_ptr<CellState>> cells;
    for (std::size_t ci = 0; ci < plans.size(); ++ci)
        for (std::size_t wi = 0; wi < plans[ci].workloads.size(); ++wi)
            for (std::size_t pi = 0; pi < policies.size(); ++pi) {
                auto cell = std::make_unique<CellState>();
                cell->index = cells.size();
                cell->config_index = ci;
                cell->workload_index = wi;
                cell->policy_index = pi;
                cell->plan = &plans[ci];
                cell->spec = &plans[ci].workloads[wi];
                cell->policy = &policies[pi];
                cell->runs.resize(static_cast<std::size_t>(reps));
                cell->run_metrics.resize(static_cast<std::size_t>(reps));
                cell->remaining.store(reps, std::memory_order_relaxed);
                cells.push_back(std::move(cell));
            }

    // ---- reorder buffer: release finished cells in grid order -------------
    std::mutex emit_mutex;
    std::vector<std::unique_ptr<CellResult>> finished(cells.size());
    std::size_t next_emit = 0;
    std::vector<CellResult> emitted;
    emitted.reserve(cells.size());
    const auto emit_ready = [&](std::unique_ptr<CellResult> done, std::size_t index) {
        const std::lock_guard lock(emit_mutex);
        finished[index] = std::move(done);
        while (next_emit < finished.size() && finished[next_emit]) {
            CellResult& cell = *finished[next_emit];
            for (Aggregator* agg : aggregators) agg->on_cell(cell);
            if (opts_.log != nullptr)
                *opts_.log << "[" << (next_emit + 1) << "/" << cells.size() << "] "
                           << cell.workload << " / " << cell.policy
                           << " TT=" << cell.result.mean_metrics.turnaround_quanta << "\n";
            emitted.push_back(std::move(cell));
            finished[next_emit].reset();
            ++next_emit;
        }
    };

    // Per-cell flight recording: with SYNPA_TRACE and a SYNPA_TRACE_FILE
    // set, every repetition gets its own tracer and trace file (tagged
    // c<config>w<workload>p<policy>r<rep>), so parallel cells never share a
    // recorder and memoized artifacts stay byte-identical.
    const obs::TraceConfig trace_cfg = obs::TraceConfig::from_env();

    // ---- schedule every repetition over the persistent pool ---------------
    for (const auto& cell_ptr : cells) {
        CellState* cell = cell_ptr.get();
        for (int rep = 0; rep < reps; ++rep) {
            pool_.submit([this, &campaign, cell, rep, &emit_ready, &trace_cfg] {
                const workloads::MethodologyOptions& opts = campaign.methodology;
                workloads::MethodologyOptions rep_opts = opts;
                rep_opts.record_traces = opts.record_traces && rep == 0;
                rep_opts.threads = 1;  // parallelism lives at the rep grain
                std::unique_ptr<obs::Tracer> tracer;
                if (trace_cfg.enabled && !trace_cfg.file.empty()) {
                    char tag[64];
                    std::snprintf(tag, sizeof(tag), "c%zuw%zup%zur%d", cell->config_index,
                                  cell->workload_index, cell->policy_index, rep);
                    obs::TraceConfig cell_trace = trace_cfg;
                    cell_trace.file = obs::derive_trace_path(trace_cfg.file, tag);
                    tracer = std::make_unique<obs::Tracer>(std::move(cell_trace));
                    rep_opts.tracer = tracer.get();
                }
                const auto prepared = cache_->prepared(*cell->spec, cell->plan->cfg, opts, rep);
                const std::uint64_t rep_seed = common::derive_key(
                    opts.seed, common::hash_string(cell->spec->name), 0x9001,
                    static_cast<std::uint64_t>(rep));
                const auto pol = cell->policy->make(cell->plan->artifacts, rep_seed);
                // Nested parallelism composes by capping: repetitions
                // already fan out over this pool, so the cell's platform
                // only keeps sim_threads the host has spare (results are
                // identical at any thread count).
                uarch::SimConfig cell_cfg = cell->plan->cfg;
                cell_cfg.sim_threads =
                    uarch::nested_sim_threads(cell_cfg.sim_threads, pool_.size());
                cell->runs[static_cast<std::size_t>(rep)] = workloads::run_workload_once(
                    *prepared, cell_cfg, *pol, rep_opts);
                if (tracer) tracer->finish();
                cell->run_metrics[static_cast<std::size_t>(rep)] =
                    metrics::compute_metrics(cell->runs[static_cast<std::size_t>(rep)]);
                if (cell->remaining.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
                // Last repetition of this cell: finalize and stream it out.
                auto done = std::make_unique<CellResult>();
                done->config_index = cell->config_index;
                done->workload_index = cell->workload_index;
                done->policy_index = cell->policy_index;
                done->chips = campaign.configs[cell->config_index].num_chips;
                done->cores = campaign.configs[cell->config_index].cores;
                done->smt_ways = campaign.configs[cell->config_index].smt_ways;
                done->workload = cell->spec->name;
                done->policy = cell->policy->label;
                done->adaptive = cell->policy->adaptive;
                done->result = aggregate_repetitions(*cell->spec, std::move(cell->runs),
                                                     cell->run_metrics, opts.cv_limit);
                emit_ready(std::move(done), cell->index);
            });
        }
    }
    pool_.wait_idle();  // rethrows the first repetition failure, if any

    for (Aggregator* agg : aggregators) agg->finish();

    CampaignResult result;
    result.cells = std::move(emitted);
    for (const auto& plan : plans) result.artifacts.push_back(plan.artifacts);
    result.reps_executed = cells.size() * static_cast<std::size_t>(reps);
    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    return result;
}

workloads::PolicyComparison paired_comparison(const std::string& workload,
                                              const metrics::WorkloadMetrics& baseline,
                                              const metrics::WorkloadMetrics& treatment) {
    workloads::PolicyComparison c;
    c.workload = workload;
    c.baseline = baseline;
    c.treatment = treatment;
    c.tt_speedup = metrics::turnaround_speedup(baseline, treatment);
    c.ipc_speedup = metrics::ipc_speedup(baseline, treatment);
    c.fairness_delta = treatment.fairness - baseline.fairness;
    return c;
}

std::vector<workloads::PolicyComparison> compare_to_baseline(const CampaignResult& result,
                                                             std::size_t baseline_policy,
                                                             std::size_t treatment_policy) {
    std::map<std::size_t, const CellResult*> base, treat;
    for (const auto& c : result.cells) {
        if (c.policy_index == baseline_policy) base[c.workload_index] = &c;
        if (c.policy_index == treatment_policy) treat[c.workload_index] = &c;
    }
    std::vector<workloads::PolicyComparison> out;
    out.reserve(base.size());
    for (const auto& [wi, b] : base) {
        const auto it = treat.find(wi);
        if (it == treat.end()) continue;
        out.push_back(paired_comparison(b->workload, b->result.mean_metrics,
                                        it->second->result.mean_metrics));
    }
    return out;
}

}  // namespace synpa::exp
