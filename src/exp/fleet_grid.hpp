// Fleet-grid campaigns: the cluster-scale counterpart of the scenario grid.
//
// A FleetCampaign declares a (config x scenario x fleet-policy x repetition)
// grid of whole-cluster runs; FleetGridRunner executes every repetition over
// a persistent thread pool with the scenario grid's guarantees —
// deterministic per-rep seeds, traces and training memoized in the
// ArtifactCache, and finished cells streamed to aggregators in grid order
// through a reorder buffer, so results are bit-identical for threads=1 and
// threads=N.  Each cell's FleetRunner keeps its own node-stepping threads
// capped under the grid pool (nested_sim_threads), like grid cells cap
// their chip shards.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "exp/campaign.hpp"
#include "fleet/metrics.hpp"
#include "fleet/runner.hpp"
#include "scenario/scenario.hpp"

namespace synpa::exp {

struct FleetCampaign {
    std::string name;
    std::vector<uarch::SimConfig> node_configs;  ///< per-node platform shapes
    std::vector<scenario::ScenarioSpec> scenarios;
    /// Registered fleet-policy names (fleet::registered_fleet_policies()).
    std::vector<std::string> fleet_policies;
    std::string node_policy = "synpa";
    int nodes = 4;

    int reps = 1;  ///< repetitions re-sample arrivals (derived seeds)
    std::uint64_t max_quanta = 50'000;
    bool preemption = true;
    /// Node-stepping threads inside each cell's FleetRunner (capped under
    /// the grid pool via nested_sim_threads).
    std::size_t fleet_threads = 1;
    bool record_timelines = false;

    /// Shared artifacts (needed by model-based node policies and the
    /// interference-aware fleet policy; resolved per config).
    bool needs_training = false;
    model::TrainerOptions trainer;
    std::vector<std::string> training_apps;  ///< empty = workloads::training_apps()
    /// Pre-supplied interference model used when needs_training is false
    /// (e.g. the paper's Table IV coefficients) — lets acceptance benches
    /// skip the training phase without losing model-based policies.
    std::shared_ptr<const model::InterferenceModel> model;
};

/// One finished grid point.
struct FleetCellResult {
    std::size_t config_index = 0;
    std::size_t scenario_index = 0;
    std::size_t policy_index = 0;
    int nodes = 0;
    int chips = 0;     ///< per-node chips
    int cores = 0;     ///< per-node cores per chip
    int smt_ways = 0;
    std::string scenario;
    std::string fleet_policy;
    std::string node_policy;
    std::vector<fleet::FleetResult> runs;  ///< one per repetition
    fleet::FleetSummary summary;           ///< pooled across repetitions
};

/// Streaming consumer of finished fleet cells (grid order, exactly once).
class FleetAggregator {
public:
    virtual ~FleetAggregator() = default;
    virtual void on_cell(const FleetCellResult& cell) = 0;
    virtual void finish() {}
};

struct FleetGridResult {
    std::vector<FleetCellResult> cells;  ///< grid order
    std::vector<ArtifactSet> artifacts;  ///< one per campaign config
    std::size_t reps_executed = 0;
    double wall_seconds = 0.0;

    const FleetCellResult* find(const std::string& scenario,
                                const std::string& fleet_policy) const;
};

class FleetGridRunner {
public:
    struct Options {
        std::size_t threads = 0;      ///< workers; 0 = hardware concurrency
        std::ostream* log = nullptr;  ///< optional per-cell progress lines
    };

    FleetGridRunner();
    explicit FleetGridRunner(Options opts, ArtifactCache* cache = nullptr);

    FleetGridResult run(const FleetCampaign& campaign,
                        const std::vector<FleetAggregator*>& aggregators = {});

private:
    Options opts_;
    ArtifactCache* cache_;
    common::ThreadPool pool_;
};

/// One CSV row per cell: grid indices, labels, and the pooled SLO summary.
/// The leading columns are positional for the CI schema check; keep new
/// columns at the tail.
class FleetCsvAggregator final : public FleetAggregator {
public:
    explicit FleetCsvAggregator(std::ostream& os);
    void on_cell(const FleetCellResult& cell) override;
    void finish() override;

private:
    std::ostream& os_;
    bool header_written_ = false;
};

}  // namespace synpa::exp
