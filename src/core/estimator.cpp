#include "core/estimator.hpp"

#include <algorithm>
#include <utility>

namespace synpa::core {

SynpaEstimator::SynpaEstimator(model::InterferenceModel model, Options opts)
    : model_(std::move(model)), opts_(opts) {}

void SynpaEstimator::observe(std::span<const sched::TaskObservation> observations) {
    common::FlatIdMap<const sched::TaskObservation*> by_id;
    for (const auto& o : observations) by_id[o.task_id] = &o;

    auto ema_update = [&](int id, const model::CategoryVector& fresh) {
        model::CategoryVector* est = estimates_.find(id);
        if (est == nullptr) {
            estimates_.insert_or_assign(id, fresh);
            return;
        }
        for (std::size_t c = 0; c < model::kCategoryCount; ++c)
            (*est)[c] = opts_.ema_alpha * fresh[c] + (1.0 - opts_.ema_alpha) * (*est)[c];
        // Keep the estimate on the simplex after mixing.
        double sum = 0.0;
        for (double x : *est) sum += x;
        if (sum > 1e-9)
            for (double& x : *est) x /= sum;
    };

    for (const auto& o : observations) {
        if (o.corunner_task_ids.empty()) {
            // Ran alone: the SMT fractions *are* isolated fractions.
            ema_update(o.task_id, o.breakdown.fractions());
            continue;
        }
        if (o.corunner_task_ids.size() == 1) {
            // A 2-group: one model inversion recovers both isolated vectors.
            if (o.corunner_task_id < o.task_id) continue;  // handle each pair once
            const auto* partner = by_id.find(o.corunner_task_id);
            if (partner == nullptr) continue;
            const model::ModelInverter inverter(model_, opts_.inversion);
            const model::InversionResult inv =
                inverter.invert(o.breakdown.fractions(), (*partner)->breakdown.fractions());
            ema_update(o.task_id, inv.st_i);
            ema_update(o.corunner_task_id, inv.st_j);
            continue;
        }
        // A wider group (SMT-4): the pairwise inversion has no exact k-way
        // analogue, so invert against each co-runner separately and average
        // the recovered self-vectors.  Each task updates only itself; its
        // co-runners run the same procedure from their own observations.
        const model::ModelInverter inverter(model_, opts_.inversion);
        model::CategoryVector acc{};
        int inverted = 0;
        for (const int partner : o.corunner_task_ids) {
            const auto* other = by_id.find(partner);
            if (other == nullptr) continue;
            const model::InversionResult inv =
                inverter.invert(o.breakdown.fractions(), (*other)->breakdown.fractions());
            for (std::size_t c = 0; c < model::kCategoryCount; ++c) acc[c] += inv.st_i[c];
            ++inverted;
        }
        if (inverted == 0) continue;
        for (double& x : acc) x /= static_cast<double>(inverted);
        ema_update(o.task_id, acc);
    }
}

model::CategoryVector SynpaEstimator::estimate(int task_id) const {
    const model::CategoryVector* est = estimates_.find(task_id);
    if (est != nullptr) return *est;
    return {1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0};
}

double SynpaEstimator::pair_weight(int task_u, int task_v) const {
    const model::CategoryVector eu = estimate(task_u);
    const model::CategoryVector ev = estimate(task_v);
    return model_.predict_slowdown(eu, ev) + model_.predict_slowdown(ev, eu);
}

double SynpaEstimator::solo_weight(int task_id) const {
    return model_.predict_slowdown(estimate(task_id), model::CategoryVector{});
}

double SynpaEstimator::group_weight(std::span<const int> task_ids) const {
    std::vector<model::CategoryVector> members;
    members.reserve(task_ids.size());
    for (int id : task_ids) members.push_back(estimate(id));
    return model::predict_group_slowdown(model_, members);
}

std::vector<double> SynpaEstimator::member_slowdowns(std::span<const int> task_ids) const {
    std::vector<model::CategoryVector> members;
    members.reserve(task_ids.size());
    for (int id : task_ids) members.push_back(estimate(id));
    return model::predict_member_slowdowns(model_, members);
}

void SynpaEstimator::forget(int task_id) { estimates_.erase(task_id); }

void SynpaEstimator::transfer(int old_task_id, int new_task_id) {
    const model::CategoryVector* est = estimates_.find(old_task_id);
    if (est == nullptr) return;
    // Copy before inserting: a growing insert invalidates `est`.
    const model::CategoryVector moved = *est;
    estimates_.insert_or_assign(new_task_id, moved);
    estimates_.erase(old_task_id);
}

}  // namespace synpa::core
