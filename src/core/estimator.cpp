#include "core/estimator.hpp"

#include <algorithm>
#include <utility>

namespace synpa::core {

SynpaEstimator::SynpaEstimator(model::InterferenceModel model, Options opts)
    : model_(std::move(model)), opts_(opts) {}

void SynpaEstimator::observe(std::span<const sched::TaskObservation> observations) {
    std::unordered_map<int, const sched::TaskObservation*> by_id;
    for (const auto& o : observations) by_id[o.task_id] = &o;

    auto ema_update = [&](int id, const model::CategoryVector& fresh) {
        auto [it, inserted] = estimates_.try_emplace(id, fresh);
        if (inserted) return;
        for (std::size_t c = 0; c < model::kCategoryCount; ++c)
            it->second[c] = opts_.ema_alpha * fresh[c] + (1.0 - opts_.ema_alpha) * it->second[c];
        // Keep the estimate on the simplex after mixing.
        double sum = 0.0;
        for (double x : it->second) sum += x;
        if (sum > 1e-9)
            for (double& x : it->second) x /= sum;
    };

    for (const auto& o : observations) {
        if (o.corunner_task_ids.empty()) {
            // Ran alone: the SMT fractions *are* isolated fractions.
            ema_update(o.task_id, o.breakdown.fractions());
            continue;
        }
        if (o.corunner_task_ids.size() == 1) {
            // A 2-group: one model inversion recovers both isolated vectors.
            if (o.corunner_task_id < o.task_id) continue;  // handle each pair once
            const auto it = by_id.find(o.corunner_task_id);
            if (it == by_id.end()) continue;
            const model::ModelInverter inverter(model_, opts_.inversion);
            const model::InversionResult inv =
                inverter.invert(o.breakdown.fractions(), it->second->breakdown.fractions());
            ema_update(o.task_id, inv.st_i);
            ema_update(o.corunner_task_id, inv.st_j);
            continue;
        }
        // A wider group (SMT-4): the pairwise inversion has no exact k-way
        // analogue, so invert against each co-runner separately and average
        // the recovered self-vectors.  Each task updates only itself; its
        // co-runners run the same procedure from their own observations.
        const model::ModelInverter inverter(model_, opts_.inversion);
        model::CategoryVector acc{};
        int inverted = 0;
        for (const int partner : o.corunner_task_ids) {
            const auto it = by_id.find(partner);
            if (it == by_id.end()) continue;
            const model::InversionResult inv =
                inverter.invert(o.breakdown.fractions(), it->second->breakdown.fractions());
            for (std::size_t c = 0; c < model::kCategoryCount; ++c) acc[c] += inv.st_i[c];
            ++inverted;
        }
        if (inverted == 0) continue;
        for (double& x : acc) x /= static_cast<double>(inverted);
        ema_update(o.task_id, acc);
    }
}

model::CategoryVector SynpaEstimator::estimate(int task_id) const {
    const auto it = estimates_.find(task_id);
    if (it != estimates_.end()) return it->second;
    return {1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0};
}

double SynpaEstimator::pair_weight(int task_u, int task_v) const {
    const model::CategoryVector eu = estimate(task_u);
    const model::CategoryVector ev = estimate(task_v);
    return model_.predict_slowdown(eu, ev) + model_.predict_slowdown(ev, eu);
}

double SynpaEstimator::solo_weight(int task_id) const {
    return model_.predict_slowdown(estimate(task_id), model::CategoryVector{});
}

double SynpaEstimator::group_weight(std::span<const int> task_ids) const {
    std::vector<model::CategoryVector> members;
    members.reserve(task_ids.size());
    for (int id : task_ids) members.push_back(estimate(id));
    return model::predict_group_slowdown(model_, members);
}

std::vector<double> SynpaEstimator::member_slowdowns(std::span<const int> task_ids) const {
    std::vector<model::CategoryVector> members;
    members.reserve(task_ids.size());
    for (int id : task_ids) members.push_back(estimate(id));
    return model::predict_member_slowdowns(model_, members);
}

void SynpaEstimator::forget(int task_id) { estimates_.erase(task_id); }

void SynpaEstimator::transfer(int old_task_id, int new_task_id) {
    const auto it = estimates_.find(old_task_id);
    if (it == estimates_.end()) return;
    estimates_[new_task_id] = it->second;
    estimates_.erase(old_task_id);
}

}  // namespace synpa::core
