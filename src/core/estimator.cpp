#include "core/estimator.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/config.hpp"

namespace synpa::core {

double ema_deadband_default() {
    return common::env_double("SYNPA_EMA_DEADBAND", 0.0);
}

SynpaEstimator::SynpaEstimator(model::InterferenceModel model, Options opts)
    : model_(std::move(model)), flat_(model_), opts_(opts) {}

void SynpaEstimator::ema_update(int id, const model::CategoryVector& fresh) {
    model::CategoryVector* est = estimates_.find(id);
    if (est == nullptr) {
        estimates_.insert_or_assign(id, fresh);
        ++epochs_[id];
        return;
    }
    const model::CategoryVector before = *est;
    for (std::size_t c = 0; c < model::kCategoryCount; ++c)
        (*est)[c] = opts_.ema_alpha * fresh[c] + (1.0 - opts_.ema_alpha) * (*est)[c];
    // Keep the estimate on the simplex after mixing.
    double sum = 0.0;
    for (double x : *est) sum += x;
    if (sum > 1e-9)
        for (double& x : *est) x /= sum;
    // Deadband (when configured): an update that moves every category by
    // less than the threshold is measurement noise, not behaviour — keep
    // the stored value so the estimate (and its epoch) reaches a true
    // steady state on stochastic platforms.
    if (opts_.ema_deadband > 0.0) {
        bool within = true;
        for (std::size_t c = 0; c < model::kCategoryCount; ++c)
            if (std::abs((*est)[c] - before[c]) >= opts_.ema_deadband) {
                within = false;
                break;
            }
        if (within) {
            *est = before;
            return;
        }
    }
    // Epoch moves only when the stored value actually changed: a task in a
    // stable phase converges to a floating-point fixed point of the EMA,
    // after which its cached costs stay valid indefinitely.
    if (*est != before) ++epochs_[id];
}

void SynpaEstimator::observe(std::span<const sched::TaskObservation> observations) {
    common::FlatIdMap<const sched::TaskObservation*> by_id;
    for (const auto& o : observations) by_id[o.task_id] = &o;

    for (const auto& o : observations) {
        if (o.corunner_task_ids.empty()) {
            // Ran alone: the SMT fractions *are* isolated fractions.
            ema_update(o.task_id, o.breakdown.fractions());
            continue;
        }
        if (o.corunner_task_ids.size() == 1) {
            const auto* partner = by_id.find(o.corunner_task_id);
            if (partner != nullptr) {
                // A fully observed 2-group: one inversion recovers both
                // isolated vectors, owned by the lower-id member (whose
                // observation we just confirmed present).
                if (o.corunner_task_id < o.task_id) continue;  // handle each pair once
                const model::ModelInverter inverter(model_, opts_.inversion);
                const model::InversionResult inv =
                    inverter.invert(o.breakdown.fractions(), (*partner)->breakdown.fractions());
                ema_update(o.task_id, inv.st_i);
                ema_update(o.corunner_task_id, inv.st_j);
                continue;
            }
            // The partner retired mid-quantum (open system): its observation
            // is gone, but the survivor still spent the quantum co-running
            // and its counters carry that interference.  Synthesize the
            // missing SMT-side fractions from the forward model on the
            // current estimates and invert as usual, updating only the
            // survivor — ownership falls to whichever member is present.
            const model::CategoryVector partner_smt =
                model_.predict(estimate(o.corunner_task_id), estimate(o.task_id));
            double sum = 0.0;
            for (const double x : partner_smt) sum += x;
            if (sum <= 1e-9) continue;
            model::CategoryVector partner_fractions{};
            for (std::size_t c = 0; c < model::kCategoryCount; ++c)
                partner_fractions[c] = partner_smt[c] / sum;
            const model::ModelInverter inverter(model_, opts_.inversion);
            const model::InversionResult inv =
                inverter.invert(o.breakdown.fractions(), partner_fractions);
            ema_update(o.task_id, inv.st_i);
            continue;
        }
        // A wider group (SMT-4): the pairwise inversion has no exact k-way
        // analogue, so invert against each co-runner separately and average
        // the recovered self-vectors.  Each task updates only itself; its
        // co-runners run the same procedure from their own observations.
        const model::ModelInverter inverter(model_, opts_.inversion);
        model::CategoryVector acc{};
        int inverted = 0;
        for (const int partner : o.corunner_task_ids) {
            const auto* other = by_id.find(partner);
            if (other == nullptr) continue;
            const model::InversionResult inv =
                inverter.invert(o.breakdown.fractions(), (*other)->breakdown.fractions());
            for (std::size_t c = 0; c < model::kCategoryCount; ++c) acc[c] += inv.st_i[c];
            ++inverted;
        }
        if (inverted == 0) continue;
        for (double& x : acc) x /= static_cast<double>(inverted);
        ema_update(o.task_id, acc);
    }
}

model::CategoryVector SynpaEstimator::estimate(int task_id) const {
    const model::CategoryVector* est = estimates_.find(task_id);
    if (est != nullptr) return *est;
    return {1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0};
}

double SynpaEstimator::pair_weight(int task_u, int task_v) const {
    const model::CategoryVector eu = estimate(task_u);
    const model::CategoryVector ev = estimate(task_v);
    return flat_.predict_slowdown(eu, ev) + flat_.predict_slowdown(ev, eu);
}

double SynpaEstimator::solo_weight(int task_id) const {
    return flat_.predict_slowdown(estimate(task_id), model::CategoryVector{});
}

namespace {

/// Stack-first member-vector gather: Step-2 groups are at most SMT-width
/// wide, so the common case never touches the heap.
constexpr std::size_t kInlineMembers = 8;

}  // namespace

double SynpaEstimator::group_weight(std::span<const int> task_ids) const {
    std::array<model::CategoryVector, kInlineMembers> inline_buf;
    std::vector<model::CategoryVector> heap;
    model::CategoryVector* members = inline_buf.data();
    if (task_ids.size() > kInlineMembers) {
        heap.resize(task_ids.size());
        members = heap.data();
    }
    for (std::size_t i = 0; i < task_ids.size(); ++i) members[i] = estimate(task_ids[i]);
    return flat_.group_slowdown({members, task_ids.size()});
}

void SynpaEstimator::member_slowdowns(std::span<const int> task_ids,
                                      std::vector<double>& out) const {
    std::array<model::CategoryVector, kInlineMembers> inline_buf;
    std::vector<model::CategoryVector> heap;
    model::CategoryVector* members = inline_buf.data();
    if (task_ids.size() > kInlineMembers) {
        heap.resize(task_ids.size());
        members = heap.data();
    }
    for (std::size_t i = 0; i < task_ids.size(); ++i) members[i] = estimate(task_ids[i]);
    out.resize(task_ids.size());
    flat_.member_slowdowns({members, task_ids.size()}, out);
}

std::vector<double> SynpaEstimator::member_slowdowns(std::span<const int> task_ids) const {
    std::vector<double> out;
    member_slowdowns(task_ids, out);
    return out;
}

void SynpaEstimator::forget(int task_id) {
    if (estimates_.erase(task_id)) ++epochs_[task_id];
}

void SynpaEstimator::transfer(int old_task_id, int new_task_id) {
    const model::CategoryVector* est = estimates_.find(old_task_id);
    if (est == nullptr) return;
    // Copy before inserting: a growing insert invalidates `est`.
    const model::CategoryVector moved = *est;
    estimates_.insert_or_assign(new_task_id, moved);
    estimates_.erase(old_task_id);
    ++epochs_[old_task_id];
    ++epochs_[new_task_id];
}

}  // namespace synpa::core
