#include "core/synpa_policy.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/config.hpp"
#include "common/flat_map.hpp"
#include "obs/trace.hpp"
#include "sched/baselines.hpp"
#include "sched/topology.hpp"

namespace synpa::core {
namespace {

/// Greedy pair selection: repeatedly takes the lightest remaining edge.
/// Enforces the Matcher odd-N contract: on an odd (or zero) vertex count a
/// perfect matching does not exist, and silently leaving a vertex with
/// mate == -1 would hand callers a malformed allocation — throw like every
/// other solver so callers route through min_weight_partial instead.
std::vector<std::pair<int, int>> greedy_pairs(const matching::WeightMatrix& w) {
    const std::size_t n = w.size();
    if (n == 0 || n % 2 != 0)
        throw std::invalid_argument(
            "GreedyMatcher: perfect matching requires an even vertex count >= 2");
    struct Edge {
        double weight;
        std::size_t u, v;
    };
    std::vector<Edge> edges;
    edges.reserve(n * (n - 1) / 2);
    for (std::size_t u = 0; u < n; ++u)
        for (std::size_t v = u + 1; v < n; ++v) edges.push_back({w.get(u, v), u, v});
    std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
        return a.weight < b.weight;
    });
    std::vector<bool> used(n, false);
    std::vector<std::pair<int, int>> out;
    for (const Edge& e : edges) {
        if (used[e.u] || used[e.v]) continue;
        used[e.u] = used[e.v] = true;
        out.emplace_back(static_cast<int>(e.u), static_cast<int>(e.v));
        if (out.size() * 2 == n) break;
    }
    return out;
}

/// Adapts the greedy heuristic to the Matcher interface so it can share the
/// hysteresis logic with the exact solvers.
class GreedyMatcher final : public matching::Matcher {
public:
    matching::MatchingResult min_weight_perfect(
        const matching::WeightMatrix& w) const override {
        matching::MatchingResult r;
        r.pairs = greedy_pairs(w);
        r.mate.assign(w.size(), -1);
        for (auto [u, v] : r.pairs) {
            r.mate[static_cast<std::size_t>(u)] = v;
            r.mate[static_cast<std::size_t>(v)] = u;
        }
        r.total_weight = matching::matching_weight(w, r.pairs);
        return r;
    }
    matching::MatchingResult max_weight_perfect(
        const matching::WeightMatrix& w) const override {
        matching::WeightMatrix neg(w.size());
        for (std::size_t u = 0; u < w.size(); ++u)
            for (std::size_t v = u + 1; v < w.size(); ++v) neg.set(u, v, -w.get(u, v));
        matching::MatchingResult r = min_weight_perfect(neg);
        r.total_weight = matching::matching_weight(w, r.pairs);
        return r;
    }
};

}  // namespace

bool weight_cache_default() { return common::env_int("SYNPA_WEIGHT_CACHE", 1) != 0; }

const char* objective_name(Objective objective) noexcept {
    switch (objective) {
        case Objective::kTotalSlowdown: return "total";
        case Objective::kThroughput: return "stp";
        case Objective::kFairness: return "fair";
        case Objective::kTail: return "tail";
    }
    return "total";
}

double objective_cost(Objective objective, std::span<const double> member_slowdowns) noexcept {
    double cost = 0.0;
    for (const double raw : member_slowdowns) {
        // Predicted slowdowns below 1 are estimator noise (co-running
        // cannot speed a task up); clamping to 1 keeps the nonlinear
        // objectives from rewarding garbage predictions — without it a
        // mispredicted s = 0.1 contributes 1 - 1/s = -9 to the STP cost
        // and near-zero to the power objectives, locking the matcher onto
        // exactly the pairs the model understands least.
        const double s = std::max(raw, 1.0);
        switch (objective) {
            case Objective::kTotalSlowdown: cost += s; break;
            case Objective::kThroughput: cost += 1.0 - 1.0 / s; break;
            case Objective::kFairness: cost += s * s * s * s; break;
            case Objective::kTail: cost += s * s; break;
        }
    }
    return cost;
}

SynpaPolicy::SynpaPolicy(model::InterferenceModel model, Options opts)
    : model_(model), opts_(opts), estimator_(model_, opts.estimator) {}

std::string SynpaPolicy::name() const {
    std::string base = "synpa";
    switch (opts_.selector) {
        case PairSelector::kBlossom: break;
        case PairSelector::kSubsetDp: base += "-dp"; break;
        case PairSelector::kGreedy: base += "-greedy"; break;
    }
    if (opts_.objective != Objective::kTotalSlowdown)
        base += std::string("-") + objective_name(opts_.objective);
    return base;
}

void SynpaPolicy::set_model(model::InterferenceModel model) {
    model_ = model;
    estimator_.set_model(std::move(model));
}

void SynpaPolicy::reset_estimate(int task_id) { estimator_.forget(task_id); }

void SynpaPolicy::on_phase_alarm(int task_id) { estimator_.bump_epoch(task_id); }

double SynpaPolicy::pair_cost_uncached(int task_u, int task_v) const {
    if (opts_.objective == Objective::kTotalSlowdown)
        return estimator_.pair_weight(task_u, task_v);
    const std::array<int, 2> ids = {task_u, task_v};
    estimator_.member_slowdowns(ids, slowdown_scratch_);
    return objective_cost(opts_.objective, slowdown_scratch_);
}

double SynpaPolicy::solo_cost_uncached(int task_id) const {
    if (opts_.objective == Objective::kTotalSlowdown)
        return estimator_.solo_weight(task_id);
    const std::array<int, 1> ids = {task_id};
    estimator_.member_slowdowns(ids, slowdown_scratch_);
    return objective_cost(opts_.objective, slowdown_scratch_);
}

double SynpaPolicy::group_cost_uncached(std::span<const int> task_ids) const {
    if (opts_.objective == Objective::kTotalSlowdown)
        return estimator_.group_weight(task_ids);
    estimator_.member_slowdowns(task_ids, slowdown_scratch_);
    return objective_cost(opts_.objective, slowdown_scratch_);
}

double SynpaPolicy::pair_cost(int task_u, int task_v) const {
    if (!opts_.weight_cache) return pair_cost_uncached(task_u, task_v);
    cache_.sync_model_epoch(estimator_.model_epoch());
    const std::uint64_t eu = estimator_.estimate_epoch(task_u);
    const std::uint64_t ev = estimator_.estimate_epoch(task_v);
    if (const double* hit = cache_.find_pair(task_u, eu, task_v, ev)) return *hit;
    const double cost = pair_cost_uncached(task_u, task_v);
    cache_.store_pair(task_u, eu, task_v, ev, cost);
    return cost;
}

double SynpaPolicy::solo_cost(int task_id) const {
    if (!opts_.weight_cache) return solo_cost_uncached(task_id);
    cache_.sync_model_epoch(estimator_.model_epoch());
    const std::uint64_t epoch = estimator_.estimate_epoch(task_id);
    if (const double* hit = cache_.find_solo(task_id, epoch)) return *hit;
    const double cost = solo_cost_uncached(task_id);
    cache_.store_solo(task_id, epoch, cost);
    return cost;
}

double SynpaPolicy::group_cost(std::span<const int> task_ids) const {
    // Member order matters to the key: nonlinear objectives fold per-member
    // slowdowns in member order, so permutations are distinct cache lines.
    const std::size_t k = task_ids.size();
    if (!opts_.weight_cache || k == 0 || k > WeightCache::kMaxGroup)
        return group_cost_uncached(task_ids);
    cache_.sync_model_epoch(estimator_.model_epoch());
    WeightCache::GroupKey key;
    key.fill(-1);
    std::array<std::uint64_t, WeightCache::kMaxGroup> epochs{};
    for (std::size_t i = 0; i < k; ++i) {
        key[i] = task_ids[i];
        epochs[i] = estimator_.estimate_epoch(task_ids[i]);
    }
    if (const double* hit = cache_.find_group(key, k, epochs)) return *hit;
    const double cost = group_cost_uncached(task_ids);
    cache_.store_group(key, k, epochs, cost);
    return cost;
}

const matching::Matcher& SynpaPolicy::matcher() const {
    static const GreedyMatcher greedy;
    switch (opts_.selector) {
        case PairSelector::kBlossom: return blossom_;
        case PairSelector::kSubsetDp: return subset_dp_;
        case PairSelector::kGreedy: return greedy;
    }
    return blossom_;
}

std::vector<std::pair<int, int>> SynpaPolicy::select_pairs(
    const matching::WeightMatrix& weights) const {
    return matcher().min_weight_perfect(weights).pairs;
}

std::vector<std::vector<int>> SynpaPolicy::select_groups(std::span<const int> task_ids,
                                                         std::size_t cores,
                                                         std::size_t width) const {
    const matching::GroupCost cost = [&](std::span<const int> group) {
        std::vector<int> ids;
        ids.reserve(group.size());
        for (const int i : group) ids.push_back(task_ids[static_cast<std::size_t>(i)]);
        return group_cost(ids);
    };
    const matching::GroupingResult sel =
        matching::min_weight_grouping(task_ids.size(), cores, width, cost);
    return sel.groups;
}

void SynpaPolicy::set_tracer(obs::Tracer* tracer) {
    tracer_ = tracer != nullptr && tracer->enabled() ? tracer : nullptr;
}

void SynpaPolicy::trace_allocation(const sched::CoreAllocation& alloc) const {
    if (tracer_ == nullptr || !tracer_->wants(obs::EventKind::kAllocation)) return;
    obs::TraceEvent e;
    e.kind = obs::EventKind::kAllocation;
    e.quantum = tracer_->quantum();
    e.detail = name();
    double total_cost = 0.0;
    for (std::size_t c = 0; c < alloc.size(); ++c) {
        const sched::CoreGroup& g = alloc[c];
        if (g.empty()) continue;
        ++e.a;
        const double cost = group_cost(g.members());
        total_cost += cost;
        e.detail += " c" + std::to_string(c) + "[";
        for (int i = 0; i < g.occupancy(); ++i) {
            if (i > 0) e.detail += ",";
            e.detail += std::to_string(g[static_cast<std::size_t>(i)]);
        }
        char cost_buf[32];
        std::snprintf(cost_buf, sizeof(cost_buf), "]=%.3f", cost);
        e.detail += cost_buf;
    }
    e.value = total_cost;
    tracer_->emit(std::move(e));
}

sched::CoreAllocation SynpaPolicy::reallocate(
    std::span<const sched::TaskObservation> observations) {
    if (observations.empty()) return {};
    // Step 1: refresh isolated-behaviour estimates from this quantum.
    estimator_.observe(observations);

    const sched::TopologyView topo = sched::observed_topology(observations);
    if (topo.chips <= 1) {
        sched::CoreAllocation alloc = allocate_chip(observations, 0);
        trace_allocation(alloc);
        publish_cache_metrics();
        return alloc;
    }

    // Multi-chip Step 3 decomposes: pick each task's chip first — migrating
    // across chips only when the estimator's predicted benefit beats the
    // configured cross-chip cost — then run the single-chip selection per
    // chip (interference never crosses a chip boundary; each chip has its
    // own LLC and DRAM channel).
    const sched::SoloCost solo = [&](std::size_t i) {
        return solo_cost(observations[i].task_id);
    };
    const sched::PairCost pair = [&](std::size_t u, std::size_t v) {
        return pair_cost(observations[u].task_id, observations[v].task_id);
    };
    sched::CoreAllocation alloc = sched::allocate_across_chips(
        observations, topo, solo, pair, opts_.cross_chip_penalty,
        [this](int chip, std::span<const sched::TaskObservation> local,
               std::span<const std::size_t>) { return allocate_chip(local, chip); });
    trace_allocation(alloc);
    publish_cache_metrics();
    return alloc;
}

void SynpaPolicy::publish_cache_metrics() const {
    if (tracer_ == nullptr || !opts_.weight_cache) return;
    const WeightCache::Stats& s = cache_.stats();
    obs::MetricsRegistry& m = tracer_->metrics();
    m.counter("weight_cache.hits").add(s.hits - published_.hits);
    m.counter("weight_cache.misses").add(s.misses - published_.misses);
    m.counter("weight_cache.solve_reuse").add(s.solve_reuse - published_.solve_reuse);
    const std::uint64_t lookups = s.hits + s.misses;
    // An all-clean quantum performs no lookups at all (the solve memo
    // answers first); an empty denominator therefore means "everything
    // reused", not "no data".
    m.gauge("weight_cache.hit_rate")
        .set(lookups == 0 ? 1.0 : static_cast<double>(s.hits) / static_cast<double>(lookups));
    published_ = s;
}

sched::CoreAllocation SynpaPolicy::allocate_chip(
    std::span<const sched::TaskObservation> observations, int chip) {
    if (observations.empty()) return {};
    if (!opts_.weight_cache || chip < 0) return allocate_chip_uncached(observations);
    cache_.sync_model_epoch(estimator_.model_epoch());

    // Flatten everything the uncached solve reads into one key: per task
    // its id, incumbent core, co-runner list and estimate epoch, plus the
    // chip shape and the model epoch.  place_groups/place_pairs consume
    // only task_id + core; the hysteresis path reads corunner_task_id; all
    // costs are functions of (estimates, objective) and the estimate epochs
    // name the estimate values exactly.  A key match therefore certifies
    // the solver would reproduce the memoized allocation bit for bit.
    const auto encode = [](int v) {
        return static_cast<std::uint64_t>(static_cast<std::int64_t>(v));
    };
    std::vector<std::uint64_t> key;
    key.reserve(4 + observations.size() * 6);
    key.push_back(observations.size());
    key.push_back(encode(sched::observed_smt_ways(observations)));
    key.push_back(sched::observed_total_cores(observations));
    key.push_back(estimator_.model_epoch());
    for (const auto& o : observations) {
        key.push_back(encode(o.task_id));
        key.push_back(encode(o.core));
        key.push_back(encode(o.corunner_task_id));
        key.push_back(o.corunner_task_ids.size());
        for (const int partner : o.corunner_task_ids) key.push_back(encode(partner));
        key.push_back(estimator_.estimate_epoch(o.task_id));
    }

    if (static_cast<std::size_t>(chip) >= solve_memo_.size())
        solve_memo_.resize(static_cast<std::size_t>(chip) + 1);
    SolveMemo& memo = solve_memo_[static_cast<std::size_t>(chip)];
    if (memo.valid && memo.key == key) {
        ++cache_.stats().solve_reuse;
        return memo.alloc;
    }
    sched::CoreAllocation alloc = allocate_chip_uncached(observations);
    memo.key = std::move(key);
    memo.alloc = alloc;
    memo.valid = true;
    return alloc;
}

sched::CoreAllocation SynpaPolicy::allocate_chip_uncached(
    std::span<const sched::TaskObservation> observations) {
    if (observations.empty()) return {};
    const std::size_t n = observations.size();
    const std::size_t total_cores = sched::observed_total_cores(observations);
    const int width = sched::observed_smt_ways(observations);

    // Width 1 (SMT disabled in BIOS): there is no grouping decision — every
    // task keeps a core of its own.
    if (width == 1) {
        std::vector<sched::CoreGroup> entries;
        entries.reserve(n);
        for (const auto& o : observations) entries.push_back(sched::CoreGroup{o.task_id});
        return sched::place_groups(entries, observations, total_cores);
    }

    // Width > 2 (SMT-4): Step 2+3 become a k-way grouping — group costs are
    // the estimator's group-slowdown predictor (symmetrized pairwise terms;
    // singletons score their "runs alone" weight), solved exactly for small
    // live sets and by deterministic local search beyond.  No hysteresis:
    // the width-2 near-tie oscillation this guards against is much rarer in
    // the k-way cost surface, and place_groups still pins survivors.
    if (width > 2) {
        std::vector<int> ids;
        ids.reserve(n);
        for (const auto& o : observations) ids.push_back(o.task_id);
        const std::vector<std::vector<int>> groups =
            select_groups(ids, total_cores, static_cast<std::size_t>(width));
        std::vector<sched::CoreGroup> entries;
        entries.reserve(groups.size());
        for (const auto& group : groups) {
            sched::CoreGroup g;
            for (const int i : group) g.add(ids[static_cast<std::size_t>(i)]);
            entries.push_back(g);
        }
        return sched::place_groups(entries, observations, total_cores);
    }

    // Step 2: predicted combined slowdown for every candidate pair.
    matching::WeightMatrix weights(n);
    for (std::size_t u = 0; u < n; ++u)
        for (std::size_t v = u + 1; v < n; ++v)
            weights.set(u, v, pair_cost(observations[u].task_id,
                                        observations[v].task_id));

    // Partial load (open system, N != 2 * cores): Step 3 becomes an
    // imperfect matching — the padded solver weighs every candidate pair's
    // combined slowdown against the two members' "runs alone" terms, so it
    // decides *which* threads deserve a core of their own.  No hysteresis
    // here: arrivals and departures churn the index space every few quanta
    // anyway, and place_groups still pins survivors to incumbent cores.
    if (n != 2 * total_cores) {
        std::vector<double> solo(n);
        for (std::size_t i = 0; i < n; ++i)
            solo[i] = solo_cost(observations[i].task_id);
        // The dummy-node reduction needs an exact solver (see matching.hpp);
        // the greedy ablation falls back to Blossom under partial load.
        const matching::Matcher& exact =
            opts_.selector == PairSelector::kGreedy
                ? static_cast<const matching::Matcher&>(blossom_)
                : matcher();
        const matching::PartialMatching sel =
            matching::min_weight_partial(weights, solo, total_cores, exact);
        std::vector<std::pair<int, int>> entries;
        for (auto [u, v] : sel.pairs)
            entries.emplace_back(observations[static_cast<std::size_t>(u)].task_id,
                                 observations[static_cast<std::size_t>(v)].task_id);
        for (int u : sel.singles)
            entries.emplace_back(observations[static_cast<std::size_t>(u)].task_id,
                                 sched::kNoTask);
        return sched::place_groups(sched::groups_from_pairs(entries), observations,
                                   total_cores);
    }

    // Current pairing in index space, for hysteresis.
    std::vector<std::pair<int, int>> current;
    common::FlatIdMap<std::size_t> index_of;
    for (std::size_t i = 0; i < n; ++i) index_of[observations[i].task_id] = i;
    for (std::size_t i = 0; i < n; ++i) {
        const int partner = observations[i].corunner_task_id;
        const std::size_t* it = partner >= 0 ? index_of.find(partner) : nullptr;
        if (it != nullptr && *it > i)
            current.emplace_back(static_cast<int>(i), static_cast<int>(*it));
    }

    // Step 3: most synergistic perfect matching, with hysteresis against
    // churn, placed to avoid migrations.
    const matching::StabilizedSelection sel = matching::stabilized_min_weight(
        weights, current, matcher(), opts_.stability_bias, opts_.keep_threshold);
    std::vector<std::pair<int, int>> id_pairs;
    for (auto [u, v] : sel.pairs)
        id_pairs.emplace_back(observations[static_cast<std::size_t>(u)].task_id,
                              observations[static_cast<std::size_t>(v)].task_id);
    return sched::place_pairs(id_pairs, observations);
}

void SynpaPolicy::on_task_replaced(int old_task_id, int new_task_id) {
    // transfer() bumps both epochs, so cached costs involving either id
    // recompute; the retired id's cache row is dropped outright.
    estimator_.transfer(old_task_id, new_task_id);
    cache_.forget(old_task_id);
}

void SynpaPolicy::on_task_finished(int task_id) {
    estimator_.forget(task_id);  // bumps the epoch
    cache_.forget(task_id);
}

}  // namespace synpa::core
