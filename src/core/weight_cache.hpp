// Dirty-set memoization of the allocator's Step-2 candidate costs.
//
// Every quantum SynpaPolicy folds the estimator's predictions into
// objective costs for O(N^2) candidate pairs (and the SMT-4 grouping
// oracle queries thousands of candidate groups on top).  Most of those
// queries repeat verbatim quantum after quantum: an estimate only changes
// when observe() actually moves the EMA, and tasks in stable phases reach
// a floating-point fixed point within a few quanta.  This cache keys each
// memoized cost on the contributing tasks' *estimate epochs*
// (SynpaEstimator::estimate_epoch — bumped exactly when the stored
// estimate changes bitwise) plus the model epoch, so a hit returns the
// same bits a recomputation would produce and only rows whose epoch moved
// are recomputed — the dirty set.
//
// Determinism contract: lookups never change results, only skip work; the
// group store is a std::map (ordered, DET-01-clean) with a deterministic
// size cap.  Memory: solo entries and pair rows are FlatIdMap-backed and
// grow to the largest task id seen (pair rows are dropped via forget()
// when a task retires; entries under a *lower* surviving id become
// unreachable garbage, bounded by the same id-density argument as
// common::FlatIdMap itself).
#pragma once

#include <array>
#include <cstdint>
#include <map>

#include "common/flat_map.hpp"

namespace synpa::core {

class WeightCache {
public:
    /// Groups are cached up to this many members (the CoreGroup/SMT-4
    /// ceiling); wider queries bypass the cache.
    static constexpr std::size_t kMaxGroup = 4;
    /// Deterministic bound on distinct cached groups: the store is cleared
    /// whole when it would exceed this (clearing depends only on the
    /// insertion history, which is deterministic).
    static constexpr std::size_t kMaxGroupEntries = 1u << 18;

    struct Stats {
        std::uint64_t hits = 0;        ///< cost lookups answered from cache
        std::uint64_t misses = 0;      ///< cost lookups that recomputed
        std::uint64_t solve_reuse = 0; ///< whole-chip solves skipped (policy memo)
        std::uint64_t group_evictions = 0;  ///< whole-store clears at the size cap
    };

    /// Ordered member ids padded with -1; order matters — group costs fold
    /// member slowdowns in member order, so permutations are distinct keys.
    using GroupKey = std::array<int, kMaxGroup>;

    /// Drops everything when the model epoch moved (set_model swaps every
    /// coefficient, so no cached cost survives).  Call before lookups.
    void sync_model_epoch(std::uint64_t epoch) {
        if (epoch == model_epoch_) return;
        model_epoch_ = epoch;
        clear();
    }

    const double* find_solo(int id, std::uint64_t epoch);
    void store_solo(int id, std::uint64_t epoch, double cost);

    /// Pair costs are order-independent (two-element folds only ever add
    /// two doubles, and IEEE addition commutes), so (u, v) is normalized
    /// to (min, max) internally.
    const double* find_pair(int u, std::uint64_t eu, int v, std::uint64_t ev);
    void store_pair(int u, std::uint64_t eu, int v, std::uint64_t ev, double cost);

    /// `size` members of `key` are significant; epochs align with them.
    const double* find_group(const GroupKey& key, std::size_t size,
                             const std::array<std::uint64_t, kMaxGroup>& epochs);
    void store_group(const GroupKey& key, std::size_t size,
                     const std::array<std::uint64_t, kMaxGroup>& epochs, double cost);

    /// Drops the retired task's solo entry and pair row.  Group entries
    /// (and pair entries under a lower surviving id) age out through the
    /// epoch check instead — a retired id's epoch was bumped by forget().
    void forget(int id);

    void clear();

    const Stats& stats() const noexcept { return stats_; }
    Stats& stats() noexcept { return stats_; }

private:
    struct SoloEntry {
        std::uint64_t epoch = 0;
        double cost = 0.0;
    };
    struct PairEntry {
        std::uint64_t lo_epoch = 0;
        std::uint64_t hi_epoch = 0;
        double cost = 0.0;
    };
    struct GroupEntry {
        std::array<std::uint64_t, kMaxGroup> epochs{};
        double cost = 0.0;
    };

    common::FlatIdMap<SoloEntry> solo_;
    /// Row per lower member id; column = higher member id.
    common::FlatIdMap<common::FlatIdMap<PairEntry>> pair_;
    std::map<GroupKey, GroupEntry> group_;
    Stats stats_;
    std::uint64_t model_epoch_ = 0;
};

}  // namespace synpa::core
