// SYNPA's runtime estimation engine (paper §IV-B, Steps 1-2).
//
// Each quantum the estimator receives every task's SMT category fractions
// together with who it shared a core with.  Per co-running pair it inverts
// the interference model to recover isolated-execution estimates, smooths
// them with an EMA (phases last several quanta, and smoothing rejects
// single-quantum noise), and can then predict the slowdown of *any*
// candidate pair with the forward model — two evaluations of Equation 1
// per pair, six coefficient multiplications total, which is the 40%
// overhead reduction vs. the five-equation IBM-style model the paper
// quantifies.
#pragma once

#include <cstdint>
#include <utility>
#include <span>

#include "common/flat_map.hpp"
#include "model/interference_model.hpp"
#include "model/inversion.hpp"
#include "sched/policy.hpp"

namespace synpa::core {

class SynpaEstimator {
public:
    struct Options {
        double ema_alpha = 0.5;  ///< weight of the newest inversion result
        model::ModelInverter::Options inversion{};
    };

    /// The model is copied: the estimator owns its coefficients.
    explicit SynpaEstimator(model::InterferenceModel model)
        : SynpaEstimator(std::move(model), Options()) {}
    SynpaEstimator(model::InterferenceModel model, Options opts);

    /// Digests one quantum of observations: inverts the model for every
    /// co-running pair and updates the per-task isolated estimates.
    void observe(std::span<const sched::TaskObservation> observations);

    /// Current isolated-fraction estimate for a task; tasks never observed
    /// yet return a uniform prior.
    model::CategoryVector estimate(int task_id) const;

    bool has_estimate(int task_id) const { return estimates_.contains(task_id); }

    /// Predicted combined badness of co-scheduling (u, v): slowdown of u
    /// next to v plus slowdown of v next to u.
    double pair_weight(int task_u, int task_v) const;

    /// Predicted badness of running the task on a core of its own: the
    /// forward model evaluated against an all-zero co-runner (no competing
    /// category demand), i.e. the "runs alone" benefit term the partial
    /// allocator weighs against pair slowdowns.
    double solo_weight(int task_id) const;

    /// Predicted combined badness of co-scheduling the whole group on one
    /// SMT core: for each member, the forward model is evaluated against
    /// the superposed category pressure of every other member.  Because
    /// Equation 1 is affine in the co-runner vector, this equals the sum of
    /// the symmetrized pairwise terms minus (k - 2) solo terms:
    ///   sum_i s(i | sum_j e_j) = sum_{i != j} s(i|j) - (k-2) * sum_i s(i|0),
    /// so a 2-group reduces exactly to pair_weight and a 1-group to
    /// solo_weight (the follow-up paper's pairwise-built group predictor).
    double group_weight(std::span<const int> task_ids) const;

    /// The per-member addends of group_weight: each member's predicted
    /// slowdown against the superposed pressure of the rest of the group (a
    /// singleton returns its solo term).  The objective-parameterized
    /// policies (STP, fairness, tail) fold these nonlinearly instead of
    /// summing them.
    std::vector<double> member_slowdowns(std::span<const int> task_ids) const;

    /// Transfers the estimate across a relaunch (same application, so the
    /// behaviour estimate remains the best prior available).
    void transfer(int old_task_id, int new_task_id);

    /// Drops a retired task's estimate (open-system departures).
    void forget(int task_id);

    const model::InterferenceModel& model() const noexcept { return model_; }

    /// Swaps the interference model while keeping every per-task estimate —
    /// the online incremental-retraining hook.  The next observe() inverts
    /// against the new coefficients.
    void set_model(model::InterferenceModel model) { model_ = std::move(model); }

private:
    model::InterferenceModel model_;
    Options opts_;
    common::FlatIdMap<model::CategoryVector> estimates_;
};

}  // namespace synpa::core
