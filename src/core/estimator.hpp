// SYNPA's runtime estimation engine (paper §IV-B, Steps 1-2).
//
// Each quantum the estimator receives every task's SMT category fractions
// together with who it shared a core with.  Per co-running pair it inverts
// the interference model to recover isolated-execution estimates, smooths
// them with an EMA (phases last several quanta, and smoothing rejects
// single-quantum noise), and can then predict the slowdown of *any*
// candidate pair with the forward model — two evaluations of Equation 1
// per pair, six coefficient multiplications total, which is the 40%
// overhead reduction vs. the five-equation IBM-style model the paper
// quantifies.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/flat_map.hpp"
#include "model/interference_model.hpp"
#include "model/inversion.hpp"
#include "sched/policy.hpp"

namespace synpa::core {

/// The SYNPA_EMA_DEADBAND default (0.0 = legacy exact-EMA behaviour).
/// Nonzero values freeze a task's estimate while updates stay inside the
/// deadband, which is what lets the weight cache and whole-chip solve memo
/// reach a steady state on noisy platforms.  Read once per Options
/// construction through common::env_double.
double ema_deadband_default();

class SynpaEstimator {
public:
    struct Options {
        double ema_alpha = 0.5;  ///< weight of the newest inversion result
        /// Noise deadband for the EMA (absolute, per category fraction):
        /// when a blended update would move every category by less than
        /// this, the stored estimate is kept verbatim — and, crucially, its
        /// estimate epoch does not move, so every cached cost built on it
        /// stays valid.  Sub-noise drift carries no allocation signal (the
        /// matching decisions it could flip are exactly the near-ties the
        /// hysteresis layer suppresses anyway), while real phase changes
        /// move fractions by far more than any sane deadband and update
        /// normally.  0 (the default, knob SYNPA_EMA_DEADBAND) disables the
        /// filter and reproduces the legacy estimator bit for bit.
        double ema_deadband = ema_deadband_default();
        model::ModelInverter::Options inversion{};
    };

    /// The model is copied: the estimator owns its coefficients.
    explicit SynpaEstimator(model::InterferenceModel model)
        : SynpaEstimator(std::move(model), Options()) {}
    SynpaEstimator(model::InterferenceModel model, Options opts);

    /// Digests one quantum of observations: inverts the model for every
    /// co-running pair and updates the per-task isolated estimates.
    void observe(std::span<const sched::TaskObservation> observations);

    /// Current isolated-fraction estimate for a task; tasks never observed
    /// yet return a uniform prior.
    model::CategoryVector estimate(int task_id) const;

    bool has_estimate(int task_id) const { return estimates_.contains(task_id); }

    /// Predicted combined badness of co-scheduling (u, v): slowdown of u
    /// next to v plus slowdown of v next to u.
    double pair_weight(int task_u, int task_v) const;

    /// Predicted badness of running the task on a core of its own: the
    /// forward model evaluated against an all-zero co-runner (no competing
    /// category demand), i.e. the "runs alone" benefit term the partial
    /// allocator weighs against pair slowdowns.
    double solo_weight(int task_id) const;

    /// Predicted combined badness of co-scheduling the whole group on one
    /// SMT core: for each member, the forward model is evaluated against
    /// the superposed category pressure of every other member.  Because
    /// Equation 1 is affine in the co-runner vector, this equals the sum of
    /// the symmetrized pairwise terms minus (k - 2) solo terms:
    ///   sum_i s(i | sum_j e_j) = sum_{i != j} s(i|j) - (k-2) * sum_i s(i|0),
    /// so a 2-group reduces exactly to pair_weight and a 1-group to
    /// solo_weight (the follow-up paper's pairwise-built group predictor).
    double group_weight(std::span<const int> task_ids) const;

    /// The per-member addends of group_weight: each member's predicted
    /// slowdown against the superposed pressure of the rest of the group (a
    /// singleton returns its solo term).  The objective-parameterized
    /// policies (STP, fairness, tail) fold these nonlinearly instead of
    /// summing them.
    std::vector<double> member_slowdowns(std::span<const int> task_ids) const;

    /// Allocation-free variant: overwrites `out` (resized to
    /// task_ids.size()) so per-quantum callers can reuse one scratch
    /// vector across the whole Step-2 sweep.
    void member_slowdowns(std::span<const int> task_ids, std::vector<double>& out) const;

    /// Transfers the estimate across a relaunch (same application, so the
    /// behaviour estimate remains the best prior available).
    void transfer(int old_task_id, int new_task_id);

    /// Drops a retired task's estimate (open-system departures).
    void forget(int task_id);

    // ------------------------------------------------ estimate epochs --
    // Freshness counters backing core::WeightCache.  A task's epoch moves
    // exactly when the value estimate(id) returns changes: observe() bumps
    // only when the EMA result differs bitwise from the stored estimate
    // (steady-state estimates reach a floating-point fixed point, so
    // long-running tasks stop bumping), and transfer/forget/bump_epoch
    // always bump.  Epochs are monotone and never reset — a (task, epoch)
    // pair therefore names one exact estimate value for the lifetime of
    // the estimator, which is what makes cached costs keyed on epochs
    // bit-identical to recomputation.

    /// Current epoch for a task; 0 for a task never observed or bumped
    /// (estimate(id) then returns the uniform prior).
    std::uint64_t estimate_epoch(int task_id) const {
        const std::uint64_t* e = epochs_.find(task_id);
        return e != nullptr ? *e : 0;
    }

    /// Marks a task's estimate dirty without touching its value — the hook
    /// phase-change alarms use to force cached costs to recompute.
    void bump_epoch(int task_id) { ++epochs_[task_id]; }

    /// Bumped by every set_model; caches keyed on coefficients watch this.
    std::uint64_t model_epoch() const noexcept { return model_epoch_; }

    const model::InterferenceModel& model() const noexcept { return model_; }

    /// Swaps the interference model while keeping every per-task estimate —
    /// the online incremental-retraining hook.  The next observe() inverts
    /// against the new coefficients.
    void set_model(model::InterferenceModel model) {
        model_ = std::move(model);
        flat_ = model::FlatModel(model_);
        ++model_epoch_;
    }

private:
    /// EMA-blends `fresh` into the task's stored estimate, bumping the
    /// task's epoch iff the stored value changed bitwise.
    void ema_update(int id, const model::CategoryVector& fresh);

    model::InterferenceModel model_;
    model::FlatModel flat_;  ///< SoA snapshot of model_ for the hot paths
    Options opts_;
    common::FlatIdMap<model::CategoryVector> estimates_;
    common::FlatIdMap<std::uint64_t> epochs_;  ///< monotone; never erased
    std::uint64_t model_epoch_ = 0;
};

}  // namespace synpa::core
