// The SYNPA allocation policy (paper §IV-B, Figure 3).
//
// Per quantum:
//   Step 1 — estimate isolated category values by inverting the
//            interference model on the observed SMT fractions,
//   Step 2 — predict the slowdown of every candidate pair with the forward
//            model (Equation 1 applied in both directions),
//   Step 3 — pick the minimum-total-slowdown perfect matching (Blossom, as
//            in the paper; exact subset-DP and greedy selectors are
//            available for the ablation benches) and allocate pairs to
//            cores, preferring placements that avoid migrations.
//
// SMT width is a runtime property: at smt_ways == 2 Step 3 runs the paper's
// pair solvers unchanged, while wider chips (SMT-4) switch to the k-way
// grouping of the follow-up work — group costs built from the estimator's
// symmetrized pairwise terms, solved by matching::min_weight_grouping.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/estimator.hpp"
#include "core/weight_cache.hpp"
#include "matching/matching.hpp"
#include "model/interference_model.hpp"
#include "sched/policy.hpp"
#include "sched/topology.hpp"

namespace synpa::core {

/// The SYNPA_WEIGHT_CACHE default (on unless the knob says 0) — the
/// incremental Step-2/Step-3 path; off runs the legacy full recompute.
/// Read once per Options construction through common::env_int.
bool weight_cache_default();

/// Pair-selection strategy for Step 3.
enum class PairSelector {
    kBlossom,   ///< Edmonds' Blossom algorithm (the paper's choice)
    kSubsetDp,  ///< exact subset DP (identical pairs, different solver)
    kGreedy,    ///< best-first greedy (ablation: cheaper, possibly worse)
};

/// Allocation objective (the follow-up "New Family of Thread to Core
/// Allocation Policies" direction): how a candidate group's per-member
/// predicted slowdowns fold into the cost Step 3 minimizes.  Every variant
/// shares the SYNPA estimator — they differ only in this folding.
enum class Objective {
    kTotalSlowdown,  ///< the paper's SYNPA: minimize the summed slowdowns
    kThroughput,     ///< STP: minimize summed throughput loss (1 - 1/s)
    kFairness,       ///< minimize the worst member (soft-max: sum of s^4)
    kTail,           ///< turnaround tail: sum of s^2 (penalize stragglers)
};

/// Short name used in policy labels ("total", "stp", "fair", "tail").
const char* objective_name(Objective objective) noexcept;

/// Folds per-member predicted slowdowns into one group cost under the given
/// objective.  kTotalSlowdown is the plain sum (identical to the
/// estimator's group_weight); the others are monotone but nonlinear, so
/// they trade total progress against the worst-off members differently.
double objective_cost(Objective objective, std::span<const double> member_slowdowns) noexcept;

class SynpaPolicy final : public sched::AllocationPolicy {
public:
    struct Options {
        PairSelector selector = PairSelector::kBlossom;
        /// What Step 3 optimizes.  kTotalSlowdown reproduces the paper's
        /// SYNPA exactly (bit-identical goldens); the other objectives are
        /// the family-paper variants sharing the same estimator.
        Objective objective = Objective::kTotalSlowdown;
        SynpaEstimator::Options estimator{};
        /// Hysteresis (see matching::stabilized_min_weight): prediction
        /// noise creates near-tie matchings, and oscillating between them
        /// costs real migrations.  Set both to 0 for the paper's plain
        /// re-solve-every-quantum behaviour (bench_ablation_policy).
        double stability_bias = 0.002;
        double keep_threshold = 0.001;
        /// Multi-chip platforms only: the predicted-slowdown benefit a
        /// cross-chip move must exceed before the balancing pass migrates a
        /// task (sched/topology.hpp) — the policy-side counterpart of the
        /// platform's cross-chip warmup window.
        double cross_chip_penalty = sched::kDefaultCrossChipPenalty;
        /// Incremental allocation (default from SYNPA_WEIGHT_CACHE, on):
        /// Step-2 costs are memoized in a core::WeightCache keyed on the
        /// estimator's per-task estimate epochs, and a whole chip's solve
        /// is reused verbatim when nothing it depends on moved.  Results
        /// are bit-identical to the legacy recompute (off) at every
        /// SYNPA_SIM_THREADS / width / chip count.
        bool weight_cache = weight_cache_default();
    };

    explicit SynpaPolicy(model::InterferenceModel model)
        : SynpaPolicy(std::move(model), Options()) {}
    SynpaPolicy(model::InterferenceModel model, Options opts);

    std::string name() const override;
    sched::CoreAllocation reallocate(
        std::span<const sched::TaskObservation> observations) override;
    void on_task_replaced(int old_task_id, int new_task_id) override;
    void on_task_finished(int task_id) override;
    void set_tracer(obs::Tracer* tracer) override;

    const SynpaEstimator& estimator() const noexcept { return estimator_; }

    /// Swaps the interference model mid-run while keeping every per-task
    /// estimate — the hook online::AdaptiveSynpaPolicy uses to fold
    /// incremental retraining results back in.
    void set_model(model::InterferenceModel model);

    /// Drops one task's isolated estimate so the next quantum re-seeds it
    /// from a fresh inversion (phase-change reaction).
    void reset_estimate(int task_id);

    /// Phase-change alarm hook (routed from online::AdaptiveSynpaPolicy's
    /// PhaseDetector): bumps the task's estimate epoch so every cached
    /// cost involving it recomputes next quantum.  The estimate value is
    /// deliberately untouched — see the adaptive policy's alarm rationale —
    /// so allocations are unchanged; only cache validity is.
    void on_phase_alarm(int task_id);

    /// Cumulative weight-cache statistics (all zero when the cache is
    /// disabled): cost-lookup hits/misses plus whole-chip solve reuses.
    const WeightCache::Stats& weight_cache_stats() const noexcept {
        return cache_.stats();
    }

    /// Step 2+3 on an explicit weight matrix (exposed for tests/benches).
    std::vector<std::pair<int, int>> select_pairs(const matching::WeightMatrix& weights) const;

    /// Width-generic Step 3 on the current estimates: partitions the given
    /// task ids into groups of at most `width` over `cores` cores using the
    /// estimator's group-slowdown predictor (exposed for tests/benches).
    std::vector<std::vector<int>> select_groups(std::span<const int> task_ids,
                                                std::size_t cores, std::size_t width) const;

    /// The Matcher implementing the configured selector.
    const matching::Matcher& matcher() const;

private:
    /// Steps 2+3 on one chip's (possibly chip-localized) observations; the
    /// estimator was already refreshed for the quantum.  `chip` is the
    /// stable chip ordinal indexing the per-chip solve memo (0 on a
    /// single-chip platform); when the cache is on and nothing the solve
    /// depends on moved since the chip's last solve, the memoized
    /// allocation is returned without rebuilding weights or re-solving.
    sched::CoreAllocation allocate_chip(
        std::span<const sched::TaskObservation> observations, int chip);
    sched::CoreAllocation allocate_chip_uncached(
        std::span<const sched::TaskObservation> observations);

    /// Emits a kAllocation event for the decided grouping (group membership
    /// and the predicted per-group costs).  The extra estimator passes run
    /// only when the tracer wants allocation events.
    void trace_allocation(const sched::CoreAllocation& alloc) const;

    /// Folds cumulative cache statistics into the tracer's metrics
    /// registry (weight_cache.* counters + hit-rate gauge).
    void publish_cache_metrics() const;

    /// Objective-folded candidate costs.  Under kTotalSlowdown these are
    /// exactly the estimator's pair/solo/group weights (the bit-exact
    /// golden path); other objectives fold the per-member slowdowns.  The
    /// public trio answers from the WeightCache when enabled — a hit
    /// returns the same bits the *_uncached twin would recompute, because
    /// entries are keyed on the estimate epochs of every contributing
    /// task.
    double pair_cost(int task_u, int task_v) const;
    double solo_cost(int task_id) const;
    double group_cost(std::span<const int> task_ids) const;
    double pair_cost_uncached(int task_u, int task_v) const;
    double solo_cost_uncached(int task_id) const;
    double group_cost_uncached(std::span<const int> task_ids) const;

    /// One chip's memoized solve: the key flattens every allocate_chip
    /// input (task ids, incumbent cores, co-runner lists, estimate
    /// epochs, width, core count, model epoch), so a key match certifies
    /// the uncached solve would reproduce `alloc` bit for bit.
    struct SolveMemo {
        std::vector<std::uint64_t> key;
        sched::CoreAllocation alloc;
        bool valid = false;
    };

    model::InterferenceModel model_;
    Options opts_;
    SynpaEstimator estimator_;
    matching::BlossomMatcher blossom_;
    matching::SubsetDpMatcher subset_dp_;
    obs::Tracer* tracer_ = nullptr;  ///< flight recorder (not owned)
    mutable WeightCache cache_;      ///< bit-exact memo; mutable: caching is
                                     ///< invisible to logical const-ness
    mutable std::vector<double> slowdown_scratch_;  ///< member_slowdowns reuse
    std::vector<SolveMemo> solve_memo_;             ///< per chip ordinal
    mutable WeightCache::Stats published_{};        ///< metrics high-water mark
};

}  // namespace synpa::core
