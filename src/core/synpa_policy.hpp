// The SYNPA allocation policy (paper §IV-B, Figure 3).
//
// Per quantum:
//   Step 1 — estimate isolated category values by inverting the
//            interference model on the observed SMT fractions,
//   Step 2 — predict the slowdown of every candidate pair with the forward
//            model (Equation 1 applied in both directions),
//   Step 3 — pick the minimum-total-slowdown perfect matching (Blossom, as
//            in the paper; exact subset-DP and greedy selectors are
//            available for the ablation benches) and allocate pairs to
//            cores, preferring placements that avoid migrations.
//
// SMT width is a runtime property: at smt_ways == 2 Step 3 runs the paper's
// pair solvers unchanged, while wider chips (SMT-4) switch to the k-way
// grouping of the follow-up work — group costs built from the estimator's
// symmetrized pairwise terms, solved by matching::min_weight_grouping.
#pragma once

#include <memory>

#include "core/estimator.hpp"
#include "matching/matching.hpp"
#include "model/interference_model.hpp"
#include "sched/policy.hpp"
#include "sched/topology.hpp"

namespace synpa::core {

/// Pair-selection strategy for Step 3.
enum class PairSelector {
    kBlossom,   ///< Edmonds' Blossom algorithm (the paper's choice)
    kSubsetDp,  ///< exact subset DP (identical pairs, different solver)
    kGreedy,    ///< best-first greedy (ablation: cheaper, possibly worse)
};

class SynpaPolicy final : public sched::AllocationPolicy {
public:
    struct Options {
        PairSelector selector = PairSelector::kBlossom;
        SynpaEstimator::Options estimator{};
        /// Hysteresis (see matching::stabilized_min_weight): prediction
        /// noise creates near-tie matchings, and oscillating between them
        /// costs real migrations.  Set both to 0 for the paper's plain
        /// re-solve-every-quantum behaviour (bench_ablation_policy).
        double stability_bias = 0.002;
        double keep_threshold = 0.001;
        /// Multi-chip platforms only: the predicted-slowdown benefit a
        /// cross-chip move must exceed before the balancing pass migrates a
        /// task (sched/topology.hpp) — the policy-side counterpart of the
        /// platform's cross-chip warmup window.
        double cross_chip_penalty = sched::kDefaultCrossChipPenalty;
    };

    explicit SynpaPolicy(model::InterferenceModel model)
        : SynpaPolicy(std::move(model), Options()) {}
    SynpaPolicy(model::InterferenceModel model, Options opts);

    std::string name() const override;
    sched::CoreAllocation reallocate(
        std::span<const sched::TaskObservation> observations) override;
    void on_task_replaced(int old_task_id, int new_task_id) override;
    void on_task_finished(int task_id) override;

    const SynpaEstimator& estimator() const noexcept { return estimator_; }

    /// Step 2+3 on an explicit weight matrix (exposed for tests/benches).
    std::vector<std::pair<int, int>> select_pairs(const matching::WeightMatrix& weights) const;

    /// Width-generic Step 3 on the current estimates: partitions the given
    /// task ids into groups of at most `width` over `cores` cores using the
    /// estimator's group-slowdown predictor (exposed for tests/benches).
    std::vector<std::vector<int>> select_groups(std::span<const int> task_ids,
                                                std::size_t cores, std::size_t width) const;

    /// The Matcher implementing the configured selector.
    const matching::Matcher& matcher() const;

private:
    /// Steps 2+3 on one chip's (possibly chip-localized) observations; the
    /// estimator was already refreshed for the quantum.
    sched::CoreAllocation allocate_chip(
        std::span<const sched::TaskObservation> observations);


    model::InterferenceModel model_;
    Options opts_;
    SynpaEstimator estimator_;
    matching::BlossomMatcher blossom_;
    matching::SubsetDpMatcher subset_dp_;
};

}  // namespace synpa::core
