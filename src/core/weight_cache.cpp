#include "core/weight_cache.hpp"

#include <utility>

namespace synpa::core {

const double* WeightCache::find_solo(int id, std::uint64_t epoch) {
    const SoloEntry* e = solo_.find(id);
    if (e != nullptr && e->epoch == epoch) {
        ++stats_.hits;
        return &e->cost;
    }
    ++stats_.misses;
    return nullptr;
}

void WeightCache::store_solo(int id, std::uint64_t epoch, double cost) {
    solo_.insert_or_assign(id, SoloEntry{.epoch = epoch, .cost = cost});
}

const double* WeightCache::find_pair(int u, std::uint64_t eu, int v, std::uint64_t ev) {
    if (v < u) {
        std::swap(u, v);
        std::swap(eu, ev);
    }
    const common::FlatIdMap<PairEntry>* row = pair_.find(u);
    const PairEntry* e = row != nullptr ? row->find(v) : nullptr;
    if (e != nullptr && e->lo_epoch == eu && e->hi_epoch == ev) {
        ++stats_.hits;
        return &e->cost;
    }
    ++stats_.misses;
    return nullptr;
}

void WeightCache::store_pair(int u, std::uint64_t eu, int v, std::uint64_t ev,
                             double cost) {
    if (v < u) {
        std::swap(u, v);
        std::swap(eu, ev);
    }
    pair_[u].insert_or_assign(v, PairEntry{.lo_epoch = eu, .hi_epoch = ev, .cost = cost});
}

const double* WeightCache::find_group(const GroupKey& key, std::size_t size,
                                      const std::array<std::uint64_t, kMaxGroup>& epochs) {
    const auto it = group_.find(key);
    if (it != group_.end()) {
        bool fresh = true;
        for (std::size_t i = 0; i < size; ++i)
            if (it->second.epochs[i] != epochs[i]) {
                fresh = false;
                break;
            }
        if (fresh) {
            ++stats_.hits;
            return &it->second.cost;
        }
    }
    ++stats_.misses;
    return nullptr;
}

void WeightCache::store_group(const GroupKey& key, std::size_t size,
                              const std::array<std::uint64_t, kMaxGroup>& epochs,
                              double cost) {
    if (group_.size() >= kMaxGroupEntries && group_.find(key) == group_.end()) {
        group_.clear();
        ++stats_.group_evictions;
    }
    GroupEntry e;
    for (std::size_t i = 0; i < size; ++i) e.epochs[i] = epochs[i];
    e.cost = cost;
    group_.insert_or_assign(key, e);
}

void WeightCache::forget(int id) {
    solo_.erase(id);
    pair_.erase(id);
}

void WeightCache::clear() {
    solo_ = {};
    pair_ = {};
    group_.clear();
}

}  // namespace synpa::core
