#include "linalg/matrix.hpp"

#include <cmath>
#include <stdexcept>

namespace synpa::linalg {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
    rows_ = init.size();
    cols_ = rows_ ? init.begin()->size() : 0;
    data_.reserve(rows_ * cols_);
    for (const auto& row : init) {
        if (row.size() != cols_) throw std::invalid_argument("Matrix: ragged initializer");
        data_.insert(data_.end(), row.begin(), row.end());
    }
}

Matrix Matrix::identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
}

Matrix Matrix::transposed() const {
    Matrix t(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
    return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
    if (cols_ != rhs.rows_) throw std::invalid_argument("Matrix multiply: shape mismatch");
    Matrix out(rows_, rhs.cols_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t k = 0; k < cols_; ++k) {
            const double a = (*this)(r, k);
            if (a == 0.0) continue;
            for (std::size_t c = 0; c < rhs.cols_; ++c) out(r, c) += a * rhs(k, c);
        }
    return out;
}

std::vector<double> Matrix::operator*(const std::vector<double>& v) const {
    if (cols_ != v.size()) throw std::invalid_argument("Matrix-vector multiply: shape mismatch");
    std::vector<double> out(rows_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c) out[r] += (*this)(r, c) * v[c];
    return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
    if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
        throw std::invalid_argument("Matrix add: shape mismatch");
    Matrix out = *this;
    for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += rhs.data_[i];
    return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
    if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
        throw std::invalid_argument("Matrix subtract: shape mismatch");
    Matrix out = *this;
    for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= rhs.data_[i];
    return out;
}

double Matrix::max_abs() const noexcept {
    double m = 0.0;
    for (double x : data_) m = std::max(m, std::abs(x));
    return m;
}

std::vector<double> solve_gaussian(Matrix a, std::vector<double> b) {
    const std::size_t n = a.rows();
    if (a.cols() != n || b.size() != n)
        throw std::invalid_argument("solve_gaussian: shape mismatch");

    for (std::size_t col = 0; col < n; ++col) {
        // Partial pivot.
        std::size_t pivot = col;
        for (std::size_t r = col + 1; r < n; ++r)
            if (std::abs(a(r, col)) > std::abs(a(pivot, col))) pivot = r;
        if (std::abs(a(pivot, col)) < 1e-12)
            throw std::runtime_error("solve_gaussian: singular matrix");
        if (pivot != col) {
            for (std::size_t c = 0; c < n; ++c) std::swap(a(pivot, c), a(col, c));
            std::swap(b[pivot], b[col]);
        }
        for (std::size_t r = col + 1; r < n; ++r) {
            const double f = a(r, col) / a(col, col);
            if (f == 0.0) continue;
            for (std::size_t c = col; c < n; ++c) a(r, c) -= f * a(col, c);
            b[r] -= f * b[col];
        }
    }
    std::vector<double> x(n);
    for (std::size_t ri = n; ri-- > 0;) {
        double acc = b[ri];
        for (std::size_t c = ri + 1; c < n; ++c) acc -= a(ri, c) * x[c];
        x[ri] = acc / a(ri, ri);
    }
    return x;
}

bool solve2x2(double a11, double a12, double a21, double a22, double b1, double b2,
              double& x1, double& x2) noexcept {
    const double det = a11 * a22 - a12 * a21;
    if (std::abs(det) < 1e-14) return false;
    x1 = (b1 * a22 - b2 * a12) / det;
    x2 = (a11 * b2 - a21 * b1) / det;
    return true;
}

}  // namespace synpa::linalg
