// Linear least squares via Householder QR.  This is the fitting engine for
// the paper's per-category regression model (Equation 1): design matrices
// have a handful of columns (intercept, C_i, C_j, C_i*C_j) and thousands of
// sample rows, so a dense QR is both robust and plenty fast.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace synpa::linalg {

struct LeastSquaresResult {
    std::vector<double> coefficients;  ///< One per design-matrix column.
    double mse = 0.0;                  ///< Mean square residual on the fit data.
    double r_squared = 0.0;            ///< Coefficient of determination.
};

/// Solves min ||A x - b||_2 with Householder QR.  Requires rows >= cols and
/// a full-rank A (throws std::runtime_error on rank deficiency).
LeastSquaresResult least_squares(const Matrix& a, std::span<const double> b);

/// Ridge-regularized variant: min ||Ax-b||^2 + lambda ||x||^2 (the intercept
/// column, if flagged, is excluded from the penalty).  Solved via the normal
/// equations, which is adequate at these scales; used by the trainer when a
/// category's design matrix is near-collinear.
LeastSquaresResult ridge_least_squares(const Matrix& a, std::span<const double> b,
                                       double lambda, bool skip_first_column = true);

}  // namespace synpa::linalg
