#include "linalg/least_squares.hpp"

#include <cmath>
#include <stdexcept>

#include "common/stats.hpp"

namespace synpa::linalg {
namespace {

/// Fills in mse / r_squared for a fitted coefficient vector.
void finalize(const Matrix& a, std::span<const double> b, LeastSquaresResult& out) {
    const std::size_t m = a.rows();
    std::vector<double> pred(m, 0.0);
    for (std::size_t r = 0; r < m; ++r)
        for (std::size_t c = 0; c < a.cols(); ++c) pred[r] += a(r, c) * out.coefficients[c];

    double ss_res = 0.0;
    synpa::common::RunningStats ys;
    for (std::size_t r = 0; r < m; ++r) {
        const double d = pred[r] - b[r];
        ss_res += d * d;
        ys.add(b[r]);
    }
    out.mse = m ? ss_res / static_cast<double>(m) : 0.0;
    const double ss_tot = ys.variance() * static_cast<double>(m);
    out.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
}

}  // namespace

LeastSquaresResult least_squares(const Matrix& a_in, std::span<const double> b_in) {
    const std::size_t m = a_in.rows();
    const std::size_t n = a_in.cols();
    if (m < n) throw std::invalid_argument("least_squares: fewer rows than columns");
    if (b_in.size() != m) throw std::invalid_argument("least_squares: rhs size mismatch");

    Matrix a = a_in;
    std::vector<double> b(b_in.begin(), b_in.end());

    // Householder QR applied in place; b is updated with each reflector.
    for (std::size_t k = 0; k < n; ++k) {
        double norm = 0.0;
        for (std::size_t r = k; r < m; ++r) norm += a(r, k) * a(r, k);
        norm = std::sqrt(norm);
        if (norm < 1e-12) throw std::runtime_error("least_squares: rank-deficient design");
        if (a(k, k) > 0.0) norm = -norm;

        // Householder vector v stored in column k below the diagonal.
        const double akk = a(k, k) - norm;
        std::vector<double> v(m - k);
        v[0] = akk;
        for (std::size_t r = k + 1; r < m; ++r) v[r - k] = a(r, k);
        double vtv = 0.0;
        for (double x : v) vtv += x * x;
        if (vtv < 1e-300) continue;

        for (std::size_t c = k; c < n; ++c) {
            double dot = 0.0;
            for (std::size_t r = k; r < m; ++r) dot += v[r - k] * a(r, c);
            const double f = 2.0 * dot / vtv;
            for (std::size_t r = k; r < m; ++r) a(r, c) -= f * v[r - k];
        }
        double dotb = 0.0;
        for (std::size_t r = k; r < m; ++r) dotb += v[r - k] * b[r];
        const double fb = 2.0 * dotb / vtv;
        for (std::size_t r = k; r < m; ++r) b[r] -= fb * v[r - k];
        a(k, k) = norm;
    }

    // Back-substitution on the R factor.
    LeastSquaresResult out;
    out.coefficients.assign(n, 0.0);
    for (std::size_t ki = n; ki-- > 0;) {
        double acc = b[ki];
        for (std::size_t c = ki + 1; c < n; ++c) acc -= a(ki, c) * out.coefficients[c];
        if (std::abs(a(ki, ki)) < 1e-12)
            throw std::runtime_error("least_squares: rank-deficient design");
        out.coefficients[ki] = acc / a(ki, ki);
    }
    finalize(a_in, b_in, out);
    return out;
}

LeastSquaresResult ridge_least_squares(const Matrix& a, std::span<const double> b,
                                       double lambda, bool skip_first_column) {
    const std::size_t n = a.cols();
    if (b.size() != a.rows()) throw std::invalid_argument("ridge: rhs size mismatch");

    // Normal equations: (A^T A + lambda I) x = A^T b.
    Matrix ata = a.transposed() * a;
    for (std::size_t i = skip_first_column ? 1 : 0; i < n; ++i) ata(i, i) += lambda;
    std::vector<double> atb(n, 0.0);
    for (std::size_t r = 0; r < a.rows(); ++r)
        for (std::size_t c = 0; c < n; ++c) atb[c] += a(r, c) * b[r];

    LeastSquaresResult out;
    out.coefficients = solve_gaussian(std::move(ata), std::move(atb));
    finalize(a, b, out);
    return out;
}

}  // namespace synpa::linalg
