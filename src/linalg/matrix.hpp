// Minimal dense linear algebra: just enough for least-squares regression
// (Householder QR), the model-inversion Jacobians, and tests.  Row-major
// storage, bounds-checked element access in debug builds via assert.
#pragma once

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <vector>

namespace synpa::linalg {

class Matrix {
public:
    Matrix() = default;
    Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
        : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

    /// Builds from nested initializer lists; all rows must be equally long.
    Matrix(std::initializer_list<std::initializer_list<double>> init);

    static Matrix identity(std::size_t n);

    std::size_t rows() const noexcept { return rows_; }
    std::size_t cols() const noexcept { return cols_; }
    bool empty() const noexcept { return data_.empty(); }

    double& operator()(std::size_t r, std::size_t c) noexcept {
        assert(r < rows_ && c < cols_);
        return data_[r * cols_ + c];
    }
    double operator()(std::size_t r, std::size_t c) const noexcept {
        assert(r < rows_ && c < cols_);
        return data_[r * cols_ + c];
    }

    Matrix transposed() const;
    Matrix operator*(const Matrix& rhs) const;
    std::vector<double> operator*(const std::vector<double>& v) const;
    Matrix operator+(const Matrix& rhs) const;
    Matrix operator-(const Matrix& rhs) const;

    /// Largest absolute element (max norm); 0 for an empty matrix.
    double max_abs() const noexcept;

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

/// Solves the square system A x = b with partial-pivoting Gaussian
/// elimination.  Throws std::runtime_error if A is (numerically) singular.
std::vector<double> solve_gaussian(Matrix a, std::vector<double> b);

/// Solves a 2x2 linear system; returns false when the determinant is ~0.
bool solve2x2(double a11, double a12, double a21, double a22, double b1, double b2,
              double& x1, double& x2) noexcept;

}  // namespace synpa::linalg
