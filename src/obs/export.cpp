#include "obs/export.hpp"

#include <cinttypes>
#include <cstdio>
#include <ostream>
#include <string>

#include "obs/trace.hpp"

namespace synpa::obs {
namespace {

/// Trace time per simulated quantum, microseconds (1 quantum = 1 ms).
constexpr std::uint64_t kQuantumUs = 1000;

/// Minimal JSON string escaping for detail payloads.
std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

class EventWriter {
public:
    explicit EventWriter(std::ostream& os) : os_(os) {}

    /// Starts one traceEvents entry; the caller appends `"args":{...}` via
    /// args()/field() and closes with done().
    EventWriter& open(const char* ph, int pid, int tid, std::uint64_t ts,
                      const std::string& name) {
        os_ << (first_ ? "\n  " : ",\n  ");
        first_ = false;
        os_ << "{\"ph\":\"" << ph << "\",\"pid\":" << pid << ",\"tid\":" << tid
            << ",\"ts\":" << ts << ",\"name\":\"" << json_escape(name) << "\"";
        return *this;
    }
    EventWriter& dur(std::uint64_t d) {
        os_ << ",\"dur\":" << d;
        return *this;
    }
    EventWriter& scope_thread() {
        os_ << ",\"s\":\"t\"";
        return *this;
    }
    EventWriter& args_begin() {
        os_ << ",\"args\":{";
        first_arg_ = true;
        return *this;
    }
    EventWriter& arg(const char* key, double value) {
        sep() << "\"" << key << "\":" << value;
        return *this;
    }
    EventWriter& arg(const char* key, std::int64_t value) {
        sep() << "\"" << key << "\":" << value;
        return *this;
    }
    EventWriter& arg(const char* key, const std::string& value) {
        sep() << "\"" << key << "\":\"" << json_escape(value) << "\"";
        return *this;
    }
    EventWriter& args_end() {
        os_ << "}";
        return *this;
    }
    void done() { os_ << "}"; }

private:
    std::ostream& sep() {
        if (!first_arg_) os_ << ",";
        first_arg_ = false;
        return os_;
    }
    std::ostream& os_;
    bool first_ = true;
    bool first_arg_ = false;
};

const char* migration_class_name(int cls) noexcept {
    switch (cls) {
        case 0: return "slot";
        case 1: return "intra_chip";
        case 2: return "cross_chip";
    }
    return "unknown";
}

}  // namespace

void write_chrome_trace(std::ostream& os, const Tracer& tracer) {
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    EventWriter w(os);

    // Process/thread metadata: pid 0 = the scheduler (drivers + policy),
    // pid 1+c = chip c.
    int max_chip = -1;
    for (std::size_t i = 0; i < tracer.events().size(); ++i)
        max_chip = std::max(max_chip, tracer.events().at(i).chip);
    w.open("M", 0, 0, 0, "process_name").args_begin().arg("name", std::string("scheduler"))
        .args_end().done();
    for (int c = 0; c <= max_chip; ++c) {
        w.open("M", 1 + c, 0, 0, "process_name")
            .args_begin()
            .arg("name", "chip " + std::to_string(c))
            .args_end()
            .done();
    }

    // Quantum slices + counter tracks from the per-quantum samples.
    const auto& samples = tracer.samples();
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const QuantumStats& s = samples.at(i);
        const std::uint64_t ts = s.quantum * kQuantumUs;
        w.open("X", 0, 0, ts, "quantum")
            .dur(kQuantumUs)
            .args_begin()
            .arg("quantum", static_cast<std::int64_t>(s.quantum))
            .arg("live", static_cast<std::int64_t>(s.live))
            .args_end()
            .done();
        w.open("C", 0, 0, ts, "occupancy")
            .args_begin()
            .arg("live", static_cast<std::int64_t>(s.live))
            .arg("queued", static_cast<std::int64_t>(s.queued))
            .args_end()
            .done();
        w.open("C", 0, 0, ts, "utilization")
            .args_begin()
            .arg("utilization", s.utilization)
            .args_end()
            .done();
        w.open("C", 0, 0, ts, "policy_wall_us")
            .args_begin()
            .arg("observe", s.observe_us)
            .arg("decide", s.decide_us)
            .arg("bind", s.bind_us)
            .args_end()
            .done();
        w.open("C", 0, 0, ts, "simulate_wall_us")
            .args_begin()
            .arg("simulate", s.simulate_us)
            .args_end()
            .done();
        w.open("C", 0, 0, ts, "migrations")
            .args_begin()
            .arg("total", static_cast<std::int64_t>(s.migrations))
            .arg("cross_chip", static_cast<std::int64_t>(s.cross_chip))
            .args_end()
            .done();
    }

    // Structured events.
    for (std::size_t i = 0; i < tracer.events().size(); ++i) {
        const TraceEvent& e = tracer.events().at(i);
        const std::uint64_t ts = e.quantum * kQuantumUs;
        switch (e.kind) {
            case EventKind::kQuantumBegin:
            case EventKind::kQuantumEnd:
                // Rendered through the sample-driven slices/counters above.
                break;
            case EventKind::kChipQuantum:
                w.open("X", 1 + e.chip, 0, ts, "chip_quantum")
                    .dur(kQuantumUs)
                    .args_begin()
                    .arg("wall_us", e.value)
                    .args_end()
                    .done();
                break;
            case EventKind::kMigration:
                w.open("i", 0, 0, ts, "migration").scope_thread()
                    .args_begin()
                    .arg("task", static_cast<std::int64_t>(e.task))
                    .arg("from_core", static_cast<std::int64_t>(e.b))
                    .arg("to_core", static_cast<std::int64_t>(e.core))
                    .arg("class", std::string(migration_class_name(e.a)))
                    .args_end()
                    .done();
                break;
            case EventKind::kAllocation:
                w.open("i", 0, 0, ts, "allocation").scope_thread()
                    .args_begin()
                    .arg("groups", static_cast<std::int64_t>(e.a))
                    .arg("predicted_cost", e.value)
                    .arg("detail", e.detail)
                    .args_end()
                    .done();
                break;
            case EventKind::kAdmission:
                w.open("i", 0, 0, ts, "admission").scope_thread()
                    .args_begin()
                    .arg("task", static_cast<std::int64_t>(e.task))
                    .arg("core", static_cast<std::int64_t>(e.core))
                    .arg("app", e.detail)
                    .args_end()
                    .done();
                break;
            case EventKind::kRetirement:
                w.open("i", 0, 0, ts, "retirement").scope_thread()
                    .args_begin()
                    .arg("task", static_cast<std::int64_t>(e.task))
                    .arg("core", static_cast<std::int64_t>(e.core))
                    .arg("finish_quantum", e.value)
                    .arg("app", e.detail)
                    .args_end()
                    .done();
                break;
            case EventKind::kPhaseAlarm:
                w.open("i", 0, 0, ts, "phase_alarm").scope_thread()
                    .args_begin()
                    .arg("task", static_cast<std::int64_t>(e.task))
                    .args_end()
                    .done();
                break;
            case EventKind::kModelRefit:
                w.open("i", 0, 0, ts, "model_refit").scope_thread()
                    .args_begin()
                    .arg("adopted", static_cast<std::int64_t>(e.a))
                    .arg("holdout_error", e.value)
                    .args_end()
                    .done();
                break;
            case EventKind::kPreemption:
                w.open("i", 0, 0, ts, "preemption").scope_thread()
                    .args_begin()
                    .arg("task", static_cast<std::int64_t>(e.task))
                    .arg("node", static_cast<std::int64_t>(e.core))
                    .arg("victim_priority", static_cast<std::int64_t>(e.a))
                    .arg("preemptor_priority", static_cast<std::int64_t>(e.b))
                    .arg("app", e.detail)
                    .args_end()
                    .done();
                break;
        }
    }

    os << "\n],\"otherData\":{\"dropped_events\":" << tracer.dropped_events() << "}}"
       << "\n";
}

void write_metrics_csv(std::ostream& os, const Tracer& tracer) {
    os << "quantum,live,queued,utilization,migrations,cross_chip,"
          "simulate_us,observe_us,decide_us,bind_us\n";
    const auto& samples = tracer.samples();
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const QuantumStats& s = samples.at(i);
        os << s.quantum << ',' << s.live << ',' << s.queued << ',' << s.utilization << ','
           << s.migrations << ',' << s.cross_chip << ',' << s.simulate_us << ','
           << s.observe_us << ',' << s.decide_us << ',' << s.bind_us << '\n';
    }
}

std::string metrics_csv_path(const std::string& trace_path) {
    const std::string suffix = ".json";
    if (trace_path.size() > suffix.size() &&
        trace_path.compare(trace_path.size() - suffix.size(), suffix.size(), suffix) == 0)
        return trace_path.substr(0, trace_path.size() - suffix.size()) + ".metrics.csv";
    return trace_path + ".metrics.csv";
}

}  // namespace synpa::obs
