#include "obs/metrics_registry.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <ostream>
#include <stdexcept>

namespace synpa::obs {

void LogHistogram::record(std::uint64_t value) noexcept {
    const std::size_t bucket = value == 0 ? 0 : static_cast<std::size_t>(std::bit_width(value));
    ++buckets_[bucket];
    ++count_;
    sum_ += value;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
}

void LogHistogram::merge(const LogHistogram& other) noexcept {
    for (std::size_t b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double LogHistogram::mean() const noexcept {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0;
}

double LogHistogram::percentile(double p) const noexcept {
    if (count_ == 0) return 0.0;
    p = std::clamp(p, 0.0, 1.0);
    // The edge quantiles are exact (the extrema are tracked outside the
    // buckets); interior ones interpolate within their bucket.
    if (p == 0.0) return static_cast<double>(min());
    if (p == 1.0) return static_cast<double>(max_);
    // Order-statistic rank with linear interpolation, like common::percentile.
    const double rank = p * static_cast<double>(count_ - 1);
    std::uint64_t below = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
        const std::uint64_t in_bucket = buckets_[b];
        if (in_bucket == 0) continue;
        const double last = static_cast<double>(below + in_bucket - 1);
        if (rank > last) {
            below += in_bucket;
            continue;
        }
        // Nominal bucket bounds, clamped to the exact extrema so the edge
        // quantiles are tight.
        double lo = b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b) - 1);
        double hi = b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b)) - 1.0;
        lo = std::max(lo, static_cast<double>(min()));
        hi = std::min(hi, static_cast<double>(max_));
        if (hi < lo) hi = lo;
        const double frac =
            in_bucket > 1
                ? (rank - static_cast<double>(below)) / static_cast<double>(in_bucket - 1)
                : 0.0;
        return lo + frac * (hi - lo);
    }
    return static_cast<double>(max_);
}

MetricsRegistry::Slot& MetricsRegistry::slot(std::string_view name, Kind kind) {
    const auto it = slots_.find(std::string(name));
    if (it != slots_.end()) {
        if (it->second.kind != kind)
            throw std::logic_error("MetricsRegistry: instrument '" + std::string(name) +
                                   "' already registered with a different kind");
        return it->second;
    }
    Slot s{kind, 0};
    switch (kind) {
        case Kind::kCounter:
            s.index = counters_.size();
            counters_.push_back(std::make_unique<Counter>());
            break;
        case Kind::kGauge:
            s.index = gauges_.size();
            gauges_.push_back(std::make_unique<Gauge>());
            break;
        case Kind::kHistogram:
            s.index = histograms_.size();
            histograms_.push_back(std::make_unique<LogHistogram>());
            break;
    }
    order_.emplace_back(name);
    return slots_.emplace(std::string(name), s).first->second;
}

Counter& MetricsRegistry::counter(std::string_view name) {
    return *counters_[slot(name, Kind::kCounter).index];
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
    return *gauges_[slot(name, Kind::kGauge).index];
}

LogHistogram& MetricsRegistry::histogram(std::string_view name) {
    return *histograms_[slot(name, Kind::kHistogram).index];
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const noexcept {
    const auto it = slots_.find(std::string(name));
    return it != slots_.end() && it->second.kind == Kind::kCounter
               ? counters_[it->second.index].get()
               : nullptr;
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const noexcept {
    const auto it = slots_.find(std::string(name));
    return it != slots_.end() && it->second.kind == Kind::kGauge
               ? gauges_[it->second.index].get()
               : nullptr;
}

const LogHistogram* MetricsRegistry::find_histogram(std::string_view name) const noexcept {
    const auto it = slots_.find(std::string(name));
    return it != slots_.end() && it->second.kind == Kind::kHistogram
               ? histograms_[it->second.index].get()
               : nullptr;
}

void MetricsRegistry::write_csv(std::ostream& os) const {
    os << "name,kind,count,value,mean,p50,p90,p99,min,max\n";
    for (const std::string& name : order_) {
        const Slot& s = slots_.at(name);
        switch (s.kind) {
            case Kind::kCounter:
                os << name << ",counter,," << counters_[s.index]->value() << ",,,,,,\n";
                break;
            case Kind::kGauge:
                os << name << ",gauge,," << gauges_[s.index]->value() << ",,,,,,\n";
                break;
            case Kind::kHistogram: {
                const LogHistogram& h = *histograms_[s.index];
                os << name << ",histogram," << h.count() << ",," << h.mean() << ','
                   << h.percentile(0.50) << ',' << h.percentile(0.90) << ','
                   << h.percentile(0.99) << ',' << h.min() << ',' << h.max() << "\n";
                break;
            }
        }
    }
}

}  // namespace synpa::obs
