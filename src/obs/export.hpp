// Trace exporters: Chrome-trace/Perfetto JSON and a per-quantum metrics
// CSV.  The JSON uses the *simulated* quantum as the timebase (1 quantum =
// 1 ms of trace time, so a run reads naturally in Perfetto's timeline) and
// renders the policy's host wall-clock as counter tracks; load it at
// https://ui.perfetto.dev or chrome://tracing, or feed it to
// tools/trace_summary.py.
#pragma once

#include <iosfwd>
#include <string>

namespace synpa::obs {

class Tracer;

/// Chrome-trace JSON ("traceEvents" array): pid 0 is the scheduler (one
/// "X" slice per quantum, counter tracks for occupancy/utilization/phase
/// wall-clock, instants for migrations/admissions/retirements/allocations/
/// alarms/refits), pid 1+c is chip c ("X" chip-quantum slices with the
/// shard's measured wall microseconds).
void write_chrome_trace(std::ostream& os, const Tracer& tracer);

/// Per-quantum sample rows:
/// quantum,live,queued,utilization,migrations,cross_chip,simulate_us,
/// observe_us,decide_us,bind_us.  (Aggregate instrument summaries come
/// from MetricsRegistry::write_csv separately.)
void write_metrics_csv(std::ostream& os, const Tracer& tracer);

/// Where the metrics CSV lands for a given trace path: "t.json" ->
/// "t.metrics.csv" (non-.json paths just append ".metrics.csv").
std::string metrics_csv_path(const std::string& trace_path);

}  // namespace synpa::obs
