// Named run-time metrics for the flight recorder: counters, gauges, and
// log2-bucketed histograms, registered by name and iterated in registration
// order so exports are deterministic.
//
// The histogram buckets by std::bit_width (bucket 0 holds the value 0,
// bucket b >= 1 holds [2^(b-1), 2^b - 1]), keeps exact min/max/sum, and
// merges associatively — per-shard histograms recorded independently can be
// folded together after a barrier and report the same percentiles as one
// histogram fed serially (asserted in tests/test_obs.cpp).
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace synpa::obs {

/// Monotonic event count.
class Counter {
public:
    void add(std::uint64_t delta = 1) noexcept { value_ += delta; }
    std::uint64_t value() const noexcept { return value_; }

private:
    std::uint64_t value_ = 0;
};

/// Last-write-wins sampled value.
class Gauge {
public:
    void set(double value) noexcept { value_ = value; }
    double value() const noexcept { return value_; }

private:
    double value_ = 0.0;
};

/// Log2-bucketed histogram over unsigned samples (typically nanoseconds).
class LogHistogram {
public:
    /// Bucket b holds values with bit_width b: 0, then [2^(b-1), 2^b - 1]
    /// for b in [1, 64].
    static constexpr std::size_t kBuckets = 65;

    void record(std::uint64_t value) noexcept;
    /// Folds another histogram in (associative and commutative).
    void merge(const LogHistogram& other) noexcept;

    std::uint64_t count() const noexcept { return count_; }
    /// Exact extrema (0 when empty).
    std::uint64_t min() const noexcept { return count_ ? min_ : 0; }
    std::uint64_t max() const noexcept { return max_; }
    double mean() const noexcept;

    /// The p-quantile (p in [0, 1]) with linear interpolation inside the
    /// bucket the rank lands in; bucket bounds are clamped to the exact
    /// min/max, so percentile(0) == min() and percentile(1) == max().
    /// Returns 0 for an empty histogram.
    double percentile(double p) const noexcept;

    std::span<const std::uint64_t> buckets() const noexcept {
        return {buckets_.data(), buckets_.size()};
    }

private:
    std::array<std::uint64_t, kBuckets> buckets_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t max_ = 0;
};

/// Name-keyed instrument registry.  Instruments are created on first use
/// and returned by stable reference (deque-backed); the CSV export walks
/// them in registration order, so two identical runs export identical
/// files.  Not thread-safe — each Tracer owns one registry and all updates
/// happen on the coordinating thread (shards record into their own rings).
class MetricsRegistry {
public:
    Counter& counter(std::string_view name);
    Gauge& gauge(std::string_view name);
    LogHistogram& histogram(std::string_view name);

    /// Read-only lookups; nullptr when the instrument was never touched.
    const Counter* find_counter(std::string_view name) const noexcept;
    const Gauge* find_gauge(std::string_view name) const noexcept;
    const LogHistogram* find_histogram(std::string_view name) const noexcept;

    std::size_t size() const noexcept { return order_.size(); }

    /// One row per instrument, registration order:
    /// name,kind,count,value,mean,p50,p90,p99,min,max (histogram columns
    /// empty for counters/gauges).
    void write_csv(std::ostream& os) const;

private:
    enum class Kind { kCounter, kGauge, kHistogram };
    struct Slot {
        Kind kind;
        std::size_t index;
    };

    std::unordered_map<std::string, Slot> slots_;
    std::vector<std::string> order_;  ///< registration-ordered names
    // deque-like stable storage: instruments are small, so vectors of
    // unique chunks are overkill — reserve-free deques via std::vector of
    // values would invalidate references on growth, hence indirection.
    std::vector<std::unique_ptr<Counter>> counters_;
    std::vector<std::unique_ptr<Gauge>> gauges_;
    std::vector<std::unique_ptr<LogHistogram>> histograms_;

    Slot& slot(std::string_view name, Kind kind);
};

}  // namespace synpa::obs
