#include "obs/trace.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "common/config.hpp"
#include "obs/export.hpp"

namespace synpa::obs {
namespace {

constexpr std::uint32_t bit(EventKind kind) noexcept {
    return 1u << static_cast<unsigned>(kind);
}

struct EventGroup {
    const char* name;
    std::uint32_t mask;
};

// SYNPA_TRACE_EVENTS groups; see docs/REFERENCE.md.
constexpr EventGroup kGroups[] = {
    {"quantum", bit(EventKind::kQuantumBegin) | bit(EventKind::kQuantumEnd)},
    {"chip", bit(EventKind::kChipQuantum)},
    {"alloc", bit(EventKind::kAllocation)},
    {"migration", bit(EventKind::kMigration)},
    {"task", bit(EventKind::kAdmission) | bit(EventKind::kRetirement) |
                 bit(EventKind::kPreemption)},
    {"phase", bit(EventKind::kPhaseAlarm)},
    {"refit", bit(EventKind::kModelRefit)},
};

}  // namespace

const char* event_kind_name(EventKind kind) noexcept {
    switch (kind) {
        case EventKind::kQuantumBegin: return "quantum_begin";
        case EventKind::kQuantumEnd: return "quantum_end";
        case EventKind::kChipQuantum: return "chip_quantum";
        case EventKind::kAllocation: return "allocation";
        case EventKind::kMigration: return "migration";
        case EventKind::kAdmission: return "admission";
        case EventKind::kRetirement: return "retirement";
        case EventKind::kPhaseAlarm: return "phase_alarm";
        case EventKind::kModelRefit: return "model_refit";
        case EventKind::kPreemption: return "preemption";
    }
    return "unknown";
}

std::uint32_t parse_event_mask(const std::string& spec) {
    std::uint32_t mask = 0;
    std::size_t start = 0;
    while (start <= spec.size()) {
        std::size_t end = spec.find(',', start);
        if (end == std::string::npos) end = spec.size();
        std::string token = spec.substr(start, end - start);
        // Trim surrounding whitespace.
        while (!token.empty() && (token.front() == ' ' || token.front() == '\t'))
            token.erase(token.begin());
        while (!token.empty() && (token.back() == ' ' || token.back() == '\t'))
            token.pop_back();
        start = end + 1;
        if (token.empty()) continue;
        if (token == "all") {
            mask = 0xFFFF'FFFFu;
            continue;
        }
        bool found = false;
        for (const EventGroup& g : kGroups) {
            if (token == g.name) {
                mask |= g.mask;
                found = true;
                break;
            }
        }
        if (!found)
            throw std::runtime_error(
                "SYNPA_TRACE_EVENTS: unknown event group '" + token +
                "' (expected all, quantum, chip, alloc, migration, task, phase, refit)");
    }
    return mask;
}

TraceConfig TraceConfig::from_env() {
    TraceConfig cfg;
    cfg.enabled = common::env_int("SYNPA_TRACE", 0) != 0;
    cfg.file = common::env_string("SYNPA_TRACE_FILE", "");
    const std::string events = common::env_string("SYNPA_TRACE_EVENTS", "all");
    cfg.event_mask = parse_event_mask(events);
    const std::int64_t capacity =
        common::env_int("SYNPA_TRACE_CAPACITY", static_cast<std::int64_t>(cfg.capacity));
    if (capacity < 1)
        throw std::runtime_error("SYNPA_TRACE_CAPACITY: must be a positive event count");
    cfg.capacity = static_cast<std::size_t>(capacity);
    return cfg;
}

Tracer::Tracer(TraceConfig cfg)
    : cfg_(std::move(cfg)), events_(cfg_.capacity), samples_(cfg_.capacity) {}

Tracer::~Tracer() {
    try {
        finish();
    } catch (...) {
        // Destructors must not throw; call finish() explicitly to observe
        // export failures.
    }
}

void Tracer::begin_quantum(std::uint64_t quantum, int live, int queued) {
    if (!cfg_.enabled) return;
    quantum_ = quantum;
    if (wants(EventKind::kQuantumBegin)) {
        TraceEvent e;
        e.kind = EventKind::kQuantumBegin;
        e.quantum = quantum;
        e.a = live;
        e.b = queued;
        events_.push(std::move(e));
    }
}

void Tracer::end_quantum(const QuantumStats& stats) {
    if (!cfg_.enabled) return;
    samples_.push(stats);

    // Fold the sample into the registry: counters for totals, gauges for
    // the latest instantaneous values, log-histograms (nanoseconds) for the
    // phase wall-clock distributions trace_summary.py and the overhead
    // bench report percentiles from.
    metrics_.counter("quanta").add();
    metrics_.counter("migrations.total").add(stats.migrations);
    metrics_.counter("migrations.cross_chip").add(stats.cross_chip);
    metrics_.gauge("live").set(stats.live);
    metrics_.gauge("queued").set(stats.queued);
    metrics_.gauge("utilization").set(stats.utilization);
    const auto ns = [](double us) {
        return us > 0.0 ? static_cast<std::uint64_t>(us * 1000.0) : 0u;
    };
    metrics_.histogram("simulate_ns").record(ns(stats.simulate_us));
    metrics_.histogram("observe_ns").record(ns(stats.observe_us));
    metrics_.histogram("decide_ns").record(ns(stats.decide_us));
    metrics_.histogram("bind_ns").record(ns(stats.bind_us));

    if (wants(EventKind::kQuantumEnd)) {
        TraceEvent e;
        e.kind = EventKind::kQuantumEnd;
        e.quantum = stats.quantum;
        e.a = stats.live;
        e.value = stats.utilization;
        events_.push(std::move(e));
    }
}

void Tracer::emit(TraceEvent event) {
    if (!wants(event.kind)) return;
    events_.push(std::move(event));
}

void Tracer::prepare_chips(int chips) {
    if (!cfg_.enabled) return;
    if (chip_events_.size() == static_cast<std::size_t>(chips)) return;
    chip_events_.clear();
    chip_events_.reserve(static_cast<std::size_t>(chips));
    // Per-chip rings share the main capacity evenly so a many-chip run
    // cannot hold more buffered chip events than the configured bound.
    const std::size_t per_chip =
        std::max<std::size_t>(1, cfg_.capacity / std::max(1, chips));
    for (int c = 0; c < chips; ++c) chip_events_.emplace_back(per_chip);
}

void Tracer::emit_chip(int chip, TraceEvent event) {
    if (!wants(event.kind)) return;
    if (static_cast<std::size_t>(chip) >= chip_events_.size()) return;  // not prepared
    chip_events_[static_cast<std::size_t>(chip)].push(std::move(event));
}

void Tracer::merge_chip_events() {
    if (!cfg_.enabled) return;
    // Ascending chip order: the merged stream is independent of which shard
    // ran which chip, so traces are identical at every SYNPA_SIM_THREADS.
    for (EventRing& ring : chip_events_)
        for (TraceEvent& e : ring.drain()) events_.push(std::move(e));
}

void Tracer::finish() {
    if (finished_ || !cfg_.enabled || cfg_.file.empty()) return;
    finished_ = true;
    {
        std::ofstream os(cfg_.file);
        if (!os) throw std::runtime_error("Tracer: cannot open trace file " + cfg_.file);
        write_chrome_trace(os, *this);
        if (!os) throw std::runtime_error("Tracer: failed writing trace file " + cfg_.file);
    }
    const std::string csv = metrics_csv_path(cfg_.file);
    std::ofstream os(csv);
    if (!os) throw std::runtime_error("Tracer: cannot open metrics file " + csv);
    write_metrics_csv(os, *this);
    if (!os) throw std::runtime_error("Tracer: failed writing metrics file " + csv);
}

std::string derive_trace_path(const std::string& base, const std::string& tag) {
    const std::size_t slash = base.find_last_of('/');
    const std::size_t dot = base.find_last_of('.');
    if (dot == std::string::npos || (slash != std::string::npos && dot < slash))
        return base + "-" + tag;
    return base.substr(0, dot) + "-" + tag + base.substr(dot);
}

}  // namespace synpa::obs
