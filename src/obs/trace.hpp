// Flight-recorder tracing for the quantum loop.
//
// A Tracer records structured TraceEvents into bounded drop-oldest ring
// buffers and per-quantum QuantumStats samples into a MetricsRegistry.  It
// is wired through every layer — drivers stamp quantum boundaries and
// phase wall-clock, bind_allocation emits per-task migrations, the SYNPA
// policies report allocation decisions / phase alarms / model refits, and
// the Platform times each chip's quantum inside the parallel shards.
//
// Determinism contract: tracing only *reads* simulated state.  Wall-clock
// is taken with steady_clock and never feeds back into the simulation, so
// a traced run is bit-identical to an untraced one (tests/test_obs.cpp).
// Under SYNPA_SIM_THREADS > 1 each chip gets its own ring (prepare_chips);
// shards write only their chips' rings during the quantum, and the
// coordinator folds them into the main ring in ascending chip order after
// the PR-6 barrier (merge_chip_events) — the merged stream is identical at
// every thread count.
//
// Overhead contract: every instrumentation site is guarded by a single
// enabled-branch (`tracer != nullptr` in the drivers, `wants(kind)` at
// emit sites), so a null or disabled tracer costs one predictable branch
// per site (bench_trace_overhead pins tracing-off within noise and
// tracing-on at <= 5%).
#pragma once

#include <chrono>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "obs/metrics_registry.hpp"

namespace synpa::obs {

enum class EventKind : unsigned {
    kQuantumBegin = 0,  ///< a = live tasks, b = queued arrivals
    kQuantumEnd,        ///< a = live tasks, value = utilization
    kChipQuantum,       ///< chip = chip id, value = wall microseconds
    kAllocation,        ///< a = occupied groups, value = predicted cost, detail = groups
    kMigration,         ///< task, core = new, b = old core, a = class (0 slot/1 intra/2 cross)
    kAdmission,         ///< task, core, detail = app name
    kRetirement,        ///< task, core, value = finish quantum, detail = app name
    kPhaseAlarm,        ///< task — CUSUM phase-change alarm
    kModelRefit,        ///< a = adopted (1/0), value = candidate holdout error
    kPreemption,        ///< task = victim, a = victim priority, b = preemptor
                        ///< priority, core = node id, detail = victim app
};
inline constexpr std::size_t kEventKindCount = 10;

/// Stable lowercase name ("quantum_begin", "migration", ...).
const char* event_kind_name(EventKind kind) noexcept;

/// One structured record.  Field meaning is kind-specific (see EventKind);
/// unused fields keep their defaults.
struct TraceEvent {
    EventKind kind = EventKind::kQuantumBegin;
    std::uint64_t quantum = 0;
    int chip = -1;
    int task = -1;
    int core = -1;
    int a = 0;           ///< small kind-specific payload
    int b = 0;           ///< second kind-specific payload
    double value = 0.0;  ///< kind-specific measurement
    std::string detail;  ///< optional human-readable payload
};

/// Bounded drop-oldest ring buffer (index 0 = oldest retained element).
template <typename T>
class Ring {
public:
    explicit Ring(std::size_t capacity) : buf_(), capacity_(capacity) {
        buf_.reserve(std::min<std::size_t>(capacity, 1024));
    }

    void push(T value) {
        if (buf_.size() < capacity_) {
            buf_.push_back(std::move(value));
            return;
        }
        if (capacity_ == 0) {
            ++dropped_;
            return;
        }
        buf_[head_] = std::move(value);
        head_ = (head_ + 1) % capacity_;
        ++dropped_;
    }

    std::size_t size() const noexcept { return buf_.size(); }
    bool empty() const noexcept { return buf_.empty(); }
    /// Elements dropped (overwritten) since construction.
    std::uint64_t dropped() const noexcept { return dropped_; }

    /// i-th oldest retained element.
    const T& at(std::size_t i) const { return buf_[(head_ + i) % buf_.size()]; }

    /// Moves the retained elements out in oldest-first order and resets.
    std::vector<T> drain() {
        std::vector<T> out;
        out.reserve(buf_.size());
        for (std::size_t i = 0; i < buf_.size(); ++i) out.push_back(std::move(buf_[(head_ + i) % buf_.size()]));
        buf_.clear();
        head_ = 0;
        return out;
    }

private:
    std::vector<T> buf_;
    std::size_t capacity_;
    std::size_t head_ = 0;  ///< oldest element once the ring is full
    std::uint64_t dropped_ = 0;
};

using EventRing = Ring<TraceEvent>;

/// Tracing knobs (see docs/REFERENCE.md).
struct TraceConfig {
    bool enabled = false;
    /// Chrome-trace JSON path; empty = record in memory only.  The metrics
    /// CSV lands next to it (metrics_csv_path in export.hpp).
    std::string file;
    /// Bit per EventKind; parse_event_mask builds it from the
    /// SYNPA_TRACE_EVENTS group list.
    std::uint32_t event_mask = 0xFFFF'FFFFu;
    /// Ring capacity, in events (the per-quantum sample ring uses the same
    /// bound).
    std::size_t capacity = 1u << 16;

    /// Reads SYNPA_TRACE / SYNPA_TRACE_FILE / SYNPA_TRACE_EVENTS /
    /// SYNPA_TRACE_CAPACITY.
    static TraceConfig from_env();
};

/// Builds an event mask from a comma-separated group list: "all" or any of
/// quantum, chip, alloc, migration, task, phase, refit.  Throws
/// std::runtime_error naming an unknown group.
std::uint32_t parse_event_mask(const std::string& spec);

/// Per-quantum flight-recorder sample, assembled by the driver at the end
/// of each quantum.  Wall-clock phases are steady_clock measurements of
/// *host* time around the simulate/observe/decide/bind stages.
struct QuantumStats {
    std::uint64_t quantum = 0;
    int live = 0;
    int queued = 0;
    double utilization = 0.0;
    std::uint64_t migrations = 0;  ///< this quantum's rebind, cross-chip included
    std::uint64_t cross_chip = 0;
    double simulate_us = 0.0;
    double observe_us = 0.0;
    double decide_us = 0.0;
    double bind_us = 0.0;
};

/// Reads the host monotonic clock, in microseconds since an arbitrary
/// epoch.  This helper and PhaseStopwatch are the only sanctioned
/// wall-clock entry points for the deterministic layers (DET-02 in
/// docs/LINTING.md): host time is observability-only and must never feed
/// back into simulated state.
inline double host_now_us() noexcept {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/// Host-time phase stopwatch for the drivers: lap_us() returns the
/// microseconds since the previous lap (0 when inactive — the disabled
/// path costs one branch, no clock read).
class PhaseStopwatch {
public:
    explicit PhaseStopwatch(bool active) noexcept : active_(active) {
        if (active_) last_ = std::chrono::steady_clock::now();
    }
    double lap_us() noexcept {
        if (!active_) return 0.0;
        const auto now = std::chrono::steady_clock::now();
        const double us = std::chrono::duration<double, std::micro>(now - last_).count();
        last_ = now;
        return us;
    }

private:
    bool active_;
    std::chrono::steady_clock::time_point last_{};
};

class Tracer {
public:
    Tracer() : Tracer(TraceConfig::from_env()) {}
    explicit Tracer(TraceConfig cfg);
    /// Writes pending exports (best effort — errors are swallowed; call
    /// finish() explicitly to observe them).
    ~Tracer();

    Tracer(const Tracer&) = delete;
    Tracer& operator=(const Tracer&) = delete;

    bool enabled() const noexcept { return cfg_.enabled; }
    bool wants(EventKind kind) const noexcept {
        return cfg_.enabled && ((cfg_.event_mask >> static_cast<unsigned>(kind)) & 1u) != 0;
    }
    const TraceConfig& config() const noexcept { return cfg_; }

    /// The quantum currently executing; drivers set it via begin_quantum so
    /// policy- and bind-side emitters stamp events without plumbing the
    /// counter through every call.
    std::uint64_t quantum() const noexcept { return quantum_; }

    /// Driver hooks around one quantum.
    void begin_quantum(std::uint64_t quantum, int live, int queued);
    void end_quantum(const QuantumStats& stats);

    /// Records an event (dropped unless wants(e.kind)).
    void emit(TraceEvent event);

    /// Shard-side event sink: chips write only their own ring during a
    /// quantum (no shared mutable state), and merge_chip_events folds the
    /// rings into the main stream in ascending chip order after the
    /// barrier — deterministic at every SYNPA_SIM_THREADS.
    void prepare_chips(int chips);
    void emit_chip(int chip, TraceEvent event);
    void merge_chip_events();

    const EventRing& events() const noexcept { return events_; }
    std::uint64_t dropped_events() const noexcept { return events_.dropped(); }
    const Ring<QuantumStats>& samples() const noexcept { return samples_; }

    MetricsRegistry& metrics() noexcept { return metrics_; }
    const MetricsRegistry& metrics() const noexcept { return metrics_; }

    /// Writes the Chrome-trace JSON (and the metrics CSV next to it) when
    /// TraceConfig::file is set.  Idempotent; throws std::runtime_error on
    /// I/O failure.
    void finish();

private:
    TraceConfig cfg_;
    EventRing events_;
    std::vector<EventRing> chip_events_;
    Ring<QuantumStats> samples_;
    MetricsRegistry metrics_;
    std::uint64_t quantum_ = 0;
    bool finished_ = false;
};

/// Per-cell trace file naming for campaign/scenario grids: inserts "-tag"
/// before the extension ("grid.json", "c0s1p2r0" -> "grid-c0s1p2r0.json").
std::string derive_trace_path(const std::string& base, const std::string& tag);

}  // namespace synpa::obs
