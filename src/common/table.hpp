// Plain-text table rendering for bench reports.  Every bench binary prints
// the paper's table or figure series through this formatter so outputs are
// aligned and diffable, plus an optional CSV dump for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace synpa::common {

/// A simple column-aligned text table.  Cells are strings; numeric helpers
/// format with fixed precision.  Rendering pads columns to their widest cell.
class Table {
public:
    explicit Table(std::vector<std::string> headers);

    /// Starts a new row; subsequent add() calls fill it left to right.
    Table& row();
    Table& add(std::string cell);
    Table& add(double value, int precision = 3);
    Table& add(long long value);
    Table& add_pct(double fraction, int precision = 1);  ///< 0.36 -> "36.0%"

    /// Renders with box-drawing separators to the stream.
    void print(std::ostream& os) const;

    /// Renders as CSV (no padding), one line per row including the header.
    std::string to_csv() const;

    std::size_t row_count() const noexcept { return rows_.size(); }

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper shared with benches).
std::string format_double(double value, int precision);

/// Renders a 0..1 fraction as a fixed-width ASCII bar, e.g. "#####....."
/// Used by the figure benches to sketch the paper's stacked-bar charts.
std::string ascii_bar(double fraction, std::size_t width = 40, char fill = '#');

/// Renders a stacked three-segment bar (full-dispatch / frontend / backend)
/// using distinct glyphs; fractions are clamped and scaled to `width`.
std::string stacked_bar(double a, double b, double c, std::size_t width = 40);

}  // namespace synpa::common
