// Environment-variable configuration helpers.  Every bench binary honours
// SYNPA_* overrides (repetitions, quantum cycles, seeds) so the full suite
// can be scaled up or down without recompiling.
#pragma once

#include <cstdint>
#include <string>

namespace synpa::common {

/// Reads an environment variable; returns `fallback` when unset or empty.
/// Malformed values (e.g. SYNPA_SIM_THREADS=abc, trailing garbage, overflow)
/// throw std::runtime_error naming the knob and the offending value — a typo
/// in a knob must fail loudly, not silently run the default configuration.
std::int64_t env_int(const std::string& name, std::int64_t fallback);
double env_double(const std::string& name, double fallback);
std::string env_string(const std::string& name, const std::string& fallback);

}  // namespace synpa::common
