// Environment-variable configuration helpers.  Every bench binary honours
// SYNPA_* overrides (repetitions, quantum cycles, seeds) so the full suite
// can be scaled up or down without recompiling.
#pragma once

#include <cstdint>
#include <string>

namespace synpa::common {

/// Reads an environment variable; returns `fallback` when unset or invalid.
std::int64_t env_int(const std::string& name, std::int64_t fallback);
double env_double(const std::string& name, double fallback);
std::string env_string(const std::string& name, const std::string& fallback);

}  // namespace synpa::common
