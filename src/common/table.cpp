#include "common/table.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

namespace synpa::common {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::row() {
    rows_.emplace_back();
    rows_.back().reserve(headers_.size());
    return *this;
}

Table& Table::add(std::string cell) {
    if (rows_.empty()) row();
    rows_.back().push_back(std::move(cell));
    return *this;
}

Table& Table::add(double value, int precision) { return add(format_double(value, precision)); }

Table& Table::add(long long value) { return add(std::to_string(value)); }

Table& Table::add_pct(double fraction, int precision) {
    return add(format_double(fraction * 100.0, precision) + "%");
}

void Table::print(std::ostream& os) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& r : rows_)
        for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c)
            widths[c] = std::max(widths[c], r[c].size());

    auto print_sep = [&] {
        os << '+';
        for (auto w : widths) {
            for (std::size_t i = 0; i < w + 2; ++i) os << '-';
            os << '+';
        }
        os << '\n';
    };
    auto print_row = [&](const std::vector<std::string>& cells) {
        os << '|';
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string& s = c < cells.size() ? cells[c] : std::string{};
            os << ' ' << s;
            for (std::size_t i = s.size(); i < widths[c] + 1; ++i) os << ' ';
            os << '|';
        }
        os << '\n';
    };

    print_sep();
    print_row(headers_);
    print_sep();
    for (const auto& r : rows_) print_row(r);
    print_sep();
}

std::string Table::to_csv() const {
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c) os << ',';
            os << cells[c];
        }
        os << '\n';
    };
    emit(headers_);
    for (const auto& r : rows_) emit(r);
    return os.str();
}

std::string format_double(double value, int precision) {
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(precision);
    os << value;
    return os.str();
}

std::string ascii_bar(double fraction, std::size_t width, char fill) {
    fraction = std::clamp(fraction, 0.0, 1.0);
    const auto n = static_cast<std::size_t>(std::lround(fraction * static_cast<double>(width)));
    std::string bar(n, fill);
    bar.append(width - n, '.');
    return bar;
}

std::string stacked_bar(double a, double b, double c, std::size_t width) {
    a = std::max(a, 0.0);
    b = std::max(b, 0.0);
    c = std::max(c, 0.0);
    const double total = std::max(a + b + c, 1e-12);
    auto na = static_cast<std::size_t>(std::lround(a / total * static_cast<double>(width)));
    auto nb = static_cast<std::size_t>(std::lround(b / total * static_cast<double>(width)));
    na = std::min(na, width);
    nb = std::min(nb, width - na);
    const std::size_t nc = width - na - nb;
    std::string bar;
    bar.append(na, '#');  // full-dispatch cycles
    bar.append(nb, 'F');  // frontend stalls
    bar.append(nc, 'B');  // backend stalls
    return bar;
}

}  // namespace synpa::common
