#include "common/config.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <stdexcept>

namespace synpa::common {
namespace {

/// True when `s` (past the parsed prefix) holds only trailing whitespace, so
/// "8 " parses but "8x" and "abc" fail loudly.
bool only_whitespace(const char* s) {
    while (*s != '\0') {
        if (!std::isspace(static_cast<unsigned char>(*s))) return false;
        ++s;
    }
    return true;
}

[[noreturn]] void throw_malformed(const std::string& name, const char* value,
                                  const char* expected) {
    throw std::runtime_error("env knob " + name + "=\"" + value + "\" is not a valid " +
                             expected);
}

}  // namespace

std::int64_t env_int(const std::string& name, std::int64_t fallback) {
    const char* v = std::getenv(name.c_str());
    if (v == nullptr || *v == '\0') return fallback;
    errno = 0;
    char* end = nullptr;
    const long long parsed = std::strtoll(v, &end, 10);
    if (end == v || !only_whitespace(end) || errno == ERANGE)
        throw_malformed(name, v, "integer");
    return parsed;
}

double env_double(const std::string& name, double fallback) {
    const char* v = std::getenv(name.c_str());
    if (v == nullptr || *v == '\0') return fallback;
    errno = 0;
    char* end = nullptr;
    const double parsed = std::strtod(v, &end);
    if (end == v || !only_whitespace(end) || errno == ERANGE)
        throw_malformed(name, v, "number");
    return parsed;
}

std::string env_string(const std::string& name, const std::string& fallback) {
    const char* v = std::getenv(name.c_str());
    if (v == nullptr || *v == '\0') return fallback;
    return v;
}

}  // namespace synpa::common
