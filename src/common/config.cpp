#include "common/config.hpp"

#include <cstdlib>
#include <stdexcept>

namespace synpa::common {

std::int64_t env_int(const std::string& name, std::int64_t fallback) {
    const char* v = std::getenv(name.c_str());
    if (v == nullptr || *v == '\0') return fallback;
    try {
        return std::stoll(v);
    } catch (const std::exception&) {
        return fallback;
    }
}

double env_double(const std::string& name, double fallback) {
    const char* v = std::getenv(name.c_str());
    if (v == nullptr || *v == '\0') return fallback;
    try {
        return std::stod(v);
    } catch (const std::exception&) {
        return fallback;
    }
}

std::string env_string(const std::string& name, const std::string& fallback) {
    const char* v = std::getenv(name.c_str());
    if (v == nullptr || *v == '\0') return fallback;
    return v;
}

}  // namespace synpa::common
