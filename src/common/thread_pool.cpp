#include "common/thread_pool.hpp"

#include <algorithm>

namespace synpa::common {

ThreadPool::ThreadPool(std::size_t threads) {
    if (threads == 0) threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard lock(mutex_);
        stop_ = true;
    }
    cv_task_.notify_all();
    for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
    enqueue([task = std::move(task), this] {
        try {
            task();
        } catch (...) {
            const std::lock_guard lock(mutex_);
            if (!first_exception_) first_exception_ = std::current_exception();
        }
    });
}

void ThreadPool::enqueue(std::function<void()> task) {
    {
        std::lock_guard lock(mutex_);
        tasks_.push(std::move(task));
    }
    cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
    std::unique_lock lock(mutex_);
    cv_idle_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
    if (first_exception_) {
        const std::exception_ptr error = std::exchange(first_exception_, nullptr);
        lock.unlock();
        std::rethrow_exception(error);
    }
}

void ThreadPool::worker_loop() {
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock lock(mutex_);
            cv_task_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
            if (stop_ && tasks_.empty()) return;
            task = std::move(tasks_.front());
            tasks_.pop();
            ++in_flight_;
        }
        task();  // submit() wrapped this; it cannot throw
        {
            std::lock_guard lock(mutex_);
            --in_flight_;
        }
        cv_idle_.notify_all();
    }
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t threads) {
    if (n == 0) return;
    ThreadPool pool(threads);
    for (std::size_t i = 0; i < n; ++i) pool.submit([i, &fn] { fn(i); });
    pool.wait_idle();
}

}  // namespace synpa::common
