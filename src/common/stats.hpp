// Statistics helpers used throughout the evaluation pipeline: running
// moments, geometric means, mean-square error, and the coefficient of
// variation that drives the paper's repetition/outlier-discard methodology.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace synpa::common {

/// Accumulates count/mean/variance in one pass (Welford's algorithm).
class RunningStats {
public:
    void add(double x) noexcept;
    void merge(const RunningStats& other) noexcept;

    std::size_t count() const noexcept { return n_; }
    double mean() const noexcept { return n_ ? mean_ : 0.0; }
    /// Population variance (divides by n).
    double variance() const noexcept;
    /// Sample variance (divides by n-1); 0 when fewer than two samples.
    double sample_variance() const noexcept;
    double stddev() const noexcept;
    double min() const noexcept { return min_; }
    double max() const noexcept { return max_; }

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

double mean(std::span<const double> xs) noexcept;
double stddev(std::span<const double> xs) noexcept;

/// Geometric mean; values must be positive (non-positive entries are
/// clamped to a tiny epsilon so a single bad sample cannot poison a report).
double geomean(std::span<const double> xs) noexcept;

/// Mean square error between predictions and observations (equal length).
double mse(std::span<const double> predicted, std::span<const double> observed) noexcept;

/// Coefficient of variation: stddev / mean (0 when mean is 0).
double coefficient_of_variation(std::span<const double> xs) noexcept;

/// The p-quantile (p in [0, 1]) with linear interpolation between order
/// statistics; 0 for an empty sample.  Used for turnaround tail latency
/// (p95/p99) in the scenario reports.
double percentile(std::span<const double> xs, double p);

/// percentile() for already-sorted input — callers extracting several
/// quantiles from one sample sort once and use this.
double percentile_sorted(std::span<const double> sorted, double p) noexcept;

/// The paper's repetition methodology: repeatedly discard the sample
/// farthest from the mean until the coefficient of variation drops below
/// `cv_limit` (or only `min_keep` samples remain).  Returns the retained
/// samples in their original order.
std::vector<double> discard_outliers_until_cv(std::vector<double> xs, double cv_limit,
                                              std::size_t min_keep = 3);

}  // namespace synpa::common
