// Deterministic counter-based random number generation.
//
// Every stochastic draw in the simulator comes from a SplitMix64-based
// stream keyed by (seed, stream id).  Streams are cheap value types: copying
// one forks the sequence, and two streams with different keys are
// statistically independent.  This gives bit-reproducible simulations and,
// crucially, lets an application instance carry its *own* randomness so its
// intrinsic behaviour is identical under every scheduling policy.
#pragma once

#include <cstdint>
#include <cmath>
#include <string_view>

namespace synpa::common {

/// Mixes a 64-bit value through the SplitMix64 finalizer.  Used both as the
/// stream generator step and as a general-purpose hash for key derivation.
constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/// Deterministic 64-bit string hash (FNV-1a folded through SplitMix64);
/// used to key per-application RNG streams by name.
constexpr std::uint64_t hash_string(std::string_view s) noexcept {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char ch : s) {
        h ^= static_cast<unsigned char>(ch);
        h *= 0x100000001b3ULL;
    }
    return splitmix64(h);
}

/// Derives an independent stream key from a seed and up to three salts.
constexpr std::uint64_t derive_key(std::uint64_t seed, std::uint64_t a,
                                   std::uint64_t b = 0, std::uint64_t c = 0) noexcept {
    std::uint64_t k = splitmix64(seed ^ 0x8ad6c1f4a527b9e3ULL);
    k = splitmix64(k ^ a);
    k = splitmix64(k ^ (b * 0x9e3779b97f4a7c15ULL));
    k = splitmix64(k ^ (c * 0xc2b2ae3d27d4eb4fULL));
    return k;
}

/// A small, fast, deterministic random stream (SplitMix64).
///
/// Satisfies UniformRandomBitGenerator, so it can also feed <random>
/// distributions, though the built-in helpers below are preferred in the
/// simulator hot path.
class Rng {
public:
    using result_type = std::uint64_t;

    Rng() = default;
    explicit Rng(std::uint64_t key) noexcept : state_(key) {}
    Rng(std::uint64_t seed, std::uint64_t a, std::uint64_t b = 0, std::uint64_t c = 0) noexcept
        : state_(derive_key(seed, a, b, c)) {}

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }

    std::uint64_t operator()() noexcept {
        state_ += 0x9e3779b97f4a7c15ULL;
        std::uint64_t z = state_;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /// Uniform double in [0, 1).
    double uniform() noexcept {
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

    /// Uniform integer in [0, n).  n must be > 0.
    std::uint64_t below(std::uint64_t n) noexcept {
        // Lemire's multiply-shift rejection-free approximation is fine here:
        // bias is negligible for n << 2^64 and determinism is what we need.
        __extension__ using uint128 = unsigned __int128;
        return static_cast<std::uint64_t>((static_cast<uint128>((*this)()) * n) >> 64);
    }

    /// Uniform integer in [lo, hi] inclusive.
    std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept {
        return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /// Bernoulli draw with probability p.
    bool chance(double p) noexcept { return uniform() < p; }

    /// Geometric draw: number of trials until first success (>= 1) for
    /// success probability p.  Used for "instructions until next event"
    /// draws; p is clamped away from 0 to keep results finite.
    std::uint64_t geometric(double p) noexcept {
        if (p >= 1.0) return 1;
        if (p < 1e-12) p = 1e-12;
        // Inverse-CDF sampling; log1p keeps precision for small p.
        const double u = uniform();
        const double n = std::log1p(-u) / std::log1p(-p);
        const double v = n < 1.0 ? 1.0 : n;
        return static_cast<std::uint64_t>(v) + 1;
    }

    /// Exponential draw with the given mean.
    double exponential(double mean) noexcept {
        double u = uniform();
        if (u >= 1.0) u = 0.9999999999;
        return -mean * std::log1p(-u);
    }

private:
    std::uint64_t state_ = 0x123456789abcdef0ULL;
};

}  // namespace synpa::common
