#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace synpa::common {

void RunningStats::add(double x) noexcept {
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
    if (other.n_ == 0) return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double delta = other.mean_ - mean_;
    const auto n = static_cast<double>(n_);
    const auto m = static_cast<double>(other.n_);
    mean_ += delta * m / (n + m);
    m2_ += other.m2_ + delta * delta * n * m / (n + m);
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    n_ += other.n_;
}

double RunningStats::variance() const noexcept {
    return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::sample_variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double mean(std::span<const double> xs) noexcept {
    RunningStats s;
    for (double x : xs) s.add(x);
    return s.mean();
}

double stddev(std::span<const double> xs) noexcept {
    RunningStats s;
    for (double x : xs) s.add(x);
    return s.stddev();
}

double geomean(std::span<const double> xs) noexcept {
    if (xs.empty()) return 0.0;
    double acc = 0.0;
    for (double x : xs) acc += std::log(std::max(x, 1e-300));
    return std::exp(acc / static_cast<double>(xs.size()));
}

double mse(std::span<const double> predicted, std::span<const double> observed) noexcept {
    if (predicted.empty() || predicted.size() != observed.size()) return 0.0;
    double acc = 0.0;
    for (std::size_t i = 0; i < predicted.size(); ++i) {
        const double d = predicted[i] - observed[i];
        acc += d * d;
    }
    return acc / static_cast<double>(predicted.size());
}

double coefficient_of_variation(std::span<const double> xs) noexcept {
    const double m = mean(xs);
    if (m == 0.0) return 0.0;
    return stddev(xs) / std::abs(m);
}

double percentile(std::span<const double> xs, double p) {
    if (xs.empty()) return 0.0;
    std::vector<double> sorted(xs.begin(), xs.end());
    std::sort(sorted.begin(), sorted.end());
    return percentile_sorted(sorted, p);
}

double percentile_sorted(std::span<const double> sorted, double p) noexcept {
    if (sorted.empty()) return 0.0;
    const double clamped = std::clamp(p, 0.0, 1.0);
    const double pos = clamped * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

std::vector<double> discard_outliers_until_cv(std::vector<double> xs, double cv_limit,
                                              std::size_t min_keep) {
    while (xs.size() > std::max<std::size_t>(min_keep, 1) &&
           coefficient_of_variation(xs) > cv_limit) {
        const double m = mean(xs);
        auto worst = xs.begin();
        double worst_dev = -1.0;
        for (auto it = xs.begin(); it != xs.end(); ++it) {
            const double dev = std::abs(*it - m);
            if (dev > worst_dev) {
                worst_dev = dev;
                worst = it;
            }
        }
        xs.erase(worst);
    }
    return xs;
}

}  // namespace synpa::common
