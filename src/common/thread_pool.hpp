// A small fixed-size thread pool with a parallel_for_each helper.
//
// The evaluation sweeps (20 workloads x 2 policies x N repetitions, and the
// all-pairs training runs) are embarrassingly parallel across independent
// simulator instances, so the benches fan them out over hardware threads.
// On a single-core host the pool degrades gracefully to near-serial
// execution with the same deterministic results (each task owns its RNG).
//
// Error handling: a task that throws does not terminate the process.  The
// first exception is captured and rethrown from the next wait_idle() (and
// therefore from parallel_for); later exceptions from the same batch are
// dropped.  Tasks submitted through submit_waitable() instead deliver their
// exception through the returned future.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace synpa::common {

class ThreadPool {
public:
    /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
    explicit ThreadPool(std::size_t threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    std::size_t size() const noexcept { return workers_.size(); }

    /// Enqueues a task for asynchronous execution.  If the task throws, the
    /// first such exception is rethrown by the next wait_idle().
    void submit(std::function<void()> task);

    /// Enqueues a task and returns a future carrying its result; exceptions
    /// propagate through the future instead of wait_idle().
    template <class F>
    [[nodiscard]] std::future<std::invoke_result_t<F&>> submit_waitable(F task) {
        using R = std::invoke_result_t<F&>;
        auto packaged = std::make_shared<std::packaged_task<R()>>(std::move(task));
        std::future<R> result = packaged->get_future();
        enqueue([packaged] { (*packaged)(); });
        return result;
    }

    /// Blocks until every submitted task has finished, then rethrows the
    /// first exception captured from a plain submit() task (if any).  The
    /// pool stays usable after the rethrow.
    void wait_idle();

private:
    void enqueue(std::function<void()> task);
    void worker_loop();

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> tasks_;
    std::mutex mutex_;
    std::condition_variable cv_task_;
    std::condition_variable cv_idle_;
    std::size_t in_flight_ = 0;
    bool stop_ = false;
    std::exception_ptr first_exception_;
};

/// Runs fn(i) for i in [0, n) across a temporary pool and waits.  If any
/// invocation throws, the first exception is rethrown here after every task
/// has drained.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t threads = 0);

}  // namespace synpa::common
