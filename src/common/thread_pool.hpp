// A small fixed-size thread pool with a parallel_for_each helper.
//
// The evaluation sweeps (20 workloads x 2 policies x N repetitions, and the
// all-pairs training runs) are embarrassingly parallel across independent
// simulator instances, so the benches fan them out over hardware threads.
// On a single-core host the pool degrades gracefully to near-serial
// execution with the same deterministic results (each task owns its RNG).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace synpa::common {

class ThreadPool {
public:
    /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
    explicit ThreadPool(std::size_t threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    std::size_t size() const noexcept { return workers_.size(); }

    /// Enqueues a task for asynchronous execution.
    void submit(std::function<void()> task);

    /// Blocks until every submitted task has finished.
    void wait_idle();

private:
    void worker_loop();

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> tasks_;
    std::mutex mutex_;
    std::condition_variable cv_task_;
    std::condition_variable cv_idle_;
    std::size_t in_flight_ = 0;
    bool stop_ = false;
};

/// Runs fn(i) for i in [0, n) across a temporary pool and waits.
/// Exceptions from tasks terminate (tasks are expected not to throw).
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t threads = 0);

}  // namespace synpa::common
