// A dense, id-indexed replacement for std::unordered_map<int, V> on the
// simulator's hot task-lookup paths.
//
// Task ids are small, monotonically assigned integers (drivers hand them
// out starting at 1 and never reuse them), so a flat vector indexed by id
// beats hashing: Platform::task_counters and the bind/placement paths look
// up every live task every quantum — at 512 hardware contexts that is
// hundreds of probes per quantum, and the hash, probe chain and cache
// misses of unordered_map show up in profiles.  Lookup here is one bounds
// check and one vector index.
//
// Memory: the backing vector grows to the largest id ever inserted and
// never shrinks (erase only clears the presence flag).  Ids are assigned
// densely by the drivers, so the footprint is O(tasks ever admitted) with
// a few bytes per entry — bounded in long open-system runs by the same
// forget_task discipline that used to bound the hash maps.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace synpa::common {

template <class V>
class FlatIdMap {
public:
    /// Pointer to the value for `id`, or nullptr when absent.  Pointers are
    /// invalidated by any growing insert (operator[] / insert_or_assign with
    /// a new largest id), like vector iterators.
    V* find(int id) noexcept {
        const auto i = static_cast<std::size_t>(id);
        return id >= 0 && i < present_.size() && present_[i] ? &values_[i] : nullptr;
    }
    const V* find(int id) const noexcept {
        const auto i = static_cast<std::size_t>(id);
        return id >= 0 && i < present_.size() && present_[i] ? &values_[i] : nullptr;
    }

    bool contains(int id) const noexcept { return find(id) != nullptr; }

    /// Inserts or overwrites the value for `id` (id must be >= 0).
    void insert_or_assign(int id, V value) {
        const auto i = static_cast<std::size_t>(id);
        if (i >= present_.size()) {
            present_.resize(i + 1, 0);
            values_.resize(i + 1);
        }
        size_ += present_[i] ? 0u : 1u;
        present_[i] = 1;
        values_[i] = std::move(value);
    }

    /// Reference to the value for `id` (id must be >= 0), default-
    /// constructing it when absent — the unordered_map operator[] contract.
    V& operator[](int id) {
        const auto i = static_cast<std::size_t>(id);
        if (i >= present_.size()) {
            present_.resize(i + 1, 0);
            values_.resize(i + 1);
        }
        size_ += present_[i] ? 0u : 1u;
        present_[i] = 1;
        return values_[i];
    }

    /// Reference to the value for `id`; throws std::out_of_range when absent.
    const V& at(int id) const {
        const V* v = find(id);
        if (v == nullptr) throw std::out_of_range("FlatIdMap::at: absent id");
        return *v;
    }
    V& at(int id) {
        V* v = find(id);
        if (v == nullptr) throw std::out_of_range("FlatIdMap::at: absent id");
        return *v;
    }

    /// Removes `id`; returns whether it was present.  Capacity is kept.
    bool erase(int id) noexcept {
        const auto i = static_cast<std::size_t>(id);
        if (id < 0 || i >= present_.size() || !present_[i]) return false;
        present_[i] = 0;
        values_[i] = V{};
        --size_;
        return true;
    }

    std::size_t size() const noexcept { return size_; }
    bool empty() const noexcept { return size_ == 0; }

    /// Calls fn(id, value) for every present entry in ascending id order.
    template <class Fn>
    void for_each(Fn&& fn) const {
        for (std::size_t i = 0; i < present_.size(); ++i)
            if (present_[i]) fn(static_cast<int>(i), values_[i]);
    }

private:
    std::vector<unsigned char> present_;
    std::vector<V> values_;
    std::size_t size_ = 0;
};

}  // namespace synpa::common
