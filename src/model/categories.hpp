// Three-category dispatch-stage characterization (paper §III-B, Figure 2).
//
// From the four Table-I counters gathered over a window:
//   Step 1: split cycles into frontend stalls (FE), backend stalls (BE) and
//           dispatch cycles Dc = cycles - FE - BE.
//   Step 2: compute equivalent full-dispatch cycles F-Dc = INST_SPEC / W;
//           the surplus Reveals = Dc - F-Dc is horizontal waste hidden from
//           the stall counters (cycles that dispatched fewer than W ops).
//   Step 3: attribute Reveals to the backend (frontend events waste whole
//           cycles, which STALL_FRONTEND already counts), leaving exactly
//           three categories that sum to the window's cycles.
#pragma once

#include <array>
#include <cstdint>

#include "pmu/counters.hpp"

namespace synpa::model {

/// Index order for the three categories everywhere in this library.
enum class Category : std::size_t {
    kFullDispatch = 0,
    kFrontendStall = 1,
    kBackendStall = 2,
};
inline constexpr std::size_t kCategoryCount = 3;

inline constexpr std::array<const char*, kCategoryCount> kCategoryNames = {
    "Full-dispatch cycles", "Frontend stalls", "Backend stalls"};

/// Cycle accounting for one measurement window.
struct CategoryBreakdown {
    std::uint64_t cycles = 0;        ///< CPU_CYCLES in the window
    std::uint64_t instructions = 0;  ///< INST_SPEC in the window

    // Step 1 raw values.
    double frontend_stalls_measured = 0.0;  ///< STALL_FRONTEND
    double backend_stalls_measured = 0.0;   ///< STALL_BACKEND
    double dispatch_cycles = 0.0;           ///< cycles - FE - BE

    // Step 2.
    double full_dispatch_cycles = 0.0;  ///< INST_SPEC / dispatch width
    double revealed_stalls = 0.0;       ///< Dc - F-Dc (horizontal waste)

    // Step 3 final categories (cycle counts; sum == cycles).
    std::array<double, kCategoryCount> categories{};

    /// Categories divided by window cycles: per-cycle probabilities of each
    /// category event; the components sum to 1.
    std::array<double, kCategoryCount> fractions() const noexcept;

    /// Instructions per cycle over the window.
    double ipc() const noexcept;
};

/// Runs the three characterization steps on a counter delta.
CategoryBreakdown characterize(const pmu::CounterBank& delta, int dispatch_width);

}  // namespace synpa::model
