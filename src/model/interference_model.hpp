// The paper's per-category linear interference model (Equation 1):
//
//   C_smt(i,j) = alpha_C + beta_C * C_st(i) + gamma_C * C_st(j)
//              + rho_C * C_st(i) * C_st(j)
//
// Inputs are the target application's and the co-runner's isolated category
// values (fractions of isolated cycles, summing to 1 across categories).
// The output is the category's cycle cost in SMT *per isolated cycle of the
// same work*, so the three predicted categories sum to the slowdown the
// application suffers next to that co-runner (>= ~1).
#pragma once

#include <array>
#include <span>
#include <string>
#include <vector>

#include "model/categories.hpp"

namespace synpa::model {

/// Coefficients of Equation 1 for one category.
struct CategoryCoefficients {
    double alpha = 0.0;
    double beta = 1.0;
    double gamma = 0.0;
    double rho = 0.0;

    double predict(double c_self, double c_corunner) const noexcept {
        return alpha + beta * c_self + gamma * c_corunner + rho * c_self * c_corunner;
    }
};

/// ST category fractions (sum to 1) or SMT per-isolated-cycle values.
using CategoryVector = std::array<double, kCategoryCount>;

class InterferenceModel {
public:
    InterferenceModel() = default;
    explicit InterferenceModel(std::array<CategoryCoefficients, kCategoryCount> coeffs)
        : coeffs_(coeffs) {}

    const CategoryCoefficients& coefficients(Category c) const noexcept {
        return coeffs_[static_cast<std::size_t>(c)];
    }
    CategoryCoefficients& coefficients(Category c) noexcept {
        return coeffs_[static_cast<std::size_t>(c)];
    }

    /// Predicts the SMT category values for application i co-running with j
    /// (both arguments are isolated fractions).
    CategoryVector predict(const CategoryVector& st_i, const CategoryVector& st_j) const noexcept;

    /// Predicted slowdown of i when paired with j: the sum of predicted
    /// SMT categories (per-isolated-cycle units).
    double predict_slowdown(const CategoryVector& st_i,
                            const CategoryVector& st_j) const noexcept;

    /// The coefficients the paper reports in Table IV (ThunderX2-trained).
    /// Useful as a reference point and for unit tests of model mechanics.
    static InterferenceModel paper_table4();

    std::string to_string() const;

private:
    std::array<CategoryCoefficients, kCategoryCount> coeffs_{};
};

/// Structure-of-arrays mirror of an InterferenceModel's coefficients for
/// the allocator's hot Step-2 loops: Equation 1 evaluated straight off four
/// contiguous arrays, and the group predictors writing into caller-provided
/// buffers instead of allocating per call.  Every evaluation performs the
/// exact floating-point operations of the InterferenceModel path in the
/// same order, so results are bit-identical — the determinism contract the
/// weight cache and the goldens rely on.  A FlatModel is a snapshot: it
/// does not track later coefficient edits on the source model, so holders
/// must rebuild it whenever they swap models (SynpaEstimator::set_model).
class FlatModel {
public:
    FlatModel() = default;
    explicit FlatModel(const InterferenceModel& model);

    /// Equation 1 for one category — same expression, same rounding as
    /// CategoryCoefficients::predict.
    double predict_category(std::size_t c, double c_self, double c_corunner) const noexcept {
        return alpha_[c] + beta_[c] * c_self + gamma_[c] * c_corunner +
               rho_[c] * c_self * c_corunner;
    }

    /// Bit-identical to InterferenceModel::predict_slowdown.
    double predict_slowdown(const CategoryVector& st_i,
                            const CategoryVector& st_j) const noexcept;

    /// Bit-identical to predict_group_slowdown(model, members).
    double group_slowdown(std::span<const CategoryVector> members) const noexcept;

    /// Bit-identical to predict_member_slowdowns(model, members), written
    /// into `out` (out.size() must equal members.size()).
    void member_slowdowns(std::span<const CategoryVector> members,
                          std::span<double> out) const noexcept;

private:
    std::array<double, kCategoryCount> alpha_{};
    std::array<double, kCategoryCount> beta_{};
    std::array<double, kCategoryCount> gamma_{};
    std::array<double, kCategoryCount> rho_{};
};

/// Predicted combined badness of co-scheduling all `members` on one SMT
/// core: each member evaluated by Equation 1 against the superposed
/// category pressure of every other member.  Because Equation 1 is affine
/// in the co-runner vector, this equals the symmetrized pairwise sums minus
/// (k - 2) solo terms; a 2-group reduces to the usual both-directions pair
/// weight and a singleton to the "runs alone" term.  Shared by SYNPA's
/// estimator (estimated vectors) and the Oracle (true vectors) so the two
/// predictors cannot diverge.
double predict_group_slowdown(const InterferenceModel& model,
                              std::span<const CategoryVector> members);

/// The per-member addends of predict_group_slowdown: member i evaluated by
/// Equation 1 against the superposed category pressure of every other
/// member (a singleton scores its "runs alone" term).  The objective
/// variants of the follow-up family paper (throughput/STP, fairness,
/// turnaround tail) are nonlinear functions of these per-member slowdowns,
/// so they need the addends rather than the plain sum.
std::vector<double> predict_member_slowdowns(const InterferenceModel& model,
                                             std::span<const CategoryVector> members);

}  // namespace synpa::model
