#include "model/categories.hpp"

#include <algorithm>

namespace synpa::model {

std::array<double, kCategoryCount> CategoryBreakdown::fractions() const noexcept {
    std::array<double, kCategoryCount> f{};
    if (cycles == 0) return f;
    const double c = static_cast<double>(cycles);
    for (std::size_t i = 0; i < kCategoryCount; ++i) f[i] = categories[i] / c;
    return f;
}

double CategoryBreakdown::ipc() const noexcept {
    return cycles == 0 ? 0.0
                       : static_cast<double>(instructions) / static_cast<double>(cycles);
}

CategoryBreakdown characterize(const pmu::CounterBank& delta, int dispatch_width) {
    CategoryBreakdown b;
    b.cycles = delta.value(pmu::Event::kCpuCycles);
    b.instructions = delta.value(pmu::Event::kInstSpec);
    if (b.cycles == 0) return b;

    const auto cycles = static_cast<double>(b.cycles);
    b.frontend_stalls_measured =
        std::min(cycles, static_cast<double>(delta.value(pmu::Event::kStallFrontend)));
    b.backend_stalls_measured =
        std::min(cycles - b.frontend_stalls_measured,
                 static_cast<double>(delta.value(pmu::Event::kStallBackend)));

    // Step 1: whatever is not a counted stall is a dispatch cycle.
    b.dispatch_cycles =
        std::max(0.0, cycles - b.frontend_stalls_measured - b.backend_stalls_measured);

    // Step 2: cycles the instructions would need at full dispatch width.
    b.full_dispatch_cycles =
        static_cast<double>(b.instructions) / static_cast<double>(dispatch_width);
    b.full_dispatch_cycles = std::min(b.full_dispatch_cycles, b.dispatch_cycles);
    b.revealed_stalls = b.dispatch_cycles - b.full_dispatch_cycles;

    // Step 3: horizontal waste belongs to the backend.
    b.categories[static_cast<std::size_t>(Category::kFullDispatch)] = b.full_dispatch_cycles;
    b.categories[static_cast<std::size_t>(Category::kFrontendStall)] =
        b.frontend_stalls_measured;
    b.categories[static_cast<std::size_t>(Category::kBackendStall)] =
        b.backend_stalls_measured + b.revealed_stalls;
    return b;
}

}  // namespace synpa::model
