#include "model/inversion.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "linalg/matrix.hpp"

namespace synpa::model {
namespace {

/// Clamps to [0, 1.5] and renormalizes to the unit simplex.
void project_to_simplex(CategoryVector& v) noexcept {
    double sum = 0.0;
    for (double& x : v) {
        x = std::clamp(x, 0.0, 1.5);
        sum += x;
    }
    if (sum <= 1e-9) {
        v = {1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0};
        return;
    }
    for (double& x : v) x /= sum;
}

double implied_slowdown(const InterferenceModel& m, const CategoryVector& a,
                        const CategoryVector& b) noexcept {
    return std::clamp(m.predict_slowdown(a, b), 1.0, 4.0);
}

/// The inversion residual system (6 unknowns: st_i then st_j).
///
/// With S_i = sum_C model_C(st_i, st_j), consistency demands
/// model_C(st_i, st_j) = S_i * f_i[C]; two of those three equations are
/// independent (they sum to an identity), and the simplex constraint closes
/// the system — and symmetrically for j.
std::array<double, 6> residual(const InterferenceModel& m, const std::array<double, 6>& x,
                               const CategoryVector& fi, const CategoryVector& fj) noexcept {
    const CategoryVector si = {x[0], x[1], x[2]};
    const CategoryVector sj = {x[3], x[4], x[5]};
    const CategoryVector pi = m.predict(si, sj);
    const CategoryVector pj = m.predict(sj, si);
    const double total_i = pi[0] + pi[1] + pi[2];
    const double total_j = pj[0] + pj[1] + pj[2];
    return {pi[0] - fi[0] * total_i,
            pi[1] - fi[1] * total_i,
            x[0] + x[1] + x[2] - 1.0,
            pj[0] - fj[0] * total_j,
            pj[1] - fj[1] * total_j,
            x[3] + x[4] + x[5] - 1.0};
}

double max_abs(const std::array<double, 6>& v) noexcept {
    double m = 0.0;
    for (double x : v) m = std::max(m, std::abs(x));
    return m;
}

}  // namespace

InversionResult ModelInverter::invert(const CategoryVector& smt_i,
                                      const CategoryVector& smt_j) const {
    CategoryVector fi = smt_i;
    CategoryVector fj = smt_j;
    project_to_simplex(fi);
    project_to_simplex(fj);

    // Damped Newton on the joint residual system, with a finite-difference
    // Jacobian (the system is tiny; robustness beats analytic elegance).
    std::array<double, 6> x = {fi[0], fi[1], fi[2], fj[0], fj[1], fj[2]};
    InversionResult r;
    bool solved = false;
    for (int it = 0; it < opts_.max_iterations; ++it) {
        const std::array<double, 6> f = residual(model_, x, fi, fj);
        r.iterations = it;
        if (max_abs(f) < opts_.tolerance) {
            solved = true;
            break;
        }

        linalg::Matrix jac(6, 6);
        const double h = 1e-7;
        for (std::size_t col = 0; col < 6; ++col) {
            std::array<double, 6> xh = x;
            xh[col] += h;
            const std::array<double, 6> fh = residual(model_, xh, fi, fj);
            for (std::size_t row = 0; row < 6; ++row)
                jac(row, col) = (fh[row] - f[row]) / h;
        }

        std::vector<double> rhs(6);
        for (std::size_t k = 0; k < 6; ++k) rhs[k] = -f[k];
        std::vector<double> step;
        try {
            step = linalg::solve_gaussian(jac, rhs);
        } catch (const std::runtime_error&) {
            break;  // singular Jacobian: give up, fall back below
        }

        // Trust region: cap the step and damp toward the current iterate.
        double norm = 0.0;
        for (double s : step) norm = std::max(norm, std::abs(s));
        const double scale = norm > 0.5 ? 0.5 / norm : 1.0;
        for (std::size_t k = 0; k < 6; ++k)
            x[k] = std::clamp(x[k] + opts_.damping * scale * step[k], 0.0, 1.5);
    }

    if (solved) {
        r.st_i = {x[0], x[1], x[2]};
        r.st_j = {x[3], x[4], x[5]};
        project_to_simplex(r.st_i);
        project_to_simplex(r.st_j);
        r.converged = true;
    } else {
        // Graceful fallback: the raw SMT fractions are a usable if biased
        // stand-in for the isolated fractions.
        r.st_i = fi;
        r.st_j = fj;
        r.converged = false;
    }
    r.slowdown_i = implied_slowdown(model_, r.st_i, r.st_j);
    r.slowdown_j = implied_slowdown(model_, r.st_j, r.st_i);
    return r;
}

}  // namespace synpa::model
