// Extended fine-grained category model — the ablation of paper §VI-A.
//
// The authors first built a ~ten-category model that split the backend
// stalls by cause (ROB full, IQ full, ...) and found it *worse*: each extra
// category adds its own regression error, and the errors compound when the
// predictions are summed into a slowdown.  We reproduce that experiment
// with the eight categories our PMU can attribute:
//
//   0 full-dispatch cycles          4 backend: LLC-hit episodes
//   1 frontend: branch redirects    5 backend: DRAM episodes
//   2 frontend: ICache misses       6 backend: dispatch-slot contention
//   3 backend: L2-hit episodes      7 backend: revealed horizontal waste
//
// Frontend attribution splits STALL_FRONTEND in proportion to
// penalty-weighted event counts, and backend episode attribution uses the
// refill counters — exactly the kind of noisy secondary attribution the
// paper calls out.  Everything else (alignment, fitting, Equation-1 form
// per category) matches the three-category pipeline so the comparison in
// bench_ablation_categories is apples-to-apples.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "model/interference_model.hpp"
#include "model/trainer.hpp"
#include "pmu/counters.hpp"
#include "uarch/sim_config.hpp"

namespace synpa::model {

inline constexpr std::size_t kExtendedCategoryCount = 8;
using ExtendedVector = std::array<double, kExtendedCategoryCount>;

extern const std::array<const char*, kExtendedCategoryCount> kExtendedCategoryNames;

/// Splits a counter delta into the eight extended categories (cycle counts
/// summing to the window's cycles).
ExtendedVector characterize_extended(const pmu::CounterBank& delta,
                                     const uarch::SimConfig& cfg);

/// Isolated per-quantum record with extended categories.
struct ExtendedProfile {
    std::string app_name;
    struct Quantum {
        std::uint64_t insts_end = 0;
        std::uint64_t cycles_end = 0;
        ExtendedVector categories{};
    };
    std::vector<Quantum> quanta;
};

ExtendedProfile profile_isolated_extended(const apps::AppProfile& app,
                                          const uarch::SimConfig& cfg, std::uint64_t quanta,
                                          std::uint64_t seed);

struct ExtendedSample {
    ExtendedVector st_self{};
    ExtendedVector st_corunner{};
    ExtendedVector smt_per_st{};
};

/// Eight independent Equation-1 regressions; slowdown = sum of predictions.
class ExtendedModel {
public:
    const CategoryCoefficients& coefficients(std::size_t c) const { return coeffs_.at(c); }
    CategoryCoefficients& coefficients(std::size_t c) { return coeffs_.at(c); }

    ExtendedVector predict(const ExtendedVector& st_i, const ExtendedVector& st_j) const;
    double predict_slowdown(const ExtendedVector& st_i, const ExtendedVector& st_j) const;

private:
    std::array<CategoryCoefficients, kExtendedCategoryCount> coeffs_{};
};

struct ExtendedTrainingResult {
    ExtendedModel model;
    std::array<double, kExtendedCategoryCount> mse{};
    std::size_t sample_count = 0;
};

/// Mirrors Trainer for the extended characterization: isolated profiles,
/// all-pairs SMT runs with instruction alignment, per-category fits.
class ExtendedTrainer {
public:
    ExtendedTrainer(const uarch::SimConfig& cfg, TrainerOptions opts)
        : cfg_(cfg), opts_(opts) {}

    std::vector<ExtendedSample> collect_pair_samples(const apps::AppProfile& a,
                                                     const apps::AppProfile& b,
                                                     const ExtendedProfile& prof_a,
                                                     const ExtendedProfile& prof_b,
                                                     std::uint64_t seed_a,
                                                     std::uint64_t seed_b) const;

    ExtendedTrainingResult train(std::span<const std::string> app_names) const;

private:
    uarch::SimConfig cfg_;
    TrainerOptions opts_;
};

}  // namespace synpa::model
