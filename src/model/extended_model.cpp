#include "model/extended_model.hpp"

#include <algorithm>
#include <mutex>
#include <stdexcept>

#include "apps/instance.hpp"
#include "apps/spec_suite.hpp"
#include "common/thread_pool.hpp"
#include "linalg/least_squares.hpp"
#include "uarch/chip.hpp"

namespace synpa::model {

const std::array<const char*, kExtendedCategoryCount> kExtendedCategoryNames = {
    "Full dispatch",  "FE branch",  "FE icache",   "BE L2",
    "BE LLC",         "BE memory",  "BE slot",     "BE revealed"};

ExtendedVector characterize_extended(const pmu::CounterBank& delta,
                                     const uarch::SimConfig& cfg) {
    using pmu::Event;
    ExtendedVector out{};
    const auto cycles = static_cast<double>(delta.value(Event::kCpuCycles));
    if (cycles <= 0.0) return out;

    const double fe = static_cast<double>(delta.value(Event::kStallFrontend));
    const double be = static_cast<double>(delta.value(Event::kStallBackend));
    const double insts = static_cast<double>(delta.value(Event::kInstSpec));

    const double dispatch_cycles = std::max(0.0, cycles - fe - be);
    const double full_dispatch =
        std::min(dispatch_cycles, insts / static_cast<double>(cfg.dispatch_width));
    const double reveals = dispatch_cycles - full_dispatch;

    // Frontend attribution: penalty-weighted event counts (noisy: the PMU
    // does not say which stall cycle belongs to which event).
    const double br = static_cast<double>(delta.value(Event::kBrMisPred)) *
                      static_cast<double>(cfg.branch_redirect_penalty);
    const double ic = static_cast<double>(delta.value(Event::kL1iCacheRefill)) *
                      static_cast<double>(cfg.l2_latency);
    const double fe_w = br + ic;
    const double fe_branch = fe_w > 0.0 ? fe * br / fe_w : fe * 0.5;
    const double fe_icache = fe - fe_branch;

    // Backend attribution: slot-contention cycles are counted exactly; the
    // episode cycles are split across levels by refill-count-weighted
    // latencies (again a noisy proxy, as on real PMUs).
    const double slot = std::min(be, static_cast<double>(delta.value(Event::kStallBackendIq)));
    const double episodes = be - slot;
    const double l1d = static_cast<double>(delta.value(Event::kL1dCacheRefill));
    const double l2m = static_cast<double>(delta.value(Event::kL2dCacheRefill));
    const double llcm = static_cast<double>(delta.value(Event::kLlcCacheMiss));
    const double l2_hits = std::max(0.0, l1d - l2m);   // L1D refills served by L2
    const double llc_hits = std::max(0.0, l2m - llcm); // L2 refills served by LLC
    const double w_l2 = l2_hits * static_cast<double>(cfg.l2_latency);
    const double w_llc = llc_hits * static_cast<double>(cfg.llc_latency);
    const double w_mem = llcm * static_cast<double>(cfg.mem_latency);
    const double w_sum = w_l2 + w_llc + w_mem;
    const double be_l2 = w_sum > 0.0 ? episodes * w_l2 / w_sum : 0.0;
    const double be_llc = w_sum > 0.0 ? episodes * w_llc / w_sum : 0.0;
    const double be_mem = episodes - be_l2 - be_llc;

    out[0] = full_dispatch;
    out[1] = fe_branch;
    out[2] = fe_icache;
    out[3] = be_l2;
    out[4] = be_llc;
    out[5] = be_mem;
    out[6] = slot;
    out[7] = reveals;
    return out;
}

ExtendedProfile profile_isolated_extended(const apps::AppProfile& app,
                                          const uarch::SimConfig& cfg, std::uint64_t quanta,
                                          std::uint64_t seed) {
    uarch::SimConfig solo = cfg;
    solo.cores = 1;
    uarch::Chip chip(solo);
    apps::AppInstance task(/*id=*/1, app, seed);
    chip.bind(task, {.core = 0, .slot = 0});

    ExtendedProfile prof;
    prof.app_name = app.name;
    prof.quanta.reserve(quanta);
    pmu::CounterBank prev;
    for (std::uint64_t q = 0; q < quanta; ++q) {
        chip.run_quantum();
        const pmu::CounterBank now = task.counters();
        prof.quanta.push_back({.insts_end = task.insts_retired(),
                               .cycles_end = now.value(pmu::Event::kCpuCycles),
                               .categories = characterize_extended(now.delta_since(prev), cfg)});
        prev = now;
    }
    return prof;
}

namespace {

/// Interpolated cumulative cycles at an instruction count.
double cycles_at(const ExtendedProfile& p, std::uint64_t insts) {
    std::uint64_t pi = 0;
    double pc = 0.0;
    for (const auto& q : p.quanta) {
        if (insts <= q.insts_end) {
            const double span = static_cast<double>(q.insts_end - pi);
            const double f = span <= 0.0 ? 1.0 : static_cast<double>(insts - pi) / span;
            return pc + f * (static_cast<double>(q.cycles_end) - pc);
        }
        pi = q.insts_end;
        pc = static_cast<double>(q.cycles_end);
    }
    return pc;
}

ExtendedVector categories_at(const ExtendedProfile& p, std::uint64_t insts) {
    ExtendedVector acc{};
    std::uint64_t pi = 0;
    for (const auto& q : p.quanta) {
        if (insts <= q.insts_end) {
            const double span = static_cast<double>(q.insts_end - pi);
            const double f = span <= 0.0 ? 1.0 : static_cast<double>(insts - pi) / span;
            for (std::size_t c = 0; c < kExtendedCategoryCount; ++c)
                acc[c] += f * q.categories[c];
            return acc;
        }
        for (std::size_t c = 0; c < kExtendedCategoryCount; ++c) acc[c] += q.categories[c];
        pi = q.insts_end;
    }
    return acc;
}

bool covers(const ExtendedProfile& p, std::uint64_t begin, std::uint64_t end) {
    return begin < end && !p.quanta.empty() && end <= p.quanta.back().insts_end;
}

}  // namespace

ExtendedVector ExtendedModel::predict(const ExtendedVector& st_i,
                                      const ExtendedVector& st_j) const {
    ExtendedVector out{};
    for (std::size_t c = 0; c < kExtendedCategoryCount; ++c)
        out[c] = coeffs_[c].predict(st_i[c], st_j[c]);
    return out;
}

double ExtendedModel::predict_slowdown(const ExtendedVector& st_i,
                                       const ExtendedVector& st_j) const {
    double s = 0.0;
    for (double x : predict(st_i, st_j)) s += x;
    return s;
}

std::vector<ExtendedSample> ExtendedTrainer::collect_pair_samples(
    const apps::AppProfile& a, const apps::AppProfile& b, const ExtendedProfile& prof_a,
    const ExtendedProfile& prof_b, std::uint64_t seed_a, std::uint64_t seed_b) const {
    uarch::SimConfig pair_cfg = cfg_;
    pair_cfg.cores = 1;
    pair_cfg.smt_ways = std::max(pair_cfg.smt_ways, 2);  // pair co-runs need 2 contexts
    uarch::Chip chip(pair_cfg);
    apps::AppInstance ta(/*id=*/1, a, seed_a);
    apps::AppInstance tb(/*id=*/2, b, seed_b);
    chip.bind(ta, {.core = 0, .slot = 0});
    chip.bind(tb, {.core = 0, .slot = 1});

    std::vector<ExtendedSample> out;
    pmu::CounterBank prev_a, prev_b;
    std::uint64_t ia = 0, ib = 0;
    for (std::uint64_t q = 0; q < opts_.pair_quanta; ++q) {
        chip.run_quantum();
        const pmu::CounterBank now_a = ta.counters();
        const pmu::CounterBank now_b = tb.counters();
        const ExtendedVector smt_a = characterize_extended(now_a.delta_since(prev_a), cfg_);
        const ExtendedVector smt_b = characterize_extended(now_b.delta_since(prev_b), cfg_);
        prev_a = now_a;
        prev_b = now_b;
        const std::uint64_t a0 = ia, b0 = ib;
        ia = ta.insts_retired();
        ib = tb.insts_retired();
        if (q < opts_.warmup_quanta) continue;
        if (!covers(prof_a, a0, ia) || !covers(prof_b, b0, ib)) continue;

        const double ca = cycles_at(prof_a, ia) - cycles_at(prof_a, a0);
        const double cb = cycles_at(prof_b, ib) - cycles_at(prof_b, b0);
        if (ca <= 0.0 || cb <= 0.0) continue;

        ExtendedSample sa, sb;
        const ExtendedVector hi_a = categories_at(prof_a, ia);
        const ExtendedVector lo_a = categories_at(prof_a, a0);
        const ExtendedVector hi_b = categories_at(prof_b, ib);
        const ExtendedVector lo_b = categories_at(prof_b, b0);
        for (std::size_t c = 0; c < kExtendedCategoryCount; ++c) {
            sa.st_self[c] = (hi_a[c] - lo_a[c]) / ca;
            sb.st_self[c] = (hi_b[c] - lo_b[c]) / cb;
            sa.smt_per_st[c] = smt_a[c] / ca;
            sb.smt_per_st[c] = smt_b[c] / cb;
        }
        sa.st_corunner = sb.st_self;
        sb.st_corunner = sa.st_self;
        out.push_back(sa);
        out.push_back(sb);
    }
    return out;
}

ExtendedTrainingResult ExtendedTrainer::train(std::span<const std::string> app_names) const {
    std::vector<const apps::AppProfile*> train_apps;
    for (const std::string& name : app_names) train_apps.push_back(&apps::find_app(name));

    std::vector<ExtendedProfile> profiles(train_apps.size());
    common::parallel_for(
        train_apps.size(),
        [&](std::size_t i) {
            profiles[i] = profile_isolated_extended(
                *train_apps[i], cfg_, opts_.isolated_quanta,
                common::derive_key(opts_.seed, 0x150, i));
        },
        opts_.threads);

    std::vector<std::pair<std::size_t, std::size_t>> pairs;
    for (std::size_t i = 0; i < train_apps.size(); ++i)
        for (std::size_t j = i; j < train_apps.size(); ++j) {
            if (i == j && !opts_.include_self_pairs) continue;
            pairs.emplace_back(i, j);
        }

    std::vector<ExtendedSample> samples;
    std::mutex mutex;
    common::parallel_for(
        pairs.size(),
        [&](std::size_t p) {
            const auto [i, j] = pairs[p];
            auto s = collect_pair_samples(*train_apps[i], *train_apps[j], profiles[i],
                                          profiles[j],
                                          common::derive_key(opts_.seed, 0x150, i),
                                          common::derive_key(opts_.seed, 0x150, j));
            const std::lock_guard lock(mutex);
            samples.insert(samples.end(), s.begin(), s.end());
        },
        opts_.threads);

    if (samples.size() < 16) throw std::runtime_error("ExtendedTrainer: too few samples");

    ExtendedTrainingResult result;
    result.sample_count = samples.size();
    for (std::size_t c = 0; c < kExtendedCategoryCount; ++c) {
        linalg::Matrix design(samples.size(), 4);
        std::vector<double> target(samples.size());
        for (std::size_t r = 0; r < samples.size(); ++r) {
            design(r, 0) = 1.0;
            design(r, 1) = samples[r].st_self[c];
            design(r, 2) = samples[r].st_corunner[c];
            design(r, 3) = samples[r].st_self[c] * samples[r].st_corunner[c];
            target[r] = samples[r].smt_per_st[c];
        }
        // Fine categories are frequently near-empty for many applications,
        // so the design can be close to collinear: always ridge-regularize.
        const auto fit = linalg::ridge_least_squares(design, target, 1e-6);
        result.model.coefficients(c) = {.alpha = fit.coefficients[0],
                                        .beta = fit.coefficients[1],
                                        .gamma = fit.coefficients[2],
                                        .rho = fit.coefficients[3]};
        result.mse[c] = fit.mse;
    }
    return result;
}

}  // namespace synpa::model
