// Model inversion (paper §IV-B Step 1, leveraging Feliu et al. [4]).
//
// At runtime only SMT counters exist: for the pair (i, j) sharing a core we
// observe each task's per-cycle category *fractions* f_i, f_j (each sums to
// 1 over its own SMT cycles).  The forward model, however, consumes
// *isolated* fractions.  Inversion recovers them:
//
// Unknowns: isolated fractions st_i, st_j (sum to 1 each) and slowdowns
// s_i, s_j.  The model ties them together: for every category C,
//     model_C(st_i, st_j) = s_i * f_i[C]        (and symmetrically for j)
// because the SMT category value per isolated cycle equals the SMT fraction
// scaled by the slowdown.  Summing over C gives s = sum_C model_C.
//
// We solve this by damped fixed point: given current slowdown estimates,
// each category yields a 2x2 (mildly nonlinear, rho term) system in
// (st_i[C], st_j[C]) solved in closed form / Newton; estimates are clamped
// to the simplex and the slowdowns re-derived, iterating to convergence.
#pragma once

#include "model/interference_model.hpp"

namespace synpa::model {

struct InversionResult {
    CategoryVector st_i{};  ///< estimated isolated fractions of task i
    CategoryVector st_j{};
    double slowdown_i = 1.0;  ///< implied slowdowns at the solution
    double slowdown_j = 1.0;
    bool converged = false;
    int iterations = 0;
};

class ModelInverter {
public:
    struct Options {
        int max_iterations = 60;
        double tolerance = 1e-7;
        double damping = 0.7;  ///< new = damping*solved + (1-damping)*old
    };

    /// The model is copied (it is a dozen doubles): an inverter constructed
    /// from a temporary stays valid, which ASan caught the pointer-keeping
    /// original getting wrong.
    explicit ModelInverter(const InterferenceModel& model)
        : ModelInverter(model, Options()) {}
    ModelInverter(const InterferenceModel& model, Options opts)
        : model_(model), opts_(opts) {}

    /// Inverts the model for one co-running pair.  `smt_i` / `smt_j` are the
    /// observed per-cycle SMT fractions (each summing to ~1).  On
    /// non-convergence the raw SMT fractions are returned as the estimate
    /// (graceful degradation, flagged via `converged == false`).
    InversionResult invert(const CategoryVector& smt_i, const CategoryVector& smt_j) const;

private:
    InterferenceModel model_;
    Options opts_;
};

}  // namespace synpa::model
