#include "model/trainer.hpp"

#include <algorithm>
#include <mutex>
#include <stdexcept>

#include "apps/instance.hpp"
#include "apps/spec_suite.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "linalg/least_squares.hpp"
#include "uarch/chip.hpp"

namespace synpa::model {
namespace {

/// Characterizes the counter delta of one task over the last quantum.
CategoryBreakdown quantum_breakdown(const pmu::CounterBank& now, const pmu::CounterBank& prev,
                                    int dispatch_width) {
    return characterize(now.delta_since(prev), dispatch_width);
}

}  // namespace

std::array<double, kDesignColumns> design_row(const TrainingSample& sample,
                                              std::size_t category) noexcept {
    return {1.0, sample.st_self[category], sample.st_corunner[category],
            sample.st_self[category] * sample.st_corunner[category]};
}

IsolatedProfile::IsolatedProfile(std::string app_name, std::vector<Quantum> quanta)
    : app_name_(std::move(app_name)), quanta_(std::move(quanta)) {
    if (quanta_.empty()) throw std::invalid_argument("IsolatedProfile: no quanta");
}

std::uint64_t IsolatedProfile::total_instructions() const noexcept {
    return quanta_.back().insts_end;
}

std::uint64_t IsolatedProfile::total_cycles() const noexcept {
    return quanta_.back().cycles_end;
}

double IsolatedProfile::ipc() const noexcept {
    const auto cycles = total_cycles();
    return cycles == 0 ? 0.0
                       : static_cast<double>(total_instructions()) /
                             static_cast<double>(cycles);
}

std::array<double, kCategoryCount> IsolatedProfile::overall_fractions() const noexcept {
    std::array<double, kCategoryCount> sum{};
    for (const Quantum& q : quanta_)
        for (std::size_t c = 0; c < kCategoryCount; ++c) sum[c] += q.categories[c];
    const double cycles = static_cast<double>(total_cycles());
    if (cycles > 0)
        for (double& x : sum) x /= cycles;
    return sum;
}

bool IsolatedProfile::covers(std::uint64_t begin, std::uint64_t end) const noexcept {
    return begin < end && end <= total_instructions();
}

double IsolatedProfile::cumulative_cycles_at(std::uint64_t insts) const {
    // Piecewise-linear interpolation over quantum boundaries.
    std::uint64_t prev_insts = 0;
    double prev_cycles = 0.0;
    for (const Quantum& q : quanta_) {
        if (insts <= q.insts_end) {
            const double span = static_cast<double>(q.insts_end - prev_insts);
            const double frac =
                span <= 0.0 ? 1.0 : static_cast<double>(insts - prev_insts) / span;
            return prev_cycles + frac * (static_cast<double>(q.cycles_end) - prev_cycles);
        }
        prev_insts = q.insts_end;
        prev_cycles = static_cast<double>(q.cycles_end);
    }
    return static_cast<double>(total_cycles());
}

std::array<double, kCategoryCount> IsolatedProfile::cumulative_categories_at(
    std::uint64_t insts) const {
    std::array<double, kCategoryCount> acc{};
    std::uint64_t prev_insts = 0;
    for (const Quantum& q : quanta_) {
        if (insts <= q.insts_end) {
            const double span = static_cast<double>(q.insts_end - prev_insts);
            const double frac =
                span <= 0.0 ? 1.0 : static_cast<double>(insts - prev_insts) / span;
            for (std::size_t c = 0; c < kCategoryCount; ++c)
                acc[c] += frac * q.categories[c];
            return acc;
        }
        for (std::size_t c = 0; c < kCategoryCount; ++c) acc[c] += q.categories[c];
        prev_insts = q.insts_end;
    }
    return acc;
}

double IsolatedProfile::cycles_for(std::uint64_t begin, std::uint64_t end) const {
    if (!covers(begin, end)) throw std::out_of_range("IsolatedProfile::cycles_for: range");
    return cumulative_cycles_at(end) - cumulative_cycles_at(begin);
}

std::array<double, kCategoryCount> IsolatedProfile::categories_for(std::uint64_t begin,
                                                                   std::uint64_t end) const {
    if (!covers(begin, end))
        throw std::out_of_range("IsolatedProfile::categories_for: range");
    auto hi = cumulative_categories_at(end);
    const auto lo = cumulative_categories_at(begin);
    for (std::size_t c = 0; c < kCategoryCount; ++c) hi[c] -= lo[c];
    return hi;
}

IsolatedProfile profile_isolated(const apps::AppProfile& app, const uarch::SimConfig& cfg,
                                 std::uint64_t quanta, std::uint64_t seed) {
    uarch::SimConfig solo = cfg;
    solo.cores = 1;  // an isolated run needs one core; keeps profiling fast
    uarch::Chip chip(solo);
    apps::AppInstance task(/*id=*/1, app, seed);
    chip.bind(task, {.core = 0, .slot = 0});

    std::vector<IsolatedProfile::Quantum> samples;
    samples.reserve(quanta);
    pmu::CounterBank prev;
    for (std::uint64_t q = 0; q < quanta; ++q) {
        chip.run_quantum();
        const pmu::CounterBank& now = task.counters();
        const CategoryBreakdown b = quantum_breakdown(now, prev, solo.dispatch_width);
        prev = now;
        samples.push_back({.insts_end = task.insts_retired(),
                           .cycles_end = now.value(pmu::Event::kCpuCycles),
                           .categories = b.categories});
    }
    return IsolatedProfile(app.name, std::move(samples));
}

std::vector<TrainingSample> Trainer::collect_pair_samples(const apps::AppProfile& a,
                                                          const apps::AppProfile& b,
                                                          const IsolatedProfile& prof_a,
                                                          const IsolatedProfile& prof_b,
                                                          std::uint64_t seed_a,
                                                          std::uint64_t seed_b) const {
    uarch::SimConfig pair_cfg = cfg_;
    pair_cfg.cores = 1;
    // Pair training co-runs two threads on one core by construction, so the
    // training chip needs at least two SMT contexts even when the evaluation
    // chip is configured SMT-1 (a co-run interference model is width-
    // independent; the TX2 methodology trains in SMT-2 BIOS mode).
    pair_cfg.smt_ways = std::max(pair_cfg.smt_ways, 2);
    uarch::Chip chip(pair_cfg);
    // The instances use the same seeds as the profiling runs so their event
    // streams match the isolated reference (same work, different timing).
    apps::AppInstance ta(/*id=*/1, a, seed_a);
    apps::AppInstance tb(/*id=*/2, b, seed_b);
    chip.bind(ta, {.core = 0, .slot = 0});
    chip.bind(tb, {.core = 0, .slot = 1});

    std::vector<TrainingSample> out;
    pmu::CounterBank prev_a, prev_b;
    std::uint64_t insts_a = 0, insts_b = 0;
    for (std::uint64_t q = 0; q < opts_.pair_quanta; ++q) {
        chip.run_quantum();
        const pmu::CounterBank now_a = ta.counters();
        const pmu::CounterBank now_b = tb.counters();
        const CategoryBreakdown ba = quantum_breakdown(now_a, prev_a, cfg_.dispatch_width);
        const CategoryBreakdown bb = quantum_breakdown(now_b, prev_b, cfg_.dispatch_width);
        prev_a = now_a;
        prev_b = now_b;
        const std::uint64_t a0 = insts_a, b0 = insts_b;
        insts_a = ta.insts_retired();
        insts_b = tb.insts_retired();
        if (q < opts_.warmup_quanta) continue;
        if (!prof_a.covers(a0, insts_a) || !prof_b.covers(b0, insts_b)) continue;

        const double st_cycles_a = prof_a.cycles_for(a0, insts_a);
        const double st_cycles_b = prof_b.cycles_for(b0, insts_b);
        if (st_cycles_a <= 0.0 || st_cycles_b <= 0.0) continue;

        auto st_frac = [](std::array<double, kCategoryCount> cats, double cycles) {
            for (double& x : cats) x /= cycles;
            return cats;
        };
        const CategoryVector st_a = st_frac(prof_a.categories_for(a0, insts_a), st_cycles_a);
        const CategoryVector st_b = st_frac(prof_b.categories_for(b0, insts_b), st_cycles_b);

        // SMT categories per isolated cycle of the same work: the three
        // values sum to the quantum slowdown of that task.
        CategoryVector smt_a{}, smt_b{};
        for (std::size_t c = 0; c < kCategoryCount; ++c) {
            smt_a[c] = ba.categories[c] / st_cycles_a;
            smt_b[c] = bb.categories[c] / st_cycles_b;
        }
        out.push_back({.st_self = st_a, .st_corunner = st_b, .smt_per_st = smt_a});
        out.push_back({.st_self = st_b, .st_corunner = st_a, .smt_per_st = smt_b});
    }
    return out;
}

TrainingResult Trainer::fit(std::vector<TrainingSample> samples, const TrainerOptions& opts) {
    if (samples.size() < 8) throw std::runtime_error("Trainer::fit: too few samples");

    // Random subset, as in the paper ("a random subset of the execution
    // quanta was selected to build the model").
    if (opts.sample_fraction < 1.0) {
        common::Rng rng(opts.seed, 0xf17);
        std::vector<TrainingSample> kept;
        kept.reserve(samples.size());
        for (const TrainingSample& s : samples)
            if (rng.chance(opts.sample_fraction)) kept.push_back(s);
        if (kept.size() >= 8) samples = std::move(kept);
    }

    TrainingResult result;
    result.sample_count = samples.size();
    for (std::size_t c = 0; c < kCategoryCount; ++c) {
        linalg::Matrix design(samples.size(), kDesignColumns);
        std::vector<double> target(samples.size());
        for (std::size_t r = 0; r < samples.size(); ++r) {
            const TrainingSample& s = samples[r];
            const auto row = design_row(s, c);
            for (std::size_t k = 0; k < kDesignColumns; ++k) design(r, k) = row[k];
            target[r] = s.smt_per_st[c];
        }
        linalg::LeastSquaresResult fit;
        try {
            fit = linalg::least_squares(design, target);
        } catch (const std::runtime_error&) {
            // Near-collinear design (e.g. a category that is almost constant
            // across the suite): fall back to a lightly regularized fit.
            fit = linalg::ridge_least_squares(design, target, 1e-6);
        }
        CategoryCoefficients k{.alpha = fit.coefficients[0],
                               .beta = fit.coefficients[1],
                               .gamma = fit.coefficients[2],
                               .rho = fit.coefficients[3]};
        result.model.coefficients(static_cast<Category>(c)) = k;
        result.mse[c] = fit.mse;
        result.r_squared[c] = fit.r_squared;
    }
    return result;
}

TrainingResult Trainer::train(std::span<const std::string> app_names) const {
    std::vector<const apps::AppProfile*> train_apps;
    train_apps.reserve(app_names.size());
    for (const std::string& name : app_names) train_apps.push_back(&apps::find_app(name));

    // Phase 1: isolated profiles (parallel across applications).
    std::vector<IsolatedProfile> profiles(train_apps.size());
    common::parallel_for(
        train_apps.size(),
        [&](std::size_t i) {
            profiles[i] = profile_isolated(*train_apps[i], cfg_, opts_.isolated_quanta,
                                           common::derive_key(opts_.seed, 0x150, i));
        },
        opts_.threads);

    // Phase 2: all pairs in SMT (parallel across pairs).
    std::vector<std::pair<std::size_t, std::size_t>> pairs;
    for (std::size_t i = 0; i < train_apps.size(); ++i)
        for (std::size_t j = i; j < train_apps.size(); ++j) {
            if (i == j && !opts_.include_self_pairs) continue;
            pairs.emplace_back(i, j);
        }

    std::vector<TrainingSample> all_samples;
    std::mutex mutex;
    common::parallel_for(
        pairs.size(),
        [&](std::size_t p) {
            const auto [i, j] = pairs[p];
            auto samples =
                collect_pair_samples(*train_apps[i], *train_apps[j], profiles[i], profiles[j],
                                     common::derive_key(opts_.seed, 0x150, i),
                                     common::derive_key(opts_.seed, 0x150, j));
            const std::lock_guard lock(mutex);
            all_samples.insert(all_samples.end(), samples.begin(), samples.end());
        },
        opts_.threads);

    TrainingResult result = fit(std::move(all_samples), opts_);
    result.pair_runs = pairs.size();
    result.profiles = std::move(profiles);
    return result;
}

}  // namespace synpa::model
