// Offline model training (paper §IV-C).
//
// 1. Run each training application alone on a chip and record, per quantum,
//    its cumulative instructions, cycles, and the three category values:
//    the *isolated profile*.
// 2. Run every pair of training applications together on one SMT core.  For
//    each quantum and each task, the instruction interval it executed maps
//    back into the isolated profile ("the number of committed instructions
//    allows us to map the category values"), yielding:
//      * the isolated category fractions for exactly that work, and
//      * the SMT category cycle counts normalized by the isolated cycles of
//        that work (so the three values sum to the observed slowdown).
// 3. Fit Equation 1 per category with linear least squares on a random
//    subset of the aligned quanta.
//
// Training needs no oracle knowledge: it only reads the PMU, exactly like
// the paper's profiling campaign on the ThunderX2.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "apps/profile.hpp"
#include "model/categories.hpp"
#include "model/interference_model.hpp"
#include "uarch/sim_config.hpp"

namespace synpa::model {

/// Per-quantum record of an isolated run, with interpolating accessors used
/// to align SMT instruction intervals against isolated time.
class IsolatedProfile {
public:
    struct Quantum {
        std::uint64_t insts_end = 0;   ///< cumulative instructions
        std::uint64_t cycles_end = 0;  ///< cumulative cycles
        std::array<double, kCategoryCount> categories{};  ///< this quantum's cycles
    };

    IsolatedProfile() = default;
    IsolatedProfile(std::string app_name, std::vector<Quantum> quanta);

    const std::string& app_name() const noexcept { return app_name_; }
    const std::vector<Quantum>& quanta() const noexcept { return quanta_; }
    std::uint64_t total_instructions() const noexcept;
    std::uint64_t total_cycles() const noexcept;
    double ipc() const noexcept;

    /// Aggregate isolated category fractions over the whole profile.
    std::array<double, kCategoryCount> overall_fractions() const noexcept;

    /// True when [begin, end) instructions are covered by the profile.
    bool covers(std::uint64_t begin, std::uint64_t end) const noexcept;

    /// Isolated cycles needed for the instruction interval (interpolated).
    double cycles_for(std::uint64_t begin, std::uint64_t end) const;

    /// Isolated category cycle counts for the interval (interpolated).
    std::array<double, kCategoryCount> categories_for(std::uint64_t begin,
                                                      std::uint64_t end) const;

private:
    double cumulative_cycles_at(std::uint64_t insts) const;
    std::array<double, kCategoryCount> cumulative_categories_at(std::uint64_t insts) const;

    std::string app_name_;
    std::vector<Quantum> quanta_;
};

/// Runs `app` alone on a chip built from `cfg` for `quanta` quanta.
IsolatedProfile profile_isolated(const apps::AppProfile& app, const uarch::SimConfig& cfg,
                                 std::uint64_t quanta, std::uint64_t seed);

/// One aligned observation: everything Equation 1 relates.
struct TrainingSample {
    CategoryVector st_self{};      ///< isolated fractions of the target's work
    CategoryVector st_corunner{};  ///< isolated fractions of the co-runner's work
    CategoryVector smt_per_st{};   ///< SMT categories per isolated cycle (sum = slowdown)
};

/// Columns of the Equation-1 regression: intercept, C_self, C_corunner,
/// and the interaction term.
inline constexpr std::size_t kDesignColumns = 4;

/// The design-matrix row of one sample for one category:
/// {1, C_self, C_corunner, C_self * C_corunner}.  Single definition shared
/// by the offline Trainer's batch fit and online::IncrementalTrainer's
/// rank-one updates, so the two paths factor the *same* regression and the
/// incremental-vs-offline equivalence can be pinned bit-exactly.
std::array<double, kDesignColumns> design_row(const TrainingSample& sample,
                                              std::size_t category) noexcept;

struct TrainerOptions {
    std::uint64_t isolated_quanta = 160;  ///< isolated profiling length
    std::uint64_t pair_quanta = 48;       ///< length of each SMT pair run
    std::uint64_t warmup_quanta = 2;      ///< leading quanta dropped from pair runs
    double sample_fraction = 0.8;         ///< random subset used for the fit
    std::uint64_t seed = 1;
    std::size_t threads = 0;              ///< worker threads (0 = hardware)
    bool include_self_pairs = true;       ///< also train on (A, A) pairs
};

struct TrainingResult {
    InterferenceModel model;
    std::array<double, kCategoryCount> mse{};        ///< per-category fit MSE
    std::array<double, kCategoryCount> r_squared{};  ///< per-category fit R^2
    std::size_t sample_count = 0;
    std::size_t pair_runs = 0;
    std::vector<IsolatedProfile> profiles;  ///< kept for evaluation reuse
};

class Trainer {
public:
    Trainer(const uarch::SimConfig& cfg, TrainerOptions opts = {})
        : cfg_(cfg), opts_(opts) {}

    /// Collects aligned samples for one SMT pair run of (a, b); two samples
    /// per usable quantum (each task as target once).  The seeds must match
    /// the ones used to record the isolated profiles so the instruction
    /// alignment maps onto identical phase sequences.  Exposed for tests
    /// and for the ablation benches that refit variant models.
    std::vector<TrainingSample> collect_pair_samples(const apps::AppProfile& a,
                                                     const apps::AppProfile& b,
                                                     const IsolatedProfile& prof_a,
                                                     const IsolatedProfile& prof_b,
                                                     std::uint64_t seed_a,
                                                     std::uint64_t seed_b) const;

    /// Full pipeline over a training set of application names.
    TrainingResult train(std::span<const std::string> app_names) const;

    /// Fits Equation 1 to already-collected samples (used by ablations).
    static TrainingResult fit(std::vector<TrainingSample> samples,
                              const TrainerOptions& opts);

private:
    uarch::SimConfig cfg_;
    TrainerOptions opts_;
};

}  // namespace synpa::model
