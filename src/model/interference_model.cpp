#include "model/interference_model.hpp"

#include <sstream>

namespace synpa::model {

CategoryVector InterferenceModel::predict(const CategoryVector& st_i,
                                          const CategoryVector& st_j) const noexcept {
    CategoryVector out{};
    for (std::size_t c = 0; c < kCategoryCount; ++c)
        out[c] = coeffs_[c].predict(st_i[c], st_j[c]);
    return out;
}

double InterferenceModel::predict_slowdown(const CategoryVector& st_i,
                                           const CategoryVector& st_j) const noexcept {
    const CategoryVector p = predict(st_i, st_j);
    return p[0] + p[1] + p[2];
}

InterferenceModel InterferenceModel::paper_table4() {
    // Paper Table IV: coefficients trained on the ThunderX2.
    std::array<CategoryCoefficients, kCategoryCount> coeffs{};
    coeffs[static_cast<std::size_t>(Category::kFullDispatch)] =
        {.alpha = 0.0072, .beta = 0.9060, .gamma = 0.0044, .rho = 0.0314};
    coeffs[static_cast<std::size_t>(Category::kFrontendStall)] =
        {.alpha = 0.2376, .beta = 1.4111, .gamma = 0.0, .rho = 0.0};
    coeffs[static_cast<std::size_t>(Category::kBackendStall)] =
        {.alpha = 0.2069, .beta = 0.3431, .gamma = 1.4391, .rho = 0.0};
    return InterferenceModel(coeffs);
}

FlatModel::FlatModel(const InterferenceModel& model) {
    for (std::size_t c = 0; c < kCategoryCount; ++c) {
        const CategoryCoefficients& k = model.coefficients(static_cast<Category>(c));
        alpha_[c] = k.alpha;
        beta_[c] = k.beta;
        gamma_[c] = k.gamma;
        rho_[c] = k.rho;
    }
}

double FlatModel::predict_slowdown(const CategoryVector& st_i,
                                   const CategoryVector& st_j) const noexcept {
    // Mirror of InterferenceModel::predict + the p[0]+p[1]+p[2] fold: the
    // per-category results land in a temporary first, so the summation
    // order (and therefore every rounding step) matches bit for bit.
    CategoryVector p{};
    for (std::size_t c = 0; c < kCategoryCount; ++c)
        p[c] = predict_category(c, st_i[c], st_j[c]);
    return p[0] + p[1] + p[2];
}

double FlatModel::group_slowdown(std::span<const CategoryVector> members) const noexcept {
    double total = 0.0;
    for (std::size_t i = 0; i < members.size(); ++i) {
        CategoryVector pressure{};
        for (std::size_t j = 0; j < members.size(); ++j) {
            if (j == i) continue;
            for (std::size_t c = 0; c < kCategoryCount; ++c) pressure[c] += members[j][c];
        }
        total += predict_slowdown(members[i], pressure);
    }
    return total;
}

void FlatModel::member_slowdowns(std::span<const CategoryVector> members,
                                 std::span<double> out) const noexcept {
    for (std::size_t i = 0; i < members.size(); ++i) {
        CategoryVector pressure{};
        for (std::size_t j = 0; j < members.size(); ++j) {
            if (j == i) continue;
            for (std::size_t c = 0; c < kCategoryCount; ++c) pressure[c] += members[j][c];
        }
        out[i] = predict_slowdown(members[i], pressure);
    }
}

double predict_group_slowdown(const InterferenceModel& model,
                              std::span<const CategoryVector> members) {
    double total = 0.0;
    for (std::size_t i = 0; i < members.size(); ++i) {
        CategoryVector pressure{};
        for (std::size_t j = 0; j < members.size(); ++j) {
            if (j == i) continue;
            for (std::size_t c = 0; c < kCategoryCount; ++c) pressure[c] += members[j][c];
        }
        total += model.predict_slowdown(members[i], pressure);
    }
    return total;
}

std::vector<double> predict_member_slowdowns(const InterferenceModel& model,
                                             std::span<const CategoryVector> members) {
    std::vector<double> out;
    out.reserve(members.size());
    for (std::size_t i = 0; i < members.size(); ++i) {
        CategoryVector pressure{};
        for (std::size_t j = 0; j < members.size(); ++j) {
            if (j == i) continue;
            for (std::size_t c = 0; c < kCategoryCount; ++c) pressure[c] += members[j][c];
        }
        out.push_back(model.predict_slowdown(members[i], pressure));
    }
    return out;
}

std::string InterferenceModel::to_string() const {
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(4);
    for (std::size_t c = 0; c < kCategoryCount; ++c) {
        const CategoryCoefficients& k = coeffs_[c];
        os << kCategoryNames[c] << ": alpha=" << k.alpha << " beta=" << k.beta
           << " gamma=" << k.gamma << " rho=" << k.rho << '\n';
    }
    return os.str();
}

}  // namespace synpa::model
