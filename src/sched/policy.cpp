#include "sched/policy.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace synpa::sched {

CoreGroup::CoreGroup(std::initializer_list<int> ids) {
    if (ids.size() > static_cast<std::size_t>(uarch::kMaxSmtWays))
        throw std::length_error("CoreGroup: more ids than kMaxSmtWays slots");
    std::size_t s = 0;
    for (int id : ids) tasks[s++] = id;
}

void CoreGroup::add(int task_id) {
    for (int s = 0; s < uarch::kMaxSmtWays; ++s)
        if (tasks[static_cast<std::size_t>(s)] == kNoTask) {
            tasks[static_cast<std::size_t>(s)] = task_id;
            return;
        }
    throw std::length_error("CoreGroup::add: group is full");
}

CoreAllocation AllocationPolicy::initial_allocation(std::span<const int> task_ids,
                                                    int smt_ways) {
    if (task_ids.empty())
        throw std::invalid_argument("initial_allocation: no tasks");
    if (smt_ways < 1 || smt_ways > uarch::kMaxSmtWays)
        throw std::invalid_argument("initial_allocation: bad smt_ways");
    // Spread first, then double up: with C = ceil(N/W) cores in play, task k
    // goes to core k mod C, slot k div C.  Even N at W = 2 reproduces the
    // paper's Linux layout exactly; the unmatched remainder tasks get the
    // trailing slots of their own cores.
    const std::size_t n = task_ids.size();
    const auto w = static_cast<std::size_t>(smt_ways);
    const std::size_t cores = (n + w - 1) / w;
    CoreAllocation alloc(cores);
    for (std::size_t k = 0; k < n; ++k)
        alloc[k % cores].tasks[k / cores] = task_ids[k];
    return alloc;
}

CoreAllocation AllocationPolicy::reallocate(std::span<const TaskObservation> observations) {
    if (observations.empty()) return {};
    return current_allocation(observations, observations.front().total_cores);
}

void AllocationPolicy::on_task_replaced(int, int) {}

void AllocationPolicy::on_task_finished(int) {}

void AllocationPolicy::on_task_preempted(int task_id) { on_task_finished(task_id); }

CoreAllocation current_allocation(std::span<const TaskObservation> observations,
                                  int total_cores) {
    if (total_cores <= 0)
        throw std::invalid_argument("current_allocation: total_cores must be positive");
    CoreAllocation alloc(static_cast<std::size_t>(total_cores));
    for (const TaskObservation& o : observations) {
        if (o.core < 0 || o.core >= total_cores)
            throw std::invalid_argument("current_allocation: core out of range");
        alloc[static_cast<std::size_t>(o.core)].add(o.task_id);
    }
    return alloc;
}

int observed_smt_ways(std::span<const TaskObservation> observations) noexcept {
    return observations.empty() ? 2 : observations.front().smt_ways;
}

std::size_t observed_total_cores(std::span<const TaskObservation> observations) {
    const int total = observations.empty() ? 0 : observations.front().total_cores;
    if (total <= 0)
        throw std::invalid_argument("observed_total_cores: total_cores must be positive");
    return static_cast<std::size_t>(total);
}

int observed_chip_count(std::span<const TaskObservation> observations) noexcept {
    if (observations.empty()) return 1;
    return observations.front().num_chips > 1 ? observations.front().num_chips : 1;
}

}  // namespace synpa::sched
