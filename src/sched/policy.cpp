#include "sched/policy.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace synpa::sched {

PairAllocation AllocationPolicy::initial_allocation(std::span<const int> task_ids) {
    if (task_ids.empty())
        throw std::invalid_argument("initial_allocation: no tasks");
    // Spread first, then double up: task k pairs with task k + ceil(N/2).
    // Even N reproduces the paper's Linux layout exactly; odd N leaves the
    // middle task on a core of its own.
    const std::size_t half = (task_ids.size() + 1) / 2;
    PairAllocation alloc;
    alloc.reserve(half);
    for (std::size_t k = 0; k < half; ++k)
        alloc.emplace_back(task_ids[k],
                           k + half < task_ids.size() ? task_ids[k + half] : kNoTask);
    return alloc;
}

PairAllocation AllocationPolicy::reallocate(std::span<const TaskObservation> observations) {
    const int cores = observations.empty() ? -1 : observations.front().total_cores;
    return current_allocation(observations, cores);
}

void AllocationPolicy::on_task_replaced(int, int) {}

void AllocationPolicy::on_task_finished(int) {}

PairAllocation current_allocation(std::span<const TaskObservation> observations,
                                  int total_cores) {
    std::map<int, std::pair<int, int>> by_core;
    for (const TaskObservation& o : observations) {
        auto [it, inserted] = by_core.try_emplace(o.core, o.task_id, kNoTask);
        if (!inserted) it->second.second = o.task_id;
    }
    if (total_cores >= 0) {
        PairAllocation alloc(static_cast<std::size_t>(total_cores), {kNoTask, kNoTask});
        for (const auto& [core, pair] : by_core) {
            if (core < 0 || core >= total_cores)
                throw std::invalid_argument("current_allocation: core out of range");
            alloc[static_cast<std::size_t>(core)] = pair;
        }
        return alloc;
    }
    PairAllocation alloc;
    alloc.reserve(by_core.size());
    for (const auto& [core, pair] : by_core) alloc.push_back(pair);
    return alloc;
}

}  // namespace synpa::sched
