#include "sched/policy.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace synpa::sched {

PairAllocation AllocationPolicy::initial_allocation(std::span<const int> task_ids) {
    if (task_ids.size() % 2 != 0)
        throw std::invalid_argument("initial_allocation: odd task count");
    const std::size_t half = task_ids.size() / 2;
    PairAllocation alloc;
    alloc.reserve(half);
    for (std::size_t k = 0; k < half; ++k)
        alloc.emplace_back(task_ids[k], task_ids[k + half]);
    return alloc;
}

PairAllocation AllocationPolicy::reallocate(std::span<const TaskObservation> observations) {
    return current_allocation(observations);
}

void AllocationPolicy::on_task_replaced(int, int) {}

PairAllocation current_allocation(std::span<const TaskObservation> observations) {
    std::map<int, std::pair<int, int>> by_core;
    for (const TaskObservation& o : observations) {
        auto [it, inserted] = by_core.try_emplace(o.core, o.task_id, -1);
        if (!inserted) it->second.second = o.task_id;
    }
    PairAllocation alloc;
    alloc.reserve(by_core.size());
    for (const auto& [core, pair] : by_core) alloc.push_back(pair);
    return alloc;
}

}  // namespace synpa::sched
