// The user-level experimental manager (paper §V-A / §V-B).
//
// Owns the workload run: creates one task per workload slot, performs the
// initial allocation, then loops quanta — run, read counters per task,
// characterize, let the policy re-pair, migrate.  Implements the paper's
// measurement methodology: each original task carries a target instruction
// count (from isolated profiling); when it reaches the target its finish
// time and IPC are recorded and a fresh instance of the same application is
// launched in its slot so the machine load stays constant; the run ends
// when the slowest *original* task finishes.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "apps/instance.hpp"
#include "model/categories.hpp"
#include "sched/policy.hpp"
#include "sched/quantum_loop.hpp"
#include "uarch/platform.hpp"

namespace synpa::sched {

/// One workload slot: which application, its behaviour seed, and the
/// instruction target that defines its finish line.
struct TaskSpec {
    std::string app_name;
    std::uint64_t seed = 1;
    std::uint64_t target_insts = 0;
    double isolated_ipc = 0.0;  ///< from the target-profiling run (for metrics)
};

/// Per-quantum trace row for one workload slot (drives Figures 6/7 and
/// Table V).
struct QuantumTrace {
    std::uint64_t quantum = 0;
    std::array<double, model::kCategoryCount> fractions{};  ///< own characterization
    int corunner_slot = -1;             ///< workload position of the co-runner
    double ipc = 0.0;
    bool frontend_dominant = false;     ///< FE fraction > BE fraction this quantum
};

/// Final record for one original task.
struct TaskOutcome {
    std::string app_name;
    int slot_index = -1;
    std::uint64_t target_insts = 0;
    double finish_quantum = 0.0;  ///< fractional quantum where the target was hit
    double ipc_smt = 0.0;         ///< target instructions / cycles to finish
    double isolated_ipc = 0.0;
    double individual_speedup = 0.0;  ///< ipc_smt / isolated_ipc
    int final_core = -1;  ///< global core the task finished on

    /// Aggregate category fractions over the task's run (Figure 6 bars).
    std::array<double, model::kCategoryCount> mean_fractions{};
};

struct RunResult {
    std::string policy_name;
    double turnaround_quanta = 0.0;  ///< slowest original task's finish time
    std::uint64_t quanta_executed = 0;
    std::uint64_t migrations = 0;  ///< core changes applied across the run
    std::uint64_t cross_chip_migrations = 0;  ///< subset that changed chips
    std::vector<TaskOutcome> outcomes;              ///< one per workload slot
    std::vector<std::vector<QuantumTrace>> traces;  ///< per slot, per quantum
    bool completed = true;  ///< false if the safety quantum cap was hit
};

class ThreadManager {
public:
    struct Options {
        std::uint64_t max_quanta = 20'000;  ///< safety cap
        bool record_traces = true;
        /// Flight recorder (not owned; may be null or disabled).  The
        /// manager stamps quantum boundaries and phase wall-clock, emits
        /// admission/retirement/migration events, and attaches the tracer
        /// to the platform and policy for their own event sites.
        obs::Tracer* tracer = nullptr;
        /// Invariant hook for the property suite: called after every
        /// quantum's rebind, while the placement is live.
        std::function<void(const uarch::Platform&)> on_quantum{};
    };

    /// The platform must have exactly specs.size() hardware threads free
    /// (specs.size() == platform.hw_contexts()).
    ThreadManager(uarch::Platform& platform, AllocationPolicy& policy,
                  std::span<const TaskSpec> specs)
        : ThreadManager(platform, policy, specs, Options()) {}
    ThreadManager(uarch::Platform& platform, AllocationPolicy& policy,
                  std::span<const TaskSpec> specs, Options opts);

    /// Executes the workload to completion; returns the measured result.
    RunResult run();

private:
    struct Slot {
        TaskSpec spec;
        std::unique_ptr<apps::AppInstance> task;
        std::uint64_t relaunches = 0;
        pmu::CounterBank prev_bank;  ///< snapshot at the last quantum boundary
        std::uint64_t insts_at_last_quantum = 0;
        bool original_finished = false;
        std::optional<TaskOutcome> outcome;
        // Accumulated categories for mean_fractions of the original task.
        std::array<double, model::kCategoryCount> category_cycles{};
        double cycles_observed = 0.0;
    };

    void apply_allocation(const CoreAllocation& alloc);

    uarch::Platform& platform_;
    AllocationPolicy& policy_;
    Options opts_;
    obs::Tracer* tracer_ = nullptr;  ///< opts_.tracer when enabled, else null
    std::vector<Slot> slots_;
    int next_task_id_ = 1;
    BindStats bind_stats_;
};

}  // namespace synpa::sched
