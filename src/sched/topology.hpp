// Topology-aware allocation helpers shared by the informed policies
// (SynpaPolicy, OraclePolicy).
//
// On a multi-chip platform the grouping problem decomposes: co-run
// interference is a *within-core* phenomenon, so once every task is
// assigned a chip, each chip's grouping is the familiar single-chip
// problem.  What is new is the chip assignment itself — and unlike a
// regroup within a chip, moving a task across chips is not free (the
// platform charges a multi-quantum cold-cache window, see
// uarch/platform.hpp).  The balancing pass here therefore only proposes a
// cross-chip move when the *predicted* slowdown benefit exceeds a
// configured migration-cost threshold, per the follow-up allocation-policy
// work (arXiv:2507.00855) and AMTHA's communication-penalty framing.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "sched/policy.hpp"

namespace synpa::sched {

/// Shape of the platform as seen through a quantum's observations.
struct TopologyView {
    int chips = 1;
    int cores_per_chip = 0;
    int smt_ways = 2;

    int capacity_per_chip() const noexcept { return cores_per_chip * smt_ways; }
};

/// Derives the topology from a non-empty observation span; throws
/// std::invalid_argument when the driver left total_cores unpopulated or
/// the core count does not divide evenly across the chips.
TopologyView observed_topology(std::span<const TaskObservation> observations);

/// Predicted slowdown of task (by observation index) running alone.
using SoloCost = std::function<double(std::size_t)>;
/// Predicted combined slowdown of two tasks (by observation index)
/// sharing a core.
using PairCost = std::function<double(std::size_t, std::size_t)>;

/// Assigns every observation a target chip: tasks start on their current
/// chip, then a balancing pass moves tasks from the most- to the
/// least-loaded chip while (a) the imbalance is at least two tasks (a
/// one-task gap only relocates the imbalance) and (b) the best candidate's
/// predicted benefit — its cheapest co-run cost on the crowded chip minus
/// its predicted cost on the target chip (solo when a core frees up there,
/// cheapest pair otherwise) — exceeds `migration_penalty`.  Deterministic:
/// ties resolve to the lowest chip / observation index.  Returns the
/// target chip per observation index.
std::vector<int> balance_across_chips(std::span<const TaskObservation> observations,
                                      const TopologyView& topo, const SoloCost& solo_cost,
                                      const PairCost& pair_cost, double migration_penalty);

/// Splits observation indices by target chip (entry c = indices assigned
/// to chip c, in observation order).
std::vector<std::vector<std::size_t>> indices_by_chip(std::span<const int> target_chips,
                                                      int chips);

/// Copies the given observations localizing their core ids to the chip
/// (core - chip * cores_per_chip), so single-chip solvers and
/// incumbent-aware placement work unchanged on the subset.
std::vector<TaskObservation> localize_observations(
    std::span<const TaskObservation> observations, std::span<const std::size_t> indices,
    int chip, int cores_per_chip);

/// Stitches per-chip allocations (each cores_per_chip entries, local core
/// order) into one platform-wide allocation in chip-major global core
/// order.  Throws std::invalid_argument if a chip allocation has the wrong
/// size.
CoreAllocation concat_chip_allocations(std::span<const CoreAllocation> per_chip,
                                       int cores_per_chip);

/// Default cross-chip migration-penalty gate (in predicted-slowdown
/// units), shared by every topology-aware policy so the knobs cannot
/// silently drift apart.
inline constexpr double kDefaultCrossChipPenalty = 0.15;

/// Solves one chip's (localized) sub-problem.  `chip` is the chip ordinal
/// (0-based, ascending invocation order — stable across quanta, so
/// policies can keep per-chip incremental state such as solve memos);
/// `local` is the chip's observation subset with core ids localized (see
/// localize_observations); `indices` are the corresponding indices into
/// the original observation span, so policies can subset side arrays
/// (e.g. the oracle's truth vectors) in step.  May return fewer than
/// cores_per_chip entries; the driver pads with idle cores.
using ChipAllocator = std::function<CoreAllocation(
    int chip, std::span<const TaskObservation> local,
    std::span<const std::size_t> indices)>;

/// The whole multi-chip orchestration the informed policies share: run the
/// balancing pass, split the observations by target chip, localize each
/// subset, invoke `allocate` per chip, and stitch the results into one
/// platform-wide allocation.
CoreAllocation allocate_across_chips(std::span<const TaskObservation> observations,
                                     const TopologyView& topo, const SoloCost& solo_cost,
                                     const PairCost& pair_cost, double migration_penalty,
                                     const ChipAllocator& allocate);

}  // namespace synpa::sched
