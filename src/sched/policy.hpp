// Thread-to-core allocation policy interface.
//
// The experimental manager (paper §V-A) drives execution in quanta: after
// each quantum it reads every task's counters, characterizes them, and asks
// the policy for next quantum's pairing.  Policies see exactly what a
// user-level manager on the ThunderX2 sees — counter deltas and placements —
// with one exception: TaskObservation carries an instance pointer that only
// the Oracle baseline is allowed to dereference (it is *not* information a
// real policy could obtain, and SYNPA never touches it).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "apps/instance.hpp"
#include "model/categories.hpp"
#include "pmu/counters.hpp"

namespace synpa::sched {

/// Sentinel for an empty SMT slot in a PairAllocation entry.
inline constexpr int kNoTask = -1;

/// What the manager hands the policy about one task after a quantum.
struct TaskObservation {
    int task_id = -1;
    int slot_index = -1;  ///< stable workload position 0..N-1 (paper's (04) etc.)
    std::string app_name;
    int core = -1;              ///< core it ran on during the quantum
    int corunner_task_id = -1;  ///< task sharing the core (-1 when alone)
    int total_cores = -1;       ///< chip core count (-1 when the driver predates it)
    pmu::CounterBank delta;     ///< counter deltas over the quantum
    model::CategoryBreakdown breakdown;  ///< three-step characterization of delta

    /// Oracle-only escape hatch (see file comment).
    const apps::AppInstance* instance = nullptr;
};

/// One entry per core, in core order: allocation[c] = {task_a, task_b}.
///
/// Partial-allocation contract (dynamic scenarios): an entry may be
/// {task, kNoTask} — the core runs a single thread — or {kNoTask, kNoTask}
/// — the core idles.  {kNoTask, task} is malformed (the occupied slot is
/// always first).  Every live task must appear exactly once across the
/// allocation.  The classic methodology driver (ThreadManager) rejects
/// partial entries because the paper's closed system keeps every core at
/// two threads; scenario::ScenarioRunner accepts them, so policies that
/// want to run under open-system load must cope with observation sets
/// where N != 2 * total_cores (N odd included) and singleton observations
/// (corunner_task_id == -1).  All in-tree policies do.
using PairAllocation = std::vector<std::pair<int, int>>;

class AllocationPolicy {
public:
    virtual ~AllocationPolicy() = default;

    virtual std::string name() const = 0;

    /// Initial placement, before any measurement exists.  `task_ids` is in
    /// arrival order; the default reproduces the Linux assignment the paper
    /// observes: task k pairs with task k + ceil(N/2) on core k, which
    /// spreads tasks across cores before doubling up.  For odd N the middle
    /// task runs alone ({task, kNoTask}); the result has ceil(N/2) entries.
    virtual PairAllocation initial_allocation(std::span<const int> task_ids);

    /// Called after every quantum; returns next quantum's pairing.  The
    /// default keeps the current placement (observations carry it).
    virtual PairAllocation reallocate(std::span<const TaskObservation> observations);

    /// A finished task was replaced by a fresh instance of the same
    /// application in the same hardware slot (classic methodology mode).
    virtual void on_task_replaced(int old_task_id, int new_task_id);

    /// A task left the system for good (open-system retirement).  Policies
    /// holding per-task state should drop it; the id is never reused within
    /// a run.
    virtual void on_task_finished(int task_id);
};

/// Reconstructs the current pairing from a set of observations (helper
/// shared by the keep-current default and several policies).  When
/// `total_cores` is >= 0 the result is core-aligned: entry c describes core
/// c, with {kNoTask, kNoTask} for idle cores — re-applying it never
/// migrates anything.  With the default -1 the (legacy) result lists only
/// occupied cores, in core order, which coincides with the core-aligned
/// form exactly when every core is occupied.
PairAllocation current_allocation(std::span<const TaskObservation> observations,
                                  int total_cores = -1);

}  // namespace synpa::sched
