// Thread-to-core allocation policy interface.
//
// The experimental manager (paper §V-A) drives execution in quanta: after
// each quantum it reads every task's counters, characterizes them, and asks
// the policy for next quantum's pairing.  Policies see exactly what a
// user-level manager on the ThunderX2 sees — counter deltas and placements —
// with one exception: TaskObservation carries an instance pointer that only
// the Oracle baseline is allowed to dereference (it is *not* information a
// real policy could obtain, and SYNPA never touches it).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "apps/instance.hpp"
#include "model/categories.hpp"
#include "pmu/counters.hpp"

namespace synpa::sched {

/// What the manager hands the policy about one task after a quantum.
struct TaskObservation {
    int task_id = -1;
    int slot_index = -1;  ///< stable workload position 0..N-1 (paper's (04) etc.)
    std::string app_name;
    int core = -1;              ///< core it ran on during the quantum
    int corunner_task_id = -1;  ///< task sharing the core (-1 when alone)
    pmu::CounterBank delta;     ///< counter deltas over the quantum
    model::CategoryBreakdown breakdown;  ///< three-step characterization of delta

    /// Oracle-only escape hatch (see file comment).
    const apps::AppInstance* instance = nullptr;
};

/// One pair per core, in core order: allocation[c] = {task_a, task_b}.
using PairAllocation = std::vector<std::pair<int, int>>;

class AllocationPolicy {
public:
    virtual ~AllocationPolicy() = default;

    virtual std::string name() const = 0;

    /// Initial placement, before any measurement exists.  `task_ids` is in
    /// arrival order; the default reproduces the Linux assignment the paper
    /// observes: task k pairs with task k + N/2 on core k.
    virtual PairAllocation initial_allocation(std::span<const int> task_ids);

    /// Called after every quantum; returns next quantum's pairing.  The
    /// default keeps the current placement (observations carry it).
    virtual PairAllocation reallocate(std::span<const TaskObservation> observations);

    /// A finished task was replaced by a fresh instance of the same
    /// application in the same hardware slot.
    virtual void on_task_replaced(int old_task_id, int new_task_id);
};

/// Reconstructs the current pairing from a set of observations (helper
/// shared by the keep-current default and several policies).
PairAllocation current_allocation(std::span<const TaskObservation> observations);

}  // namespace synpa::sched
