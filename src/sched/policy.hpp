// Thread-to-core allocation policy interface.
//
// The experimental manager (paper §V-A) drives execution in quanta: after
// each quantum it reads every task's counters, characterizes them, and asks
// the policy for next quantum's grouping.  Policies see exactly what a
// user-level manager on the ThunderX2 sees — counter deltas and placements —
// with one exception: TaskObservation carries an instance pointer that only
// the Oracle baseline is allowed to dereference (it is *not* information a
// real policy could obtain, and SYNPA never touches it).
//
// SMT width is a *runtime* property of the chip (the TX2 BIOS configures
// SMT-1/2/4), not a property of the types: a CoreAllocation assigns each
// core a CoreGroup of up to smt_ways tasks, and the same policies drive
// every width.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "apps/instance.hpp"
#include "model/categories.hpp"
#include "pmu/counters.hpp"
#include "uarch/sim_config.hpp"

namespace synpa::obs {
class Tracer;
}  // namespace synpa::obs

namespace synpa::sched {

/// Sentinel for an empty SMT slot in a CoreGroup.
inline constexpr int kNoTask = -1;

/// The tasks co-scheduled on one SMT core: up to uarch::kMaxSmtWays task
/// ids, occupied slots first, kNoTask-padded.  How many slots are *legal*
/// is the chip's runtime smt_ways — bind_allocation rejects groups that
/// overflow it.  {kNoTask, ...} is an idle core; {task, kNoTask, ...} a
/// core running a single thread (the partial-allocation contract of the
/// open-system driver, generalized from the old {task, kNoTask} pairs).
struct CoreGroup {
    // The initializer must name one kNoTask per slot: value-initialized
    // extras would read as task id 0.
    static_assert(uarch::kMaxSmtWays == 4, "update CoreGroup's default initializer");
    std::array<int, uarch::kMaxSmtWays> tasks{kNoTask, kNoTask, kNoTask, kNoTask};

    constexpr CoreGroup() = default;
    /// Builds a group from the given ids in slot order (rest kNoTask).
    CoreGroup(std::initializer_list<int> ids);

    /// Number of occupied slots (valid groups keep them in front).
    int occupancy() const noexcept {
        int n = 0;
        while (n < uarch::kMaxSmtWays && tasks[static_cast<std::size_t>(n)] != kNoTask) ++n;
        return n;
    }
    bool empty() const noexcept { return tasks[0] == kNoTask; }
    bool contains(int task_id) const noexcept {
        for (int t : tasks)
            if (t == task_id) return task_id != kNoTask;
        return false;
    }
    /// Appends a task in the first free slot; throws std::length_error when
    /// all kMaxSmtWays slots are taken.
    void add(int task_id);

    /// The occupied prefix as a span (occupied-slots-first contract).
    std::span<const int> members() const noexcept {
        return {tasks.data(), static_cast<std::size_t>(occupancy())};
    }

    int operator[](std::size_t slot) const { return tasks.at(slot); }
    friend bool operator==(const CoreGroup&, const CoreGroup&) = default;
};

/// One entry per *global* core (chip-major: chip c owns cores
/// [c*cores_per_chip, (c+1)*cores_per_chip)), in core order:
/// allocation[g] = the group running on global core g.  Every live task
/// must appear exactly once across the allocation.
///
/// (The PR-3 `PairAllocation` alias and its from_pairs/to_pairs converters
/// completed their one-release deprecation window and are gone; spell
/// allocations as CoreAllocation directly.)
using CoreAllocation = std::vector<CoreGroup>;

/// What the manager hands the policy about one task after a quantum.
struct TaskObservation {
    int task_id = -1;
    int slot_index = -1;  ///< stable workload position 0..N-1 (paper's (04) etc.)
    std::string app_name;
    int core = -1;              ///< *global* core it ran on during the quantum
    int chip = 0;               ///< chip owning that core (core / cores-per-chip)
    int corunner_task_id = -1;  ///< first task sharing the core (-1 when alone)
    std::vector<int> corunner_task_ids;  ///< every task sharing the core, slot order
    int smt_ways = 2;           ///< the platform's runtime SMT width
    int num_chips = 1;          ///< chips in the platform
    int total_cores = 0;        ///< platform-wide core count; always populated
    pmu::CounterBank delta;     ///< counter deltas over the quantum
    model::CategoryBreakdown breakdown;  ///< three-step characterization of delta

    /// Oracle-only escape hatch (see file comment).
    const apps::AppInstance* instance = nullptr;
};

class AllocationPolicy {
public:
    virtual ~AllocationPolicy() = default;

    virtual std::string name() const = 0;

    /// Initial placement, before any measurement exists.  `task_ids` is in
    /// arrival order; the default reproduces the Linux assignment the paper
    /// observes, generalized to any width: tasks spread across ceil(N/W)
    /// cores before doubling up, so task k lands on core k mod C, slot
    /// k div C (C = ceil(N / smt_ways)).  For W = 2 that is the paper's
    /// "task k pairs with task k + ceil(N/2) on core k" layout exactly.
    virtual CoreAllocation initial_allocation(std::span<const int> task_ids,
                                              int smt_ways = 2);

    /// Called after every quantum; returns next quantum's grouping.  The
    /// default keeps the current placement (observations carry it).
    virtual CoreAllocation reallocate(std::span<const TaskObservation> observations);

    /// A finished task was replaced by a fresh instance of the same
    /// application in the same hardware slot (classic methodology mode).
    virtual void on_task_replaced(int old_task_id, int new_task_id);

    /// A task left the system for good (open-system retirement).  Policies
    /// holding per-task state should drop it; the id is never reused within
    /// a run.
    virtual void on_task_finished(int task_id);

    /// A task was preempted off this policy's node (fleet priority
    /// preemption) and re-queued; it may later be re-admitted *anywhere* in
    /// the fleet under the same id.  From the node-local policy's view the
    /// task is gone — the default forwards to on_task_finished so existing
    /// policies drop their per-task state — but policies may distinguish the
    /// two (e.g. to keep a behaviour estimate warm for a possible return).
    virtual void on_task_preempted(int task_id);

    /// Observability hook: the driver attaches its flight recorder before
    /// the run so instrumented policies (SYNPA, the online wrapper) can emit
    /// allocation/alarm/refit events.  The tracer outlives the run; nullptr
    /// detaches.  The default ignores it — tracing never changes decisions.
    virtual void set_tracer(obs::Tracer* tracer) { (void)tracer; }
};

/// Optional side-interface for policies that adapt online — detecting task
/// phase changes from PMU deltas and folding fresh observations back into
/// their interference model.  Drivers discover it via dynamic_cast and
/// report the counters in their results (the scenario CSV's `adaptive`
/// column); policies without it are "frozen-model" by definition.
class OnlinePolicy {
public:
    virtual ~OnlinePolicy() = default;
    /// Phase-change alarms raised so far.
    virtual std::uint64_t phase_changes() const = 0;
    /// Incremental model refits folded into the running policy so far.
    virtual std::uint64_t model_refits() const = 0;
    /// Online training samples absorbed so far.
    virtual std::uint64_t samples_absorbed() const = 0;
};

/// Reconstructs the current grouping from a set of observations (helper
/// shared by the keep-current default and several policies).  The result is
/// core-aligned: entry c describes core c, with empty groups for idle cores
/// — re-applying it never migrates anything.  `total_cores` must be
/// positive (every driver populates TaskObservation::total_cores; the old
/// "driver predates it" compact form is gone).
CoreAllocation current_allocation(std::span<const TaskObservation> observations,
                                  int total_cores);

/// The SMT width the observations were taken under (2 when `observations`
/// is empty, matching the historical default).
int observed_smt_ways(std::span<const TaskObservation> observations) noexcept;

/// The platform-wide core count the observations were taken under.  Throws
/// std::invalid_argument when the driver failed to populate total_cores —
/// a clean diagnostic instead of downstream division by zero.
std::size_t observed_total_cores(std::span<const TaskObservation> observations);

/// Chips in the platform the observations were taken under (1 when
/// `observations` is empty — the single-socket default).
int observed_chip_count(std::span<const TaskObservation> observations) noexcept;

}  // namespace synpa::sched
