#include "sched/baselines.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace synpa::sched {

PairAllocation place_pairs(const std::vector<std::pair<int, int>>& pairs,
                           std::span<const TaskObservation> observations) {
    return place_on_cores(pairs, observations, pairs.size());
}

PairAllocation place_on_cores(const std::vector<std::pair<int, int>>& entries,
                              std::span<const TaskObservation> observations,
                              std::size_t cores) {
    if (entries.size() > cores)
        throw std::invalid_argument("place_on_cores: more entries than cores");
    std::unordered_map<int, int> core_of;
    for (const TaskObservation& o : observations) core_of[o.task_id] = o.core;

    PairAllocation alloc(cores, {kNoTask, kNoTask});
    std::vector<bool> core_used(cores, false);
    std::vector<std::pair<int, int>> unplaced;

    // First pass: pin each entry to a core one member already occupies.
    for (const auto& pr : entries) {
        int preferred = -1;
        const auto ita = core_of.find(pr.first);
        const auto itb = core_of.find(pr.second);
        if (ita != core_of.end() && ita->second >= 0 &&
            ita->second < static_cast<int>(cores) &&
            !core_used[static_cast<std::size_t>(ita->second)])
            preferred = ita->second;
        else if (itb != core_of.end() && itb->second >= 0 &&
                 itb->second < static_cast<int>(cores) &&
                 !core_used[static_cast<std::size_t>(itb->second)])
            preferred = itb->second;
        if (preferred >= 0) {
            alloc[static_cast<std::size_t>(preferred)] = pr;
            core_used[static_cast<std::size_t>(preferred)] = true;
        } else {
            unplaced.push_back(pr);
        }
    }
    // Second pass: remaining pairs fill remaining cores in order.
    std::size_t next = 0;
    for (const auto& pr : unplaced) {
        while (next < cores && core_used[next]) ++next;
        alloc[next] = pr;
        core_used[next] = true;
    }
    return alloc;
}

PairAllocation RandomPolicy::reallocate(std::span<const TaskObservation> observations) {
    std::vector<int> ids;
    ids.reserve(observations.size());
    for (const TaskObservation& o : observations) ids.push_back(o.task_id);
    // Fisher-Yates with the policy's own deterministic stream.
    for (std::size_t i = ids.size(); i > 1; --i)
        std::swap(ids[i - 1], ids[rng_.below(i)]);
    const int total_cores = observations.empty() ? -1 : observations.front().total_cores;
    const std::size_t cores =
        total_cores > 0 ? static_cast<std::size_t>(total_cores) : (ids.size() + 1) / 2;
    // Under partial load only the overflow beyond one-task-per-core is
    // forced to share; the rest of the shuffled ids run alone.
    const std::size_t forced_pairs = ids.size() > cores ? ids.size() - cores : 0;
    std::vector<std::pair<int, int>> entries;
    std::size_t k = 0;
    for (; k + 1 < ids.size() && entries.size() < forced_pairs; k += 2)
        entries.emplace_back(ids[k], ids[k + 1]);
    for (; k < ids.size(); ++k) entries.emplace_back(ids[k], kNoTask);
    return place_on_cores(entries, observations, cores);
}

OraclePolicy::OraclePolicy(model::InterferenceModel model) : model_(model) {}

PairAllocation OraclePolicy::reallocate(std::span<const TaskObservation> observations) {
    if (observations.empty()) return {};
    const std::size_t n = observations.size();
    // True current-phase isolated fractions (oracle-only information).
    std::vector<model::CategoryVector> truth(n);
    for (std::size_t i = 0; i < n; ++i) {
        const apps::AppInstance* inst = observations[i].instance;
        const auto& cats = inst->profile().phase_categories;
        if (cats.empty()) {
            // Uncalibrated suite: fall back to the task's own measured SMT
            // fractions (still a strong baseline).
            truth[i] = observations[i].breakdown.fractions();
        } else {
            truth[i] = cats[inst->phase_index()];
        }
    }

    matching::WeightMatrix w(n);
    for (std::size_t u = 0; u < n; ++u)
        for (std::size_t v = u + 1; v < n; ++v)
            w.set(u, v, model_.predict_slowdown(truth[u], truth[v]) +
                            model_.predict_slowdown(truth[v], truth[u]));

    // Partial load (N != 2 * cores): pick pairs and singles with the padded
    // imperfect-matching path, scoring "runs alone" with the model's
    // no-co-runner prediction (no hysteresis — the live set churns anyway).
    const int total_cores = observations.front().total_cores;
    if (total_cores > 0 && n != 2 * static_cast<std::size_t>(total_cores)) {
        const model::CategoryVector nobody{};
        std::vector<double> solo(n);
        for (std::size_t i = 0; i < n; ++i)
            solo[i] = model_.predict_slowdown(truth[i], nobody);
        const matching::PartialMatching sel = matching::min_weight_partial(
            w, solo, static_cast<std::size_t>(total_cores), matcher_);
        std::vector<std::pair<int, int>> entries;
        for (auto [u, v] : sel.pairs)
            entries.emplace_back(observations[static_cast<std::size_t>(u)].task_id,
                                 observations[static_cast<std::size_t>(v)].task_id);
        for (int u : sel.singles)
            entries.emplace_back(observations[static_cast<std::size_t>(u)].task_id, kNoTask);
        return place_on_cores(entries, observations, static_cast<std::size_t>(total_cores));
    }

    // Current pairing in index space, for the same hysteresis SYNPA uses.
    std::unordered_map<int, std::size_t> index_of;
    for (std::size_t i = 0; i < n; ++i) index_of[observations[i].task_id] = i;
    std::vector<std::pair<int, int>> current;
    for (std::size_t i = 0; i < n; ++i) {
        const int partner = observations[i].corunner_task_id;
        const auto it = partner >= 0 ? index_of.find(partner) : index_of.end();
        if (it != index_of.end() && it->second > i)
            current.emplace_back(static_cast<int>(i), static_cast<int>(it->second));
    }
    const matching::StabilizedSelection sel =
        matching::stabilized_min_weight(w, current, matcher_);
    std::vector<std::pair<int, int>> pairs;
    pairs.reserve(sel.pairs.size());
    for (auto [u, v] : sel.pairs)
        pairs.emplace_back(observations[static_cast<std::size_t>(u)].task_id,
                           observations[static_cast<std::size_t>(v)].task_id);
    return place_pairs(pairs, observations);
}

}  // namespace synpa::sched

namespace synpa::sched {

SamplingPolicy::SlotPairing SamplingPolicy::random_pairing(std::size_t n) {
    std::vector<int> slots(n);
    for (std::size_t i = 0; i < n; ++i) slots[i] = static_cast<int>(i);
    for (std::size_t i = n; i > 1; --i)
        std::swap(slots[i - 1], slots[rng_.below(i)]);
    SlotPairing pairing;
    for (std::size_t k = 0; k + 1 < n; k += 2) pairing.emplace_back(slots[k], slots[k + 1]);
    return pairing;
}

PairAllocation SamplingPolicy::reallocate(std::span<const TaskObservation> observations) {
    const std::size_t n = observations.size();

    // Open-system churn: slot-space pairings become stale when the live-set
    // size changes in either direction (a pairing sampled for fewer slots
    // must not be replayed after arrivals), so restart the sampling cycle.
    if (sampled_n_ != n) {
        sampled_n_ = n;
        current_.clear();
        best_.clear();
        best_score_ = -1.0;
        samples_taken_ = 0;
        phase_left_ = 0;
        exploring_ = true;
    }

    // Score the configuration that just ran: aggregate IPC over the quantum
    // (what a measurement-based scheduler can actually observe).
    if (!current_.empty()) {
        double score = 0.0;
        for (const TaskObservation& o : observations) score += o.breakdown.ipc();
        if (exploring_ && score > best_score_) {
            best_score_ = score;
            best_ = current_;
        }
    }

    if (phase_left_ == 0) {
        if (exploring_ && samples_taken_ >= opts_.explore_quanta && !best_.empty()) {
            exploring_ = false;  // settle on the best sampled configuration
            phase_left_ = opts_.exploit_quanta;
        } else {
            exploring_ = true;
            samples_taken_ = 0;
            best_score_ = -1.0;
        }
    }

    if (exploring_) {
        current_ = random_pairing(n);
        ++samples_taken_;
    } else {
        current_ = best_;
        --phase_left_;
    }

    std::vector<std::pair<int, int>> id_pairs;
    id_pairs.reserve(current_.size());
    std::vector<bool> covered(n, false);
    for (auto [a, b] : current_) {
        id_pairs.emplace_back(observations[static_cast<std::size_t>(a)].task_id,
                              observations[static_cast<std::size_t>(b)].task_id);
        covered[static_cast<std::size_t>(a)] = covered[static_cast<std::size_t>(b)] = true;
    }
    // Odd n: the slot random_pairing left out runs alone.
    for (std::size_t i = 0; i < n; ++i)
        if (!covered[i]) id_pairs.emplace_back(observations[i].task_id, kNoTask);
    const int total_cores = observations.empty() ? -1 : observations.front().total_cores;
    const std::size_t cores =
        total_cores > 0 ? static_cast<std::size_t>(total_cores) : id_pairs.size();
    return place_on_cores(id_pairs, observations, cores);
}

void SamplingPolicy::on_task_replaced(int, int) {
    // Pairings are kept in slot space, so a relaunch needs no remapping;
    // the fresh instance simply inherits its predecessor's slot role.
}

}  // namespace synpa::sched
