#include "sched/baselines.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "common/flat_map.hpp"
#include "sched/topology.hpp"

namespace synpa::sched {
namespace {

/// Splits `items` into min(cores, items.size()) consecutive groups as
/// evenly as possible — the first `items mod used` groups get one extra
/// member, so under partial load only the overflow beyond one-per-core is
/// forced to share.  The spread invariant shared by RandomPolicy and
/// SamplingPolicy; throws when the forced group size exceeds `width`.
std::vector<std::vector<int>> even_spread(const std::vector<int>& items, std::size_t cores,
                                          std::size_t width, const char* who) {
    const std::size_t used = std::min(cores, items.size());
    const std::size_t base = items.size() / used;
    const std::size_t extra = items.size() % used;
    if (base + (extra > 0 ? 1 : 0) > width)
        throw std::invalid_argument(std::string(who) + ": more tasks than SMT contexts");
    std::vector<std::vector<int>> groups(used);
    std::size_t k = 0;
    for (std::size_t g = 0; g < used; ++g) {
        const std::size_t size = base + (g < extra ? 1 : 0);
        for (std::size_t s = 0; s < size; ++s) groups[g].push_back(items[k++]);
    }
    return groups;
}

}  // namespace

std::vector<CoreGroup> groups_from_pairs(const std::vector<std::pair<int, int>>& pairs) {
    std::vector<CoreGroup> entries;
    entries.reserve(pairs.size());
    for (const auto& [a, b] : pairs) {
        // Skip kNoTask members instead of copying them verbatim: a
        // (kNoTask, task) spelling must normalize to the occupied-first
        // {task} group, never to a gap-malformed one that silently hides
        // the task behind the gap.
        CoreGroup g;
        if (a != kNoTask) g.add(a);
        if (b != kNoTask) g.add(b);
        entries.push_back(g);
    }
    return entries;
}

CoreAllocation place_pairs(const std::vector<std::pair<int, int>>& pairs,
                           std::span<const TaskObservation> observations) {
    return place_groups(groups_from_pairs(pairs), observations, pairs.size());
}

CoreAllocation place_groups(const std::vector<CoreGroup>& entries,
                            std::span<const TaskObservation> observations,
                            std::size_t cores) {
    if (entries.size() > cores)
        throw std::invalid_argument("place_groups: more entries than cores");
    common::FlatIdMap<int> core_of;
    for (const TaskObservation& o : observations) core_of[o.task_id] = o.core;

    CoreAllocation alloc(cores);
    std::vector<bool> core_used(cores, false);
    std::vector<CoreGroup> unplaced;

    // First pass: pin each entry to a core one member already occupies
    // (members considered in slot order).
    for (const CoreGroup& g : entries) {
        int preferred = -1;
        for (const int member : g.members()) {
            const int* it = core_of.find(member);
            if (it != nullptr && *it >= 0 && *it < static_cast<int>(cores) &&
                !core_used[static_cast<std::size_t>(*it)]) {
                preferred = *it;
                break;
            }
        }
        if (preferred >= 0) {
            alloc[static_cast<std::size_t>(preferred)] = g;
            core_used[static_cast<std::size_t>(preferred)] = true;
        } else {
            unplaced.push_back(g);
        }
    }
    // Second pass: remaining groups fill remaining cores in order.
    std::size_t next = 0;
    for (const CoreGroup& g : unplaced) {
        while (next < cores && core_used[next]) ++next;
        alloc[next] = g;
        core_used[next] = true;
    }
    return alloc;
}

CoreAllocation RandomPolicy::reallocate(std::span<const TaskObservation> observations) {
    if (observations.empty()) return {};
    std::vector<int> ids;
    ids.reserve(observations.size());
    for (const TaskObservation& o : observations) ids.push_back(o.task_id);
    // Fisher-Yates with the policy's own deterministic stream.
    for (std::size_t i = ids.size(); i > 1; --i)
        std::swap(ids[i - 1], ids[rng_.below(i)]);

    // Spread the shuffled ids as evenly as the width allows.
    const std::size_t cores = observed_total_cores(observations);
    const auto width = static_cast<std::size_t>(observed_smt_ways(observations));
    const std::vector<std::vector<int>> groups =
        even_spread(ids, cores, width, "RandomPolicy");
    std::vector<CoreGroup> entries(groups.size());
    for (std::size_t g = 0; g < groups.size(); ++g)
        for (const int id : groups[g]) entries[g].add(id);
    return place_groups(entries, observations, cores);
}

OraclePolicy::OraclePolicy(model::InterferenceModel model, double cross_chip_penalty)
    : model_(model), cross_chip_penalty_(cross_chip_penalty) {}

CoreAllocation OraclePolicy::reallocate(std::span<const TaskObservation> observations) {
    if (observations.empty()) return {};
    const std::size_t n = observations.size();
    // True current-phase isolated fractions (oracle-only information).
    std::vector<model::CategoryVector> truth(n);
    for (std::size_t i = 0; i < n; ++i) {
        const apps::AppInstance* inst = observations[i].instance;
        const auto& cats = inst->profile().phase_categories;
        if (cats.empty()) {
            // Uncalibrated suite: fall back to the task's own measured SMT
            // fractions (still a strong baseline).
            truth[i] = observations[i].breakdown.fractions();
        } else {
            truth[i] = cats[inst->phase_index()];
        }
    }

    const TopologyView topo = observed_topology(observations);
    if (topo.chips <= 1) return allocate_chip(observations, truth);

    // Multi-chip: assign chips first (migrate only when the true predicted
    // benefit beats the cross-chip cost), then solve each chip in
    // isolation — co-run interference never crosses a chip boundary.
    const model::CategoryVector nobody{};
    const SoloCost solo = [&](std::size_t i) {
        return model_.predict_slowdown(truth[i], nobody);
    };
    const PairCost pair = [&](std::size_t u, std::size_t v) {
        return model_.predict_slowdown(truth[u], truth[v]) +
               model_.predict_slowdown(truth[v], truth[u]);
    };
    return allocate_across_chips(
        observations, topo, solo, pair, cross_chip_penalty_,
        [&](int, std::span<const TaskObservation> local, std::span<const std::size_t> idx) {
            std::vector<model::CategoryVector> local_truth;
            local_truth.reserve(idx.size());
            for (const std::size_t i : idx) local_truth.push_back(truth[i]);
            return allocate_chip(local, local_truth);
        });
}

CoreAllocation OraclePolicy::allocate_chip(std::span<const TaskObservation> observations,
                                           std::span<const model::CategoryVector> truth) {
    if (observations.empty()) return {};
    const std::size_t n = observations.size();
    const std::size_t total_cores = observed_total_cores(observations);
    const int width = observed_smt_ways(observations);

    // Width 1: no grouping decision exists — every task stays alone.
    if (width == 1) {
        std::vector<CoreGroup> entries;
        entries.reserve(n);
        for (const auto& o : observations) entries.push_back(CoreGroup{o.task_id});
        return place_groups(entries, observations, total_cores);
    }

    // Width > 2: the k-way grouping with true-category group costs — the
    // same superposed-pressure predictor SYNPA's estimator uses, fed the
    // oracle's true vectors instead of estimates.
    if (width > 2) {
        const matching::GroupCost cost = [&](std::span<const int> group) {
            std::vector<model::CategoryVector> members;
            members.reserve(group.size());
            for (const int i : group) members.push_back(truth[static_cast<std::size_t>(i)]);
            return model::predict_group_slowdown(model_, members);
        };
        const matching::GroupingResult sel = matching::min_weight_grouping(
            n, total_cores, static_cast<std::size_t>(width), cost);
        std::vector<CoreGroup> entries;
        entries.reserve(sel.groups.size());
        for (const auto& group : sel.groups) {
            CoreGroup g;
            for (const int i : group)
                g.add(observations[static_cast<std::size_t>(i)].task_id);
            entries.push_back(g);
        }
        return place_groups(entries, observations, total_cores);
    }

    matching::WeightMatrix w(n);
    for (std::size_t u = 0; u < n; ++u)
        for (std::size_t v = u + 1; v < n; ++v)
            w.set(u, v, model_.predict_slowdown(truth[u], truth[v]) +
                            model_.predict_slowdown(truth[v], truth[u]));

    // Partial load (N != 2 * cores): pick pairs and singles with the padded
    // imperfect-matching path, scoring "runs alone" with the model's
    // no-co-runner prediction (no hysteresis — the live set churns anyway).
    if (n != 2 * total_cores) {
        const model::CategoryVector nobody{};
        std::vector<double> solo(n);
        for (std::size_t i = 0; i < n; ++i)
            solo[i] = model_.predict_slowdown(truth[i], nobody);
        const matching::PartialMatching sel =
            matching::min_weight_partial(w, solo, total_cores, matcher_);
        std::vector<std::pair<int, int>> entries;
        for (auto [u, v] : sel.pairs)
            entries.emplace_back(observations[static_cast<std::size_t>(u)].task_id,
                                 observations[static_cast<std::size_t>(v)].task_id);
        for (int u : sel.singles)
            entries.emplace_back(observations[static_cast<std::size_t>(u)].task_id, kNoTask);
        return place_groups(groups_from_pairs(entries), observations, total_cores);
    }

    // Current pairing in index space, for the same hysteresis SYNPA uses.
    common::FlatIdMap<std::size_t> index_of;
    for (std::size_t i = 0; i < n; ++i) index_of[observations[i].task_id] = i;
    std::vector<std::pair<int, int>> current;
    for (std::size_t i = 0; i < n; ++i) {
        const int partner = observations[i].corunner_task_id;
        const std::size_t* it = partner >= 0 ? index_of.find(partner) : nullptr;
        if (it != nullptr && *it > i)
            current.emplace_back(static_cast<int>(i), static_cast<int>(*it));
    }
    const matching::StabilizedSelection sel =
        matching::stabilized_min_weight(w, current, matcher_);
    std::vector<std::pair<int, int>> pairs;
    pairs.reserve(sel.pairs.size());
    for (auto [u, v] : sel.pairs)
        pairs.emplace_back(observations[static_cast<std::size_t>(u)].task_id,
                           observations[static_cast<std::size_t>(v)].task_id);
    return place_pairs(pairs, observations);
}

}  // namespace synpa::sched

namespace synpa::sched {

SamplingPolicy::SlotGrouping SamplingPolicy::random_grouping(std::size_t n,
                                                             std::size_t width,
                                                             std::size_t cores) {
    std::vector<int> slots(n);
    for (std::size_t i = 0; i < n; ++i) slots[i] = static_cast<int>(i);
    for (std::size_t i = n; i > 1; --i)
        std::swap(slots[i - 1], slots[rng_.below(i)]);
    // Spread the shuffled slots evenly over min(cores, n) groups (the same
    // split RandomPolicy uses), so the entry count never exceeds the core
    // budget no matter how n relates to the width — a chunks-of-width split
    // would strand n mod width leftovers on cores that do not exist.
    return even_spread(slots, cores, width, "SamplingPolicy");
}

CoreAllocation SamplingPolicy::reallocate(std::span<const TaskObservation> observations) {
    if (observations.empty()) return {};
    const std::size_t n = observations.size();
    const auto width = static_cast<std::size_t>(observed_smt_ways(observations));
    const std::size_t cores = observed_total_cores(observations);

    // Open-system churn: slot-space groupings become stale when the live-set
    // size changes in either direction (a grouping sampled for fewer slots
    // must not be replayed after arrivals), so restart the sampling cycle.
    if (sampled_n_ != n) {
        sampled_n_ = n;
        current_.clear();
        best_.clear();
        best_score_ = -1.0;
        samples_taken_ = 0;
        phase_left_ = 0;
        exploring_ = true;
    }

    // Score the configuration that just ran: aggregate IPC over the quantum
    // (what a measurement-based scheduler can actually observe).
    if (!current_.empty()) {
        double score = 0.0;
        for (const TaskObservation& o : observations) score += o.breakdown.ipc();
        if (exploring_ && score > best_score_) {
            best_score_ = score;
            best_ = current_;
        }
    }

    if (phase_left_ == 0) {
        if (exploring_ && samples_taken_ >= opts_.explore_quanta && !best_.empty()) {
            exploring_ = false;  // settle on the best sampled configuration
            phase_left_ = opts_.exploit_quanta;
        } else {
            exploring_ = true;
            samples_taken_ = 0;
            best_score_ = -1.0;
        }
    }

    if (exploring_) {
        current_ = random_grouping(n, width, cores);
        ++samples_taken_;
    } else {
        current_ = best_;
        --phase_left_;
    }

    // The even spread covers every slot, so the grouping maps 1:1 to core
    // entries (at most min(cores, n) of them).
    std::vector<CoreGroup> entries;
    entries.reserve(current_.size());
    for (const auto& group : current_) {
        CoreGroup g;
        for (const int slot : group)
            g.add(observations[static_cast<std::size_t>(slot)].task_id);
        entries.push_back(g);
    }
    return place_groups(entries, observations, cores);
}

void SamplingPolicy::on_task_replaced(int, int) {
    // Groupings are kept in slot space, so a relaunch needs no remapping;
    // the fresh instance simply inherits its predecessor's slot role.
}

}  // namespace synpa::sched
