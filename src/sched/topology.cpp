#include "sched/topology.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace synpa::sched {

TopologyView observed_topology(std::span<const TaskObservation> observations) {
    TopologyView topo;
    topo.chips = observed_chip_count(observations);
    const auto total = static_cast<int>(observed_total_cores(observations));
    if (total % topo.chips != 0)
        throw std::invalid_argument(
            "observed_topology: total_cores must divide evenly across chips");
    topo.cores_per_chip = total / topo.chips;
    topo.smt_ways = observed_smt_ways(observations);
    return topo;
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Cheapest predicted cost of task `t` living on the chip whose residents
/// are `chip_members`: its solo cost when the chip has a core for everyone
/// (counting t itself — `resident` says whether it is already in the
/// list), otherwise the cheapest co-run next to an existing resident.
double expected_cost_on_chip(std::size_t t, const std::vector<std::size_t>& chip_members,
                             int cores, bool resident, const SoloCost& solo_cost,
                             const PairCost& pair_cost) {
    const std::size_t residents = chip_members.size() + (resident ? 0 : 1);
    if (residents <= static_cast<std::size_t>(cores)) return solo_cost(t);
    double best = kInf;
    for (const std::size_t other : chip_members) {
        if (other == t) continue;
        best = std::min(best, pair_cost(t, other));
    }
    return best < kInf ? best : solo_cost(t);
}

}  // namespace

std::vector<int> balance_across_chips(std::span<const TaskObservation> observations,
                                      const TopologyView& topo, const SoloCost& solo_cost,
                                      const PairCost& pair_cost, double migration_penalty) {
    std::vector<int> target(observations.size());
    for (std::size_t i = 0; i < observations.size(); ++i) {
        const int chip = observations[i].chip;
        if (chip < 0 || chip >= topo.chips)
            throw std::invalid_argument("balance_across_chips: observation chip out of range");
        target[i] = chip;
    }
    if (topo.chips <= 1) return target;

    std::vector<std::vector<std::size_t>> members(static_cast<std::size_t>(topo.chips));
    for (std::size_t i = 0; i < target.size(); ++i)
        members[static_cast<std::size_t>(target[i])].push_back(i);

    // Each round moves at most one task, and every move shrinks the
    // max-min load gap, so the loop is bounded by the task count.
    for (std::size_t round = 0; round < observations.size(); ++round) {
        int src = 0, dst = 0;
        for (int c = 1; c < topo.chips; ++c) {
            if (members[static_cast<std::size_t>(c)].size() >
                members[static_cast<std::size_t>(src)].size())
                src = c;
            if (members[static_cast<std::size_t>(c)].size() <
                members[static_cast<std::size_t>(dst)].size())
                dst = c;
        }
        auto& from = members[static_cast<std::size_t>(src)];
        auto& to = members[static_cast<std::size_t>(dst)];
        if (from.size() < to.size() + 2) break;  // balanced enough

        // Best candidate: largest predicted benefit of leaving the crowd.
        std::size_t best_i = observations.size();
        double best_benefit = -kInf;
        for (const std::size_t t : from) {
            const double here = expected_cost_on_chip(t, from, topo.cores_per_chip,
                                                      /*resident=*/true, solo_cost,
                                                      pair_cost);
            const double there = expected_cost_on_chip(t, to, topo.cores_per_chip,
                                                       /*resident=*/false, solo_cost,
                                                       pair_cost);
            const double benefit = here - there;
            if (benefit > best_benefit) {
                best_benefit = benefit;
                best_i = t;
            }
        }
        if (best_i == observations.size() || best_benefit <= migration_penalty) break;

        from.erase(std::find(from.begin(), from.end(), best_i));
        to.insert(std::upper_bound(to.begin(), to.end(), best_i), best_i);
        target[best_i] = dst;
    }
    return target;
}

std::vector<std::vector<std::size_t>> indices_by_chip(std::span<const int> target_chips,
                                                      int chips) {
    std::vector<std::vector<std::size_t>> out(static_cast<std::size_t>(chips));
    for (std::size_t i = 0; i < target_chips.size(); ++i)
        out.at(static_cast<std::size_t>(target_chips[i])).push_back(i);
    return out;
}

std::vector<TaskObservation> localize_observations(
    std::span<const TaskObservation> observations, std::span<const std::size_t> indices,
    int chip, int cores_per_chip) {
    std::vector<TaskObservation> out;
    out.reserve(indices.size());
    for (const std::size_t i : indices) {
        TaskObservation o = observations[i];
        // A task the balancer reassigned still reports its *old* core; only
        // same-chip incumbency is meaningful to the local placement, so
        // foreign cores become "no incumbent".
        if (o.chip == chip) {
            o.core -= chip * cores_per_chip;
        } else {
            o.core = -1;
        }
        o.chip = 0;
        o.num_chips = 1;
        o.total_cores = cores_per_chip;
        out.push_back(std::move(o));
    }
    return out;
}

CoreAllocation allocate_across_chips(std::span<const TaskObservation> observations,
                                     const TopologyView& topo, const SoloCost& solo_cost,
                                     const PairCost& pair_cost, double migration_penalty,
                                     const ChipAllocator& allocate) {
    const std::vector<int> target =
        balance_across_chips(observations, topo, solo_cost, pair_cost, migration_penalty);
    const std::vector<std::vector<std::size_t>> by_chip =
        indices_by_chip(target, topo.chips);
    std::vector<CoreAllocation> per_chip;
    per_chip.reserve(by_chip.size());
    for (int c = 0; c < topo.chips; ++c) {
        const auto& idx = by_chip[static_cast<std::size_t>(c)];
        const std::vector<TaskObservation> local =
            localize_observations(observations, idx, c, topo.cores_per_chip);
        CoreAllocation alloc = allocate(c, local, idx);
        if (alloc.size() > static_cast<std::size_t>(topo.cores_per_chip))
            throw std::invalid_argument(
                "allocate_across_chips: chip allocation exceeds its cores");
        alloc.resize(static_cast<std::size_t>(topo.cores_per_chip));
        per_chip.push_back(std::move(alloc));
    }
    return concat_chip_allocations(per_chip, topo.cores_per_chip);
}

CoreAllocation concat_chip_allocations(std::span<const CoreAllocation> per_chip,
                                       int cores_per_chip) {
    CoreAllocation out;
    out.reserve(per_chip.size() * static_cast<std::size_t>(cores_per_chip));
    for (const CoreAllocation& alloc : per_chip) {
        if (alloc.size() != static_cast<std::size_t>(cores_per_chip))
            throw std::invalid_argument(
                "concat_chip_allocations: chip allocation does not cover its cores");
        out.insert(out.end(), alloc.begin(), alloc.end());
    }
    return out;
}

}  // namespace synpa::sched
