// String-keyed policy registry: every allocation policy in the tree —
// baselines, the paper's SYNPA, the family-paper objective variants, and
// the online phase-adaptive loop — constructible as
//
//   auto policy = sched::make_policy("synpa-fair", config);
//
// so campaigns, scenario grids, benches and examples select policies by
// name (a `policy=` grid axis, an environment list) instead of compile-time
// wiring.  registered_policies() is the single source of truth for the
// name set; tools/check_docs.py cross-checks it against the policy table in
// docs/REFERENCE.md, so adding an entry here without documenting it fails
// CI.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>

#include "core/synpa_policy.hpp"
#include "model/interference_model.hpp"
#include "online/adaptive_policy.hpp"
#include "sched/baselines.hpp"
#include "sched/policy.hpp"
#include "sched/topology.hpp"

namespace synpa::sched {

/// Everything a registered factory may need.  Callers fill in what they
/// have; names that need a missing piece throw std::invalid_argument with
/// a clear message instead of misbehaving.
struct PolicyConfig {
    /// Interference model for the model-based policies (synpa*, oracle).
    /// An aliasing shared_ptr into a TrainingResult works well here.
    std::shared_ptr<const model::InterferenceModel> model;
    /// Seed for the randomized baselines (random, sampling); derive it per
    /// repetition for independent streams.
    std::uint64_t seed = 1;
    /// Base options for every SYNPA-family policy (selector, estimator,
    /// hysteresis, cross-chip penalty).  The objective field is overridden
    /// by the objective variants.
    core::SynpaPolicy::Options synpa{};
    /// Knobs for the online phase-adaptive loop (synpa-adaptive*).
    online::OnlineOptions online = online::OnlineOptions::from_env();
    /// Sampling-baseline explore/exploit windows.
    SamplingPolicy::Options sampling{};
};

struct PolicyInfo {
    std::string_view name;
    std::string_view objective;  ///< what the policy optimizes (docs table)
    bool needs_model = false;    ///< requires PolicyConfig::model
    bool adaptive = false;       ///< retrains its model online
    std::string_view description;
};

/// Every registered policy, in documentation order.
std::span<const PolicyInfo> registered_policies();

/// Registry entry for a name; nullptr when unknown.
const PolicyInfo* find_policy(std::string_view name);

/// Instantiates a registered policy.  Throws std::invalid_argument for an
/// unknown name or a missing required config field.
std::unique_ptr<AllocationPolicy> make_policy(std::string_view name,
                                              const PolicyConfig& config);

}  // namespace synpa::sched
