// The quantum-loop primitives shared by the classic methodology driver
// (ThreadManager) and the open-system driver (scenario::ScenarioRunner).
//
// Both drivers execute the same per-quantum cycle — run the chip, observe
// every live task, let the policy regroup, rebind — and differ only in what
// happens at a task's finish line (relaunch-in-place vs. retire) and in how
// tasks enter the system (fixed slots vs. arrivals).  Keeping the mechanics
// here guarantees the two modes measure and migrate identically.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "apps/instance.hpp"
#include "pmu/counters.hpp"
#include "sched/policy.hpp"
#include "uarch/chip.hpp"

namespace synpa::sched {

/// Validates `alloc` (entry c = core c; see the CoreAllocation contract in
/// policy.hpp) against the live tasks — given in stable slot order so the
/// rebind sequence is deterministic — and applies it to the chip: unbind
/// everything, then bind to the new placement.  Each group must keep its
/// occupied slots first and fit the chip's smt_ways.  The chip only charges
/// a cache-warmup penalty where the core actually changed.  Returns the
/// number of migrations (core changes) this application caused.  With
/// `require_full_groups` every core must run exactly smt_ways threads (the
/// classic closed system keeps the chip saturated).
std::uint64_t bind_allocation(uarch::Chip& chip, const CoreAllocation& alloc,
                              std::span<apps::AppInstance* const> live,
                              bool require_full_groups);

/// Builds one task's post-quantum observation: placement, co-runners,
/// counter deltas against `prev_bank`, and the three-step characterization.
TaskObservation observe_task(const uarch::Chip& chip, apps::AppInstance& task,
                             int slot_index, const std::string& app_name,
                             const pmu::CounterBank& prev_bank);

/// Fraction of the just-finished quantum needed to reach `target`
/// instructions, given the task's cumulative counts at the previous and
/// current quantum boundaries (1.0 when no progress was made).
double finish_fraction(std::uint64_t insts_prev, std::uint64_t insts_now,
                       std::uint64_t target);

}  // namespace synpa::sched
