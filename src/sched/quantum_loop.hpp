// The quantum-loop primitives shared by the classic methodology driver
// (ThreadManager) and the open-system driver (scenario::ScenarioRunner).
//
// Both drivers execute the same per-quantum cycle — run the platform,
// observe every live task, let the policy regroup, rebind — and differ only
// in what happens at a task's finish line (relaunch-in-place vs. retire)
// and in how tasks enter the system (fixed slots vs. arrivals).  Keeping
// the mechanics here guarantees the two modes measure and migrate
// identically, on one chip or many.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "apps/instance.hpp"
#include "pmu/counters.hpp"
#include "sched/policy.hpp"
#include "uarch/platform.hpp"

namespace synpa::obs {
class Tracer;
}  // namespace synpa::obs

namespace synpa::sched {

/// What one bind_allocation application did to the placement.
struct BindStats {
    std::uint64_t migrations = 0;   ///< tasks whose (global) core changed
    std::uint64_t cross_chip = 0;   ///< subset of those that changed chips

    BindStats& operator+=(const BindStats& other) noexcept {
        migrations += other.migrations;
        cross_chip += other.cross_chip;
        return *this;
    }
};

/// Validates `alloc` (entry g = global core g; see the CoreAllocation
/// contract in policy.hpp) against the live tasks — given in stable slot
/// order so the rebind sequence is deterministic — and applies it to the
/// platform: unbind everything, then bind to the new placement.  Each group
/// must keep its occupied slots first and fit the platform's smt_ways.  The
/// platform charges a local cache-warmup penalty where the core changed and
/// the larger cross-chip window where the chip changed.  Returns the
/// migrations this application caused, split into total core changes and
/// the cross-chip subset.  With `require_full_groups` every core must run
/// exactly smt_ways threads (the classic closed system keeps every chip
/// saturated).  When `tracer` wants migration events, each moved task emits
/// one (slot moves included, though they stay free and uncounted in the
/// returned BindStats).
BindStats bind_allocation(uarch::Platform& platform, const CoreAllocation& alloc,
                          std::span<apps::AppInstance* const> live,
                          bool require_full_groups, obs::Tracer* tracer = nullptr);

/// Builds one task's post-quantum observation: global placement (core and
/// chip), co-runners, counter deltas against `prev_bank`, and the
/// three-step characterization.
TaskObservation observe_task(const uarch::Platform& platform, apps::AppInstance& task,
                             int slot_index, const std::string& app_name,
                             const pmu::CounterBank& prev_bank);

/// Fraction of the just-finished quantum needed to reach `target`
/// instructions, given the task's cumulative counts at the previous and
/// current quantum boundaries (1.0 when no progress was made).
double finish_fraction(std::uint64_t insts_prev, std::uint64_t insts_now,
                       std::uint64_t target);

}  // namespace synpa::sched
