#include "sched/thread_manager.hpp"

#include <algorithm>
#include <stdexcept>

#include "apps/spec_suite.hpp"
#include "common/flat_map.hpp"
#include "common/rng.hpp"
#include "obs/trace.hpp"
#include "sched/quantum_loop.hpp"

namespace synpa::sched {

ThreadManager::ThreadManager(uarch::Platform& platform, AllocationPolicy& policy,
                             std::span<const TaskSpec> specs, Options opts)
    : platform_(platform), policy_(policy), opts_(opts) {
    if (specs.size() != static_cast<std::size_t>(platform_.hw_contexts()))
        throw std::invalid_argument("ThreadManager: task count must fill the platform");
    // Null out a disabled tracer once, so every per-quantum site pays a
    // single pointer test.
    if (opts_.tracer != nullptr && opts_.tracer->enabled()) {
        tracer_ = opts_.tracer;
        platform_.set_tracer(tracer_);
        policy_.set_tracer(tracer_);
    }
    slots_.reserve(specs.size());
    for (const TaskSpec& spec : specs) {
        Slot slot;
        slot.spec = spec;
        slot.task = std::make_unique<apps::AppInstance>(next_task_id_++,
                                                        apps::find_app(spec.app_name),
                                                        spec.seed);
        slots_.push_back(std::move(slot));
    }
}

void ThreadManager::apply_allocation(const CoreAllocation& alloc) {
    // The closed system keeps every core at smt_ways threads, so partial
    // groups are rejected (require_full_groups).
    std::vector<apps::AppInstance*> live;
    live.reserve(slots_.size());
    for (Slot& s : slots_) live.push_back(s.task.get());
    bind_stats_ +=
        bind_allocation(platform_, alloc, live, /*require_full_groups=*/true, tracer_);
}

RunResult ThreadManager::run() {
    RunResult result;
    result.policy_name = policy_.name();
    result.traces.resize(slots_.size());

    std::vector<int> ids;
    ids.reserve(slots_.size());
    for (const Slot& s : slots_) ids.push_back(s.task->id());
    apply_allocation(policy_.initial_allocation(ids, platform_.config().smt_ways));

    const auto qcycles = static_cast<double>(platform_.config().cycles_per_quantum);
    std::uint64_t quantum = 0;
    std::size_t finished = 0;

    while (finished < slots_.size() && quantum < opts_.max_quanta) {
        // Flight recorder: stamp the boundary and time the four phases with
        // host wall-clock.  Tracing only reads simulated state, so traced
        // runs stay bit-identical to untraced ones.
        const std::uint64_t q = quantum;
        obs::QuantumStats qs;
        obs::PhaseStopwatch sw(tracer_ != nullptr);
        if (tracer_ != nullptr)
            tracer_->begin_quantum(q, static_cast<int>(slots_.size()), /*queued=*/0);
        const BindStats binds_before = bind_stats_;

        platform_.run_quantum();
        ++quantum;
        qs.simulate_us = sw.lap_us();

        // Observe every slot.  Counter banks are cumulative per instance;
        // per-slot snapshots give the quantum deltas (PerfSession offers the
        // same semantics, but the manager keeps its own snapshots so a
        // relaunch can reset them atomically with the rebind).
        std::vector<TaskObservation> obs(slots_.size());
        for (std::size_t s = 0; s < slots_.size(); ++s) {
            Slot& slot = slots_[s];
            obs[s] = observe_task(platform_, *slot.task, static_cast<int>(s),
                                  slot.spec.app_name, slot.prev_bank);
        }

        // Record traces, progress, and finishes.  Relaunches replace task
        // ids mid-loop, so resolve co-runner slots from the ids captured at
        // observation time, and remember the remapping to patch the
        // observations before they reach the policy.
        common::FlatIdMap<int> slot_by_task;
        for (const TaskObservation& o : obs) slot_by_task[o.task_id] = o.slot_index;
        common::FlatIdMap<int> replaced;
        for (std::size_t s = 0; s < slots_.size(); ++s) {
            Slot& slot = slots_[s];
            apps::AppInstance& task = *slot.task;
            const TaskObservation& o = obs[s];
            const auto fr = o.breakdown.fractions();

            if (opts_.record_traces) {
                QuantumTrace t;
                t.quantum = quantum - 1;
                t.fractions = fr;
                if (o.corunner_task_id >= 0) {
                    const int* it = slot_by_task.find(o.corunner_task_id);
                    t.corunner_slot = it != nullptr ? *it : -1;
                }
                t.ipc = o.breakdown.ipc();
                t.frontend_dominant =
                    fr[static_cast<std::size_t>(model::Category::kFrontendStall)] >
                    fr[static_cast<std::size_t>(model::Category::kBackendStall)];
                result.traces[s].push_back(t);
            }

            if (!slot.original_finished) {
                for (std::size_t c = 0; c < model::kCategoryCount; ++c)
                    slot.category_cycles[c] += o.breakdown.categories[c];
                slot.cycles_observed += static_cast<double>(o.breakdown.cycles);

                const std::uint64_t insts_prev = slot.insts_at_last_quantum;
                const std::uint64_t insts_now = task.insts_retired();
                if (insts_now >= slot.spec.target_insts && slot.spec.target_insts > 0) {
                    // Interpolate the fractional finish quantum.
                    const double frac =
                        finish_fraction(insts_prev, insts_now, slot.spec.target_insts);
                    TaskOutcome out;
                    out.app_name = slot.spec.app_name;
                    out.slot_index = static_cast<int>(s);
                    out.target_insts = slot.spec.target_insts;
                    out.finish_quantum = static_cast<double>(quantum - 1) + frac;
                    out.ipc_smt = static_cast<double>(slot.spec.target_insts) /
                                  (out.finish_quantum * qcycles);
                    out.isolated_ipc = slot.spec.isolated_ipc;
                    out.individual_speedup =
                        out.isolated_ipc > 0.0 ? out.ipc_smt / out.isolated_ipc : 0.0;
                    out.final_core = o.core;
                    const double total = std::max(slot.cycles_observed, 1.0);
                    for (std::size_t c = 0; c < model::kCategoryCount; ++c)
                        out.mean_fractions[c] = slot.category_cycles[c] / total;
                    slot.outcome = out;
                    slot.original_finished = true;
                    ++finished;

                    // Relaunch: a fresh instance of the same application
                    // takes over the hardware slot to keep the load at 8.
                    ++slot.relaunches;
                    const int old_id = task.id();
                    const uarch::CpuSlot where = platform_.placement(old_id);
                    platform_.unbind(old_id);
                    slot.task = std::make_unique<apps::AppInstance>(
                        next_task_id_++, apps::find_app(slot.spec.app_name),
                        common::derive_key(slot.spec.seed, 0x1e1a, slot.relaunches));
                    platform_.bind(*slot.task, where);
                    platform_.forget_task(old_id);  // the old id never returns
                    policy_.on_task_replaced(old_id, slot.task->id());
                    if (tracer_ != nullptr && tracer_->wants(obs::EventKind::kRetirement)) {
                        obs::TraceEvent e;
                        e.kind = obs::EventKind::kRetirement;
                        e.quantum = q;
                        e.task = old_id;
                        e.core = o.core;
                        e.value = out.finish_quantum;
                        e.detail = slot.spec.app_name;
                        tracer_->emit(std::move(e));
                    }
                    if (tracer_ != nullptr && tracer_->wants(obs::EventKind::kAdmission)) {
                        obs::TraceEvent e;
                        e.kind = obs::EventKind::kAdmission;
                        e.quantum = q;
                        e.task = slot.task->id();
                        e.core = where.core;
                        e.detail = slot.spec.app_name;
                        tracer_->emit(std::move(e));
                    }
                    replaced[old_id] = slot.task->id();
                    slot.prev_bank = pmu::CounterBank{};
                    slot.insts_at_last_quantum = 0;
                    continue;
                }
            }

            slot.prev_bank = task.counters();
            slot.insts_at_last_quantum = task.insts_retired();
        }

        qs.observe_us = sw.lap_us();

        if (finished >= slots_.size()) {
            // Final quantum: no decide/bind happens, but the sample still
            // lands in the recorder so the trace covers the whole run.
            if (tracer_ != nullptr) {
                qs.quantum = q;
                qs.live = static_cast<int>(slots_.size());
                qs.utilization = 1.0;
                tracer_->end_quantum(qs);
            }
            break;
        }

        // Patch observations for replaced tasks: the fresh instance inherits
        // the slot, so the policy sees live ids (and no dangling pointers).
        if (!replaced.empty()) {
            for (TaskObservation& o : obs) {
                const int* self = replaced.find(o.task_id);
                if (self != nullptr) {
                    o.task_id = *self;
                    o.instance = slots_[static_cast<std::size_t>(o.slot_index)].task.get();
                }
                for (int& partner_id : o.corunner_task_ids) {
                    const int* partner = replaced.find(partner_id);
                    if (partner != nullptr) partner_id = *partner;
                }
                o.corunner_task_id =
                    o.corunner_task_ids.empty() ? -1 : o.corunner_task_ids.front();
            }
        }
        const CoreAllocation next = policy_.reallocate(obs);
        qs.decide_us = sw.lap_us();
        apply_allocation(next);
        qs.bind_us = sw.lap_us();
        if (tracer_ != nullptr) {
            qs.quantum = q;
            qs.live = static_cast<int>(slots_.size());
            // The closed system keeps every hardware context busy.
            qs.utilization = 1.0;
            qs.migrations = bind_stats_.migrations - binds_before.migrations;
            qs.cross_chip = bind_stats_.cross_chip - binds_before.cross_chip;
            tracer_->end_quantum(qs);
        }
        if (opts_.on_quantum) opts_.on_quantum(platform_);
    }

    result.quanta_executed = quantum;
    result.migrations = bind_stats_.migrations;
    result.cross_chip_migrations = bind_stats_.cross_chip;
    result.completed = finished >= slots_.size();
    double tt = 0.0;
    for (Slot& slot : slots_) {
        if (slot.outcome) {
            result.outcomes.push_back(*slot.outcome);
            tt = std::max(tt, slot.outcome->finish_quantum);
        }
    }
    result.turnaround_quanta = result.completed ? tt : static_cast<double>(quantum);
    return result;
}

}  // namespace synpa::sched
