#include "sched/quantum_loop.hpp"

#include <stdexcept>
#include <unordered_map>

#include "model/categories.hpp"

namespace synpa::sched {

std::uint64_t bind_allocation(uarch::Chip& chip, const PairAllocation& alloc,
                              std::span<apps::AppInstance* const> live,
                              bool require_full_pairs) {
    if (alloc.size() != static_cast<std::size_t>(chip.core_count()))
        throw std::runtime_error("bind_allocation: allocation does not cover every core");

    // Validate the allocation is a permutation of the live tasks.
    std::unordered_map<int, uarch::CpuSlot> target;
    for (std::size_t c = 0; c < alloc.size(); ++c) {
        const auto [a, b] = alloc[c];
        if (a == kNoTask && b == kNoTask) {
            if (require_full_pairs)
                throw std::runtime_error("bind_allocation: idle core in a closed system");
            continue;
        }
        if (a == b || a < 0 || (require_full_pairs && b < 0) || (b < 0 && b != kNoTask))
            throw std::runtime_error("bind_allocation: malformed pair");
        if (target.contains(a) || (b >= 0 && target.contains(b)))
            throw std::runtime_error("bind_allocation: task placed twice");
        target[a] = {.core = static_cast<int>(c), .slot = 0};
        if (b >= 0) target[b] = {.core = static_cast<int>(c), .slot = 1};
    }
    if (target.size() != live.size())
        throw std::runtime_error("bind_allocation: allocation must place every task once");

    // Count migrations (core changes) before rebinding.
    std::uint64_t migrations = 0;
    for (apps::AppInstance* task : live) {
        const int id = task->id();
        const auto it = target.find(id);
        if (it == target.end())
            throw std::runtime_error("bind_allocation: allocation missing a live task");
        if (chip.is_bound(id) && chip.placement(id).core != it->second.core) ++migrations;
    }

    // Rebind: unbind everything, then bind to the new placement.  The chip
    // only charges a cache-warmup penalty when the core actually changed.
    for (apps::AppInstance* task : live)
        if (chip.is_bound(task->id())) chip.unbind(task->id());
    for (apps::AppInstance* task : live) chip.bind(*task, target.at(task->id()));
    return migrations;
}

TaskObservation observe_task(const uarch::Chip& chip, apps::AppInstance& task,
                             int slot_index, const std::string& app_name,
                             const pmu::CounterBank& prev_bank) {
    TaskObservation o;
    o.task_id = task.id();
    o.slot_index = slot_index;
    o.app_name = app_name;
    const uarch::CpuSlot where = chip.placement(task.id());
    o.core = where.core;
    const auto& sibling = chip.core(where.core).slot(where.slot ^ 1);
    o.corunner_task_id = sibling.bound() ? sibling.task()->id() : -1;
    o.total_cores = chip.core_count();
    o.instance = &task;
    o.delta = task.counters().delta_since(prev_bank);
    o.breakdown = model::characterize(o.delta, chip.config().dispatch_width);
    return o;
}

double finish_fraction(std::uint64_t insts_prev, std::uint64_t insts_now,
                       std::uint64_t target) {
    const double progressed = static_cast<double>(insts_now - insts_prev);
    const double needed = static_cast<double>(target - insts_prev);
    return progressed > 0.0 ? needed / progressed : 1.0;
}

}  // namespace synpa::sched
