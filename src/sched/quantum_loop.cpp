#include "sched/quantum_loop.hpp"

#include <stdexcept>

#include "common/flat_map.hpp"
#include "model/categories.hpp"
#include "obs/trace.hpp"

namespace synpa::sched {

BindStats bind_allocation(uarch::Platform& platform, const CoreAllocation& alloc,
                          std::span<apps::AppInstance* const> live,
                          bool require_full_groups, obs::Tracer* tracer) {
    if (alloc.size() != static_cast<std::size_t>(platform.core_count()))
        throw std::runtime_error("bind_allocation: allocation does not cover every core");
    const int ways = platform.config().smt_ways;

    // Validate the allocation is a permutation of the live tasks.
    common::FlatIdMap<uarch::CpuSlot> target;
    for (std::size_t c = 0; c < alloc.size(); ++c) {
        const CoreGroup& g = alloc[c];
        const int occ = g.occupancy();
        if (occ > ways)
            throw std::runtime_error("bind_allocation: group exceeds the chip's SMT width");
        // Validate the kNoTask-padded tail first, before any early-out: a
        // task after a gap ({kNoTask, task, ...}) violates the occupied-
        // slots-first contract even when the group looks idle (occ == 0).
        for (int s = occ; s < uarch::kMaxSmtWays; ++s)
            if (g.tasks[static_cast<std::size_t>(s)] != kNoTask)
                throw std::runtime_error("bind_allocation: malformed group");
        if (occ == 0) {
            if (require_full_groups)
                throw std::runtime_error("bind_allocation: idle core in a closed system");
            continue;
        }
        if (require_full_groups && occ != ways)
            throw std::runtime_error("bind_allocation: underfilled core in a closed system");
        for (int s = 0; s < occ; ++s) {
            const int id = g.tasks[static_cast<std::size_t>(s)];
            if (id < 0) throw std::runtime_error("bind_allocation: malformed group");
            if (target.contains(id))
                throw std::runtime_error("bind_allocation: task placed twice");
            target[id] = {.core = static_cast<int>(c), .slot = s};
        }
    }
    if (target.size() != live.size())
        throw std::runtime_error("bind_allocation: allocation must place every task once");

    // Count migrations (core changes, with the cross-chip subset) before
    // rebinding.
    BindStats stats;
    const bool trace = tracer != nullptr && tracer->wants(obs::EventKind::kMigration);
    for (apps::AppInstance* task : live) {
        const int id = task->id();
        const uarch::CpuSlot* it = target.find(id);
        if (it == nullptr)
            throw std::runtime_error("bind_allocation: allocation missing a live task");
        if (!platform.is_bound(id)) continue;
        const uarch::CpuSlot old_slot = platform.placement(id);
        const int old_core = old_slot.core;
        const bool cross = platform.chip_of_core(old_core) != platform.chip_of_core(it->core);
        if (old_core != it->core) {
            ++stats.migrations;
            if (cross) ++stats.cross_chip;
        }
        if (trace && (old_core != it->core || old_slot.slot != it->slot)) {
            obs::TraceEvent e;
            e.kind = obs::EventKind::kMigration;
            e.quantum = tracer->quantum();
            e.task = id;
            e.core = it->core;
            e.b = old_core;
            e.a = old_core == it->core ? 0 : (cross ? 2 : 1);
            tracer->emit(std::move(e));
        }
    }

    // Rebind: unbind everything, then bind to the new placement.  The
    // platform only charges warmup penalties where the core (or chip)
    // actually changed.
    for (apps::AppInstance* task : live)
        if (platform.is_bound(task->id())) platform.unbind(task->id());
    for (apps::AppInstance* task : live) platform.bind(*task, target.at(task->id()));
    return stats;
}

TaskObservation observe_task(const uarch::Platform& platform, apps::AppInstance& task,
                             int slot_index, const std::string& app_name,
                             const pmu::CounterBank& prev_bank) {
    TaskObservation o;
    o.task_id = task.id();
    o.slot_index = slot_index;
    o.app_name = app_name;
    const uarch::CpuSlot where = platform.placement(task.id());
    o.core = where.core;
    o.chip = platform.chip_of_core(where.core);
    const uarch::SmtCore& core = platform.core(where.core);
    for (int s = 0; s < core.smt_ways(); ++s) {
        if (s == where.slot) continue;
        const auto& sibling = core.slot(s);
        if (sibling.bound()) o.corunner_task_ids.push_back(sibling.task()->id());
    }
    o.corunner_task_id = o.corunner_task_ids.empty() ? -1 : o.corunner_task_ids.front();
    o.smt_ways = platform.config().smt_ways;
    o.num_chips = platform.chip_count();
    o.total_cores = platform.core_count();
    o.instance = &task;
    o.delta = task.counters().delta_since(prev_bank);
    o.breakdown = model::characterize(o.delta, platform.config().dispatch_width);
    return o;
}

double finish_fraction(std::uint64_t insts_prev, std::uint64_t insts_now,
                       std::uint64_t target) {
    const double progressed = static_cast<double>(insts_now - insts_prev);
    const double needed = static_cast<double>(target - insts_prev);
    return progressed > 0.0 ? needed / progressed : 1.0;
}

}  // namespace synpa::sched
