#include "sched/registry.hpp"

#include <sstream>
#include <stdexcept>
#include <string>

namespace synpa::sched {
namespace {

// The single source of truth for the policy name set.  Keep one entry per
// line: tools/check_docs.py parses the quoted names between the begin/end
// markers and fails CI when docs/REFERENCE.md misses one.
// registry-table-begin
constexpr PolicyInfo kRegistry[] = {
    {"linux", "none (arrival order, never migrates)", false, false,
     "the paper's CFS-observed baseline"},
    {"random", "none (uniform regroup every quantum)", false, false,
     "churn baseline isolating informed grouping from mere migration"},
    {"sampling", "measured aggregate IPC (explore/exploit)", false, false,
     "Snavely&Tullsen-style symbiotic sampler"},
    {"oracle", "total slowdown (true phase vectors)", true, false,
     "upper bound using calibrated per-phase categories"},
    {"synpa", "total slowdown", true, false,
     "the paper's policy: invert, predict, min-weight matching (Blossom)"},
    {"synpa-dp", "total slowdown", true, false,
     "SYNPA with the exact subset-DP selector"},
    {"synpa-greedy", "total slowdown", true, false,
     "SYNPA with the greedy selector (ablation)"},
    {"synpa-stp", "throughput (STP)", true, false,
     "family variant minimizing summed throughput loss 1 - 1/s"},
    {"synpa-fair", "fairness (max slowdown)", true, false,
     "family variant minimizing the worst member (soft-max, s^4)"},
    {"synpa-tail", "turnaround tail", true, false,
     "family variant penalizing stragglers quadratically (s^2)"},
    {"synpa-adaptive", "total slowdown, phase-adaptive model", true, true,
     "SYNPA + CUSUM phase detection + incremental model retraining"},
};
// registry-table-end

const model::InterferenceModel& require_model(std::string_view name,
                                              const PolicyConfig& config) {
    if (!config.model)
        throw std::invalid_argument("make_policy(\"" + std::string(name) +
                                    "\"): PolicyConfig::model is required");
    return *config.model;
}

std::unique_ptr<AllocationPolicy> make_synpa(const PolicyConfig& config,
                                             std::string_view name,
                                             core::PairSelector selector,
                                             core::Objective objective) {
    core::SynpaPolicy::Options opts = config.synpa;
    opts.selector = selector;
    opts.objective = objective;
    return std::make_unique<core::SynpaPolicy>(require_model(name, config), opts);
}

}  // namespace

std::span<const PolicyInfo> registered_policies() { return kRegistry; }

const PolicyInfo* find_policy(std::string_view name) {
    for (const PolicyInfo& info : kRegistry)
        if (info.name == name) return &info;
    return nullptr;
}

std::unique_ptr<AllocationPolicy> make_policy(std::string_view name,
                                              const PolicyConfig& config) {
    using core::Objective;
    using core::PairSelector;
    if (name == "linux") return std::make_unique<LinuxPolicy>();
    if (name == "random") return std::make_unique<RandomPolicy>(config.seed);
    if (name == "sampling")
        return std::make_unique<SamplingPolicy>(config.seed, config.sampling);
    if (name == "oracle")
        return std::make_unique<OraclePolicy>(require_model(name, config),
                                              config.synpa.cross_chip_penalty);
    if (name == "synpa")
        return make_synpa(config, name, config.synpa.selector, Objective::kTotalSlowdown);
    if (name == "synpa-dp")
        return make_synpa(config, name, PairSelector::kSubsetDp, Objective::kTotalSlowdown);
    if (name == "synpa-greedy")
        return make_synpa(config, name, PairSelector::kGreedy, Objective::kTotalSlowdown);
    if (name == "synpa-stp")
        return make_synpa(config, name, config.synpa.selector, Objective::kThroughput);
    if (name == "synpa-fair")
        return make_synpa(config, name, config.synpa.selector, Objective::kFairness);
    if (name == "synpa-tail")
        return make_synpa(config, name, config.synpa.selector, Objective::kTail);
    if (name == "synpa-adaptive") {
        core::SynpaPolicy::Options opts = config.synpa;
        opts.objective = Objective::kTotalSlowdown;
        return std::make_unique<online::AdaptiveSynpaPolicy>(require_model(name, config),
                                                             opts, config.online);
    }

    std::ostringstream os;
    os << "make_policy: unknown policy '" << name << "'; registered:";
    for (const PolicyInfo& info : kRegistry) os << ' ' << info.name;
    throw std::invalid_argument(os.str());
}

}  // namespace synpa::sched
