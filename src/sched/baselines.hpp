// Baseline allocation policies.
//
//  * LinuxPolicy — the paper's comparison point: behaviour-unaware,
//    arrival-order grouping (tasks spread across cores, then double up),
//    never migrates; a relaunched application inherits its predecessor's
//    hardware thread.  This matches the CFS behaviour the paper observes
//    ("once allocated, an application remains in the core until its
//    execution finishes").
//  * RandomPolicy — regroups uniformly at random every quantum; isolates
//    how much of SYNPA's win is *informed* grouping rather than mere churn.
//  * OraclePolicy — upper bound: uses the true current-phase isolated
//    categories of every task (information no real policy has) with the
//    forward model and exact matching/grouping.  Requires calibrated
//    profiles (workloads::calibrate_suite).
#pragma once

#include <cstdint>
#include <memory>

#include "common/rng.hpp"
#include "matching/matching.hpp"
#include "model/interference_model.hpp"
#include "sched/policy.hpp"
#include "sched/topology.hpp"

namespace synpa::sched {

class LinuxPolicy final : public AllocationPolicy {
public:
    std::string name() const override { return "linux"; }
    // Inherits the arrival-order initial allocation and the keep-current
    // reallocation — exactly the baseline behaviour.
};

class RandomPolicy final : public AllocationPolicy {
public:
    explicit RandomPolicy(std::uint64_t seed) : rng_(seed, 0x7a2d) {}
    std::string name() const override { return "random"; }
    CoreAllocation reallocate(std::span<const TaskObservation> observations) override;

private:
    common::Rng rng_;
};

class OraclePolicy final : public AllocationPolicy {
public:
    /// `cross_chip_penalty` is the predicted-slowdown benefit a cross-chip
    /// move must exceed before the multi-chip balancing pass migrates a
    /// task (see sched/topology.hpp); irrelevant on one chip.
    explicit OraclePolicy(model::InterferenceModel model,
                          double cross_chip_penalty = kDefaultCrossChipPenalty);
    std::string name() const override { return "oracle"; }
    CoreAllocation reallocate(std::span<const TaskObservation> observations) override;

private:
    /// The single-chip decision on (possibly chip-localized) observations,
    /// with the matching truth vectors.
    CoreAllocation allocate_chip(std::span<const TaskObservation> observations,
                                 std::span<const model::CategoryVector> truth);

    model::InterferenceModel model_;
    double cross_chip_penalty_;
    matching::SubsetDpMatcher matcher_;
};

/// Sampling-based symbiotic scheduler in the spirit of Snavely & Tullsen
/// [7] (paper §II): instead of a model, it *measures* — it explores a few
/// random groupings for one quantum each, scores each configuration by the
/// aggregate IPC it delivered, then exploits the best one for a longer
/// window before re-sampling.  The paper's argument against this family is
/// the sampling overhead: every explored configuration costs a quantum of
/// potentially bad grouping, and the sample budget explodes with core count
/// (and even faster with SMT width).
class SamplingPolicy final : public AllocationPolicy {
public:
    struct Options {
        int explore_quanta = 6;   ///< sampled configurations per cycle
        int exploit_quanta = 40;  ///< quanta to run the winner before resampling
    };

    SamplingPolicy(std::uint64_t seed, Options opts)
        : rng_(seed, 0x5a31), opts_(opts) {}
    explicit SamplingPolicy(std::uint64_t seed) : SamplingPolicy(seed, Options()) {}

    std::string name() const override { return "sampling"; }
    CoreAllocation reallocate(std::span<const TaskObservation> observations) override;
    void on_task_replaced(int old_task_id, int new_task_id) override;

private:
    /// Grouping canonicalized to slot indices so it survives relaunches.
    using SlotGrouping = std::vector<std::vector<int>>;
    SlotGrouping random_grouping(std::size_t n, std::size_t width, std::size_t cores);

    common::Rng rng_;
    Options opts_;
    int phase_left_ = 0;          ///< quanta remaining in the current phase
    bool exploring_ = true;
    std::size_t sampled_n_ = 0;   ///< live-set size the groupings were sampled for
    SlotGrouping current_;        ///< configuration running this quantum
    SlotGrouping best_;
    double best_score_ = -1.0;
    int samples_taken_ = 0;
};

/// Maps chosen pairs onto cores, keeping each pair on a core one of its
/// members already occupies whenever possible (minimizes migrations).
/// SMT-2 convenience wrapper around place_groups; entries may be partial
/// ({task, kNoTask}); the result covers exactly `pairs.size()` cores.
CoreAllocation place_pairs(const std::vector<std::pair<int, int>>& pairs,
                           std::span<const TaskObservation> observations);

/// Spells pair entries as CoreGroups ({a}, {a, b}; kNoTask members are
/// skipped) — the bridge pair-based solvers use to reach place_groups now
/// that the deprecated pair-allocation converters are gone.
std::vector<CoreGroup> groups_from_pairs(const std::vector<std::pair<int, int>>& pairs);

/// Places chosen groups onto an explicit number of cores: each entry keeps
/// an incumbent core of one of its members when that core is free, the rest
/// fill the remaining cores in order, and left-over cores idle (empty
/// groups).  Throws when entries outnumber cores.
CoreAllocation place_groups(const std::vector<CoreGroup>& entries,
                            std::span<const TaskObservation> observations,
                            std::size_t cores);


}  // namespace synpa::sched
