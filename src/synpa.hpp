// Umbrella header: everything a downstream user of the SYNPA library needs.
//
// The library is organized as the paper is: src/core is the contribution
// (estimator + policy), everything else is the substrate it runs on.  See
// README.md for a walkthrough and examples/ for runnable programs.
#pragma once

#include "apps/instance.hpp"         // application instances (phase machines)
#include "apps/spec_suite.hpp"       // the 28 SPEC-named profiles
#include "core/estimator.hpp"        // runtime isolated-behaviour estimation
#include "core/synpa_policy.hpp"     // the SYNPA allocation policy
#include "exp/aggregators.hpp"       // streaming campaign aggregators
#include "exp/artifact_cache.hpp"    // memoized shared campaign inputs
#include "exp/campaign.hpp"          // the parallel campaign engine
#include "matching/matching.hpp"     // Blossom / subset-DP / brute-force matchers
#include "metrics/metrics.hpp"       // TT, fairness, IPC, pair statistics
#include "model/categories.hpp"      // three-step dispatch characterization
#include "model/interference_model.hpp"  // Equation 1
#include "model/inversion.hpp"       // SMT -> isolated inversion
#include "model/trainer.hpp"         // offline training pipeline
#include "pmu/perf_session.hpp"      // perf-like counter access
#include "sched/baselines.hpp"       // Linux / Random / Oracle / Sampling
#include "sched/thread_manager.hpp"  // the quantum-driven manager
#include "uarch/chip.hpp"            // the ThunderX2-class simulator
#include "workloads/methodology.hpp" // workloads + measurement methodology
