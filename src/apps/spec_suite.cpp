// Profiles for the 28 paper applications.
//
// Quick reference for reading the numbers (per 1000 dispatched instructions,
// with dispatch width 4 and the default latencies):
//   * full-dispatch cycles are fixed at 250 per kinst (N / W);
//   * dispatch cycles are 1000 / dispatch_demand, and the surplus over 250
//     is horizontal waste that the Step-3 characterization assigns to the
//     backend ("revealed" stalls);
//   * a memory episode stalls roughly (mem_latency - ROB/demand) cycles, and
//     only L2->LLC misses that also miss the LLC reach memory;
//   * a branch misprediction costs ~14 cycles of empty dispatch queue, an
//     ICache miss the service latency minus whatever the fetch buffer hides.
// The constants below were calibrated against the simulator so the isolated
// characterization lands in the paper's Table III groups (verified by
// tests/test_suite_calibration.cpp).
#include "apps/spec_suite.hpp"

// Profiles use partial designated initializers on purpose: unnamed fields
// take their documented defaults, and mono() fills in the phase name.
#pragma GCC diagnostic ignored "-Wmissing-field-initializers" 

#include <map>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

namespace synpa::apps {
namespace {

/// Single-phase application helper.
AppProfile mono(std::string name, PhaseParams p) {
    p.name = "main";
    AppProfile a;
    a.name = std::move(name);
    a.phases.push_back(std::move(p));
    validate_profile(a);
    return a;
}

/// Multi-phase application helper (phases visited cyclically).
AppProfile multi(std::string name, std::vector<PhaseParams> phases) {
    AppProfile a;
    a.name = std::move(name);
    a.phases = std::move(phases);
    validate_profile(a);
    return a;
}

std::vector<AppProfile> build_suite() {
    std::vector<AppProfile> suite;
    suite.reserve(28);

    // ---- Backend bound (Table III: backend stalls > 65%) -----------------
    suite.push_back(mono("mcf", {.dispatch_demand = 2.2,
                                 .fe_events_per_kinst = 2.0,
                                 .fe_branch_fraction = 0.7,
                                 .code_footprint_kb = 14,
                                 .be_events_per_kinst = 32,
                                 .l2_hit_fraction = 0.25,
                                 .llc_hit_fraction = 0.45,
                                 .mlp = 1.6,
                                 .data_footprint_l2_kb = 640,
                                 .data_footprint_llc_mb = 20,
                                 .dwell_insts_mean = 600'000}));
    suite.push_back(mono("lbm_r", {.dispatch_demand = 2.8,
                                   .fe_events_per_kinst = 1.0,
                                   .fe_branch_fraction = 0.5,
                                   .code_footprint_kb = 10,
                                   .be_events_per_kinst = 30,
                                   .l2_hit_fraction = 0.20,
                                   .llc_hit_fraction = 0.25,
                                   .mlp = 3.0,
                                   .data_footprint_l2_kb = 512,
                                   .data_footprint_llc_mb = 16,
                                   .dwell_insts_mean = 700'000}));
    suite.push_back(mono("cactuBSSN_r", {.dispatch_demand = 2.6,
                                         .fe_events_per_kinst = 2.0,
                                         .fe_branch_fraction = 0.4,
                                         .code_footprint_kb = 20,
                                         .be_events_per_kinst = 28,
                                         .l2_hit_fraction = 0.35,
                                         .llc_hit_fraction = 0.45,
                                         .mlp = 1.6,
                                         .data_footprint_l2_kb = 512,
                                         .data_footprint_llc_mb = 9,
                                         .dwell_insts_mean = 650'000}));
    suite.push_back(mono("milc", {.dispatch_demand = 2.5,
                                  .fe_events_per_kinst = 2.0,
                                  .fe_branch_fraction = 0.5,
                                  .code_footprint_kb = 12,
                                  .be_events_per_kinst = 30,
                                  .l2_hit_fraction = 0.30,
                                  .llc_hit_fraction = 0.40,
                                  .mlp = 2.0,
                                  .data_footprint_l2_kb = 512,
                                  .data_footprint_llc_mb = 12,
                                  .dwell_insts_mean = 550'000}));
    suite.push_back(multi("xalancbmk_r",
                          {{.name = "traverse",
                            .dispatch_demand = 2.4,
                            .fe_events_per_kinst = 6.0,
                            .fe_branch_fraction = 0.6,
                            .code_footprint_kb = 40,
                            .be_events_per_kinst = 30,
                            .l2_hit_fraction = 0.40,
                            .llc_hit_fraction = 0.42,
                            .mlp = 1.3,
                            .data_footprint_l2_kb = 448,
                            .data_footprint_llc_mb = 7,
                            .dwell_insts_mean = 550'000},
                           {.name = "transform",
                            .dispatch_demand = 2.5,
                            .fe_events_per_kinst = 9.0,
                            .fe_branch_fraction = 0.6,
                            .code_footprint_kb = 44,
                            .be_events_per_kinst = 24,
                            .l2_hit_fraction = 0.45,
                            .llc_hit_fraction = 0.45,
                            .mlp = 1.3,
                            .data_footprint_l2_kb = 384,
                            .data_footprint_llc_mb = 6,
                            .dwell_insts_mean = 300'000}}));
    suite.push_back(mono("wrf_r", {.dispatch_demand = 2.7,
                                   .fe_events_per_kinst = 3.0,
                                   .fe_branch_fraction = 0.5,
                                   .code_footprint_kb = 26,
                                   .be_events_per_kinst = 30,
                                   .l2_hit_fraction = 0.35,
                                   .llc_hit_fraction = 0.45,
                                   .mlp = 1.8,
                                   .data_footprint_l2_kb = 448,
                                   .data_footprint_llc_mb = 10,
                                   .dwell_insts_mean = 600'000}));

    // ---- Frontend bound (Table III: frontend stalls > 35%) ---------------
    // leela_r alternates a branchy game-tree-search phase with a
    // memory-touching evaluation phase; the paper's Figure 7 shows exactly
    // this FE/BE alternation at runtime.
    suite.push_back(multi("leela_r",
                          {{.name = "search",
                            .dispatch_demand = 2.3,
                            .fe_events_per_kinst = 34,
                            .fe_branch_fraction = 0.75,
                            .icache_l2_fraction = 0.8,
                            .code_footprint_kb = 26,
                            .be_events_per_kinst = 3.0,
                            .l2_hit_fraction = 0.6,
                            .llc_hit_fraction = 0.7,
                            .mlp = 1.2,
                            .data_footprint_l2_kb = 96,
                            .data_footprint_llc_mb = 1,
                            .dwell_insts_mean = 700'000},
                           {.name = "eval",
                            .dispatch_demand = 2.5,
                            .fe_events_per_kinst = 10,
                            .fe_branch_fraction = 0.6,
                            .icache_l2_fraction = 0.85,
                            .code_footprint_kb = 18,
                            .be_events_per_kinst = 16,
                            .l2_hit_fraction = 0.45,
                            .llc_hit_fraction = 0.6,
                            .mlp = 1.4,
                            .data_footprint_l2_kb = 320,
                            .data_footprint_llc_mb = 4,
                            .dwell_insts_mean = 300'000}}));
    suite.push_back(multi("gobmk",
                          {{.name = "pattern",
                            .dispatch_demand = 2.2,
                            .fe_events_per_kinst = 34,
                            .fe_branch_fraction = 0.7,
                            .icache_l2_fraction = 0.7,
                            .code_footprint_kb = 38,
                            .be_events_per_kinst = 5,
                            .l2_hit_fraction = 0.5,
                            .llc_hit_fraction = 0.6,
                            .mlp = 1.2,
                            .data_footprint_l2_kb = 128,
                            .data_footprint_llc_mb = 1.5,
                            .dwell_insts_mean = 500'000},
                           {.name = "life",
                            .dispatch_demand = 2.3,
                            .fe_events_per_kinst = 26,
                            .fe_branch_fraction = 0.75,
                            .icache_l2_fraction = 0.75,
                            .code_footprint_kb = 34,
                            .be_events_per_kinst = 8,
                            .l2_hit_fraction = 0.5,
                            .llc_hit_fraction = 0.55,
                            .mlp = 1.2,
                            .data_footprint_l2_kb = 160,
                            .data_footprint_llc_mb = 2,
                            .dwell_insts_mean = 400'000}}));
    // astar flips between a branchy pathfinding phase and a pointer-chasing
    // map phase (Table V shows it acting backend-bound ~45% of the time
    // when co-scheduled with leela_r).
    suite.push_back(multi("astar",
                          {{.name = "search",
                            .dispatch_demand = 2.4,
                            .fe_events_per_kinst = 38,
                            .fe_branch_fraction = 0.7,
                            .icache_l2_fraction = 0.8,
                            .code_footprint_kb = 24,
                            .be_events_per_kinst = 4,
                            .l2_hit_fraction = 0.55,
                            .llc_hit_fraction = 0.6,
                            .mlp = 1.2,
                            .data_footprint_l2_kb = 128,
                            .data_footprint_llc_mb = 1.5,
                            .dwell_insts_mean = 650'000},
                           {.name = "map",
                            .dispatch_demand = 2.4,
                            .fe_events_per_kinst = 10,
                            .fe_branch_fraction = 0.6,
                            .icache_l2_fraction = 0.85,
                            .code_footprint_kb = 18,
                            .be_events_per_kinst = 18,
                            .l2_hit_fraction = 0.45,
                            .llc_hit_fraction = 0.5,
                            .mlp = 1.4,
                            .data_footprint_l2_kb = 384,
                            .data_footprint_llc_mb = 5,
                            .dwell_insts_mean = 350'000}}));
    suite.push_back(multi("mcf_r",
                          {{.name = "simplex",
                            .dispatch_demand = 2.3,
                            .fe_events_per_kinst = 28,
                            .fe_branch_fraction = 0.45,
                            .icache_l2_fraction = 0.6,
                            .code_footprint_kb = 44,
                            .be_events_per_kinst = 10,
                            .l2_hit_fraction = 0.45,
                            .llc_hit_fraction = 0.55,
                            .mlp = 1.4,
                            .data_footprint_l2_kb = 256,
                            .data_footprint_llc_mb = 4,
                            .dwell_insts_mean = 600'000},
                           {.name = "network",
                            .dispatch_demand = 2.3,
                            .fe_events_per_kinst = 14,
                            .fe_branch_fraction = 0.5,
                            .icache_l2_fraction = 0.7,
                            .code_footprint_kb = 32,
                            .be_events_per_kinst = 16,
                            .l2_hit_fraction = 0.4,
                            .llc_hit_fraction = 0.5,
                            .mlp = 1.4,
                            .data_footprint_l2_kb = 384,
                            .data_footprint_llc_mb = 6,
                            .dwell_insts_mean = 300'000}}));
    suite.push_back(mono("perlbench", {.dispatch_demand = 2.5,
                                       .fe_events_per_kinst = 28,
                                       .fe_branch_fraction = 0.35,
                                       .icache_l2_fraction = 0.5,
                                       .code_footprint_kb = 72,
                                       .be_events_per_kinst = 7,
                                       .l2_hit_fraction = 0.55,
                                       .llc_hit_fraction = 0.65,
                                       .mlp = 1.5,
                                       .data_footprint_l2_kb = 192,
                                       .data_footprint_llc_mb = 2,
                                       .dwell_insts_mean = 500'000}));

    // ---- Others (Table III: the remaining 17) ------------------------------
    // hmmer anchors the low end of the full-dispatch range (~20%), nab_r the
    // high end (~61%); the rest spread in between.
    suite.push_back(mono("hmmer", {.dispatch_demand = 2.2,
                                   .fe_events_per_kinst = 18,
                                   .fe_branch_fraction = 0.6,
                                   .code_footprint_kb = 22,
                                   .be_events_per_kinst = 17,
                                   .l2_hit_fraction = 0.50,
                                   .llc_hit_fraction = 0.45,
                                   .mlp = 1.4,
                                   .data_footprint_l2_kb = 320,
                                   .data_footprint_llc_mb = 4,
                                   .dwell_insts_mean = 500'000}));
    suite.push_back(mono("nab_r", {.dispatch_demand = 3.1,
                                   .fe_events_per_kinst = 2,
                                   .fe_branch_fraction = 0.6,
                                   .code_footprint_kb = 12,
                                   .be_events_per_kinst = 7,
                                   .l2_hit_fraction = 0.6,
                                   .llc_hit_fraction = 0.7,
                                   .mlp = 1.5,
                                   .data_footprint_l2_kb = 160,
                                   .data_footprint_llc_mb = 1.5,
                                   .dwell_insts_mean = 600'000}));
    suite.push_back(mono("bwaves", {.dispatch_demand = 3.0,
                                    .fe_events_per_kinst = 2,
                                    .fe_branch_fraction = 0.5,
                                    .code_footprint_kb = 12,
                                    .be_events_per_kinst = 16,
                                    .l2_hit_fraction = 0.5,
                                    .llc_hit_fraction = 0.45,
                                    .mlp = 2.8,
                                    .data_footprint_l2_kb = 384,
                                    .data_footprint_llc_mb = 7,
                                    .dwell_insts_mean = 650'000}));
    suite.push_back(mono("calculix", {.dispatch_demand = 3.1,
                                      .fe_events_per_kinst = 5,
                                      .fe_branch_fraction = 0.55,
                                      .code_footprint_kb = 18,
                                      .be_events_per_kinst = 12,
                                      .l2_hit_fraction = 0.55,
                                      .llc_hit_fraction = 0.5,
                                      .mlp = 2.0,
                                      .data_footprint_l2_kb = 256,
                                      .data_footprint_llc_mb = 3,
                                      .dwell_insts_mean = 550'000}));
    suite.push_back(multi("cam4_r",
                          {{.name = "physics",
                            .dispatch_demand = 2.6,
                            .fe_events_per_kinst = 16,
                            .fe_branch_fraction = 0.5,
                            .icache_l2_fraction = 0.7,
                            .code_footprint_kb = 40,
                            .be_events_per_kinst = 9,
                            .l2_hit_fraction = 0.5,
                            .llc_hit_fraction = 0.55,
                            .mlp = 1.6,
                            .data_footprint_l2_kb = 256,
                            .data_footprint_llc_mb = 3.5,
                            .dwell_insts_mean = 500'000},
                           {.name = "dynamics",
                            .dispatch_demand = 2.8,
                            .fe_events_per_kinst = 6,
                            .fe_branch_fraction = 0.5,
                            .icache_l2_fraction = 0.8,
                            .code_footprint_kb = 24,
                            .be_events_per_kinst = 14,
                            .l2_hit_fraction = 0.5,
                            .llc_hit_fraction = 0.5,
                            .mlp = 1.8,
                            .data_footprint_l2_kb = 320,
                            .data_footprint_llc_mb = 5,
                            .dwell_insts_mean = 400'000}}));
    suite.push_back(mono("deepsjeng_r", {.dispatch_demand = 2.6,
                                         .fe_events_per_kinst = 18,
                                         .fe_branch_fraction = 0.7,
                                         .code_footprint_kb = 26,
                                         .be_events_per_kinst = 8,
                                         .l2_hit_fraction = 0.5,
                                         .llc_hit_fraction = 0.55,
                                         .mlp = 1.3,
                                         .data_footprint_l2_kb = 192,
                                         .data_footprint_llc_mb = 2.5,
                                         .dwell_insts_mean = 450'000}));
    suite.push_back(mono("exchange2_r", {.dispatch_demand = 3.0,
                                         .fe_events_per_kinst = 10,
                                         .fe_branch_fraction = 0.85,
                                         .code_footprint_kb = 16,
                                         .be_events_per_kinst = 2,
                                         .l2_hit_fraction = 0.7,
                                         .llc_hit_fraction = 0.8,
                                         .mlp = 1.2,
                                         .data_footprint_l2_kb = 64,
                                         .data_footprint_llc_mb = 0.5,
                                         .dwell_insts_mean = 600'000}));
    suite.push_back(mono("fotonik3d_r", {.dispatch_demand = 2.9,
                                         .fe_events_per_kinst = 3,
                                         .fe_branch_fraction = 0.5,
                                         .code_footprint_kb = 14,
                                         .be_events_per_kinst = 18,
                                         .l2_hit_fraction = 0.45,
                                         .llc_hit_fraction = 0.45,
                                         .mlp = 2.6,
                                         .data_footprint_l2_kb = 384,
                                         .data_footprint_llc_mb = 8,
                                         .dwell_insts_mean = 600'000}));
    suite.push_back(mono("imagick_r", {.dispatch_demand = 3.1,
                                       .fe_events_per_kinst = 5,
                                       .fe_branch_fraction = 0.6,
                                       .code_footprint_kb = 18,
                                       .be_events_per_kinst = 12,
                                       .l2_hit_fraction = 0.55,
                                       .llc_hit_fraction = 0.55,
                                       .mlp = 2.2,
                                       .data_footprint_l2_kb = 256,
                                       .data_footprint_llc_mb = 3,
                                       .dwell_insts_mean = 500'000}));
    suite.push_back(mono("namd_r", {.dispatch_demand = 3.0,
                                    .fe_events_per_kinst = 6,
                                    .fe_branch_fraction = 0.55,
                                    .code_footprint_kb = 20,
                                    .be_events_per_kinst = 12,
                                    .l2_hit_fraction = 0.55,
                                    .llc_hit_fraction = 0.55,
                                    .mlp = 2.0,
                                    .data_footprint_l2_kb = 256,
                                    .data_footprint_llc_mb = 3,
                                    .dwell_insts_mean = 550'000}));
    suite.push_back(multi("omnetpp_r",
                          {{.name = "event-loop",
                            .dispatch_demand = 2.5,
                            .fe_events_per_kinst = 10,
                            .fe_branch_fraction = 0.55,
                            .icache_l2_fraction = 0.7,
                            .code_footprint_kb = 36,
                            .be_events_per_kinst = 16,
                            .l2_hit_fraction = 0.4,
                            .llc_hit_fraction = 0.55,
                            .mlp = 1.3,
                            .data_footprint_l2_kb = 384,
                            .data_footprint_llc_mb = 5,
                            .dwell_insts_mean = 450'000},
                           {.name = "stats",
                            .dispatch_demand = 2.6,
                            .fe_events_per_kinst = 8,
                            .fe_branch_fraction = 0.5,
                            .icache_l2_fraction = 0.8,
                            .code_footprint_kb = 28,
                            .be_events_per_kinst = 12,
                            .l2_hit_fraction = 0.5,
                            .llc_hit_fraction = 0.6,
                            .mlp = 1.4,
                            .data_footprint_l2_kb = 256,
                            .data_footprint_llc_mb = 3.5,
                            .dwell_insts_mean = 300'000}}));
    suite.push_back(mono("parest_r", {.dispatch_demand = 2.8,
                                      .fe_events_per_kinst = 5,
                                      .fe_branch_fraction = 0.5,
                                      .code_footprint_kb = 22,
                                      .be_events_per_kinst = 13,
                                      .l2_hit_fraction = 0.5,
                                      .llc_hit_fraction = 0.55,
                                      .mlp = 1.7,
                                      .data_footprint_l2_kb = 288,
                                      .data_footprint_llc_mb = 4,
                                      .dwell_insts_mean = 500'000}));
    suite.push_back(mono("povray_r", {.dispatch_demand = 2.9,
                                      .fe_events_per_kinst = 11,
                                      .fe_branch_fraction = 0.75,
                                      .code_footprint_kb = 26,
                                      .be_events_per_kinst = 4,
                                      .l2_hit_fraction = 0.6,
                                      .llc_hit_fraction = 0.7,
                                      .mlp = 1.3,
                                      .data_footprint_l2_kb = 96,
                                      .data_footprint_llc_mb = 1,
                                      .dwell_insts_mean = 550'000}));
    suite.push_back(mono("roms_r", {.dispatch_demand = 2.9,
                                    .fe_events_per_kinst = 4,
                                    .fe_branch_fraction = 0.5,
                                    .code_footprint_kb = 16,
                                    .be_events_per_kinst = 13,
                                    .l2_hit_fraction = 0.5,
                                    .llc_hit_fraction = 0.5,
                                    .mlp = 2.4,
                                    .data_footprint_l2_kb = 320,
                                    .data_footprint_llc_mb = 6,
                                    .dwell_insts_mean = 600'000}));
    suite.push_back(mono("tonto", {.dispatch_demand = 3.0,
                                   .fe_events_per_kinst = 9,
                                   .fe_branch_fraction = 0.6,
                                   .code_footprint_kb = 24,
                                   .be_events_per_kinst = 9,
                                   .l2_hit_fraction = 0.55,
                                   .llc_hit_fraction = 0.6,
                                   .mlp = 1.6,
                                   .data_footprint_l2_kb = 192,
                                   .data_footprint_llc_mb = 2,
                                   .dwell_insts_mean = 500'000}));
    suite.push_back(mono("blender_r", {.dispatch_demand = 2.9,
                                       .fe_events_per_kinst = 11,
                                       .fe_branch_fraction = 0.6,
                                       .code_footprint_kb = 30,
                                       .be_events_per_kinst = 8,
                                       .l2_hit_fraction = 0.55,
                                       .llc_hit_fraction = 0.6,
                                       .mlp = 1.5,
                                       .data_footprint_l2_kb = 192,
                                       .data_footprint_llc_mb = 2.5,
                                       .dwell_insts_mean = 500'000}));
    suite.push_back(mono("bzip2", {.dispatch_demand = 2.6,
                                   .fe_events_per_kinst = 7,
                                   .fe_branch_fraction = 0.65,
                                   .code_footprint_kb = 14,
                                   .be_events_per_kinst = 10,
                                   .l2_hit_fraction = 0.55,
                                   .llc_hit_fraction = 0.7,
                                   .mlp = 1.6,
                                   .data_footprint_l2_kb = 256,
                                   .data_footprint_llc_mb = 3,
                                   .dwell_insts_mean = 450'000}));

    return suite;
}

}  // namespace

std::vector<AppProfile>& spec_suite() {
    static std::vector<AppProfile> suite = build_suite();
    return suite;
}

const AppProfile& find_app(std::string_view name) {
    static const std::unordered_map<std::string_view, std::size_t> index = [] {
        std::unordered_map<std::string_view, std::size_t> m;
        const auto& suite = spec_suite();
        for (std::size_t i = 0; i < suite.size(); ++i) m.emplace(suite[i].name, i);
        return m;
    }();
    const auto it = index.find(name);
    if (it != index.end()) return spec_suite()[it->second];

    // "app:phase" pins a multi-phase suite application to one of its phases
    // (pair_explorer and the pair campaigns use this to measure phase-level
    // slowdown matrices).  Synthesized clones are cached so callers get a
    // stable reference, like suite lookups.
    const auto colon = name.find(':');
    if (colon != std::string_view::npos) {
        static std::map<std::string, AppProfile, std::less<>> pinned;
        static std::mutex mutex;
        const std::lock_guard lock(mutex);
        const auto pit = pinned.find(name);
        if (pit != pinned.end()) return pit->second;
        const AppProfile& base = find_app(name.substr(0, colon));
        const std::string_view phase = name.substr(colon + 1);
        for (std::size_t p = 0; p < base.phases.size(); ++p) {
            if (base.phases[p].name != phase) continue;
            AppProfile clone;
            clone.name = std::string(name);
            clone.phases = {base.phases[p]};
            if (p < base.phase_categories.size())
                clone.phase_categories = {base.phase_categories[p]};
            return pinned.emplace(std::string(name), std::move(clone)).first->second;
        }
        throw std::out_of_range("find_app: unknown phase '" + std::string(phase) + "' of " +
                                base.name);
    }
    throw std::out_of_range("find_app: unknown application '" + std::string(name) + "'");
}

bool has_app(std::string_view name) {
    const auto& suite = spec_suite();
    for (const auto& app : suite)
        if (app.name == name) return true;
    return false;
}

}  // namespace synpa::apps
