#include "apps/instance.hpp"

namespace synpa::apps {

AppInstance::AppInstance(int id, const AppProfile& profile, std::uint64_t seed)
    : id_(id),
      profile_(&profile),
      phase_rng_(seed, common::hash_string(profile.name), 0x9a5e),
      fe_rng_(seed, common::hash_string(profile.name), 0xfe),
      be_rng_(seed, common::hash_string(profile.name), 0xbe) {
    enter_phase(0);
}

void AppInstance::enter_phase(std::size_t idx) noexcept {
    phase_idx_ = idx % profile_->phases.size();
    const double mean = profile_->phases[phase_idx_].dwell_insts_mean;
    // Geometric dwell with a floor so a phase is never degenerate.
    const double drawn = phase_rng_.exponential(mean);
    phase_insts_left_ = static_cast<std::uint64_t>(drawn < mean * 0.1 ? mean * 0.1 : drawn);
}

void AppInstance::retire(std::uint64_t n) noexcept {
    insts_retired_ += n;
    if (warmup_left_ > 0) warmup_left_ = warmup_left_ > n ? warmup_left_ - n : 0;
    if (profile_->phases.size() > 1) {
        while (n >= phase_insts_left_) {
            n -= phase_insts_left_;
            enter_phase(phase_idx_ + 1);
        }
        phase_insts_left_ -= n;
    }
}

void AppInstance::start_warmup(std::uint64_t insts, double multiplier) noexcept {
    // A weaker window never truncates a stronger one still in effect: a
    // same-chip core move after a cross-chip migration must not erase the
    // remaining cross-chip penalty (caches are no warmer for having moved
    // again).  "Stronger" is the remaining penalized area — the integral
    // of (multiplier - 1) over the linear decay — so the comparison stays
    // correct even late in a long window, when its decayed multiplier has
    // dropped below a short window's peak.  Same-shape restarts (the
    // common re-migration case) always adopt the fresh window, as before.
    const double peak = multiplier < 1.0 ? 1.0 : multiplier;
    const double remaining =
        (warmup_multiplier() - 1.0) * static_cast<double>(warmup_left_) / 2.0;
    const double proposed = (peak - 1.0) * static_cast<double>(insts) / 2.0;
    if (proposed < remaining) return;
    warmup_total_ = insts;
    warmup_left_ = insts;
    warmup_peak_ = peak;
}

double AppInstance::warmup_multiplier() const noexcept {
    if (warmup_left_ == 0 || warmup_total_ == 0) return 1.0;
    const double frac = static_cast<double>(warmup_left_) / static_cast<double>(warmup_total_);
    return 1.0 + (warmup_peak_ - 1.0) * frac;
}

}  // namespace synpa::apps
