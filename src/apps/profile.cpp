#include "apps/profile.hpp"

#include <stdexcept>

namespace synpa::apps {
namespace {

void require(bool cond, const std::string& app, const std::string& what) {
    if (!cond) throw std::invalid_argument("AppProfile '" + app + "': " + what);
}

}  // namespace

void validate_profile(const AppProfile& profile) {
    require(!profile.name.empty(), profile.name, "empty name");
    require(!profile.phases.empty(), profile.name, "no phases");
    for (const PhaseParams& p : profile.phases) {
        require(p.dispatch_demand > 0.0 && p.dispatch_demand <= 4.0, profile.name,
                "dispatch_demand out of (0,4]: " + p.name);
        require(p.fe_events_per_kinst >= 0.0, profile.name, "negative FE rate: " + p.name);
        require(p.be_events_per_kinst >= 0.0, profile.name, "negative BE rate: " + p.name);
        require(p.fe_branch_fraction >= 0.0 && p.fe_branch_fraction <= 1.0, profile.name,
                "fe_branch_fraction outside [0,1]: " + p.name);
        require(p.icache_l2_fraction >= 0.0 && p.icache_l2_fraction <= 1.0, profile.name,
                "icache_l2_fraction outside [0,1]: " + p.name);
        require(p.l2_hit_fraction >= 0.0 && p.l2_hit_fraction <= 1.0, profile.name,
                "l2_hit_fraction outside [0,1]: " + p.name);
        require(p.llc_hit_fraction >= 0.0 && p.llc_hit_fraction <= 1.0, profile.name,
                "llc_hit_fraction outside [0,1]: " + p.name);
        require(p.mlp >= 1.0, profile.name, "mlp below 1: " + p.name);
        require(p.code_footprint_kb >= 0.0, profile.name, "negative code footprint: " + p.name);
        require(p.data_footprint_l2_kb >= 0.0, profile.name, "negative L2 footprint: " + p.name);
        require(p.data_footprint_llc_mb >= 0.0, profile.name, "negative LLC footprint: " + p.name);
        require(p.dwell_insts_mean > 0.0, profile.name, "non-positive dwell: " + p.name);
    }
}

}  // namespace synpa::apps
