// Application behaviour profiles.
//
// SPEC CPU binaries and inputs are proprietary, and SYNPA never looks at
// code anyway — it only observes dispatch-stage counter behaviour.  Each
// paper application is therefore modelled as a sequence of *phases*, each a
// vector of microarchitectural demand parameters (dispatch ILP, frontend
// event rates, data-miss rates and levels, memory-level parallelism,
// working-set footprints).  The SMT core turns those demands into cycles,
// stalls and counter values mechanistically, so inter-thread interference
// emerges from resource arbitration instead of being scripted.
//
// Phase dwell is expressed in *instructions* (progress), not wall time, so
// an application's intrinsic behaviour is identical under every scheduling
// policy and slowdown only changes how long a phase takes — exactly the
// property the paper's instruction-count alignment relies on (§IV-C).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace synpa::apps {

/// Demand parameters for one execution phase.
struct PhaseParams {
    std::string name;

    /// Instructions the application can dispatch per cycle when nothing
    /// stalls (limited by its intrinsic ILP); in (0, dispatch_width].
    double dispatch_demand = 3.0;

    // ---- frontend --------------------------------------------------------
    /// Frontend events (ICache misses + branch mispredictions) per 1000
    /// dispatched instructions.
    double fe_events_per_kinst = 5.0;
    /// Fraction of frontend events that are branch mispredictions (these
    /// flush the fetch buffer); the rest are ICache misses.
    double fe_branch_fraction = 0.5;
    /// Fraction of ICache misses served by the L2 (rest go to the LLC).
    double icache_l2_fraction = 0.85;
    /// Instruction working set in KB (contends for the shared 32 KB L1I).
    double code_footprint_kb = 16.0;

    // ---- backend ---------------------------------------------------------
    /// Long-latency data events (loads missing the L1D) per 1000
    /// dispatched instructions.
    double be_events_per_kinst = 8.0;
    /// Isolated fraction of those events served by the per-core L2.
    double l2_hit_fraction = 0.5;
    /// Isolated fraction of L2 misses served by the shared LLC.
    double llc_hit_fraction = 0.6;
    /// Memory-level parallelism: overlapped misses per stall episode.
    double mlp = 1.5;
    /// Data working set competing for the per-core L2, in KB.
    double data_footprint_l2_kb = 128.0;
    /// Data working set competing for the chip LLC, in MB.
    double data_footprint_llc_mb = 2.0;

    // ---- phase machine ----------------------------------------------------
    /// Expected phase duration in dispatched instructions.
    double dwell_insts_mean = 400'000.0;
};

/// A named application: one or more phases visited cyclically with
/// geometrically distributed dwell.
struct AppProfile {
    std::string name;
    std::vector<PhaseParams> phases;

    /// Isolated three-category fractions per phase (full-dispatch, frontend,
    /// backend), filled in by calibration (see workloads::calibrate_suite);
    /// empty until then.  Used by the Oracle policy and by tests.
    std::vector<std::array<double, 3>> phase_categories;

    const PhaseParams& phase(std::size_t idx) const { return phases.at(idx % phases.size()); }
    std::size_t phase_count() const noexcept { return phases.size(); }
};

/// Validates profile invariants (rates non-negative, fractions in [0,1],
/// demand within (0, 4], at least one phase).  Throws on violation.
void validate_profile(const AppProfile& profile);

}  // namespace synpa::apps
