// A running application: profile + architectural progress + private
// randomness + PMU counters.
//
// The instance owns everything that must *follow the task* across core
// migrations: its phase position, retired-instruction count, its RNG
// streams, its counter bank (perf counts per task), and the post-migration
// cache-warmup state.
//
// Randomness is split into three independent streams — phase dwell,
// frontend events, backend events — each consumed in instruction order.
// This guarantees that the *same* application (same seed) visits the same
// phase boundaries at the same instruction counts whether it runs isolated
// or in SMT, which is exactly the alignment property the paper's
// instruction-count mapping (§IV-C) relies on.  Streams are keyed by
// (seed, profile name), never by task id, so a profiling run and a
// workload run of the same app can share behaviour.
#pragma once

#include <cstdint>

#include "apps/profile.hpp"
#include "common/rng.hpp"
#include "pmu/counters.hpp"

namespace synpa::apps {

class AppInstance {
public:
    /// `id` must be unique within a simulation (used for task registry and
    /// placement); `seed` fully determines the behaviour streams.
    AppInstance(int id, const AppProfile& profile, std::uint64_t seed);

    int id() const noexcept { return id_; }
    const AppProfile& profile() const noexcept { return *profile_; }
    const PhaseParams& phase() const noexcept { return profile_->phases[phase_idx_]; }
    std::size_t phase_index() const noexcept { return phase_idx_; }
    std::uint64_t insts_retired() const noexcept { return insts_retired_; }

    /// Advances architectural state by `n` dispatched instructions,
    /// including the phase machine and warmup decay.
    void retire(std::uint64_t n) noexcept;

    /// Frontend event randomness (gap, branch/ICache split, miss level).
    common::Rng& fe_rng() noexcept { return fe_rng_; }
    /// Backend event randomness (gap, data miss level).
    common::Rng& be_rng() noexcept { return be_rng_; }

    pmu::CounterBank& counters() noexcept { return counters_; }
    const pmu::CounterBank& counters() const noexcept { return counters_; }

    /// Begins a cold-cache window after a migration: miss rates are
    /// multiplied by up to `multiplier`, decaying linearly over `insts`.
    /// Ignored while a stronger window — larger remaining penalized area —
    /// is still in effect (a cheap local move must not truncate a live
    /// cross-chip penalty, however far that window has decayed).
    void start_warmup(std::uint64_t insts, double multiplier) noexcept;

    /// Current cold-cache miss multiplier (1.0 once warm).
    double warmup_multiplier() const noexcept;

private:
    void enter_phase(std::size_t idx) noexcept;

    int id_;
    const AppProfile* profile_;
    common::Rng phase_rng_;
    common::Rng fe_rng_;
    common::Rng be_rng_;
    std::uint64_t insts_retired_ = 0;

    std::size_t phase_idx_ = 0;
    std::uint64_t phase_insts_left_ = 0;

    std::uint64_t warmup_total_ = 0;
    std::uint64_t warmup_left_ = 0;
    double warmup_peak_ = 1.0;

    pmu::CounterBank counters_;
};

}  // namespace synpa::apps
