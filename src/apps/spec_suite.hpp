// The 28 applications studied in the paper (SPEC CPU 2006/2017 mix),
// reconstructed as synthetic behaviour profiles.
//
// Parameters are calibrated so that the isolated dispatch-stage
// characterization reproduces the paper's Table III grouping and Figure 4
// spread:
//   * backend bound  (BE stalls > 65%): cactuBSSN_r, lbm_r, mcf, milc,
//                                       xalancbmk_r, wrf_r
//   * frontend bound (FE stalls > 35%): astar, gobmk, leela_r, mcf_r,
//                                       perlbench
//   * Others: full-dispatch fraction ranging from ~20% (hmmer) to ~61%
//             (nab_r)
// leela_r (and a few others) are multi-phase so they alternate frontend and
// backend behaviour at runtime — the property SYNPA exploits dynamically in
// the paper's Figure 7 / Table V analysis.
#pragma once

#include <string_view>
#include <vector>

#include "apps/profile.hpp"

namespace synpa::apps {

/// The full 28-application suite, in a fixed canonical order.
/// The returned reference is to an immutable function-local static EXCEPT
/// that workloads::calibrate_suite() fills in phase_categories once.
std::vector<AppProfile>& spec_suite();

/// Looks an application up by name; throws std::out_of_range when missing.
/// "app:phase" resolves to a synthesized single-phase pin of a multi-phase
/// suite application (e.g. "leela_r:search").
const AppProfile& find_app(std::string_view name);

/// True when `name` names one of the 28 suite applications.
bool has_app(std::string_view name);

}  // namespace synpa::apps
