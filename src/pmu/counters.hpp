// Per-hardware-thread performance counter banks.
//
// The simulator increments these as it retires cycles/instructions; readers
// (the thread manager, the trainer) snapshot and difference them exactly as
// a perf-based prototype would read ARMv8.1 PMU registers.
#pragma once

#include <array>
#include <cstdint>

#include "pmu/events.hpp"

namespace synpa::pmu {

/// Raw counter values for one hardware thread (one per Event).
class CounterBank {
public:
    void increment(Event e, std::uint64_t by = 1) noexcept {
        values_[event_index(e)] += by;
    }
    std::uint64_t value(Event e) const noexcept { return values_[event_index(e)]; }
    void reset() noexcept { values_.fill(0); }

    /// Difference against a previous snapshot (counter deltas for a quantum).
    CounterBank delta_since(const CounterBank& earlier) const noexcept {
        CounterBank d;
        for (std::size_t i = 0; i < kEventCount; ++i)
            d.values_[i] = values_[i] - earlier.values_[i];
        return d;
    }

    CounterBank& operator+=(const CounterBank& other) noexcept {
        for (std::size_t i = 0; i < kEventCount; ++i) values_[i] += other.values_[i];
        return *this;
    }

private:
    std::array<std::uint64_t, kEventCount> values_{};
};

}  // namespace synpa::pmu
