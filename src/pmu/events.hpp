// ARMv8.1 PMU event model (paper Table I).
//
// SYNPA needs exactly four architectural events per hardware thread:
// CPU_CYCLES, INST_SPEC, STALL_FRONTEND and STALL_BACKEND.  The simulator
// additionally exposes the finer-grained backend/frontend events that the
// paper's discarded ten-category model used (ROB-full, IQ-full, cache
// refills, ...), so the ablation in §VI-A can be reproduced.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace synpa::pmu {

/// Hardware event identifiers.  The first four are the events in the
/// paper's Table I; the remainder mirror common ARMv8.1 PMU extras.
enum class Event : std::uint8_t {
    kCpuCycles = 0,      ///< CPU_CYCLES: processor cycles
    kInstSpec,           ///< INST_SPEC: operations speculatively executed
    kStallFrontend,      ///< STALL_FRONTEND: no dispatch, dispatch queue empty
    kStallBackend,       ///< STALL_BACKEND: no dispatch, backend resource busy
    kInstRetired,        ///< INST_RETIRED: architecturally committed ops
    kL1iCacheRefill,     ///< L1I_CACHE_REFILL
    kL1dCacheRefill,     ///< L1D_CACHE_REFILL
    kL2dCacheRefill,     ///< L2D_CACHE_REFILL
    kLlcCacheMiss,       ///< LL_CACHE_MISS_RD (approx.)
    kBrMisPred,          ///< BR_MIS_PRED
    kStallBackendRob,    ///< implementation-specific: dispatch stall, ROB full
    kStallBackendIq,     ///< implementation-specific: dispatch stall, IQ full
    kStallBackendLsq,    ///< implementation-specific: dispatch stall, LSQ full
    kStallBackendMem,    ///< implementation-specific: dispatch stall, mem pending
    kCount,              ///< number of events (array sizing)
};

inline constexpr std::size_t kEventCount = static_cast<std::size_t>(Event::kCount);

/// The four events SYNPA configures (Table I).
inline constexpr std::array<Event, 4> kSynpaEvents = {
    Event::kCpuCycles, Event::kInstSpec, Event::kStallFrontend, Event::kStallBackend};

/// Canonical lower-case event name (matches `perf list` style).
std::string_view event_name(Event e) noexcept;

/// Short human description (paper Table I wording).
std::string_view event_description(Event e) noexcept;

constexpr std::size_t event_index(Event e) noexcept { return static_cast<std::size_t>(e); }

}  // namespace synpa::pmu
