#include "pmu/perf_session.hpp"

#include <stdexcept>

namespace synpa::pmu {

PerfSession::PerfSession(const CounterSource& source, std::vector<Event> events)
    : source_(source), events_(std::move(events)) {}

void PerfSession::attach(int task_id) { snapshots_[task_id] = source_.task_counters(task_id); }

void PerfSession::detach(int task_id) { snapshots_.erase(task_id); }

bool PerfSession::attached(int task_id) const { return snapshots_.contains(task_id); }

CounterBank PerfSession::filter(const CounterBank& bank) const {
    if (events_.empty()) return bank;
    CounterBank out;
    for (Event e : events_) out.increment(e, bank.value(e));
    return out;
}

CounterBank PerfSession::read(int task_id) {
    auto it = snapshots_.find(task_id);
    if (it == snapshots_.end()) throw std::runtime_error("PerfSession: task not attached");
    const CounterBank now = source_.task_counters(task_id);
    const CounterBank delta = now.delta_since(it->second);
    it->second = now;
    return filter(delta);
}

CounterBank PerfSession::peek(int task_id) const {
    auto it = snapshots_.find(task_id);
    if (it == snapshots_.end()) throw std::runtime_error("PerfSession: task not attached");
    return filter(source_.task_counters(task_id).delta_since(it->second));
}

}  // namespace synpa::pmu
