// A perf(1)-shaped reading interface over the simulated PMU.
//
// The paper's prototype is a user-level manager that uses the perf tool to
// configure and read counters per application (per task, following the task
// across migrations), once per quantum.  PerfSession mirrors that shape:
// attach to task ids, then read per-quantum deltas.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "pmu/counters.hpp"
#include "pmu/events.hpp"

namespace synpa::pmu {

/// Anything that can report cumulative counters for a task (the simulator
/// chip implements this; tests use a fake).
class CounterSource {
public:
    virtual ~CounterSource() = default;
    /// Cumulative counters for the given task id (since task start).
    virtual CounterBank task_counters(int task_id) const = 0;
};

/// Per-task event reading with snapshot/delta semantics.
class PerfSession {
public:
    /// `events` restricts which events read() exposes; empty = all events.
    explicit PerfSession(const CounterSource& source, std::vector<Event> events = {});

    /// Starts counting for a task from its current cumulative values.
    void attach(int task_id);
    void detach(int task_id);
    bool attached(int task_id) const;

    /// Returns the counter deltas since the previous read (or attach) and
    /// advances the snapshot.  Events outside the configured set read 0.
    CounterBank read(int task_id);

    /// Like read() but does not advance the snapshot.
    CounterBank peek(int task_id) const;

    const std::vector<Event>& events() const noexcept { return events_; }

private:
    CounterBank filter(const CounterBank& bank) const;

    const CounterSource& source_;
    std::vector<Event> events_;
    std::unordered_map<int, CounterBank> snapshots_;
};

}  // namespace synpa::pmu
