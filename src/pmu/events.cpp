#include "pmu/events.hpp"

namespace synpa::pmu {

std::string_view event_name(Event e) noexcept {
    switch (e) {
        case Event::kCpuCycles: return "cpu_cycles";
        case Event::kInstSpec: return "inst_spec";
        case Event::kStallFrontend: return "stall_frontend";
        case Event::kStallBackend: return "stall_backend";
        case Event::kInstRetired: return "inst_retired";
        case Event::kL1iCacheRefill: return "l1i_cache_refill";
        case Event::kL1dCacheRefill: return "l1d_cache_refill";
        case Event::kL2dCacheRefill: return "l2d_cache_refill";
        case Event::kLlcCacheMiss: return "ll_cache_miss_rd";
        case Event::kBrMisPred: return "br_mis_pred";
        case Event::kStallBackendRob: return "stall_backend_rob";
        case Event::kStallBackendIq: return "stall_backend_iq";
        case Event::kStallBackendLsq: return "stall_backend_lsq";
        case Event::kStallBackendMem: return "stall_backend_mem";
        case Event::kCount: break;
    }
    return "unknown";
}

std::string_view event_description(Event e) noexcept {
    switch (e) {
        case Event::kCpuCycles: return "Cycles";
        case Event::kInstSpec: return "Operation (speculatively) executed";
        case Event::kStallFrontend:
            return "Cycles on which no operation is dispatched because there is no operation "
                   "in the queue";
        case Event::kStallBackend:
            return "Cycles on which no operation is dispatched due to backend resources being "
                   "unavailable";
        case Event::kInstRetired: return "Architecturally executed operations";
        case Event::kL1iCacheRefill: return "L1 instruction cache refills";
        case Event::kL1dCacheRefill: return "L1 data cache refills";
        case Event::kL2dCacheRefill: return "L2 cache refills";
        case Event::kLlcCacheMiss: return "Last-level cache read misses";
        case Event::kBrMisPred: return "Mispredicted branches";
        case Event::kStallBackendRob: return "Dispatch stalled, reorder buffer full";
        case Event::kStallBackendIq: return "Dispatch stalled, issue queue full";
        case Event::kStallBackendLsq: return "Dispatch stalled, load/store queue full";
        case Event::kStallBackendMem: return "Dispatch stalled, memory access pending";
        case Event::kCount: break;
    }
    return "unknown";
}

}  // namespace synpa::pmu
