// Application grouping (paper Table III) and suite calibration.
//
// Applications are classified from their isolated dispatch-stage
// characterization: backend bound when backend stalls exceed 65% of cycles,
// frontend bound when frontend stalls exceed 35%, Others otherwise.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/interference_model.hpp"
#include "uarch/sim_config.hpp"

namespace synpa::workloads {

enum class Group { kBackendBound, kFrontendBound, kOther };

const char* group_name(Group g) noexcept;

/// Table III thresholds.
inline constexpr double kBackendBoundThreshold = 0.65;
inline constexpr double kFrontendBoundThreshold = 0.35;

/// Classifies isolated category fractions per the Table III rule.
Group classify(const model::CategoryVector& isolated_fractions) noexcept;

/// Isolated characterization of one application.
struct AppCharacterization {
    std::string name;
    model::CategoryVector fractions{};  ///< full-dispatch / frontend / backend
    double ipc = 0.0;
    Group group = Group::kOther;
};

/// Runs every suite application alone and characterizes it (Figure 4 data).
/// Results are deterministic for a given (cfg, quanta, seed).
std::vector<AppCharacterization> characterize_suite(const uarch::SimConfig& cfg,
                                                    std::uint64_t quanta, std::uint64_t seed);

/// Fills in AppProfile::phase_categories for the whole suite by running each
/// phase in isolation (used by the Oracle policy and by phase-aware tests).
/// Idempotent; cheap after the first call.
void calibrate_suite(const uarch::SimConfig& cfg, std::uint64_t quanta, std::uint64_t seed);

/// The paper's training/evaluation split: 22 of the 28 applications train
/// the model (§IV-C); the held-out six exercise it on unseen behaviour.
std::vector<std::string> training_apps();
std::vector<std::string> holdout_apps();

}  // namespace synpa::workloads
