#include "workloads/workload.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/rng.hpp"

namespace synpa::workloads {

WorkloadSpec paper_be1() {
    // Figure 6a application list (arrival order).
    return {"be1", {"cactuBSSN_r", "mcf", "mcf", "milc", "cactuBSSN_r", "parest_r",
                    "cam4_r", "imagick_r"}};
}

WorkloadSpec paper_fe2() {
    // Figure 6b application list.
    return {"fe2", {"leela_r", "gobmk", "gobmk", "leela_r", "perlbench", "cam4_r",
                    "leela_r", "povray_r"}};
}

WorkloadSpec paper_fb2() {
    // Figure 6c / Table V application list: Linux pairs (k, k+4), giving
    // (lbm_r, leela_r), (mcf, leela_r), (cactuBSSN_r, astar), (mcf, mcf_r).
    return {"fb2", {"lbm_r", "mcf", "cactuBSSN_r", "mcf", "leela_r", "leela_r", "astar",
                    "mcf_r"}};
}

namespace {

std::vector<std::string> group_members(const std::vector<AppCharacterization>& chars,
                                       Group group) {
    std::vector<std::string> out;
    for (const auto& c : chars)
        if (c.group == group) out.push_back(c.name);
    if (out.empty()) throw std::runtime_error("paper_workloads: empty application group");
    return out;
}

std::string pick(const std::vector<std::string>& pool, common::Rng& rng) {
    return pool[rng.below(pool.size())];
}

/// N apps with replacement from `major` (5 or 6) + the rest from `minor`.
std::vector<std::string> intensive_mix(const std::vector<std::string>& major,
                                       const std::vector<std::string>& minor,
                                       common::Rng& rng) {
    const std::size_t majors = 5 + rng.below(2);  // 5 or 6
    std::vector<std::string> apps;
    for (std::size_t i = 0; i < majors; ++i) apps.push_back(pick(major, rng));
    while (apps.size() < 8) apps.push_back(pick(minor, rng));
    for (std::size_t i = apps.size(); i > 1; --i) std::swap(apps[i - 1], apps[rng.below(i)]);
    return apps;
}

}  // namespace

std::vector<WorkloadSpec> paper_workloads(
    const std::vector<AppCharacterization>& characterizations, std::uint64_t seed) {
    const auto be_pool = group_members(characterizations, Group::kBackendBound);
    const auto fe_pool = group_members(characterizations, Group::kFrontendBound);
    const auto other_pool = group_members(characterizations, Group::kOther);

    std::vector<WorkloadSpec> specs;
    specs.reserve(20);

    for (int k = 0; k < 5; ++k) {
        if (k == 1) {
            specs.push_back(paper_be1());
            continue;
        }
        common::Rng rng(seed, 0xbe, static_cast<std::uint64_t>(k));
        specs.push_back({"be" + std::to_string(k), intensive_mix(be_pool, other_pool, rng)});
    }
    for (int k = 0; k < 5; ++k) {
        if (k == 2) {
            specs.push_back(paper_fe2());
            continue;
        }
        common::Rng rng(seed, 0xfe, static_cast<std::uint64_t>(k));
        specs.push_back({"fe" + std::to_string(k), intensive_mix(fe_pool, other_pool, rng)});
    }
    for (int k = 0; k < 10; ++k) {
        if (k == 2) {
            specs.push_back(paper_fb2());
            continue;
        }
        common::Rng rng(seed, 0xfb, static_cast<std::uint64_t>(k));
        std::vector<std::string> apps;
        for (int i = 0; i < 4; ++i) apps.push_back(pick(be_pool, rng));
        for (int i = 0; i < 4; ++i) apps.push_back(pick(fe_pool, rng));
        for (std::size_t i = apps.size(); i > 1; --i)
            std::swap(apps[i - 1], apps[rng.below(i)]);
        specs.push_back({"fb" + std::to_string(k), std::move(apps)});
    }
    return specs;
}

const WorkloadSpec& workload_by_name(const std::vector<WorkloadSpec>& specs,
                                     const std::string& name) {
    for (const auto& s : specs)
        if (s.name == name) return s;
    throw std::out_of_range("workload_by_name: unknown workload '" + name + "'");
}

}  // namespace synpa::workloads
