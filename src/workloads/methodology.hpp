// Measurement methodology (paper §V-B).
//
//  * Targets: each workload slot's application is first run in isolation
//    for a fixed profiling window (the paper's 60 seconds; here a
//    configurable quantum count) and its retired instructions become the
//    slot's target.  The profiling run also yields the isolated IPC used
//    for individual speedups.
//  * Runs: the manager executes the 8-task workload under a policy;
//    finished tasks are relaunched to hold load constant; the run ends when
//    the slowest original task reaches its target.
//  * Repetitions: each (workload, policy) pair is run `reps` times with
//    different seeds; turnaround samples are outlier-discarded until their
//    coefficient of variation is below the paper's 5% bound, then averaged.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "metrics/metrics.hpp"
#include "sched/policy.hpp"
#include "sched/thread_manager.hpp"
#include "uarch/sim_config.hpp"
#include "workloads/workload.hpp"

namespace synpa::obs {
class Tracer;
}  // namespace synpa::obs

namespace synpa::workloads {

struct MethodologyOptions {
    std::uint64_t target_isolated_quanta = 120;  ///< the "60 s" profiling window
    int reps = 3;
    double cv_limit = 0.05;  ///< paper: discard until CV < 5%
    std::uint64_t seed = 42;
    std::uint64_t max_quanta = 20'000;
    bool record_traces = true;
    std::size_t threads = 0;  ///< parallelism across repetitions/workloads
    /// Flight recorder handed to the run's ThreadManager (not owned; may be
    /// null).  Campaign drivers derive a per-cell tracer from SYNPA_TRACE_*
    /// instead of sharing one across parallel cells.
    obs::Tracer* tracer = nullptr;
};

/// Fresh policy per repetition (policies hold run state).
using PolicyFactory =
    std::function<std::unique_ptr<sched::AllocationPolicy>(std::uint64_t rep_seed)>;

/// A workload with its per-slot task specs (targets + isolated IPCs) filled.
struct PreparedWorkload {
    WorkloadSpec spec;
    std::vector<sched::TaskSpec> tasks;
};

/// Profiles each slot in isolation (with the slot's behaviour seed) and
/// fills in its target instructions and isolated IPC.
PreparedWorkload prepare_workload(const WorkloadSpec& spec, const uarch::SimConfig& cfg,
                                  const MethodologyOptions& opts, int rep);

/// One complete run of a prepared workload under a policy.
sched::RunResult run_workload_once(const PreparedWorkload& prepared,
                                   const uarch::SimConfig& cfg,
                                   sched::AllocationPolicy& policy,
                                   const MethodologyOptions& opts);

/// Aggregated result across repetitions.
struct RepeatedResult {
    std::string workload;
    std::string policy;
    std::vector<double> turnaround_samples;  ///< retained after outlier discard
    metrics::WorkloadMetrics mean_metrics;   ///< averaged over retained reps
    sched::RunResult exemplar;               ///< first repetition (carries traces)
};

/// Runs `reps` repetitions of (spec, policy), applies the CV-based outlier
/// discard to turnaround samples, and averages the metrics.  Implemented as
/// a thin wrapper over exp::CampaignRunner (a one-cell campaign), so the
/// repetitions run in parallel and prepared workloads are memoized in
/// exp::ArtifactCache::global().
RepeatedResult run_workload(const WorkloadSpec& spec, const uarch::SimConfig& cfg,
                            const PolicyFactory& make_policy,
                            const MethodologyOptions& opts);

/// Convenience for the evaluation benches: runs every workload under both a
/// baseline and a treatment policy and reports the paired results.
struct PolicyComparison {
    std::string workload;
    metrics::WorkloadMetrics baseline;
    metrics::WorkloadMetrics treatment;
    double tt_speedup = 0.0;
    double ipc_speedup = 0.0;
    double fairness_delta = 0.0;
};

/// Also a thin campaign wrapper: one grid of specs x {baseline, treatment}.
std::vector<PolicyComparison> compare_policies(const std::vector<WorkloadSpec>& specs,
                                               const uarch::SimConfig& cfg,
                                               const PolicyFactory& make_baseline,
                                               const PolicyFactory& make_treatment,
                                               const MethodologyOptions& opts);

}  // namespace synpa::workloads
