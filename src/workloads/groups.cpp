#include "workloads/groups.hpp"

#include <mutex>

#include "apps/spec_suite.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "model/trainer.hpp"

namespace synpa::workloads {

const char* group_name(Group g) noexcept {
    switch (g) {
        case Group::kBackendBound: return "backend-bound";
        case Group::kFrontendBound: return "frontend-bound";
        case Group::kOther: return "others";
    }
    return "?";
}

Group classify(const model::CategoryVector& f) noexcept {
    const double fe = f[static_cast<std::size_t>(model::Category::kFrontendStall)];
    const double be = f[static_cast<std::size_t>(model::Category::kBackendStall)];
    if (be > kBackendBoundThreshold) return Group::kBackendBound;
    if (fe > kFrontendBoundThreshold) return Group::kFrontendBound;
    return Group::kOther;
}

std::vector<AppCharacterization> characterize_suite(const uarch::SimConfig& cfg,
                                                    std::uint64_t quanta,
                                                    std::uint64_t seed) {
    const auto& suite = apps::spec_suite();
    std::vector<AppCharacterization> out(suite.size());
    common::parallel_for(suite.size(), [&](std::size_t i) {
        const model::IsolatedProfile prof = model::profile_isolated(
            suite[i], cfg, quanta, common::derive_key(seed, 0xc4a2, i));
        AppCharacterization c;
        c.name = suite[i].name;
        c.fractions = prof.overall_fractions();
        c.ipc = prof.ipc();
        c.group = classify(c.fractions);
        out[i] = c;
    });
    return out;
}

void calibrate_suite(const uarch::SimConfig& cfg, std::uint64_t quanta, std::uint64_t seed) {
    static std::mutex mutex;
    const std::lock_guard lock(mutex);
    auto& suite = apps::spec_suite();
    bool done = true;
    for (const auto& app : suite)
        if (app.phase_categories.size() != app.phases.size()) done = false;
    if (done) return;

    for (auto& app : suite) {
        app.phase_categories.assign(app.phases.size(), {});
        for (std::size_t p = 0; p < app.phases.size(); ++p) {
            // Isolate the phase in a single-phase clone so the run never
            // leaves it, then characterize.
            apps::AppProfile clone;
            clone.name = app.name + "#" + app.phases[p].name;
            clone.phases.push_back(app.phases[p]);
            const model::IsolatedProfile prof = model::profile_isolated(
                clone, cfg, quanta, common::derive_key(seed, 0xca1b, p));
            app.phase_categories[p] = prof.overall_fractions();
        }
    }
}

std::vector<std::string> training_apps() {
    // 22 of 28 (the paper's 80%); the held-out six cover all three groups.
    return {"mcf",        "lbm_r",     "cactuBSSN_r", "milc",       "xalancbmk_r",
            "leela_r",    "gobmk",     "astar",       "mcf_r",      "hmmer",
            "nab_r",      "bwaves",    "calculix",    "cam4_r",     "deepsjeng_r",
            "exchange2_r", "fotonik3d_r", "imagick_r", "namd_r",    "omnetpp_r",
            "parest_r",   "povray_r"};
}

std::vector<std::string> holdout_apps() {
    return {"wrf_r", "perlbench", "roms_r", "tonto", "blender_r", "bzip2"};
}

}  // namespace synpa::workloads
