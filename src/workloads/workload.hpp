// Workload construction (paper §V-B).
//
// Twenty 8-application workloads: five backend-intensive (be0-be4, 5-6 apps
// from the backend-bound group + Others), five frontend-intensive (fe0-fe4,
// analogous), and ten mixed (fb0-fb9, four backend-bound + four
// frontend-bound, shuffled).  Applications are drawn with replacement, as in
// the paper (fe2 contains leela_r three times; be1 and fb2 contain mcf
// twice).  The three workloads the paper analyses in detail — be1, fe2 and
// fb2 — are pinned to the exact application lists given in Figure 6 /
// Table V; the rest are generated deterministically from the seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workloads/groups.hpp"

namespace synpa::workloads {

struct WorkloadSpec {
    std::string name;
    std::vector<std::string> app_names;  ///< size 8, arrival order
};

/// The paper's three showcased workloads.
WorkloadSpec paper_be1();
WorkloadSpec paper_fe2();
WorkloadSpec paper_fb2();

/// All twenty evaluation workloads.  `characterizations` supplies the group
/// of every suite application (from characterize_suite); `seed` controls
/// the generated (non-pinned) workloads.
std::vector<WorkloadSpec> paper_workloads(
    const std::vector<AppCharacterization>& characterizations, std::uint64_t seed);

/// Finds a workload by name in a list; throws std::out_of_range if missing.
const WorkloadSpec& workload_by_name(const std::vector<WorkloadSpec>& specs,
                                     const std::string& name);

}  // namespace synpa::workloads
