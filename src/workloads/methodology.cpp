#include "workloads/methodology.hpp"

#include <algorithm>
#include <stdexcept>

#include "apps/spec_suite.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "model/trainer.hpp"
#include "uarch/chip.hpp"

namespace synpa::workloads {
namespace {

std::uint64_t slot_seed(const MethodologyOptions& opts, const WorkloadSpec& spec, int slot,
                        int rep) {
    return common::derive_key(opts.seed, common::hash_string(spec.name),
                              static_cast<std::uint64_t>(slot),
                              static_cast<std::uint64_t>(rep));
}

/// Isolated target-profiling runs are deterministic in (app, seed, quanta,
/// config), and the evaluation sweeps repeat them (same slot seeds for the
/// baseline and treatment policies), so memoize them process-wide.
struct TargetProfile {
    std::uint64_t target_insts = 0;
    double isolated_ipc = 0.0;
};

TargetProfile profile_target(const std::string& app_name, const uarch::SimConfig& cfg,
                             std::uint64_t quanta, std::uint64_t seed) {
    struct Key {
        std::uint64_t app, cfg, quanta, seed;
        bool operator==(const Key&) const = default;
    };
    struct KeyHash {
        std::size_t operator()(const Key& k) const {
            return common::derive_key(k.app, k.cfg, k.quanta, k.seed);
        }
    };
    static std::unordered_map<Key, TargetProfile, KeyHash> cache;
    static std::mutex mutex;

    const Key key{common::hash_string(app_name), uarch::config_fingerprint(cfg), quanta, seed};
    {
        const std::lock_guard lock(mutex);
        const auto it = cache.find(key);
        if (it != cache.end()) return it->second;
    }
    const model::IsolatedProfile prof =
        model::profile_isolated(apps::find_app(app_name), cfg, quanta, seed);
    const TargetProfile result{.target_insts = prof.total_instructions(),
                               .isolated_ipc = prof.ipc()};
    const std::lock_guard lock(mutex);
    cache.emplace(key, result);
    return result;
}

}  // namespace

PreparedWorkload prepare_workload(const WorkloadSpec& spec, const uarch::SimConfig& cfg,
                                  const MethodologyOptions& opts, int rep) {
    if (spec.app_names.size() != static_cast<std::size_t>(cfg.cores) * 2)
        throw std::invalid_argument("prepare_workload: workload size must fill the chip");
    PreparedWorkload prepared;
    prepared.spec = spec;
    prepared.tasks.resize(spec.app_names.size());
    common::parallel_for(
        spec.app_names.size(),
        [&](std::size_t s) {
            const std::uint64_t seed = slot_seed(opts, spec, static_cast<int>(s), rep);
            const TargetProfile prof = profile_target(spec.app_names[s], cfg,
                                                      opts.target_isolated_quanta, seed);
            prepared.tasks[s] = {.app_name = spec.app_names[s],
                                 .seed = seed,
                                 .target_insts = prof.target_insts,
                                 .isolated_ipc = prof.isolated_ipc};
        },
        opts.threads);
    return prepared;
}

sched::RunResult run_workload_once(const PreparedWorkload& prepared,
                                   const uarch::SimConfig& cfg,
                                   sched::AllocationPolicy& policy,
                                   const MethodologyOptions& opts) {
    uarch::Chip chip(cfg);
    sched::ThreadManager manager(
        chip, policy, prepared.tasks,
        {.max_quanta = opts.max_quanta, .record_traces = opts.record_traces});
    return manager.run();
}

RepeatedResult run_workload(const WorkloadSpec& spec, const uarch::SimConfig& cfg,
                            const PolicyFactory& make_policy,
                            const MethodologyOptions& opts) {
    const int reps = std::max(1, opts.reps);
    std::vector<sched::RunResult> runs(static_cast<std::size_t>(reps));
    std::vector<metrics::WorkloadMetrics> run_metrics(static_cast<std::size_t>(reps));

    common::parallel_for(
        static_cast<std::size_t>(reps),
        [&](std::size_t rep) {
            MethodologyOptions rep_opts = opts;
            rep_opts.record_traces = opts.record_traces && rep == 0;
            const PreparedWorkload prepared =
                prepare_workload(spec, cfg, opts, static_cast<int>(rep));
            const std::uint64_t rep_seed =
                common::derive_key(opts.seed, common::hash_string(spec.name), 0x9001, rep);
            const auto policy = make_policy(rep_seed);
            runs[rep] = run_workload_once(prepared, cfg, *policy, rep_opts);
            run_metrics[rep] = metrics::compute_metrics(runs[rep]);
        },
        opts.threads);

    // The paper's outlier-discard methodology on the turnaround samples.
    std::vector<double> tts;
    tts.reserve(runs.size());
    for (const auto& m : run_metrics) tts.push_back(m.turnaround_quanta);
    const std::vector<double> kept = common::discard_outliers_until_cv(tts, opts.cv_limit);

    RepeatedResult result;
    result.workload = spec.name;
    result.policy = runs.front().policy_name;
    result.turnaround_samples = kept;
    result.exemplar = std::move(runs.front());

    // Average the metrics over the retained repetitions.
    metrics::WorkloadMetrics mean{};
    int used = 0;
    for (std::size_t rep = 0; rep < run_metrics.size(); ++rep) {
        const double tt = run_metrics[rep].turnaround_quanta;
        if (std::find(kept.begin(), kept.end(), tt) == kept.end()) continue;
        mean.turnaround_quanta += run_metrics[rep].turnaround_quanta;
        mean.fairness += run_metrics[rep].fairness;
        mean.ipc_geomean += run_metrics[rep].ipc_geomean;
        mean.antt += run_metrics[rep].antt;
        ++used;
    }
    if (used > 0) {
        mean.turnaround_quanta /= used;
        mean.fairness /= used;
        mean.ipc_geomean /= used;
        mean.antt /= used;
    }
    mean.individual_speedups = run_metrics.front().individual_speedups;
    result.mean_metrics = mean;
    return result;
}

std::vector<PolicyComparison> compare_policies(const std::vector<WorkloadSpec>& specs,
                                               const uarch::SimConfig& cfg,
                                               const PolicyFactory& make_baseline,
                                               const PolicyFactory& make_treatment,
                                               const MethodologyOptions& opts) {
    std::vector<PolicyComparison> out(specs.size());
    common::parallel_for(
        specs.size(),
        [&](std::size_t w) {
            MethodologyOptions inner = opts;
            inner.threads = 1;  // parallelism lives at the workload level
            const RepeatedResult base = run_workload(specs[w], cfg, make_baseline, inner);
            const RepeatedResult treat = run_workload(specs[w], cfg, make_treatment, inner);
            PolicyComparison c;
            c.workload = specs[w].name;
            c.baseline = base.mean_metrics;
            c.treatment = treat.mean_metrics;
            c.tt_speedup = metrics::turnaround_speedup(base.mean_metrics, treat.mean_metrics);
            c.ipc_speedup = metrics::ipc_speedup(base.mean_metrics, treat.mean_metrics);
            c.fairness_delta = treat.mean_metrics.fairness - base.mean_metrics.fairness;
            out[w] = c;
        },
        opts.threads);
    return out;
}

}  // namespace synpa::workloads
