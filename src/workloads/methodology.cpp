#include "workloads/methodology.hpp"

#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "apps/spec_suite.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "exp/campaign.hpp"
#include "model/trainer.hpp"
#include "uarch/platform.hpp"

namespace synpa::workloads {
namespace {

std::uint64_t slot_seed(const MethodologyOptions& opts, const WorkloadSpec& spec, int slot,
                        int rep) {
    return common::derive_key(opts.seed, common::hash_string(spec.name),
                              static_cast<std::uint64_t>(slot),
                              static_cast<std::uint64_t>(rep));
}

/// Isolated target-profiling runs are deterministic in (app, seed, quanta,
/// config), and the evaluation sweeps repeat them (same slot seeds for the
/// baseline and treatment policies), so memoize them process-wide.
struct TargetProfile {
    std::uint64_t target_insts = 0;
    double isolated_ipc = 0.0;
};

TargetProfile profile_target(const std::string& app_name, const uarch::SimConfig& cfg,
                             std::uint64_t quanta, std::uint64_t seed) {
    struct Key {
        std::uint64_t app, cfg, quanta, seed;
        bool operator==(const Key&) const = default;
    };
    struct KeyHash {
        std::size_t operator()(const Key& k) const {
            return common::derive_key(k.app, k.cfg, k.quanta, k.seed);
        }
    };
    static std::unordered_map<Key, TargetProfile, KeyHash> cache;
    static std::mutex mutex;

    const Key key{common::hash_string(app_name), uarch::config_fingerprint(cfg), quanta, seed};
    {
        const std::lock_guard lock(mutex);
        const auto it = cache.find(key);
        if (it != cache.end()) return it->second;
    }
    const model::IsolatedProfile prof =
        model::profile_isolated(apps::find_app(app_name), cfg, quanta, seed);
    const TargetProfile result{.target_insts = prof.total_instructions(),
                               .isolated_ipc = prof.ipc()};
    const std::lock_guard lock(mutex);
    cache.emplace(key, result);
    return result;
}

}  // namespace

PreparedWorkload prepare_workload(const WorkloadSpec& spec, const uarch::SimConfig& cfg,
                                  const MethodologyOptions& opts, int rep) {
    if (spec.app_names.size() != static_cast<std::size_t>(cfg.num_chips) *
                                     static_cast<std::size_t>(cfg.cores) *
                                     static_cast<std::size_t>(cfg.smt_ways))
        throw std::invalid_argument(
            "prepare_workload: workload size must fill the platform");
    PreparedWorkload prepared;
    prepared.spec = spec;
    prepared.tasks.resize(spec.app_names.size());
    common::parallel_for(
        spec.app_names.size(),
        [&](std::size_t s) {
            const std::uint64_t seed = slot_seed(opts, spec, static_cast<int>(s), rep);
            const TargetProfile prof = profile_target(spec.app_names[s], cfg,
                                                      opts.target_isolated_quanta, seed);
            prepared.tasks[s] = {.app_name = spec.app_names[s],
                                 .seed = seed,
                                 .target_insts = prof.target_insts,
                                 .isolated_ipc = prof.isolated_ipc};
        },
        opts.threads);
    return prepared;
}

sched::RunResult run_workload_once(const PreparedWorkload& prepared,
                                   const uarch::SimConfig& cfg,
                                   sched::AllocationPolicy& policy,
                                   const MethodologyOptions& opts) {
    uarch::Platform platform(cfg);
    sched::ThreadManager manager(platform, policy, prepared.tasks,
                                 {.max_quanta = opts.max_quanta,
                                  .record_traces = opts.record_traces,
                                  .tracer = opts.tracer});
    return manager.run();
}

// run_workload and compare_policies are thin wrappers over the campaign
// engine: they declare a one-column (or two-column) grid and let
// exp::CampaignRunner execute the repetitions over its persistent pool,
// with artifacts (per-rep prepared workloads) memoized process-wide in
// exp::ArtifactCache::global().

RepeatedResult run_workload(const WorkloadSpec& spec, const uarch::SimConfig& cfg,
                            const PolicyFactory& make_policy,
                            const MethodologyOptions& opts) {
    exp::Campaign campaign;
    campaign.name = "run_workload:" + spec.name;
    campaign.configs = {cfg};
    campaign.workloads = {spec};
    campaign.policies = {exp::policy("policy", make_policy)};
    campaign.methodology = opts;
    exp::CampaignRunner runner({.threads = opts.threads});
    exp::CampaignResult result = runner.run(campaign);
    return std::move(result.cells.front().result);
}

std::vector<PolicyComparison> compare_policies(const std::vector<WorkloadSpec>& specs,
                                               const uarch::SimConfig& cfg,
                                               const PolicyFactory& make_baseline,
                                               const PolicyFactory& make_treatment,
                                               const MethodologyOptions& opts) {
    exp::Campaign campaign;
    campaign.name = "compare_policies";
    campaign.configs = {cfg};
    campaign.workloads = specs;
    campaign.policies = {exp::policy("baseline", make_baseline),
                         exp::policy("treatment", make_treatment)};
    campaign.methodology = opts;
    exp::CampaignRunner runner({.threads = opts.threads});
    const exp::CampaignResult result = runner.run(campaign);
    return exp::compare_to_baseline(result, 0, 1);
}

}  // namespace synpa::workloads
