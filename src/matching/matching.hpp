// Pair selection as a matching problem (paper §IV-B, Step 3).
//
// SYNPA predicts, for every pair of applications, the combined slowdown the
// pair would suffer sharing an SMT core, then picks the partition of the 2N
// applications into N pairs minimizing total predicted slowdown.  That is a
// minimum-weight perfect matching on a complete graph, which the paper
// solves with Edmonds' Blossom algorithm [21].
//
// This module provides three interchangeable solvers:
//   * BlossomMatcher  — O(n^3) primal-dual Blossom (the paper's choice),
//   * SubsetDpMatcher — exact O(2^n * n) dynamic program (n <= 24),
//   * BruteForceMatcher — exhaustive enumeration (n <= 12, reference).
// Property tests check they agree on random instances.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

namespace synpa::matching {

/// Symmetric dense weight matrix for an even number of vertices.
/// Weights may be any finite doubles (slowdowns, in SYNPA's use).
class WeightMatrix {
public:
    WeightMatrix() = default;
    explicit WeightMatrix(std::size_t n, double fill = 0.0) : n_(n), w_(n * n, fill) {}

    std::size_t size() const noexcept { return n_; }

    void set(std::size_t u, std::size_t v, double w) {
        check(u, v);
        w_[u * n_ + v] = w;
        w_[v * n_ + u] = w;
    }
    double get(std::size_t u, std::size_t v) const {
        check(u, v);
        return w_[u * n_ + v];
    }

    double min_weight() const noexcept;
    double max_weight() const noexcept;

private:
    void check(std::size_t u, std::size_t v) const {
        if (u >= n_ || v >= n_) throw std::out_of_range("WeightMatrix index");
    }
    std::size_t n_ = 0;
    std::vector<double> w_;
};

/// A perfect matching: `mate[v]` is v's partner; `pairs` lists each pair
/// once with u < v; `total_weight` sums the pair weights.
struct MatchingResult {
    std::vector<int> mate;
    std::vector<std::pair<int, int>> pairs;
    double total_weight = 0.0;
};

/// Interface shared by all matchers.  Implementations must accept any even
/// n >= 2 within their documented limits and be deterministic.
///
/// Odd-N contract: a perfect matching does not exist on an odd vertex count,
/// so every solver throws std::invalid_argument for odd (or zero) n — none
/// of them pads silently.  Callers with an odd task count (or more hardware
/// slots than tasks) must go through min_weight_partial below, which pads
/// the instance with explicit dummy vertices and reports which vertices run
/// unmatched.
class Matcher {
public:
    virtual ~Matcher() = default;
    /// Finds the minimum-total-weight perfect matching.
    virtual MatchingResult min_weight_perfect(const WeightMatrix& w) const = 0;
    /// Finds the maximum-total-weight perfect matching.
    virtual MatchingResult max_weight_perfect(const WeightMatrix& w) const = 0;
};

/// Exhaustive enumeration over all (n-1)!! perfect matchings.  Reference
/// implementation for tests; practical to n ~ 12.
class BruteForceMatcher final : public Matcher {
public:
    MatchingResult min_weight_perfect(const WeightMatrix& w) const override;
    MatchingResult max_weight_perfect(const WeightMatrix& w) const override;
};

/// Exact subset dynamic program over vertex bitmasks; O(2^n * n), n <= 24.
/// This is also the solver SYNPA uses at runtime for small thread counts.
class SubsetDpMatcher final : public Matcher {
public:
    MatchingResult min_weight_perfect(const WeightMatrix& w) const override;
    MatchingResult max_weight_perfect(const WeightMatrix& w) const override;
};

/// Edmonds' Blossom algorithm (primal-dual, dense O(n^3)); the general
/// solver the paper cites.  Weights are scaled to integers internally
/// (53-bit budget), which is exact for the slowdown magnitudes involved.
class BlossomMatcher final : public Matcher {
public:
    MatchingResult min_weight_perfect(const WeightMatrix& w) const override;
    MatchingResult max_weight_perfect(const WeightMatrix& w) const override;
};

/// Recomputes the total weight of `pairs` under `w` (test/report helper).
double matching_weight(const WeightMatrix& w, const std::vector<std::pair<int, int>>& pairs);

/// An imperfect ("partial") matching: some vertices are paired, the rest run
/// alone.  `total_weight` sums the chosen pair weights plus the solo weights
/// of every single.
struct PartialMatching {
    std::vector<std::pair<int, int>> pairs;
    std::vector<int> singles;
    double total_weight = 0.0;
};

/// Minimum-cost assignment of n tasks onto `cores` 2-way slots: each core
/// runs a pair (cost = w(u,v)), a single task (cost = solo[u]), or stays
/// idle (cost 0).  This is the open-system generalization of the paper's
/// Step 3: with fewer runnable threads than hardware contexts the allocator
/// must decide *which* threads run alone, trading a pair's predicted
/// combined slowdown against the two per-thread "runs alone" terms.
///
/// Solved exactly by padding the instance with 2*cores - n dummy vertices
/// (task–dummy edge = the task's solo weight, dummy–dummy edge = 0) and
/// handing the even-sized instance to `matcher` — the dummy-node reduction
/// of imperfect matching to perfect matching.  Requires n <= 2*cores and
/// solo.size() == n; throws std::invalid_argument otherwise.  n may be odd.
///
/// The reduction preserves optimality only for exact matchers: the idle
/// count is a function of the pair count (idle = cores - n + pairs), so the
/// 0-weight dummy–dummy edges cannot bias an optimal solver — but a greedy
/// heuristic grabs those lightest edges first and then force-pairs every
/// real task.  Pass BlossomMatcher or SubsetDpMatcher here.
PartialMatching min_weight_partial(const WeightMatrix& w, std::span<const double> solo,
                                   std::size_t cores, const Matcher& matcher);

/// Hysteresis-aware pair selection for quantum-driven schedulers.
///
/// Prediction noise makes many matchings near-ties, and oscillating between
/// equivalent solutions costs real migrations.  This helper (a) discounts
/// the currently-running pairs by `stability_bias` of the weight span so
/// ties resolve toward staying put, and (b) keeps the current allocation
/// outright unless the re-solved matching improves the *true* total weight
/// by more than `keep_threshold` (relative).
struct StabilizedSelection {
    std::vector<std::pair<int, int>> pairs;
    bool kept_current = false;
    double current_weight = 0.0;  ///< true weight of the incumbent pairing
    double selected_weight = 0.0; ///< true weight of the returned pairing
};

StabilizedSelection stabilized_min_weight(const WeightMatrix& weights,
                                          const std::vector<std::pair<int, int>>& current,
                                          const Matcher& matcher,
                                          double stability_bias = 0.002,
                                          double keep_threshold = 0.001);

/// Warm-started overload: when the caller certifies via `inputs_unchanged`
/// that neither the weights nor the incumbent pairing moved since
/// `previous` was computed (SYNPA's weight cache keys this on the estimate
/// epochs), the previous selection is returned verbatim — the solvers are
/// deterministic, so a re-solve would reproduce it bit for bit.  Otherwise
/// falls through to the cold path above.  `previous` may be null (always
/// cold).
StabilizedSelection stabilized_min_weight(const WeightMatrix& weights,
                                          const std::vector<std::pair<int, int>>& current,
                                          const Matcher& matcher,
                                          double stability_bias,
                                          double keep_threshold,
                                          const StabilizedSelection* previous,
                                          bool inputs_unchanged);

// ------------------------------------------------- k-way core grouping --

/// A width-generic core assignment: every task index 0..n-1 appears in
/// exactly one group, each group holds 1..width members, and at most
/// `cores` groups exist (idle cores cost nothing and are not listed).
/// Groups keep their members ascending and are ordered by first member.
struct GroupingResult {
    std::vector<std::vector<int>> groups;
    double total_weight = 0.0;
};

/// Cost oracle for one candidate group (ascending member indices,
/// 1 <= size <= width).  Must be deterministic and finite.
using GroupCost = std::function<double(std::span<const int>)>;

/// Partitions n tasks into core groups of at most `width` members over at
/// most `cores` cores, minimizing the summed group cost — the SMT-width-
/// generic Step 3.  Width 2 is the classical imperfect matching (pair
/// solvers remain the fast path for that case); width >= 3 is NP-hard
/// (3-dimensional matching), so:
///   * n <= kExactGroupingLimit runs an exact subset dynamic program over
///     vertex bitmasks with a group-count cap, and
///   * larger n runs a deterministic greedy seeding (each task joins the
///     group with the cheapest incremental cost) refined by local-search
///     moves and swaps to a local optimum.
/// Requires n <= cores * width; throws std::invalid_argument otherwise.
GroupingResult min_weight_grouping(std::size_t n, std::size_t cores, std::size_t width,
                                   const GroupCost& cost);

/// Warm-started overload: seeds the heuristic's local search from
/// `incumbent` — a previous solve's groups (task indices in [0, n); stale
/// ids, duplicates and overfull groups are tolerated and re-seeded
/// greedily).  Only buckets whose membership changed relative to the
/// incumbent are treated as dirty, and the local search examines a
/// move/swap candidate only when at least one side is dirty, so a re-solve
/// after k task arrivals/departures costs O(k · cores) oracle calls instead
/// of a full cold solve.  An empty incumbent reproduces the cold heuristic
/// bit for bit; exact sizes (n <= kExactGroupingLimit) ignore the incumbent
/// and stay exact.  The warm result is a valid local optimum but may differ
/// from the cold one, so callers needing replayable bit-identity must use
/// the cold overload.
GroupingResult min_weight_grouping(std::size_t n, std::size_t cores, std::size_t width,
                                   const GroupCost& cost,
                                   const std::vector<std::vector<int>>& incumbent);

/// Largest n solved exactly by min_weight_grouping's subset DP.
inline constexpr std::size_t kExactGroupingLimit = 12;

/// The greedy-seed + local-search heuristic min_weight_grouping switches to
/// beyond kExactGroupingLimit, callable at any n.  Exposed so tests can
/// measure the heuristic's quality against the exact DP right at the
/// switchover boundary (the regime a scheduler actually crosses when the
/// live set grows from 12 to 13 tasks).
GroupingResult min_weight_grouping_heuristic(std::size_t n, std::size_t cores,
                                             std::size_t width, const GroupCost& cost);

/// Warm-started heuristic at any n (see the warm min_weight_grouping
/// overload for the incumbent/dirty-set contract) — the entry point tests
/// and benches use to measure warm-vs-cold re-solve cost directly.
GroupingResult min_weight_grouping_heuristic(std::size_t n, std::size_t cores,
                                             std::size_t width, const GroupCost& cost,
                                             const std::vector<std::vector<int>>& incumbent);

/// Recomputes the total weight of `groups` under `cost` (test/report helper).
double grouping_weight(const std::vector<std::vector<int>>& groups, const GroupCost& cost);

}  // namespace synpa::matching
