#include <algorithm>
#include <cmath>

#include "matching/matching.hpp"

namespace synpa::matching {

StabilizedSelection stabilized_min_weight(const WeightMatrix& weights,
                                          const std::vector<std::pair<int, int>>& current,
                                          const Matcher& matcher, double stability_bias,
                                          double keep_threshold) {
    StabilizedSelection out;
    const bool have_current = current.size() * 2 == weights.size() && !current.empty();

    WeightMatrix biased = weights;
    if (have_current && stability_bias > 0.0) {
        const double span = std::max(weights.max_weight() - weights.min_weight(), 1e-9);
        for (auto [u, v] : current) {
            const auto uu = static_cast<std::size_t>(u);
            const auto vv = static_cast<std::size_t>(v);
            biased.set(uu, vv, weights.get(uu, vv) - stability_bias * span);
        }
    }

    const MatchingResult solved = matcher.min_weight_perfect(biased);
    out.selected_weight = matching_weight(weights, solved.pairs);  // true weights
    out.pairs = solved.pairs;

    if (have_current) {
        out.current_weight = matching_weight(weights, current);
        const double required =
            out.current_weight - std::abs(out.current_weight) * keep_threshold;
        if (out.selected_weight >= required) {
            out.pairs = current;
            out.selected_weight = out.current_weight;
            out.kept_current = true;
        }
    }
    return out;
}

StabilizedSelection stabilized_min_weight(const WeightMatrix& weights,
                                          const std::vector<std::pair<int, int>>& current,
                                          const Matcher& matcher, double stability_bias,
                                          double keep_threshold,
                                          const StabilizedSelection* previous,
                                          bool inputs_unchanged) {
    // Every solver here is deterministic, so unchanged inputs certify that a
    // re-solve would reproduce `previous` bit for bit — return it directly.
    // The certificate is the caller's responsibility (SYNPA derives it from
    // the weight cache's estimate epochs); a stale certificate would replay
    // a stale matching, which is why this path demands both the flag and a
    // concrete previous result.
    if (previous != nullptr && inputs_unchanged) return *previous;
    return stabilized_min_weight(weights, current, matcher, stability_bias, keep_threshold);
}

}  // namespace synpa::matching
