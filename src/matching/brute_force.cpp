#include <algorithm>
#include <limits>
#include <stdexcept>

#include "matching/matching.hpp"

namespace synpa::matching {

double WeightMatrix::min_weight() const noexcept {
    double m = std::numeric_limits<double>::infinity();
    for (std::size_t u = 0; u < n_; ++u)
        for (std::size_t v = u + 1; v < n_; ++v) m = std::min(m, w_[u * n_ + v]);
    return n_ < 2 ? 0.0 : m;
}

double WeightMatrix::max_weight() const noexcept {
    double m = -std::numeric_limits<double>::infinity();
    for (std::size_t u = 0; u < n_; ++u)
        for (std::size_t v = u + 1; v < n_; ++v) m = std::max(m, w_[u * n_ + v]);
    return n_ < 2 ? 0.0 : m;
}

double matching_weight(const WeightMatrix& w, const std::vector<std::pair<int, int>>& pairs) {
    double total = 0.0;
    for (auto [u, v] : pairs) total += w.get(static_cast<std::size_t>(u), static_cast<std::size_t>(v));
    return total;
}

namespace {

void check_even(const WeightMatrix& w, std::size_t limit, const char* who) {
    if (w.size() == 0 || w.size() % 2 != 0)
        throw std::invalid_argument(std::string(who) + ": vertex count must be even and > 0");
    if (w.size() > limit)
        throw std::invalid_argument(std::string(who) + ": instance too large");
}

/// Recursively pairs the lowest unmatched vertex with every candidate.
void recurse(const WeightMatrix& w, std::vector<bool>& used, std::vector<int>& mate,
             double acc, double& best, std::vector<int>& best_mate, bool maximize) {
    std::size_t u = 0;
    while (u < used.size() && used[u]) ++u;
    if (u == used.size()) {
        if (maximize ? acc > best : acc < best) {
            best = acc;
            best_mate = mate;
        }
        return;
    }
    used[u] = true;
    for (std::size_t v = u + 1; v < used.size(); ++v) {
        if (used[v]) continue;
        used[v] = true;
        mate[u] = static_cast<int>(v);
        mate[v] = static_cast<int>(u);
        recurse(w, used, mate, acc + w.get(u, v), best, best_mate, maximize);
        used[v] = false;
    }
    used[u] = false;
}

MatchingResult solve(const WeightMatrix& w, bool maximize) {
    check_even(w, 12, "BruteForceMatcher");
    std::vector<bool> used(w.size(), false);
    std::vector<int> mate(w.size(), -1), best_mate(w.size(), -1);
    double best = maximize ? -std::numeric_limits<double>::infinity()
                           : std::numeric_limits<double>::infinity();
    recurse(w, used, mate, 0.0, best, best_mate, maximize);

    MatchingResult out;
    out.mate = std::move(best_mate);
    for (std::size_t u = 0; u < w.size(); ++u)
        if (out.mate[u] > static_cast<int>(u))
            out.pairs.emplace_back(static_cast<int>(u), out.mate[u]);
    out.total_weight = matching_weight(w, out.pairs);
    return out;
}

}  // namespace

MatchingResult BruteForceMatcher::min_weight_perfect(const WeightMatrix& w) const {
    return solve(w, /*maximize=*/false);
}

MatchingResult BruteForceMatcher::max_weight_perfect(const WeightMatrix& w) const {
    return solve(w, /*maximize=*/true);
}

}  // namespace synpa::matching
