#include <bit>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "matching/matching.hpp"

namespace synpa::matching {
namespace {

/// dp[mask] = best weight pairing exactly the vertices in `mask`.
/// The lowest set bit is always paired first, which visits each matching
/// exactly once: O(2^n * n) time, O(2^n) space.
MatchingResult solve(const WeightMatrix& w, bool maximize) {
    const std::size_t n = w.size();
    if (n == 0 || n % 2 != 0)
        throw std::invalid_argument("SubsetDpMatcher: vertex count must be even and > 0");
    if (n > 24) throw std::invalid_argument("SubsetDpMatcher: instance too large (n > 24)");

    const std::uint32_t full = (n == 32) ? ~0u : ((1u << n) - 1u);
    const double worst = maximize ? -std::numeric_limits<double>::infinity()
                                  : std::numeric_limits<double>::infinity();
    std::vector<double> dp(full + 1u, worst);
    std::vector<std::int8_t> choice(full + 1u, -1);  // partner of the lowest bit
    dp[0] = 0.0;

    for (std::uint32_t mask = 1; mask <= full; ++mask) {
        const int pop = std::popcount(mask);
        if (pop % 2 != 0) continue;
        const int u = std::countr_zero(mask);
        const std::uint32_t rest = mask & (mask - 1u);  // drop lowest bit
        for (std::uint32_t sub = rest; sub != 0; sub &= (sub - 1u)) {
            const int v = std::countr_zero(sub);
            const std::uint32_t prev = mask & ~(1u << u) & ~(1u << v);
            if (dp[prev] == worst) continue;
            const double cand = dp[prev] + w.get(static_cast<std::size_t>(u),
                                                 static_cast<std::size_t>(v));
            if (maximize ? cand > dp[mask] : cand < dp[mask]) {
                dp[mask] = cand;
                choice[mask] = static_cast<std::int8_t>(v);
            }
        }
    }

    MatchingResult out;
    out.mate.assign(n, -1);
    std::uint32_t mask = full;
    while (mask != 0) {
        const int u = std::countr_zero(mask);
        const int v = choice[mask];
        out.mate[static_cast<std::size_t>(u)] = v;
        out.mate[static_cast<std::size_t>(v)] = u;
        out.pairs.emplace_back(u, v);
        mask &= ~(1u << u);
        mask &= ~(1u << v);
    }
    out.total_weight = matching_weight(w, out.pairs);
    return out;
}

}  // namespace

MatchingResult SubsetDpMatcher::min_weight_perfect(const WeightMatrix& w) const {
    return solve(w, /*maximize=*/false);
}

MatchingResult SubsetDpMatcher::max_weight_perfect(const WeightMatrix& w) const {
    return solve(w, /*maximize=*/true);
}

}  // namespace synpa::matching
