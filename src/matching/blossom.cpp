// Edmonds' Blossom algorithm for maximum-weight matching on dense general
// graphs, primal-dual formulation, O(n^3).
//
// The implementation follows the classical dense multiple-tree variant
// (Galil's exposition): grow alternating forests from free vertices, shrink
// odd cycles (blossoms) into super-vertices, expand blossoms whose dual hits
// zero, and adjust duals by the minimum slack when the forest is stuck.
// Weights are doubled internally so vertex duals stay integral.
//
// The public entry points convert double weights to integers with a fixed
// scale (exact for SYNPA's slowdown range) and reduce min-weight perfect
// matching to max-weight matching via weight reflection: with
// w'(u,v) = BIG - w(u,v) and BIG large enough, every maximum-weight matching
// is perfect (complete graph, even n) and minimizes the original total.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <limits>
#include <stdexcept>
#include <vector>

#include "matching/matching.hpp"

namespace synpa::matching {
namespace {

using i64 = std::int64_t;

/// Dense maximum-weight matching on vertices 1..n with integer weights.
/// Weight 0 means "no edge".  Vertices above n are contracted blossoms.
class DenseBlossom {
public:
    explicit DenseBlossom(int n) : n_(n), n_x_(n) {
        const int cap = 2 * n_ + 1;
        g_.assign(cap, std::vector<Edge>(cap));
        for (int u = 0; u < cap; ++u)
            for (int v = 0; v < cap; ++v) g_[u][v] = Edge{u, v, 0};
        lab_.assign(cap, 0);
        match_.assign(cap, 0);
        slack_.assign(cap, 0);
        st_.assign(cap, 0);
        pa_.assign(cap, 0);
        S_.assign(cap, -1);
        vis_.assign(cap, 0);
        flower_.assign(cap, {});
        flower_from_.assign(cap, std::vector<int>(n_ + 1, 0));
    }

    void set_weight(int u, int v, i64 w) {
        g_[u][v].w = w;
        g_[v][u].w = w;
    }

    /// Runs the algorithm; afterwards mate(u) is u's partner or 0.
    void solve() {
        for (int u = 0; u <= n_; ++u) {
            st_[u] = u;
            flower_[u].clear();
        }
        i64 w_max = 0;
        for (int u = 1; u <= n_; ++u)
            for (int v = 1; v <= n_; ++v) {
                flower_from_[u][v] = (u == v ? u : 0);
                w_max = std::max(w_max, g_[u][v].w);
            }
        for (int u = 1; u <= n_; ++u) lab_[u] = w_max;
        while (grow_and_augment()) {
        }
    }

    int mate(int u) const { return match_[u]; }

private:
    struct Edge {
        int u = 0, v = 0;
        i64 w = 0;
    };

    /// Reduced cost of an edge: zero means "tight", usable by the forest.
    i64 edge_slack(const Edge& e) const { return lab_[e.u] + lab_[e.v] - g_[e.u][e.v].w * 2; }

    void update_slack(int u, int x) {
        if (slack_[x] == 0 || edge_slack(g_[u][x]) < edge_slack(g_[slack_[x]][x])) slack_[x] = u;
    }

    void set_slack(int x) {
        slack_[x] = 0;
        for (int u = 1; u <= n_; ++u)
            if (g_[u][x].w > 0 && st_[u] != x && S_[st_[u]] == 0) update_slack(u, x);
    }

    void queue_push(int x) {
        if (x <= n_) {
            queue_.push_back(x);
            return;
        }
        for (int sub : flower_[x]) queue_push(sub);
    }

    void set_st(int x, int b) {
        st_[x] = b;
        if (x > n_)
            for (int sub : flower_[x]) set_st(sub, b);
    }

    /// Index of sub-blossom xr inside b, rotating so the path parity works.
    int get_pr(int b, int xr) {
        auto it = std::find(flower_[b].begin(), flower_[b].end(), xr);
        int pr = static_cast<int>(it - flower_[b].begin());
        if (pr % 2 == 1) {
            std::reverse(flower_[b].begin() + 1, flower_[b].end());
            return static_cast<int>(flower_[b].size()) - pr;
        }
        return pr;
    }

    void set_match(int u, int v) {
        match_[u] = g_[u][v].v;
        if (u <= n_) return;
        const Edge& e = g_[u][v];
        const int xr = flower_from_[u][e.u];
        const int pr = get_pr(u, xr);
        for (int i = 0; i < pr; ++i) set_match(flower_[u][i], flower_[u][i ^ 1]);
        set_match(xr, v);
        std::rotate(flower_[u].begin(), flower_[u].begin() + pr, flower_[u].end());
    }

    void augment(int u, int v) {
        for (;;) {
            const int xnv = st_[match_[u]];
            set_match(u, v);
            if (xnv == 0) return;
            set_match(xnv, st_[pa_[xnv]]);
            u = st_[pa_[xnv]];
            v = xnv;
        }
    }

    int get_lca(int u, int v) {
        static thread_local int t = 0;
        for (++t; u != 0 || v != 0; std::swap(u, v)) {
            if (u == 0) continue;
            if (vis_[u] == t) return u;
            vis_[u] = t;
            u = st_[match_[u]];
            if (u != 0) u = st_[pa_[u]];
        }
        return 0;
    }

    void add_blossom(int u, int lca, int v) {
        int b = n_ + 1;
        while (b <= n_x_ && st_[b] != 0) ++b;
        if (b > n_x_) ++n_x_;
        lab_[b] = 0;
        S_[b] = 0;
        match_[b] = match_[lca];
        flower_[b].clear();
        flower_[b].push_back(lca);
        for (int x = u, y; x != lca; x = st_[pa_[y]]) {
            flower_[b].push_back(x);
            y = st_[match_[x]];
            flower_[b].push_back(y);
            queue_push(y);
        }
        std::reverse(flower_[b].begin() + 1, flower_[b].end());
        for (int x = v, y; x != lca; x = st_[pa_[y]]) {
            flower_[b].push_back(x);
            y = st_[match_[x]];
            flower_[b].push_back(y);
            queue_push(y);
        }
        set_st(b, b);
        for (int x = 1; x <= n_x_; ++x) g_[b][x].w = g_[x][b].w = 0;
        for (int x = 1; x <= n_; ++x) flower_from_[b][x] = 0;
        for (int xs : flower_[b]) {
            for (int x = 1; x <= n_x_; ++x)
                if (g_[b][x].w == 0 || edge_slack(g_[xs][x]) < edge_slack(g_[b][x])) {
                    g_[b][x] = g_[xs][x];
                    g_[x][b] = g_[x][xs];
                }
            for (int x = 1; x <= n_; ++x)
                if (flower_from_[xs][x] != 0) flower_from_[b][x] = xs;
        }
        set_slack(b);
    }

    void expand_blossom(int b) {
        for (int sub : flower_[b]) set_st(sub, sub);
        const int xr = flower_from_[b][g_[b][pa_[b]].u];
        const int pr = get_pr(b, xr);
        for (int i = 0; i < pr; i += 2) {
            const int xs = flower_[b][i];
            const int xns = flower_[b][i + 1];
            pa_[xs] = g_[xns][xs].u;
            S_[xs] = 1;
            S_[xns] = 0;
            slack_[xs] = 0;
            set_slack(xns);
            queue_push(xns);
        }
        S_[xr] = 1;
        pa_[xr] = pa_[b];
        for (std::size_t i = static_cast<std::size_t>(pr) + 1; i < flower_[b].size(); ++i) {
            const int xs = flower_[b][i];
            S_[xs] = -1;
            set_slack(xs);
        }
        st_[b] = 0;
    }

    bool on_found_edge(const Edge& e) {
        const int u = st_[e.u];
        const int v = st_[e.v];
        if (S_[v] == -1) {
            pa_[v] = e.u;
            S_[v] = 1;
            const int nu = st_[match_[v]];
            slack_[v] = slack_[nu] = 0;
            S_[nu] = 0;
            queue_push(nu);
        } else if (S_[v] == 0) {
            const int lca = get_lca(u, v);
            if (lca == 0) {
                augment(u, v);
                augment(v, u);
                return true;
            }
            add_blossom(u, lca, v);
        }
        return false;
    }

    /// One phase: grows the forest until an augmenting path is found
    /// (returns true) or no further progress is possible (returns false).
    bool grow_and_augment() {
        std::fill(S_.begin(), S_.begin() + n_x_ + 1, -1);
        std::fill(slack_.begin(), slack_.begin() + n_x_ + 1, 0);
        queue_.clear();
        for (int x = 1; x <= n_x_; ++x)
            if (st_[x] == x && match_[x] == 0) {
                pa_[x] = 0;
                S_[x] = 0;
                queue_push(x);
            }
        if (queue_.empty()) return false;

        for (;;) {
            while (!queue_.empty()) {
                const int u = queue_.front();
                queue_.pop_front();
                if (S_[st_[u]] == 1) continue;
                for (int v = 1; v <= n_; ++v)
                    if (g_[u][v].w > 0 && st_[u] != st_[v]) {
                        if (edge_slack(g_[u][v]) == 0) {
                            if (on_found_edge(g_[u][v])) return true;
                        } else {
                            update_slack(u, st_[v]);
                        }
                    }
            }

            // Dual adjustment: smallest slack over the reachable structure.
            i64 d = std::numeric_limits<i64>::max();
            for (int b = n_ + 1; b <= n_x_; ++b)
                if (st_[b] == b && S_[b] == 1) d = std::min(d, lab_[b] / 2);
            for (int x = 1; x <= n_x_; ++x)
                if (st_[x] == x && slack_[x] != 0) {
                    if (S_[x] == -1)
                        d = std::min(d, edge_slack(g_[slack_[x]][x]));
                    else if (S_[x] == 0)
                        d = std::min(d, edge_slack(g_[slack_[x]][x]) / 2);
                }
            for (int u = 1; u <= n_; ++u) {
                if (S_[st_[u]] == 0) {
                    if (lab_[u] <= d) return false;  // free-vertex dual hit zero
                    lab_[u] -= d;
                } else if (S_[st_[u]] == 1) {
                    lab_[u] += d;
                }
            }
            for (int b = n_ + 1; b <= n_x_; ++b)
                if (st_[b] == b) {
                    if (S_[b] == 0)
                        lab_[b] += d * 2;
                    else if (S_[b] == 1)
                        lab_[b] -= d * 2;
                }

            queue_.clear();
            for (int x = 1; x <= n_x_; ++x)
                if (st_[x] == x && slack_[x] != 0 && st_[slack_[x]] != x &&
                    edge_slack(g_[slack_[x]][x]) == 0)
                    if (on_found_edge(g_[slack_[x]][x])) return true;
            for (int b = n_ + 1; b <= n_x_; ++b)
                if (st_[b] == b && S_[b] == 1 && lab_[b] == 0) expand_blossom(b);
        }
    }

    int n_;
    int n_x_;  ///< Highest vertex id in use (originals + live blossoms).
    std::vector<std::vector<Edge>> g_;
    std::vector<i64> lab_;  ///< Dual variables (doubled weights convention).
    std::vector<int> match_, slack_, st_, pa_, S_, vis_;
    std::vector<std::vector<int>> flower_;
    std::vector<std::vector<int>> flower_from_;
    std::deque<int> queue_;
};

constexpr double kScale = 1 << 20;  ///< double -> integer weight scale

/// Solves a perfect matching via weight reflection (see file comment).
MatchingResult solve_perfect(const WeightMatrix& w, bool maximize) {
    const std::size_t n = w.size();
    if (n == 0 || n % 2 != 0)
        throw std::invalid_argument("BlossomMatcher: vertex count must be even and > 0");

    const double lo = w.min_weight();
    const double hi = w.max_weight();
    const double span = std::max(1.0, hi - lo);

    DenseBlossom solver(static_cast<int>(n));
    for (std::size_t u = 0; u < n; ++u)
        for (std::size_t v = u + 1; v < n; ++v) {
            // Shift into a positive range, orient for max-search, and leave
            // headroom so every edge weight is >= 1 (0 would mean no edge).
            const double x = w.get(u, v);
            const double oriented = maximize ? (x - lo) : (hi - x);
            const auto scaled = static_cast<i64>(std::llround(oriented / span * kScale)) + 1;
            solver.set_weight(static_cast<int>(u) + 1, static_cast<int>(v) + 1, scaled);
        }
    solver.solve();

    MatchingResult out;
    out.mate.assign(n, -1);
    for (std::size_t u = 0; u < n; ++u) {
        const int m = solver.mate(static_cast<int>(u) + 1);
        if (m == 0) throw std::runtime_error("BlossomMatcher: matching not perfect");
        out.mate[u] = m - 1;
    }
    for (std::size_t u = 0; u < n; ++u)
        if (out.mate[u] > static_cast<int>(u))
            out.pairs.emplace_back(static_cast<int>(u), out.mate[u]);
    out.total_weight = matching_weight(w, out.pairs);
    return out;
}

}  // namespace

MatchingResult BlossomMatcher::min_weight_perfect(const WeightMatrix& w) const {
    return solve_perfect(w, /*maximize=*/false);
}

MatchingResult BlossomMatcher::max_weight_perfect(const WeightMatrix& w) const {
    return solve_perfect(w, /*maximize=*/true);
}

}  // namespace synpa::matching
