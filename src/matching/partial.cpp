// Imperfect matching via the dummy-node reduction (see matching.hpp).
//
// Padding to exactly 2*cores vertices makes every perfect matching of the
// padded graph a feasible core assignment: task–task edges are real pairs,
// task–dummy edges are tasks running alone, dummy–dummy edges are idle
// cores.  Minimality carries over because the padded edge weights *are* the
// assignment costs.
#include <algorithm>
#include <stdexcept>

#include "matching/matching.hpp"

namespace synpa::matching {

PartialMatching min_weight_partial(const WeightMatrix& w, std::span<const double> solo,
                                   std::size_t cores, const Matcher& matcher) {
    const std::size_t n = w.size();
    if (solo.size() != n)
        throw std::invalid_argument("min_weight_partial: solo weights must cover every task");
    if (cores == 0) throw std::invalid_argument("min_weight_partial: no cores");
    if (n > 2 * cores)
        throw std::invalid_argument("min_weight_partial: more tasks than hardware contexts");

    PartialMatching out;
    if (n == 0) return out;
    if (n == 1) {
        out.singles.push_back(0);
        out.total_weight = solo[0];
        return out;
    }

    const std::size_t dummies = 2 * cores - n;
    if (dummies == 0) {
        const MatchingResult perfect = matcher.min_weight_perfect(w);
        out.pairs = perfect.pairs;
        out.total_weight = perfect.total_weight;
        return out;
    }

    WeightMatrix padded(n + dummies);
    for (std::size_t u = 0; u < n; ++u) {
        for (std::size_t v = u + 1; v < n; ++v) padded.set(u, v, w.get(u, v));
        for (std::size_t d = n; d < n + dummies; ++d) padded.set(u, d, solo[u]);
    }
    // dummy–dummy edges stay at the fill value 0 (an idle core costs nothing).

    const MatchingResult solved = matcher.min_weight_perfect(padded);
    for (auto [u, v] : solved.pairs) {
        const bool u_real = static_cast<std::size_t>(u) < n;
        const bool v_real = static_cast<std::size_t>(v) < n;
        if (u_real && v_real) {
            out.pairs.emplace_back(u, v);
            out.total_weight += w.get(static_cast<std::size_t>(u), static_cast<std::size_t>(v));
        } else if (u_real || v_real) {
            const int task = u_real ? u : v;
            out.singles.push_back(task);
            out.total_weight += solo[static_cast<std::size_t>(task)];
        }
        // dummy–dummy: an idle core, nothing to report.
    }
    std::sort(out.singles.begin(), out.singles.end());
    return out;
}

}  // namespace synpa::matching
