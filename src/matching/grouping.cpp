// Width-generic minimum-cost core grouping (the k-way Step 3).
//
// Pairing 2N threads onto N SMT-2 cores is polynomial (Blossom), but the
// same question at width >= 3 contains 3-dimensional matching and is
// NP-hard, so this module pairs an exact exponential solver for the sizes a
// scheduler actually sees each quantum with a deterministic local-search
// heuristic for everything larger:
//   * exact: a subset DP over vertex bitmasks, f[g][mask] = cheapest way to
//     cover `mask` with g groups, each group a submask of size <= width
//     containing mask's lowest set bit (canonical decomposition — every
//     partition is counted once);
//   * heuristic: greedy seeding (task joins the group with the cheapest
//     incremental cost) followed by move/swap local search to a fixed
//     point.  No randomness anywhere: identical inputs give identical
//     groupings, which keeps scheduler runs reproducible.
#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "matching/matching.hpp"

namespace synpa::matching {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::vector<int> mask_members(std::uint32_t mask) {
    std::vector<int> members;
    for (int v = 0; mask != 0; ++v, mask >>= 1)
        if (mask & 1u) members.push_back(v);
    return members;
}

GroupingResult exact_grouping(std::size_t n, std::size_t cores, std::size_t width,
                              const GroupCost& cost) {
    const std::uint32_t full = (1u << n) - 1u;
    // Group cost per admissible subset (popcount 1..width).
    std::vector<double> subset_cost(full + 1, kInf);
    for (std::uint32_t mask = 1; mask <= full; ++mask) {
        const auto size = static_cast<std::size_t>(std::popcount(mask));
        if (size > width) continue;
        const std::vector<int> members = mask_members(mask);
        subset_cost[mask] = cost(members);
    }

    // Ample cores (cores >= n): no partition of n tasks can exceed n groups,
    // so the group-count cap never binds and a single-dimension DP over
    // masks suffices — the common open-system case, ~min(cores, n)x cheaper.
    if (cores >= n) {
        std::vector<double> f(full + 1, kInf);
        std::vector<std::uint32_t> choice(full + 1, 0);
        f[0] = 0.0;
        for (std::uint32_t mask = 1; mask <= full; ++mask) {
            const std::uint32_t low = mask & (~mask + 1u);
            const std::uint32_t rest = mask ^ low;
            for (std::uint32_t sub = rest;; sub = (sub - 1) & rest) {
                const std::uint32_t group = sub | low;
                if (static_cast<std::size_t>(std::popcount(group)) <= width) {
                    const double total = f[mask ^ group] + subset_cost[group];
                    if (total < f[mask]) {
                        f[mask] = total;
                        choice[mask] = group;
                    }
                }
                if (sub == 0) break;
            }
        }
        GroupingResult out;
        out.total_weight = f[full];
        for (std::uint32_t mask = full; mask != 0; mask ^= choice[mask])
            out.groups.push_back(mask_members(choice[mask]));
        std::sort(out.groups.begin(), out.groups.end());
        return out;
    }

    const std::size_t max_groups = std::min(cores, n);
    // f[g][mask]: cheapest cover of `mask` using exactly g groups.
    std::vector<std::vector<double>> f(max_groups + 1,
                                       std::vector<double>(full + 1, kInf));
    std::vector<std::vector<std::uint32_t>> choice(
        max_groups + 1, std::vector<std::uint32_t>(full + 1, 0));
    f[0][0] = 0.0;
    for (std::size_t g = 1; g <= max_groups; ++g) {
        for (std::uint32_t mask = 1; mask <= full; ++mask) {
            const std::uint32_t low = mask & (~mask + 1u);  // lowest set bit
            const std::uint32_t rest = mask ^ low;
            // Enumerate groups = {low} ∪ (submask of rest), size <= width.
            for (std::uint32_t sub = rest;; sub = (sub - 1) & rest) {
                const std::uint32_t group = sub | low;
                if (static_cast<std::size_t>(std::popcount(group)) <= width) {
                    const double prev = f[g - 1][mask ^ group];
                    if (prev < kInf) {
                        const double total = prev + subset_cost[group];
                        if (total < f[g][mask]) {
                            f[g][mask] = total;
                            choice[g][mask] = group;
                        }
                    }
                }
                if (sub == 0) break;
            }
        }
    }

    std::size_t best_g = 0;
    double best = kInf;
    for (std::size_t g = 1; g <= max_groups; ++g)
        if (f[g][full] < best) {
            best = f[g][full];
            best_g = g;
        }
    if (best_g == 0) throw std::logic_error("min_weight_grouping: no feasible partition");

    GroupingResult out;
    out.total_weight = best;
    std::uint32_t mask = full;
    for (std::size_t g = best_g; g > 0; --g) {
        const std::uint32_t group = choice[g][mask];
        out.groups.push_back(mask_members(group));
        mask ^= group;
    }
    std::sort(out.groups.begin(), out.groups.end());
    return out;
}

double group_cost(const std::vector<int>& group, const GroupCost& cost) {
    return group.empty() ? 0.0 : cost(group);
}

/// Greedy/warm seeding + dirty-restricted local search.  With a null
/// `incumbent` this is the cold heuristic: every task is greedily seeded
/// and every bucket starts dirty, so the search scans everything — the
/// original cold behaviour, decision for decision.  With an incumbent,
/// tasks keep their previous bucket, only buckets whose membership changed
/// start dirty, and the search examines a (move/swap) candidate only when
/// at least one side is dirty — the re-solve cost scales with the dirty
/// set, not with n (near-O(dirty)).  Clean incumbent buckets were already
/// locally optimal against each other, so skipping clean-clean candidates
/// can at worst return a different (never unvalidated) local optimum; the
/// warm path is therefore *not* used where bit-identity to a cold solve is
/// required.
GroupingResult heuristic_grouping(std::size_t n, std::size_t cores, std::size_t width,
                                  const GroupCost& cost,
                                  const std::vector<std::vector<int>>* incumbent) {
    const std::size_t buckets = std::min(cores, n);
    std::vector<std::vector<int>> groups(buckets);
    std::vector<double> bucket_cost(buckets, 0.0);
    std::vector<char> dirty(buckets, incumbent == nullptr ? 1 : 0);

    const auto insert_member = [](std::vector<int>& g, int task) {
        g.insert(std::upper_bound(g.begin(), g.end(), task), task);
    };
    const auto erase_member = [](std::vector<int>& g, int task) {
        g.erase(std::find(g.begin(), g.end(), task));
    };

    // Warm seeding: tasks resume their incumbent bucket.  Ids outside
    // [0, n), duplicates and members beyond the width cap fall through to
    // greedy seeding below (they become part of the dirty set).
    std::vector<char> placed(n, 0);
    if (incumbent != nullptr) {
        const std::size_t seedable = std::min(incumbent->size(), buckets);
        for (std::size_t b = 0; b < seedable; ++b) {
            for (const int id : (*incumbent)[b]) {
                if (id < 0 || static_cast<std::size_t>(id) >= n) continue;
                if (placed[static_cast<std::size_t>(id)] != 0) continue;
                if (groups[b].size() >= width) break;
                groups[b].push_back(id);
                placed[static_cast<std::size_t>(id)] = 1;
            }
            std::sort(groups[b].begin(), groups[b].end());
            bucket_cost[b] = group_cost(groups[b], cost);
        }
    }

    // Greedy seeding of the unplaced tasks (all of them on a cold start):
    // each (index order) joins the bucket with the cheapest incremental
    // cost among those with room; ties resolve to the lowest bucket index.
    // Current bucket costs are cached so each candidate needs one oracle
    // call, not two.
    for (std::size_t t = 0; t < n; ++t) {
        if (placed[t] != 0) continue;
        std::size_t best_b = buckets;
        double best_delta = kInf;
        double best_joined_cost = 0.0;
        for (std::size_t b = 0; b < buckets; ++b) {
            if (groups[b].size() >= width) continue;
            std::vector<int> joined = groups[b];
            insert_member(joined, static_cast<int>(t));
            const double joined_cost = cost(joined);
            const double delta = joined_cost - bucket_cost[b];
            if (delta < best_delta) {
                best_delta = delta;
                best_b = b;
                best_joined_cost = joined_cost;
            }
        }
        if (best_b == buckets)
            throw std::logic_error("min_weight_grouping: greedy seeding overflow");
        insert_member(groups[best_b], static_cast<int>(t));
        bucket_cost[best_b] = best_joined_cost;
        dirty[best_b] = 1;
    }

    // Local search: single-task moves and cross-group swaps, applied
    // first-improvement in a fixed scan order until a pass changes nothing.
    // Each improving move lowers the total by > kEps, so the scan-restart
    // loop terminates; the pass cap only bounds pathological cost surfaces.
    // Per-bucket costs are cached (the GroupCost oracle is the expensive
    // part — for SYNPA it runs k model predictions per call) and updated
    // only when a bucket actually changes.  Candidates touching two clean
    // buckets are skipped (on a cold start nothing is clean); an applied
    // move dirties both buckets involved.
    constexpr double kEps = 1e-12;
    constexpr int kMaxPasses = 256;
    for (int pass = 0; pass < kMaxPasses; ++pass) {
        bool improved = false;
        for (std::size_t a = 0; a < buckets && !improved; ++a) {
            for (std::size_t ai = 0; ai < groups[a].size() && !improved; ++ai) {
                const int task = groups[a][ai];
                const double cost_a = bucket_cost[a];
                std::vector<int> a_without = groups[a];
                erase_member(a_without, task);
                // Lazy: the donor-side cost is an oracle call, paid only
                // when some (a, b) candidate is actually examined.
                double a_without_cost = 0.0;
                bool have_without = false;
                for (std::size_t b = 0; b < buckets && !improved; ++b) {
                    if (b == a) continue;
                    if (dirty[a] == 0 && dirty[b] == 0) continue;
                    if (!have_without) {
                        a_without_cost = group_cost(a_without, cost);
                        have_without = true;
                    }
                    const double cost_b = bucket_cost[b];
                    // Move task a->b.
                    if (groups[b].size() < width) {
                        std::vector<int> b_with = groups[b];
                        insert_member(b_with, task);
                        const double b_with_cost = cost(b_with);
                        const double delta =
                            (a_without_cost - cost_a) + (b_with_cost - cost_b);
                        if (delta < -kEps) {
                            groups[a] = std::move(a_without);
                            groups[b] = std::move(b_with);
                            bucket_cost[a] = a_without_cost;
                            bucket_cost[b] = b_with_cost;
                            dirty[a] = 1;
                            dirty[b] = 1;
                            improved = true;
                            break;  // re-scan from a stable snapshot
                        }
                    }
                    // Swap task with each member of b.
                    for (std::size_t bi = 0; bi < groups[b].size(); ++bi) {
                        const int other = groups[b][bi];
                        std::vector<int> new_a = a_without;
                        insert_member(new_a, other);
                        std::vector<int> new_b = groups[b];
                        erase_member(new_b, other);
                        insert_member(new_b, task);
                        const double new_a_cost = group_cost(new_a, cost);
                        const double new_b_cost = group_cost(new_b, cost);
                        const double delta = new_a_cost + new_b_cost - cost_a - cost_b;
                        if (delta < -kEps) {
                            groups[a] = std::move(new_a);
                            groups[b] = std::move(new_b);
                            bucket_cost[a] = new_a_cost;
                            bucket_cost[b] = new_b_cost;
                            dirty[a] = 1;
                            dirty[b] = 1;
                            improved = true;
                            break;
                        }
                    }
                }
            }
        }
        if (!improved) break;
    }

    // Assemble from the bucket-cost cache: every final bucket's cost was
    // already produced by the oracle (seeding or the last improving move),
    // so re-invoking the expensive oracle once per group here would buy
    // nothing — sum the cached values in sorted-group order instead (the
    // same summation order, hence the same bits, as recomputation).
    std::vector<std::pair<std::vector<int>, double>> packed;
    packed.reserve(buckets);
    for (std::size_t b = 0; b < buckets; ++b)
        if (!groups[b].empty()) packed.emplace_back(std::move(groups[b]), bucket_cost[b]);
    std::sort(packed.begin(), packed.end());
    GroupingResult out;
    out.groups.reserve(packed.size());
    for (auto& [group, group_weight] : packed) {
        out.total_weight += group_weight;
        out.groups.push_back(std::move(group));
    }
    return out;
}

}  // namespace

namespace {

/// Shared argument guard; `who` names the public entry point so the
/// diagnostic blames the function the caller actually invoked.
void check_grouping_args(std::size_t n, std::size_t cores, std::size_t width,
                         const char* who) {
    if (width == 0) throw std::invalid_argument(std::string(who) + ": zero width");
    if (cores == 0) throw std::invalid_argument(std::string(who) + ": no cores");
    if (n > cores * width)
        throw std::invalid_argument(std::string(who) + ": more tasks than SMT contexts");
}

}  // namespace

GroupingResult min_weight_grouping(std::size_t n, std::size_t cores, std::size_t width,
                                   const GroupCost& cost) {
    check_grouping_args(n, cores, width, "min_weight_grouping");
    if (n == 0) return {};
    if (n <= kExactGroupingLimit) return exact_grouping(n, cores, width, cost);
    return heuristic_grouping(n, cores, width, cost, nullptr);
}

GroupingResult min_weight_grouping(std::size_t n, std::size_t cores, std::size_t width,
                                   const GroupCost& cost,
                                   const std::vector<std::vector<int>>& incumbent) {
    check_grouping_args(n, cores, width, "min_weight_grouping");
    if (n == 0) return {};
    // Exact sizes stay exact: the DP visits every partition anyway, so a
    // warm start could only change (worsen) nothing — ignore the incumbent.
    if (n <= kExactGroupingLimit) return exact_grouping(n, cores, width, cost);
    return heuristic_grouping(n, cores, width, cost, &incumbent);
}

GroupingResult min_weight_grouping_heuristic(std::size_t n, std::size_t cores,
                                             std::size_t width, const GroupCost& cost) {
    check_grouping_args(n, cores, width, "min_weight_grouping_heuristic");
    if (n == 0) return {};
    return heuristic_grouping(n, cores, width, cost, nullptr);
}

GroupingResult min_weight_grouping_heuristic(std::size_t n, std::size_t cores,
                                             std::size_t width, const GroupCost& cost,
                                             const std::vector<std::vector<int>>& incumbent) {
    check_grouping_args(n, cores, width, "min_weight_grouping_heuristic");
    if (n == 0) return {};
    return heuristic_grouping(n, cores, width, cost, &incumbent);
}

double grouping_weight(const std::vector<std::vector<int>>& groups, const GroupCost& cost) {
    double total = 0.0;
    for (const auto& g : groups)
        if (!g.empty()) total += cost(g);
    return total;
}

}  // namespace synpa::matching
