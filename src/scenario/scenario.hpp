// Dynamic workload scenarios: open-system arrivals, variable load, and the
// closed-system special case that reproduces the paper's methodology.
//
// The paper's evaluation (§V) is a closed system — exactly 2 threads per
// core, finished tasks relaunched instantly.  A ScenarioSpec generalizes
// that to an open system: an arrival process (Poisson, periodic bursts, or
// an explicit trace) delivers tasks over time, a piecewise load profile
// scales the arrival rate, and every task carries its own service demand
// (target instructions from isolated profiling).  build_trace samples the
// process into a deterministic ScenarioTrace — the pure function of
// (spec, config) that the ArtifactCache memoizes — and ScenarioRunner
// (runner.hpp) executes it.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sched/thread_manager.hpp"
#include "uarch/sim_config.hpp"

namespace synpa::scenario {

enum class ArrivalProcess {
    kClosed,   ///< the paper's methodology: fixed slots, relaunch on finish
    kPoisson,  ///< independent arrivals at `arrival_rate` per quantum
    kBurst,    ///< `burst_size` arrivals every `burst_period` quanta
    kTrace,    ///< explicit (quantum, app) arrival list
};

const char* arrival_process_name(ArrivalProcess p) noexcept;

/// Request class of a task in the fleet serving layer (src/fleet/): the
/// contract it arrives with, not something a policy may change.
enum class SloClass {
    kBatch = 0,           ///< throughput-oriented; generous deadline, preemptible
    kLatencyCritical = 1, ///< tail-latency-oriented; tight deadline, may preempt
};

const char* slo_class_name(SloClass c) noexcept;

/// One explicit arrival of a kTrace scenario.
struct TraceArrival {
    std::uint64_t quantum = 0;
    std::string app_name;
};

/// Piecewise-constant load profile: from `start_quantum` on, the arrival
/// rate is multiplied by `rate_scale` (until the next phase starts).
struct LoadPhase {
    std::uint64_t start_quantum = 0;
    double rate_scale = 1.0;
};

struct ScenarioSpec {
    std::string name;
    ArrivalProcess process = ArrivalProcess::kPoisson;

    /// Applications drawn uniformly per arrival (kPoisson/kBurst and the
    /// initial population).  kTrace names its apps explicitly.
    std::vector<std::string> app_mix;

    std::uint64_t initial_tasks = 0;  ///< tasks already in the system at quantum 0
    double arrival_rate = 0.0;        ///< kPoisson: mean arrivals per quantum
    std::vector<LoadPhase> load_profile;  ///< empty = constant rate

    std::uint64_t burst_period = 0;  ///< kBurst: quanta between bursts
    std::uint64_t burst_size = 0;    ///< kBurst: arrivals per burst

    std::vector<TraceArrival> trace;  ///< kTrace arrivals (any order)

    /// Service demand: each task's target is its application's isolated
    /// instruction count over `service_quanta`, jittered per task by a
    /// uniform factor in [1 - service_jitter, 1 + service_jitter].
    std::uint64_t service_quanta = 30;
    double service_jitter = 0.3;

    std::uint64_t horizon_quanta = 200;  ///< arrivals stop after this quantum
    std::uint64_t seed = 42;             ///< drives arrivals, app draws, jitter

    // ------------------------------------------------- SLO / fleet fields --
    // Request-class sampling for the fleet serving layer.  Each arrival is
    // latency-critical with probability lc_fraction (drawn from a dedicated
    // RNG stream, so legacy traces are bit-identical at lc_fraction = 0).  A
    // task's deadline is arrival + slack * its isolated service time, using
    // the slack of its class.  Single-node ScenarioRunner ignores all of
    // this; only fleet::FleetRunner enforces deadlines and priorities.
    double lc_fraction = 0.0;        ///< probability an arrival is latency-critical
    double lc_deadline_slack = 4.0;  ///< LC deadline slack (x isolated quanta)
    double batch_deadline_slack = 24.0;  ///< batch deadline slack
    int lc_priority = 10;   ///< admission priority of LC arrivals (higher wins)
    int batch_priority = 0; ///< admission priority of batch arrivals
};

/// One sampled task of a scenario: when it arrives, what it runs, and how
/// much isolated work it must complete.
struct PlannedTask {
    std::uint64_t arrival_quantum = 0;
    std::string app_name;
    std::uint64_t seed = 1;           ///< behaviour seed of the instance
    std::uint64_t service_insts = 0;  ///< finish line (retired instructions)
    double isolated_ipc = 0.0;        ///< from the app's isolated service profile

    // SLO contract (consumed by the fleet layer; see ScenarioSpec).
    SloClass slo = SloClass::kBatch;
    int priority = 0;               ///< admission priority (class default)
    double deadline_quantum = 0.0;  ///< absolute deadline; 0 = no deadline
};

/// A fully sampled scenario, ready to run.  Tasks are sorted by arrival
/// quantum (stable), which is also the admission (FIFO) order.
struct ScenarioTrace {
    ScenarioSpec spec;
    std::vector<PlannedTask> tasks;
};

/// Samples the arrival process, draws each task's application and service
/// jitter, and profiles each distinct application once in isolation for the
/// service demand baseline.  Deterministic in (spec, cfg).
ScenarioTrace build_trace(const ScenarioSpec& spec, const uarch::SimConfig& cfg);

/// Wraps prepared classic-methodology task specs as a kClosed scenario:
/// every task arrives at quantum 0 and the runner executes the paper's
/// relaunch-to-hold-load-constant loop (ThreadManager) verbatim.
ScenarioTrace closed_trace(std::string name, std::span<const sched::TaskSpec> tasks);

/// Deterministic fingerprint over every spec field that can change the
/// sampled trace or the run — including the arrival seed — used by
/// exp::ArtifactCache to key memoized traces (two scenarios differing only
/// in seed must not alias).
std::uint64_t scenario_fingerprint(const ScenarioSpec& spec) noexcept;

}  // namespace synpa::scenario
