#include "scenario/scenario.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <map>
#include <stdexcept>

#include "apps/spec_suite.hpp"
#include "common/rng.hpp"
#include "model/trainer.hpp"

namespace synpa::scenario {
namespace {

/// Rate multiplier in effect at `quantum` (phases sorted by start).
double rate_scale_at(const std::vector<LoadPhase>& profile, std::uint64_t quantum) {
    double scale = 1.0;
    for (const LoadPhase& p : profile)
        if (p.start_quantum <= quantum) scale = p.rate_scale;
    return scale;
}

/// Knuth's Poisson sampler; fine for the per-quantum rates scenarios use.
std::uint64_t poisson_draw(common::Rng& rng, double lambda) {
    if (lambda <= 0.0) return 0;
    const double limit = std::exp(-lambda);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
        ++k;
        p *= rng.uniform();
    } while (p > limit);
    return k - 1;
}

/// Isolated service-demand baseline for one application, computed once per
/// distinct app per trace build.
struct ServiceBaseline {
    std::uint64_t insts = 0;
    double ipc = 0.0;
};

class BaselineCache {
public:
    BaselineCache(const ScenarioSpec& spec, const uarch::SimConfig& cfg)
        : spec_(spec), cfg_(cfg) {}

    const ServiceBaseline& of(const std::string& app_name) {
        const auto it = cache_.find(app_name);
        if (it != cache_.end()) return it->second;
        const model::IsolatedProfile prof = model::profile_isolated(
            apps::find_app(app_name), cfg_, spec_.service_quanta,
            common::derive_key(spec_.seed, common::hash_string(app_name), 0x0150));
        return cache_
            .emplace(app_name, ServiceBaseline{.insts = prof.total_instructions(),
                                               .ipc = prof.ipc()})
            .first->second;
    }

private:
    const ScenarioSpec& spec_;
    const uarch::SimConfig& cfg_;
    std::map<std::string, ServiceBaseline> cache_;
};

}  // namespace

const char* slo_class_name(SloClass c) noexcept {
    switch (c) {
        case SloClass::kBatch: return "batch";
        case SloClass::kLatencyCritical: return "latency_critical";
    }
    return "unknown";
}

const char* arrival_process_name(ArrivalProcess p) noexcept {
    switch (p) {
        case ArrivalProcess::kClosed: return "closed";
        case ArrivalProcess::kPoisson: return "poisson";
        case ArrivalProcess::kBurst: return "burst";
        case ArrivalProcess::kTrace: return "trace";
    }
    return "unknown";
}

ScenarioTrace build_trace(const ScenarioSpec& spec, const uarch::SimConfig& cfg) {
    if (spec.process == ArrivalProcess::kClosed)
        throw std::invalid_argument(
            "build_trace: closed scenarios come from closed_trace (prepared task specs)");
    if (spec.app_mix.empty() &&
        (spec.process != ArrivalProcess::kTrace || spec.initial_tasks > 0))
        throw std::invalid_argument("build_trace: app_mix must not be empty");
    if (spec.service_jitter < 0.0 || spec.service_jitter >= 1.0)
        throw std::invalid_argument("build_trace: service_jitter must be in [0, 1)");
    if (spec.lc_fraction < 0.0 || spec.lc_fraction > 1.0)
        throw std::invalid_argument("build_trace: lc_fraction must be in [0, 1]");
    if (spec.lc_deadline_slack <= 0.0 || spec.batch_deadline_slack <= 0.0)
        throw std::invalid_argument("build_trace: deadline slacks must be > 0");

    // rate_scale_at takes the last matching phase, so phases must be in
    // start order — sort a copy rather than trusting the spec's order.
    std::vector<LoadPhase> profile = spec.load_profile;
    std::stable_sort(profile.begin(), profile.end(),
                     [](const LoadPhase& a, const LoadPhase& b) {
                         return a.start_quantum < b.start_quantum;
                     });

    // (arrival quantum, app) pairs, before demand sampling.
    std::vector<TraceArrival> arrivals;
    common::Rng rng(spec.seed, 0xa771);
    const auto draw_app = [&] { return spec.app_mix[rng.below(spec.app_mix.size())]; };

    for (std::uint64_t i = 0; i < spec.initial_tasks; ++i) arrivals.push_back({0, draw_app()});

    switch (spec.process) {
        case ArrivalProcess::kPoisson:
            for (std::uint64_t q = 0; q < spec.horizon_quanta; ++q) {
                const double lambda = spec.arrival_rate * rate_scale_at(profile, q);
                const std::uint64_t count = poisson_draw(rng, lambda);
                for (std::uint64_t i = 0; i < count; ++i) arrivals.push_back({q, draw_app()});
            }
            break;
        case ArrivalProcess::kBurst: {
            if (spec.burst_period == 0)
                throw std::invalid_argument("build_trace: burst_period must be > 0");
            for (std::uint64_t q = 0; q < spec.horizon_quanta; q += spec.burst_period) {
                const double scale = rate_scale_at(profile, q);
                const auto size = static_cast<std::uint64_t>(
                    std::llround(static_cast<double>(spec.burst_size) * scale));
                for (std::uint64_t i = 0; i < size; ++i) arrivals.push_back({q, draw_app()});
            }
            break;
        }
        case ArrivalProcess::kTrace:
            for (const TraceArrival& a : spec.trace) {
                if (a.quantum >= spec.horizon_quanta) continue;
                arrivals.push_back(a);
            }
            break;
        case ArrivalProcess::kClosed: break;  // unreachable (rejected above)
    }

    std::stable_sort(arrivals.begin(), arrivals.end(),
                     [](const TraceArrival& a, const TraceArrival& b) {
                         return a.quantum < b.quantum;
                     });

    // Sample each task's behaviour seed and service demand.  Draws are
    // consumed in arrival order from a dedicated stream, so the arrival
    // process and the demand sampling cannot perturb each other.
    ScenarioTrace trace;
    trace.spec = spec;
    trace.tasks.reserve(arrivals.size());
    BaselineCache baselines(spec, cfg);
    common::Rng demand_rng(spec.seed, 0xd3a2);
    // SLO classes come from their own stream: enabling lc_fraction must not
    // perturb the arrival process or the demand sampling above.
    common::Rng slo_rng(spec.seed, 0x510c);
    const double qcycles = static_cast<double>(cfg.cycles_per_quantum);
    for (std::size_t i = 0; i < arrivals.size(); ++i) {
        const ServiceBaseline& base = baselines.of(arrivals[i].app_name);
        const double jitter = spec.service_jitter > 0.0
                                  ? demand_rng.uniform(1.0 - spec.service_jitter,
                                                       1.0 + spec.service_jitter)
                                  : 1.0;
        PlannedTask task;
        task.arrival_quantum = arrivals[i].quantum;
        task.app_name = arrivals[i].app_name;
        task.seed = common::derive_key(spec.seed, 0x7a5c, static_cast<std::uint64_t>(i));
        task.service_insts = std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(
                   std::llround(static_cast<double>(base.insts) * jitter)));
        task.isolated_ipc = base.ipc;

        const bool lc = spec.lc_fraction > 0.0 && slo_rng.chance(spec.lc_fraction);
        task.slo = lc ? SloClass::kLatencyCritical : SloClass::kBatch;
        task.priority = lc ? spec.lc_priority : spec.batch_priority;
        const double isolated_quanta =
            base.ipc > 0.0
                ? static_cast<double>(task.service_insts) / (base.ipc * qcycles)
                : 0.0;
        const double slack = lc ? spec.lc_deadline_slack : spec.batch_deadline_slack;
        task.deadline_quantum = isolated_quanta > 0.0
                                    ? static_cast<double>(task.arrival_quantum) +
                                          slack * isolated_quanta
                                    : 0.0;
        trace.tasks.push_back(std::move(task));
    }
    return trace;
}

ScenarioTrace closed_trace(std::string name, std::span<const sched::TaskSpec> tasks) {
    ScenarioTrace trace;
    trace.spec.name = std::move(name);
    trace.spec.process = ArrivalProcess::kClosed;
    trace.spec.initial_tasks = tasks.size();
    trace.tasks.reserve(tasks.size());
    for (const sched::TaskSpec& t : tasks) {
        PlannedTask task;
        task.arrival_quantum = 0;
        task.app_name = t.app_name;
        task.seed = t.seed;
        task.service_insts = t.target_insts;
        task.isolated_ipc = t.isolated_ipc;
        trace.tasks.push_back(std::move(task));
    }
    return trace;
}

std::uint64_t scenario_fingerprint(const ScenarioSpec& spec) noexcept {
    const auto hash_double = [](double v) noexcept {
        return common::splitmix64(std::bit_cast<std::uint64_t>(v));
    };
    std::uint64_t h = common::hash_string("scenario");
    h = common::derive_key(h, common::hash_string(spec.name),
                           static_cast<std::uint64_t>(spec.process), spec.seed);
    h = common::derive_key(h, spec.initial_tasks, hash_double(spec.arrival_rate));
    h = common::derive_key(h, spec.burst_period, spec.burst_size);
    h = common::derive_key(h, spec.service_quanta, hash_double(spec.service_jitter),
                           spec.horizon_quanta);
    h = common::derive_key(h, hash_double(spec.lc_fraction),
                           hash_double(spec.lc_deadline_slack),
                           hash_double(spec.batch_deadline_slack));
    h = common::derive_key(h, static_cast<std::uint64_t>(spec.lc_priority),
                           static_cast<std::uint64_t>(spec.batch_priority), 0x510);
    for (const std::string& app : spec.app_mix)
        h = common::derive_key(h, common::hash_string(app), 0xa99);
    for (const LoadPhase& p : spec.load_profile)
        h = common::derive_key(h, p.start_quantum, hash_double(p.rate_scale), 0x10ad);
    for (const TraceArrival& a : spec.trace)
        h = common::derive_key(h, a.quantum, common::hash_string(a.app_name), 0x7ace);
    return h;
}

}  // namespace synpa::scenario
