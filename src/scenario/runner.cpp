#include "scenario/runner.hpp"

#include <algorithm>
#include <stdexcept>

#include "apps/spec_suite.hpp"
#include "obs/trace.hpp"
#include "sched/quantum_loop.hpp"
#include "sched/thread_manager.hpp"

namespace synpa::scenario {

double ScenarioResult::mean_utilization() const noexcept {
    if (timeline.empty()) return 0.0;
    double sum = 0.0;
    for (const QuantumSample& s : timeline) sum += s.utilization;
    return sum / static_cast<double>(timeline.size());
}

ScenarioRunner::ScenarioRunner(uarch::Platform& platform, sched::AllocationPolicy& policy,
                               const ScenarioTrace& trace, Options opts)
    : platform_(platform), policy_(policy), trace_(trace), opts_(opts) {
    // Null out a disabled tracer once; closed scenarios re-wire through the
    // delegated ThreadManager instead.
    if (opts_.tracer != nullptr && opts_.tracer->enabled() &&
        trace_.spec.process != ArrivalProcess::kClosed) {
        tracer_ = opts_.tracer;
        platform_.set_tracer(tracer_);
        policy_.set_tracer(tracer_);
    }
    if (trace_.spec.process == ArrivalProcess::kClosed &&
        trace_.tasks.size() != static_cast<std::size_t>(platform_.hw_contexts()))
        throw std::invalid_argument(
            "ScenarioRunner: closed scenarios must fill the platform");
    for (std::size_t i = 1; i < trace_.tasks.size(); ++i)
        if (trace_.tasks[i - 1].arrival_quantum > trace_.tasks[i].arrival_quantum)
            throw std::invalid_argument("ScenarioRunner: trace tasks must be arrival-sorted");
}

ScenarioResult ScenarioRunner::run() {
    ScenarioResult result =
        trace_.spec.process == ArrivalProcess::kClosed ? run_closed() : run_open();
    // Online-adaptation accounting: policies that retrain their model at
    // runtime expose counters through sched::OnlinePolicy; frozen-model
    // policies leave the fields at their zero defaults.
    if (const auto* online = dynamic_cast<const sched::OnlinePolicy*>(&policy_)) {
        result.adaptive = true;
        result.phase_changes = online->phase_changes();
        result.model_refits = online->model_refits();
    }
    return result;
}

// ---------------------------------------------------------------- closed --

ScenarioResult ScenarioRunner::run_closed() {
    // The closed system *is* the paper's methodology: delegate to the
    // classic manager so turnaround results are bit-identical with a direct
    // ThreadManager run (the quantum mechanics are shared either way).
    std::vector<sched::TaskSpec> specs;
    specs.reserve(trace_.tasks.size());
    for (const PlannedTask& t : trace_.tasks)
        specs.push_back({.app_name = t.app_name,
                         .seed = t.seed,
                         .target_insts = t.service_insts,
                         .isolated_ipc = t.isolated_ipc});
    sched::ThreadManager manager(
        platform_, policy_, specs,
        {.max_quanta = opts_.max_quanta,
         .record_traces = opts_.record_timeline,
         .tracer = opts_.tracer,
         .on_quantum = opts_.on_quantum});
    const sched::RunResult run = manager.run();

    ScenarioResult result;
    result.scenario = trace_.spec.name;
    result.policy_name = run.policy_name;
    result.quanta_executed = run.quanta_executed;
    result.migrations = run.migrations;
    result.cross_chip_migrations = run.cross_chip_migrations;
    result.completed = run.completed;
    result.turnaround_quanta = run.turnaround_quanta;

    const double qcycles = static_cast<double>(platform_.config().cycles_per_quantum);
    result.tasks.resize(trace_.tasks.size());
    for (std::size_t s = 0; s < trace_.tasks.size(); ++s) {
        TaskRecord& rec = result.tasks[s];
        rec.plan_index = s;
        rec.app_name = trace_.tasks[s].app_name;
        rec.service_insts = trace_.tasks[s].service_insts;
        rec.isolated_ipc = trace_.tasks[s].isolated_ipc;
    }
    for (const sched::TaskOutcome& out : run.outcomes) {
        TaskRecord& rec = result.tasks[static_cast<std::size_t>(out.slot_index)];
        rec.task_id = out.slot_index + 1;  // ThreadManager ids originals 1..N
        rec.chip_id = out.final_core >= 0 ? platform_.chip_of_core(out.final_core) : -1;
        rec.finish_quantum = out.finish_quantum;
        rec.turnaround_quanta = out.finish_quantum;
        const double isolated_quanta =
            rec.isolated_ipc > 0.0
                ? static_cast<double>(rec.service_insts) / (rec.isolated_ipc * qcycles)
                : 0.0;
        rec.slowdown = isolated_quanta > 0.0 ? out.finish_quantum / isolated_quanta : 0.0;
        rec.completed = true;
        ++result.completed_tasks;
    }

    if (opts_.record_timeline && !run.traces.empty()) {
        // ThreadManager does not attribute migrations to quanta, so closed
        // timelines leave every sample's cumulative-migrations field at 0;
        // the run total is in result.migrations.
        result.timeline.resize(static_cast<std::size_t>(run.quanta_executed));
        for (std::size_t q = 0; q < result.timeline.size(); ++q) {
            QuantumSample& sample = result.timeline[q];
            sample.quantum = q;
            sample.live = static_cast<int>(trace_.tasks.size());
            sample.utilization = 1.0;  // the closed system keeps the chip full
            for (const auto& trace : run.traces)
                if (q < trace.size()) sample.aggregate_ipc += trace[q].ipc;
        }
    }
    return result;
}

// ------------------------------------------------------------------ open --

int ScenarioRunner::queued_at(std::uint64_t quantum) const {
    std::size_t arrived = next_plan_;
    while (arrived < trace_.tasks.size() &&
           trace_.tasks[arrived].arrival_quantum <= quantum)
        ++arrived;
    return static_cast<int>(arrived - next_plan_);
}

void ScenarioRunner::admit(std::uint64_t quantum) {
    const auto capacity = static_cast<std::size_t>(platform_.hw_contexts());
    while (next_plan_ < trace_.tasks.size() &&
           trace_.tasks[next_plan_].arrival_quantum <= quantum &&
           live_.size() < capacity) {
        const PlannedTask& plan = trace_.tasks[next_plan_];
        Live lv;
        lv.plan_index = next_plan_;
        lv.admit_quantum = quantum;
        lv.task = std::make_unique<apps::AppInstance>(
            next_task_id_++, apps::find_app(plan.app_name), plan.seed);

        // Spread before doubling up (the CFS behaviour the paper observes):
        // an arrival takes the least-loaded core platform-wide (ties to the
        // lowest global index, so chip 0 fills first at equal load) in its
        // lowest free SMT slot.  The policy regroups it from the next
        // boundary.
        uarch::CpuSlot where{-1, -1};
        int best_load = platform_.config().smt_ways;
        for (int c = 0; c < platform_.core_count(); ++c) {
            const int load = platform_.core(c).active_threads();
            if (load >= best_load) continue;
            best_load = load;
            int slot = 0;
            while (platform_.core(c).slot(slot).bound()) ++slot;
            where = {c, slot};
        }
        platform_.bind(*lv.task, where);
        if (tracer_ != nullptr && tracer_->wants(obs::EventKind::kAdmission)) {
            obs::TraceEvent e;
            e.kind = obs::EventKind::kAdmission;
            e.quantum = quantum;
            e.task = lv.task->id();
            e.core = where.core;
            e.detail = plan.app_name;
            tracer_->emit(std::move(e));
        }
        live_.push_back(std::move(lv));
        ++next_plan_;
    }
}

ScenarioResult ScenarioRunner::run_open() {
    ScenarioResult result;
    result.scenario = trace_.spec.name;
    result.policy_name = policy_.name();
    result.tasks.resize(trace_.tasks.size());
    for (std::size_t i = 0; i < trace_.tasks.size(); ++i) {
        TaskRecord& rec = result.tasks[i];
        rec.plan_index = i;
        rec.app_name = trace_.tasks[i].app_name;
        rec.arrival_quantum = trace_.tasks[i].arrival_quantum;
        rec.service_insts = trace_.tasks[i].service_insts;
        rec.isolated_ipc = trace_.tasks[i].isolated_ipc;
    }

    const double qcycles = static_cast<double>(platform_.config().cycles_per_quantum);
    const int capacity = platform_.hw_contexts();
    std::uint64_t quantum = 0;

    while (quantum < opts_.max_quanta) {
        admit(quantum);
        if (live_.empty() && next_plan_ >= trace_.tasks.size()) break;  // drained

        const int queued = queued_at(quantum);

        // Flight recorder: stamp the boundary and time the four phases with
        // host wall-clock (the "observe" bucket covers observe + retire).
        // Tracing only reads simulated state — traced runs are bit-identical
        // to untraced ones.
        const std::uint64_t q = quantum;
        obs::QuantumStats qstats;
        qstats.quantum = q;
        qstats.live = static_cast<int>(live_.size());
        qstats.queued = queued;
        qstats.utilization =
            static_cast<double>(live_.size()) / static_cast<double>(capacity);
        obs::PhaseStopwatch sw(tracer_ != nullptr);
        if (tracer_ != nullptr) tracer_->begin_quantum(q, qstats.live, queued);

        platform_.run_quantum();
        ++quantum;
        qstats.simulate_us = sw.lap_us();

        if (live_.empty()) {
            // Idle gap before the next arrival.
            if (opts_.record_timeline)
                result.timeline.push_back({.quantum = quantum - 1,
                                           .queued = queued,
                                           .migrations = result.migrations});
            if (tracer_ != nullptr) tracer_->end_quantum(qstats);
            continue;
        }

        // Observe every live task (admission order — the stable slot order
        // shared with bind_allocation below).
        std::vector<sched::TaskObservation> obs;
        obs.reserve(live_.size());
        double aggregate_ipc = 0.0;
        for (Live& lv : live_) {
            obs.push_back(sched::observe_task(platform_, *lv.task,
                                              static_cast<int>(lv.plan_index),
                                              trace_.tasks[lv.plan_index].app_name,
                                              lv.prev_bank));
            aggregate_ipc += obs.back().breakdown.ipc();
        }

        if (opts_.record_timeline)
            result.timeline.push_back(
                {.quantum = quantum - 1,
                 .live = static_cast<int>(live_.size()),
                 .queued = queued,
                 .utilization = static_cast<double>(live_.size()) /
                                static_cast<double>(capacity),
                 .aggregate_ipc = aggregate_ipc,
                 .migrations = result.migrations});

        // Retire tasks whose service demand completed this quantum.
        for (std::size_t i = 0; i < live_.size();) {
            Live& lv = live_[i];
            const PlannedTask& plan = trace_.tasks[lv.plan_index];
            const std::uint64_t insts_now = lv.task->insts_retired();
            if (insts_now >= plan.service_insts) {
                const double frac =
                    sched::finish_fraction(lv.insts_prev, insts_now, plan.service_insts);
                TaskRecord& rec = result.tasks[lv.plan_index];
                rec.task_id = lv.task->id();
                rec.admit_quantum = lv.admit_quantum;
                rec.finish_quantum = static_cast<double>(quantum - 1) + frac;
                rec.turnaround_quanta =
                    rec.finish_quantum - static_cast<double>(plan.arrival_quantum);
                rec.queue_quanta =
                    static_cast<double>(lv.admit_quantum - plan.arrival_quantum);
                const double isolated_quanta =
                    plan.isolated_ipc > 0.0
                        ? static_cast<double>(plan.service_insts) /
                              (plan.isolated_ipc * qcycles)
                        : 0.0;
                rec.slowdown =
                    isolated_quanta > 0.0 ? rec.turnaround_quanta / isolated_quanta : 0.0;
                rec.completed = true;
                ++result.completed_tasks;
                result.turnaround_quanta =
                    std::max(result.turnaround_quanta, rec.finish_quantum);

                const int id = lv.task->id();
                rec.chip_id = platform_.chip_of_core(platform_.placement(id).core);
                if (tracer_ != nullptr && tracer_->wants(obs::EventKind::kRetirement)) {
                    obs::TraceEvent e;
                    e.kind = obs::EventKind::kRetirement;
                    e.quantum = q;
                    e.task = id;
                    e.core = platform_.placement(id).core;
                    e.value = rec.finish_quantum;
                    e.detail = plan.app_name;
                    tracer_->emit(std::move(e));
                }
                platform_.unbind(id);
                platform_.forget_task(id);  // retired for good; ids never reused
                policy_.on_task_finished(id);
                live_.erase(live_.begin() + static_cast<std::ptrdiff_t>(i));
                obs.erase(obs.begin() + static_cast<std::ptrdiff_t>(i));
                continue;
            }
            lv.prev_bank = lv.task->counters();
            lv.insts_prev = insts_now;
            ++i;
        }

        qstats.observe_us = sw.lap_us();

        // Let the policy re-pair the survivors (partial allocations allowed;
        // a short answer means trailing cores idle).
        if (!live_.empty()) {
            sched::CoreAllocation alloc = policy_.reallocate(obs);
            qstats.decide_us = sw.lap_us();
            if (alloc.size() > static_cast<std::size_t>(platform_.core_count()))
                throw std::runtime_error("ScenarioRunner: allocation exceeds core count");
            alloc.resize(static_cast<std::size_t>(platform_.core_count()));
            std::vector<apps::AppInstance*> tasks;
            tasks.reserve(live_.size());
            for (Live& lv : live_) tasks.push_back(lv.task.get());
            const sched::BindStats stats =
                sched::bind_allocation(platform_, alloc, tasks,
                                       /*require_full_groups=*/false, tracer_);
            result.migrations += stats.migrations;
            result.cross_chip_migrations += stats.cross_chip;
            qstats.bind_us = sw.lap_us();
            qstats.migrations = stats.migrations;
            qstats.cross_chip = stats.cross_chip;
        }
        if (tracer_ != nullptr) tracer_->end_quantum(qstats);
        if (opts_.on_quantum) opts_.on_quantum(platform_);
    }

    // Unfinished work (safety cap or never admitted) marks the run
    // incomplete; records keep whatever is known about the task.
    result.quanta_executed = quantum;
    for (Live& lv : live_) {
        TaskRecord& rec = result.tasks[lv.plan_index];
        rec.task_id = lv.task->id();
        rec.admit_quantum = lv.admit_quantum;
        rec.chip_id = platform_.chip_of_core(platform_.placement(lv.task->id()).core);
        platform_.unbind(lv.task->id());
        platform_.forget_task(lv.task->id());
    }
    result.completed = result.completed_tasks == trace_.tasks.size();
    // Match the classic manager's convention for incomplete runs: report
    // the executed quanta rather than the (possibly zero) best finish time.
    if (!result.completed) result.turnaround_quanta = static_cast<double>(quantum);
    return result;
}

}  // namespace synpa::scenario
