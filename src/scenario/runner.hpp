// The open-system driver: admits arriving tasks onto free hardware
// threads, retires them when their service demand completes, and lets the
// allocation policy regroup the live set every quantum — including partial
// allocations (cores running fewer than smt_ways threads, idle cores)
// whenever the runnable count differs from smt_ways x cores.
//
// Shares its quantum mechanics (sched/quantum_loop.hpp) with the classic
// ThreadManager; a kClosed trace is delegated to ThreadManager outright, so
// a scenario with no arrivals/departures and a full chip reproduces the
// paper-methodology results bit-identically (asserted in
// tests/test_scenario.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "pmu/counters.hpp"
#include "scenario/scenario.hpp"
#include "sched/policy.hpp"
#include "uarch/platform.hpp"

namespace synpa::scenario {

/// Final record for one planned task, in plan (arrival) order.
struct TaskRecord {
    int task_id = -1;  ///< -1 when the task was never admitted
    std::size_t plan_index = 0;
    std::string app_name;
    std::uint64_t arrival_quantum = 0;
    std::uint64_t admit_quantum = 0;   ///< when it got a hardware thread
    int chip_id = -1;                  ///< chip it last ran on (-1: never admitted)
    double finish_quantum = -1.0;      ///< fractional; -1 when unfinished
    std::uint64_t service_insts = 0;
    double isolated_ipc = 0.0;
    double turnaround_quanta = 0.0;  ///< finish - arrival (includes queueing)
    double queue_quanta = 0.0;       ///< admit - arrival
    double slowdown = 0.0;           ///< turnaround / isolated service time
    bool completed = false;
};

/// One per executed quantum (when timeline recording is on).
struct QuantumSample {
    std::uint64_t quantum = 0;
    int live = 0;             ///< tasks holding a hardware thread
    int queued = 0;           ///< arrived but waiting for a free thread
    double utilization = 0.0; ///< live / (smt_ways * cores)
    double aggregate_ipc = 0.0;  ///< sum of per-task IPCs this quantum
    /// Cumulative core changes so far (open mode; closed-mode timelines
    /// leave this 0 — the classic manager only reports the run total).
    std::uint64_t migrations = 0;
};

struct ScenarioResult {
    std::string scenario;
    std::string policy_name;
    std::vector<TaskRecord> tasks;       ///< plan order
    std::vector<QuantumSample> timeline; ///< per executed quantum
    std::uint64_t quanta_executed = 0;
    std::uint64_t migrations = 0;
    std::uint64_t cross_chip_migrations = 0;  ///< subset that changed chips
    std::size_t completed_tasks = 0;
    bool completed = true;  ///< every planned task finished within max_quanta
    double turnaround_quanta = 0.0;  ///< slowest completed task's finish time

    /// Online-adaptation accounting (policies implementing
    /// sched::OnlinePolicy; zero for frozen-model policies).
    bool adaptive = false;
    std::uint64_t phase_changes = 0;  ///< CUSUM alarms the policy raised
    std::uint64_t model_refits = 0;   ///< incremental refits folded in

    /// Mean utilization over the executed timeline (0 when not recorded).
    double mean_utilization() const noexcept;
};

class ScenarioRunner {
public:
    struct Options {
        std::uint64_t max_quanta = 20'000;  ///< safety cap
        bool record_timeline = true;
        /// Flight recorder (not owned; may be null or disabled).  Closed
        /// scenarios hand it to the delegated ThreadManager; the open
        /// driver stamps quantum boundaries, phase wall-clock, and
        /// admission/retirement/migration events itself.
        obs::Tracer* tracer = nullptr;
        /// Invariant hook for the property suite: called after every
        /// quantum's rebind, while the placement is live.
        std::function<void(const uarch::Platform&)> on_quantum{};
    };

    /// The trace's tasks may exceed hardware capacity at any instant —
    /// excess arrivals queue (FIFO) until a thread frees up.
    ScenarioRunner(uarch::Platform& platform, sched::AllocationPolicy& policy,
                   const ScenarioTrace& trace)
        : ScenarioRunner(platform, policy, trace, Options()) {}
    ScenarioRunner(uarch::Platform& platform, sched::AllocationPolicy& policy,
                   const ScenarioTrace& trace, Options opts);

    /// Executes the scenario; returns the measured result.
    ScenarioResult run();

private:
    struct Live {
        std::size_t plan_index = 0;
        std::unique_ptr<apps::AppInstance> task;
        std::uint64_t admit_quantum = 0;
        pmu::CounterBank prev_bank;
        std::uint64_t insts_prev = 0;
    };

    ScenarioResult run_closed();
    ScenarioResult run_open();
    void admit(std::uint64_t quantum);
    int queued_at(std::uint64_t quantum) const;

    uarch::Platform& platform_;
    sched::AllocationPolicy& policy_;
    const ScenarioTrace& trace_;
    Options opts_;
    obs::Tracer* tracer_ = nullptr;  ///< opts_.tracer when enabled, else null
    std::vector<Live> live_;       ///< admission order
    std::size_t next_plan_ = 0;    ///< first not-yet-admitted plan index
    int next_task_id_ = 1;
};

}  // namespace synpa::scenario
