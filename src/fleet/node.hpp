// One serving node of the fleet: an independent uarch::Platform with its own
// node-local allocation policy (any registered sched policy — SYNPA runs
// here) and, when the fleet policy wants interference scoring, a node-owned
// core::SynpaEstimator fed from the node's own observations.
//
// The node owns the full per-quantum cycle for its residents — run the
// platform, observe, retire finished work, let the local policy regroup,
// rebind — which is exactly the ScenarioRunner open-system loop scoped to
// one platform.  The fleet runner steps nodes concurrently (they share no
// mutable state; each node's estimator is touched only by the thread
// stepping that node) and performs all admission/preemption serially on the
// coordinator thread between quanta, which is what keeps fleet runs
// bit-identical at every fleet-thread and SYNPA_SIM_THREADS count.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/estimator.hpp"
#include "fleet/work_item.hpp"
#include "sched/policy.hpp"
#include "uarch/platform.hpp"

namespace synpa::fleet {

class FleetNode {
public:
    /// A resident that crossed its finish line during step().
    struct Retired {
        WorkItem item;
        double finish_quantum = 0.0;  ///< quantum + finish_fraction
        int final_core = -1;          ///< global core id on this node
    };

    /// What one quantum on this node produced (folded by the coordinator in
    /// ascending node order).
    struct StepResult {
        std::vector<Retired> retired;  ///< residency order
        double aggregate_ipc = 0.0;
        std::uint64_t migrations = 0;
        std::uint64_t cross_chip_migrations = 0;
    };

    /// A preemption candidate as ranked by the front end.
    struct VictimInfo {
        int task_id = -1;  ///< -1 = no eligible victim on this node
        int priority = 0;
        std::uint64_t insts_retired = 0;
    };

    /// `scoring_model`: when non-null the node builds its own SynpaEstimator
    /// (fed each quantum) for fleet-level interference scoring; null skips
    /// it (fleet policies that never score save the inversion work).
    FleetNode(int id, const uarch::SimConfig& cfg,
              std::unique_ptr<sched::AllocationPolicy> policy,
              std::shared_ptr<const model::InterferenceModel> scoring_model);

    int id() const noexcept { return id_; }
    const uarch::Platform& platform() const noexcept { return platform_; }
    uarch::Platform& platform() noexcept { return platform_; }
    int capacity() const noexcept { return platform_.hw_contexts(); }
    int live_count() const noexcept { return static_cast<int>(residents_.size()); }
    int free_contexts() const noexcept { return capacity() - live_count(); }

    /// The node's interference estimator; null when built without a model.
    const core::SynpaEstimator* estimator() const noexcept {
        return estimator_ ? &*estimator_ : nullptr;
    }

    /// Binds the item here (creating its AppInstance on first admission,
    /// reusing it after a preemption) on the least-loaded core, lowest
    /// global index / lowest free slot on ties — the same CFS-style spread
    /// the single-node driver uses.  Requires a free context.
    void admit(WorkItem item, std::uint64_t quantum);

    /// Predicted marginal interference of admitting `item` here: the
    /// node-estimator's group weight of the admission-target core with the
    /// item added, minus the group's current weight (a solo placement on an
    /// empty core costs its solo weight).  0 when the node has no estimator.
    double admission_cost(const WorkItem& item) const;

    /// Lowest-(priority, progress, id) resident with priority strictly below
    /// `below_priority` — the deterministic preemption victim order.
    VictimInfo best_victim(int below_priority) const;

    /// Demotes a resident back to the caller: unbinds it, drops node-local
    /// state (platform history, policy state, estimator entry) and returns
    /// the WorkItem with its instance — and therefore its progress — intact.
    WorkItem preempt(int task_id);

    /// Runs one quantum: platform step, observation (feeding the local
    /// policy and the scoring estimator), retirement, policy regroup,
    /// rebind.  Safe to call concurrently across *different* nodes.
    StepResult step(std::uint64_t quantum);

    /// Resident task ids in residency (admission) order.
    std::vector<int> resident_ids() const;

private:
    struct Resident {
        WorkItem item;
        pmu::CounterBank prev_bank{};
        std::uint64_t insts_prev = 0;
    };

    /// The slot admit() would use right now (least-loaded spread).
    uarch::CpuSlot admission_slot() const;

    int id_;
    uarch::Platform platform_;
    std::unique_ptr<sched::AllocationPolicy> policy_;
    std::optional<core::SynpaEstimator> estimator_;
    std::vector<Resident> residents_;  ///< residency order (stable slot order)
};

}  // namespace synpa::fleet
