// Fleet-level SLO metrics: per-class tail-latency summaries (p50/p99/p999
// slowdown, SLO-violation rate), goodput, and the exact-bit run signature
// the determinism tests compare across thread counts.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "fleet/runner.hpp"

namespace synpa::fleet {

/// Tail summary of one SLO class (or of every task, for `all`).
struct ClassSummary {
    std::size_t planned = 0;     ///< tasks of this class in the trace
    std::size_t completed = 0;
    /// Deadline misses plus tasks that never completed — an abandoned
    /// request violates its SLO by definition.
    std::size_t slo_violations = 0;
    double violation_rate = 0.0;  ///< slo_violations / planned (0 when empty)
    double mean_slowdown = 0.0;   ///< over completed tasks
    double p50_slowdown = 0.0;
    double p99_slowdown = 0.0;
    double p999_slowdown = 0.0;
    double mean_queue_quanta = 0.0;
};

struct FleetSummary {
    ClassSummary all;
    ClassSummary latency_critical;
    ClassSummary batch;
    /// Deadline-met completions per executed quantum — the fleet's useful
    /// throughput under its SLO contracts.
    double goodput = 0.0;
    /// All completions per executed quantum.
    double throughput = 0.0;
    double preemptions_per_kquanta = 0.0;
};

/// Aggregates a fleet run into per-class tails.  Percentiles use
/// common::percentile semantics (linear interpolation; 0 for an empty
/// class).
FleetSummary summarize(const FleetResult& result);

/// Pooled variant over repetitions: task records are pooled before the
/// percentiles (tails over the union, not averages of tails), and the rates
/// are computed over the summed quanta.
FleetSummary summarize(std::span<const FleetResult> runs);

/// Exact-bit signature of a fleet run: cluster counters plus every task's
/// outcome with doubles rendered via their bit patterns, so two runs match
/// iff they are bit-identical (the sim_threads x fleet-threads determinism
/// contract).
std::string run_signature(const FleetResult& result);

}  // namespace synpa::fleet
