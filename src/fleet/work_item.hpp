// A request-style unit of work flowing through the fleet serving layer.
//
// A WorkItem is a PlannedTask promoted to a served request: it carries the
// task's SLO contract (class, priority, deadline) plus the mutable serving
// state the front end threads through admission, preemption and retirement.
// The AppInstance travels with the item — a preempted task keeps its
// architectural progress (retired instructions, RNG streams, counters) while
// it waits in the queue, so preemption demotes without losing work.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "apps/instance.hpp"
#include "scenario/scenario.hpp"

namespace synpa::fleet {

struct WorkItem {
    // ---- immutable request contract (copied from the PlannedTask) ----
    std::size_t plan_index = 0;       ///< index into the scenario trace
    std::string app_name;
    std::uint64_t arrival_quantum = 0;
    std::uint64_t behaviour_seed = 1;
    std::uint64_t service_insts = 0;  ///< finish line (retired instructions)
    double isolated_ipc = 0.0;
    scenario::SloClass slo = scenario::SloClass::kBatch;
    int priority = 0;                 ///< admission priority (higher wins)
    double deadline_quantum = 0.0;    ///< absolute deadline; 0 = none

    // ---- mutable serving state (owned by the front end / the node) ----
    /// Fleet-wide unique task id, assigned once at arrival (never reused).
    int task_id = -1;
    /// The running instance; null until first admission, preserved across
    /// preemptions (progress is never lost).
    std::unique_ptr<apps::AppInstance> instance;
    std::uint64_t first_admit_quantum = 0;
    bool admitted_once = false;
    /// Quantum the item last (re-)entered the queue; basis for queue-wait
    /// accounting on the next admission.
    std::uint64_t enqueue_quantum = 0;
    /// Total quanta spent waiting in the queue (initial + after preemptions).
    std::uint64_t queue_wait_quanta = 0;
    /// Times this item was demoted back to the queue by a higher-priority
    /// arrival.
    std::uint64_t preemptions = 0;
};

}  // namespace synpa::fleet
