// The Fleet: N identical, independent serving nodes (uarch::Platforms with
// node-local policies) composed behind the admission front end.  Mirrors
// how the family-of-policies follow-up splits a shared per-node estimator
// from the objective on top: SYNPA (or any registered policy) runs locally
// on each node, while a fleet policy (policy.hpp) decides node placement.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "fleet/node.hpp"
#include "sched/registry.hpp"
#include "uarch/sim_config.hpp"

namespace synpa::fleet {

/// How to build a fleet: the node shape, how many, and which registered
/// sched policy runs node-locally.
struct FleetConfig {
    int nodes = 4;
    uarch::SimConfig node_config{};
    /// Any name from sched::registered_policies(); each node gets its own
    /// instance with a per-node derived seed.
    std::string node_policy = "synpa";
    sched::PolicyConfig policy_config{};
    /// Build a per-node SynpaEstimator for fleet-level interference scoring
    /// (requires policy_config.model).  Policies that never score leave it
    /// off and skip the per-quantum inversion work.
    bool with_estimators = false;
};

class Fleet {
public:
    explicit Fleet(const FleetConfig& cfg);

    int node_count() const noexcept { return static_cast<int>(nodes_.size()); }
    FleetNode& node(int i) { return *nodes_.at(static_cast<std::size_t>(i)); }
    const FleetNode& node(int i) const { return *nodes_.at(static_cast<std::size_t>(i)); }

    /// Hardware contexts across every node.
    int total_capacity() const noexcept;
    /// Resident tasks across every node.
    int live_count() const noexcept;

private:
    /// unique_ptr: FleetNode owns a Platform whose chips must never
    /// relocate, and nodes are stepped from worker threads holding raw
    /// pointers.
    std::vector<std::unique_ptr<FleetNode>> nodes_;
};

}  // namespace synpa::fleet
