// String-keyed fleet-policy registry: the admission front end's node
// selectors, constructible as
//
//   auto policy = fleet::make_fleet_policy("fleet-interference-aware", cfg);
//
// so benches, grids and CI select fleet policies by name exactly like node
// policies.  registered_fleet_policies() is the single source of truth for
// the name set; tools/check_docs.py cross-checks it against the fleet table
// in docs/REFERENCE.md, so adding an entry here without documenting it
// fails CI.
//
// A fleet policy answers one question — "which node serves this item?" —
// over the candidate set the runner prepared (every node with a free
// hardware context, ascending node id).  It never touches node-local
// grouping: that belongs to each node's own sched policy.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>

#include "fleet/fleet.hpp"
#include "fleet/work_item.hpp"

namespace synpa::fleet {

class FleetPolicy {
public:
    virtual ~FleetPolicy() = default;

    virtual std::string name() const = 0;

    /// Picks the serving node for `item`.  `candidates` holds the ids of
    /// every node with at least one free context, in ascending order, and is
    /// never empty.  Must be deterministic in (fleet state, item, own seed).
    virtual int pick_node(const Fleet& fleet, const WorkItem& item,
                          std::span<const int> candidates) = 0;
};

struct FleetPolicyConfig {
    /// Seed for randomized fleet policies.
    std::uint64_t seed = 1;
};

struct FleetPolicyInfo {
    std::string_view name;
    std::string_view objective;  ///< what the selector optimizes (docs table)
    bool needs_model = false;    ///< nodes must carry scoring estimators
    std::string_view description;
};

/// Every registered fleet policy, in documentation order.
std::span<const FleetPolicyInfo> registered_fleet_policies();

/// Registry entry for a name; nullptr when unknown.
const FleetPolicyInfo* find_fleet_policy(std::string_view name);

/// Instantiates a registered fleet policy.  Throws std::invalid_argument
/// for an unknown name (the message lists the inventory).
std::unique_ptr<FleetPolicy> make_fleet_policy(std::string_view name,
                                               const FleetPolicyConfig& config);

}  // namespace synpa::fleet
