#include "fleet/node.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "apps/spec_suite.hpp"
#include "sched/quantum_loop.hpp"

namespace synpa::fleet {

FleetNode::FleetNode(int id, const uarch::SimConfig& cfg,
                     std::unique_ptr<sched::AllocationPolicy> policy,
                     std::shared_ptr<const model::InterferenceModel> scoring_model)
    : id_(id), platform_(cfg), policy_(std::move(policy)) {
    if (policy_ == nullptr)
        throw std::invalid_argument("FleetNode: node policy must not be null");
    if (scoring_model != nullptr) estimator_.emplace(*scoring_model);
}

uarch::CpuSlot FleetNode::admission_slot() const {
    uarch::CpuSlot where{-1, -1};
    int best_load = platform_.config().smt_ways;
    for (int c = 0; c < platform_.core_count(); ++c) {
        const int load = platform_.core(c).active_threads();
        if (load >= best_load) continue;
        best_load = load;
        int slot = 0;
        while (platform_.core(c).slot(slot).bound()) ++slot;
        where = {c, slot};
    }
    return where;
}

void FleetNode::admit(WorkItem item, std::uint64_t quantum) {
    if (free_contexts() <= 0)
        throw std::logic_error("FleetNode::admit: node is full");
    if (item.task_id < 0)
        throw std::invalid_argument("FleetNode::admit: item has no task id");
    if (item.instance == nullptr)
        item.instance = std::make_unique<apps::AppInstance>(
            item.task_id, apps::find_app(item.app_name), item.behaviour_seed);

    const uarch::CpuSlot where = admission_slot();
    platform_.bind(*item.instance, where);

    if (!item.admitted_once) {
        item.admitted_once = true;
        item.first_admit_quantum = quantum;
    }
    item.queue_wait_quanta += quantum - item.enqueue_quantum;

    Resident r;
    // A re-admitted item resumes counting from its preserved progress, so
    // the next observation's delta covers exactly the next quantum.
    r.prev_bank = item.instance->counters();
    r.insts_prev = item.instance->insts_retired();
    r.item = std::move(item);
    residents_.push_back(std::move(r));
}

double FleetNode::admission_cost(const WorkItem& item) const {
    if (!estimator_) return 0.0;
    const uarch::CpuSlot where = admission_slot();
    if (where.core < 0) return 0.0;  // full — callers filter these nodes out
    // Group on the target core, plus the candidate.
    std::vector<int> group;
    const uarch::SmtCore& core = platform_.core(where.core);
    for (int s = 0; s < platform_.config().smt_ways; ++s)
        if (core.slot(s).bound()) group.push_back(core.slot(s).task()->id());
    const double before = group.empty() ? 0.0 : estimator_->group_weight(group);
    group.push_back(item.task_id);
    return estimator_->group_weight(group) - before;
}

FleetNode::VictimInfo FleetNode::best_victim(int below_priority) const {
    VictimInfo best;
    for (const Resident& r : residents_) {
        if (r.item.priority >= below_priority) continue;
        const VictimInfo cand{r.item.task_id, r.item.priority,
                              r.item.instance->insts_retired()};
        if (best.task_id < 0 || cand.priority < best.priority ||
            (cand.priority == best.priority &&
             (cand.insts_retired < best.insts_retired ||
              (cand.insts_retired == best.insts_retired && cand.task_id < best.task_id))))
            best = cand;
    }
    return best;
}

WorkItem FleetNode::preempt(int task_id) {
    const auto it = std::find_if(
        residents_.begin(), residents_.end(),
        [task_id](const Resident& r) { return r.item.task_id == task_id; });
    if (it == residents_.end())
        throw std::logic_error("FleetNode::preempt: task not resident here");
    platform_.unbind(task_id);
    // The task may come back on any node: drop every node-local trace of it
    // (migration history, policy state, estimate).  Its instance keeps the
    // architectural progress.
    platform_.forget_task(task_id);
    policy_->on_task_preempted(task_id);
    if (estimator_) estimator_->forget(task_id);
    WorkItem item = std::move(it->item);
    residents_.erase(it);
    ++item.preemptions;
    return item;
}

FleetNode::StepResult FleetNode::step(std::uint64_t quantum) {
    StepResult result;
    platform_.run_quantum();
    if (residents_.empty()) return result;

    // Observe every resident (residency order — the stable slot order shared
    // with bind_allocation below).
    std::vector<sched::TaskObservation> obs;
    obs.reserve(residents_.size());
    for (Resident& r : residents_) {
        obs.push_back(sched::observe_task(platform_, *r.item.instance,
                                          static_cast<int>(r.item.plan_index),
                                          r.item.app_name, r.prev_bank));
        result.aggregate_ipc += obs.back().breakdown.ipc();
    }
    if (estimator_) estimator_->observe(obs);

    // Retire residents whose service demand completed this quantum.
    for (std::size_t i = 0; i < residents_.size();) {
        Resident& r = residents_[i];
        const std::uint64_t insts_now = r.item.instance->insts_retired();
        if (insts_now >= r.item.service_insts) {
            const double frac =
                sched::finish_fraction(r.insts_prev, insts_now, r.item.service_insts);
            const int id = r.item.task_id;
            Retired done;
            done.finish_quantum = static_cast<double>(quantum) + frac;
            done.final_core = platform_.placement(id).core;
            platform_.unbind(id);
            platform_.forget_task(id);  // retired for good; ids never reused
            policy_->on_task_finished(id);
            if (estimator_) estimator_->forget(id);
            done.item = std::move(r.item);
            result.retired.push_back(std::move(done));
            residents_.erase(residents_.begin() + static_cast<std::ptrdiff_t>(i));
            obs.erase(obs.begin() + static_cast<std::ptrdiff_t>(i));
            continue;
        }
        r.prev_bank = r.item.instance->counters();
        r.insts_prev = insts_now;
        ++i;
    }

    // Node-local regroup (partial allocations allowed, as in the open-system
    // single-node driver).
    if (!residents_.empty()) {
        sched::CoreAllocation alloc = policy_->reallocate(obs);
        if (alloc.size() > static_cast<std::size_t>(platform_.core_count()))
            throw std::runtime_error("FleetNode: allocation exceeds core count");
        alloc.resize(static_cast<std::size_t>(platform_.core_count()));
        std::vector<apps::AppInstance*> tasks;
        tasks.reserve(residents_.size());
        for (Resident& r : residents_) tasks.push_back(r.item.instance.get());
        const sched::BindStats stats = sched::bind_allocation(
            platform_, alloc, tasks, /*require_full_groups=*/false, nullptr);
        result.migrations = stats.migrations;
        result.cross_chip_migrations = stats.cross_chip;
    }
    return result;
}

std::vector<int> FleetNode::resident_ids() const {
    std::vector<int> ids;
    ids.reserve(residents_.size());
    for (const Resident& r : residents_) ids.push_back(r.item.task_id);
    return ids;
}

}  // namespace synpa::fleet
