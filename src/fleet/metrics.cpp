#include "fleet/metrics.hpp"

#include <algorithm>
#include <bit>
#include <sstream>
#include <vector>

#include "common/stats.hpp"

namespace synpa::fleet {
namespace {

ClassSummary summarize_class(std::span<const FleetResult> runs,
                             const scenario::SloClass* cls) {
    ClassSummary s;
    std::vector<double> slowdowns;
    double queue_sum = 0.0;
    double slowdown_sum = 0.0;
    for (const FleetResult& result : runs)
        for (const FleetTaskRecord& rec : result.tasks) {
            if (cls != nullptr && rec.slo != *cls) continue;
            ++s.planned;
            if (!rec.completed) {
                ++s.slo_violations;
                continue;
            }
            ++s.completed;
            if (!rec.deadline_met) ++s.slo_violations;
            slowdowns.push_back(rec.slowdown);
            slowdown_sum += rec.slowdown;
            queue_sum += rec.queue_quanta;
        }
    if (s.planned > 0)
        s.violation_rate =
            static_cast<double>(s.slo_violations) / static_cast<double>(s.planned);
    if (!slowdowns.empty()) {
        std::sort(slowdowns.begin(), slowdowns.end());
        s.mean_slowdown = slowdown_sum / static_cast<double>(slowdowns.size());
        s.p50_slowdown = common::percentile_sorted(slowdowns, 0.50);
        s.p99_slowdown = common::percentile_sorted(slowdowns, 0.99);
        s.p999_slowdown = common::percentile_sorted(slowdowns, 0.999);
        s.mean_queue_quanta = queue_sum / static_cast<double>(slowdowns.size());
    }
    return s;
}

}  // namespace

FleetSummary summarize(const FleetResult& result) { return summarize({&result, 1}); }

FleetSummary summarize(std::span<const FleetResult> runs) {
    FleetSummary s;
    const scenario::SloClass lc = scenario::SloClass::kLatencyCritical;
    const scenario::SloClass batch = scenario::SloClass::kBatch;
    s.all = summarize_class(runs, nullptr);
    s.latency_critical = summarize_class(runs, &lc);
    s.batch = summarize_class(runs, &batch);
    double quanta = 0.0, preemptions = 0.0;
    std::size_t met = 0, completed = 0;
    for (const FleetResult& result : runs) {
        quanta += static_cast<double>(result.quanta_executed);
        preemptions += static_cast<double>(result.preemptions);
        completed += result.completed_tasks;
        for (const FleetTaskRecord& rec : result.tasks)
            if (rec.completed && rec.deadline_met) ++met;
    }
    if (quanta > 0.0) {
        s.goodput = static_cast<double>(met) / quanta;
        s.throughput = static_cast<double>(completed) / quanta;
        s.preemptions_per_kquanta = preemptions * 1000.0 / quanta;
    }
    return s;
}

std::string run_signature(const FleetResult& result) {
    std::ostringstream sig;
    const auto bits = [](double v) { return std::bit_cast<std::uint64_t>(v); };
    sig << result.fleet_policy << '/' << result.node_policy << '/' << result.nodes
        << "|q=" << result.quanta_executed << "|a=" << result.admissions
        << "|p=" << result.preemptions << "|m=" << result.migrations
        << "|x=" << result.cross_chip_migrations << "|c=" << result.completed_tasks;
    for (const FleetTaskRecord& rec : result.tasks) {
        sig << ';' << rec.task_id << ':' << rec.node_id << ':' << rec.completed
            << ':' << rec.admit_quantum << ':' << rec.preemptions << ':'
            << bits(rec.finish_quantum) << ':' << bits(rec.slowdown);
    }
    return sig.str();
}

}  // namespace synpa::fleet
