#include "fleet/fleet.hpp"

#include <stdexcept>

#include "common/rng.hpp"

namespace synpa::fleet {

Fleet::Fleet(const FleetConfig& cfg) {
    if (cfg.nodes < 1)
        throw std::invalid_argument("Fleet: need at least one node");
    if (cfg.with_estimators && cfg.policy_config.model == nullptr)
        throw std::invalid_argument(
            "Fleet: interference scoring needs PolicyConfig::model");
    nodes_.reserve(static_cast<std::size_t>(cfg.nodes));
    for (int n = 0; n < cfg.nodes; ++n) {
        // Per-node policy seed: randomized node policies (random, sampling)
        // must draw independent streams per node.
        sched::PolicyConfig node_pc = cfg.policy_config;
        node_pc.seed = common::derive_key(cfg.policy_config.seed, 0xf1e7,
                                          static_cast<std::uint64_t>(n));
        nodes_.push_back(std::make_unique<FleetNode>(
            n, cfg.node_config, sched::make_policy(cfg.node_policy, node_pc),
            cfg.with_estimators ? cfg.policy_config.model : nullptr));
    }
}

int Fleet::total_capacity() const noexcept {
    int total = 0;
    for (const auto& n : nodes_) total += n->capacity();
    return total;
}

int Fleet::live_count() const noexcept {
    int live = 0;
    for (const auto& n : nodes_) live += n->live_count();
    return live;
}

}  // namespace synpa::fleet
