#include "fleet/policy.hpp"

#include <limits>
#include <sstream>
#include <stdexcept>

#include "common/rng.hpp"

namespace synpa::fleet {
namespace {

// The single source of truth for the fleet-policy name set.  Keep one entry
// per line: tools/check_docs.py parses the quoted names between the
// begin/end markers and fails CI when docs/REFERENCE.md misses one.
// registry-table-begin
constexpr FleetPolicyInfo kFleetRegistry[] = {
    {"fleet-random", "none (uniform over non-full nodes)", false,
     "load-oblivious baseline isolating placement signal from luck"},
    {"fleet-least-loaded", "occupancy (fewest resident tasks)", false,
     "classic least-connections balancing, blind to interference"},
    {"fleet-interference-aware", "predicted marginal interference", true,
     "scores candidates via each node's SynpaEstimator group weights"},
};
// registry-table-end

class FleetRandomPolicy final : public FleetPolicy {
public:
    explicit FleetRandomPolicy(std::uint64_t seed) : rng_(seed, 0xf1ee7) {}
    std::string name() const override { return "fleet-random"; }
    int pick_node(const Fleet&, const WorkItem&,
                  std::span<const int> candidates) override {
        return candidates[rng_.below(candidates.size())];
    }

private:
    common::Rng rng_;
};

class FleetLeastLoadedPolicy final : public FleetPolicy {
public:
    std::string name() const override { return "fleet-least-loaded"; }
    int pick_node(const Fleet& fleet, const WorkItem&,
                  std::span<const int> candidates) override {
        int best = candidates[0];
        int best_live = fleet.node(best).live_count();
        for (const int n : candidates) {
            const int live = fleet.node(n).live_count();
            if (live < best_live) {  // ties keep the lowest node id
                best = n;
                best_live = live;
            }
        }
        return best;
    }
};

class FleetInterferenceAwarePolicy final : public FleetPolicy {
public:
    std::string name() const override { return "fleet-interference-aware"; }
    int pick_node(const Fleet& fleet, const WorkItem& item,
                  std::span<const int> candidates) override {
        // Minimize the predicted marginal group weight at each node's
        // admission target; break exact ties (e.g. unobserved tasks whose
        // estimates are still the uniform prior) toward the least-loaded,
        // lowest-id node, so the policy degrades to least-loaded until the
        // estimators have signal.
        int best = candidates[0];
        double best_cost = std::numeric_limits<double>::infinity();
        int best_live = std::numeric_limits<int>::max();
        for (const int n : candidates) {
            const double cost = fleet.node(n).admission_cost(item);
            const int live = fleet.node(n).live_count();
            if (cost < best_cost || (cost == best_cost && live < best_live)) {
                best = n;
                best_cost = cost;
                best_live = live;
            }
        }
        return best;
    }
};

}  // namespace

std::span<const FleetPolicyInfo> registered_fleet_policies() { return kFleetRegistry; }

const FleetPolicyInfo* find_fleet_policy(std::string_view name) {
    for (const FleetPolicyInfo& info : kFleetRegistry)
        if (info.name == name) return &info;
    return nullptr;
}

std::unique_ptr<FleetPolicy> make_fleet_policy(std::string_view name,
                                               const FleetPolicyConfig& config) {
    if (name == "fleet-random") return std::make_unique<FleetRandomPolicy>(config.seed);
    if (name == "fleet-least-loaded") return std::make_unique<FleetLeastLoadedPolicy>();
    if (name == "fleet-interference-aware")
        return std::make_unique<FleetInterferenceAwarePolicy>();

    std::ostringstream msg;
    msg << "make_fleet_policy: unknown policy '" << name << "' (registered:";
    for (const FleetPolicyInfo& info : kFleetRegistry) msg << ' ' << info.name;
    msg << ')';
    throw std::invalid_argument(msg.str());
}

}  // namespace synpa::fleet
