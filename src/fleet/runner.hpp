// The fleet front end: drives a Fleet of N serving nodes through an
// open-system ScenarioTrace, implementing admission, fleet-policy node
// placement, priority preemption and SLO bookkeeping.
//
// Per-quantum cycle (the coordinator thread owns everything except node
// stepping):
//   1. arrivals   — planned tasks whose quantum came move into the queue,
//   2. admission  — queue drains in (priority desc, arrival, plan) order;
//                   each admitted item's node is chosen by the fleet policy
//                   over every node with a free context,
//   3. preemption — a queued item that found no free context may demote the
//                   fleet's lowest-priority resident (strictly below its own
//                   priority) back to the queue and take its place,
//   4. step       — every node runs one quantum (concurrently over the
//                   fleet thread pool; nodes share no mutable state),
//   5. fold       — the coordinator collects retirements, metrics and trace
//                   events in ascending node order.
//
// Determinism contract: steps 1-3 and 5 are serial and ordered, step 4 is
// pure per-node work, so a fleet run is bit-identical at every
// (fleet threads x SYNPA_SIM_THREADS) combination — pinned by
// tests/test_fleet.cpp the way test_parallel_engine.cpp pins a node.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "fleet/fleet.hpp"
#include "fleet/policy.hpp"
#include "obs/trace.hpp"
#include "scenario/scenario.hpp"

namespace synpa::fleet {

/// Cluster-wide conservation counters, exposed to the per-quantum hook so
/// the property suite can check invariants while the run is in flight.
struct FleetProgress {
    std::uint64_t quantum = 0;
    std::uint64_t arrived = 0;      ///< plan tasks that entered the queue so far
    std::uint64_t admissions = 0;   ///< admission events (re-admissions count)
    std::uint64_t preemptions = 0;  ///< demotions back to the queue
    std::uint64_t requeues = 0;     ///< queue re-entries of preempted items
    std::uint64_t retirements = 0;  ///< tasks that finished for good
    int in_flight = 0;              ///< residents across every node
    int queued = 0;                 ///< items waiting in the queue
};

/// Everything known about one planned task after the run.
struct FleetTaskRecord {
    std::size_t plan_index = 0;
    int task_id = -1;
    std::string app_name;
    scenario::SloClass slo = scenario::SloClass::kBatch;
    int priority = 0;
    std::uint64_t arrival_quantum = 0;
    double deadline_quantum = 0.0;
    std::uint64_t service_insts = 0;
    double isolated_ipc = 0.0;

    std::uint64_t admit_quantum = 0;  ///< first admission
    int node_id = -1;                 ///< node it retired on (last node seen)
    double finish_quantum = 0.0;
    double turnaround_quanta = 0.0;   ///< finish - arrival
    double queue_quanta = 0.0;        ///< total queue wait (incl. re-queues)
    double slowdown = 0.0;            ///< turnaround / isolated service time
    std::uint64_t preemptions = 0;
    bool completed = false;
    bool deadline_met = false;        ///< completed && finish <= deadline
};

/// One per-quantum timeline sample (optional; record_timeline).
struct FleetQuantumSample {
    std::uint64_t quantum = 0;
    int live = 0;
    int queued = 0;
    double utilization = 0.0;     ///< live / total capacity
    double aggregate_ipc = 0.0;
};

struct FleetResult {
    std::string scenario;
    std::string fleet_policy;
    std::string node_policy;
    int nodes = 0;
    std::uint64_t quanta_executed = 0;
    std::uint64_t admissions = 0;
    std::uint64_t preemptions = 0;
    std::uint64_t migrations = 0;             ///< node-local rebind moves
    std::uint64_t cross_chip_migrations = 0;
    std::size_t completed_tasks = 0;
    bool completed = false;  ///< every planned task retired before the cap
    std::vector<FleetTaskRecord> tasks;       ///< plan order
    std::vector<FleetQuantumSample> timeline; ///< empty unless requested
};

struct FleetOptions {
    int nodes = 4;
    uarch::SimConfig node_config{};
    std::string node_policy = "synpa";
    std::string fleet_policy = "fleet-least-loaded";
    sched::PolicyConfig policy_config{};
    std::uint64_t fleet_seed = 1;  ///< seed for randomized fleet policies
    /// Allow latency-critical arrivals to demote lower-priority residents.
    bool preemption = true;
    /// Host threads stepping nodes concurrently (1 = serial coordinator).
    std::size_t threads = 1;
    std::uint64_t max_quanta = 50'000;  ///< safety cap
    bool record_timeline = false;
    /// Fleet-level flight recorder (admissions, retirements, preemptions,
    /// quantum stats).  Only the coordinator emits — never a node shard —
    /// so traced fleet runs stay bit-identical to untraced ones.
    obs::Tracer* tracer = nullptr;
    /// Property-suite hook, called after every quantum's fold.
    std::function<void(const Fleet&, const FleetProgress&)> on_quantum{};
};

class FleetRunner {
public:
    /// The trace must be an open-system scenario (closed mode has no
    /// arrival/queue semantics to balance).
    FleetRunner(const scenario::ScenarioTrace& trace, FleetOptions opts);

    FleetResult run();

    const Fleet& fleet() const noexcept { return fleet_; }

private:
    void enqueue_arrivals(std::uint64_t quantum);
    void admit_and_preempt(std::uint64_t quantum);

    const scenario::ScenarioTrace& trace_;
    FleetOptions opts_;
    Fleet fleet_;
    std::unique_ptr<FleetPolicy> policy_;
    std::unique_ptr<common::ThreadPool> pool_;  ///< null when threads <= 1
    obs::Tracer* tracer_ = nullptr;

    std::vector<WorkItem> queue_;  ///< waiting items (sorted at admission)
    std::size_t next_plan_ = 0;
    FleetProgress progress_{};
};

}  // namespace synpa::fleet
