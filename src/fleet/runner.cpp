#include "fleet/runner.hpp"

#include <algorithm>
#include <cmath>
#include <future>
#include <stdexcept>
#include <utility>

namespace synpa::fleet {
namespace {

/// Admission order: highest priority first, then FIFO by arrival, then plan
/// order — a deterministic total order (plan indices are unique).
bool admission_before(const WorkItem& a, const WorkItem& b) noexcept {
    if (a.priority != b.priority) return a.priority > b.priority;
    if (a.arrival_quantum != b.arrival_quantum) return a.arrival_quantum < b.arrival_quantum;
    return a.plan_index < b.plan_index;
}

}  // namespace

FleetRunner::FleetRunner(const scenario::ScenarioTrace& trace, FleetOptions opts)
    : trace_(trace), opts_(std::move(opts)),
      fleet_([&] {
          if (trace.spec.process == scenario::ArrivalProcess::kClosed)
              throw std::invalid_argument(
                  "FleetRunner: closed scenarios have no arrivals to balance");
          for (std::size_t i = 1; i < trace.tasks.size(); ++i)
              if (trace.tasks[i - 1].arrival_quantum > trace.tasks[i].arrival_quantum)
                  throw std::invalid_argument(
                      "FleetRunner: trace tasks must be arrival-sorted");
          const FleetPolicyInfo* info = find_fleet_policy(opts_.fleet_policy);
          if (info == nullptr)
              make_fleet_policy(opts_.fleet_policy, {});  // throws with inventory
          FleetConfig fc;
          fc.nodes = opts_.nodes;
          fc.node_config = opts_.node_config;
          // Nested parallelism: per-node chip shards share the host with the
          // fleet pool, exactly like grid cells over campaign pools.
          fc.node_config.sim_threads =
              uarch::nested_sim_threads(opts_.node_config.sim_threads,
                                        opts_.threads > 1 ? opts_.threads : 0);
          fc.node_policy = opts_.node_policy;
          fc.policy_config = opts_.policy_config;
          fc.with_estimators = info != nullptr && info->needs_model;
          return FleetConfig(fc);
      }()),
      policy_(make_fleet_policy(opts_.fleet_policy, {.seed = opts_.fleet_seed})) {
    if (opts_.threads > 1 && fleet_.node_count() > 1)
        pool_ = std::make_unique<common::ThreadPool>(
            std::min<std::size_t>(opts_.threads,
                                  static_cast<std::size_t>(fleet_.node_count())));
    if (opts_.tracer != nullptr && opts_.tracer->enabled()) tracer_ = opts_.tracer;
}

void FleetRunner::enqueue_arrivals(std::uint64_t quantum) {
    while (next_plan_ < trace_.tasks.size() &&
           trace_.tasks[next_plan_].arrival_quantum <= quantum) {
        const scenario::PlannedTask& plan = trace_.tasks[next_plan_];
        WorkItem item;
        item.plan_index = next_plan_;
        item.app_name = plan.app_name;
        item.arrival_quantum = plan.arrival_quantum;
        item.behaviour_seed = plan.seed;
        item.service_insts = plan.service_insts;
        item.isolated_ipc = plan.isolated_ipc;
        item.slo = plan.slo;
        item.priority = plan.priority;
        item.deadline_quantum = plan.deadline_quantum;
        // Fleet-wide unique ids in plan order, assigned at arrival (a task
        // keeps its id across preemptions and re-admissions).
        item.task_id = static_cast<int>(next_plan_) + 1;
        item.enqueue_quantum = quantum;
        queue_.push_back(std::move(item));
        ++progress_.arrived;
        ++next_plan_;
    }
}

void FleetRunner::admit_and_preempt(std::uint64_t quantum) {
    if (queue_.empty()) return;
    std::sort(queue_.begin(), queue_.end(), admission_before);

    std::vector<WorkItem> waiting;
    std::vector<WorkItem> demoted;  // re-enter the queue after the scan
    std::vector<int> candidates;
    for (WorkItem& item : queue_) {
        candidates.clear();
        for (int n = 0; n < fleet_.node_count(); ++n)
            if (fleet_.node(n).free_contexts() > 0) candidates.push_back(n);

        int target = -1;
        if (!candidates.empty()) {
            target = policy_->pick_node(fleet_, item, candidates);
            if (target < 0 || target >= fleet_.node_count() ||
                fleet_.node(target).free_contexts() <= 0)
                throw std::logic_error("FleetRunner: fleet policy picked an invalid node");
        } else if (opts_.preemption) {
            // Nowhere to go: demote the fleet's weakest resident strictly
            // below this item's priority (lowest priority, then least
            // progress, then lowest id/node — a deterministic total order).
            int victim_node = -1;
            FleetNode::VictimInfo best;
            for (int n = 0; n < fleet_.node_count(); ++n) {
                const FleetNode::VictimInfo v = fleet_.node(n).best_victim(item.priority);
                if (v.task_id < 0) continue;
                if (victim_node < 0 || v.priority < best.priority ||
                    (v.priority == best.priority &&
                     (v.insts_retired < best.insts_retired ||
                      (v.insts_retired == best.insts_retired &&
                       v.task_id < best.task_id)))) {
                    best = v;
                    victim_node = n;
                }
            }
            if (victim_node >= 0) {
                WorkItem loser = fleet_.node(victim_node).preempt(best.task_id);
                ++progress_.preemptions;
                loser.enqueue_quantum = quantum;
                if (tracer_ != nullptr && tracer_->wants(obs::EventKind::kPreemption)) {
                    obs::TraceEvent e;
                    e.kind = obs::EventKind::kPreemption;
                    e.quantum = quantum;
                    e.task = loser.task_id;
                    e.core = victim_node;  // node id, per the kind contract
                    e.a = loser.priority;
                    e.b = item.priority;
                    e.detail = loser.app_name;
                    tracer_->emit(std::move(e));
                }
                if (tracer_ != nullptr) tracer_->metrics().counter("fleet.preemptions").add();
                demoted.push_back(std::move(loser));
                target = victim_node;
            }
        }

        if (target < 0) {
            waiting.push_back(std::move(item));
            continue;
        }
        const int task_id = item.task_id;
        const std::string app = item.app_name;
        fleet_.node(target).admit(std::move(item), quantum);
        ++progress_.admissions;
        if (tracer_ != nullptr && tracer_->wants(obs::EventKind::kAdmission)) {
            obs::TraceEvent e;
            e.kind = obs::EventKind::kAdmission;
            e.quantum = quantum;
            e.task = task_id;
            e.core = target;  // node id (fleet-level admission)
            e.detail = app;
            tracer_->emit(std::move(e));
        }
        if (tracer_ != nullptr) tracer_->metrics().counter("fleet.admissions").add();
    }
    queue_ = std::move(waiting);
    for (WorkItem& d : demoted) {
        // Each preemption re-queues its victim exactly once (the property
        // suite pins requeues == preemptions).
        ++progress_.requeues;
        queue_.push_back(std::move(d));
    }
}

FleetResult FleetRunner::run() {
    FleetResult result;
    result.scenario = trace_.spec.name;
    result.fleet_policy = opts_.fleet_policy;
    result.node_policy = opts_.node_policy;
    result.nodes = fleet_.node_count();
    result.tasks.resize(trace_.tasks.size());
    for (std::size_t i = 0; i < trace_.tasks.size(); ++i) {
        FleetTaskRecord& rec = result.tasks[i];
        const scenario::PlannedTask& plan = trace_.tasks[i];
        rec.plan_index = i;
        rec.app_name = plan.app_name;
        rec.slo = plan.slo;
        rec.priority = plan.priority;
        rec.arrival_quantum = plan.arrival_quantum;
        rec.deadline_quantum = plan.deadline_quantum;
        rec.service_insts = plan.service_insts;
        rec.isolated_ipc = plan.isolated_ipc;
    }

    const double qcycles =
        static_cast<double>(opts_.node_config.cycles_per_quantum);
    const int capacity = fleet_.total_capacity();
    std::vector<FleetNode::StepResult> steps(
        static_cast<std::size_t>(fleet_.node_count()));
    std::uint64_t quantum = 0;

    while (quantum < opts_.max_quanta) {
        enqueue_arrivals(quantum);
        admit_and_preempt(quantum);
        if (queue_.empty() && fleet_.live_count() == 0 &&
            next_plan_ >= trace_.tasks.size())
            break;  // drained

        const int live = fleet_.live_count();
        const int queued = static_cast<int>(queue_.size());
        obs::QuantumStats qstats;
        qstats.quantum = quantum;
        qstats.live = live;
        qstats.queued = queued;
        qstats.utilization = static_cast<double>(live) / static_cast<double>(capacity);
        obs::PhaseStopwatch sw(tracer_ != nullptr);
        if (tracer_ != nullptr) tracer_->begin_quantum(quantum, live, queued);

        // Step every node — concurrently when a pool exists.  Nodes share no
        // mutable state; results are folded in ascending node order below,
        // so the fold is identical at every fleet-thread count.
        if (pool_ != nullptr) {
            std::vector<std::future<FleetNode::StepResult>> futures;
            futures.reserve(steps.size());
            for (int n = 0; n < fleet_.node_count(); ++n) {
                FleetNode* node = &fleet_.node(n);
                futures.push_back(pool_->submit_waitable(
                    [node, quantum] { return node->step(quantum); }));
            }
            for (std::size_t n = 0; n < futures.size(); ++n) steps[n] = futures[n].get();
        } else {
            for (int n = 0; n < fleet_.node_count(); ++n)
                steps[static_cast<std::size_t>(n)] = fleet_.node(n).step(quantum);
        }
        qstats.simulate_us = sw.lap_us();

        // Fold: retirements, counters and trace events in node order.
        double aggregate_ipc = 0.0;
        for (int n = 0; n < fleet_.node_count(); ++n) {
            FleetNode::StepResult& sr = steps[static_cast<std::size_t>(n)];
            result.migrations += sr.migrations;
            result.cross_chip_migrations += sr.cross_chip_migrations;
            qstats.migrations += sr.migrations;
            qstats.cross_chip += sr.cross_chip_migrations;
            aggregate_ipc += sr.aggregate_ipc;
            for (FleetNode::Retired& done : sr.retired) {
                FleetTaskRecord& rec = result.tasks[done.item.plan_index];
                rec.task_id = done.item.task_id;
                rec.admit_quantum = done.item.first_admit_quantum;
                rec.node_id = n;
                rec.finish_quantum = done.finish_quantum;
                rec.turnaround_quanta =
                    done.finish_quantum - static_cast<double>(rec.arrival_quantum);
                rec.queue_quanta = static_cast<double>(done.item.queue_wait_quanta);
                rec.preemptions = done.item.preemptions;
                const double isolated_quanta =
                    rec.isolated_ipc > 0.0
                        ? static_cast<double>(rec.service_insts) /
                              (rec.isolated_ipc * qcycles)
                        : 0.0;
                rec.slowdown = isolated_quanta > 0.0
                                   ? rec.turnaround_quanta / isolated_quanta
                                   : 0.0;
                rec.completed = true;
                rec.deadline_met = rec.deadline_quantum <= 0.0 ||
                                   rec.finish_quantum <= rec.deadline_quantum;
                ++result.completed_tasks;
                ++progress_.retirements;
                if (tracer_ != nullptr) {
                    obs::MetricsRegistry& m = tracer_->metrics();
                    m.counter("fleet.retirements").add();
                    if (!rec.deadline_met) m.counter("fleet.slo_violations").add();
                    m.histogram("fleet.queue_quanta")
                        .record(done.item.queue_wait_quanta);
                    m.histogram("fleet.slowdown_milli")
                        .record(static_cast<std::uint64_t>(
                            std::llround(std::max(0.0, rec.slowdown) * 1000.0)));
                    if (tracer_->wants(obs::EventKind::kRetirement)) {
                        obs::TraceEvent e;
                        e.kind = obs::EventKind::kRetirement;
                        e.quantum = quantum;
                        e.task = rec.task_id;
                        e.chip = n;  // the serving node
                        e.core = done.final_core;
                        e.value = done.finish_quantum;
                        e.detail = rec.app_name;
                        tracer_->emit(std::move(e));
                    }
                }
            }
        }

        if (opts_.record_timeline)
            result.timeline.push_back({.quantum = quantum,
                                       .live = live,
                                       .queued = queued,
                                       .utilization = qstats.utilization,
                                       .aggregate_ipc = aggregate_ipc});
        qstats.observe_us = sw.lap_us();
        if (tracer_ != nullptr) {
            tracer_->metrics().gauge("fleet.utilization").set(qstats.utilization);
            tracer_->end_quantum(qstats);
        }
        ++quantum;
        if (opts_.on_quantum) {
            progress_.quantum = quantum;
            progress_.in_flight = fleet_.live_count();
            progress_.queued = static_cast<int>(queue_.size());
            opts_.on_quantum(fleet_, progress_);
        }
    }

    // Unfinished work (safety cap): records keep whatever is known.  Items
    // still resident or queued stay incomplete.
    result.quanta_executed = quantum;
    result.admissions = progress_.admissions;
    result.preemptions = progress_.preemptions;
    result.completed = result.completed_tasks == trace_.tasks.size();
    return result;
}

}  // namespace synpa::fleet
