#include "uarch/smt_core.hpp"

#include <algorithm>
#include <cmath>

#include "pmu/events.hpp"

namespace synpa::uarch {

using pmu::Event;

void SmtCore::trigger_frontend_event(ThreadContext& t) noexcept {
    apps::AppInstance& task = *t.task();
    const EffectiveRates& r = t.rates;
    const double total = r.p_branch + r.p_icache;
    const bool is_branch = total <= 0.0 || task.fe_rng().uniform() < r.p_branch / total;
    if (is_branch) {
        // Misprediction: wrong-path instructions already in the dispatch
        // queue go down the pipe before the redirect arrives.  They consume
        // dispatch slots and are counted by INST_SPEC (the paper's §III-B
        // deliberately keeps them: a wasted slot is a wasted slot), but they
        // make no architectural progress.  How many there are depends on the
        // queue occupancy, i.e. on contention — which is why the paper's
        // full-dispatch coefficients are a regression, not an identity.
        const auto wrong_path = static_cast<std::uint64_t>(
            std::min<std::int64_t>(t.fetch_buffer, static_cast<std::int64_t>(
                                                       task.fe_rng().below(9))));
        task.counters().increment(Event::kInstSpec, wrong_path);
        task.counters().increment(Event::kBrMisPred);
        t.fetch_buffer = 0;
        t.fe_stall = cfg_->branch_redirect_penalty;
        // Redirect refill contends for the single fetch port: if any other
        // thread is actively fetching, the first post-redirect grants
        // arrive a few cycles later.
        const int self = slot_index(t);
        for (int s = 0; s < smt_ways(); ++s) {
            if (s == self) continue;
            const ThreadContext& other = slots_[static_cast<std::size_t>(s)];
            if (other.bound() && other.fe_stall == 0) {
                t.fe_stall += 4;
                break;
            }
        }
    } else {
        // ICache miss: fetch blocks for the service latency; the miss port
        // is shared by every thread on the core, so back-to-back misses
        // serialize.
        task.counters().increment(Event::kL1iCacheRefill);
        const bool l2 = task.fe_rng().uniform() < r.icache_l2_fraction;
        const int service = l2 ? cfg_->l2_latency : cfg_->llc_latency;
        t.fe_stall = icache_busy_ + service;
        icache_busy_ += service;
    }
    t.insts_until_fe = static_cast<std::int64_t>(
        task.fe_rng().geometric(std::max(r.p_branch + r.p_icache, 1e-9)));
}

std::uint64_t SmtCore::trigger_backend_episode(ThreadContext& t) noexcept {
    apps::AppInstance& task = *t.task();
    const EffectiveRates& r = t.rates;
    const auto batch = static_cast<std::uint64_t>(r.batch);
    task.counters().increment(Event::kL1dCacheRefill, batch);

    // Shared-window pressure: when another thread on the core is itself
    // blocked on memory, its instructions clog the shared ROB/MSHR
    // resources.  The effect is proportional to how often co-runners stall —
    // which is why a thread's backend stalls depend so strongly on the
    // *co-runners'* memory intensity (the large gamma of the paper's backend
    // category).  Track both "anyone blocked" and the longest remaining
    // DRAM-bound service among the blocked co-runners (the stream this
    // episode would queue behind).
    const int self = slot_index(t);
    bool sibling_blocked = false;
    int dram_queue_behind = 0;
    for (int s = 0; s < smt_ways(); ++s) {
        if (s == self) continue;
        const ThreadContext& other = slots_[static_cast<std::size_t>(s)];
        if (!other.bound() || other.be_stall <= 0) continue;
        sibling_blocked = true;
        if (other.dram_stall) dram_queue_behind = std::max(dram_queue_behind, other.be_stall);
    }

    const double u = task.be_rng().uniform();
    int latency = 0;
    bool dram = false;
    std::uint64_t mem_accesses = 0;
    if (u < r.l2_hit_eff) {
        latency = cfg_->l2_latency;
    } else if (u < r.l2_hit_eff + (1.0 - r.l2_hit_eff) * r.llc_hit_eff) {
        latency = cfg_->llc_latency;
        task.counters().increment(Event::kL2dCacheRefill, batch);
    } else {
        latency = r.mem_latency_eff;
        dram = true;
        task.counters().increment(Event::kL2dCacheRefill, batch);
        task.counters().increment(Event::kLlcCacheMiss, batch);
        mem_accesses = batch;
    }

    // Per-core MSHR serialization — the superadditive channel.  The core has
    // a limited pool of outstanding-miss slots; when several threads are in
    // DRAM-bound episodes simultaneously, the later stream queues behind the
    // remaining service time of the longest-running one.  Memory-phase
    // threads sharing one core therefore hurt each other far more than the
    // sum of their individual SMT costs, which is precisely the collision an
    // adaptive grouping policy can dodge and a static one cannot.
    if (dram && dram_queue_behind > 0)
        latency += std::min(dram_queue_behind, cfg_->mshr_serialization_cap);

    // Co-runner pressure is asymmetric by episode length.  An episode that
    // stalls anyway (latency beyond the window) gains nothing new from a
    // clogged window — its stall simply overlaps the co-runner's.  But an
    // episode the window normally hides *completely* finds the shared
    // ROB/MSHR slots occupied by a blocked co-runner and turns into a real
    // stall (service queues behind the co-runner's misses, and no window is
    // left to hide it).  This makes cache-friendly phases fragile next to
    // memory hogs while two memory hogs coexist at moderate extra cost —
    // the co-runner-dominated backend behaviour behind the paper's large
    // backend-category gamma.
    int headroom = r.headroom_cycles;
    if (sibling_blocked && latency <= headroom) {
        latency += cfg_->llc_latency;
        headroom = 0;
    }

    // The out-of-order window hides `headroom` cycles of the latency; the
    // rest blocks dispatch (ROB fills behind the oldest miss).
    const int stall = latency - headroom;
    if (stall > 0) {
        t.be_stall = stall;
        t.dram_stall = dram;
        task.counters().increment(Event::kStallBackendMem, static_cast<std::uint64_t>(stall));
    }
    t.insts_until_be =
        static_cast<std::int64_t>(task.be_rng().geometric(std::max(r.p_episode, 1e-9)));
    return mem_accesses;
}

void SmtCore::fetch_stage() noexcept {
    // Pick one thread for the single fetch port, round robin among those
    // that need instructions and are not frontend-stalled.
    const int ways = smt_ways();
    int chosen = -1;
    for (int k = 0; k < ways; ++k) {
        const int idx = (fetch_rr_ + k) % ways;
        ThreadContext& t = slots_[static_cast<std::size_t>(idx)];
        if (!t.bound() || t.fe_stall > 0) continue;
        if (t.fetch_buffer >= cfg_->fetch_buffer_entries) continue;
        chosen = idx;
        break;
    }
    if (chosen < 0) return;
    fetch_rr_ = (chosen + 1) % ways;

    ThreadContext& t = slots_[static_cast<std::size_t>(chosen)];
    apps::AppInstance& task = *t.task();
    if (t.insts_until_fe < 0)
        t.insts_until_fe = static_cast<std::int64_t>(
            task.fe_rng().geometric(std::max(t.rates.p_branch + t.rates.p_icache, 1e-9)));

    const int room = cfg_->fetch_buffer_entries - t.fetch_buffer;
    const int granted = std::min(cfg_->fetch_width, room);
    if (t.insts_until_fe < granted) {
        // The event interrupts the fetch group; instructions before it land.
        t.fetch_buffer += static_cast<int>(t.insts_until_fe);
        trigger_frontend_event(t);
    } else {
        t.fetch_buffer += granted;
        t.insts_until_fe -= granted;
    }
}

std::uint64_t SmtCore::dispatch_stage() noexcept {
    // Compute per-thread demand for this cycle.
    const int ways = smt_ways();
    std::array<int, kMaxSmtWays> want{};
    for (int i = 0; i < ways; ++i) {
        ThreadContext& t = slots_[static_cast<std::size_t>(i)];
        if (!t.bound() || t.be_stall > 0) continue;
        t.dispatch_credit =
            std::min(t.dispatch_credit + t.rates.dispatch_demand,
                     2.0 * static_cast<double>(cfg_->dispatch_width));
        want[static_cast<std::size_t>(i)] =
            std::min({static_cast<int>(t.dispatch_credit), t.fetch_buffer,
                      cfg_->dispatch_width});
    }

    // Arbitrate the shared dispatch slots with rotating priority: the
    // highest-priority thread takes what it wants, later threads (in
    // rotation order) share what remains.
    std::array<int, kMaxSmtWays> grant{};
    int remaining = cfg_->dispatch_width;
    for (int k = 0; k < ways; ++k) {
        const auto idx = static_cast<std::size_t>((dispatch_pri_ + k) % ways);
        grant[idx] = std::min(want[idx], remaining);
        remaining -= grant[idx];
    }
    dispatch_pri_ = (dispatch_pri_ + 1) % ways;

    std::uint64_t mem_accesses = 0;
    for (int i = 0; i < ways; ++i) {
        ThreadContext& t = slots_[static_cast<std::size_t>(i)];
        if (!t.bound()) continue;
        apps::AppInstance& task = *t.task();
        task.counters().increment(Event::kCpuCycles);

        const int g = grant[static_cast<std::size_t>(i)];
        if (g > 0) {
            t.dispatch_credit -= g;
            t.fetch_buffer -= g;
            const auto gu = static_cast<std::uint64_t>(g);
            task.counters().increment(Event::kInstSpec, gu);
            task.counters().increment(Event::kInstRetired, gu);
            task.retire(gu);
            if (t.insts_until_be < 0)
                t.insts_until_be = static_cast<std::int64_t>(
                    task.be_rng().geometric(std::max(t.rates.p_episode, 1e-9)));
            t.insts_until_be -= g;
            if (t.insts_until_be <= 0) mem_accesses += trigger_backend_episode(t);
            continue;
        }

        // Nothing dispatched for this thread: attribute the stall the way
        // the ARM PMU does (paper §III-B): empty dispatch queue counts as a
        // frontend stall; anything else blocking dispatch is backend.
        if (t.be_stall > 0) {
            task.counters().increment(Event::kStallBackend);
            task.counters().increment(Event::kStallBackendRob);
            --t.be_stall;
            if (t.be_stall == 0) t.dram_stall = false;
        } else if (t.fetch_buffer == 0) {
            task.counters().increment(Event::kStallFrontend);
        } else {
            // Dispatch bandwidth taken by co-runner threads (or fractional
            // credit): a backend resource-unavailable cycle.
            task.counters().increment(Event::kStallBackend);
            task.counters().increment(Event::kStallBackendIq);
        }
    }
    return mem_accesses;
}

std::uint64_t SmtCore::tick() noexcept {
    if (icache_busy_ > 0) --icache_busy_;
    const int ways = smt_ways();
    for (int s = 0; s < ways; ++s) {
        ThreadContext& t = slots_[static_cast<std::size_t>(s)];
        if (t.bound() && t.fe_stall > 0) --t.fe_stall;
    }
    fetch_stage();
    return dispatch_stage();
}

}  // namespace synpa::uarch
