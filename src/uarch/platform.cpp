#include "uarch/platform.hpp"

#include <set>
#include <stdexcept>
#include <string>

#include "obs/trace.hpp"

namespace synpa::uarch {

Platform::Platform(const SimConfig& cfg) : cfg_(cfg) {
    if (cfg_.num_chips < 1)
        throw std::invalid_argument("Platform: num_chips must be at least 1");
    chips_.reserve(static_cast<std::size_t>(cfg_.num_chips));
    for (int c = 0; c < cfg_.num_chips; ++c) chips_.push_back(std::make_unique<Chip>(cfg_));
    if (cfg_.sim_threads > 1 && cfg_.num_chips > 1)
        engine_ = std::make_unique<ParallelQuantumEngine>(cfg_.sim_threads, cfg_.num_chips);
}

void Platform::bind(apps::AppInstance& task, CpuSlot where) {
    if (where.core < 0 || where.core >= core_count())
        throw std::out_of_range("Platform::bind: bad global core");
    const int target_chip = chip_of_core(where.core);
    chip(target_chip).bind(task, {.core = local_core(where.core), .slot = where.slot});

    // Cross-chip move: override the chip's local warmup (if any) with the
    // larger remote window.  Charged after the chip bind so the bigger
    // penalty wins regardless of the task's history on the target chip.
    const int* prev = last_chip_.find(task.id());
    if (prev != nullptr && *prev != target_chip) {
        task.start_warmup(cfg_.cross_chip_warmup_insts(), cfg_.cross_chip_miss_multiplier);
        ++cross_chip_migrations_;
    }
    last_chip_.insert_or_assign(task.id(), target_chip);
}

void Platform::unbind(int task_id) {
    const int* it = last_chip_.find(task_id);
    if (it == nullptr || !chip(*it).is_bound(task_id))
        throw std::logic_error("Platform::unbind: task not bound");
    chip(*it).unbind(task_id);
}

void Platform::forget_task(int task_id) noexcept {
    for (const auto& chip : chips_) chip->forget_task(task_id);
    last_chip_.erase(task_id);
}

CpuSlot Platform::placement(int task_id) const {
    const int* it = last_chip_.find(task_id);
    if (it == nullptr || !chip(*it).is_bound(task_id))
        throw std::logic_error("Platform::placement: task not bound");
    const CpuSlot local = chip(*it).placement(task_id);
    return {.core = *it * cores_per_chip() + local.core, .slot = local.slot};
}

bool Platform::is_bound(int task_id) const noexcept {
    const int* it = last_chip_.find(task_id);
    return it != nullptr && chip(*it).is_bound(task_id);
}

std::vector<apps::AppInstance*> Platform::bound_tasks() const {
    std::vector<apps::AppInstance*> out;
    for (const auto& chip : chips_) {
        const std::vector<apps::AppInstance*> local = chip->bound_tasks();
        out.insert(out.end(), local.begin(), local.end());
    }
    return out;
}

void Platform::set_tracer(obs::Tracer* tracer) {
    tracer_ = tracer != nullptr && tracer->enabled() ? tracer : nullptr;
    if (tracer_ != nullptr) tracer_->prepare_chips(chip_count());
}

void Platform::run_quantum() {
    const bool trace_chips =
        tracer_ != nullptr && tracer_->wants(obs::EventKind::kChipQuantum);
    // One chip's traced quantum: the shard measures its own wall-clock and
    // writes only its chip's ring — no shared mutable state before the
    // barrier (the coordinator merges rings after the join, in ascending
    // chip order, so traces are identical at every SYNPA_SIM_THREADS).
    const auto run_chip_traced = [this](int c) {
        const double start_us = obs::host_now_us();
        chips_[static_cast<std::size_t>(c)]->run_quantum();
        const double stop_us = obs::host_now_us();
        obs::TraceEvent e;
        e.kind = obs::EventKind::kChipQuantum;
        e.quantum = quanta_;
        e.chip = c;
        e.value = stop_us - start_us;
        tracer_->emit_chip(c, std::move(e));
    };
    if (engine_) {
        // Fork/join: each chip's quantum runs on one shard; the barrier
        // inside run_chips completes before any platform-level state (or
        // any driver observe/bind code) runs.  Chip order within a shard
        // is ascending, so execution only differs from the serial loop by
        // interleaving across chips that share no state.
        if (trace_chips) {
            engine_->run_chips(run_chip_traced);
        } else {
            engine_->run_chips(
                [this](int c) { chips_[static_cast<std::size_t>(c)]->run_quantum(); });
        }
    } else {
        if (trace_chips) {
            for (int c = 0; c < chip_count(); ++c) run_chip_traced(c);
        } else {
            for (const auto& chip : chips_) chip->run_quantum();
        }
    }
    if (trace_chips) tracer_->merge_chip_events();
    now_ += cfg_.cycles_per_quantum;
    ++quanta_;
}

pmu::CounterBank Platform::task_counters(int task_id) const {
    const int* it = last_chip_.find(task_id);
    if (it == nullptr) throw std::logic_error("Platform::task_counters: unknown task");
    return chip(*it).task_counters(task_id);
}

void validate_platform(const Platform& platform) {
    const SimConfig& cfg = platform.config();
    std::set<int> seen;
    int bound = 0;
    for (int chip_id = 0; chip_id < platform.chip_count(); ++chip_id) {
        const Chip& chip = platform.chip(chip_id);
        if (chip.core_count() != cfg.cores)
            throw std::logic_error("validate_platform: chip core count mismatch");
        for (int c = 0; c < chip.core_count(); ++c) {
            const SmtCore& core = chip.core(c);
            for (int s = 0; s < kMaxSmtWays; ++s) {
                const ThreadContext& ctx = core.slot(s);
                if (!ctx.bound()) continue;
                if (s >= cfg.smt_ways)
                    throw std::logic_error(
                        "validate_platform: task bound beyond the configured SMT width");
                const int id = ctx.task()->id();
                if (!seen.insert(id).second)
                    throw std::logic_error("validate_platform: task " + std::to_string(id) +
                                           " bound to more than one slot");
                ++bound;
                const CpuSlot global = platform.placement(id);
                if (global.core != chip_id * cfg.cores + c || global.slot != s)
                    throw std::logic_error(
                        "validate_platform: placement map disagrees with slot state");
            }
        }
    }
    if (bound > platform.hw_contexts())
        throw std::logic_error("validate_platform: more bound tasks than hardware contexts");
    if (platform.bound_tasks().size() != static_cast<std::size_t>(bound))
        throw std::logic_error("validate_platform: bound_tasks() disagrees with slot scan");
}

}  // namespace synpa::uarch
