#include "uarch/parallel_engine.hpp"

#include <algorithm>
#include <future>
#include <vector>

namespace synpa::uarch {

ParallelQuantumEngine::ParallelQuantumEngine(int sim_threads, int num_chips)
    : num_chips_(std::max(num_chips, 1)),
      shards_(std::clamp(sim_threads, 1, num_chips_)) {
    if (shards_ > 1)
        pool_ = std::make_unique<common::ThreadPool>(static_cast<std::size_t>(shards_ - 1));
}

void ParallelQuantumEngine::run_shard(int shard,
                                      const std::function<void(int)>& run_chip) const {
    // Contiguous static partition, ascending within the shard: the union
    // over shards visits every chip exactly once, in an order that only
    // differs from the serial loop by interleaving — and chips share no
    // state, so the interleaving is unobservable.
    const int begin = shard * num_chips_ / shards_;
    const int end = (shard + 1) * num_chips_ / shards_;
    for (int c = begin; c < end; ++c) run_chip(c);
}

void ParallelQuantumEngine::run_chips(const std::function<void(int)>& run_chip) {
    if (shards_ <= 1) {
        run_shard(0, run_chip);
        return;
    }
    // Fork shards 1..S-1, run shard 0 on the coordinating thread, then
    // join on the per-shard futures — the quantum barrier.  Futures (not
    // ThreadPool::wait_idle) keep the barrier local to this engine's work
    // and deliver the first shard failure as an exception here.
    std::vector<std::future<void>> pending;
    pending.reserve(static_cast<std::size_t>(shards_ - 1));
    for (int s = 1; s < shards_; ++s)
        pending.push_back(
            pool_->submit_waitable([this, s, &run_chip] { run_shard(s, run_chip); }));
    std::exception_ptr first_error;
    try {
        run_shard(0, run_chip);
    } catch (...) {
        first_error = std::current_exception();
    }
    for (auto& f : pending) {
        try {
            f.get();
        } catch (...) {
            if (!first_error) first_error = std::current_exception();
        }
    }
    if (first_error) std::rethrow_exception(first_error);
}

}  // namespace synpa::uarch
