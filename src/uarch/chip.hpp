// The chip: N SMT cores (runtime width smt_ways, 1..kMaxSmtWays) sharing a
// last-level cache and the DRAM system.
//
// The chip owns the quantum loop.  At each quantum boundary it derives every
// bound thread's EffectiveRates from:
//   * its current phase parameters (demand, event rates, footprints),
//   * its co-runners' footprints (L1I and L2 are shared within the core),
//   * every chip task's LLC footprint (the 28 MB LLC is chip-wide),
//   * last quantum's DRAM utilization (bandwidth queueing), and
//   * the task's post-migration warmup state.
// Cache-sharing effects are *relative to isolated execution*: an app's
// profile rates describe its isolated behaviour, so multipliers are the
// ratio of shared-coverage to isolated-coverage miss factors.  Running an
// app alone on the chip reproduces its isolated profile by construction.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/instance.hpp"
#include "common/flat_map.hpp"
#include "pmu/perf_session.hpp"
#include "uarch/memory.hpp"
#include "uarch/sim_config.hpp"
#include "uarch/smt_core.hpp"

namespace synpa::uarch {

/// Physical placement of a task: core id and SMT slot within the core.
struct CpuSlot {
    int core = 0;
    int slot = 0;
    friend bool operator==(const CpuSlot&, const CpuSlot&) = default;
};

class Chip : public pmu::CounterSource {
public:
    explicit Chip(const SimConfig& cfg);

    const SimConfig& config() const noexcept { return cfg_; }
    int core_count() const noexcept { return static_cast<int>(cores_.size()); }
    const SmtCore& core(int c) const { return cores_.at(static_cast<std::size_t>(c)); }

    /// Binds a task to a hardware thread (the sched_setaffinity analogue).
    /// Rebinding to a *different core* than the task last ran on starts a
    /// cold-cache warmup window.  The slot must currently be free.
    void bind(apps::AppInstance& task, CpuSlot where);

    /// Removes the task from its hardware thread (it keeps architectural
    /// state and can be bound again later).
    void unbind(int task_id);

    /// Drops the task's migration history (last-core memory).  For tasks
    /// that retired for good — their ids are never reused, so keeping the
    /// entry would only grow the map for the lifetime of the run.
    void forget_task(int task_id) noexcept { last_core_.erase(task_id); }

    /// Where a task currently runs; throws if not bound.
    CpuSlot placement(int task_id) const;
    bool is_bound(int task_id) const noexcept { return placement_.contains(task_id); }

    /// All currently bound tasks (unspecified order).
    std::vector<apps::AppInstance*> bound_tasks() const;

    /// Runs one scheduling quantum (config().cycles_per_quantum cycles):
    /// refreshes contention rates, ticks every core, updates the DRAM model.
    void run_quantum();

    /// Cycles simulated so far.
    std::uint64_t now() const noexcept { return now_; }
    /// Quanta completed so far.
    std::uint64_t quanta_elapsed() const noexcept { return quanta_; }

    const MemorySystem& memory() const noexcept { return memory_; }

    // pmu::CounterSource: cumulative counters for a bound-or-known task.
    pmu::CounterBank task_counters(int task_id) const override;

private:
    void refresh_rates();

    SimConfig cfg_;
    std::vector<SmtCore> cores_;
    MemorySystem memory_;
    std::uint64_t now_ = 0;
    std::uint64_t quanta_ = 0;

    // Flat (id-indexed) maps: every one is probed per live task per
    // quantum on the counter/bind paths, where hashing showed up at 512
    // hardware contexts.
    common::FlatIdMap<apps::AppInstance*> tasks_;  ///< bound tasks by id
    common::FlatIdMap<CpuSlot> placement_;
    common::FlatIdMap<int> last_core_;  ///< survives unbind; drives warmup
};

}  // namespace synpa::uarch
