#include "uarch/chip.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/flat_map.hpp"
#include "uarch/cache.hpp"

namespace synpa::uarch {
namespace {

/// Miss multiplier relative to isolated execution: profiles encode isolated
/// rates, so only the *additional* pressure from sharing shows up.
double relative_miss_multiplier(double capacity, double share, double footprint,
                                double exponent, double cap) {
    const double cov_iso = coverage(capacity, footprint);
    const double cov_shared = coverage(std::min(share, capacity), footprint);
    const double mult =
        miss_multiplier(cov_shared, exponent, cap) / miss_multiplier(cov_iso, exponent, cap);
    return std::clamp(mult, 1.0, cap);
}

/// Saturating capacity-sharing model for data caches: the *hit* fraction
/// scales with the coverage ratio, hit_eff = hit_iso * (cov_sh/cov_iso)^k.
/// The effective exponent k = e * hit_iso places each application on its
/// miss-ratio curve: a thrashing application (low isolated hit ratio) sits
/// on the flat tail — LRU keeps protecting its hot lines, so losing
/// capacity barely moves its misses — while a cache-fitting application
/// sits on the steep part and loses hits quickly.  This asymmetry is what
/// makes cache-friendly phases fragile next to memory hogs while two
/// memory hogs coexist at moderate extra cost.
double shared_hit_fraction(double hit_iso, double capacity, double share, double footprint,
                           double exponent) {
    const double cov_iso = coverage(capacity, footprint);
    const double cov_shared = coverage(std::min(share, capacity), footprint);
    const double ratio = std::clamp(cov_shared / std::max(cov_iso, 1e-9), 0.0, 1.0);
    return hit_iso * std::pow(ratio, exponent * hit_iso);
}

}  // namespace

Chip::Chip(const SimConfig& cfg) : cfg_(cfg), memory_(cfg_) {
    cores_.assign(static_cast<std::size_t>(cfg_.cores), SmtCore(cfg_));
}

void Chip::bind(apps::AppInstance& task, CpuSlot where) {
    if (where.core < 0 || where.core >= core_count() || where.slot < 0 ||
        where.slot >= cfg_.smt_ways)
        throw std::out_of_range("Chip::bind: bad slot");
    if (placement_.contains(task.id())) throw std::logic_error("Chip::bind: task already bound");
    ThreadContext& ctx = cores_[static_cast<std::size_t>(where.core)].slot(where.slot);
    if (ctx.bound()) throw std::logic_error("Chip::bind: slot occupied");

    const int* prev = last_core_.find(task.id());
    if (prev != nullptr && *prev != where.core)
        task.start_warmup(cfg_.warmup_insts, cfg_.warmup_miss_multiplier);
    last_core_.insert_or_assign(task.id(), where.core);

    ctx.bind(&task);
    tasks_.insert_or_assign(task.id(), &task);
    placement_.insert_or_assign(task.id(), where);
}

void Chip::unbind(int task_id) {
    const CpuSlot* it = placement_.find(task_id);
    if (it == nullptr) throw std::logic_error("Chip::unbind: task not bound");
    cores_[static_cast<std::size_t>(it->core)].slot(it->slot).unbind();
    placement_.erase(task_id);
    tasks_.erase(task_id);
}

CpuSlot Chip::placement(int task_id) const {
    const CpuSlot* it = placement_.find(task_id);
    if (it == nullptr) throw std::logic_error("Chip::placement: task not bound");
    return *it;
}

std::vector<apps::AppInstance*> Chip::bound_tasks() const {
    std::vector<apps::AppInstance*> out;
    out.reserve(tasks_.size());
    tasks_.for_each([&out](int, apps::AppInstance* task) { out.push_back(task); });
    return out;
}

pmu::CounterBank Chip::task_counters(int task_id) const {
    apps::AppInstance* const* it = tasks_.find(task_id);
    if (it == nullptr) throw std::logic_error("Chip::task_counters: unknown task");
    return (*it)->counters();
}

void Chip::refresh_rates() {
    // Chip-wide LLC shares, proportional to current-phase footprints.
    std::vector<apps::AppInstance*> all;
    std::vector<double> llc_fp;
    for (auto& core : cores_)
        for (int s = 0; s < core.smt_ways(); ++s)
            if (core.slot(s).bound()) {
                all.push_back(core.slot(s).task());
                llc_fp.push_back(core.slot(s).task()->phase().data_footprint_llc_mb);
            }
    const std::vector<double> llc_share = proportional_shares(cfg_.llc_mb, llc_fp);
    common::FlatIdMap<double> llc_share_by_task;
    for (std::size_t i = 0; i < all.size(); ++i) llc_share_by_task[all[i]->id()] = llc_share[i];

    const double e = cfg_.cache_pressure_exponent;
    const double cap = cfg_.cache_miss_mult_cap;

    for (auto& core : cores_) {
        const int active = core.active_threads();
        const bool smt = active >= 2;
        for (int s = 0; s < core.smt_ways(); ++s) {
            ThreadContext& ctx = core.slot(s);
            if (!ctx.bound()) continue;
            apps::AppInstance& task = *ctx.task();
            const apps::PhaseParams& p = task.phase();
            const double warm = task.warmup_multiplier();

            // Total core-local footprint pressure: own footprint first, then
            // every co-runner's in slot order (L1I and L2 are shared by all
            // the core's active threads, however many the width allows).
            double code_fp_total = p.code_footprint_kb;
            double l2_fp_total = p.data_footprint_l2_kb;
            if (smt)
                for (int o = 0; o < core.smt_ways(); ++o) {
                    if (o == s || !core.slot(o).bound()) continue;
                    const apps::PhaseParams& op = core.slot(o).task()->phase();
                    code_fp_total += op.code_footprint_kb;
                    l2_fp_total += op.data_footprint_l2_kb;
                }

            EffectiveRates r;
            r.dispatch_demand = p.dispatch_demand;

            // Frontend: branch rate is intrinsic; ICache misses grow when the
            // co-runners' code competes for the 32 KB L1I, and when caches
            // are cold after a migration.
            const double fe_rate = p.fe_events_per_kinst / 1000.0;
            r.p_branch = fe_rate * p.fe_branch_fraction;
            double icache_mult = warm;
            if (smt) {
                const double share = cfg_.l1i_kb * p.code_footprint_kb /
                                     std::max(code_fp_total, 1e-9);
                icache_mult *= relative_miss_multiplier(cfg_.l1i_kb, share,
                                                        p.code_footprint_kb, e, cap);
            }
            r.p_icache = fe_rate * (1.0 - p.fe_branch_fraction) * icache_mult;
            r.icache_l2_fraction = p.icache_l2_fraction;

            // Backend: L2 is shared within the core, the LLC chip-wide.
            // Hit fractions scale with coverage ratios (saturating model).
            double l2_hit = p.l2_hit_fraction;
            if (smt) {
                const double share = cfg_.l2_kb * p.data_footprint_l2_kb /
                                     std::max(l2_fp_total, 1e-9);
                l2_hit = shared_hit_fraction(p.l2_hit_fraction, cfg_.l2_kb, share,
                                             p.data_footprint_l2_kb, e);
            }
            r.l2_hit_eff = l2_hit / std::max(warm, 1.0);

            const double share_mb = llc_share_by_task.at(task.id());
            r.llc_hit_eff = shared_hit_fraction(p.llc_hit_fraction, cfg_.llc_mb, share_mb,
                                                p.data_footprint_llc_mb, e);

            // Episodes: MLP batches misses; cold caches after a migration
            // temporarily raise the event rate (and lower hits, above).
            const double p_be = p.be_events_per_kinst / 1000.0 * warm;
            r.batch = std::max(1, static_cast<int>(std::lround(p.mlp)));
            r.p_episode = p_be / static_cast<double>(r.batch);

            // Latency hiding: the ROB is partitioned among *active* threads
            // (a core running one thread in SMT-4 mode keeps the full window).
            r.headroom_cycles = static_cast<int>(
                static_cast<double>(cfg_.rob_share(active)) / std::max(p.dispatch_demand, 1.0));
            r.mem_latency_eff =
                static_cast<int>(std::lround(cfg_.mem_latency * memory_.queue_factor()));

            ctx.rates = r;
        }
    }
}

void Chip::run_quantum() {
    refresh_rates();
    std::uint64_t mem_accesses = 0;
    const std::uint64_t cycles = cfg_.cycles_per_quantum;
    for (std::uint64_t c = 0; c < cycles; ++c)
        for (auto& core : cores_) mem_accesses += core.tick();
    memory_.end_quantum(mem_accesses, cycles);
    now_ += cycles;
    ++quanta_;
}

}  // namespace synpa::uarch
