#include "uarch/cache.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace synpa::uarch {

std::vector<double> proportional_shares(double capacity, std::span<const double> footprints) {
    std::vector<double> shares(footprints.size(), 0.0);
    double total = 0.0;
    for (double f : footprints) {
        if (f < 0.0) throw std::invalid_argument("proportional_shares: negative footprint");
        total += f;
    }
    if (total <= 0.0) {
        // Nobody wants the cache; give everyone the full capacity.
        std::fill(shares.begin(), shares.end(), capacity);
        return shares;
    }
    for (std::size_t i = 0; i < footprints.size(); ++i)
        shares[i] = capacity * footprints[i] / total;
    return shares;
}

double coverage(double allocated, double footprint) noexcept {
    if (footprint <= 0.0) return 1.0;
    if (allocated <= 0.0) return 1e-3;  // floor keeps multipliers finite
    return std::min(1.0, allocated / footprint);
}

double miss_multiplier(double cov, double exponent, double cap) noexcept {
    cov = std::clamp(cov, 1e-3, 1.0);
    const double mult = std::pow(cov, -exponent);
    return std::clamp(mult, 1.0, std::max(1.0, cap));
}

double shared_cache_miss_multiplier(double capacity, std::span<const double> footprints,
                                    std::size_t self, double exponent, double cap) {
    if (self >= footprints.size())
        throw std::out_of_range("shared_cache_miss_multiplier: bad index");
    const auto shares = proportional_shares(capacity, footprints);
    return miss_multiplier(coverage(shares[self], footprints[self]), exponent, cap);
}

}  // namespace synpa::uarch
