#include "uarch/sim_config.hpp"

#include <algorithm>
#include <cstring>
#include <thread>
#include <type_traits>

#include "common/config.hpp"
#include "common/rng.hpp"

namespace synpa::uarch {

std::uint64_t config_fingerprint(const SimConfig& cfg) noexcept {
    // Hash every field explicitly (never raw struct bytes: padding is
    // indeterminate and would make the fingerprint nondeterministic).
    std::uint64_t h = 0x51c0af16ULL;
    const auto mix_u64 = [&h](std::uint64_t v) { h = common::splitmix64(h ^ v); };
    const auto mix_int = [&](std::int64_t v) { mix_u64(static_cast<std::uint64_t>(v)); };
    const auto mix_dbl = [&](double v) {
        std::uint64_t bits = 0;
        std::memcpy(&bits, &v, sizeof(bits));
        mix_u64(bits);
    };
    mix_int(cfg.smt_ways);
    mix_int(cfg.dispatch_width);
    mix_int(cfg.rob_size);
    mix_int(cfg.iq_size);
    mix_int(cfg.load_buffer);
    mix_int(cfg.store_buffer);
    mix_int(cfg.issue_ports);
    mix_dbl(cfg.l1i_kb);
    mix_dbl(cfg.l1d_kb);
    mix_dbl(cfg.l2_kb);
    mix_dbl(cfg.llc_mb);
    mix_int(cfg.cores);
    mix_int(cfg.num_chips);
    mix_int(cfg.cross_chip_warmup_quanta);
    mix_dbl(cfg.cross_chip_miss_multiplier);
    mix_int(cfg.l2_latency);
    mix_int(cfg.llc_latency);
    mix_int(cfg.mem_latency);
    mix_int(cfg.branch_redirect_penalty);
    mix_int(cfg.fetch_width);
    mix_int(cfg.fetch_buffer_entries);
    mix_dbl(cfg.cache_pressure_exponent);
    mix_dbl(cfg.cache_miss_mult_cap);
    mix_dbl(cfg.mem_bw_accesses_per_cycle);
    mix_dbl(cfg.mem_queue_factor_cap);
    mix_dbl(cfg.warmup_miss_multiplier);
    mix_u64(cfg.warmup_insts);
    mix_int(cfg.mshr_serialization_cap);
    mix_u64(cfg.cycles_per_quantum);
    // cfg.sim_threads deliberately not mixed: it cannot change results
    // (parallel quanta are bit-identical to serial), so cached artifacts
    // must not fork per thread count.
    return h;
}

int nested_sim_threads(int requested, std::size_t outer_workers) noexcept {
    if (requested <= 1 || outer_workers <= 1) return std::max(requested, 1);
    const auto hw = static_cast<std::size_t>(
        std::max(1u, std::thread::hardware_concurrency()));
    const auto budget = std::max<std::size_t>(1, hw / outer_workers);
    return static_cast<int>(
        std::min<std::size_t>(static_cast<std::size_t>(requested), budget));
}

SimConfig SimConfig::from_env() {
    using common::env_double;
    using common::env_int;
    SimConfig c;
    c.cores = static_cast<int>(env_int("SYNPA_CORES", c.cores));
    c.num_chips = static_cast<int>(
        std::max<std::int64_t>(env_int("SYNPA_NUM_CHIPS", c.num_chips), 1));
    c.cross_chip_warmup_quanta = static_cast<int>(std::max<std::int64_t>(
        env_int("SYNPA_XCHIP_WARMUP_QUANTA", c.cross_chip_warmup_quanta), 0));
    c.cross_chip_miss_multiplier =
        env_double("SYNPA_XCHIP_MISS_MULT", c.cross_chip_miss_multiplier);
    c.sim_threads = static_cast<int>(
        std::max<std::int64_t>(env_int("SYNPA_SIM_THREADS", c.sim_threads), 1));
    c.smt_ways = static_cast<int>(
        std::clamp<std::int64_t>(env_int("SYNPA_SMT_WAYS", c.smt_ways), 1, kMaxSmtWays));
    c.cycles_per_quantum = static_cast<std::uint64_t>(
        env_int("SYNPA_QUANTUM_CYCLES", static_cast<std::int64_t>(c.cycles_per_quantum)));
    c.mem_latency = static_cast<int>(env_int("SYNPA_MEM_LATENCY", c.mem_latency));
    c.llc_latency = static_cast<int>(env_int("SYNPA_LLC_LATENCY", c.llc_latency));
    c.l2_latency = static_cast<int>(env_int("SYNPA_L2_LATENCY", c.l2_latency));
    c.mem_bw_accesses_per_cycle =
        env_double("SYNPA_MEM_BW", c.mem_bw_accesses_per_cycle);
    c.cache_pressure_exponent =
        env_double("SYNPA_CACHE_PRESSURE_EXP", c.cache_pressure_exponent);
    c.warmup_insts = static_cast<std::uint64_t>(
        env_int("SYNPA_WARMUP_INSTS", static_cast<std::int64_t>(c.warmup_insts)));
    c.mshr_serialization_cap =
        static_cast<int>(env_int("SYNPA_MSHR_CAP", c.mshr_serialization_cap));
    return c;
}

}  // namespace synpa::uarch
