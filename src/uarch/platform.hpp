// The platform: num_chips identical chips (sockets), each with its own
// cores, LLC and DRAM channel, addressed through one *global* core-id
// space: global core g lives on chip g / cores_per_chip at local index
// g % cores_per_chip.
//
// The platform is the drivers' substrate (ThreadManager and ScenarioRunner
// bind through it) and the owner of the topology-aware migration-cost
// model.  Moves form a cost hierarchy:
//   * slot move within a core        — free (architectural state follows),
//   * core move within a chip        — the chip's own L1/L2 warmup window
//     (SimConfig::warmup_insts / warmup_miss_multiplier, the PR-0 model),
//   * move across chips              — everything is cold *and* remote: the
//     platform charges cross_chip_warmup_quanta quanta of degraded IPC at
//     cross_chip_miss_multiplier, decaying linearly (cold L2/TLB plus
//     remote-memory latency until the working set migrates).
// A single-chip platform is bit-identical to driving the chip directly:
// every bind forwards unchanged and the cross-chip path never triggers.
//
// Execution can be chip-sharded: with SimConfig::sim_threads > 1 (env
// SYNPA_SIM_THREADS) run_quantum dispatches each chip's quantum to a
// ParallelQuantumEngine and joins on a barrier before returning, so the
// observe/decide/bind phases of the drivers stay on the coordinating
// thread.  Results are bit-identical to the serial path at every thread
// count: chips share no mutable state inside a quantum (RNG streams live
// in the per-task AppInstances, each bound to exactly one chip) and the
// platform's own counters advance only after the join.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "apps/instance.hpp"
#include "common/flat_map.hpp"
#include "pmu/perf_session.hpp"
#include "uarch/chip.hpp"
#include "uarch/parallel_engine.hpp"
#include "uarch/sim_config.hpp"

namespace synpa::obs {
class Tracer;
}  // namespace synpa::obs

namespace synpa::uarch {

class Platform : public pmu::CounterSource {
public:
    /// Builds cfg.num_chips chips of cfg.cores cores each (all identical).
    explicit Platform(const SimConfig& cfg);

    const SimConfig& config() const noexcept { return cfg_; }
    int chip_count() const noexcept { return static_cast<int>(chips_.size()); }
    int cores_per_chip() const noexcept { return cfg_.cores; }
    /// Total cores across every chip — the size of the global core-id space.
    int core_count() const noexcept { return chip_count() * cores_per_chip(); }
    /// Total hardware threads (cores x smt_ways).
    int hw_contexts() const noexcept { return core_count() * cfg_.smt_ways; }

    Chip& chip(int c) { return *chips_.at(static_cast<std::size_t>(c)); }
    const Chip& chip(int c) const { return *chips_.at(static_cast<std::size_t>(c)); }

    /// Which chip a global core id belongs to.
    int chip_of_core(int global_core) const noexcept { return global_core / cfg_.cores; }
    /// A global core id's index within its chip.
    int local_core(int global_core) const noexcept { return global_core % cfg_.cores; }

    /// The SMT core behind a global core id.
    const SmtCore& core(int global_core) const {
        return chip(chip_of_core(global_core)).core(local_core(global_core));
    }

    /// Binds a task to a hardware thread; `where.core` is a *global* core
    /// id.  Rebinding onto a different chip than the task last ran on
    /// charges the cross-chip warmup window (see file comment); a core move
    /// within the last chip charges the chip's cheaper local window.
    void bind(apps::AppInstance& task, CpuSlot where);

    /// Removes the task from its hardware thread (architectural state and
    /// migration history survive, so it can be bound again later).
    void unbind(int task_id);

    /// Drops a task's migration history platform-wide.  Drivers call this
    /// when a task leaves the system for good (retirement, relaunch
    /// replacement): ids are never reused, so the last-chip/last-core maps
    /// would otherwise grow by one dead entry per task ever admitted.
    void forget_task(int task_id) noexcept;

    /// Where a task currently runs (global core id); throws if not bound.
    CpuSlot placement(int task_id) const;
    bool is_bound(int task_id) const noexcept;

    /// All currently bound tasks across every chip (unspecified order).
    std::vector<apps::AppInstance*> bound_tasks() const;

    /// Runs one scheduling quantum on every chip in lockstep.  With
    /// cfg.sim_threads > 1 the per-chip work is sharded across host
    /// threads and joined before returning (bit-identical to serial).
    void run_quantum();

    /// Host threads a quantum actually uses (1 = serial path).
    int sim_shards() const noexcept { return engine_ ? engine_->shard_count() : 1; }

    /// Attaches the drivers' flight recorder (not owned; nullptr detaches).
    /// With tracing on, run_quantum times each chip's quantum with host
    /// wall-clock: shards write their own per-chip rings during the
    /// quantum and the coordinator merges them after the barrier, so the
    /// trace stream is identical at every SYNPA_SIM_THREADS.
    void set_tracer(obs::Tracer* tracer);

    /// Cycles simulated so far.
    std::uint64_t now() const noexcept { return now_; }
    /// Quanta completed so far.
    std::uint64_t quanta_elapsed() const noexcept { return quanta_; }

    /// Cross-chip migrations charged so far (each one started a cross-chip
    /// warmup window on the moved task).
    std::uint64_t cross_chip_migrations() const noexcept { return cross_chip_migrations_; }

    // pmu::CounterSource: cumulative counters for a bound-or-known task.
    pmu::CounterBank task_counters(int task_id) const override;

private:
    SimConfig cfg_;
    /// unique_ptr: Chip's SmtCores point into the owning Chip's SimConfig,
    /// so Chip must never relocate once constructed.
    std::vector<std::unique_ptr<Chip>> chips_;
    /// Chip-sharded quantum execution; null on the serial path
    /// (sim_threads <= 1 or a single chip).
    std::unique_ptr<ParallelQuantumEngine> engine_;
    /// Flight recorder (not owned); null when detached or disabled.
    obs::Tracer* tracer_ = nullptr;
    /// Task id -> chip it last ran on; survives unbind and drives the
    /// cross-chip warmup.  Flat (id-indexed): probed for every live task
    /// every quantum through bind/placement/task_counters.
    common::FlatIdMap<int> last_chip_;
    std::uint64_t now_ = 0;
    std::uint64_t quanta_ = 0;
    std::uint64_t cross_chip_migrations_ = 0;
};

/// Structural invariant check, used by the property/fuzz suite after every
/// quantum: every bound task occupies exactly one slot platform-wide, no
/// core runs more threads than smt_ways (slots beyond the width stay
/// empty), occupancy never exceeds chips x cores x smt_ways, and the
/// placement map agrees with the slot-level state.  Throws std::logic_error
/// naming the first violation.
void validate_platform(const Platform& platform);

}  // namespace synpa::uarch
