// One SMT core of runtime width 1..kMaxSmtWays: per-cycle fetch-port
// arbitration, dispatch-slot sharing, and the stall accounting that feeds
// the PMU.
//
// Contention is mechanistic, never scripted:
//  * a single ICache fetch port rotates among threads that need it, and
//    ICache miss service is serialized (the paper's §VI-A observation that
//    "only a single thread can access the ICache at a given cycle");
//  * the four dispatch slots are arbitrated with rotating priority, so N
//    high-ILP threads each see roughly 1/N of the dispatch bandwidth;
//  * backend stall episodes hide less latency in SMT because the ROB is
//    partitioned among the *active* threads (headroom comes in via
//    EffectiveRates, computed by the chip).
#pragma once

#include <array>
#include <cstdint>

#include "uarch/sim_config.hpp"
#include "uarch/thread_context.hpp"

namespace synpa::uarch {

class SmtCore {
public:
    explicit SmtCore(const SimConfig& cfg) : cfg_(&cfg) {}

    ThreadContext& slot(int s) { return slots_[static_cast<std::size_t>(s)]; }
    const ThreadContext& slot(int s) const { return slots_[static_cast<std::size_t>(s)]; }

    /// The configured SMT width: slots 0..smt_ways()-1 are usable.
    int smt_ways() const noexcept { return cfg_->smt_ways; }

    /// Number of SMT slots with a task bound.
    int active_threads() const noexcept {
        int n = 0;
        for (int s = 0; s < smt_ways(); ++s) n += slots_[static_cast<std::size_t>(s)].bound();
        return n;
    }

    /// True when the core actually multiplexes threads (>= 2 bound).
    bool smt_active() const noexcept { return active_threads() >= 2; }

    /// Advances the core one cycle.  Returns the number of chip-level memory
    /// accesses (LLC misses) triggered this cycle, for the bandwidth model.
    std::uint64_t tick() noexcept;

private:
    void fetch_stage() noexcept;
    std::uint64_t dispatch_stage() noexcept;
    void trigger_frontend_event(ThreadContext& t) noexcept;
    /// Returns the number of DRAM accesses caused by the episode (0 or batch).
    std::uint64_t trigger_backend_episode(ThreadContext& t) noexcept;
    int slot_index(const ThreadContext& t) const noexcept {
        return static_cast<int>(&t - slots_.data());
    }

    const SimConfig* cfg_;
    std::array<ThreadContext, kMaxSmtWays> slots_{};
    int fetch_rr_ = 0;      ///< fetch-port round-robin pointer
    int dispatch_pri_ = 0;  ///< dispatch-priority rotator
    int icache_busy_ = 0;   ///< cycles until the ICache miss port frees up
};

}  // namespace synpa::uarch
