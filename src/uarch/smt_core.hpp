// One SMT2 core: per-cycle fetch-port arbitration, dispatch-slot sharing,
// and the stall accounting that feeds the PMU.
//
// Contention is mechanistic, never scripted:
//  * a single ICache fetch port alternates between threads that need it, and
//    ICache miss service is serialized (the paper's §VI-A observation that
//    "only a single thread can access the ICache at a given cycle");
//  * the four dispatch slots are arbitrated with alternating priority, so
//    two high-ILP threads each see roughly half the dispatch bandwidth;
//  * backend stall episodes hide less latency in SMT because the ROB is
//    partitioned between the two threads (headroom comes in via
//    EffectiveRates, computed by the chip).
#pragma once

#include <array>
#include <cstdint>

#include "uarch/sim_config.hpp"
#include "uarch/thread_context.hpp"

namespace synpa::uarch {

class SmtCore {
public:
    explicit SmtCore(const SimConfig& cfg) : cfg_(&cfg) {}

    ThreadContext& slot(int s) { return slots_[static_cast<std::size_t>(s)]; }
    const ThreadContext& slot(int s) const { return slots_[static_cast<std::size_t>(s)]; }
    int smt_ways() const noexcept { return 2; }

    /// True when both SMT slots have a task bound.
    bool smt_active() const noexcept { return slots_[0].bound() && slots_[1].bound(); }

    /// Advances the core one cycle.  Returns the number of chip-level memory
    /// accesses (LLC misses) triggered this cycle, for the bandwidth model.
    std::uint64_t tick() noexcept;

private:
    void fetch_stage() noexcept;
    std::uint64_t dispatch_stage() noexcept;
    void trigger_frontend_event(ThreadContext& t) noexcept;
    /// Returns the number of DRAM accesses caused by the episode (0 or batch).
    std::uint64_t trigger_backend_episode(ThreadContext& t) noexcept;

    const SimConfig* cfg_;
    std::array<ThreadContext, 2> slots_{};
    int fetch_rr_ = 0;      ///< fetch-port round-robin pointer
    int dispatch_pri_ = 0;  ///< dispatch-priority alternator
    int icache_busy_ = 0;   ///< cycles until the ICache miss port frees up
};

}  // namespace synpa::uarch
