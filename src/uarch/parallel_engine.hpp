// Chip-sharded quantum execution: fork per-chip work onto a small worker
// pool, join on a barrier before control returns to the scheduler.
//
// Between allocation decisions chips are fully independent — each owns its
// cores, LLC and DRAM model, every RNG stream lives in the AppInstances
// bound to exactly one chip, and nothing in Chip::run_quantum reads another
// chip's state.  That makes per-chip dispatch deterministic by
// construction: the engine statically partitions chip ids into contiguous
// shards (shard k runs chips [k*C/S, (k+1)*C/S) in ascending order, the
// same order the serial loop visits them), so results are bit-identical to
// the serial path at every worker count.  This is the master-timer-plus-
// siblings structure Sniper's SMT performance model uses, lifted from SMT
// sibling threads to whole chips.
//
// The calling (coordinating) thread always executes shard 0 itself; only
// shards 1..S-1 go to the pool, so a platform configured with S sim
// threads spawns S-1 workers.  The join is per-task futures rather than a
// pool-wide wait, so an engine never observes work any other component
// might have queued on a shared pool.
#pragma once

#include <functional>
#include <memory>

#include "common/thread_pool.hpp"

namespace synpa::uarch {

class ParallelQuantumEngine {
public:
    /// An engine driving `num_chips` chips with up to `sim_threads`
    /// threads.  The effective shard count is min(sim_threads, num_chips),
    /// never below 1; a shard count of 1 degenerates to the serial loop
    /// and spawns no workers.
    ParallelQuantumEngine(int sim_threads, int num_chips);

    /// Threads that participate in a quantum (including the caller).
    int shard_count() const noexcept { return shards_; }

    /// Runs run_chip(c) exactly once for every chip in [0, num_chips),
    /// sharded across the workers, and returns only after every chip
    /// finished (the quantum barrier).  The first exception thrown by any
    /// shard is rethrown here after the barrier.  `run_chip` must not touch
    /// state shared across chips — the determinism and TSan contracts both
    /// hang on that.
    void run_chips(const std::function<void(int)>& run_chip);

private:
    void run_shard(int shard, const std::function<void(int)>& run_chip) const;

    int num_chips_;
    int shards_;
    std::unique_ptr<common::ThreadPool> pool_;  ///< null when shards_ == 1
};

}  // namespace synpa::uarch
