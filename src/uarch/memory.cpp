#include "uarch/memory.hpp"

#include <algorithm>

namespace synpa::uarch {

void MemorySystem::end_quantum(std::uint64_t memory_accesses, std::uint64_t cycles) noexcept {
    if (cycles == 0) return;
    const double rate = static_cast<double>(memory_accesses) / static_cast<double>(cycles);
    const double u = std::min(rate / cfg_->mem_bw_accesses_per_cycle, 0.95);
    // Smooth across quanta so a single spike does not whipsaw latency.
    utilization_ = 0.5 * utilization_ + 0.5 * u;
    queue_factor_ = std::min(1.0 / (1.0 - utilization_), cfg_->mem_queue_factor_cap);
}

}  // namespace synpa::uarch
