// Per-hardware-thread execution state.
//
// A ThreadContext is one SMT slot of a core: the binding to an application
// instance plus the microarchitectural state that lives in the core (fetch
// buffer contents, stall timers, distance-to-next-event draws).  Binding a
// different task resets this state — architecturally the task carries its
// own progress (in AppInstance), but pipeline state does not migrate.
#pragma once

#include <cstdint>

#include "apps/instance.hpp"

namespace synpa::uarch {

/// Event probabilities and latencies for the thread's current quantum,
/// derived by the chip from the task's phase, the co-runner's footprints,
/// chip-wide LLC sharing, DRAM queueing, and post-migration warmup.
struct EffectiveRates {
    double p_branch = 0.0;        ///< branch mispredictions per fetched inst
    double p_icache = 0.0;        ///< ICache misses per fetched inst
    double icache_l2_fraction = 0.85;
    double p_episode = 0.0;       ///< backend stall episodes per dispatched inst
    int batch = 1;                ///< overlapped misses per episode (MLP)
    double l2_hit_eff = 0.5;      ///< contention-adjusted L2 hit fraction
    double llc_hit_eff = 0.6;     ///< contention-adjusted LLC hit fraction
    int headroom_cycles = 32;     ///< latency the ROB can hide
    int mem_latency_eff = 180;    ///< queue-adjusted DRAM latency
    double dispatch_demand = 3.0; ///< instructions/cycle the task wants
};

class ThreadContext {
public:
    bool bound() const noexcept { return task_ != nullptr; }
    apps::AppInstance* task() noexcept { return task_; }
    const apps::AppInstance* task() const noexcept { return task_; }

    /// Binds a task, clearing core-resident state (pipeline does not migrate).
    void bind(apps::AppInstance* task) noexcept {
        task_ = task;
        fetch_buffer = 0;
        fe_stall = 0;
        be_stall = 0;
        dram_stall = false;
        insts_until_fe = -1;  // -1: draw lazily once rates are known
        insts_until_be = -1;
        dispatch_credit = 0.0;
    }
    void unbind() noexcept { bind(nullptr); }

    // Core-resident microstate (managed by SmtCore's cycle loop).
    int fetch_buffer = 0;
    int fe_stall = 0;
    int be_stall = 0;
    bool dram_stall = false;  ///< current be_stall is a DRAM-bound episode
    std::int64_t insts_until_fe = -1;
    std::int64_t insts_until_be = -1;
    double dispatch_credit = 0.0;
    EffectiveRates rates;

private:
    apps::AppInstance* task_ = nullptr;
};

}  // namespace synpa::uarch
