// Simulator configuration: the ThunderX2 CN9975 parameters from the paper's
// Table II plus latency/contention knobs and time-scaling controls.
//
// The paper's machine runs 100 ms quanta (~2.2e8 cycles at 2.2 GHz).  The
// simulator keeps the same *structure* (SMT2 cores, dispatch width 4,
// ROB 128, 32K/32K L1, 256K L2, shared 28M LLC) but scales the quantum down
// so a full 20-workload evaluation fits a laptop-class time budget.  All
// values can be overridden through SYNPA_* environment variables.
#pragma once

#include <cstdint>
#include <string>

namespace synpa::uarch {

/// Hard upper bound on SMT slots per core (the ThunderX2 BIOS maxes out at
/// SMT-4); SimConfig::smt_ways picks the runtime width 1..kMaxSmtWays.
inline constexpr int kMaxSmtWays = 4;

struct SimConfig {
    // ---- Table II: core microarchitecture -------------------------------
    int smt_ways = 2;              ///< BIOS-configured width (1, 2 or 4 on the TX2)
    int dispatch_width = 4;        ///< instructions dispatched per cycle
    int rob_size = 128;            ///< reorder buffer entries (partitioned in SMT)
    int iq_size = 60;              ///< issue queue entries
    int load_buffer = 64;          ///< load queue entries
    int store_buffer = 36;         ///< store queue entries
    int issue_ports = 6;

    // ---- Table II: memory subsystem -------------------------------------
    double l1i_kb = 32.0;          ///< shared by the core's SMT threads
    double l1d_kb = 32.0;
    double l2_kb = 256.0;          ///< per core, shared by its SMT threads
    double llc_mb = 28.0;          ///< chip-wide shared last-level cache
    int cores = 4;                 ///< cores *per chip* used by the 8-app workloads

    // ---- platform topology ------------------------------------------------
    // The paper's target machines are dual-socket ThunderX2 boxes; a
    // Platform (uarch/platform.hpp) instantiates `num_chips` identical
    // chips, each with its own LLC and DRAM channel.  Moving a task across
    // chips is far more expensive than a same-chip core move: the L2 *and*
    // the remote LLC/TLB state are cold, and until refill completes the
    // task's memory traffic pays remote-socket latency.  That is modeled as
    // a warmup window of `cross_chip_warmup_quanta` quanta (scaled through
    // cycles_per_quantum) at miss multiplier `cross_chip_miss_multiplier`,
    // decaying linearly — visibly degraded IPC for the K quanta after a
    // cross-chip rebind.
    int num_chips = 1;                      ///< chips (sockets) in the platform
    int cross_chip_warmup_quanta = 2;       ///< K: quanta of degraded IPC
    double cross_chip_miss_multiplier = 2.5;  ///< peak cold-cache factor

    // ---- simulator execution (not modeled hardware) -----------------------
    // Chips are independent between allocation decisions, so a Platform can
    // run each quantum's per-chip simulation on up to `sim_threads` threads
    // (clamped to num_chips) with a barrier at the quantum boundary.
    // Results are bit-identical at every thread count — this knob trades
    // host CPUs for wall time and changes nothing the simulation observes,
    // which is why it is deliberately EXCLUDED from config_fingerprint():
    // cached artifacts stay valid across thread counts.
    int sim_threads = 1;                    ///< host threads per quantum (>=1)

    // ---- latencies (cycles) ---------------------------------------------
    int l2_latency = 12;
    int llc_latency = 40;
    int mem_latency = 180;
    int branch_redirect_penalty = 14;

    // ---- frontend model ---------------------------------------------------
    // The fetch port serves one thread per cycle (paper §VI-A: "the IFetch
    // policies only allow a single thread to access the ICache at a given
    // processor cycle"), so a width just above the dispatch width makes
    // port sharing a real tax: a thread fetching every other cycle sustains
    // only fetch_width/2 instructions per cycle — two frontend-hungry
    // threads throttle each other disproportionately.
    int fetch_width = 4;           ///< instructions fetched per port grant
    int fetch_buffer_entries = 24; ///< per-thread dispatch queue capacity

    // ---- contention model -------------------------------------------------
    double cache_pressure_exponent = 0.85;  ///< miss mult = coverage^-e
    double cache_miss_mult_cap = 3.0;       ///< upper bound on that multiplier
    double mem_bw_accesses_per_cycle = 0.30;  ///< chip DRAM service rate
    double mem_queue_factor_cap = 1.5;      ///< latency inflation bound
    // Migration cost, scaled to the quantum: on the paper's 100 ms quanta a
    // same-socket sched_setaffinity migration (L1/L2 refill; the LLC stays
    // warm) is well under 1% of the quantum, so the scaled-down default
    // keeps the same cost-to-quantum ratio.  bench_ablation_policy sweeps it.
    double warmup_miss_multiplier = 1.5;    ///< post-migration cold-cache factor
    std::uint64_t warmup_insts = 1000;      ///< instructions affected after a migration
    /// Upper bound on the per-core MSHR serialization delay two
    /// simultaneously DRAM-stalled threads impose on each other (cycles).
    int mshr_serialization_cap = 60;

    // ---- time scaling -----------------------------------------------------
    std::uint64_t cycles_per_quantum = 50'000;

    /// Effective ROB entries available to one thread.  The ROB is
    /// partitioned among the threads *actually running* on the core, not
    /// the configured width: a core running a single thread in SMT-4 mode
    /// still hands that thread the whole window.
    int rob_share(int active_threads) const noexcept {
        return rob_size / (active_threads > 1 ? active_threads : 1);
    }

    /// Cold-cache window charged on a cross-chip migration, in instructions
    /// (the warmup state decays per retired instruction; K quanta at an
    /// IPC near 1 is K * cycles_per_quantum instructions).
    std::uint64_t cross_chip_warmup_insts() const noexcept {
        return static_cast<std::uint64_t>(cross_chip_warmup_quanta) * cycles_per_quantum;
    }

    /// Loads defaults then applies SYNPA_* environment overrides
    /// (SYNPA_QUANTUM_CYCLES, SYNPA_CORES, SYNPA_NUM_CHIPS,
    /// SYNPA_MEM_LATENCY, ...).
    static SimConfig from_env();
};

/// Deterministic fingerprint over every configuration field that can
/// affect simulation *results*; used to key caches of simulation results
/// (e.g. isolated profiles) safely.  `sim_threads` is excluded: the
/// parallel quantum engine is bit-identical to the serial path, so
/// artifacts are shared across thread counts.
std::uint64_t config_fingerprint(const SimConfig& cfg) noexcept;

/// The sim_threads a nested simulation should actually use when its
/// *caller* already fans out over `outer_workers` pool threads (campaign /
/// scenario-grid cells).  Caps requested threads so outer x inner never
/// oversubscribes the host: with a saturated outer pool this returns 1
/// (cells stay serial inside — the parallelism is already at the cell
/// grain), on an idle host it returns the request unchanged.  Purely a
/// scheduling decision; results are identical either way.
int nested_sim_threads(int requested, std::size_t outer_workers) noexcept;

}  // namespace synpa::uarch
