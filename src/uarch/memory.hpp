// Chip-level DRAM bandwidth model.
//
// Off-chip accesses from every core share one memory system.  The simulator
// tracks the chip's aggregate access rate over the previous quantum and
// inflates memory latency for the next one with an M/M/1-style queueing
// factor 1/(1-u).  This couples the cores the same way the ThunderX2's
// memory controllers do: a chip full of memory-bound threads sees higher
// effective latency than an isolated run, which is one of the reasons
// backend-heavy pairings are expensive.
#pragma once

#include <cstdint>

#include "uarch/sim_config.hpp"

namespace synpa::uarch {

class MemorySystem {
public:
    explicit MemorySystem(const SimConfig& cfg) : cfg_(&cfg) {}

    /// Records memory accesses observed during the quantum just executed and
    /// recomputes the latency factor used in the next quantum.
    void end_quantum(std::uint64_t memory_accesses, std::uint64_t cycles) noexcept;

    /// Latency multiplier applied to DRAM accesses this quantum (>= 1).
    double queue_factor() const noexcept { return queue_factor_; }

    /// Utilization of the DRAM service rate in the previous quantum (0..1).
    double utilization() const noexcept { return utilization_; }

    void reset() noexcept {
        queue_factor_ = 1.0;
        utilization_ = 0.0;
    }

private:
    const SimConfig* cfg_;
    double queue_factor_ = 1.0;
    double utilization_ = 0.0;
};

}  // namespace synpa::uarch
