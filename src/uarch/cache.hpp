// Capacity-sharing cache contention model.
//
// Rather than tracking individual cache lines (which would dominate runtime
// and add nothing SYNPA can observe), shared caches are modelled at the
// working-set level: each sharer receives a capacity share proportional to
// its footprint, and its miss ratio scales with how much of its working set
// fits.  This is the classic "miss rate vs. effective capacity" power-law
// model and produces the asymmetric, co-runner-dependent interference the
// paper's regression is designed to capture.
#pragma once

#include <span>
#include <vector>

namespace synpa::uarch {

/// Computes footprint-proportional capacity shares.
/// Returns, for each footprint, the capacity assigned to that sharer.
std::vector<double> proportional_shares(double capacity, std::span<const double> footprints);

/// Fraction of a working set that fits in `allocated` capacity (0..1].
/// A zero footprint is fully covered.
double coverage(double allocated, double footprint) noexcept;

/// Miss-ratio multiplier for a sharer whose coverage dropped below 1:
/// multiplier = coverage^-exponent, clamped to [1, cap].
double miss_multiplier(double cov, double exponent, double cap) noexcept;

/// Convenience: multiplier for one sharer of a cache given every sharer's
/// footprint.  `self` indexes into `footprints`.
double shared_cache_miss_multiplier(double capacity, std::span<const double> footprints,
                                    std::size_t self, double exponent, double cap);

}  // namespace synpa::uarch
