// Per-task phase-change detection from rolling PMU deltas.
//
// The paper's runtime premise is that allocation must track what threads
// are doing *now*; an application that crosses a phase boundary (profile.hpp
// phase machine; SPEC apps do this every few hundred kinsts) invalidates
// both the estimator's smoothed isolated estimate and any solo reference
// the online trainer holds.  The detector watches four per-task signals —
// IPC plus the three category fractions — and flags a change with a
// two-sided CUSUM test per signal: after a short warmup establishes the
// phase's mean and noise level, each quantum's standardized deviation
// accumulates into positive/negative CUSUM statistics, and either side
// exceeding the threshold raises an alarm (and restarts the baseline).
//
// CUSUM is the classic sequential change-point test: it is memoryless per
// quantum (O(1) state per signal), detects small persistent shifts that a
// single-quantum threshold would miss, and its false-positive rate on
// stationary noise is controlled by the (drift, threshold) pair — both
// covered by tests/test_online.cpp.
#pragma once

#include <array>
#include <cstdint>

#include "common/flat_map.hpp"
#include "model/interference_model.hpp"

namespace synpa::online {

class PhaseDetector {
public:
    /// Signals watched per task: IPC + the kCategoryCount fractions.
    static constexpr std::size_t kSignalCount = 1 + model::kCategoryCount;

    struct Options {
        /// Quanta used to establish a phase's baseline mean/sigma.  While a
        /// task is warming up it never alarms.
        int warmup_quanta = 5;
        /// CUSUM slack k, in sigmas: deviations below it are absorbed as
        /// noise.  Detects shifts larger than ~2k sigmas quickly.
        double drift = 0.75;
        /// CUSUM alarm level h, in sigmas of accumulated deviation.
        double threshold = 6.0;
        /// Per-signal noise floor for the standardization (an almost-
        /// constant signal must not turn harmless jitter into alarms).
        /// Index 0 is IPC (instructions/cycle scale), 1.. are fractions.
        std::array<double, kSignalCount> min_sigma = {0.05, 0.02, 0.02, 0.02};

        /// Applies SYNPA_ONLINE_WARMUP / SYNPA_ONLINE_DRIFT /
        /// SYNPA_ONLINE_THRESHOLD overrides to the defaults.
        static Options from_env();
    };

    PhaseDetector() : PhaseDetector(Options{}) {}
    explicit PhaseDetector(Options opts);

    /// Digests one task-quantum; returns true when a phase change is
    /// flagged.  On an alarm the task's baseline restarts (re-warming from
    /// the alarming sample, which already belongs to the new phase).
    bool observe(int task_id, double ipc, const model::CategoryVector& fractions);

    /// Restarts the task's baseline without flagging (external events that
    /// are known not to be phase changes, e.g. a relaunch).
    void reset(int task_id);

    /// Drops all state for a departed task.
    void forget(int task_id);

    /// True once the task's baseline is established (past warmup).
    bool warmed_up(int task_id) const;

    std::uint64_t alarms() const noexcept { return alarms_; }

private:
    struct Signal {
        double mean = 0.0;
        double m2 = 0.0;     ///< Welford sum of squared deviations (warmup)
        double sigma = 0.0;  ///< frozen at warmup end
        double pos = 0.0;    ///< positive CUSUM statistic
        double neg = 0.0;    ///< negative CUSUM statistic
    };
    struct TaskState {
        int samples = 0;
        std::array<Signal, kSignalCount> signals{};
    };

    Options opts_;
    common::FlatIdMap<TaskState> state_;
    std::uint64_t alarms_ = 0;
};

}  // namespace synpa::online
