#include "online/phase_detector.hpp"

#include <algorithm>
#include <cmath>

#include "common/config.hpp"

namespace synpa::online {

PhaseDetector::Options PhaseDetector::Options::from_env() {
    Options o;
    o.warmup_quanta = static_cast<int>(std::max<std::int64_t>(
        common::env_int("SYNPA_ONLINE_WARMUP", o.warmup_quanta), 2));
    o.drift = common::env_double("SYNPA_ONLINE_DRIFT", o.drift);
    o.threshold = common::env_double("SYNPA_ONLINE_THRESHOLD", o.threshold);
    return o;
}

PhaseDetector::PhaseDetector(Options opts) : opts_(opts) {}

bool PhaseDetector::observe(int task_id, double ipc,
                            const model::CategoryVector& fractions) {
    std::array<double, kSignalCount> x;
    x[0] = ipc;
    for (std::size_t c = 0; c < model::kCategoryCount; ++c) x[c + 1] = fractions[c];

    TaskState& task = state_[task_id];
    if (task.samples < opts_.warmup_quanta) {
        // Welford baseline accumulation; no alarms while warming up.
        ++task.samples;
        for (std::size_t s = 0; s < kSignalCount; ++s) {
            Signal& sig = task.signals[s];
            const double delta = x[s] - sig.mean;
            sig.mean += delta / static_cast<double>(task.samples);
            sig.m2 += delta * (x[s] - sig.mean);
        }
        if (task.samples == opts_.warmup_quanta) {
            for (std::size_t s = 0; s < kSignalCount; ++s) {
                Signal& sig = task.signals[s];
                const double var =
                    task.samples > 1 ? sig.m2 / static_cast<double>(task.samples - 1) : 0.0;
                sig.sigma = std::max(std::sqrt(std::max(var, 0.0)), opts_.min_sigma[s]);
            }
        }
        return false;
    }

    bool alarm = false;
    for (std::size_t s = 0; s < kSignalCount; ++s) {
        Signal& sig = task.signals[s];
        const double z = (x[s] - sig.mean) / sig.sigma;
        sig.pos = std::max(0.0, sig.pos + z - opts_.drift);
        sig.neg = std::max(0.0, sig.neg - z - opts_.drift);
        alarm = alarm || sig.pos > opts_.threshold || sig.neg > opts_.threshold;
    }
    if (!alarm) return false;

    ++alarms_;
    // Restart the baseline from the alarming sample: it already belongs to
    // the new phase, so it seeds the next warmup.
    task = TaskState{};
    ++task.samples;
    for (std::size_t s = 0; s < kSignalCount; ++s) task.signals[s].mean = x[s];
    return true;
}

void PhaseDetector::reset(int task_id) { state_.erase(task_id); }

void PhaseDetector::forget(int task_id) { state_.erase(task_id); }

bool PhaseDetector::warmed_up(int task_id) const {
    const TaskState* it = state_.find(task_id);
    return it != nullptr && it->samples >= opts_.warmup_quanta;
}

}  // namespace synpa::online
