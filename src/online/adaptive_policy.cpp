#include "online/adaptive_policy.hpp"

#include <algorithm>
#include <utility>

#include "common/config.hpp"
#include "obs/trace.hpp"

namespace synpa::online {

OnlineOptions OnlineOptions::from_env() {
    OnlineOptions o;
    o.detector = PhaseDetector::Options::from_env();
    o.prior_strength = common::env_double("SYNPA_ONLINE_PRIOR", o.prior_strength);
    o.refit_period = static_cast<std::uint64_t>(std::max<std::int64_t>(
        common::env_int("SYNPA_ONLINE_REFIT_QUANTA", static_cast<std::int64_t>(o.refit_period)),
        1));
    o.min_samples = static_cast<std::size_t>(std::max<std::int64_t>(
        common::env_int("SYNPA_ONLINE_MIN_SAMPLES", static_cast<std::int64_t>(o.min_samples)),
        1));
    o.reference_max_age = static_cast<std::uint64_t>(std::max<std::int64_t>(
        common::env_int("SYNPA_ONLINE_REF_MAX_AGE",
                        static_cast<std::int64_t>(o.reference_max_age)),
        1));
    o.forgetting = common::env_double("SYNPA_ONLINE_FORGETTING", o.forgetting);
    return o;
}

AdaptiveSynpaPolicy::AdaptiveSynpaPolicy(model::InterferenceModel model,
                                         core::SynpaPolicy::Options base,
                                         OnlineOptions online)
    : inner_(model, base),
      opts_(online),
      detector_(online.detector),
      trainer_(std::move(model), {.prior_strength = online.prior_strength}) {}

void AdaptiveSynpaPolicy::set_tracer(obs::Tracer* tracer) {
    tracer_ = tracer != nullptr && tracer->enabled() ? tracer : nullptr;
    inner_.set_tracer(tracer);  // allocation events come from the inner policy
}

std::string AdaptiveSynpaPolicy::name() const {
    // "synpa-adaptive", with the inner selector/objective suffixes kept
    // ("synpa-fair" -> "synpa-adaptive-fair").
    const std::string base = inner_.name();
    return "synpa-adaptive" + base.substr(std::string("synpa").size());
}

sched::CoreAllocation AdaptiveSynpaPolicy::reallocate(
    std::span<const sched::TaskObservation> observations) {
    ++quantum_;

    // Placement-stability gate: a task whose core or co-runner set changed
    // since the previous quantum shows counter shifts that are explained by
    // the *scheduler* (regrouping contention change, migration warmup), not
    // by the application.  Feeding those quanta to the CUSUM would raise
    // false alarms on every regroup, and harvesting them would produce
    // misaligned samples — so both only see stable quanta, and a placement
    // change restarts the task's detector baseline.
    std::vector<bool> stable(observations.size(), false);
    for (std::size_t i = 0; i < observations.size(); ++i) {
        const sched::TaskObservation& o = observations[i];
        Placement now{.core = o.core, .corunners = o.corunner_task_ids};
        const Placement* it = last_placement_.find(o.task_id);
        stable[i] = it != nullptr && *it == now;
        last_placement_[o.task_id] = std::move(now);
    }

    // Phase detection: an alarm invalidates both the estimator's smoothed
    // estimate and the task's solo reference before either is used for
    // this quantum's harvest or grouping.
    for (std::size_t i = 0; i < observations.size(); ++i) {
        const sched::TaskObservation& o = observations[i];
        if (!stable[i]) {
            detector_.reset(o.task_id);
            continue;
        }
        if (detector_.observe(o.task_id, o.breakdown.ipc(), o.breakdown.fractions())) {
            ++phase_changes_;
            if (tracer_ != nullptr && tracer_->wants(obs::EventKind::kPhaseAlarm)) {
                obs::TraceEvent e;
                e.kind = obs::EventKind::kPhaseAlarm;
                e.quantum = tracer_->quantum();
                e.task = o.task_id;
                e.core = o.core;
                tracer_->emit(std::move(e));
            }
            // The solo reference describes the *previous* phase: harvesting
            // against it would misalign every sample until it is renewed.
            // The estimator's own estimate is left alone — its EMA halves
            // the stale phase's influence every quantum anyway, while a
            // hard reset to the uniform prior destabilizes the matching
            // for longer than the EMA takes to converge.
            references_.erase(o.task_id);
            // The weight cache must not coast on the stale phase, though:
            // bump the task's estimate epoch so every memoized cost that
            // involves it recomputes (estimate values are untouched, so
            // allocations are bit-identical — only cache validity moves).
            inner_.on_phase_alarm(o.task_id);
        }
    }

    harvest_samples(observations, stable);
    maybe_refit();
    return inner_.reallocate(observations);
}

void AdaptiveSynpaPolicy::harvest_samples(
    std::span<const sched::TaskObservation> observations,
    const std::vector<bool>& stable) {
    // Co-run quanta first, against references measured in *earlier* quanta,
    // then refresh references from this quantum's solo runs.
    for (std::size_t i = 0; i < observations.size(); ++i) {
        const sched::TaskObservation& o = observations[i];
        if (!stable[i] || o.corunner_task_ids.empty()) continue;
        const SoloReference* self = references_.find(o.task_id);
        if (self == nullptr || quantum_ - self->quantum > opts_.reference_max_age) continue;
        if (self->ipc <= 0.0 || o.breakdown.instructions == 0) continue;

        model::CategoryVector corunner{};
        bool ok = true;
        for (const int partner : o.corunner_task_ids) {
            const SoloReference* it = references_.find(partner);
            if (it == nullptr || quantum_ - it->quantum > opts_.reference_max_age) {
                ok = false;
                break;
            }
            for (std::size_t c = 0; c < model::kCategoryCount; ++c)
                corunner[c] += it->fractions[c];
        }
        if (!ok) continue;

        // Isolated cycles this quantum's work would have taken, from the
        // task's own recent solo IPC — the paper's instruction-count
        // alignment, with a per-phase rolling profile instead of an
        // offline one.
        const double isolated_cycles =
            static_cast<double>(o.breakdown.instructions) / self->ipc;
        if (isolated_cycles <= 0.0) continue;
        model::TrainingSample sample;
        sample.st_self = self->fractions;
        sample.st_corunner = corunner;
        double slowdown = 0.0;
        for (std::size_t c = 0; c < model::kCategoryCount; ++c) {
            sample.smt_per_st[c] = o.breakdown.categories[c] / isolated_cycles;
            slowdown += sample.smt_per_st[c];
        }
        if (slowdown < 0.5 || slowdown > opts_.max_sample_slowdown) continue;
        // Split harvested samples 2:1 training/held-out so the refit gate
        // judges candidate models on samples they never saw.
        if (samples_ % 3 != 2) {
            trainer_.add_sample(sample);
            ++pending_samples_;
        } else {
            validation_.push_back(sample);
            if (validation_.size() > opts_.validation_window) validation_.pop_front();
        }
        ++samples_;
    }

    for (std::size_t i = 0; i < observations.size(); ++i) {
        const sched::TaskObservation& o = observations[i];
        if (!stable[i] || !o.corunner_task_ids.empty()) continue;
        if (o.breakdown.cycles == 0 || o.breakdown.instructions == 0) continue;
        references_[o.task_id] = {.fractions = o.breakdown.fractions(),
                                  .ipc = o.breakdown.ipc(),
                                  .quantum = quantum_};
    }
}

namespace {

/// Mean squared prediction error of `m` over held-out samples (summed
/// across the three categories per sample).
double holdout_error(const model::InterferenceModel& m,
                     const std::deque<model::TrainingSample>& samples) {
    double err = 0.0;
    for (const model::TrainingSample& s : samples) {
        const model::CategoryVector pred = m.predict(s.st_self, s.st_corunner);
        for (std::size_t c = 0; c < model::kCategoryCount; ++c) {
            const double d = pred[c] - s.smt_per_st[c];
            err += d * d;
        }
    }
    return samples.empty() ? 0.0 : err / static_cast<double>(samples.size());
}

}  // namespace

void AdaptiveSynpaPolicy::maybe_refit() {
    if (quantum_ - last_refit_ < opts_.refit_period) return;
    if (pending_samples_ < opts_.min_samples) return;
    if (validation_.size() < opts_.min_validation) return;
    last_refit_ = quantum_;
    pending_samples_ = 0;
    try {
        const model::InterferenceModel candidate = trainer_.fit();
        // Do-no-harm gate: adopt only when the candidate predicts the
        // held-out samples substantially better than the running model.
        const double cand_err = holdout_error(candidate, validation_);
        const double incumbent_err = holdout_error(inner_.estimator().model(), validation_);
        const bool adopt = cand_err <= opts_.adopt_factor * incumbent_err;
        if (adopt) {
            inner_.set_model(candidate);
            ++refits_;
        }
        if (tracer_ != nullptr && tracer_->wants(obs::EventKind::kModelRefit)) {
            obs::TraceEvent e;
            e.kind = obs::EventKind::kModelRefit;
            e.quantum = tracer_->quantum();
            e.a = adopt ? 1 : 0;
            e.value = cand_err;
            tracer_->emit(std::move(e));
        }
    } catch (const std::runtime_error&) {
        // Not enough independent evidence yet (singular normal equations
        // with prior_strength 0); keep the current model and retry later.
    }
    if (opts_.forgetting < 1.0) trainer_.decay(opts_.forgetting);
}

void AdaptiveSynpaPolicy::on_task_replaced(int old_task_id, int new_task_id) {
    // A relaunch restarts the application from its first phase: the
    // estimator's behaviour estimate transfers (same app), but the phase
    // baseline and solo reference describe the predecessor's final phase.
    detector_.forget(old_task_id);
    references_.erase(old_task_id);
    last_placement_.erase(old_task_id);
    inner_.on_task_replaced(old_task_id, new_task_id);
}

void AdaptiveSynpaPolicy::on_task_finished(int task_id) {
    detector_.forget(task_id);
    references_.erase(task_id);
    last_placement_.erase(task_id);
    inner_.on_task_finished(task_id);
}

}  // namespace synpa::online
