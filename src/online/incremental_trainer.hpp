// Incremental (recursive least-squares) refitting of the interference model.
//
// The offline Trainer (model/trainer.hpp) solves Equation 1 per category by
// QR over a design matrix of model::design_row rows.  Online, samples
// arrive one quantum at a time, so this class keeps the per-category
// *sufficient statistics* of exactly that regression — the Gram matrix
// G = A^T A and moment vector c = A^T b — and folds each new sample in as a
// rank-one update: G += r r^T, c += t r.  A refit then solves the 4x4
// normal equations, optionally ridge-anchored to a prior model:
//
//   (G + lambda I) theta = c + lambda theta_prior
//
// so with no samples the fit *is* the prior (the offline coefficients) and
// every online observation pulls it toward the live workload.  decay()
// scales G and c by a forgetting factor, aging out evidence from phases
// that ended.
//
// fit_offline() is the batch reference: it materializes the full design
// matrix exactly like the offline Trainer and forms the same normal
// equations with the sample-major accumulation order, so "full offline
// retrain" and "incremental updates" are bit-identical on shared data —
// pinned by tests/test_online.cpp.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "model/interference_model.hpp"
#include "model/trainer.hpp"

namespace synpa::online {

class IncrementalTrainer {
public:
    struct Options {
        /// Ridge weight anchoring the fit to the prior model's
        /// coefficients.  0 is a pure least-squares fit on the online
        /// samples (throws until they determine the regression); larger
        /// values make early refits conservative.
        double prior_strength = 0.0;
    };

    IncrementalTrainer() : IncrementalTrainer(model::InterferenceModel{}, Options{}) {}
    IncrementalTrainer(model::InterferenceModel prior, Options opts);

    /// Rank-one update with one aligned observation.
    void add_sample(const model::TrainingSample& sample);
    void add_samples(std::span<const model::TrainingSample> samples);

    /// Exponential forgetting: scales every sufficient statistic by
    /// `lambda` in [0, 1], so older evidence fades relative to what is
    /// added afterwards.  The prior anchor is unaffected.
    void decay(double lambda);

    /// Samples folded in since construction (not reduced by decay()).
    std::size_t sample_count() const noexcept { return count_; }

    /// Effective (decayed) sample weight currently in the statistics.
    double effective_weight() const noexcept { return weight_; }

    /// Solves the per-category normal equations.  Throws
    /// std::runtime_error when the system is singular (not enough
    /// independent samples and no prior anchor).
    model::InterferenceModel fit() const;

    const model::InterferenceModel& prior() const noexcept { return prior_; }

    /// Batch reference: builds the full design matrix (offline-Trainer
    /// style) and solves the same anchored normal equations.  Accumulation
    /// order matches sequential add_sample calls, so the result is
    /// bit-identical to the incremental path on the same samples.
    static model::InterferenceModel fit_offline(
        std::span<const model::TrainingSample> samples,
        const model::InterferenceModel& prior, Options opts);

private:
    /// Sufficient statistics of one category's regression.
    struct Normal {
        std::array<double, model::kDesignColumns * model::kDesignColumns> gram{};
        std::array<double, model::kDesignColumns> moment{};
    };

    static model::InterferenceModel solve(
        const std::array<Normal, model::kCategoryCount>& normal,
        const model::InterferenceModel& prior, double prior_strength);

    model::InterferenceModel prior_;
    Options opts_;
    std::array<Normal, model::kCategoryCount> normal_{};
    double weight_ = 0.0;
    std::size_t count_ = 0;
};

}  // namespace synpa::online
