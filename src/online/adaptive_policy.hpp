// Phase-adaptive SYNPA: the closed loop the paper's runtime premise points
// at.  A frozen SynpaPolicy trusts coefficients trained once, offline; this
// wrapper keeps the same Step 1-3 engine but
//
//   * watches every task's PMU deltas with a CUSUM PhaseDetector and, on a
//     phase change, drops the task's smoothed isolated estimate (and its
//     solo reference) so the next quantum re-seeds from fresh inversions;
//   * harvests *measured* training samples at runtime: a task that ran a
//     quantum with an empty core is its own isolated profile for the
//     current phase (fractions + IPC), and a later co-run quantum whose
//     members all hold fresh solo references yields exactly the offline
//     Trainer's alignment — isolated fractions for both sides and SMT
//     category cycles per isolated cycle of the same work;
//   * folds those samples into an IncrementalTrainer (rank-one updates on
//     the offline design matrix, ridge-anchored to the starting model) and
//     periodically swaps the refit model into the live policy.
//
// Everything observed is PMU-visible — no oracle state is touched — so the
// policy remains deployable in the paper's user-level-manager setting.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "common/flat_map.hpp"
#include "core/synpa_policy.hpp"
#include "online/incremental_trainer.hpp"
#include "online/phase_detector.hpp"
#include "sched/policy.hpp"

namespace synpa::online {

struct OnlineOptions {
    PhaseDetector::Options detector{};
    /// Ridge anchor to the starting model; keeps early refits conservative
    /// while samples are few.
    double prior_strength = 6.0;
    /// Quanta between refit attempts.
    std::uint64_t refit_period = 6;
    /// New samples required before a refit is attempted.
    std::size_t min_samples = 6;
    /// Solo references older than this many quanta are stale (the phase
    /// detector usually invalidates them first).
    std::uint64_t reference_max_age = 24;
    /// Per-refit exponential forgetting of accumulated evidence (1 = keep
    /// everything forever).
    double forgetting = 1.0;
    /// Held-out validation: every other harvested sample is withheld from
    /// training, and a refit candidate replaces the incumbent model only
    /// when it predicts the withheld samples at least as well — the
    /// do-no-harm gate that keeps a noisy trickle of online samples from
    /// degrading a decent offline model.
    std::size_t validation_window = 32;  ///< rolling held-out sample count
    std::size_t min_validation = 4;      ///< withheld samples needed to judge
    /// Required held-out improvement: candidate MSE must be below
    /// `adopt_factor` x incumbent MSE.  Every model swap perturbs the pair
    /// rankings (and costs real migrations while the matching resettles),
    /// so marginal prediction gains are not worth adopting.
    double adopt_factor = 1.0;
    /// Online samples with implausible measured slowdowns (outside
    /// [0.5, max_sample_slowdown]) are rejected as misaligned.
    double max_sample_slowdown = 8.0;

    /// Applies SYNPA_ONLINE_* environment overrides (see docs/REFERENCE.md).
    static OnlineOptions from_env();
};

class AdaptiveSynpaPolicy final : public sched::AllocationPolicy,
                                  public sched::OnlinePolicy {
public:
    AdaptiveSynpaPolicy(model::InterferenceModel model, core::SynpaPolicy::Options base,
                        OnlineOptions online);
    explicit AdaptiveSynpaPolicy(model::InterferenceModel model)
        : AdaptiveSynpaPolicy(std::move(model), {}, OnlineOptions::from_env()) {}

    std::string name() const override;
    sched::CoreAllocation reallocate(
        std::span<const sched::TaskObservation> observations) override;
    void on_task_replaced(int old_task_id, int new_task_id) override;
    void on_task_finished(int task_id) override;
    void set_tracer(obs::Tracer* tracer) override;

    // sched::OnlinePolicy
    std::uint64_t phase_changes() const override { return phase_changes_; }
    std::uint64_t model_refits() const override { return refits_; }
    std::uint64_t samples_absorbed() const override { return samples_; }

    /// The model currently driving the inner policy (starts at the prior).
    const model::InterferenceModel& current_model() const noexcept {
        return inner_.estimator().model();
    }
    const core::SynpaPolicy& inner() const noexcept { return inner_; }

private:
    /// Most recent quantum a task spent alone on a core: its isolated
    /// profile for the current phase.
    struct SoloReference {
        model::CategoryVector fractions{};
        double ipc = 0.0;
        std::uint64_t quantum = 0;  ///< when it was measured
    };

    /// A task's placement context last quantum: the same core and the same
    /// co-runner set mean this quantum's counters are comparable to the
    /// previous ones (no migration warmup, no regrouping-induced shift) —
    /// the gate for both the CUSUM update and the sample harvest.
    struct Placement {
        int core = -1;
        std::vector<int> corunners;
        bool operator==(const Placement&) const = default;
    };

    void harvest_samples(std::span<const sched::TaskObservation> observations,
                         const std::vector<bool>& stable);
    void maybe_refit();

    core::SynpaPolicy inner_;
    OnlineOptions opts_;
    obs::Tracer* tracer_ = nullptr;  ///< flight recorder (not owned)
    PhaseDetector detector_;
    IncrementalTrainer trainer_;
    common::FlatIdMap<SoloReference> references_;
    common::FlatIdMap<Placement> last_placement_;
    std::deque<model::TrainingSample> validation_;  ///< held-out samples

    std::uint64_t quantum_ = 0;
    std::uint64_t last_refit_ = 0;
    std::size_t pending_samples_ = 0;
    std::uint64_t phase_changes_ = 0;
    std::uint64_t refits_ = 0;
    std::uint64_t samples_ = 0;
};

}  // namespace synpa::online
