#include "online/incremental_trainer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace synpa::online {
namespace {

constexpr std::size_t kCols = model::kDesignColumns;

/// Solves the 4x4 system M x = b by Gaussian elimination with partial
/// pivoting.  Throws on a (numerically) singular matrix.
std::array<double, kCols> solve4(std::array<double, kCols * kCols> m,
                                 std::array<double, kCols> b) {
    for (std::size_t col = 0; col < kCols; ++col) {
        std::size_t pivot = col;
        for (std::size_t r = col + 1; r < kCols; ++r)
            if (std::abs(m[r * kCols + col]) > std::abs(m[pivot * kCols + col])) pivot = r;
        if (std::abs(m[pivot * kCols + col]) < 1e-12)
            throw std::runtime_error("IncrementalTrainer: singular normal equations");
        if (pivot != col) {
            for (std::size_t k = 0; k < kCols; ++k)
                std::swap(m[col * kCols + k], m[pivot * kCols + k]);
            std::swap(b[col], b[pivot]);
        }
        for (std::size_t r = col + 1; r < kCols; ++r) {
            const double f = m[r * kCols + col] / m[col * kCols + col];
            if (f == 0.0) continue;
            for (std::size_t k = col; k < kCols; ++k) m[r * kCols + k] -= f * m[col * kCols + k];
            b[r] -= f * b[col];
        }
    }
    std::array<double, kCols> x{};
    for (std::size_t ri = kCols; ri-- > 0;) {
        double acc = b[ri];
        for (std::size_t k = ri + 1; k < kCols; ++k) acc -= m[ri * kCols + k] * x[k];
        x[ri] = acc / m[ri * kCols + ri];
    }
    return x;
}

std::array<double, kCols> coefficients_of(const model::CategoryCoefficients& k) {
    return {k.alpha, k.beta, k.gamma, k.rho};
}

}  // namespace

IncrementalTrainer::IncrementalTrainer(model::InterferenceModel prior, Options opts)
    : prior_(std::move(prior)), opts_(opts) {
    if (opts_.prior_strength < 0.0)
        throw std::invalid_argument("IncrementalTrainer: negative prior_strength");
}

void IncrementalTrainer::add_sample(const model::TrainingSample& sample) {
    for (std::size_t c = 0; c < model::kCategoryCount; ++c) {
        const auto row = model::design_row(sample, c);
        Normal& n = normal_[c];
        for (std::size_t i = 0; i < kCols; ++i) {
            for (std::size_t j = 0; j < kCols; ++j) n.gram[i * kCols + j] += row[i] * row[j];
            n.moment[i] += sample.smt_per_st[c] * row[i];
        }
    }
    weight_ += 1.0;
    ++count_;
}

void IncrementalTrainer::add_samples(std::span<const model::TrainingSample> samples) {
    for (const model::TrainingSample& s : samples) add_sample(s);
}

void IncrementalTrainer::decay(double lambda) {
    lambda = std::clamp(lambda, 0.0, 1.0);
    for (Normal& n : normal_) {
        for (double& g : n.gram) g *= lambda;
        for (double& m : n.moment) m *= lambda;
    }
    weight_ *= lambda;
}

model::InterferenceModel IncrementalTrainer::solve(
    const std::array<Normal, model::kCategoryCount>& normal,
    const model::InterferenceModel& prior, double prior_strength) {
    model::InterferenceModel out;
    for (std::size_t c = 0; c < model::kCategoryCount; ++c) {
        auto gram = normal[c].gram;
        auto moment = normal[c].moment;
        if (prior_strength > 0.0) {
            const auto anchor =
                coefficients_of(prior.coefficients(static_cast<model::Category>(c)));
            for (std::size_t i = 0; i < kCols; ++i) {
                gram[i * kCols + i] += prior_strength;
                moment[i] += prior_strength * anchor[i];
            }
        }
        const auto theta = solve4(gram, moment);
        out.coefficients(static_cast<model::Category>(c)) = {
            .alpha = theta[0], .beta = theta[1], .gamma = theta[2], .rho = theta[3]};
    }
    return out;
}

model::InterferenceModel IncrementalTrainer::fit() const {
    return solve(normal_, prior_, opts_.prior_strength);
}

model::InterferenceModel IncrementalTrainer::fit_offline(
    std::span<const model::TrainingSample> samples, const model::InterferenceModel& prior,
    Options opts) {
    // Materialize the full design matrix per category (exactly the offline
    // Trainer's shape) and contract it to normal equations sample-major, so
    // every addition happens in the same order as sequential add_sample
    // rank-one updates — the bit-exactness the equivalence test pins.
    std::array<Normal, model::kCategoryCount> normal{};
    for (std::size_t c = 0; c < model::kCategoryCount; ++c) {
        std::vector<std::array<double, kCols>> design;
        std::vector<double> target;
        design.reserve(samples.size());
        target.reserve(samples.size());
        for (const model::TrainingSample& s : samples) {
            design.push_back(model::design_row(s, c));
            target.push_back(s.smt_per_st[c]);
        }
        Normal& n = normal[c];
        for (std::size_t r = 0; r < design.size(); ++r)
            for (std::size_t i = 0; i < kCols; ++i) {
                for (std::size_t j = 0; j < kCols; ++j)
                    n.gram[i * kCols + j] += design[r][i] * design[r][j];
                n.moment[i] += target[r] * design[r][i];
            }
    }
    return solve(normal, prior, opts.prior_strength);
}

}  // namespace synpa::online
