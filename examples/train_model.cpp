// train_model — trains the Equation-1 interference model on a custom set of
// applications and validates it on held-out pairs: predicted vs measured
// slowdown for applications the model never saw during training.
//
// Usage: train_model [app ...]     (default: the paper's 22-app training set)
#include <iostream>
#include <string>
#include <vector>

#include "apps/instance.hpp"
#include "apps/spec_suite.hpp"
#include "common/table.hpp"
#include "model/trainer.hpp"
#include "pmu/events.hpp"
#include "uarch/chip.hpp"
#include "workloads/groups.hpp"

namespace {

using namespace synpa;

/// Measures the true slowdowns of a pair sharing one SMT core.
std::pair<double, double> measure_pair(const std::string& a, const std::string& b,
                                       const uarch::SimConfig& cfg) {
    uarch::SimConfig solo = cfg;
    solo.cores = 1;
    const auto prof_a = model::profile_isolated(apps::find_app(a), solo, 60, 1);
    const auto prof_b = model::profile_isolated(apps::find_app(b), solo, 60, 2);
    uarch::Chip chip(solo);
    apps::AppInstance ta(1, apps::find_app(a), 1);
    apps::AppInstance tb(2, apps::find_app(b), 2);
    chip.bind(ta, {.core = 0, .slot = 0});
    chip.bind(tb, {.core = 0, .slot = 1});
    for (int q = 0; q < 20; ++q) chip.run_quantum();
    const auto slowdown = [](const apps::AppInstance& t, const model::IsolatedProfile& p) {
        const std::uint64_t insts = std::min(t.insts_retired(), p.total_instructions() - 1);
        return static_cast<double>(t.counters().value(pmu::Event::kCpuCycles)) /
               p.cycles_for(0, insts);
    };
    return {slowdown(ta, prof_a), slowdown(tb, prof_b)};
}

}  // namespace

int main(int argc, char** argv) {
    std::vector<std::string> training;
    for (int i = 1; i < argc; ++i) training.emplace_back(argv[i]);
    if (training.empty()) training = workloads::training_apps();

    const uarch::SimConfig cfg = uarch::SimConfig::from_env();
    std::cout << "training on " << training.size() << " applications...\n";
    model::TrainerOptions opts;
    opts.isolated_quanta = 100;
    opts.pair_quanta = 30;
    const model::TrainingResult result = model::Trainer(cfg, opts).train(training);

    std::cout << "\nfitted coefficients:\n" << result.model.to_string() << "\nfit quality:\n";
    for (std::size_t c = 0; c < model::kCategoryCount; ++c)
        std::cout << "  " << model::kCategoryNames[c] << ": MSE " << result.mse[c]
                  << ", R^2 " << result.r_squared[c] << "\n";

    // Validate on held-out applications (never seen during training).
    std::cout << "\nvalidation on held-out pairs (predicted vs measured slowdown):\n";
    common::Table table({"pair", "predicted A|B", "measured A|B", "predicted B|A",
                         "measured B|A"});
    const auto holdout = workloads::holdout_apps();
    for (std::size_t i = 0; i + 1 < holdout.size(); i += 2) {
        const std::string& a = holdout[i];
        const std::string& b = holdout[i + 1];
        uarch::SimConfig solo = cfg;
        solo.cores = 1;
        const auto fa = model::profile_isolated(apps::find_app(a), solo, 40, 1)
                            .overall_fractions();
        const auto fb = model::profile_isolated(apps::find_app(b), solo, 40, 2)
                            .overall_fractions();
        const auto [ma, mb] = measure_pair(a, b, cfg);
        table.row()
            .add(a + " + " + b)
            .add(result.model.predict_slowdown(fa, fb), 2)
            .add(ma, 2)
            .add(result.model.predict_slowdown(fb, fa), 2)
            .add(mb, 2);
    }
    table.print(std::cout);
    return 0;
}
