// pair_explorer — measures the ground-truth SMT slowdown matrix for a set
// of applications (optionally pinned to a single phase with "app:phase"),
// by running every pair on one SMT core and comparing against isolated
// execution.
//
// Usage: pair_explorer [app[:phase] ...]
//   default: the fb2 cast at their interesting phases.
//
// This is the experiment SYNPA's regression model approximates: the printed
// matrix shows slowdown(row | column) — how much the row application slows
// down when sharing a core with the column application.
//
// Implementation: a declarative campaign over a single-core config whose
// workload axis is the N*(N+1)/2 unordered pairs; each cell runs the pair
// under the (migration-free) linux policy with the paper's measurement
// methodology, and the slowdown is the inverse of the slot's individual
// speedup.  Cells run in parallel; isolated target profiles are memoized.
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/table.hpp"
#include "exp/campaign.hpp"
#include "sched/baselines.hpp"
#include "uarch/sim_config.hpp"

int main(int argc, char** argv) {
    using namespace synpa;
    std::vector<std::string> names;
    for (int i = 1; i < argc; ++i) names.emplace_back(argv[i]);
    if (names.empty())
        names = {"lbm_r", "mcf", "cactuBSSN_r", "leela_r:search", "leela_r:eval",
                 "astar:search", "astar:map", "mcf_r:simplex"};

    uarch::SimConfig pair_cfg = uarch::SimConfig::from_env();
    pair_cfg.cores = 1;  // one SMT core per pair

    exp::Campaign campaign;
    campaign.name = "pair-explorer";
    campaign.configs = {pair_cfg};
    for (std::size_t i = 0; i < names.size(); ++i)
        for (std::size_t j = i; j < names.size(); ++j)
            campaign.workloads.push_back({names[i] + " + " + names[j],
                                          {names[i], names[j]}});
    campaign.policies = {
        {"linux", [](const exp::ArtifactSet&, std::uint64_t) {
             return std::make_unique<sched::LinuxPolicy>();
         }}};
    campaign.methodology.reps = 1;
    campaign.methodology.record_traces = false;
    campaign.methodology.target_isolated_quanta =
        static_cast<std::uint64_t>(common::env_int("SYNPA_PAIR_QUANTA", 40));
    // Even a pathological pair slows down well under 8x, so this cap scales
    // with the profiling window instead of silently truncating long runs.
    campaign.methodology.max_quanta = 8 * campaign.methodology.target_isolated_quanta + 64;

    exp::CampaignRunner runner;
    exp::CampaignResult result;
    try {
        result = runner.run(campaign);
    } catch (const std::out_of_range& e) {
        std::cerr << "pair_explorer: " << e.what() << "\n";
        return 1;
    }

    std::vector<std::vector<double>> matrix(names.size(),
                                            std::vector<double>(names.size(), 0.0));
    std::size_t cell = 0;
    for (std::size_t i = 0; i < names.size(); ++i)
        for (std::size_t j = i; j < names.size(); ++j, ++cell) {
            const sched::RunResult& run = result.cells[cell].result.exemplar;
            if (!run.completed)
                std::cerr << "warning: pair " << result.cells[cell].workload
                          << " hit the quantum cap; its cells read 0\n";
            // Outcomes exist only for slots that finished; match by slot.
            const auto slowdown = [&run](int slot) {
                for (const auto& o : run.outcomes)
                    if (o.slot_index == slot && o.individual_speedup > 0.0)
                        return 1.0 / o.individual_speedup;
                return 0.0;
            };
            matrix[i][j] = slowdown(0);
            matrix[j][i] = slowdown(1);
        }

    std::vector<std::string> headers = {"slowdown of row | col"};
    for (const auto& n : names) headers.push_back(n);
    common::Table table(headers);
    for (std::size_t i = 0; i < names.size(); ++i) {
        table.row().add(names[i]);
        for (std::size_t j = 0; j < names.size(); ++j) table.add(matrix[i][j], 2);
    }
    table.print(std::cout);
    std::cout << "read: cell (r, c) = slowdown application r suffers when it shares an SMT\n"
                 "core with application c (isolated cycles for the same work / SMT cycles).\n";
    return 0;
}
