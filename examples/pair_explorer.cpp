// pair_explorer — measures the ground-truth SMT slowdown matrix for a set
// of applications (optionally pinned to a single phase), by running every
// pair on one SMT core and comparing against isolated execution.
//
// Usage: pair_explorer [app[:phase] ...]
//   default: the fb2 cast at their interesting phases.
//
// This is the experiment SYNPA's regression model approximates: the printed
// matrix shows slowdown(row | column) — how much the row application slows
// down when sharing a core with the column application.
#include <iostream>
#include <string>
#include <vector>

#include "apps/instance.hpp"
#include "apps/spec_suite.hpp"
#include "common/table.hpp"
#include "model/trainer.hpp"
#include "pmu/events.hpp"
#include "uarch/chip.hpp"
#include "uarch/sim_config.hpp"

namespace {

using namespace synpa;

/// Resolves "app" or "app:phase" into a (possibly single-phase) profile.
apps::AppProfile resolve(const std::string& spec) {
    const auto colon = spec.find(':');
    if (colon == std::string::npos) return apps::find_app(spec);
    const apps::AppProfile& base = apps::find_app(spec.substr(0, colon));
    const std::string phase = spec.substr(colon + 1);
    for (const auto& p : base.phases) {
        if (p.name == phase) {
            apps::AppProfile clone;
            clone.name = spec;
            clone.phases.push_back(p);
            return clone;
        }
    }
    throw std::out_of_range("unknown phase '" + phase + "' of " + base.name);
}

/// Measured slowdown of each member of the pair over `quanta` quanta.
std::pair<double, double> measure_pair(const apps::AppProfile& a, const apps::AppProfile& b,
                                       const uarch::SimConfig& cfg, std::uint64_t quanta,
                                       const model::IsolatedProfile& prof_a,
                                       const model::IsolatedProfile& prof_b) {
    uarch::SimConfig pair_cfg = cfg;
    pair_cfg.cores = 1;
    uarch::Chip chip(pair_cfg);
    apps::AppInstance ta(1, a, 11);
    apps::AppInstance tb(2, b, 22);
    chip.bind(ta, {.core = 0, .slot = 0});
    chip.bind(tb, {.core = 0, .slot = 1});
    for (std::uint64_t q = 0; q < quanta; ++q) chip.run_quantum();

    // Slowdown = isolated cycles for the same work / SMT cycles spent.
    const auto slowdown = [&](const apps::AppInstance& t,
                              const model::IsolatedProfile& prof) {
        const std::uint64_t insts =
            std::min(t.insts_retired(), prof.total_instructions() - 1);
        const double st_cycles = prof.cycles_for(0, insts);
        const double smt_cycles =
            static_cast<double>(t.counters().value(pmu::Event::kCpuCycles));
        return st_cycles > 0.0 ? smt_cycles / st_cycles : 0.0;
    };
    return {slowdown(ta, prof_a), slowdown(tb, prof_b)};
}

}  // namespace

int main(int argc, char** argv) {
    std::vector<std::string> names;
    for (int i = 1; i < argc; ++i) names.emplace_back(argv[i]);
    if (names.empty())
        names = {"lbm_r", "mcf", "cactuBSSN_r", "leela_r:search", "leela_r:eval",
                 "astar:search", "astar:map", "mcf_r:simplex"};

    const uarch::SimConfig cfg = uarch::SimConfig::from_env();
    const std::uint64_t quanta = 40;

    std::vector<apps::AppProfile> profiles;
    std::vector<model::IsolatedProfile> isolated;
    for (const auto& n : names) {
        profiles.push_back(resolve(n));
        isolated.push_back(model::profile_isolated(profiles.back(), cfg, 3 * quanta, 11));
    }

    std::vector<std::string> headers = {"slowdown of row | col"};
    for (const auto& n : names) headers.push_back(n);
    common::Table table(headers);
    std::vector<std::vector<double>> matrix(names.size(),
                                            std::vector<double>(names.size(), 0.0));
    for (std::size_t i = 0; i < names.size(); ++i)
        for (std::size_t j = i; j < names.size(); ++j) {
            const auto [si, sj] =
                measure_pair(profiles[i], profiles[j], cfg, quanta, isolated[i], isolated[j]);
            matrix[i][j] = si;
            matrix[j][i] = sj;
        }
    for (std::size_t i = 0; i < names.size(); ++i) {
        table.row().add(names[i]);
        for (std::size_t j = 0; j < names.size(); ++j) table.add(matrix[i][j], 2);
    }
    table.print(std::cout);
    std::cout << "read: cell (r, c) = slowdown application r suffers when it shares an SMT\n"
                 "core with application c (isolated cycles for the same work / SMT cycles).\n";
    return 0;
}
