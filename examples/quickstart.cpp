// quickstart — the smallest end-to-end SYNPA program:
//   1. train the interference model on a handful of applications,
//   2. run an 8-application mixed workload under Linux and under SYNPA,
//   3. print turnaround time, fairness, and IPC for both.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>
#include <memory>

#include "core/synpa_policy.hpp"
#include "model/trainer.hpp"
#include "sched/baselines.hpp"
#include "uarch/sim_config.hpp"
#include "workloads/groups.hpp"
#include "workloads/methodology.hpp"

int main() {
    using namespace synpa;

    // The simulated ThunderX2-class chip (Table II parameters, scaled time).
    const uarch::SimConfig cfg = uarch::SimConfig::from_env();

    // 1. Train Equation 1 per category: isolated profiles + all SMT pairs,
    //    aligned by instruction counts, fitted with least squares.
    std::cout << "training the interference model on 8 applications...\n";
    model::TrainerOptions train_opts;
    train_opts.isolated_quanta = 80;
    train_opts.pair_quanta = 24;
    const std::vector<std::string> training = {"mcf",   "lbm_r",  "leela_r", "gobmk",
                                               "nab_r", "bwaves", "hmmer",   "povray_r"};
    const model::TrainingResult trained = model::Trainer(cfg, train_opts).train(training);
    std::cout << trained.model.to_string();

    // 2. A mixed frontend/backend workload (the paper's fb2).
    const workloads::WorkloadSpec workload = workloads::paper_fb2();
    std::cout << "\nworkload " << workload.name << ":";
    for (const auto& app : workload.app_names) std::cout << ' ' << app;
    std::cout << "\n\n";

    // 3. Run it under both policies and compare.
    workloads::MethodologyOptions opts;
    opts.reps = 1;
    for (const bool use_synpa : {false, true}) {
        const workloads::PolicyFactory factory =
            use_synpa ? workloads::PolicyFactory([&](std::uint64_t) {
                return std::make_unique<core::SynpaPolicy>(trained.model);
            })
                      : workloads::PolicyFactory([](std::uint64_t) {
                            return std::make_unique<sched::LinuxPolicy>();
                        });
        const workloads::RepeatedResult r =
            workloads::run_workload(workload, cfg, factory, opts);
        std::cout << (use_synpa ? "SYNPA" : "Linux") << ": turnaround "
                  << r.mean_metrics.turnaround_quanta << " quanta, fairness "
                  << r.mean_metrics.fairness << ", IPC geomean "
                  << r.mean_metrics.ipc_geomean << "\n";
    }
    return 0;
}
