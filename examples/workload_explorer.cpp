// workload_explorer — runs one workload under every allocation policy and
// compares turnaround, fairness, IPC and migration counts.
//
// Usage: workload_explorer [workload-name] [reps]
//   workload-name: one of be0-be4, fe0-fe4, fb0-fb9 (default fb2)
//
// Demonstrates the full public API: suite characterization, workload
// construction, model training, policy construction (Linux / Random /
// Oracle / SYNPA variants) and the measurement methodology.
#include <iostream>
#include <memory>
#include <string>

#include "common/table.hpp"
#include "core/synpa_policy.hpp"
#include "model/trainer.hpp"
#include "sched/baselines.hpp"
#include "uarch/sim_config.hpp"
#include "workloads/groups.hpp"
#include "workloads/methodology.hpp"

int main(int argc, char** argv) {
    using namespace synpa;
    const std::string workload_name = argc > 1 ? argv[1] : "fb2";
    const int reps = argc > 2 ? std::atoi(argv[2]) : 1;

    const uarch::SimConfig cfg = uarch::SimConfig::from_env();
    workloads::MethodologyOptions opts;
    opts.reps = reps;

    std::cout << "characterizing the 28-application suite...\n";
    const auto chars = workloads::characterize_suite(cfg, 40, opts.seed);
    workloads::calibrate_suite(cfg, 30, opts.seed);  // oracle needs phase truth
    const auto specs = workloads::paper_workloads(chars, opts.seed);
    const workloads::WorkloadSpec& spec = workloads::workload_by_name(specs, workload_name);

    std::cout << "workload " << spec.name << ":";
    for (const auto& a : spec.app_names) std::cout << ' ' << a;
    std::cout << "\n\ntraining the interference model...\n";
    model::TrainerOptions topts;
    topts.seed = opts.seed;
    const model::TrainingResult trained =
        model::Trainer(cfg, topts).train(workloads::training_apps());

    struct Candidate {
        std::string label;
        workloads::PolicyFactory factory;
    };
    const std::vector<Candidate> candidates = {
        {"linux", [](std::uint64_t) { return std::make_unique<sched::LinuxPolicy>(); }},
        {"random",
         [](std::uint64_t seed) { return std::make_unique<sched::RandomPolicy>(seed); }},
        {"oracle",
         [&](std::uint64_t) { return std::make_unique<sched::OraclePolicy>(trained.model); }},
        {"synpa",
         [&](std::uint64_t) { return std::make_unique<core::SynpaPolicy>(trained.model); }},
        {"synpa-greedy",
         [&](std::uint64_t) {
             core::SynpaPolicy::Options o;
             o.selector = core::PairSelector::kGreedy;
             return std::make_unique<core::SynpaPolicy>(trained.model, o);
         }},
    };

    common::Table table({"policy", "TT (quanta)", "TT speedup vs linux", "fairness",
                         "IPC geomean", "migrations/quantum"});
    double linux_tt = 0.0;
    for (const auto& cand : candidates) {
        const workloads::RepeatedResult r =
            workloads::run_workload(spec, cfg, cand.factory, opts);
        if (cand.label == "linux") linux_tt = r.mean_metrics.turnaround_quanta;
        table.row()
            .add(cand.label)
            .add(r.mean_metrics.turnaround_quanta, 1)
            .add(linux_tt > 0.0 ? linux_tt / r.mean_metrics.turnaround_quanta : 0.0, 3)
            .add(r.mean_metrics.fairness, 3)
            .add(r.mean_metrics.ipc_geomean, 3)
            .add(static_cast<double>(r.exemplar.migrations) /
                     static_cast<double>(std::max<std::uint64_t>(1, r.exemplar.quanta_executed)),
                 2);
    }
    table.print(std::cout);
    return 0;
}
