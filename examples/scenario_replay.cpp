// scenario_replay — watch SYNPA ride a bursty open system:
//   1. build a burst-arrival scenario (waves of tasks every 40 quanta, with
//      a mid-run load surge),
//   2. run it under a policy picked *by name* from the registry
//      (SYNPA_REPLAY_POLICY, default "synpa"; paper Table IV coefficients,
//      so no training wait) on a 4-core SMT2 chip,
//   3. replay the run as a per-quantum timeline — utilization bars,
//      arrivals, departures, migrations — then print the per-task ledger.
//
// Build & run:  ./build/examples/scenario_replay
#include <algorithm>
#include <iostream>
#include <string>

#include <memory>

#include "common/config.hpp"
#include "common/table.hpp"
#include "obs/trace.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "sched/registry.hpp"
#include "uarch/platform.hpp"

int main() {
    using namespace synpa;

    const uarch::SimConfig cfg = uarch::SimConfig::from_env();

    // 1. Waves of mixed work: a burst of 5 tasks every 40 quanta, doubled
    //    between quanta 80 and 160 (the load profile scales burst size).
    scenario::ScenarioSpec spec;
    spec.name = "burst-replay";
    spec.process = scenario::ArrivalProcess::kBurst;
    spec.app_mix = {"mcf", "bwaves", "leela_r", "gobmk", "nab_r", "exchange2_r"};
    spec.initial_tasks = 6;
    spec.burst_period = 40;
    spec.burst_size = 5;
    spec.load_profile = {{0, 1.0}, {80, 2.0}, {160, 1.0}};
    spec.service_quanta = 25;
    spec.horizon_quanta = 200;
    spec.seed = 7;

    std::cout << "sampling scenario '" << spec.name << "' ("
              << scenario::arrival_process_name(spec.process) << " arrivals)...\n";
    const scenario::ScenarioTrace trace = scenario::build_trace(spec, cfg);
    std::cout << trace.tasks.size() << " tasks planned over " << spec.horizon_quanta
              << " quanta\n\n";

    // 2. Run it under the chosen registered policy.  The partial-allocation
    //    path kicks in whenever the live set is not exactly 2 x cores.
    uarch::Platform platform(cfg);
    const std::string policy_name = common::env_string("SYNPA_REPLAY_POLICY", "synpa");
    sched::PolicyConfig policy_config;
    policy_config.model = std::make_shared<const model::InterferenceModel>(
        model::InterferenceModel::paper_table4());
    const std::unique_ptr<sched::AllocationPolicy> policy =
        sched::make_policy(policy_name, policy_config);
    std::cout << "policy: " << policy->name() << " (registry \"" << policy_name
              << "\")\n";
    // Flight recorder: SYNPA_TRACE=1 (plus SYNPA_TRACE_FILE=out.json for a
    // Chrome-trace export) records quantum boundaries, migrations,
    // admissions/retirements and policy latency alongside the replay.
    obs::Tracer tracer;
    scenario::ScenarioRunner::Options run_opts;
    run_opts.tracer = &tracer;
    scenario::ScenarioRunner runner(platform, *policy, trace, run_opts);
    const scenario::ScenarioResult result = runner.run();
    tracer.finish();
    if (tracer.enabled() && !tracer.config().file.empty())
        std::cout << "trace written to " << tracer.config().file << " (metrics CSV beside"
                  << " it)\n";

    // 3. Replay: one line every few quanta.
    std::cout << "quantum  live queued util       timeline (#=busy thread)\n";
    const std::uint64_t stride = std::max<std::uint64_t>(1, result.quanta_executed / 50);
    std::uint64_t last_migrations = 0;
    for (const scenario::QuantumSample& s : result.timeline) {
        if (s.quantum % stride != 0) continue;
        const int threads = platform.hw_contexts();
        const int busy = s.live;
        std::string bar(static_cast<std::size_t>(busy), '#');
        bar.resize(static_cast<std::size_t>(threads), '.');
        std::cout << "  " << s.quantum << "\t " << s.live << "    " << s.queued << "    "
                  << common::format_double(s.utilization, 2) << "  |" << bar << "|";
        if (s.migrations != last_migrations)
            std::cout << "  +" << (s.migrations - last_migrations) << " migr";
        last_migrations = s.migrations;
        std::cout << "\n";
    }

    common::Table table(
        {"task", "app", "chip", "arrive", "admit", "finish", "TT", "slowdown"});
    for (const scenario::TaskRecord& rec : result.tasks) {
        if (!rec.completed) continue;
        table.row()
            .add(static_cast<double>(rec.plan_index), 0)
            .add(rec.app_name)
            .add(static_cast<double>(rec.chip_id), 0)
            .add(static_cast<double>(rec.arrival_quantum), 0)
            .add(static_cast<double>(rec.admit_quantum), 0)
            .add(rec.finish_quantum, 1)
            .add(rec.turnaround_quanta, 1)
            .add(rec.slowdown, 2);
    }
    std::cout << "\n";
    table.print(std::cout);

    std::cout << "\ncompleted " << result.completed_tasks << "/" << result.tasks.size()
              << " tasks in " << result.quanta_executed << " quanta, "
              << result.migrations << " migrations, mean utilization "
              << common::format_double(result.mean_utilization(), 2) << "\n";
    return 0;
}
