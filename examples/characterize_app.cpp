// characterize_app — runs one application alone on the simulated chip and
// walks through the paper's three-step dispatch-stage characterization
// (Figure 2), printing each intermediate quantity and the final category
// fractions, plus a per-quantum timeline.
//
// Usage: characterize_app [app-name] [quanta]     (default: leela_r, 30)
#include <iostream>
#include <string>

#include "apps/instance.hpp"
#include "apps/spec_suite.hpp"
#include "common/table.hpp"
#include "model/categories.hpp"
#include "pmu/perf_session.hpp"
#include "uarch/chip.hpp"

int main(int argc, char** argv) {
    using namespace synpa;
    const std::string name = argc > 1 ? argv[1] : "leela_r";
    const int quanta = argc > 2 ? std::atoi(argv[2]) : 30;

    uarch::SimConfig cfg = uarch::SimConfig::from_env();
    cfg.cores = 1;
    uarch::Chip chip(cfg);
    apps::AppInstance task(1, apps::find_app(name), 42);
    chip.bind(task, {.core = 0, .slot = 0});

    // Read the four Table I events per quantum, exactly like the paper's
    // perf-based manager.
    pmu::PerfSession session(chip, {pmu::Event::kCpuCycles, pmu::Event::kInstSpec,
                                    pmu::Event::kStallFrontend, pmu::Event::kStallBackend});
    session.attach(task.id());

    common::Table timeline({"quantum", "IPC", "FD", "FE", "BE", "bar", "phase"});
    for (int q = 0; q < quanta; ++q) {
        chip.run_quantum();
        const auto delta = session.read(task.id());
        const auto b = model::characterize(delta, cfg.dispatch_width);
        const auto f = b.fractions();
        timeline.row()
            .add(static_cast<long long>(q))
            .add(b.ipc(), 2)
            .add_pct(f[0])
            .add_pct(f[1])
            .add_pct(f[2])
            .add(common::stacked_bar(f[0], f[1], f[2], 30))
            .add(task.profile().phases[task.phase_index()].name);
    }

    std::cout << "application: " << name << " (" << task.profile().phase_count()
              << " phase(s))\n\n";
    const auto total = model::characterize(task.counters(), cfg.dispatch_width);
    std::cout << "three-step characterization over the whole run:\n"
              << "  cycles                 " << total.cycles << "\n"
              << "  instructions (spec)    " << total.instructions << "\n"
              << "  step 1: frontend stalls " << total.frontend_stalls_measured
              << ", backend stalls " << total.backend_stalls_measured
              << ", dispatch cycles " << total.dispatch_cycles << "\n"
              << "  step 2: full-dispatch  " << total.full_dispatch_cycles
              << ", revealed horizontal waste " << total.revealed_stalls << "\n"
              << "  step 3: FD / FE / BE = " << total.categories[0] << " / "
              << total.categories[1] << " / " << total.categories[2] << "\n\n";
    timeline.print(std::cout);
    return 0;
}
