#!/usr/bin/env python3
"""Run clang-tidy over the compile database with a suppression baseline.

Wraps clang-tidy the same way tools/synpa_lint.py wraps the determinism
checks: findings are keyed move-tolerantly (path + check + hash of the
flagged line's text) against a checked-in baseline, so the scan fails only
on *new* findings while the baseline monotonically shrinks.

The container this repo builds in does not ship clang-tidy; without
--require the script prints a notice and exits 0 so local `ctest` stays
green.  CI installs clang-tidy via apt and passes --require.

Exit status: 0 clean/skipped, 1 new findings, 2 usage error or
(with --require) missing tooling.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import multiprocessing
import re
import shutil
import subprocess
import sys
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

# clang-tidy output: <file>:<line>:<col>: warning: <msg> [<check>]
DIAG_RE = re.compile(
    r"^(?P<file>/[^:]+):(?P<line>\d+):(?P<col>\d+): "
    r"(?:warning|error): (?P<msg>.*?) \[(?P<check>[a-z0-9.,-]+)\]$")

SKIP_PREFIXES = ("tests/lint/fixtures/",)


def find_clang_tidy(explicit: str | None) -> str | None:
    candidates = [explicit] if explicit else []
    candidates += ["clang-tidy"] + [f"clang-tidy-{v}" for v in
                                    range(20, 13, -1)]
    for c in candidates:
        if c and shutil.which(c):
            return c
    return None


def compile_db_files(build_dir: Path, root: Path) -> list[Path]:
    db = build_dir / "compile_commands.json"
    if not db.exists():
        return []
    files = set()
    for entry in json.loads(db.read_text()):
        f = Path(entry["file"])
        if not f.is_absolute():
            f = (Path(entry["directory"]) / f).resolve()
        try:
            rel = f.relative_to(root)
        except ValueError:
            continue
        if str(rel).startswith(SKIP_PREFIXES):
            continue
        files.add(f)
    return sorted(files)


def finding_key(rel: str, check: str, line_text: str) -> str:
    digest = hashlib.sha1(
        f"{check}|{line_text.strip()}".encode()).hexdigest()[:16]
    return f"{rel}|{check}|{digest}"


def run_one(clang_tidy: str, build_dir: Path, root: Path, f: Path):
    proc = subprocess.run(
        [clang_tidy, "-p", str(build_dir), "--quiet", str(f)],
        capture_output=True, text=True)
    findings = []
    line_cache: dict[Path, list[str]] = {}
    for line in proc.stdout.splitlines():
        m = DIAG_RE.match(line)
        if not m:
            continue
        path = Path(m.group("file")).resolve()
        try:
            rel = str(path.relative_to(root))
        except ValueError:
            continue
        if rel.startswith(SKIP_PREFIXES):
            continue
        if path not in line_cache:
            try:
                line_cache[path] = path.read_text(errors="replace").splitlines()
            except OSError:
                line_cache[path] = []
        lineno = int(m.group("line"))
        src = line_cache[path]
        text = src[lineno - 1] if 0 < lineno <= len(src) else ""
        findings.append({
            "path": rel, "line": lineno, "check": m.group("check"),
            "message": m.group("msg"),
            "key": finding_key(rel, m.group("check"), text),
        })
    return findings


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", type=Path, default=None,
                    help="build tree holding compile_commands.json "
                         "(default: <root>/build)")
    ap.add_argument("--root", type=Path,
                    default=Path(__file__).resolve().parents[1])
    ap.add_argument("--baseline", type=Path, default=None,
                    help="default: <root>/tools/clang_tidy_baseline.json")
    ap.add_argument("--update-baseline", action="store_true")
    ap.add_argument("--report", type=Path, default=None,
                    help="write the new-findings report to this file")
    ap.add_argument("--clang-tidy", default=None,
                    help="clang-tidy binary (default: search PATH, "
                         "including versioned names)")
    ap.add_argument("--require", action="store_true",
                    help="fail instead of skipping when clang-tidy or the "
                         "compile database is missing (CI mode)")
    ap.add_argument("-j", "--jobs", type=int,
                    default=multiprocessing.cpu_count())
    args = ap.parse_args(argv)

    root = args.root.resolve()
    build_dir = (args.build_dir or root / "build").resolve()
    baseline_path = args.baseline or root / "tools" / "clang_tidy_baseline.json"

    clang_tidy = find_clang_tidy(args.clang_tidy)
    if clang_tidy is None:
        print("run_clang_tidy: clang-tidy not found on PATH"
              + ("" if args.require else " — skipping (install clang-tidy, "
                 "or run in CI where it is provisioned)"),
              file=sys.stderr)
        return 2 if args.require else 0

    files = compile_db_files(build_dir, root)
    if not files:
        print(f"run_clang_tidy: no compile_commands.json under {build_dir} "
              "(configure with cmake first; CMAKE_EXPORT_COMPILE_COMMANDS "
              "is on by default)"
              + ("" if args.require else " — skipping"), file=sys.stderr)
        return 2 if args.require else 0

    print(f"run_clang_tidy: {clang_tidy} over {len(files)} file(s), "
          f"-j{args.jobs}", file=sys.stderr)
    findings = []
    with ThreadPoolExecutor(max_workers=max(1, args.jobs)) as pool:
        for batch in pool.map(
                lambda f: run_one(clang_tidy, build_dir, root, f), files):
            findings.extend(batch)
    # Header diagnostics repeat once per includer; dedupe on the stable key.
    findings = list({f["key"]: f for f in findings}.values())
    findings.sort(key=lambda f: (f["path"], f["line"], f["check"]))

    if args.update_baseline:
        baseline_path.write_text(json.dumps(
            {"version": 1, "findings": sorted(f["key"] for f in findings)},
            indent=2) + "\n")
        print(f"run_clang_tidy: baseline updated with {len(findings)} "
              f"finding(s) -> {baseline_path}")
        return 0

    baseline = set()
    if baseline_path.exists():
        baseline = set(json.loads(baseline_path.read_text()).get(
            "findings", []))
    new = [f for f in findings if f["key"] not in baseline]

    report = "\n".join(
        f"{f['path']}:{f['line']}: {f['check']}: {f['message']}" for f in new)
    if args.report:
        args.report.parent.mkdir(parents=True, exist_ok=True)
        args.report.write_text(report + ("\n" if report else ""))
    if new:
        print(report)
        print(f"run_clang_tidy: {len(new)} new finding(s) "
              f"({len(findings) - len(new)} baselined)", file=sys.stderr)
        return 1
    print(f"run_clang_tidy: clean"
          f"{f' ({len(findings)} baselined)' if findings else ''}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
