#!/usr/bin/env python3
"""synpa-lint: repo-specific determinism-contract checks for the SYNPA tree.

The simulator's whole value rests on a determinism contract (serial ==
sharded at every SYNPA_SIM_THREADS, goldens pin exact doubles).  These
rules catch the ways a PR can quietly break that contract *before* a
flaky golden does — see docs/LINTING.md for the full rationale.

Rules
  DET-01   no range-for / iterator traversal of unordered_map/unordered_set
           in the deterministic layers (src/{core,sched,uarch,scenario,
           matching,online,model,fleet}).  Hash order is not deterministic
           across
           libstdc++ versions or libc++; traversals must use sorted
           snapshots or common::FlatIdMap.  Audited exceptions carry
           `// synpa-lint: sorted-ok(<reason>)`.
  DET-02   no std::rand/random_device/wall-clock reads in the deterministic
           layers.  Host time lives behind obs::PhaseStopwatch and
           obs::host_now_us() (the obs/ allowlist layer); simulated state
           must never read the host clock.  `host-time-ok(<reason>)`.
  ENV-01   no raw getenv outside src/common/config.*.  The common::env_*
           wrappers fail loudly on malformed values and feed the
           documented-knob cross-check in tools/check_docs.py.
           `env-ok(<reason>)`.
  OBS-01   no direct stdout/stderr tracing (printf/fprintf/puts/cout/cerr)
           in src/ outside src/obs/.  Tracing goes through the flight
           recorder so traced and untraced runs stay bit-identical.
           `trace-ok(<reason>)`.
  SHARD-01 no mutable namespace-scope state (non-const globals; non-const
           `static` locals or data members in headers) in the layers that
           run inside the parallel-engine barrier (src/{uarch,apps,pmu}).
           Chip shards share no mutable state by construction; a global
           would be an unsynchronized cross-shard race.
           `shard-ok(<reason>)`.
  MARKER-01  a `// synpa-lint: <tag>(<reason>)` marker with an unknown tag
           or an empty reason.  Every suppression is an audit record; it
           must say why the exception is sound.

Engines: `--engine libclang` uses clang.cindex when importable (AST-exact
for DET-01/SHARD-01); the default token engine needs nothing beyond the
standard library and is what CI runs.  Both share the same rule scopes,
markers, and baseline format.

Exit status: 0 clean (or every finding baselined), 1 new findings,
2 usage/internal error.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import re
import sys
from pathlib import Path

RULES = {
    "DET-01": "unordered-container traversal in a deterministic layer",
    "DET-02": "host randomness/wall-clock read in a deterministic layer",
    "ENV-01": "raw getenv outside common/config",
    "OBS-01": "direct stdout/stderr tracing outside obs/",
    "SHARD-01": "mutable namespace-scope state in a barrier layer",
    "MARKER-01": "malformed synpa-lint suppression marker",
}

# Marker tag accepted per rule (MARKER-01 itself is not suppressible).
MARKER_TAGS = {
    "sorted-ok": "DET-01",
    "host-time-ok": "DET-02",
    "env-ok": "ENV-01",
    "trace-ok": "OBS-01",
    "shard-ok": "SHARD-01",
}

# Layers whose results are pinned bit-identical by goldens and the
# parallel-engine identity tests.
DET_LAYERS = ("src/core/", "src/sched/", "src/uarch/", "src/scenario/",
              "src/matching/", "src/online/", "src/model/", "src/fleet/")
# Layers whose code runs inside a fork/join barrier: chip shards
# (uarch/apps/pmu) and fleet nodes stepped concurrently over the fleet
# thread pool.
BARRIER_LAYERS = ("src/uarch/", "src/apps/", "src/pmu/", "src/fleet/")

CPP_SUFFIXES = {".cpp", ".cc", ".cxx", ".hpp", ".hh", ".h", ".ipp"}

MARKER_RE = re.compile(r"synpa-lint:\s*([A-Za-z0-9-]+)\s*(?:\(([^)]*)\))?")

DET02_RE = re.compile(
    r"std::rand\b|\bsrand\s*\(|\brandom_device\b|\bsteady_clock\b"
    r"|\bsystem_clock\b|\bhigh_resolution_clock\b|\bgettimeofday\s*\("
    r"|\bclock_gettime\s*\(|\btimespec_get\s*\(|\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)"
    r"|(?<![\w:])rand\s*\(\s*\)|(?<![\w:])clock\s*\(\s*\)")
ENV01_RE = re.compile(r"\bgetenv\s*\(|\bsecure_getenv\s*\(")
OBS01_RE = re.compile(
    r"\bprintf\s*\(|\bfprintf\s*\(|\bfputs\s*\(|\bputs\s*\(|\bputchar\s*\("
    r"|std::cout\b|std::cerr\b|std::clog\b")
UNORDERED_DECL_RE = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\s*<")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(([^()]*(?:\([^()]*\)[^()]*)*)\)")
BEGIN_CALL_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\.\s*c?begin\s*\(")


class Finding:
    __slots__ = ("path", "line", "rule", "message", "text")

    def __init__(self, path: str, line: int, rule: str, message: str, text: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message
        self.text = text

    def key(self) -> str:
        digest = hashlib.sha1(
            f"{self.rule}|{self.text.strip()}".encode()).hexdigest()[:16]
        return f"{self.path}|{self.rule}|{digest}"

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blanks comment and string/char-literal contents, preserving line
    structure, so token scans cannot match inside either."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            chunk = text[i:j + 2]
            out.append("".join(ch if ch == "\n" else " " for ch in chunk))
            i = j + 2
        elif c == "R" and nxt == '"':
            m = re.match(r'R"([^(\s]{0,16})\(', text[i:])
            if m:
                end = text.find(")" + m.group(1) + '"', i + m.end())
                end = n if end < 0 else end + len(m.group(1)) + 2
                chunk = text[i:end]
                out.append("".join(ch if ch == "\n" else " " for ch in chunk))
                i = end
            else:
                out.append(c)
                i += 1
        elif c in "\"'":
            j = i + 1
            while j < n and text[j] != c:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(c + " " * (j - i - 2) + (c if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def collect_markers(raw_lines: list[str], path: str, findings: list[Finding]):
    """Returns {line_no: set(rule_ids suppressed)} and reports MARKER-01."""
    suppressed: dict[int, set[str]] = {}
    for no, line in enumerate(raw_lines, 1):
        if "synpa-lint:" not in line:
            continue
        for m in MARKER_RE.finditer(line):
            tag, reason = m.group(1), m.group(2)
            rule = MARKER_TAGS.get(tag)
            if rule is None:
                findings.append(Finding(path, no, "MARKER-01",
                                        f"unknown suppression tag '{tag}'", line))
            elif reason is None or not reason.strip():
                findings.append(Finding(
                    path, no, "MARKER-01",
                    f"'{tag}' marker must carry a reason: {tag}(<why this is sound>)",
                    line))
            else:
                suppressed.setdefault(no, set()).add(rule)
    return suppressed


def is_suppressed(suppressed: dict[int, set[str]], line: int, rule: str) -> bool:
    # A marker suppresses its own line and the statement on the next line.
    return rule in suppressed.get(line, set()) or rule in suppressed.get(line - 1, set())


def in_layer(rel: str, layers) -> bool:
    return any(rel.startswith(layer) for layer in layers)


def unordered_names(stripped: str) -> set[str]:
    """Names declared with an unordered container type in this text."""
    names: set[str] = set()
    for m in UNORDERED_DECL_RE.finditer(stripped):
        i = m.end() - 1  # at '<'
        depth = 0
        n = len(stripped)
        while i < n:
            if stripped[i] == "<":
                depth += 1
            elif stripped[i] == ">":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        tail = stripped[i + 1:i + 200]
        dm = re.match(r"\s*[&*]*\s*(?:const\s+)?([A-Za-z_]\w*)", tail)
        if dm and dm.group(1) not in ("final", "override"):
            names.add(dm.group(1))
    return names


def paired_file(path: Path) -> Path | None:
    mates = {".cpp": [".hpp", ".h"], ".hpp": [".cpp", ".cc"], ".h": [".cpp", ".cc"]}
    for suffix in mates.get(path.suffix, []):
        mate = path.with_suffix(suffix)
        if mate.exists():
            return mate
    return None


def check_det01_token(rel: str, raw_lines, stripped_lines, stripped_text,
                      path: Path, suppressed, findings):
    names = unordered_names(stripped_text)
    mate = paired_file(path)
    if mate is not None:
        names |= unordered_names(strip_comments_and_strings(mate.read_text()))
    if not names:
        return
    for no, line in enumerate(stripped_lines, 1):
        hits = []
        for m in RANGE_FOR_RE.finditer(line):
            inner = m.group(1)
            if ":" not in inner:
                continue
            range_expr = inner.rsplit(":", 1)[1].strip()
            base = re.sub(r"^\*|^\(|\)$", "", range_expr).strip()
            base = base.split(".")[-1].split("->")[-1].strip()
            if base in names:
                hits.append(f"range-for over unordered container '{base}'")
        for m in BEGIN_CALL_RE.finditer(line):
            if m.group(1) in names:
                hits.append(f"iterator traversal of unordered container '{m.group(1)}'")
        for msg in hits:
            if not is_suppressed(suppressed, no, "DET-01"):
                findings.append(Finding(
                    rel, no, "DET-01",
                    f"{msg}: hash order is nondeterministic — use a sorted "
                    "snapshot or common::FlatIdMap, or audit with "
                    "// synpa-lint: sorted-ok(<reason>)", raw_lines[no - 1]))


def check_regex_rule(rel, raw_lines, stripped_lines, rule, regex, message,
                     suppressed, findings):
    for no, line in enumerate(stripped_lines, 1):
        if regex.search(line) and not is_suppressed(suppressed, no, rule):
            findings.append(Finding(rel, no, rule, message, raw_lines[no - 1]))


# ---------------------------------------------------------------------------
# SHARD-01: a small scope tracker over the stripped text.

_SCOPE_OPENERS = re.compile(r"\b(namespace|class|struct|union|enum)\b")
_GLOBAL_DECL_RE = re.compile(
    r"^(?:(?:static|inline|thread_local)\s+)*"
    r"[A-Za-z_][\w:]*(?:\s*<[^;{}]*>)?[\w:\s\*&]*?[\s\*&]([A-Za-z_]\w*)\s*"
    r"(?:=[^;]*)?$")
_DECL_SKIP_RE = re.compile(
    r"\b(const|constexpr|constinit|using|typedef|friend|template|static_assert|"
    r"operator|extern|concept|requires|namespace|public|private|protected|"
    r"class|struct|union|enum)\b")


def _classify_scope(stmt: str) -> str:
    stmt = stmt.strip()
    if re.search(r"\bnamespace\b", stmt) or 'extern "C"' in stmt:
        return "namespace"
    if re.search(r"\b(class|struct|union|enum)\b", stmt) and "(" not in stmt \
            and "=" not in stmt:
        return "class"
    if stmt.endswith("=") or stmt.endswith("{") or re.search(r"=\s*$", stmt):
        return "init"
    if "(" in stmt:
        return "function"
    if re.search(r"\b(do|else|try)\s*$", stmt):
        return "function"
    return "block"


def _flag_decl(stmt: str) -> str | None:
    """Returns the declared name when `stmt` defines a mutable variable."""
    stmt = re.sub(r"\[\[[^\]]*\]\]", "", stmt).strip()
    if not stmt or stmt.endswith(")"):
        return None
    if _DECL_SKIP_RE.search(stmt):
        return None
    head = stmt.split("=", 1)[0]
    if "(" in head:  # function declaration/definition
        return None
    m = _GLOBAL_DECL_RE.match(stmt)
    return m.group(1) if m else None


def check_shard01_token(rel, raw_lines, stripped_lines, suppressed, findings):
    is_header = Path(rel).suffix in {".hpp", ".hh", ".h", ".ipp"}
    # Preprocessor lines carry no scopes or declarations; blank them so they
    # cannot merge into the following statement.
    text = "\n".join("" if line.lstrip().startswith("#") else line
                     for line in stripped_lines)
    scopes: list[str] = []  # implicit file scope == namespace scope
    stmt, stmt_line = [], 1
    line_no = 1
    has_sig = False  # statement buffer holds a non-space character

    def current() -> str:
        return scopes[-1] if scopes else "namespace"

    def analyze(statement: str, at_line: int):
        statement = re.sub(r"^(?:(?:public|private|protected)\s*:\s*)+", "",
                           statement.strip())
        if not statement:
            return
        if current() == "namespace":
            name = _flag_decl(statement)
            if name and not is_suppressed(suppressed, at_line, "SHARD-01"):
                findings.append(Finding(
                    rel, at_line, "SHARD-01",
                    f"mutable namespace-scope state '{name}': chip shards must "
                    "share no mutable globals — make it const/constexpr or move "
                    "it into the owning object", raw_lines[at_line - 1]))
        elif is_header and current() in ("function", "class", "block"):
            sm = re.match(r"^static\b(?!\s+(?:const\b|constexpr\b))", statement)
            if sm and "(" not in statement.split("=", 1)[0] \
                    and not _DECL_SKIP_RE.search(statement.split("=", 1)[0].replace("static", "", 1)):
                if not is_suppressed(suppressed, at_line, "SHARD-01"):
                    findings.append(Finding(
                        rel, at_line, "SHARD-01",
                        "non-const static in a header: every includer shares one "
                        "mutable instance across shards", raw_lines[at_line - 1]))

    for ch in text:
        if ch == "\n":
            line_no += 1
            stmt.append(" ")
        elif ch == "{":
            kind = _classify_scope("".join(stmt))
            # An init brace at namespace scope still carries the declarator:
            # analyze it now so `Foo x = {...};` is seen.
            if kind == "init" and current() == "namespace":
                analyze("".join(stmt).rstrip().rstrip("=").rstrip(), stmt_line)
            scopes.append(kind)
            stmt, has_sig = [], False
        elif ch == "}":
            if scopes:
                scopes.pop()
            stmt, has_sig = [], False
        elif ch == ";":
            analyze("".join(stmt), stmt_line)
            stmt, has_sig = [], False
        elif ch == ":" and "".join(stmt).strip() in ("public", "private",
                                                     "protected"):
            # Access labels are statement boundaries, not declaration prefixes.
            stmt, has_sig = [], False
        else:
            if not has_sig and not ch.isspace():
                stmt_line = line_no
                has_sig = True
            stmt.append(ch)


# ---------------------------------------------------------------------------
# Optional libclang engine (AST-exact DET-01/SHARD-01); falls back to the
# token engine on any failure so environments without libclang lose nothing.

def try_libclang():
    try:
        from clang import cindex  # type: ignore
        cindex.Index.create()
        return cindex
    except Exception:
        return None


def check_det01_libclang(cindex, rel, path, raw_lines, suppressed, findings):
    index = cindex.Index.create()
    tu = index.parse(str(path), args=["-std=c++20", "-I", str(path.parents[1])])
    for cur in tu.cursor.walk_preorder():
        if cur.kind != cindex.CursorKind.CXX_FOR_RANGE_STMT:
            continue
        if not cur.location.file or Path(cur.location.file.name) != path:
            continue
        children = list(cur.get_children())
        if not children:
            continue
        range_type = children[-2].type.spelling if len(children) >= 2 else ""
        if "unordered_" in range_type:
            no = cur.location.line
            if not is_suppressed(suppressed, no, "DET-01"):
                findings.append(Finding(
                    rel, no, "DET-01",
                    f"range-for over '{range_type}': hash order is "
                    "nondeterministic — use a sorted snapshot or "
                    "common::FlatIdMap", raw_lines[no - 1]))


def scan_file(path: Path, root: Path, engine) -> list[Finding]:
    rel = path.relative_to(root).as_posix()
    raw = path.read_text(errors="replace")
    raw_lines = raw.splitlines()
    stripped = strip_comments_and_strings(raw)
    stripped_lines = stripped.splitlines()
    findings: list[Finding] = []
    suppressed = collect_markers(raw_lines, rel, findings)

    if in_layer(rel, DET_LAYERS):
        if engine is not None:
            try:
                check_det01_libclang(engine, rel, path, raw_lines, suppressed,
                                     findings)
            except Exception:
                check_det01_token(rel, raw_lines, stripped_lines, stripped,
                                  path, suppressed, findings)
        else:
            check_det01_token(rel, raw_lines, stripped_lines, stripped, path,
                              suppressed, findings)
        check_regex_rule(
            rel, raw_lines, stripped_lines, "DET-02", DET02_RE,
            "host randomness/wall-clock read in a deterministic layer — host "
            "time lives behind obs::PhaseStopwatch/obs::host_now_us(), "
            "randomness behind common::rng", suppressed, findings)

    if not rel.startswith("src/common/config."):
        check_regex_rule(
            rel, raw_lines, stripped_lines, "ENV-01", ENV01_RE,
            "raw getenv bypasses the fail-loud common::env_* wrappers and the "
            "check_docs.py knob cross-check", suppressed, findings)

    if rel.startswith("src/") and not rel.startswith("src/obs/"):
        check_regex_rule(
            rel, raw_lines, stripped_lines, "OBS-01", OBS01_RE,
            "direct stdout/stderr tracing outside obs/ — emit through the "
            "flight recorder (obs::Tracer) or return data to the caller",
            suppressed, findings)

    if in_layer(rel, BARRIER_LAYERS):
        check_shard01_token(rel, raw_lines, stripped_lines, suppressed, findings)

    return findings


def gather_files(root: Path, paths: list[str]) -> list[Path]:
    files: list[Path] = []
    for p in paths:
        full = (root / p).resolve()
        if full.is_file():
            files.append(full)
        elif full.is_dir():
            files.extend(f for f in sorted(full.rglob("*"))
                         if f.suffix in CPP_SUFFIXES and f.is_file())
    return files


def load_baseline(path: Path) -> set[str]:
    if not path.exists():
        return set()
    data = json.loads(path.read_text())
    return set(data.get("findings", []))


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="*", default=None,
                    help="files/directories relative to --root "
                         "(default: src bench examples)")
    ap.add_argument("--root", type=Path,
                    default=Path(__file__).resolve().parents[1],
                    help="repository root the rule scopes are resolved against")
    ap.add_argument("--baseline", type=Path, default=None,
                    help="suppression baseline JSON "
                         "(default: <root>/tools/synpa_lint_baseline.json)")
    ap.add_argument("--update-baseline", action="store_true",
                    help="rewrite the baseline to the current findings")
    ap.add_argument("--report", type=Path, default=None,
                    help="also write the findings report to this file")
    ap.add_argument("--engine", choices=("auto", "token", "libclang"),
                    default="token",
                    help="DET-01/SHARD-01 analysis engine (default: token; "
                         "auto upgrades to libclang when importable)")
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rule, desc in RULES.items():
            print(f"{rule}  {desc}")
        return 0

    root = args.root.resolve()
    paths = args.paths or ["src", "bench", "examples"]
    baseline_path = args.baseline or root / "tools" / "synpa_lint_baseline.json"

    engine = None
    if args.engine == "libclang":
        engine = try_libclang()
        if engine is None:
            print("synpa-lint: libclang unavailable, falling back to the "
                  "token engine", file=sys.stderr)
    elif args.engine == "auto":
        engine = try_libclang()

    findings: list[Finding] = []
    for f in gather_files(root, paths):
        findings.extend(scan_file(f, root, engine))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))

    if args.update_baseline:
        baseline_path.write_text(json.dumps(
            {"version": 1, "findings": sorted(f.key() for f in findings)},
            indent=2) + "\n")
        print(f"synpa-lint: baseline updated with {len(findings)} finding(s) "
              f"-> {baseline_path}")
        return 0

    baseline = load_baseline(baseline_path)
    new = [f for f in findings if f.key() not in baseline]
    seen_keys = {f.key() for f in findings}
    stale = sorted(k for k in baseline if k not in seen_keys)

    lines = [str(f) for f in new]
    report = "\n".join(lines)
    if args.report:
        args.report.parent.mkdir(parents=True, exist_ok=True)
        args.report.write_text(report + ("\n" if report else ""))
    if new:
        print(report)
        print(f"synpa-lint: {len(new)} new finding(s) "
              f"({len(findings) - len(new)} baselined)", file=sys.stderr)
        return 1
    if stale:
        print(f"synpa-lint: clean; {len(stale)} stale baseline entr"
              f"{'y' if len(stale) == 1 else 'ies'} can be removed "
              f"(--update-baseline)", file=sys.stderr)
    suffix = f" ({len(findings)} baselined)" if findings else ""
    print(f"synpa-lint: clean{suffix}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
