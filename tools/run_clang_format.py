#!/usr/bin/env python3
"""Report (or fix) clang-format drift against the checked-in .clang-format.

Modes
  --check   list files whose formatting differs; exit 1 if any (default)
  --fix     rewrite drifting files in place

The style config codifies what the tree already does, but the tree was
written by hand, so some drift exists.  CI runs this report-only
(continue-on-error) until the drift is burned down; no mass reformat here
because it would destroy blame across every file at once.

Without clang-format on PATH the script prints a notice and exits 0 unless
--require is given (CI mode).  Exit: 0 clean/skipped, 1 drift, 2 usage or
(with --require) missing tooling.
"""

from __future__ import annotations

import argparse
import shutil
import subprocess
import sys
from pathlib import Path

CPP_SUFFIXES = {".cpp", ".cc", ".hpp", ".hh", ".h", ".ipp"}
DEFAULT_PATHS = ["src", "bench", "examples", "tests"]
SKIP_PREFIXES = ("tests/lint/fixtures/",)


def find_clang_format(explicit: str | None) -> str | None:
    candidates = [explicit] if explicit else []
    candidates += ["clang-format"] + [f"clang-format-{v}" for v in
                                      range(20, 13, -1)]
    for c in candidates:
        if c and shutil.which(c):
            return c
    return None


def gather(root: Path, paths: list[str]) -> list[Path]:
    files: list[Path] = []
    for p in paths:
        full = root / p
        if full.is_file():
            files.append(full)
        elif full.is_dir():
            files.extend(f for f in sorted(full.rglob("*"))
                         if f.suffix in CPP_SUFFIXES and f.is_file())
    return [f for f in files
            if not str(f.relative_to(root)).startswith(SKIP_PREFIXES)]


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="*", default=None,
                    help=f"files/dirs relative to --root "
                         f"(default: {' '.join(DEFAULT_PATHS)})")
    ap.add_argument("--root", type=Path,
                    default=Path(__file__).resolve().parents[1])
    mode = ap.add_mutually_exclusive_group()
    mode.add_argument("--check", action="store_true", default=True)
    mode.add_argument("--fix", action="store_true")
    ap.add_argument("--clang-format", default=None)
    ap.add_argument("--require", action="store_true",
                    help="fail instead of skipping when clang-format is "
                         "missing (CI mode)")
    args = ap.parse_args(argv)

    root = args.root.resolve()
    clang_format = find_clang_format(args.clang_format)
    if clang_format is None:
        print("run_clang_format: clang-format not found on PATH"
              + ("" if args.require else " — skipping"), file=sys.stderr)
        return 2 if args.require else 0

    files = gather(root, args.paths or DEFAULT_PATHS)
    if args.fix:
        subprocess.run([clang_format, "-i", "--style=file"]
                       + [str(f) for f in files], check=True)
        print(f"run_clang_format: formatted {len(files)} file(s)")
        return 0

    drift = []
    for f in files:
        proc = subprocess.run(
            [clang_format, "--style=file", "--output-replacements-xml",
             str(f)], capture_output=True, text=True)
        if "<replacement " in proc.stdout:
            drift.append(f.relative_to(root))
    if drift:
        for f in drift:
            print(f)
        print(f"run_clang_format: {len(drift)}/{len(files)} file(s) drift "
              "from .clang-format (run tools/run_clang_format.py --fix "
              "on files you touch)", file=sys.stderr)
        return 1
    print(f"run_clang_format: {len(files)} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
