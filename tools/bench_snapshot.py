#!/usr/bin/env python3
"""Capture a benchmark snapshot: run the Google-Benchmark microbenches and
write a machine-readable summary to BENCH_sim_throughput.json at the repo
root.

The snapshot records, per benchmark, wall time and simulated-core-cycles
throughput, plus the parallel speedup of every BM_PlatformQuantum* row
against its sim_threads=1 sibling.  Host facts (hardware_concurrency, cpu
model) are embedded so a snapshot from a 1-core container is not mistaken
for a parallel-scaling regression: wall-clock speedup only materializes
with free cores, which the CI runners (and any developer machine) have.

Usage:
    tools/bench_snapshot.py [--build-dir build] [--output BENCH_sim_throughput.json]
                            [--min-time 0.05]
    tools/bench_snapshot.py --check [--baseline BENCH_sim_throughput.json]
                            [--regression-threshold 0.25]

With --check, the freshly measured snapshot is compared against the committed
baseline instead of overwriting it: any benchmark row whose items_per_second
dropped by more than the threshold fails the run.  The comparison only applies
when the host core count matches the baseline's (throughput on a different
machine is not a regression signal); otherwise it prints a notice and exits 0.

Requires the benches to be built (cmake --build <build-dir>); exits non-zero
with a hint if they are missing.
"""

from __future__ import annotations

import argparse
import json
import os
import platform as host_platform
import re
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

BENCHES = ("bench_sim_throughput", "bench_matching")


def run_bench(binary: str, min_time: float) -> dict:
    """Run one Google-Benchmark binary with JSON output; return the parsed doc."""
    cmd = [
        binary,
        "--benchmark_format=json",
        f"--benchmark_min_time={min_time}",
    ]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise RuntimeError(f"{os.path.basename(binary)} exited {proc.returncode}")
    return json.loads(proc.stdout)


def row_summary(b: dict) -> dict:
    """The fields worth diffing across snapshots, per benchmark row."""
    out = {
        "name": b["name"],
        "real_time_ns": b.get("real_time"),
        "cpu_time_ns": b.get("cpu_time"),
        "iterations": b.get("iterations"),
    }
    if "items_per_second" in b:
        out["items_per_second"] = b["items_per_second"]
    if "sim_shards" in b:
        out["sim_shards"] = int(b["sim_shards"])
    if "oracle_calls" in b:
        out["oracle_calls"] = b["oracle_calls"]
    return out


_THREADS_RE = re.compile(r"threads:(\d+)")


def serial_sibling(name: str) -> str:
    """The sim_threads=1 row a parallel row's speedup is measured against."""
    return _THREADS_RE.sub("threads:1", name)


def platform_speedups(rows: list[dict]) -> list[dict]:
    """Wall-clock speedup of every parallel BM_PlatformQuantum* row vs. its
    threads:1 sibling (same chips/shape).  Results are bit-identical across
    thread counts, so this ratio is pure execution speedup."""
    by_name = {r["name"]: r for r in rows}
    speedups = []
    for r in rows:
        if not r["name"].startswith("BM_PlatformQuantum"):
            continue
        m = _THREADS_RE.search(r["name"])
        if not m or m.group(1) == "1":
            continue
        base = by_name.get(serial_sibling(r["name"]))
        if not base or not base["real_time_ns"] or not r["real_time_ns"]:
            continue
        speedups.append(
            {
                "name": r["name"],
                "threads": int(m.group(1)),
                "sim_shards": r.get("sim_shards"),
                "speedup_vs_serial": base["real_time_ns"] / r["real_time_ns"],
            }
        )
    return speedups


_GROUPING_N_RE = re.compile(r"^BM_GroupingWarmArrival/(\d+)")


def grouping_warm_vs_cold(rows: list[dict]) -> list[dict]:
    """Cold-over-warm re-solve cost of the k-way grouping after a single
    task arrival, per problem size.  oracle_calls (GroupCost evaluations
    per solve) is the machine-independent measure; wall time rides along.
    The warm path's dirty-set local search should make the ratio large
    (the ISSUE floor is 5x at n=512)."""
    by_name = {r["name"]: r for r in rows}
    out = []
    for r in rows:
        m = _GROUPING_N_RE.match(r["name"])
        if not m:
            continue
        cold = by_name.get(r["name"].replace("BM_GroupingWarmArrival", "BM_GroupingColdResolve"))
        if not cold:
            continue
        entry = {"n": int(m.group(1))}
        if cold.get("oracle_calls") and r.get("oracle_calls"):
            entry["cold_over_warm_oracle_calls"] = cold["oracle_calls"] / r["oracle_calls"]
        if cold.get("real_time_ns") and r.get("real_time_ns"):
            entry["cold_over_warm_time"] = cold["real_time_ns"] / r["real_time_ns"]
        out.append(entry)
    return out


def cpu_model() -> str:
    try:
        with open("/proc/cpuinfo") as f:
            for line in f:
                if line.lower().startswith(("model name", "hardware", "processor\t")):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return host_platform.processor() or "unknown"


def check_against_baseline(snapshot: dict, baseline_path: str, threshold: float) -> int:
    """Compare the fresh snapshot's throughput rows against the committed
    baseline; return the exit code.  Skips (exit 0) with a notice when the
    host shape differs from the machine that produced the baseline."""
    try:
        with open(baseline_path) as f:
            baseline = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        sys.stderr.write(f"error: cannot read baseline {baseline_path}: {err}\n")
        return 1

    base_cores = baseline.get("host", {}).get("hardware_concurrency")
    here_cores = snapshot["host"]["hardware_concurrency"]
    if base_cores != here_cores:
        print(
            f"bench check skipped: baseline was taken on a "
            f"{base_cores}-core host, this host has {here_cores} cores "
            f"(throughput is not comparable across machines)"
        )
        return 0

    regressions = []
    compared = 0
    for bench, entry in snapshot["benchmarks"].items():
        base_rows = {
            r["name"]: r
            for r in baseline.get("benchmarks", {}).get(bench, {}).get("rows", [])
        }
        for row in entry["rows"]:
            base = base_rows.get(row["name"])
            if not base:
                continue
            old = base.get("items_per_second")
            new = row.get("items_per_second")
            if not old or not new:
                continue
            compared += 1
            ratio = new / old
            if ratio < 1.0 - threshold:
                regressions.append(
                    f"  {row['name']}: {old:.3e} -> {new:.3e} items/s "
                    f"({(1.0 - ratio) * 100:.0f}% slower)"
                )

    if regressions:
        sys.stderr.write(
            f"bench check FAILED: {len(regressions)} of {compared} rows regressed "
            f"beyond {threshold * 100:.0f}%:\n" + "\n".join(regressions) + "\n"
        )
        return 1
    print(f"bench check OK: {compared} throughput rows within {threshold * 100:.0f}% of baseline")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", default=os.path.join(REPO_ROOT, "build"))
    ap.add_argument(
        "--output", default=os.path.join(REPO_ROOT, "BENCH_sim_throughput.json")
    )
    ap.add_argument("--min-time", type=float, default=0.05)
    ap.add_argument(
        "--check",
        action="store_true",
        help="compare against --baseline instead of writing --output",
    )
    ap.add_argument(
        "--baseline", default=os.path.join(REPO_ROOT, "BENCH_sim_throughput.json")
    )
    ap.add_argument("--regression-threshold", type=float, default=0.25)
    args = ap.parse_args()

    snapshot = {
        "host": {
            "hardware_concurrency": os.cpu_count() or 1,
            "cpu": cpu_model(),
            "system": f"{host_platform.system()} {host_platform.release()}",
            "note": (
                "speedup_vs_serial needs free host cores; on a "
                "hardware_concurrency=1 host it reads ~1.0 by construction"
            ),
        },
        "benchmarks": {},
    }

    for bench in BENCHES:
        binary = os.path.join(args.build_dir, "bench", bench)
        if not os.path.exists(binary):
            sys.stderr.write(
                f"error: {binary} not found — build first: "
                f"cmake --build {args.build_dir} -j\n"
            )
            return 1
        doc = run_bench(binary, args.min_time)
        rows = [row_summary(b) for b in doc.get("benchmarks", [])]
        entry = {"rows": rows}
        if bench == "bench_sim_throughput":
            entry["parallel_speedups"] = platform_speedups(rows)
            ctx = doc.get("context", {})
            snapshot["host"]["benchmark_num_cpus"] = ctx.get("num_cpus")
            snapshot["host"]["library_build_type"] = ctx.get("library_build_type")
        if bench == "bench_matching":
            entry["grouping_warm_vs_cold"] = grouping_warm_vs_cold(rows)
        snapshot["benchmarks"][bench] = entry

    if args.check:
        return check_against_baseline(snapshot, args.baseline, args.regression_threshold)

    with open(args.output, "w") as f:
        json.dump(snapshot, f, indent=2, sort_keys=True)
        f.write("\n")

    print(f"wrote {args.output}")
    for s in snapshot["benchmarks"]["bench_sim_throughput"].get("parallel_speedups", []):
        print(f"  {s['name']}: {s['speedup_vs_serial']:.2f}x")
    for g in snapshot["benchmarks"]["bench_matching"].get("grouping_warm_vs_cold", []):
        calls = g.get("cold_over_warm_oracle_calls")
        time = g.get("cold_over_warm_time")
        print(
            f"  grouping n={g['n']}: cold/warm = "
            f"{calls:.1f}x oracle calls, {time:.1f}x time"
            if calls and time
            else f"  grouping n={g['n']}: incomplete counters"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
