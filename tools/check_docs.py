#!/usr/bin/env python3
"""Docs consistency checks (run by the CI docs job).

1. Every intra-repo markdown link in every *.md file must resolve to an
   existing file or directory.
2. Every policy name registered in src/sched/registry.cpp and every fleet
   policy registered in src/fleet/policy.cpp (the tables between the
   registry-table-begin/end markers) must be documented in
   docs/REFERENCE.md as an inline-code `name`.
3. Every SYNPA_* environment knob read anywhere in src/, bench/, or
   examples/ (via common::env_int/env_double/env_string or raw getenv)
   must be documented in docs/REFERENCE.md as an inline-code `NAME`.

Exits nonzero listing every violation; prints a summary on success.
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SKIP_DIRS = {"build", ".git", ".claude"}

# [text](target) — excluding images is unnecessary (same resolution rules).
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
REGISTRY_NAME_RE = re.compile(r'^\s*\{"([^"]+)"')
ENV_KNOB_RE = re.compile(r'(?:env_(?:int|double|string)\(\s*|getenv\(\s*)"(SYNPA_[A-Z0-9_]+)"')
SOURCE_DIRS = ("src", "bench", "examples")


def markdown_files():
    for path in sorted(REPO.rglob("*.md")):
        if not any(part in SKIP_DIRS for part in path.parts):
            yield path


def check_links():
    errors = []
    for md in markdown_files():
        for lineno, line in enumerate(md.read_text().splitlines(), 1):
            for target in LINK_RE.findall(line):
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                resolved = (md.parent / target.split("#", 1)[0]).resolve()
                if not resolved.exists():
                    errors.append(
                        f"{md.relative_to(REPO)}:{lineno}: broken link '{target}'"
                    )
    return errors


REGISTRY_SOURCES = ("src/sched/registry.cpp", "src/fleet/policy.cpp")


def registry_names():
    names = []
    for rel in REGISTRY_SOURCES:
        source = (REPO / rel).read_text()
        try:
            table = source.split("registry-table-begin", 1)[1].split(
                "registry-table-end", 1
            )[0]
        except IndexError:
            sys.exit(f"{rel}: registry-table markers not found")
        parsed = [
            m.group(1)
            for line in table.splitlines()
            if (m := REGISTRY_NAME_RE.match(line))
        ]
        if not parsed:
            sys.exit(f"{rel}: no policy names parsed from the table")
        names.extend(parsed)
    return names


def check_policy_docs():
    reference = (REPO / "docs/REFERENCE.md").read_text()
    return [
        f"docs/REFERENCE.md: registered policy '{name}' is undocumented"
        for name in registry_names()
        if f"`{name}`" not in reference
    ]


def env_knobs():
    """Every SYNPA_* knob read from the environment, mapped to one usage site."""
    knobs = {}
    for dir_name in SOURCE_DIRS:
        for source in sorted((REPO / dir_name).rglob("*.[ch]pp")):
            for lineno, line in enumerate(source.read_text().splitlines(), 1):
                for name in ENV_KNOB_RE.findall(line):
                    knobs.setdefault(name, f"{source.relative_to(REPO)}:{lineno}")
    if not knobs:
        sys.exit("no SYNPA_* env knobs found in the source tree")
    return knobs


def check_env_knob_docs():
    reference = (REPO / "docs/REFERENCE.md").read_text()
    return [
        f"docs/REFERENCE.md: env knob '{name}' (read at {site}) is undocumented"
        for name, site in sorted(env_knobs().items())
        if f"`{name}`" not in reference
    ]


def main():
    errors = check_links() + check_policy_docs() + check_env_knob_docs()
    if errors:
        print("\n".join(errors), file=sys.stderr)
        sys.exit(1)
    md_count = sum(1 for _ in markdown_files())
    print(
        f"docs OK: {md_count} markdown files, {len(registry_names())} policies"
        f" and {len(env_knobs())} env knobs documented"
    )


if __name__ == "__main__":
    main()
