#!/usr/bin/env python3
"""Summarize (or validate) a SYNPA flight-recorder Chrome-trace JSON.

Summary mode prints the run timeline (quantum span, live-task range), the
per-quantum policy-latency percentiles (p50/p90/p99 of the observe/decide/
bind wall-clock from the policy_wall_us counter track), the simulate-phase
latency, and a count of every structured event kind.

Usage:
    tools/trace_summary.py trace.json            # human summary
    tools/trace_summary.py trace.json --validate # structural checks, exit 1
                                                 # on any violation

--validate asserts the shape the CI trace-smoke job relies on: the file
parses as JSON, every traceEvents entry carries ph/ts/pid, the "quantum"
X-slices have strictly increasing timestamps, and at least one counter
track is present.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter


def percentile(values: list[float], p: float) -> float:
    """Order-statistic percentile with linear interpolation (p in [0, 1])."""
    if not values:
        return 0.0
    xs = sorted(values)
    rank = max(0.0, min(1.0, p)) * (len(xs) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(xs) - 1)
    frac = rank - lo
    return xs[lo] + frac * (xs[hi] - xs[lo])


def load(path: str) -> dict:
    with open(path) as f:
        return json.load(f)


def validate(doc: dict) -> list[str]:
    errors = []
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        return ["traceEvents missing or empty"]
    last_quantum_ts = None
    counters = 0
    for i, e in enumerate(events):
        for key in ("ph", "ts", "pid"):
            if key not in e:
                errors.append(f"traceEvents[{i}]: missing required key '{key}'")
        if e.get("ph") == "C":
            counters += 1
        if e.get("ph") == "X" and e.get("name") == "quantum":
            ts = e.get("ts")
            if last_quantum_ts is not None and ts <= last_quantum_ts:
                errors.append(
                    f"traceEvents[{i}]: quantum slice ts {ts} not strictly "
                    f"increasing (previous {last_quantum_ts})"
                )
            last_quantum_ts = ts
    if last_quantum_ts is None:
        errors.append("no 'quantum' X-slices found")
    if counters == 0:
        errors.append("no counter ('C') events found")
    return errors


def summarize(doc: dict) -> None:
    events = doc.get("traceEvents", [])
    quanta = [e for e in events if e.get("ph") == "X" and e.get("name") == "quantum"]
    policy_lat = []  # observe + decide + bind, per quantum
    decide_lat = []
    simulate_lat = []
    for e in events:
        if e.get("ph") != "C":
            continue
        args = e.get("args", {})
        if e.get("name") == "policy_wall_us":
            decide_lat.append(args.get("decide", 0.0))
            policy_lat.append(
                args.get("observe", 0.0) + args.get("decide", 0.0) + args.get("bind", 0.0)
            )
        elif e.get("name") == "simulate_wall_us":
            simulate_lat.append(args.get("simulate", 0.0))

    instants = Counter(
        e.get("name", "?") for e in events if e.get("ph") == "i"
    )
    chip_slices = sum(
        1 for e in events if e.get("ph") == "X" and e.get("name") == "chip_quantum"
    )

    if quanta:
        first = quanta[0]["args"].get("quantum", quanta[0]["ts"] // 1000)
        last = quanta[-1]["args"].get("quantum", quanta[-1]["ts"] // 1000)
        lives = [q["args"].get("live", 0) for q in quanta if "args" in q]
        print(f"timeline: {len(quanta)} quanta (quantum {first} .. {last})")
        if lives:
            print(f"  live tasks: min {min(lives)}, max {max(lives)}")
    if chip_slices:
        print(f"  chip quantum slices: {chip_slices}")

    def lat_line(label: str, xs: list[float]) -> None:
        if xs:
            print(
                f"  {label}: p50 {percentile(xs, 0.50):.1f} us, "
                f"p90 {percentile(xs, 0.90):.1f} us, "
                f"p99 {percentile(xs, 0.99):.1f} us"
            )

    print("per-quantum latency:")
    lat_line("policy (observe+decide+bind)", policy_lat)
    lat_line("decide only", decide_lat)
    lat_line("simulate", simulate_lat)

    if instants:
        print("events:")
        for name, count in sorted(instants.items()):
            print(f"  {name}: {count}")

    dropped = doc.get("otherData", {}).get("dropped_events", 0)
    if dropped:
        print(f"warning: {dropped} events dropped (raise SYNPA_TRACE_CAPACITY)")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("trace", help="Chrome-trace JSON written by the flight recorder")
    ap.add_argument(
        "--validate",
        action="store_true",
        help="run structural checks instead of printing a summary",
    )
    args = ap.parse_args()

    try:
        doc = load(args.trace)
    except (OSError, json.JSONDecodeError) as err:
        sys.stderr.write(f"error: cannot load {args.trace}: {err}\n")
        return 1

    if args.validate:
        errors = validate(doc)
        if errors:
            sys.stderr.write("\n".join(errors) + "\n")
            return 1
        print(
            f"trace OK: {len(doc['traceEvents'])} events, "
            f"{doc.get('otherData', {}).get('dropped_events', 0)} dropped"
        )
        return 0

    summarize(doc)
    return 0


if __name__ == "__main__":
    sys.exit(main())
