// Tests for the online-adaptation subsystem (src/online/): the CUSUM phase
// detector's false-positive and detection-latency behaviour, the
// incremental trainer's bit-exact equivalence with a full offline retrain
// on shared observations, its agreement with the offline QR fit, and the
// adaptive policy's end-to-end accounting in the open-system driver.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "apps/spec_suite.hpp"
#include "common/rng.hpp"
#include "model/trainer.hpp"
#include "online/adaptive_policy.hpp"
#include "online/incremental_trainer.hpp"
#include "online/phase_detector.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "uarch/platform.hpp"

namespace {

using namespace synpa;

// ---------- phase detector ----------

model::CategoryVector noisy_fractions(common::Rng& rng, double fe, double be) {
    // Small bounded jitter around a fixed mix, renormalized to the simplex.
    const double jitter = 0.01;
    double f = fe + (rng.uniform() - 0.5) * jitter;
    double b = be + (rng.uniform() - 0.5) * jitter;
    double d = 1.0 - f - b;
    const double sum = f + b + d;
    return {d / sum, f / sum, b / sum};
}

TEST(PhaseDetector, NoFalsePositivesOnStationaryTrace) {
    online::PhaseDetector detector;
    common::Rng rng(1, 0xfade);
    for (int q = 0; q < 500; ++q) {
        const double ipc = 1.5 + (rng.uniform() - 0.5) * 0.05;
        EXPECT_FALSE(detector.observe(7, ipc, noisy_fractions(rng, 0.2, 0.3)))
            << "false alarm at quantum " << q;
    }
    EXPECT_EQ(detector.alarms(), 0u);
}

TEST(PhaseDetector, DetectsStepChangeWithinLatencyBound) {
    online::PhaseDetector::Options opts;  // defaults: warmup 5, k 0.75, h 6
    online::PhaseDetector detector(opts);
    common::Rng rng(2, 0xfade);
    for (int q = 0; q < 60; ++q)
        ASSERT_FALSE(detector.observe(1, 2.0 + (rng.uniform() - 0.5) * 0.05,
                                      noisy_fractions(rng, 0.15, 0.25)));

    // A frontend-heavy phase begins: IPC halves, fractions shift hard.
    int detected_after = -1;
    for (int q = 0; q < 20; ++q) {
        if (detector.observe(1, 1.0 + (rng.uniform() - 0.5) * 0.05,
                             noisy_fractions(rng, 0.45, 0.15))) {
            detected_after = q;
            break;
        }
    }
    ASSERT_GE(detected_after, 0) << "step change never detected";
    // The shift is many sigmas, so the CUSUM must fire within a few quanta
    // of crossing the boundary (h/drift margin, not a fixed-window scan).
    EXPECT_LE(detected_after, 8);
    EXPECT_EQ(detector.alarms(), 1u);
}

TEST(PhaseDetector, AlarmRestartsBaselineForTheNewPhase) {
    online::PhaseDetector detector;
    common::Rng rng(3, 0xfade);
    for (int q = 0; q < 30; ++q)
        ASSERT_FALSE(detector.observe(1, 2.0, noisy_fractions(rng, 0.15, 0.25)));
    int alarms = 0;
    for (int q = 0; q < 40; ++q)
        if (detector.observe(1, 0.8, noisy_fractions(rng, 0.5, 0.2))) ++alarms;
    // Exactly one alarm: after it the baseline re-warms onto the new phase
    // and the (stationary) new behaviour raises no further alarms.
    EXPECT_EQ(alarms, 1);
}

TEST(PhaseDetector, ResetAndForgetClearState) {
    online::PhaseDetector detector;
    common::Rng rng(4, 0xfade);
    for (int q = 0; q < 10; ++q)
        detector.observe(1, 2.0, noisy_fractions(rng, 0.2, 0.3));
    EXPECT_TRUE(detector.warmed_up(1));
    detector.reset(1);
    EXPECT_FALSE(detector.warmed_up(1));
    detector.forget(1);
    EXPECT_FALSE(detector.warmed_up(1));
}

// ---------- incremental trainer ----------

/// Real aligned samples from the offline pipeline (two apps, one pair run).
std::vector<model::TrainingSample> pipeline_samples() {
    uarch::SimConfig cfg;
    cfg.cycles_per_quantum = 4'000;
    model::TrainerOptions opts;
    opts.isolated_quanta = 60;
    opts.pair_quanta = 40;
    const model::Trainer trainer(cfg, opts);
    const apps::AppProfile& a = apps::find_app("mcf");
    const apps::AppProfile& b = apps::find_app("leela_r");
    const model::IsolatedProfile prof_a =
        model::profile_isolated(a, cfg, opts.isolated_quanta, 101);
    const model::IsolatedProfile prof_b =
        model::profile_isolated(b, cfg, opts.isolated_quanta, 202);
    auto samples = trainer.collect_pair_samples(a, b, prof_a, prof_b, 101, 202);
    auto more = trainer.collect_pair_samples(b, b, prof_b, prof_b, 202, 202);
    samples.insert(samples.end(), more.begin(), more.end());
    return samples;
}

TEST(IncrementalTrainer, IncrementalEqualsOfflineRetrainBitExactly) {
    const std::vector<model::TrainingSample> samples = pipeline_samples();
    ASSERT_GE(samples.size(), 16u);

    const model::InterferenceModel prior = model::InterferenceModel::paper_table4();
    for (const double prior_strength : {0.0, 4.0}) {
        const online::IncrementalTrainer::Options opts{.prior_strength = prior_strength};
        online::IncrementalTrainer incremental(prior, opts);
        for (const model::TrainingSample& s : samples) incremental.add_sample(s);
        const model::InterferenceModel seq = incremental.fit();
        const model::InterferenceModel batch =
            online::IncrementalTrainer::fit_offline(samples, prior, opts);
        for (std::size_t c = 0; c < model::kCategoryCount; ++c) {
            const auto& ks = seq.coefficients(static_cast<model::Category>(c));
            const auto& kb = batch.coefficients(static_cast<model::Category>(c));
            // Bit-exact: the rank-one updates and the materialized design
            // matrix accumulate the same products in the same order.
            EXPECT_EQ(ks.alpha, kb.alpha);
            EXPECT_EQ(ks.beta, kb.beta);
            EXPECT_EQ(ks.gamma, kb.gamma);
            EXPECT_EQ(ks.rho, kb.rho);
        }
    }
}

TEST(IncrementalTrainer, AgreesWithOfflineQrFit) {
    const std::vector<model::TrainingSample> samples = pipeline_samples();

    // The offline Trainer fit (Householder QR) on the full sample set.
    model::TrainerOptions fit_opts;
    fit_opts.sample_fraction = 1.0;  // no subsampling: identical data
    const model::TrainingResult qr = model::Trainer::fit(samples, fit_opts);

    online::IncrementalTrainer incremental;  // zero prior, pure least squares
    for (const model::TrainingSample& s : samples) incremental.add_sample(s);
    const model::InterferenceModel normal = incremental.fit();

    for (std::size_t c = 0; c < model::kCategoryCount; ++c) {
        const auto& kq = qr.model.coefficients(static_cast<model::Category>(c));
        const auto& kn = normal.coefficients(static_cast<model::Category>(c));
        // Normal equations vs QR: same minimizer, different arithmetic.
        EXPECT_NEAR(kq.alpha, kn.alpha, 1e-6);
        EXPECT_NEAR(kq.beta, kn.beta, 1e-6);
        EXPECT_NEAR(kq.gamma, kn.gamma, 1e-6);
        EXPECT_NEAR(kq.rho, kn.rho, 1e-6);
    }
}

TEST(IncrementalTrainer, PriorAnchorDominatesWithoutSamples) {
    const model::InterferenceModel prior = model::InterferenceModel::paper_table4();
    online::IncrementalTrainer trainer(prior, {.prior_strength = 2.0});
    const model::InterferenceModel fit = trainer.fit();
    for (std::size_t c = 0; c < model::kCategoryCount; ++c) {
        const auto& kp = prior.coefficients(static_cast<model::Category>(c));
        const auto& kf = fit.coefficients(static_cast<model::Category>(c));
        // With zero samples the anchored normal equations return the prior.
        EXPECT_NEAR(kp.alpha, kf.alpha, 1e-12);
        EXPECT_NEAR(kp.beta, kf.beta, 1e-12);
        EXPECT_NEAR(kp.gamma, kf.gamma, 1e-12);
        EXPECT_NEAR(kp.rho, kf.rho, 1e-12);
    }
    EXPECT_THROW(online::IncrementalTrainer().fit(), std::runtime_error);
}

TEST(IncrementalTrainer, DecayAgesOutOldEvidence) {
    const std::vector<model::TrainingSample> samples = pipeline_samples();
    const std::size_t half = samples.size() / 2;

    online::IncrementalTrainer decayed;
    for (std::size_t i = 0; i < half; ++i) decayed.add_sample(samples[i]);
    decayed.decay(1e-9);  // old regime all but erased
    for (std::size_t i = half; i < samples.size(); ++i) decayed.add_sample(samples[i]);

    online::IncrementalTrainer fresh;
    for (std::size_t i = half; i < samples.size(); ++i) fresh.add_sample(samples[i]);

    const model::InterferenceModel a = decayed.fit();
    const model::InterferenceModel b = fresh.fit();
    for (std::size_t c = 0; c < model::kCategoryCount; ++c) {
        const auto& ka = a.coefficients(static_cast<model::Category>(c));
        const auto& kb = b.coefficients(static_cast<model::Category>(c));
        // Relative tolerance: the regression is near-collinear, so the
        // decayed residue of the old regime perturbs large coefficients
        // proportionally.
        const auto near = [](double x, double y) {
            EXPECT_NEAR(x, y, 1e-4 * (1.0 + std::abs(x)));
        };
        near(ka.alpha, kb.alpha);
        near(ka.beta, kb.beta);
        near(ka.gamma, kb.gamma);
        near(ka.rho, kb.rho);
    }
    EXPECT_LT(decayed.effective_weight(),
              static_cast<double>(decayed.sample_count()));
}

// ---------- adaptive policy, end to end ----------

TEST(AdaptiveSynpaPolicy, ReportsAdaptationThroughScenarioResult) {
    uarch::SimConfig cfg;
    cfg.cores = 4;
    cfg.cycles_per_quantum = 4'000;

    scenario::ScenarioSpec spec;
    spec.name = "adaptive-smoke";
    spec.process = scenario::ArrivalProcess::kPoisson;
    // Multi-phase apps so the CUSUM has real phase boundaries to find.
    spec.app_mix = {"leela_r", "gobmk", "xalancbmk_r", "mcf"};
    spec.initial_tasks = 6;
    spec.arrival_rate = 0.5;
    spec.service_quanta = 12;
    spec.horizon_quanta = 60;
    spec.seed = 9;
    const scenario::ScenarioTrace trace = scenario::build_trace(spec, cfg);

    uarch::Platform platform(cfg);
    online::AdaptiveSynpaPolicy policy(model::InterferenceModel::paper_table4());
    EXPECT_EQ(policy.name(), "synpa-adaptive");
    scenario::ScenarioRunner runner(platform, policy, trace, {.max_quanta = 3'000});
    const scenario::ScenarioResult result = runner.run();

    EXPECT_TRUE(result.completed);
    EXPECT_TRUE(result.adaptive);
    EXPECT_EQ(result.phase_changes, policy.phase_changes());
    EXPECT_EQ(result.model_refits, policy.model_refits());
    // The frozen twin of the same run reports no adaptation.
    uarch::Platform frozen_platform(cfg);
    core::SynpaPolicy frozen(model::InterferenceModel::paper_table4());
    scenario::ScenarioRunner frozen_runner(frozen_platform, frozen, trace,
                                           {.max_quanta = 3'000});
    EXPECT_FALSE(frozen_runner.run().adaptive);
}

}  // namespace
