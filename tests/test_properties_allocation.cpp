// Property/fuzz suite for allocation integrity on the multi-chip platform.
//
// Generates ~200 seeded random scenario specs across SMT widths 1/2/4,
// 1-4 chips and 1-3 cores per chip, runs each under a randomly drawn
// policy, and asserts *after every quantum* (through the runners'
// on_quantum hook) that:
//   * no task is lost or duplicated — every bound task occupies exactly
//     one SMT slot platform-wide,
//   * every core group respects the configured smt_ways,
//   * occupancy never exceeds the chips x cores x smt_ways capacity, and
//   * every bound core id is valid for the topology (slot-level state and
//     the placement map agree).
// After the run, task accounting must balance: each planned task finishes
// at most once, the completed count matches the records, and nothing stays
// bound to the platform.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/synpa_policy.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "sched/baselines.hpp"
#include "uarch/platform.hpp"

namespace {

using namespace synpa;

struct FuzzCase {
    uarch::SimConfig cfg;
    scenario::ScenarioSpec spec;
    int policy_kind = 0;
    std::uint64_t policy_seed = 1;
};

FuzzCase draw_case(std::uint64_t seed) {
    common::Rng rng(seed, 0xF022);
    FuzzCase c;
    const int widths[] = {1, 2, 4};
    c.cfg.smt_ways = widths[rng.below(3)];
    c.cfg.num_chips = 1 + static_cast<int>(rng.below(4));
    c.cfg.cores = 1 + static_cast<int>(rng.below(3));
    c.cfg.cycles_per_quantum = 1'000;

    const double capacity = static_cast<double>(c.cfg.num_chips) *
                            static_cast<double>(c.cfg.cores) *
                            static_cast<double>(c.cfg.smt_ways);
    c.spec.name = "fuzz-" + std::to_string(seed);
    c.spec.process = scenario::ArrivalProcess::kPoisson;
    c.spec.app_mix = {"mcf", "leela_r", "gobmk", "nab_r", "bwaves"};
    c.spec.service_quanta = 3 + rng.below(4);
    c.spec.horizon_quanta = 12 + rng.below(10);
    c.spec.seed = seed * 2 + 1;
    // Loads from comfortable under-subscription to queueing overload.
    const double load = 0.4 + rng.uniform(0.0, 0.9);
    c.spec.arrival_rate =
        load * capacity / static_cast<double>(c.spec.service_quanta);
    c.spec.initial_tasks =
        static_cast<std::uint64_t>(rng.below(static_cast<std::uint64_t>(capacity) + 1));

    c.policy_kind = static_cast<int>(rng.below(4));
    c.policy_seed = seed + 17;
    return c;
}

std::unique_ptr<sched::AllocationPolicy> make_policy(const FuzzCase& c) {
    switch (c.policy_kind) {
        case 0: return std::make_unique<sched::LinuxPolicy>();
        case 1: return std::make_unique<sched::RandomPolicy>(c.policy_seed);
        case 2:
            return std::make_unique<sched::SamplingPolicy>(
                c.policy_seed, sched::SamplingPolicy::Options{.explore_quanta = 2,
                                                              .exploit_quanta = 5});
        default:
            return std::make_unique<core::SynpaPolicy>(
                model::InterferenceModel::paper_table4());
    }
}

TEST(AllocationProperties, RandomScenariosKeepEveryInvariantEveryQuantum) {
    constexpr std::uint64_t kCases = 200;
    std::uint64_t quanta_checked = 0;
    for (std::uint64_t seed = 0; seed < kCases; ++seed) {
        const FuzzCase c = draw_case(seed);
        SCOPED_TRACE("case " + std::to_string(seed) + ": chips=" +
                     std::to_string(c.cfg.num_chips) + " cores=" +
                     std::to_string(c.cfg.cores) + " ways=" +
                     std::to_string(c.cfg.smt_ways) + " policy=" +
                     std::to_string(c.policy_kind));
        const scenario::ScenarioTrace trace = scenario::build_trace(c.spec, c.cfg);

        uarch::Platform platform(c.cfg);
        const auto policy = make_policy(c);
        scenario::ScenarioRunner::Options opts;
        opts.max_quanta = 2'000;
        opts.record_timeline = false;
        opts.on_quantum = [&](const uarch::Platform& p) {
            // Throws (failing the test with the violation text) on any
            // duplicated task, overfull core, invalid core id, or
            // slot/placement disagreement.
            uarch::validate_platform(p);
            ASSERT_LE(p.bound_tasks().size(),
                      static_cast<std::size_t>(p.hw_contexts()));
            ++quanta_checked;
        };
        scenario::ScenarioRunner runner(platform, *policy, trace, opts);
        const scenario::ScenarioResult result = runner.run();

        // Task conservation across the whole run.
        std::size_t completed = 0;
        for (const scenario::TaskRecord& rec : result.tasks) {
            if (!rec.completed) continue;
            ++completed;
            EXPECT_GT(rec.task_id, 0);
            EXPECT_GE(rec.finish_quantum, 0.0);
            EXPECT_GE(rec.chip_id, 0);
            EXPECT_LT(rec.chip_id, c.cfg.num_chips);
            EXPECT_GE(rec.admit_quantum, rec.arrival_quantum);
        }
        EXPECT_EQ(completed, result.completed_tasks);
        if (result.completed) {
            EXPECT_EQ(completed, result.tasks.size());
        }
        EXPECT_EQ(platform.bound_tasks().size(), 0u);  // nothing leaks
        EXPECT_GE(result.migrations, result.cross_chip_migrations);
    }
    // The hook must really have run (the suite is pointless otherwise).
    EXPECT_GT(quanta_checked, kCases * 5);
}

}  // namespace
