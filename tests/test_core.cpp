// Tests for the SYNPA core: the runtime estimator (inversion + EMA +
// transfer across relaunches) and the policy's pair selection.
#include <gtest/gtest.h>

#include <set>

#include "core/estimator.hpp"
#include "core/synpa_policy.hpp"
#include "model/interference_model.hpp"
#include "sched/policy.hpp"

namespace {

using namespace synpa;
using namespace synpa::core;

model::CategoryBreakdown breakdown_from_fractions(const model::CategoryVector& f,
                                                  std::uint64_t cycles = 10'000) {
    model::CategoryBreakdown b;
    b.cycles = cycles;
    for (std::size_t c = 0; c < model::kCategoryCount; ++c)
        b.categories[c] = f[c] * static_cast<double>(cycles);
    return b;
}

sched::TaskObservation make_obs(int task, int core, int partner,
                                const model::CategoryVector& fractions) {
    sched::TaskObservation o;
    o.task_id = task;
    o.core = core;
    o.corunner_task_id = partner;
    if (partner >= 0) o.corunner_task_ids.push_back(partner);
    o.smt_ways = 2;
    o.total_cores = 2;  // the tests' observations describe a 2-core chip
    o.breakdown = breakdown_from_fractions(fractions);
    return o;
}

TEST(Estimator, UnknownTaskHasUniformPrior) {
    const SynpaEstimator est(model::InterferenceModel::paper_table4());
    const auto e = est.estimate(42);
    EXPECT_NEAR(e[0], 1.0 / 3.0, 1e-12);
    EXPECT_FALSE(est.has_estimate(42));
}

TEST(Estimator, SoloObservationIsTakenDirectly) {
    SynpaEstimator est(model::InterferenceModel::paper_table4());
    const model::CategoryVector f = {0.5, 0.2, 0.3};
    const std::vector<sched::TaskObservation> obs = {make_obs(1, 0, -1, f)};
    est.observe(obs);
    ASSERT_TRUE(est.has_estimate(1));
    const auto e = est.estimate(1);
    for (std::size_t c = 0; c < 3; ++c) EXPECT_NEAR(e[c], f[c], 1e-9);
}

TEST(Estimator, PairObservationInvertsForBothTasks) {
    const model::InterferenceModel m = model::InterferenceModel::paper_table4();
    SynpaEstimator::Options opts;
    opts.ema_alpha = 1.0;  // no smoothing: compare against exact inversion
    SynpaEstimator est(m, opts);

    // Forward-model known isolated vectors, feed the fractions as a pair.
    const model::CategoryVector st_a = {0.5, 0.3, 0.2};
    const model::CategoryVector st_b = {0.2, 0.1, 0.7};
    const auto smt_a = m.predict(st_a, st_b);
    const auto smt_b = m.predict(st_b, st_a);
    const double sa = smt_a[0] + smt_a[1] + smt_a[2];
    const double sb = smt_b[0] + smt_b[1] + smt_b[2];
    const std::vector<sched::TaskObservation> obs = {
        make_obs(1, 0, 2, {smt_a[0] / sa, smt_a[1] / sa, smt_a[2] / sa}),
        make_obs(2, 0, 1, {smt_b[0] / sb, smt_b[1] / sb, smt_b[2] / sb})};
    est.observe(obs);
    const auto ea = est.estimate(1);
    const auto eb = est.estimate(2);
    // The paper model is strongly co-runner-dominated (backend gamma > beta),
    // so the inverse is not unique; require a *consistent* solution — the
    // forward model applied to the estimates must reproduce the observed
    // SMT fractions.
    const auto back_a = m.predict(ea, eb);
    const auto back_b = m.predict(eb, ea);
    const double ba = back_a[0] + back_a[1] + back_a[2];
    const double bb = back_b[0] + back_b[1] + back_b[2];
    for (std::size_t c = 0; c < 3; ++c) {
        EXPECT_NEAR(back_a[c] / ba, smt_a[c] / sa, 0.05);
        EXPECT_NEAR(back_b[c] / bb, smt_b[c] / sb, 0.05);
    }
}

TEST(Estimator, EmaBlendsTowardNewObservations) {
    SynpaEstimator::Options opts;
    opts.ema_alpha = 0.5;
    SynpaEstimator est(model::InterferenceModel::paper_table4(), opts);
    est.observe(std::vector<sched::TaskObservation>{make_obs(1, 0, -1, {1.0, 0.0, 0.0})});
    est.observe(std::vector<sched::TaskObservation>{make_obs(1, 0, -1, {0.0, 1.0, 0.0})});
    const auto e = est.estimate(1);
    EXPECT_NEAR(e[0], 0.5, 1e-9);
    EXPECT_NEAR(e[1], 0.5, 1e-9);
}

TEST(Estimator, TransferMovesEstimateAcrossRelaunch) {
    SynpaEstimator est(model::InterferenceModel::paper_table4());
    est.observe(std::vector<sched::TaskObservation>{make_obs(1, 0, -1, {0.6, 0.2, 0.2})});
    est.transfer(1, 9);
    EXPECT_FALSE(est.has_estimate(1));
    ASSERT_TRUE(est.has_estimate(9));
    EXPECT_NEAR(est.estimate(9)[0], 0.6, 1e-9);
    est.transfer(123, 456);  // unknown source: harmless no-op
    EXPECT_FALSE(est.has_estimate(456));
}

TEST(Estimator, PairWeightSymmetricSum) {
    SynpaEstimator est(model::InterferenceModel::paper_table4());
    est.observe(std::vector<sched::TaskObservation>{make_obs(1, 0, -1, {0.6, 0.2, 0.2}),
                                                    make_obs(2, 1, -1, {0.1, 0.1, 0.8})});
    EXPECT_DOUBLE_EQ(est.pair_weight(1, 2), est.pair_weight(2, 1));
    EXPECT_GT(est.pair_weight(1, 2), 2.0);  // two slowdowns, each >= ~1
}

TEST(SynpaPolicyTest, NamesReflectSelector) {
    const model::InterferenceModel m = model::InterferenceModel::paper_table4();
    EXPECT_EQ(SynpaPolicy(m).name(), "synpa");
    SynpaPolicy::Options dp;
    dp.selector = PairSelector::kSubsetDp;
    EXPECT_EQ(SynpaPolicy(m, dp).name(), "synpa-dp");
    SynpaPolicy::Options gr;
    gr.selector = PairSelector::kGreedy;
    EXPECT_EQ(SynpaPolicy(m, gr).name(), "synpa-greedy");
}

TEST(SynpaPolicyTest, SelectorsAgreeOnClearCutMatrix) {
    const model::InterferenceModel m = model::InterferenceModel::paper_table4();
    matching::WeightMatrix w(4);
    w.set(0, 1, 1.0);
    w.set(2, 3, 1.0);
    w.set(0, 2, 9.0);
    w.set(0, 3, 9.0);
    w.set(1, 2, 9.0);
    w.set(1, 3, 9.0);
    for (PairSelector sel :
         {PairSelector::kBlossom, PairSelector::kSubsetDp, PairSelector::kGreedy}) {
        SynpaPolicy::Options opts;
        opts.selector = sel;
        const SynpaPolicy policy(m, opts);
        const auto pairs = policy.select_pairs(w);
        ASSERT_EQ(pairs.size(), 2u);
        EXPECT_NEAR(matching::matching_weight(w, pairs), 2.0, 1e-9);
    }
}

TEST(SynpaPolicyTest, ReallocationIsAValidPermutation) {
    const model::InterferenceModel m = model::InterferenceModel::paper_table4();
    SynpaPolicy policy(m);
    // Mixed workload observations: two frontend-ish, two backend-ish tasks.
    std::vector<sched::TaskObservation> obs = {
        make_obs(1, 0, 2, {0.3, 0.5, 0.2}), make_obs(2, 0, 1, {0.15, 0.05, 0.8}),
        make_obs(3, 1, 4, {0.3, 0.5, 0.2}), make_obs(4, 1, 3, {0.15, 0.05, 0.8})};
    const sched::CoreAllocation a = policy.reallocate(obs);
    ASSERT_EQ(a.size(), 2u);
    std::set<int> seen;
    for (const sched::CoreGroup& g : a) {
        EXPECT_EQ(g.occupancy(), 2);
        for (int id : g.members()) seen.insert(id);
    }
    EXPECT_EQ(seen, (std::set<int>{1, 2, 3, 4}));
}

TEST(SynpaPolicyTest, OnTaskReplacedKeepsEstimatorContinuity) {
    const model::InterferenceModel m = model::InterferenceModel::paper_table4();
    SynpaPolicy policy(m);
    policy.on_task_replaced(1, 2);  // must not throw even for unseen ids
    SUCCEED();
}

}  // namespace
