// Property tests over the whole 28-application suite: per-application
// invariants that must hold for any profile (counter identities, IPC
// bounds, SMT costs), parameterized so every application is checked
// individually.
#include <gtest/gtest.h>

#include "apps/instance.hpp"
#include "apps/spec_suite.hpp"
#include "model/categories.hpp"
#include "model/trainer.hpp"
#include "uarch/chip.hpp"

namespace {

using namespace synpa;

uarch::SimConfig prop_config() {
    uarch::SimConfig cfg;
    cfg.cycles_per_quantum = 4'000;
    return cfg;
}

std::vector<std::string> suite_names() {
    std::vector<std::string> names;
    for (const auto& app : apps::spec_suite()) names.push_back(app.name);
    return names;
}

class PerApplication : public ::testing::TestWithParam<std::string> {};

TEST_P(PerApplication, IsolatedCounterIdentity) {
    uarch::SimConfig cfg = prop_config();
    cfg.cores = 1;
    uarch::Chip chip(cfg);
    apps::AppInstance task(1, apps::find_app(GetParam()), 3);
    chip.bind(task, {.core = 0, .slot = 0});
    for (int q = 0; q < 6; ++q) chip.run_quantum();

    const auto b = model::characterize(task.counters(), cfg.dispatch_width);
    // The three categories tile the execution exactly.
    EXPECT_NEAR(b.categories[0] + b.categories[1] + b.categories[2],
                static_cast<double>(b.cycles), 1e-6);
    // Stall counters never overlap past total cycles.
    EXPECT_LE(task.counters().value(pmu::Event::kStallFrontend) +
                  task.counters().value(pmu::Event::kStallBackend),
              task.counters().value(pmu::Event::kCpuCycles));
    // INST_SPEC includes wrong-path work, so it can only exceed retirement.
    EXPECT_GE(task.counters().value(pmu::Event::kInstSpec),
              task.counters().value(pmu::Event::kInstRetired) -
                  0);  // spec >= retired by construction
    EXPECT_EQ(task.counters().value(pmu::Event::kInstRetired), task.insts_retired());
}

TEST_P(PerApplication, IsolatedIpcWithinDispatchBounds) {
    const model::IsolatedProfile prof =
        model::profile_isolated(apps::find_app(GetParam()), prop_config(), 8, 5);
    EXPECT_GT(prof.ipc(), 0.05);
    EXPECT_LE(prof.ipc(), 4.0);  // dispatch width is the hard ceiling
}

TEST_P(PerApplication, SmtWithSelfCostsThroughput) {
    // Running two instances of the same application on one core must cost
    // each of them throughput relative to isolated execution.
    uarch::SimConfig cfg = prop_config();
    cfg.cores = 1;
    const model::IsolatedProfile prof =
        model::profile_isolated(apps::find_app(GetParam()), cfg, 10, 7);

    uarch::Chip chip(cfg);
    apps::AppInstance a(1, apps::find_app(GetParam()), 7);
    apps::AppInstance b(2, apps::find_app(GetParam()), 8);
    chip.bind(a, {.core = 0, .slot = 0});
    chip.bind(b, {.core = 0, .slot = 1});
    for (int q = 0; q < 10; ++q) chip.run_quantum();

    const double ipc_a = model::characterize(a.counters(), cfg.dispatch_width).ipc();
    EXPECT_LT(ipc_a, prof.ipc() * 1.01) << "SMT should not beat isolated";
    // And the slowdown stays within the physically sensible range.
    EXPECT_GT(ipc_a, prof.ipc() * 0.2) << "SMT should not be 5x slower either";
}

INSTANTIATE_TEST_SUITE_P(AllSuiteApps, PerApplication, ::testing::ValuesIn(suite_names()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                             std::string name = info.param;
                             for (char& c : name)
                                 if (c == '-' || c == '.') c = '_';
                             return name;
                         });

}  // namespace
