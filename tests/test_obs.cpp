// Flight-recorder observability contracts (src/obs):
//
//  1. Determinism — a traced run is bit-identical to an untraced run (same
//     RunResult / ScenarioResult signatures) for SMT widths {2, 4}, chips
//     {1, 4}, and SYNPA_SIM_THREADS {1, 4}: tracing only reads simulated
//     state, wall-clock never feeds back.
//  2. Structure — traced runs carry the expected event stream (quantum
//     boundaries, admissions, retirements, allocations, migrations) with
//     monotone quantum stamps, and the event mask filters per kind.
//  3. Primitives — the drop-oldest Ring, the log2-bucketed histogram
//     (bucket edges, percentiles, merge-of-shards associativity), and the
//     registry's stable instrument identity.
//  4. Export — the Chrome-trace JSON and metrics CSV contain the fields
//     tools/trace_summary.py --validate checks for.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "model/interference_model.hpp"
#include "obs/export.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "sched/registry.hpp"
#include "sched/thread_manager.hpp"
#include "uarch/platform.hpp"

namespace {

using namespace synpa;

// ------------------------------------------------------------------ ring --

TEST(Ring, DropsOldestWhenFull) {
    obs::Ring<int> ring(3);
    for (int i = 1; i <= 5; ++i) ring.push(i);
    EXPECT_EQ(ring.size(), 3u);
    EXPECT_EQ(ring.dropped(), 2u);
    EXPECT_EQ(ring.at(0), 3);  // oldest retained
    EXPECT_EQ(ring.at(2), 5);
}

TEST(Ring, DrainReturnsOldestFirstAndResets) {
    obs::Ring<int> ring(4);
    for (int i = 0; i < 6; ++i) ring.push(i);
    const std::vector<int> got = ring.drain();
    EXPECT_EQ(got, (std::vector<int>{2, 3, 4, 5}));
    EXPECT_TRUE(ring.empty());
    ring.push(9);
    EXPECT_EQ(ring.at(0), 9);
}

// ------------------------------------------------------------- histogram --

TEST(LogHistogram, EmptyReportsZeros) {
    obs::LogHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
}

TEST(LogHistogram, SingleSampleIsEveryPercentile) {
    obs::LogHistogram h;
    h.record(37);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.min(), 37u);
    EXPECT_EQ(h.max(), 37u);
    EXPECT_DOUBLE_EQ(h.mean(), 37.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 37.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 37.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 37.0);
}

TEST(LogHistogram, PercentileBoundsAreExactExtrema) {
    obs::LogHistogram h;
    for (const std::uint64_t v : {3u, 900u, 17u, 44u, 260u}) h.record(v);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 3.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 900.0);
    const double p50 = h.percentile(0.5);
    EXPECT_GE(p50, 3.0);
    EXPECT_LE(p50, 900.0);
}

TEST(LogHistogram, BucketEdges) {
    // bit_width buckets: 0 -> bucket 0, [2^(b-1), 2^b - 1] -> bucket b.
    obs::LogHistogram h;
    h.record(0);
    h.record(1);    // bucket 1
    h.record(2);    // bucket 2 low edge
    h.record(3);    // bucket 2 high edge
    h.record(4);    // bucket 3 low edge
    h.record(7);    // bucket 3 high edge
    h.record(8);    // bucket 4
    const auto buckets = h.buckets();
    EXPECT_EQ(buckets[0], 1u);
    EXPECT_EQ(buckets[1], 1u);
    EXPECT_EQ(buckets[2], 2u);
    EXPECT_EQ(buckets[3], 2u);
    EXPECT_EQ(buckets[4], 1u);
    EXPECT_EQ(h.count(), 7u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 8u);
}

TEST(LogHistogram, MergeOfShardsMatchesSerial) {
    // Three "shards" recording disjoint streams, folded in two different
    // orders, must agree with one histogram fed serially — associativity is
    // what lets per-chip histograms merge after the barrier.
    std::vector<std::uint64_t> stream;
    std::uint64_t x = 1;
    for (int i = 0; i < 300; ++i) {
        x = x * 2862933555777941757ull + 3037000493ull;  // any deterministic walk
        stream.push_back(x >> 40);
    }
    obs::LogHistogram serial;
    obs::LogHistogram shard[3];
    for (std::size_t i = 0; i < stream.size(); ++i) {
        serial.record(stream[i]);
        shard[i % 3].record(stream[i]);
    }
    obs::LogHistogram left;  // (s0 + s1) + s2
    left.merge(shard[0]);
    left.merge(shard[1]);
    left.merge(shard[2]);
    obs::LogHistogram right;  // s2 + (s1 + s0)
    obs::LogHistogram inner;
    inner.merge(shard[1]);
    inner.merge(shard[0]);
    right.merge(shard[2]);
    right.merge(inner);

    for (const obs::LogHistogram* merged : {&left, &right}) {
        EXPECT_EQ(merged->count(), serial.count());
        EXPECT_EQ(merged->min(), serial.min());
        EXPECT_EQ(merged->max(), serial.max());
        EXPECT_DOUBLE_EQ(merged->mean(), serial.mean());
        for (const double p : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0})
            EXPECT_DOUBLE_EQ(merged->percentile(p), serial.percentile(p)) << "p=" << p;
    }
}

// -------------------------------------------------------------- registry --

TEST(MetricsRegistry, InstrumentsKeepIdentityAcrossLookups) {
    obs::MetricsRegistry reg;
    obs::Counter& c = reg.counter("quanta");
    c.add(3);
    // Registering more instruments must not invalidate the reference.
    for (int i = 0; i < 100; ++i) reg.counter("c" + std::to_string(i));
    obs::Counter& again = reg.counter("quanta");
    EXPECT_EQ(&again, &c);
    EXPECT_EQ(again.value(), 3u);
    EXPECT_EQ(reg.find_counter("quanta"), &c);
    EXPECT_EQ(reg.find_counter("never"), nullptr);
}

TEST(MetricsRegistry, KindMismatchThrows) {
    obs::MetricsRegistry reg;
    reg.counter("x");
    EXPECT_THROW(reg.gauge("x"), std::logic_error);
    EXPECT_THROW(reg.histogram("x"), std::logic_error);
    EXPECT_EQ(reg.find_gauge("x"), nullptr);
}

TEST(MetricsRegistry, CsvWalksRegistrationOrder) {
    obs::MetricsRegistry reg;
    reg.counter("b").add(2);
    reg.gauge("a").set(1.5);
    reg.histogram("h").record(10);
    std::ostringstream os;
    reg.write_csv(os);
    const std::string csv = os.str();
    EXPECT_EQ(csv.find("name,kind,"), 0u);
    EXPECT_LT(csv.find("b,counter"), csv.find("a,gauge"));
    EXPECT_LT(csv.find("a,gauge"), csv.find("h,histogram"));
}

// ------------------------------------------------------------ event mask --

TEST(TraceConfig, EventMaskGroups) {
    const std::uint32_t quantum_bits = obs::parse_event_mask("quantum");
    EXPECT_TRUE(quantum_bits & (1u << static_cast<unsigned>(obs::EventKind::kQuantumBegin)));
    EXPECT_TRUE(quantum_bits & (1u << static_cast<unsigned>(obs::EventKind::kQuantumEnd)));
    EXPECT_FALSE(quantum_bits & (1u << static_cast<unsigned>(obs::EventKind::kMigration)));
    EXPECT_EQ(obs::parse_event_mask("all"), 0xFFFF'FFFFu);
    const std::uint32_t combo = obs::parse_event_mask("migration, task");
    EXPECT_TRUE(combo & (1u << static_cast<unsigned>(obs::EventKind::kMigration)));
    EXPECT_TRUE(combo & (1u << static_cast<unsigned>(obs::EventKind::kAdmission)));
    EXPECT_TRUE(combo & (1u << static_cast<unsigned>(obs::EventKind::kRetirement)));
    EXPECT_THROW(obs::parse_event_mask("quantum,bogus"), std::runtime_error);
}

TEST(TraceConfig, DeriveTracePathInsertsTag) {
    EXPECT_EQ(obs::derive_trace_path("grid.json", "c0s1p2r0"), "grid-c0s1p2r0.json");
    EXPECT_EQ(obs::derive_trace_path("trace", "t1"), "trace-t1");
}

// ----------------------------------------------------------- determinism --

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

uarch::SimConfig shape_config(int chips, int smt_ways, int sim_threads) {
    uarch::SimConfig cfg;
    cfg.cores = 2;
    cfg.smt_ways = smt_ways;
    cfg.num_chips = chips;
    cfg.sim_threads = sim_threads;
    cfg.cycles_per_quantum = 2'000;
    return cfg;
}

sched::PolicyConfig policy_config() {
    sched::PolicyConfig config;
    config.model = std::make_shared<const model::InterferenceModel>(
        model::InterferenceModel::paper_table4());
    config.seed = 17;
    return config;
}

std::vector<sched::TaskSpec> closed_specs(int count) {
    const std::vector<std::string> apps = {"mcf",   "leela_r", "nab_r", "bwaves",
                                           "gobmk", "hmmer",   "lbm_r", "astar"};
    std::vector<sched::TaskSpec> specs;
    specs.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i)
        specs.push_back({.app_name = apps[static_cast<std::size_t>(i) % apps.size()],
                         .seed = static_cast<std::uint64_t>(i + 1),
                         .target_insts = 12'000,
                         .isolated_ipc = 1.0});
    return specs;
}

std::string signature(const sched::RunResult& r) {
    std::string sig = std::to_string(r.quanta_executed) + "/" +
                      std::to_string(r.migrations) + "/" +
                      std::to_string(r.cross_chip_migrations) + "/" +
                      std::to_string(bits(r.turnaround_quanta));
    for (const sched::TaskOutcome& out : r.outcomes)
        sig += ";" + std::to_string(out.slot_index) + ":" +
               std::to_string(bits(out.finish_quantum)) + ":" +
               std::to_string(bits(out.ipc_smt)) + ":" + std::to_string(out.final_core);
    return sig;
}

std::string signature(const scenario::ScenarioResult& r) {
    std::string sig = std::to_string(r.quanta_executed) + "/" +
                      std::to_string(r.migrations) + "/" +
                      std::to_string(r.cross_chip_migrations) + "/" +
                      std::to_string(r.completed_tasks);
    for (const scenario::TaskRecord& rec : r.tasks)
        sig += ";" + std::to_string(rec.task_id) + ":" +
               std::to_string(rec.admit_quantum) + ":" +
               std::to_string(bits(rec.finish_quantum)) + ":" +
               std::to_string(bits(rec.slowdown)) + ":" + std::to_string(rec.chip_id);
    return sig;
}

obs::TraceConfig memory_trace_config() {
    obs::TraceConfig cfg;
    cfg.enabled = true;  // no file: record in memory only
    return cfg;
}

std::string run_closed(int chips, int smt_ways, int sim_threads, obs::Tracer* tracer) {
    const uarch::SimConfig cfg = shape_config(chips, smt_ways, sim_threads);
    uarch::Platform platform(cfg);
    const auto policy = sched::make_policy("synpa", policy_config());
    const auto specs = closed_specs(platform.hw_contexts());
    sched::ThreadManager manager(
        platform, *policy, specs,
        {.max_quanta = 400, .record_traces = false, .tracer = tracer});
    return signature(manager.run());
}

TEST(TracedDeterminism, ClosedRunsMatchUntracedAtEveryShape) {
    for (const int smt_ways : {2, 4}) {
        for (const int chips : {1, 4}) {
            const std::string want = run_closed(chips, smt_ways, 1, nullptr);
            for (const int threads : {1, 4}) {
                obs::Tracer tracer(memory_trace_config());
                EXPECT_EQ(run_closed(chips, smt_ways, threads, &tracer), want)
                    << "chips=" << chips << " ways=" << smt_ways
                    << " threads=" << threads;
                EXPECT_GT(tracer.events().size(), 0u);
                EXPECT_GT(tracer.samples().size(), 0u);
            }
        }
    }
}

scenario::ScenarioSpec open_spec(int initial_tasks = 8) {
    scenario::ScenarioSpec spec;
    spec.name = "obs-open";
    spec.process = scenario::ArrivalProcess::kPoisson;
    spec.app_mix = {"mcf", "leela_r", "gobmk", "nab_r"};
    spec.initial_tasks = initial_tasks;
    spec.arrival_rate = 0.8;
    spec.service_quanta = 5;
    spec.horizon_quanta = 25;
    spec.seed = 9;
    return spec;
}

TEST(TracedDeterminism, OpenScenarioMatchesUntracedAtEveryShape) {
    for (const int smt_ways : {2, 4}) {
        for (const int chips : {1, 4}) {
            const uarch::SimConfig base = shape_config(chips, smt_ways, 1);
            const scenario::ScenarioTrace trace = scenario::build_trace(open_spec(), base);

            std::string want;
            {
                uarch::Platform platform(base);
                const auto policy = sched::make_policy("synpa", policy_config());
                scenario::ScenarioRunner runner(
                    platform, *policy, trace,
                    {.max_quanta = 400, .record_timeline = false});
                want = signature(runner.run());
            }
            for (const int threads : {1, 4}) {
                const uarch::SimConfig cfg = shape_config(chips, smt_ways, threads);
                uarch::Platform platform(cfg);
                const auto policy = sched::make_policy("synpa", policy_config());
                obs::Tracer tracer(memory_trace_config());
                scenario::ScenarioRunner runner(platform, *policy, trace,
                                                {.max_quanta = 400,
                                                 .record_timeline = false,
                                                 .tracer = &tracer});
                EXPECT_EQ(signature(runner.run()), want)
                    << "chips=" << chips << " ways=" << smt_ways
                    << " threads=" << threads;
                EXPECT_GT(tracer.events().size(), 0u);
            }
        }
    }
}

TEST(TracedDeterminism, ChipEventStreamIdenticalAcrossThreadCounts) {
    // The per-chip rings merge after the barrier in ascending chip order,
    // so the full event stream — not just the run result — must be
    // identical at every SYNPA_SIM_THREADS.
    const auto event_stream = [](int threads) {
        obs::Tracer tracer(memory_trace_config());
        run_closed(4, 2, threads, &tracer);
        std::string s;
        for (std::size_t i = 0; i < tracer.events().size(); ++i) {
            const obs::TraceEvent& e = tracer.events().at(i);
            s += std::string(obs::event_kind_name(e.kind)) + ":" +
                 std::to_string(e.quantum) + ":" + std::to_string(e.chip) + ":" +
                 std::to_string(e.task) + ":" + std::to_string(e.core) + ";";
        }
        return s;
    };
    const std::string serial = event_stream(1);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(event_stream(4), serial);
}

// ------------------------------------------------------- event structure --

TEST(TraceEvents, ClosedRunEmitsExpectedKindsWithMonotoneQuanta) {
    obs::Tracer tracer(memory_trace_config());
    run_closed(2, 2, 1, &tracer);

    std::array<int, obs::kEventKindCount> counts{};
    std::uint64_t last_begin = 0;
    bool first_begin = true;
    for (std::size_t i = 0; i < tracer.events().size(); ++i) {
        const obs::TraceEvent& e = tracer.events().at(i);
        counts[static_cast<std::size_t>(e.kind)]++;
        if (e.kind == obs::EventKind::kQuantumBegin) {
            if (!first_begin) EXPECT_GT(e.quantum, last_begin);
            last_begin = e.quantum;
            first_begin = false;
        }
    }
    EXPECT_GT(counts[static_cast<std::size_t>(obs::EventKind::kQuantumBegin)], 0);
    EXPECT_GT(counts[static_cast<std::size_t>(obs::EventKind::kQuantumEnd)], 0);
    EXPECT_GT(counts[static_cast<std::size_t>(obs::EventKind::kAllocation)], 0);
    // Finished tasks relaunch in the closed loop: admissions + retirements.
    EXPECT_GT(counts[static_cast<std::size_t>(obs::EventKind::kRetirement)], 0);
    EXPECT_GT(counts[static_cast<std::size_t>(obs::EventKind::kAdmission)], 0);

    // The registry aggregates alongside the ring.
    const obs::Counter* quanta = tracer.metrics().find_counter("quanta");
    ASSERT_NE(quanta, nullptr);
    EXPECT_GT(quanta->value(), 0u);
    ASSERT_NE(tracer.metrics().find_histogram("decide_ns"), nullptr);
    EXPECT_GT(tracer.metrics().find_histogram("decide_ns")->count(), 0u);
}

TEST(TraceEvents, EventMaskFiltersKinds) {
    obs::TraceConfig cfg = memory_trace_config();
    cfg.event_mask = obs::parse_event_mask("migration");
    obs::Tracer tracer(cfg);
    run_closed(2, 2, 1, &tracer);
    for (std::size_t i = 0; i < tracer.events().size(); ++i)
        EXPECT_EQ(tracer.events().at(i).kind, obs::EventKind::kMigration);
    // Samples and metrics still collect — the mask filters events only.
    EXPECT_GT(tracer.samples().size(), 0u);
}

TEST(TraceEvents, DisabledTracerRecordsNothing) {
    obs::TraceConfig cfg;  // enabled = false
    obs::Tracer tracer(cfg);
    run_closed(2, 2, 1, &tracer);
    EXPECT_EQ(tracer.events().size(), 0u);
    EXPECT_EQ(tracer.samples().size(), 0u);
    EXPECT_EQ(tracer.metrics().size(), 0u);
}

TEST(TraceEvents, CapacityBoundsRetainedEvents) {
    obs::TraceConfig cfg = memory_trace_config();
    cfg.capacity = 32;
    obs::Tracer tracer(cfg);
    run_closed(2, 2, 1, &tracer);
    EXPECT_LE(tracer.events().size(), 32u);
    EXPECT_GT(tracer.dropped_events(), 0u);
}

// ---------------------------------------------------------------- export --

TEST(TraceExport, ChromeTraceCarriesRequiredFields) {
    obs::Tracer tracer(memory_trace_config());
    run_closed(2, 2, 1, &tracer);

    std::ostringstream os;
    obs::write_chrome_trace(os, tracer);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);   // quantum slices
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);   // counters
    EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);   // process names
    EXPECT_NE(json.find("\"pid\":"), std::string::npos);
    EXPECT_NE(json.find("\"ts\":"), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"quantum\""), std::string::npos);
    EXPECT_NE(json.find("policy_wall_us"), std::string::npos);

    std::ostringstream csv_os;
    obs::write_metrics_csv(csv_os, tracer);
    const std::string csv = csv_os.str();
    EXPECT_EQ(csv.find("quantum,live,queued,utilization,migrations"), 0u);
    EXPECT_GT(std::count(csv.begin(), csv.end(), '\n'), 1);
}

TEST(TraceExport, MetricsCsvPathDerivation) {
    EXPECT_EQ(obs::metrics_csv_path("t.json"), "t.metrics.csv");
    EXPECT_EQ(obs::metrics_csv_path("trace"), "trace.metrics.csv");
}

TEST(TraceExport, LargeScenarioTraceExportsCleanly) {
    // A 512-context open scenario (4 chips x 64 cores x 2-way SMT): the
    // trace must export without overflow or quadratic blowup, with every
    // quantum slice monotone — the shape tools/trace_summary.py --validate
    // checks on the CI artifact.
    uarch::SimConfig cfg;
    cfg.cores = 64;
    cfg.smt_ways = 2;
    cfg.num_chips = 4;
    cfg.sim_threads = 2;
    cfg.cycles_per_quantum = 1'000;
    uarch::Platform platform(cfg);
    ASSERT_EQ(platform.hw_contexts(), 512);

    scenario::ScenarioSpec spec = open_spec(256);
    spec.arrival_rate = 8.0;
    spec.horizon_quanta = 12;
    const scenario::ScenarioTrace trace = scenario::build_trace(spec, cfg);

    const auto policy = sched::make_policy("synpa", policy_config());
    obs::Tracer tracer(memory_trace_config());
    scenario::ScenarioRunner runner(
        platform, *policy, trace,
        {.max_quanta = 100, .record_timeline = false, .tracer = &tracer});
    runner.run();

    EXPECT_GT(tracer.events().size(), 100u);
    std::ostringstream os;
    obs::write_chrome_trace(os, tracer);
    EXPECT_GT(os.str().size(), 10'000u);
}

}  // namespace
