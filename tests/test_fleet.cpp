// Tests for the fleet serving layer (src/fleet/): SLO-class sampling in
// scenario traces, the fleet-policy registry (lookup, errors, and a
// parameterized sweep running *every* registered fleet policy), priority
// preemption semantics, pinned SLO-metric arithmetic, and the determinism
// contract — bit-identical fleet runs at every SYNPA_SIM_THREADS x
// fleet-thread combination, pinned the way test_parallel_engine.cpp pins a
// single node.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "fleet/metrics.hpp"
#include "fleet/policy.hpp"
#include "fleet/runner.hpp"
#include "model/interference_model.hpp"
#include "obs/trace.hpp"
#include "scenario/scenario.hpp"
#include "sched/registry.hpp"

namespace {

using namespace synpa;

uarch::SimConfig node_config(int chips = 1, int cores = 4, int smt_ways = 2,
                             int sim_threads = 1) {
    uarch::SimConfig cfg;
    cfg.num_chips = chips;
    cfg.cores = cores;
    cfg.smt_ways = smt_ways;
    cfg.sim_threads = sim_threads;
    cfg.cycles_per_quantum = 4'000;
    return cfg;
}

sched::PolicyConfig test_policy_config(std::uint64_t seed = 11) {
    sched::PolicyConfig config;
    config.model = std::make_shared<const model::InterferenceModel>(
        model::InterferenceModel::paper_table4());
    config.seed = seed;
    return config;
}

/// A small open scenario with both SLO classes in the mix.
scenario::ScenarioSpec fleet_spec() {
    scenario::ScenarioSpec spec;
    spec.name = "fleet-open";
    spec.process = scenario::ArrivalProcess::kPoisson;
    spec.app_mix = {"mcf", "leela_r", "gobmk", "nab_r"};
    spec.initial_tasks = 4;
    spec.arrival_rate = 0.4;
    spec.service_quanta = 5;
    spec.horizon_quanta = 24;
    spec.seed = 7;
    spec.lc_fraction = 0.35;
    return spec;
}

fleet::FleetOptions fleet_options(std::string fleet_policy, int nodes = 2) {
    fleet::FleetOptions fo;
    fo.nodes = nodes;
    fo.node_config = node_config();
    fo.node_policy = "synpa";
    fo.fleet_policy = std::move(fleet_policy);
    fo.policy_config = test_policy_config();
    fo.fleet_seed = 21;
    fo.max_quanta = 5'000;
    return fo;
}

obs::TraceConfig memory_trace_config() {
    obs::TraceConfig cfg;
    cfg.enabled = true;  // no file: record in memory only
    return cfg;
}

// ------------------------------------------------------- scenario SLO --

TEST(ScenarioSlo, SamplesBothClassesWithContracts) {
    const uarch::SimConfig cfg = node_config();
    const scenario::ScenarioSpec spec = fleet_spec();
    const scenario::ScenarioTrace a = scenario::build_trace(spec, cfg);
    const scenario::ScenarioTrace b = scenario::build_trace(spec, cfg);

    ASSERT_FALSE(a.tasks.empty());
    ASSERT_EQ(a.tasks.size(), b.tasks.size());
    std::size_t lc = 0, batch = 0;
    for (std::size_t i = 0; i < a.tasks.size(); ++i) {
        const scenario::PlannedTask& task = a.tasks[i];
        // Same seed => bit-identical SLO contract on every task.
        EXPECT_EQ(task.slo, b.tasks[i].slo);
        EXPECT_EQ(task.priority, b.tasks[i].priority);
        EXPECT_EQ(task.deadline_quantum, b.tasks[i].deadline_quantum);

        if (task.slo == scenario::SloClass::kLatencyCritical) {
            ++lc;
            EXPECT_EQ(task.priority, spec.lc_priority);
        } else {
            ++batch;
            EXPECT_EQ(task.priority, spec.batch_priority);
        }
        // Every sampled task has positive isolated IPC, so a deadline.
        EXPECT_GT(task.deadline_quantum,
                  static_cast<double>(task.arrival_quantum));
    }
    EXPECT_GT(lc, 0u) << "lc_fraction=0.35 sampled no latency-critical task";
    EXPECT_GT(batch, 0u);
}

TEST(ScenarioSlo, DedicatedStreamKeepsLegacyTracesBitIdentical) {
    const uarch::SimConfig cfg = node_config();
    scenario::ScenarioSpec legacy = fleet_spec();
    legacy.lc_fraction = 0.0;
    scenario::ScenarioSpec classed = fleet_spec();
    classed.lc_fraction = 0.7;

    const scenario::ScenarioTrace a = scenario::build_trace(legacy, cfg);
    const scenario::ScenarioTrace b = scenario::build_trace(classed, cfg);
    ASSERT_EQ(a.tasks.size(), b.tasks.size());
    for (std::size_t i = 0; i < a.tasks.size(); ++i) {
        // The SLO stream must not perturb arrivals or demand sampling.
        EXPECT_EQ(a.tasks[i].arrival_quantum, b.tasks[i].arrival_quantum);
        EXPECT_EQ(a.tasks[i].app_name, b.tasks[i].app_name);
        EXPECT_EQ(a.tasks[i].seed, b.tasks[i].seed);
        EXPECT_EQ(a.tasks[i].service_insts, b.tasks[i].service_insts);
        EXPECT_EQ(a.tasks[i].isolated_ipc, b.tasks[i].isolated_ipc);
        EXPECT_EQ(a.tasks[i].slo, scenario::SloClass::kBatch);
    }
}

TEST(ScenarioSlo, FingerprintCoversSloFields) {
    const scenario::ScenarioSpec base = fleet_spec();
    const std::uint64_t fp = scenario::scenario_fingerprint(base);

    scenario::ScenarioSpec s = base;
    s.lc_fraction = 0.5;
    EXPECT_NE(scenario::scenario_fingerprint(s), fp);
    s = base;
    s.lc_deadline_slack = 5.0;
    EXPECT_NE(scenario::scenario_fingerprint(s), fp);
    s = base;
    s.batch_deadline_slack = 12.0;
    EXPECT_NE(scenario::scenario_fingerprint(s), fp);
    s = base;
    s.lc_priority = 7;
    EXPECT_NE(scenario::scenario_fingerprint(s), fp);
    s = base;
    s.batch_priority = 1;
    EXPECT_NE(scenario::scenario_fingerprint(s), fp);
}

TEST(ScenarioSlo, InvalidSloSpecThrows) {
    const uarch::SimConfig cfg = node_config();
    scenario::ScenarioSpec spec = fleet_spec();
    spec.lc_fraction = 1.5;
    EXPECT_THROW(scenario::build_trace(spec, cfg), std::invalid_argument);
    spec = fleet_spec();
    spec.lc_deadline_slack = 0.0;
    EXPECT_THROW(scenario::build_trace(spec, cfg), std::invalid_argument);
    spec = fleet_spec();
    spec.batch_deadline_slack = -1.0;
    EXPECT_THROW(scenario::build_trace(spec, cfg), std::invalid_argument);
}

// ---------------------------------------------------- policy registry --

TEST(FleetRegistry, TableAndLookup) {
    const auto policies = fleet::registered_fleet_policies();
    ASSERT_FALSE(policies.empty());
    std::set<std::string> names;
    for (const fleet::FleetPolicyInfo& info : policies) {
        EXPECT_TRUE(names.insert(std::string(info.name)).second)
            << "duplicate registry entry: " << info.name;
        EXPECT_EQ(fleet::find_fleet_policy(info.name), &info);
        EXPECT_FALSE(info.objective.empty());
        // The fleet namespace is part of the name contract.
        EXPECT_EQ(std::string(info.name).rfind("fleet-", 0), 0u) << info.name;
    }
    EXPECT_NE(fleet::find_fleet_policy("fleet-least-loaded"), nullptr);
    EXPECT_NE(fleet::find_fleet_policy("fleet-interference-aware"), nullptr);
    EXPECT_EQ(fleet::find_fleet_policy("least-loaded"), nullptr);
}

TEST(FleetRegistry, UnknownNameThrowsWithInventory) {
    try {
        fleet::make_fleet_policy("fleet-nope", {});
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        // The message must teach the caller the valid names.
        EXPECT_NE(std::string(e.what()).find("fleet-least-loaded"),
                  std::string::npos);
    }
}

TEST(FleetRegistry, MakeInstantiatesEveryEntry) {
    for (const fleet::FleetPolicyInfo& info : fleet::registered_fleet_policies()) {
        const auto policy = fleet::make_fleet_policy(info.name, {.seed = 3});
        ASSERT_NE(policy, nullptr) << info.name;
        EXPECT_EQ(policy->name(), info.name);
    }
}

TEST(FleetRegistry, ModelRequiredForScoringPolicies) {
    const scenario::ScenarioTrace trace =
        scenario::build_trace(fleet_spec(), node_config());
    for (const fleet::FleetPolicyInfo& info : fleet::registered_fleet_policies()) {
        if (!info.needs_model) continue;
        fleet::FleetOptions fo = fleet_options(std::string(info.name));
        fo.node_policy = "random";  // model-free node policy: only the fleet
        fo.policy_config.model = nullptr;  // scoring layer misses the model
        EXPECT_THROW(fleet::FleetRunner(trace, std::move(fo)),
                     std::invalid_argument)
            << info.name;
    }
}

TEST(FleetRunner, RejectsClosedTraces) {
    const std::vector<sched::TaskSpec> specs = {
        {.app_name = "mcf", .seed = 1, .target_insts = 8'000, .isolated_ipc = 0.6}};
    const scenario::ScenarioTrace closed = scenario::closed_trace("closed", specs);
    EXPECT_THROW(fleet::FleetRunner(closed, fleet_options("fleet-least-loaded")),
                 std::invalid_argument);
}

// -------------------------------------------------------- preemption --

/// Hand-built trace: two long batch tasks saturate the only node, then a
/// latency-critical request arrives.
scenario::ScenarioTrace preemption_trace() {
    scenario::ScenarioTrace trace;
    trace.spec.name = "preemption-unit";
    trace.spec.process = scenario::ArrivalProcess::kTrace;
    auto batch = [](std::uint64_t seed) {
        scenario::PlannedTask t;
        t.arrival_quantum = 0;
        t.app_name = "nab_r";
        t.seed = seed;
        t.service_insts = 40'000;
        t.isolated_ipc = 2.0;
        t.slo = scenario::SloClass::kBatch;
        t.priority = 0;
        t.deadline_quantum = 200.0;
        return t;
    };
    trace.tasks.push_back(batch(1));
    trace.tasks.push_back(batch(2));
    scenario::PlannedTask lc;
    lc.arrival_quantum = 2;
    lc.app_name = "nab_r";
    lc.seed = 3;
    lc.service_insts = 2'000;
    lc.isolated_ipc = 2.0;
    lc.slo = scenario::SloClass::kLatencyCritical;
    lc.priority = 10;
    lc.deadline_quantum = 10.0;
    trace.tasks.push_back(lc);
    return trace;
}

TEST(FleetPreemption, LcArrivalDemotesOneBatchResident) {
    const scenario::ScenarioTrace trace = preemption_trace();
    fleet::FleetOptions fo = fleet_options("fleet-least-loaded", /*nodes=*/1);
    fo.node_config = node_config(1, /*cores=*/1, /*smt_ways=*/2);

    fleet::FleetProgress last{};
    fo.on_quantum = [&last](const fleet::Fleet&, const fleet::FleetProgress& p) {
        last = p;
    };
    fleet::FleetRunner runner(trace, std::move(fo));
    const fleet::FleetResult result = runner.run();

    ASSERT_TRUE(result.completed);
    EXPECT_EQ(result.preemptions, 1u);
    EXPECT_EQ(last.requeues, 1u);
    // Exactly one batch task was demoted back to the queue — exactly once —
    // and still completed; the LC request was admitted on arrival.
    std::uint64_t demoted = 0;
    for (const fleet::FleetTaskRecord& rec : result.tasks) {
        EXPECT_TRUE(rec.completed) << rec.plan_index;
        demoted += rec.preemptions;
        if (rec.slo == scenario::SloClass::kLatencyCritical) {
            EXPECT_EQ(rec.preemptions, 0u);
            EXPECT_EQ(rec.admit_quantum, rec.arrival_quantum);
            EXPECT_TRUE(rec.deadline_met);
        }
    }
    EXPECT_EQ(demoted, 1u);
}

TEST(FleetPreemption, DisabledPreemptionMakesLcWait) {
    const scenario::ScenarioTrace trace = preemption_trace();
    fleet::FleetOptions fo = fleet_options("fleet-least-loaded", /*nodes=*/1);
    fo.node_config = node_config(1, /*cores=*/1, /*smt_ways=*/2);
    fo.preemption = false;

    fleet::FleetRunner runner(trace, std::move(fo));
    const fleet::FleetResult result = runner.run();

    ASSERT_TRUE(result.completed);
    EXPECT_EQ(result.preemptions, 0u);
    for (const fleet::FleetTaskRecord& rec : result.tasks) {
        EXPECT_EQ(rec.preemptions, 0u);
        if (rec.slo == scenario::SloClass::kLatencyCritical)
            EXPECT_GT(rec.admit_quantum, rec.arrival_quantum)
                << "LC request should queue behind the saturated node";
    }
}

// ------------------------------------------------------- SLO metrics --

TEST(FleetMetrics, PercentileEdgeCases) {
    EXPECT_EQ(common::percentile({}, 0.5), 0.0);
    const std::vector<double> one = {7.5};
    EXPECT_DOUBLE_EQ(common::percentile(one, 0.0), 7.5);
    EXPECT_DOUBLE_EQ(common::percentile(one, 0.99), 7.5);
    EXPECT_DOUBLE_EQ(common::percentile(one, 1.0), 7.5);
}

/// Pinned against hand-computed values: 11 completed batch tasks with
/// slowdowns 1..11 (one past its deadline), one abandoned batch task, an
/// empty LC class, 100 quanta, 2 preemptions.
TEST(FleetMetrics, SummaryPinnedAgainstHandComputedValues) {
    fleet::FleetResult r;
    r.quanta_executed = 100;
    r.preemptions = 2;
    r.completed_tasks = 11;
    for (int i = 1; i <= 11; ++i) {
        fleet::FleetTaskRecord rec;
        rec.plan_index = static_cast<std::size_t>(i - 1);
        rec.task_id = i;
        rec.slo = scenario::SloClass::kBatch;
        rec.completed = true;
        rec.deadline_met = i != 11;  // the slowest run missed its deadline
        rec.slowdown = static_cast<double>(i);
        rec.queue_quanta = 2.0;
        r.tasks.push_back(rec);
    }
    fleet::FleetTaskRecord abandoned;
    abandoned.plan_index = 11;
    abandoned.task_id = 12;
    abandoned.slo = scenario::SloClass::kBatch;
    abandoned.completed = false;
    r.tasks.push_back(abandoned);

    const fleet::FleetSummary s = fleet::summarize(r);
    EXPECT_EQ(s.batch.planned, 12u);
    EXPECT_EQ(s.batch.completed, 11u);
    // One deadline miss + one task that never completed.
    EXPECT_EQ(s.batch.slo_violations, 2u);
    EXPECT_DOUBLE_EQ(s.batch.violation_rate, 2.0 / 12.0);
    EXPECT_DOUBLE_EQ(s.batch.mean_slowdown, 6.0);
    EXPECT_DOUBLE_EQ(s.batch.p50_slowdown, 6.0);
    // Linear interpolation over sorted order statistics:
    // p99 sits at position 0.99 * 10 = 9.9 => 10 + 0.9 * (11 - 10).
    EXPECT_NEAR(s.batch.p99_slowdown, 10.9, 1e-9);
    EXPECT_NEAR(s.batch.p999_slowdown, 10.99, 1e-9);
    EXPECT_DOUBLE_EQ(s.batch.mean_queue_quanta, 2.0);

    // The batch class is the whole population here.
    EXPECT_EQ(s.all.planned, s.batch.planned);
    EXPECT_NEAR(s.all.p99_slowdown, 10.9, 1e-9);

    // Empty LC class: all-zero summary, not NaN.
    EXPECT_EQ(s.latency_critical.planned, 0u);
    EXPECT_EQ(s.latency_critical.slo_violations, 0u);
    EXPECT_DOUBLE_EQ(s.latency_critical.violation_rate, 0.0);
    EXPECT_DOUBLE_EQ(s.latency_critical.p99_slowdown, 0.0);

    // 10 deadline-met completions over 100 quanta.
    EXPECT_DOUBLE_EQ(s.goodput, 0.10);
    EXPECT_DOUBLE_EQ(s.throughput, 0.11);
    EXPECT_DOUBLE_EQ(s.preemptions_per_kquanta, 20.0);
}

TEST(FleetMetrics, SingleTaskClassPercentilesAreTheTask) {
    fleet::FleetResult r;
    r.quanta_executed = 10;
    r.completed_tasks = 1;
    fleet::FleetTaskRecord rec;
    rec.task_id = 1;
    rec.slo = scenario::SloClass::kLatencyCritical;
    rec.completed = true;
    rec.deadline_met = true;
    rec.slowdown = 3.25;
    r.tasks.push_back(rec);

    const fleet::FleetSummary s = fleet::summarize(r);
    EXPECT_DOUBLE_EQ(s.latency_critical.p50_slowdown, 3.25);
    EXPECT_DOUBLE_EQ(s.latency_critical.p99_slowdown, 3.25);
    EXPECT_DOUBLE_EQ(s.latency_critical.p999_slowdown, 3.25);
    EXPECT_DOUBLE_EQ(s.latency_critical.violation_rate, 0.0);
    EXPECT_EQ(s.batch.planned, 0u);
}

TEST(FleetMetrics, RunSignatureIsExactToTheBit) {
    fleet::FleetResult r;
    r.fleet_policy = "fleet-least-loaded";
    r.node_policy = "synpa";
    r.nodes = 2;
    fleet::FleetTaskRecord rec;
    rec.task_id = 1;
    rec.completed = true;
    rec.finish_quantum = 12.5;
    rec.slowdown = 1.75;
    r.tasks.push_back(rec);

    fleet::FleetResult same = r;
    EXPECT_EQ(fleet::run_signature(r), fleet::run_signature(same));
    // One ULP of drift in a single double must change the signature.
    same.tasks[0].finish_quantum =
        std::nextafter(same.tasks[0].finish_quantum, 1e9);
    EXPECT_NE(fleet::run_signature(r), fleet::run_signature(same));
}

// -------------------------------------------- every registered policy --

class FleetPolicyTest : public ::testing::TestWithParam<fleet::FleetPolicyInfo> {};

TEST_P(FleetPolicyTest, RunsDeterministicallyWithConservation) {
    const fleet::FleetPolicyInfo info = GetParam();
    const scenario::ScenarioTrace trace =
        scenario::build_trace(fleet_spec(), node_config());

    std::vector<std::string> signatures;
    for (int run = 0; run < 2; ++run) {
        // Run 1 is traced: traced runs must stay bit-identical to untraced
        // ones, and the registry counters must agree with the result.
        obs::Tracer tracer(memory_trace_config());
        fleet::FleetOptions fo = fleet_options(std::string(info.name));
        fo.tracer = run == 1 ? &tracer : nullptr;
        fleet::FleetProgress last{};
        fo.on_quantum = [&last](const fleet::Fleet& f,
                                const fleet::FleetProgress& p) {
            // Conservation at every quantum boundary: every admission is
            // either retired, resident, or was demoted back to the queue.
            EXPECT_EQ(p.admissions - p.preemptions, p.retirements +
                          static_cast<std::uint64_t>(p.in_flight));
            EXPECT_EQ(p.requeues, p.preemptions);
            EXPECT_EQ(p.in_flight, f.live_count());
            last = p;
        };
        fleet::FleetRunner runner(trace, std::move(fo));
        const fleet::FleetResult result = runner.run();

        ASSERT_EQ(result.tasks.size(), trace.tasks.size()) << info.name;
        EXPECT_TRUE(result.completed) << info.name;
        EXPECT_EQ(last.retirements, result.completed_tasks);
        EXPECT_EQ(last.arrived, trace.tasks.size());
        std::set<int> ids;
        for (const fleet::FleetTaskRecord& rec : result.tasks) {
            if (!rec.completed) continue;
            EXPECT_TRUE(ids.insert(rec.task_id).second)
                << "duplicate task id under " << info.name;
            EXPECT_GE(rec.node_id, 0);
            EXPECT_GE(rec.finish_quantum, static_cast<double>(rec.arrival_quantum));
            EXPECT_GT(rec.slowdown, 0.0);
        }
        EXPECT_EQ(ids.size(), result.completed_tasks);

        if (run == 1) {
            const obs::MetricsRegistry& m = tracer.metrics();
            ASSERT_NE(m.find_counter("fleet.admissions"), nullptr);
            EXPECT_EQ(m.find_counter("fleet.admissions")->value(),
                      result.admissions);
            ASSERT_NE(m.find_counter("fleet.retirements"), nullptr);
            EXPECT_EQ(m.find_counter("fleet.retirements")->value(),
                      result.completed_tasks);
            if (result.preemptions > 0) {
                ASSERT_NE(m.find_counter("fleet.preemptions"), nullptr);
                EXPECT_EQ(m.find_counter("fleet.preemptions")->value(),
                          result.preemptions);
            }
        }
        signatures.push_back(fleet::run_signature(result));
    }
    EXPECT_EQ(signatures[0], signatures[1])
        << info.name << " is nondeterministic (or tracing perturbs the run)";
}

INSTANTIATE_TEST_SUITE_P(
    AllRegisteredFleetPolicies, FleetPolicyTest,
    ::testing::ValuesIn(fleet::registered_fleet_policies().begin(),
                        fleet::registered_fleet_policies().end()),
    [](const ::testing::TestParamInfo<fleet::FleetPolicyInfo>& info) {
        std::string name(info.param.name);
        for (char& c : name)
            if (c == '-') c = '_';
        return name;
    });

// ------------------------------------------------------- determinism --

/// The tentpole contract: a fleet run is bit-identical at every
/// (SYNPA_SIM_THREADS x fleet threads) combination.  Two-chip nodes so the
/// per-node parallel engine actually shards.
TEST(FleetDeterminism, SimThreadsByFleetThreadsMatrix) {
    scenario::ScenarioSpec spec = fleet_spec();
    spec.horizon_quanta = 16;
    const scenario::ScenarioTrace trace =
        scenario::build_trace(spec, node_config(2, 2, 2));

    std::string want;
    for (const int sim_threads : {1, 2, 4}) {
        for (const std::size_t fleet_threads : {std::size_t{1}, std::size_t{8}}) {
            fleet::FleetOptions fo =
                fleet_options("fleet-interference-aware", /*nodes=*/3);
            fo.node_config = node_config(2, 2, 2, sim_threads);
            fo.threads = fleet_threads;
            fleet::FleetRunner runner(trace, std::move(fo));
            const std::string sig = fleet::run_signature(runner.run());
            if (want.empty()) want = sig;
            EXPECT_EQ(sig, want)
                << "sim_threads=" << sim_threads
                << " fleet_threads=" << fleet_threads << " diverged";
        }
    }
}

}  // namespace
