// ENV-01 exemption fixture: common/config is the one sanctioned home for
// raw getenv — the env_* wrappers live here.
#include <cstdlib>
#include <string>

namespace synpa::common {

long env_int(const std::string& name, long fallback) {
    const char* v = std::getenv(name.c_str());  // allowed: this IS the wrapper
    return v != nullptr ? std::stol(v) : fallback;
}

}  // namespace synpa::common
