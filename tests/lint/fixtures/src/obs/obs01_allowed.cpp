// OBS-01 exemption fixture: obs/ is the sanctioned output layer — the
// exporters write streams here.
#include <iostream>

namespace synpa::obs {

void print_summary(int events) { std::cout << "events=" << events << "\n"; }

}  // namespace synpa::obs
