// SHARD-01 header fixture: non-const statics in headers give every
// includer one shared mutable instance — racy across shards.
#pragma once

namespace synpa::uarch {

inline int next_event_id() {
    static int counter = 0;  // line 8: flagged (mutable static local in header)
    return ++counter;
}

class EventBook {
public:
    static int open_books;  // line 14: flagged (mutable static data member)
    static constexpr int kShelfCount = 4;  // fine: constexpr
};

}  // namespace synpa::uarch
