// ENV-01 fixture: raw getenv outside common/config bypasses the fail-loud
// wrappers and the documented-knob cross-check.
#include <cstdlib>
#include <string>

namespace synpa::uarch {

int knob_from_raw_env() {
    const char* v = std::getenv("SYNPA_SOME_KNOB");  // line 9: flagged
    return v != nullptr ? std::stoi(v) : 0;
}

}  // namespace synpa::uarch
