// SHARD-01 fixture: mutable namespace-scope state in a barrier layer.
// Chip shards run this code concurrently — a mutable global is an
// unsynchronized cross-shard race even when the value "looks" harmless.
#include <cstdint>

namespace synpa::uarch {

std::uint64_t quanta_simulated = 0;  // line 8: flagged

namespace {
static double last_chip_time;  // line 11: flagged (anonymous namespace too)
}  // namespace

void tick() {
    ++quanta_simulated;
    last_chip_time = 0.0;
}

}  // namespace synpa::uarch
