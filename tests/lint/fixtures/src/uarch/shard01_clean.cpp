// SHARD-01 clean counterpart: constants, anonymous-namespace helpers,
// and state owned by objects are all fine — only mutable globals race.
#include <cstdint>

namespace synpa::uarch {

constexpr std::uint64_t kCyclesPerQuantum = 1'000'000;
const double kDefaultPressure = 1.5;

namespace {

double helper(double x) { return x * kDefaultPressure; }

}  // namespace

class ShardLocal {
public:
    void tick() { quanta_ += 1; }
    std::uint64_t quanta() const { return quanta_; }

private:
    std::uint64_t quanta_ = 0;  // owned, per-instance: no cross-shard sharing
};

double use(double x) { return helper(x); }

}  // namespace synpa::uarch
