// DET-02 clean counterpart: seeded deterministic streams and the obs
// host-time helpers are the sanctioned paths; an audited read carries the
// host-time-ok marker.
#include <chrono>
#include <cstdint>

namespace synpa::obs {
double host_now_us();
}

namespace synpa::core {

std::uint64_t seeded_stream(std::uint64_t seed) {
    // splitmix-style step: deterministic, replayable, fork-safe.
    seed += 0x9e3779b97f4a7c15ull;
    return seed ^ (seed >> 31);
}

double observability_only_timing() {
    return synpa::obs::host_now_us();  // the allowlisted entry point
}

double audited_clock_read() {
    // synpa-lint: host-time-ok(latency probe; value is logged, never fed to sim state)
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now.time_since_epoch()).count();
}

}  // namespace synpa::core
