// DET-02 fixture: host randomness and wall-clock reads in a deterministic
// layer.
#include <chrono>
#include <cstdlib>
#include <random>

namespace synpa::core {

double nondeterministic_weight() {
    std::random_device rd;                                    // line 10: flagged
    const double noise = static_cast<double>(std::rand());    // line 11: flagged
    const auto now = std::chrono::steady_clock::now();        // line 12: flagged
    return noise + static_cast<double>(rd()) +
           static_cast<double>(now.time_since_epoch().count());
}

}  // namespace synpa::core
