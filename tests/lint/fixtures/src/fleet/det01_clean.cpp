// Clean counterpart for the src/fleet deterministic layer: lookups into
// unordered containers (no iteration order observed) and residency-ordered
// vectors are the sanctioned patterns for fleet bookkeeping.
#include <unordered_map>
#include <vector>

namespace synpa::fleet {

double wait_of(const std::unordered_map<int, double>& queue_wait, int id) {
    const auto it = queue_wait.find(id);
    return it != queue_wait.end() ? it->second : 0.0;
}

double drain_in_residency_order(const std::vector<double>& waits) {
    double total = 0.0;
    for (const double wait : waits) total += wait;
    return total;
}

}  // namespace synpa::fleet
