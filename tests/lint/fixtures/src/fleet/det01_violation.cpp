// DET-01/DET-02 fixture: src/fleet is a deterministic layer (fleet runs
// are pinned bit-identical across fleet-thread and sim-thread counts), so
// unordered traversals and host clock reads are flagged there too.
// Expected findings are pinned by line number in
// tests/lint/test_synpa_lint.py — keep the layout stable.
#include <chrono>
#include <unordered_map>

namespace synpa::fleet {

double drain_in_hash_order() {
    std::unordered_map<int, double> queue_wait;
    queue_wait[1] = 2.0;
    double total = 0.0;
    for (const auto& [id, wait] : queue_wait) total += wait;   // line 15: flagged
    const auto now = std::chrono::steady_clock::now();         // line 16: flagged
    return total + static_cast<double>(now.time_since_epoch().count());
}

}  // namespace synpa::fleet
