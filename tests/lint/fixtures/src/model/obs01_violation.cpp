// OBS-01 fixture: direct stdout/stderr tracing in src/ outside obs/.
#include <cstdio>
#include <iostream>

namespace synpa::model {

void debug_dump(double residual) {
    std::cout << "residual=" << residual << "\n";      // line 8: flagged
    fprintf(stderr, "residual=%f\n", residual);        // line 9: flagged
    std::puts("done");                                 // line 10: flagged
}

}  // namespace synpa::model
