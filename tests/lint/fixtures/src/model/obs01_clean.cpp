// OBS-01 clean counterpart: snprintf formats into buffers (no stream
// write), and data goes back to the caller instead of a stream.
#include <cstdio>
#include <string>

namespace synpa::model {

std::string format_residual(double residual) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "residual=%f", residual);
    return buf;
}

}  // namespace synpa::model
