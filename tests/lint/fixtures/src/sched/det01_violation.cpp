// DET-01 fixture: traversals of unordered containers in a deterministic
// layer.  Expected findings are pinned by line number in
// tests/lint/test_synpa_lint.py — keep the layout stable.
#include <unordered_map>
#include <unordered_set>

namespace synpa::sched {

int traverse_everything() {
    std::unordered_map<int, int> scores;
    std::unordered_set<int> members;
    scores[1] = 2;
    members.insert(3);
    int sum = 0;
    for (const auto& [id, score] : scores) sum += id + score;  // line 15: flagged
    for (int m : members) sum += m;                            // line 16: flagged
    for (auto it = scores.begin(); it != scores.end(); ++it)   // line 17: flagged
        sum += it->second;
    return sum;
}

}  // namespace synpa::sched
