// DET-01 clean counterpart: lookups into unordered containers are fine
// (no iteration order is observed), an audited traversal carries the
// sorted-ok marker, and sorted snapshots are always fine.
#include <algorithm>
#include <unordered_map>
#include <vector>

namespace synpa::sched {

int lookups_only(const std::unordered_map<int, int>& scores) {
    const auto it = scores.find(7);
    return it != scores.end() ? it->second : 0;
}

int audited_traversal(const std::unordered_map<int, int>& scores) {
    int sum = 0;
    // synpa-lint: sorted-ok(summation is commutative; order cannot reach output)
    for (const auto& [id, score] : scores) sum += id + score;
    return sum;
}

std::vector<int> sorted_snapshot(const std::unordered_map<int, int>& scores) {
    std::vector<int> ids;
    for (const auto& [id, score] : scores) ids.push_back(id);  // synpa-lint: sorted-ok(sorted below before use)
    std::sort(ids.begin(), ids.end());
    return ids;
}

}  // namespace synpa::sched
