// MARKER-01 fixture: suppression markers must carry a reason and use a
// known tag.
#include <unordered_map>

namespace synpa::sched {

int bad_markers(const std::unordered_map<int, int>& scores) {
    int sum = 0;
    // synpa-lint: sorted-ok()
    for (const auto& [id, score] : scores) sum += score;  // line 10: DET-01 (reasonless marker suppresses nothing)
    // synpa-lint: definitely-fine(trust me)
    for (const auto& [id, score] : scores) sum += id;  // line 12: DET-01 (unknown tag suppresses nothing)
    return sum;
}

}  // namespace synpa::sched
