// ENV-01 applies repo-wide (bench/ and examples/ included): knobs read
// here must also go through common::env_*.
#include <cstdlib>

int main() {
    const char* reps = std::getenv("SYNPA_BENCH_REPS");  // line 6: flagged
    return reps != nullptr ? 0 : 1;
}
