#!/usr/bin/env python3
"""Pin synpa-lint behaviour: exact findings on the fixture tree, silence on
the clean counterparts, a baseline round-trip, and a clean real tree.

Runs with the standard library only (unittest, no pytest) so it works both
under ctest in the build container and as `python3 tests/lint/test_synpa_lint.py`.
"""

from __future__ import annotations

import contextlib
import importlib.util
import io
import json
import re
import sys
import tempfile
import unittest
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = REPO_ROOT / "tests" / "lint" / "fixtures"

_spec = importlib.util.spec_from_file_location(
    "synpa_lint", REPO_ROOT / "tools" / "synpa_lint.py")
synpa_lint = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(synpa_lint)

FINDING_RE = re.compile(r"^(?P<path>\S+?):(?P<line>\d+): (?P<rule>[A-Z]+-\d+): ")

# One entry per deliberate violation; the line numbers are also called out in
# comments inside the fixture files themselves.
EXPECTED_FIXTURE_FINDINGS = {
    ("bench/env01_bench_violation.cpp", 6, "ENV-01"),
    ("src/core/det02_violation.cpp", 10, "DET-02"),
    ("src/fleet/det01_violation.cpp", 15, "DET-01"),
    ("src/fleet/det01_violation.cpp", 16, "DET-02"),
    ("src/core/det02_violation.cpp", 11, "DET-02"),
    ("src/core/det02_violation.cpp", 12, "DET-02"),
    ("src/model/obs01_violation.cpp", 8, "OBS-01"),
    ("src/model/obs01_violation.cpp", 9, "OBS-01"),
    ("src/model/obs01_violation.cpp", 10, "OBS-01"),
    ("src/sched/det01_violation.cpp", 15, "DET-01"),
    ("src/sched/det01_violation.cpp", 16, "DET-01"),
    ("src/sched/det01_violation.cpp", 17, "DET-01"),
    ("src/sched/marker_violation.cpp", 9, "MARKER-01"),
    ("src/sched/marker_violation.cpp", 10, "DET-01"),
    ("src/sched/marker_violation.cpp", 11, "MARKER-01"),
    ("src/sched/marker_violation.cpp", 12, "DET-01"),
    ("src/uarch/env01_violation.cpp", 9, "ENV-01"),
    ("src/uarch/shard01_violation.cpp", 8, "SHARD-01"),
    ("src/uarch/shard01_violation.cpp", 11, "SHARD-01"),
    ("src/uarch/shard01_violation.hpp", 8, "SHARD-01"),
    ("src/uarch/shard01_violation.hpp", 14, "SHARD-01"),
}

CLEAN_FIXTURES = [
    "src/common/config.cpp",
    "src/core/det02_clean.cpp",
    "src/fleet/det01_clean.cpp",
    "src/model/obs01_clean.cpp",
    "src/obs/obs01_allowed.cpp",
    "src/sched/det01_clean.cpp",
    "src/uarch/shard01_clean.cpp",
]


def run_lint(argv):
    """Invoke synpa_lint.main(argv); return (exit_code, stdout, stderr)."""
    out, err = io.StringIO(), io.StringIO()
    with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
        code = synpa_lint.main(argv)
    return code, out.getvalue(), err.getvalue()


def parse_findings(stdout):
    found = set()
    for line in stdout.splitlines():
        m = FINDING_RE.match(line)
        if m:
            found.add((m.group("path"), int(m.group("line")), m.group("rule")))
    return found


class FixtureFindings(unittest.TestCase):
    def test_exact_rule_ids_and_lines(self):
        code, out, _ = run_lint(
            ["--root", str(FIXTURES), "src", "bench"])
        self.assertEqual(code, 1, "fixture violations must fail the scan")
        self.assertEqual(parse_findings(out), EXPECTED_FIXTURE_FINDINGS)

    def test_clean_counterparts_have_no_findings(self):
        code, out, _ = run_lint(["--root", str(FIXTURES)] + CLEAN_FIXTURES)
        self.assertEqual(code, 0, f"clean fixtures flagged:\n{out}")
        self.assertEqual(parse_findings(out), set())

    def test_every_rule_is_exercised(self):
        exercised = {rule for _, _, rule in EXPECTED_FIXTURE_FINDINGS}
        self.assertEqual(exercised, set(synpa_lint.RULES))


class BaselineRoundTrip(unittest.TestCase):
    def test_update_then_rescan_then_shrink(self):
        with tempfile.TemporaryDirectory() as td:
            baseline = Path(td) / "baseline.json"
            scan = ["--root", str(FIXTURES), "src", "bench",
                    "--baseline", str(baseline)]

            code, _, _ = run_lint(scan + ["--update-baseline"])
            self.assertEqual(code, 0)
            data = json.loads(baseline.read_text())
            self.assertEqual(data["version"], 1)
            self.assertEqual(len(data["findings"]),
                             len(EXPECTED_FIXTURE_FINDINGS))

            # Every finding baselined -> clean.
            code, out, _ = run_lint(scan)
            self.assertEqual(code, 0, out)

            # Shrinking the baseline re-exposes exactly the removed finding.
            dropped = data["findings"].pop()
            baseline.write_text(json.dumps(data))
            code, out, _ = run_lint(scan)
            self.assertEqual(code, 1)
            self.assertEqual(len(parse_findings(out)), 1)

            # A stale entry (file fixed, key lingers) keeps the scan green but
            # is reported on stderr as removable.
            baseline.write_text(json.dumps(
                {"version": 1,
                 "findings": ["bogus|DET-01|deadbeefdeadbeef"]}))
            code, _, err = run_lint(
                ["--root", str(FIXTURES), "src/obs/obs01_allowed.cpp",
                 "--baseline", str(baseline)])
            self.assertEqual(code, 0)
            self.assertIn("stale", err)

    def test_baseline_keys_survive_line_moves(self):
        with tempfile.TemporaryDirectory() as td:
            src = FIXTURES / "src" / "uarch" / "env01_violation.cpp"
            tree = Path(td) / "src" / "uarch"
            tree.mkdir(parents=True)
            copy = tree / "env01_violation.cpp"
            copy.write_text(src.read_text())
            baseline = Path(td) / "baseline.json"
            scan = ["--root", td, "src", "--baseline", str(baseline)]

            run_lint(scan + ["--update-baseline"])
            # Shift the violation down two lines; the content-hash key must
            # still match so the finding stays baselined.
            copy.write_text("\n\n" + src.read_text())
            code, out, _ = run_lint(scan)
            self.assertEqual(code, 0, out)


class RealTree(unittest.TestCase):
    def test_head_is_clean_with_checked_in_baseline(self):
        code, out, err = run_lint(["--root", str(REPO_ROOT)])
        self.assertEqual(code, 0,
                         f"synpa-lint found new violations at HEAD:\n{out}")

    def test_checked_in_baseline_is_empty(self):
        baseline = REPO_ROOT / "tools" / "synpa_lint_baseline.json"
        data = json.loads(baseline.read_text())
        self.assertEqual(data["findings"], [],
                         "the suppression baseline must stay empty: fix or "
                         "annotate violations instead of baselining them")

    def test_every_marker_in_tree_carries_a_reason(self):
        # MARKER-01 covers this during the scan, but pin it explicitly: an
        # empty-reason marker anywhere in src/ must fail the real-tree scan.
        pat = re.compile(r"//\s*synpa-lint:\s*([a-z-]+)\(([^)]*)\)")
        for f in sorted((REPO_ROOT / "src").rglob("*")):
            if f.suffix not in {".cpp", ".hpp", ".cc", ".hh", ".h", ".ipp"}:
                continue
            for m in pat.finditer(f.read_text()):
                self.assertIn(m.group(1), synpa_lint.MARKER_TAGS,
                              f"{f}: unknown marker tag {m.group(1)!r}")
                self.assertTrue(m.group(2).strip(),
                                f"{f}: marker {m.group(1)} has no reason")


if __name__ == "__main__":
    unittest.main()
