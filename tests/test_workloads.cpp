// Tests for workload construction and the measurement methodology,
// including the Table III calibration of the whole suite.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "apps/spec_suite.hpp"
#include "sched/baselines.hpp"
#include "workloads/groups.hpp"
#include "workloads/methodology.hpp"
#include "workloads/workload.hpp"

namespace {

using namespace synpa;
using namespace synpa::workloads;

uarch::SimConfig test_config() {
    uarch::SimConfig cfg;
    cfg.cycles_per_quantum = 5'000;
    return cfg;
}

TEST(Groups, ClassifyThresholds) {
    EXPECT_EQ(classify({0.2, 0.1, 0.7}), Group::kBackendBound);
    EXPECT_EQ(classify({0.3, 0.4, 0.3}), Group::kFrontendBound);
    EXPECT_EQ(classify({0.5, 0.2, 0.3}), Group::kOther);
    // Boundary: exactly at threshold is NOT in the bound group.
    EXPECT_EQ(classify({0.0, 0.35, 0.65}), Group::kOther);
}

TEST(Groups, GroupNames) {
    EXPECT_STREQ(group_name(Group::kBackendBound), "backend-bound");
    EXPECT_STREQ(group_name(Group::kFrontendBound), "frontend-bound");
    EXPECT_STREQ(group_name(Group::kOther), "others");
}

TEST(Groups, TrainingSplitIsTwentyTwoPlusSix) {
    const auto train = training_apps();
    const auto hold = holdout_apps();
    EXPECT_EQ(train.size(), 22u);
    EXPECT_EQ(hold.size(), 6u);
    std::set<std::string> all(train.begin(), train.end());
    for (const auto& h : hold) EXPECT_TRUE(all.insert(h).second) << h << " in both sets";
    EXPECT_EQ(all.size(), 28u);
    for (const auto& name : all) EXPECT_TRUE(apps::has_app(name)) << name;
}

// The calibration test: the suite's isolated characterization must land in
// the paper's Table III groups, app by app.
TEST(Calibration, SuiteMatchesPaperTableThree) {
    const std::map<std::string, Group> expected = {
        {"cactuBSSN_r", Group::kBackendBound}, {"lbm_r", Group::kBackendBound},
        {"mcf", Group::kBackendBound},         {"milc", Group::kBackendBound},
        {"xalancbmk_r", Group::kBackendBound}, {"wrf_r", Group::kBackendBound},
        {"astar", Group::kFrontendBound},      {"gobmk", Group::kFrontendBound},
        {"leela_r", Group::kFrontendBound},    {"mcf_r", Group::kFrontendBound},
        {"perlbench", Group::kFrontendBound},
    };
    const auto chars = characterize_suite(test_config(), 40, 42);
    ASSERT_EQ(chars.size(), 28u);
    for (const auto& c : chars) {
        const auto it = expected.find(c.name);
        const Group want = it == expected.end() ? Group::kOther : it->second;
        EXPECT_EQ(c.group, want) << c.name << " FD/FE/BE = " << c.fractions[0] << "/"
                                 << c.fractions[1] << "/" << c.fractions[2];
        EXPECT_GT(c.ipc, 0.0);
    }
}

TEST(Calibration, OthersFullDispatchSpreadMatchesPaper) {
    // Paper: Others range from ~20% (hmmer) to ~61.4% (nab_r) full dispatch.
    const auto chars = characterize_suite(test_config(), 40, 42);
    double hmmer_fd = 0, nab_fd = 0;
    for (const auto& c : chars) {
        if (c.name == "hmmer") hmmer_fd = c.fractions[0];
        if (c.name == "nab_r") nab_fd = c.fractions[0];
    }
    EXPECT_NEAR(hmmer_fd, 0.20, 0.05);
    EXPECT_NEAR(nab_fd, 0.614, 0.06);
    for (const auto& c : chars)
        if (c.group == Group::kOther) {
            EXPECT_GE(c.fractions[0], hmmer_fd - 0.03) << c.name;
            EXPECT_LE(c.fractions[0], nab_fd + 0.03) << c.name;
        }
}

TEST(Calibration, CalibrateSuiteFillsPhaseCategories) {
    calibrate_suite(test_config(), 6, 1);
    for (const auto& app : apps::spec_suite()) {
        ASSERT_EQ(app.phase_categories.size(), app.phases.size()) << app.name;
        for (const auto& cats : app.phase_categories)
            EXPECT_NEAR(cats[0] + cats[1] + cats[2], 1.0, 1e-6) << app.name;
    }
}

TEST(Workloads, PinnedSpecsMatchThePaper) {
    const WorkloadSpec fb2 = paper_fb2();
    const std::vector<std::string> expected = {"lbm_r",   "mcf",     "cactuBSSN_r", "mcf",
                                               "leela_r", "leela_r", "astar",       "mcf_r"};
    EXPECT_EQ(fb2.app_names, expected);
    EXPECT_EQ(paper_be1().app_names.size(), 8u);
    EXPECT_EQ(paper_fe2().app_names.size(), 8u);
    // fe2 contains leela_r three times (sampling with replacement).
    int leelas = 0;
    for (const auto& a : paper_fe2().app_names) leelas += a == "leela_r";
    EXPECT_EQ(leelas, 3);
}

TEST(Workloads, TwentyWorkloadsWithCorrectComposition) {
    const auto chars = characterize_suite(test_config(), 40, 42);
    const auto specs = paper_workloads(chars, 42);
    ASSERT_EQ(specs.size(), 20u);

    std::map<std::string, Group> group_of;
    for (const auto& c : chars) group_of[c.name] = c.group;

    int be_count = 0, fe_count = 0, fb_count = 0;
    for (const auto& spec : specs) {
        ASSERT_EQ(spec.app_names.size(), 8u) << spec.name;
        for (const auto& a : spec.app_names) EXPECT_TRUE(apps::has_app(a));
        int be = 0, fe = 0;
        for (const auto& a : spec.app_names) {
            be += group_of[a] == Group::kBackendBound;
            fe += group_of[a] == Group::kFrontendBound;
        }
        if (spec.name.starts_with("be")) {
            ++be_count;
            EXPECT_GE(be, 5) << spec.name;  // 5-6 backend-bound apps
            EXPECT_LE(be, 6) << spec.name;
        } else if (spec.name.starts_with("fe")) {
            ++fe_count;
            EXPECT_GE(fe, 5) << spec.name;
            EXPECT_LE(fe, 6) << spec.name;
        } else {
            ++fb_count;
            EXPECT_EQ(be, 4) << spec.name;  // mixed: half and half
            EXPECT_EQ(fe, 4) << spec.name;
        }
    }
    EXPECT_EQ(be_count, 5);
    EXPECT_EQ(fe_count, 5);
    EXPECT_EQ(fb_count, 10);
}

TEST(Workloads, GenerationIsDeterministicInSeed) {
    const auto chars = characterize_suite(test_config(), 40, 42);
    const auto a = paper_workloads(chars, 7);
    const auto b = paper_workloads(chars, 7);
    const auto c = paper_workloads(chars, 8);
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].app_names, b[i].app_names);
    bool any_diff = false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (a[i].app_names != c[i].app_names) any_diff = true;
    EXPECT_TRUE(any_diff);
}

TEST(Workloads, LookupByName) {
    const auto chars = characterize_suite(test_config(), 40, 42);
    const auto specs = paper_workloads(chars, 42);
    EXPECT_EQ(workload_by_name(specs, "fb2").name, "fb2");
    EXPECT_THROW(workload_by_name(specs, "zz9"), std::out_of_range);
}

TEST(Methodology, PrepareFillsTargetsAndIpc) {
    uarch::SimConfig cfg = test_config();
    MethodologyOptions opts;
    opts.target_isolated_quanta = 12;
    const PreparedWorkload prepared = prepare_workload(paper_fb2(), cfg, opts, 0);
    ASSERT_EQ(prepared.tasks.size(), 8u);
    for (const auto& t : prepared.tasks) {
        EXPECT_GT(t.target_insts, 0u);
        EXPECT_GT(t.isolated_ipc, 0.0);
        EXPECT_LT(t.isolated_ipc, 4.0);
    }
    // The two leela_r slots have different seeds, hence different targets.
    EXPECT_NE(prepared.tasks[4].seed, prepared.tasks[5].seed);
}

TEST(Methodology, WorkloadSizeMustFillChip) {
    uarch::SimConfig cfg = test_config();
    cfg.cores = 2;  // 4 threads, but the workload has 8 apps
    MethodologyOptions opts;
    EXPECT_THROW(prepare_workload(paper_fb2(), cfg, opts, 0), std::invalid_argument);
}

TEST(Methodology, RunWorkloadAggregatesRepetitions) {
    uarch::SimConfig cfg = test_config();
    MethodologyOptions opts;
    opts.reps = 2;
    opts.target_isolated_quanta = 10;
    opts.record_traces = false;
    const PolicyFactory linux_factory = [](std::uint64_t) {
        return std::make_unique<sched::LinuxPolicy>();
    };
    const RepeatedResult r = run_workload(paper_fb2(), cfg, linux_factory, opts);
    EXPECT_EQ(r.workload, "fb2");
    EXPECT_EQ(r.policy, "linux");
    EXPECT_GE(r.turnaround_samples.size(), 1u);
    EXPECT_LE(r.turnaround_samples.size(), 2u);
    EXPECT_GT(r.mean_metrics.turnaround_quanta, 10.0);
    EXPECT_GT(r.mean_metrics.fairness, 0.0);
    EXPECT_LE(r.mean_metrics.fairness, 1.0);
    EXPECT_TRUE(r.exemplar.completed);
}

TEST(Methodology, ComparePoliciesPairsUpResults) {
    uarch::SimConfig cfg = test_config();
    MethodologyOptions opts;
    opts.reps = 1;
    opts.target_isolated_quanta = 8;
    opts.record_traces = false;
    const auto chars = characterize_suite(cfg, 20, 42);
    auto specs = paper_workloads(chars, 42);
    specs.resize(2);  // keep the test fast
    const PolicyFactory linux_factory = [](std::uint64_t) {
        return std::make_unique<sched::LinuxPolicy>();
    };
    const auto rows = compare_policies(specs, cfg, linux_factory, linux_factory, opts);
    ASSERT_EQ(rows.size(), 2u);
    for (const auto& row : rows) {
        // Same policy on both sides: identical deterministic results.
        EXPECT_NEAR(row.tt_speedup, 1.0, 1e-9);
        EXPECT_NEAR(row.ipc_speedup, 1.0, 1e-9);
        EXPECT_NEAR(row.fairness_delta, 0.0, 1e-9);
    }
}

}  // namespace
