// Property/fuzz suite for the fleet serving layer (src/fleet/).
//
// Generates ~100 seeded random fleet scenarios — random node shapes (SMT
// widths 1/2/4, 1-2 chips, 1-2 cores), fleet sizes 1-4, SLO mixes, both
// preemption settings, and every registered fleet/node policy pairing — and
// asserts *after every quantum* (through FleetOptions::on_quantum) that:
//   * every node individually satisfies uarch::validate_platform,
//   * no task is resident on two nodes at once,
//   * admissions balance: admissions - preemptions = retirements + in-flight,
//   * every preempted task re-entered the queue exactly once
//     (requeues = preemptions, at every quantum boundary), and
//   * occupancy never exceeds any node's hardware contexts.
// After the run, task accounting must balance and nothing stays resident.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "fleet/policy.hpp"
#include "fleet/runner.hpp"
#include "model/interference_model.hpp"
#include "scenario/scenario.hpp"
#include "uarch/platform.hpp"

namespace {

using namespace synpa;

struct FuzzCase {
    uarch::SimConfig cfg;
    scenario::ScenarioSpec spec;
    int nodes = 1;
    bool preemption = true;
    std::string fleet_policy;
    std::string node_policy;
    std::uint64_t seed = 1;
};

FuzzCase draw_case(std::uint64_t seed) {
    common::Rng rng(seed, 0xF1EE7F);
    FuzzCase c;
    c.seed = seed;
    const int widths[] = {1, 2, 4};
    c.cfg.smt_ways = widths[rng.below(3)];
    c.cfg.num_chips = 1 + static_cast<int>(rng.below(2));
    c.cfg.cores = 1 + static_cast<int>(rng.below(2));
    c.cfg.cycles_per_quantum = 1'000;
    c.nodes = 1 + static_cast<int>(rng.below(4));

    const double capacity = static_cast<double>(c.nodes) *
                            static_cast<double>(c.cfg.num_chips) *
                            static_cast<double>(c.cfg.cores) *
                            static_cast<double>(c.cfg.smt_ways);
    c.spec.name = "fleet-fuzz-" + std::to_string(seed);
    c.spec.process = scenario::ArrivalProcess::kPoisson;
    c.spec.app_mix = {"mcf", "leela_r", "gobmk", "nab_r", "bwaves"};
    c.spec.service_quanta = 3 + rng.below(3);
    c.spec.horizon_quanta = 10 + rng.below(10);
    c.spec.seed = seed * 2 + 1;
    // Loads from comfortable under-subscription to queueing overload (where
    // admission control and preemption actually engage).
    const double load = 0.4 + rng.uniform(0.0, 0.9);
    c.spec.arrival_rate =
        load * capacity / static_cast<double>(c.spec.service_quanta);
    c.spec.initial_tasks = rng.below(static_cast<std::uint64_t>(capacity) + 1);

    const double lc_mix[] = {0.0, 0.25, 0.5, 0.9};
    c.spec.lc_fraction = lc_mix[rng.below(4)];
    c.preemption = rng.chance(0.5);

    const auto fleet_policies = fleet::registered_fleet_policies();
    c.fleet_policy =
        std::string(fleet_policies[rng.below(fleet_policies.size())].name);
    const char* node_policies[] = {"linux", "random", "sampling", "synpa"};
    c.node_policy = node_policies[rng.below(4)];
    return c;
}

/// One shared scoring model: paper Table IV, enough for synpa node policies
/// and the interference-aware fleet policy alike.
std::shared_ptr<const model::InterferenceModel> shared_model() {
    static const auto model = std::make_shared<const model::InterferenceModel>(
        model::InterferenceModel::paper_table4());
    return model;
}

TEST(FleetProperties, RandomFleetsKeepEveryInvariantEveryQuantum) {
    constexpr std::uint64_t kCases = 100;
    std::uint64_t quanta_checked = 0;
    for (std::uint64_t seed = 0; seed < kCases; ++seed) {
        const FuzzCase c = draw_case(seed);
        SCOPED_TRACE("case " + std::to_string(seed) + ": nodes=" +
                     std::to_string(c.nodes) + " chips=" +
                     std::to_string(c.cfg.num_chips) + " cores=" +
                     std::to_string(c.cfg.cores) + " ways=" +
                     std::to_string(c.cfg.smt_ways) + " fleet=" +
                     c.fleet_policy + " node=" + c.node_policy +
                     " preemption=" + std::to_string(c.preemption));
        const scenario::ScenarioTrace trace = scenario::build_trace(c.spec, c.cfg);

        fleet::FleetOptions fo;
        fo.nodes = c.nodes;
        fo.node_config = c.cfg;
        fo.node_policy = c.node_policy;
        fo.fleet_policy = c.fleet_policy;
        fo.policy_config.model = shared_model();
        fo.policy_config.seed = c.seed + 23;
        fo.fleet_seed = c.seed + 17;
        fo.preemption = c.preemption;
        fo.max_quanta = 2'000;
        fo.on_quantum = [&](const fleet::Fleet& f, const fleet::FleetProgress& p) {
            int live = 0;
            std::set<int> resident;
            for (int n = 0; n < f.node_count(); ++n) {
                const fleet::FleetNode& node = f.node(n);
                // Throws (failing the test with the violation text) on any
                // duplicated/overfull/misbound state inside the node.
                uarch::validate_platform(node.platform());
                ASSERT_LE(node.live_count(), node.capacity());
                live += node.live_count();
                for (const int id : node.resident_ids())
                    ASSERT_TRUE(resident.insert(id).second)
                        << "task " << id << " resident on two nodes";
            }
            // Cluster-wide conservation at every quantum boundary.
            ASSERT_EQ(p.in_flight, live);
            ASSERT_EQ(p.admissions - p.preemptions,
                      p.retirements + static_cast<std::uint64_t>(p.in_flight));
            ASSERT_EQ(p.requeues, p.preemptions);
            ++quanta_checked;
        };

        fleet::FleetRunner runner(trace, std::move(fo));
        const fleet::FleetResult result = runner.run();

        // Task conservation across the whole run.
        ASSERT_EQ(result.tasks.size(), trace.tasks.size());
        EXPECT_TRUE(result.completed);
        EXPECT_EQ(runner.fleet().live_count(), 0);  // nothing stays resident
        std::set<int> ids;
        std::uint64_t demotions = 0;
        std::size_t completed = 0;
        for (const fleet::FleetTaskRecord& rec : result.tasks) {
            demotions += rec.preemptions;
            if (!rec.completed) continue;
            ++completed;
            EXPECT_TRUE(ids.insert(rec.task_id).second)
                << "duplicate task id " << rec.task_id;
            EXPECT_GE(rec.node_id, 0);
            EXPECT_LT(rec.node_id, c.nodes);
            EXPECT_GE(rec.admit_quantum, rec.arrival_quantum);
            EXPECT_GE(rec.finish_quantum,
                      static_cast<double>(rec.admit_quantum));
        }
        EXPECT_EQ(completed, result.completed_tasks);
        // Per-task demotion counts must add up to the cluster counter, and
        // preemption never happens when disabled.
        EXPECT_EQ(demotions, result.preemptions);
        if (!c.preemption) EXPECT_EQ(result.preemptions, 0u);
        EXPECT_GE(result.migrations, result.cross_chip_migrations);
    }
    // The hook must really have run (the suite is pointless otherwise).
    EXPECT_GT(quanta_checked, kCases * 5);
}

}  // namespace
