// Tests for the evaluation metrics: turnaround, fairness, IPC aggregation,
// and the Table V pair-behaviour statistics.
#include <gtest/gtest.h>

#include "metrics/metrics.hpp"

namespace {

using namespace synpa;
using namespace synpa::metrics;

sched::RunResult make_run(std::vector<double> speedups, std::vector<double> ipcs,
                          double tt = 100.0) {
    sched::RunResult r;
    r.turnaround_quanta = tt;
    for (std::size_t i = 0; i < speedups.size(); ++i) {
        sched::TaskOutcome out;
        out.slot_index = static_cast<int>(i);
        out.individual_speedup = speedups[i];
        out.ipc_smt = ipcs[i];
        r.outcomes.push_back(out);
    }
    return r;
}

TEST(Metrics, PerfectlyFairWorkload) {
    const auto m = compute_metrics(make_run({0.5, 0.5, 0.5}, {1.0, 1.0, 1.0}));
    EXPECT_DOUBLE_EQ(m.fairness, 1.0);  // zero variance in speedups
    EXPECT_DOUBLE_EQ(m.ipc_geomean, 1.0);
    EXPECT_DOUBLE_EQ(m.turnaround_quanta, 100.0);
    EXPECT_DOUBLE_EQ(m.antt, 2.0);  // 1/0.5
}

TEST(Metrics, FairnessDropsWithSpread) {
    const auto even = compute_metrics(make_run({0.5, 0.5}, {1, 1}));
    const auto skew = compute_metrics(make_run({0.9, 0.1}, {1, 1}));
    EXPECT_GT(even.fairness, skew.fairness);
    EXPECT_LE(skew.fairness, 1.0);
}

TEST(Metrics, IpcGeomean) {
    const auto m = compute_metrics(make_run({1, 1}, {1.0, 4.0}));
    EXPECT_NEAR(m.ipc_geomean, 2.0, 1e-12);
}

TEST(Metrics, SpeedupRatios) {
    WorkloadMetrics base, treat;
    base.turnaround_quanta = 200;
    treat.turnaround_quanta = 100;
    base.ipc_geomean = 1.0;
    treat.ipc_geomean = 1.1;
    EXPECT_DOUBLE_EQ(turnaround_speedup(base, treat), 2.0);  // treat is 2x faster
    EXPECT_DOUBLE_EQ(ipc_speedup(base, treat), 1.1);
}

TEST(Metrics, EmptyRunIsSafe) {
    const auto m = compute_metrics(sched::RunResult{});
    EXPECT_DOUBLE_EQ(m.fairness, 0.0);
    EXPECT_DOUBLE_EQ(m.ipc_geomean, 0.0);
}

TEST(PairBehavior, CountsCrossGroupQuanta) {
    sched::RunResult r;
    r.traces.resize(2);
    // Slot 0 behaves frontend for 3 quanta with slot 1, backend for 1.
    for (int q = 0; q < 4; ++q) {
        sched::QuantumTrace t;
        t.quantum = static_cast<std::uint64_t>(q);
        t.corunner_slot = 1;
        t.frontend_dominant = q < 3;
        r.traces[0].push_back(t);
    }
    // Slot 1 is always backend-behaving with slot 0.
    for (int q = 0; q < 4; ++q) {
        sched::QuantumTrace t;
        t.quantum = static_cast<std::uint64_t>(q);
        t.corunner_slot = 0;
        t.frontend_dominant = false;
        r.traces[1].push_back(t);
    }
    const std::vector<workloads::Group> groups = {workloads::Group::kFrontendBound,
                                                  workloads::Group::kBackendBound};
    const PairBehaviorStats stats = pair_behavior_stats(r, groups);
    ASSERT_EQ(stats.slots, 2);
    // Slot 0: 75% of quanta frontend-behaving with slot 1, 25% backend.
    EXPECT_NEAR(stats.fe_share[0][1], 75.0, 1e-9);
    EXPECT_NEAR(stats.be_share[0][1], 25.0, 1e-9);
    // Cross-group: frontend behaviour with backend-bound partner = 3 of 4.
    EXPECT_NEAR(stats.diff_group_pct[0], 75.0, 1e-9);
    // Slot 1: backend behaviour with a frontend-bound partner every quantum.
    EXPECT_NEAR(stats.diff_group_pct[1], 100.0, 1e-9);
}

TEST(PairBehavior, EmptyTracesAreSafe) {
    sched::RunResult r;
    r.traces.resize(3);
    const std::vector<workloads::Group> groups(3, workloads::Group::kOther);
    const PairBehaviorStats stats = pair_behavior_stats(r, groups);
    EXPECT_EQ(stats.slots, 3);
    for (double pct : stats.diff_group_pct) EXPECT_DOUBLE_EQ(pct, 0.0);
}

}  // namespace
