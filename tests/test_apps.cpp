// Tests for the application suite: profile validation, phase machine
// behaviour, warmup decay, and the 28-application roster.
#include <gtest/gtest.h>

#include <set>

#include "apps/instance.hpp"
#include "apps/profile.hpp"
#include "apps/spec_suite.hpp"

namespace {

using namespace synpa::apps;

TEST(Suite, HasTwentyEightUniqueApplications) {
    const auto& suite = spec_suite();
    EXPECT_EQ(suite.size(), 28u);
    std::set<std::string> names;
    for (const auto& app : suite) EXPECT_TRUE(names.insert(app.name).second) << app.name;
}

TEST(Suite, AllProfilesValidate) {
    for (const auto& app : spec_suite()) EXPECT_NO_THROW(validate_profile(app)) << app.name;
}

TEST(Suite, PaperRosterPresent) {
    for (const char* name :
         {"mcf", "lbm_r", "cactuBSSN_r", "milc", "xalancbmk_r", "wrf_r", "astar", "gobmk",
          "leela_r", "mcf_r", "perlbench", "hmmer", "nab_r", "bwaves", "bzip2", "tonto"})
        EXPECT_TRUE(has_app(name)) << name;
    EXPECT_FALSE(has_app("not_a_benchmark"));
}

TEST(Suite, FindAppThrowsOnUnknown) {
    EXPECT_THROW(find_app("doom"), std::out_of_range);
    EXPECT_EQ(find_app("mcf").name, "mcf");
}

TEST(Suite, LeelaHasAlternatingPhases) {
    const AppProfile& leela = find_app("leela_r");
    ASSERT_EQ(leela.phase_count(), 2u);
    // The search phase is frontend-dominated, the eval phase backend-heavy.
    EXPECT_GT(leela.phases[0].fe_events_per_kinst, leela.phases[1].fe_events_per_kinst);
    EXPECT_LT(leela.phases[0].be_events_per_kinst, leela.phases[1].be_events_per_kinst);
}

TEST(Profile, ValidationCatchesBadValues) {
    AppProfile p;
    p.name = "bad";
    p.phases.push_back({});
    p.phases[0].dispatch_demand = 5.0;  // above dispatch width
    EXPECT_THROW(validate_profile(p), std::invalid_argument);
    p.phases[0].dispatch_demand = 2.0;
    p.phases[0].mlp = 0.5;  // below 1
    EXPECT_THROW(validate_profile(p), std::invalid_argument);
    p.phases[0].mlp = 1.5;
    p.phases[0].l2_hit_fraction = 1.5;  // outside [0,1]
    EXPECT_THROW(validate_profile(p), std::invalid_argument);
    p.phases[0].l2_hit_fraction = 0.5;
    EXPECT_NO_THROW(validate_profile(p));
    p.phases.clear();
    EXPECT_THROW(validate_profile(p), std::invalid_argument);
}

TEST(Instance, PhaseAccessWrapsCyclically) {
    const AppProfile& leela = find_app("leela_r");
    EXPECT_EQ(&leela.phase(0), &leela.phases[0]);
    EXPECT_EQ(&leela.phase(3), &leela.phases[1]);
}

TEST(Instance, RetireAdvancesInstructionCount) {
    AppInstance t(1, find_app("mcf"), 1);
    t.retire(1000);
    t.retire(500);
    EXPECT_EQ(t.insts_retired(), 1500u);
}

TEST(Instance, PhaseMachineVisitsAllPhases) {
    AppInstance t(1, find_app("leela_r"), 7);
    std::set<std::size_t> seen;
    for (int i = 0; i < 20'000; ++i) {
        t.retire(1000);
        seen.insert(t.phase_index());
    }
    EXPECT_EQ(seen.size(), find_app("leela_r").phase_count());
}

TEST(Instance, PhaseDwellMatchesMeanRoughly) {
    // Over many instructions, the fraction spent in each phase should track
    // the ratio of the dwell means.
    const AppProfile& leela = find_app("leela_r");
    AppInstance t(1, leela, 11);
    std::uint64_t in_search = 0, total = 0;
    const std::uint64_t step = 1000;
    for (int i = 0; i < 60'000; ++i) {
        if (t.phase_index() == 0) in_search += step;
        t.retire(step);
        total += step;
    }
    const double expected = leela.phases[0].dwell_insts_mean /
                            (leela.phases[0].dwell_insts_mean +
                             leela.phases[1].dwell_insts_mean);
    EXPECT_NEAR(static_cast<double>(in_search) / static_cast<double>(total), expected, 0.08);
}

TEST(Instance, SameSeedSamePhaseTrajectory) {
    AppInstance a(1, find_app("leela_r"), 42);
    AppInstance b(2, find_app("leela_r"), 42);  // different id, same seed
    for (int i = 0; i < 5'000; ++i) {
        a.retire(777);
        b.retire(777);
        ASSERT_EQ(a.phase_index(), b.phase_index()) << "diverged at step " << i;
    }
}

TEST(Instance, DifferentSeedsDifferentTrajectories) {
    AppInstance a(1, find_app("leela_r"), 42);
    AppInstance b(2, find_app("leela_r"), 43);
    int diffs = 0;
    for (int i = 0; i < 5'000; ++i) {
        a.retire(777);
        b.retire(777);
        diffs += a.phase_index() != b.phase_index();
    }
    EXPECT_GT(diffs, 0);
}

TEST(Instance, WarmupDecaysLinearlyToOne) {
    AppInstance t(1, find_app("mcf"), 1);
    EXPECT_DOUBLE_EQ(t.warmup_multiplier(), 1.0);
    t.start_warmup(1000, 2.0);
    EXPECT_DOUBLE_EQ(t.warmup_multiplier(), 2.0);
    t.retire(500);
    EXPECT_NEAR(t.warmup_multiplier(), 1.5, 1e-9);
    t.retire(600);
    EXPECT_DOUBLE_EQ(t.warmup_multiplier(), 1.0);
}

TEST(Instance, WarmupBelowOneClamped) {
    AppInstance t(1, find_app("mcf"), 1);
    t.start_warmup(100, 0.5);  // nonsensical multiplier is clamped up
    EXPECT_GE(t.warmup_multiplier(), 1.0);
}

TEST(Instance, RngStreamsAreIndependent) {
    AppInstance t(1, find_app("mcf"), 1);
    const auto fe1 = t.fe_rng()();
    AppInstance u(1, find_app("mcf"), 1);
    u.be_rng()();  // consuming BE stream must not disturb FE stream
    EXPECT_EQ(u.fe_rng()(), fe1);
}

}  // namespace
