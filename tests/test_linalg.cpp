// Unit and property tests for src/linalg: dense matrix ops, Gaussian solve,
// Householder-QR least squares and the ridge fallback.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "linalg/least_squares.hpp"
#include "linalg/matrix.hpp"

namespace {

using namespace synpa::linalg;
using synpa::common::Rng;

TEST(Matrix, InitializerListAndAccess) {
    const Matrix m = {{1.0, 2.0}, {3.0, 4.0}};
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 2u);
    EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RaggedInitializerThrows) {
    EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, IdentityMultiplyIsNoop) {
    const Matrix a = {{1, 2}, {3, 4}};
    const Matrix r = a * Matrix::identity(2);
    EXPECT_DOUBLE_EQ((r - a).max_abs(), 0.0);
}

TEST(Matrix, TransposeInvolution) {
    const Matrix a = {{1, 2, 3}, {4, 5, 6}};
    const Matrix t = a.transposed();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
    EXPECT_DOUBLE_EQ((t.transposed() - a).max_abs(), 0.0);
}

TEST(Matrix, MatVecKnownResult) {
    const Matrix a = {{1, 2}, {3, 4}};
    const std::vector<double> v = {1.0, 1.0};
    const auto r = a * v;
    EXPECT_DOUBLE_EQ(r[0], 3.0);
    EXPECT_DOUBLE_EQ(r[1], 7.0);
}

TEST(Matrix, ShapeMismatchThrows) {
    const Matrix a = {{1, 2}};
    const Matrix b = {{1, 2}};
    EXPECT_THROW(a * b, std::invalid_argument);
    EXPECT_THROW(a + b.transposed(), std::invalid_argument);
}

TEST(Gaussian, SolvesKnownSystem) {
    const Matrix a = {{2, 1}, {1, 3}};
    const auto x = solve_gaussian(a, {5, 10});
    EXPECT_NEAR(x[0], 1.0, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Gaussian, SingularThrows) {
    const Matrix a = {{1, 2}, {2, 4}};
    EXPECT_THROW(solve_gaussian(a, {1, 2}), std::runtime_error);
}

TEST(Gaussian, PropertyRandomSystemsRoundTrip) {
    Rng rng(99, 0);
    for (int trial = 0; trial < 25; ++trial) {
        const std::size_t n = 2 + rng.below(5);
        Matrix a(n, n);
        std::vector<double> x_true(n);
        for (std::size_t i = 0; i < n; ++i) {
            x_true[i] = rng.uniform(-3, 3);
            for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-1, 1);
            a(i, i) += static_cast<double>(n);  // diagonally dominant: nonsingular
        }
        const auto b = a * x_true;
        const auto x = solve_gaussian(a, b);
        for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
    }
}

TEST(Solve2x2, BasicAndSingular) {
    double x = 0, y = 0;
    ASSERT_TRUE(solve2x2(1, 1, 1, -1, 3, 1, x, y));
    EXPECT_NEAR(x, 2.0, 1e-12);
    EXPECT_NEAR(y, 1.0, 1e-12);
    EXPECT_FALSE(solve2x2(1, 2, 2, 4, 1, 2, x, y));
}

TEST(LeastSquares, ExactFitRecoversCoefficients) {
    // y = 2 + 3x, noise-free.
    Matrix a(5, 2);
    std::vector<double> y(5);
    for (int i = 0; i < 5; ++i) {
        a(i, 0) = 1.0;
        a(i, 1) = i;
        y[i] = 2.0 + 3.0 * i;
    }
    const auto fit = least_squares(a, y);
    EXPECT_NEAR(fit.coefficients[0], 2.0, 1e-10);
    EXPECT_NEAR(fit.coefficients[1], 3.0, 1e-10);
    EXPECT_NEAR(fit.mse, 0.0, 1e-12);
    EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(LeastSquares, PropertyRecoversPlantedModel) {
    Rng rng(123, 0);
    for (int trial = 0; trial < 10; ++trial) {
        const std::size_t n = 200;
        const std::vector<double> beta = {rng.uniform(-2, 2), rng.uniform(-2, 2),
                                          rng.uniform(-2, 2)};
        Matrix a(n, 3);
        std::vector<double> y(n);
        for (std::size_t i = 0; i < n; ++i) {
            a(i, 0) = 1.0;
            a(i, 1) = rng.uniform(0, 1);
            a(i, 2) = rng.uniform(0, 1);
            y[i] = beta[0] + beta[1] * a(i, 1) + beta[2] * a(i, 2) +
                   rng.uniform(-0.01, 0.01);
        }
        const auto fit = least_squares(a, y);
        for (int c = 0; c < 3; ++c) EXPECT_NEAR(fit.coefficients[c], beta[c], 0.05);
        EXPECT_LT(fit.mse, 1e-3);
    }
}

TEST(LeastSquares, RankDeficientThrows) {
    Matrix a(4, 2);
    std::vector<double> y(4, 1.0);
    for (int i = 0; i < 4; ++i) {
        a(i, 0) = 1.0;
        a(i, 1) = 2.0;  // column 1 = 2 * column 0
    }
    EXPECT_THROW(least_squares(a, y), std::runtime_error);
}

TEST(LeastSquares, UnderdeterminedThrows) {
    Matrix a(2, 3);
    std::vector<double> y(2);
    EXPECT_THROW(least_squares(a, y), std::invalid_argument);
}

TEST(Ridge, HandlesCollinearDesign) {
    Matrix a(6, 2);
    std::vector<double> y(6);
    for (int i = 0; i < 6; ++i) {
        a(i, 0) = 1.0;
        a(i, 1) = 2.0;  // perfectly collinear
        y[i] = 4.0;
    }
    const auto fit = ridge_least_squares(a, y, 1e-6);
    // Prediction must still be correct even though coefficients are not
    // uniquely identified.
    EXPECT_NEAR(fit.coefficients[0] + 2.0 * fit.coefficients[1], 4.0, 1e-3);
}

TEST(Ridge, MatchesOlsOnWellConditionedData) {
    Rng rng(5, 0);
    Matrix a(50, 2);
    std::vector<double> y(50);
    for (int i = 0; i < 50; ++i) {
        a(i, 0) = 1.0;
        a(i, 1) = rng.uniform(0, 10);
        y[i] = 1.0 + 0.5 * a(i, 1);
    }
    const auto ols = least_squares(a, y);
    const auto ridge = ridge_least_squares(a, y, 1e-9);
    EXPECT_NEAR(ols.coefficients[0], ridge.coefficients[0], 1e-5);
    EXPECT_NEAR(ols.coefficients[1], ridge.coefficients[1], 1e-5);
}

}  // namespace
