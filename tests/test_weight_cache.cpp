// Tests for the incremental allocation path: estimate epochs
// (core/estimator.hpp), the dirty-set WeightCache (core/weight_cache.hpp),
// the policy's whole-chip solve memo, warm-started grouping/matching, and
// the hot-path correctness fixes that rode along (odd-n greedy matching,
// the mid-quantum partner-retirement estimator update, and the grouping
// assembly oracle-call elimination).
//
// The load-bearing property throughout: with the cache ON, every
// allocation is bit-identical to the cache-OFF legacy recompute — the
// cache may only skip work, never change results.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "core/estimator.hpp"
#include "core/synpa_policy.hpp"
#include "core/weight_cache.hpp"
#include "matching/matching.hpp"
#include "model/interference_model.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "sched/policy.hpp"
#include "uarch/platform.hpp"

namespace {

using namespace synpa;
using namespace synpa::core;

model::CategoryBreakdown breakdown_from_fractions(const model::CategoryVector& f,
                                                  std::uint64_t cycles = 10'000) {
    model::CategoryBreakdown b;
    b.cycles = cycles;
    for (std::size_t c = 0; c < model::kCategoryCount; ++c)
        b.categories[c] = f[c] * static_cast<double>(cycles);
    return b;
}

sched::TaskObservation make_obs(int task, int core, int partner,
                                const model::CategoryVector& fractions) {
    sched::TaskObservation o;
    o.task_id = task;
    o.core = core;
    o.corunner_task_id = partner;
    if (partner >= 0) o.corunner_task_ids.push_back(partner);
    o.smt_ways = 2;
    o.total_cores = 2;
    o.breakdown = breakdown_from_fractions(fractions);
    return o;
}

// Exactly representable fractions summing to exactly 1.0: the EMA fixed
// point is reached after the very first observation, so repeated identical
// observations must leave the stored estimate bitwise unchanged.
constexpr model::CategoryVector kExactFractions = {0.25, 0.25, 0.5};

// ------------------------------------------------------ estimate epochs --

TEST(EstimateEpochs, UnseenTaskIsEpochZero) {
    const SynpaEstimator est(model::InterferenceModel::paper_table4());
    EXPECT_EQ(est.estimate_epoch(7), 0u);
    EXPECT_EQ(est.model_epoch(), 0u);
}

TEST(EstimateEpochs, FirstObservationBumpsSteadyStateDoesNot) {
    SynpaEstimator est(model::InterferenceModel::paper_table4());
    const std::vector<sched::TaskObservation> obs = {make_obs(1, 0, -1, kExactFractions)};
    est.observe(obs);
    const std::uint64_t after_first = est.estimate_epoch(1);
    EXPECT_GE(after_first, 1u);
    const model::CategoryVector settled = est.estimate(1);

    // Identical observations at the EMA fixed point: the stored estimate
    // must not change bitwise, so the epoch must not move — this is what
    // lets cached costs survive quantum after quantum in steady phases.
    for (int q = 0; q < 5; ++q) est.observe(obs);
    EXPECT_EQ(est.estimate_epoch(1), after_first);
    const model::CategoryVector still = est.estimate(1);
    for (std::size_t c = 0; c < model::kCategoryCount; ++c)
        EXPECT_EQ(still[c], settled[c]);  // bitwise
}

TEST(EstimateEpochs, ChangedObservationBumps) {
    SynpaEstimator est(model::InterferenceModel::paper_table4());
    est.observe(std::vector<sched::TaskObservation>{make_obs(1, 0, -1, kExactFractions)});
    const std::uint64_t before = est.estimate_epoch(1);
    est.observe(std::vector<sched::TaskObservation>{make_obs(1, 0, -1, {0.5, 0.25, 0.25})});
    EXPECT_GT(est.estimate_epoch(1), before);
}

TEST(EstimateEpochs, LifecycleAndAlarmHooksAlwaysBump) {
    SynpaEstimator est(model::InterferenceModel::paper_table4());
    est.observe(std::vector<sched::TaskObservation>{make_obs(1, 0, -1, kExactFractions)});

    const std::uint64_t e1 = est.estimate_epoch(1);
    est.bump_epoch(1);  // phase alarm: value untouched, freshness revoked
    EXPECT_EQ(est.estimate_epoch(1), e1 + 1);

    const std::uint64_t e9 = est.estimate_epoch(9);
    est.transfer(1, 9);  // relaunch: both sides' cached costs are stale
    EXPECT_GT(est.estimate_epoch(1), e1 + 1);
    EXPECT_GT(est.estimate_epoch(9), e9);

    const std::uint64_t e9b = est.estimate_epoch(9);
    est.forget(9);  // departure: the id's estimate reverts to the prior
    EXPECT_GT(est.estimate_epoch(9), e9b);

    EXPECT_EQ(est.model_epoch(), 0u);
    est.set_model(model::InterferenceModel::paper_table4());
    EXPECT_EQ(est.model_epoch(), 1u);
}

// ------------------------------------------- mid-quantum partner retire --
// Regression (hot-path fix): the pair-ownership guard `corunner < task =>
// skip` used to run before the partner-presence check, so a surviving task
// whose lower-id partner retired mid-quantum was silently skipped and got
// no estimate update that quantum.  Ownership only applies when both
// observations are present; a lone survivor must still be updated (against
// a synthesized partner derived from the current estimates).

TEST(EstimatorPartnerRetired, SurvivorWithLowerIdPartnerStillUpdates) {
    SynpaEstimator est(model::InterferenceModel::paper_table4());
    // Task 2 co-ran with task 1, but task 1 finished mid-quantum: its
    // observation is absent from the batch.  Pre-fix this batch was a
    // no-op for task 2.
    est.observe(std::vector<sched::TaskObservation>{make_obs(2, 0, 1, {0.3, 0.5, 0.2})});
    EXPECT_TRUE(est.has_estimate(2));
    EXPECT_GE(est.estimate_epoch(2), 1u);
}

TEST(EstimatorPartnerRetired, SurvivorWithHigherIdPartnerStillUpdates) {
    SynpaEstimator est(model::InterferenceModel::paper_table4());
    est.observe(std::vector<sched::TaskObservation>{make_obs(1, 0, 2, {0.3, 0.5, 0.2})});
    EXPECT_TRUE(est.has_estimate(1));
}

TEST(EstimatorPartnerRetired, PresentPairsStillHandledOnce) {
    // The ownership guard must keep deduplicating complete pairs: both
    // members present => exactly one inversion, both sides updated.
    SynpaEstimator est(model::InterferenceModel::paper_table4());
    est.observe(std::vector<sched::TaskObservation>{
        make_obs(1, 0, 2, {0.3, 0.5, 0.2}), make_obs(2, 0, 1, {0.15, 0.05, 0.8})});
    EXPECT_TRUE(est.has_estimate(1));
    EXPECT_TRUE(est.has_estimate(2));
}

// ------------------------------------------------------ WeightCache unit --

TEST(WeightCacheTest, SoloStoreFindAndEpochInvalidation) {
    WeightCache cache;
    EXPECT_EQ(cache.find_solo(3, 1), nullptr);
    EXPECT_EQ(cache.stats().misses, 1u);
    cache.store_solo(3, 1, 2.5);
    const double* hit = cache.find_solo(3, 1);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(*hit, 2.5);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.find_solo(3, 2), nullptr);  // epoch moved: stale
    EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(WeightCacheTest, PairKeyIsOrderNormalized) {
    WeightCache cache;
    cache.store_pair(5, 2, 1, 7, 3.25);  // stored as (1, 5)
    const double* hit = cache.find_pair(1, 7, 5, 2);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(*hit, 3.25);
    EXPECT_EQ(cache.find_pair(1, 8, 5, 2), nullptr);  // either epoch stale
    EXPECT_EQ(cache.find_pair(1, 7, 5, 3), nullptr);
}

TEST(WeightCacheTest, GroupKeyIsOrderSensitive) {
    // Group costs fold member slowdowns in member order, and FP addition
    // does not associate — permuted member lists are distinct keys.
    WeightCache cache;
    const WeightCache::GroupKey abc = {1, 2, 3, -1};
    const WeightCache::GroupKey bac = {2, 1, 3, -1};
    const std::array<std::uint64_t, WeightCache::kMaxGroup> epochs = {4, 5, 6, 0};
    const std::array<std::uint64_t, WeightCache::kMaxGroup> epochs_bac = {5, 4, 6, 0};
    cache.store_group(abc, 3, epochs, 9.0);
    ASSERT_NE(cache.find_group(abc, 3, epochs), nullptr);
    EXPECT_EQ(cache.find_group(bac, 3, epochs_bac), nullptr);
}

TEST(WeightCacheTest, ForgetDropsSoloAndPairRow) {
    WeightCache cache;
    cache.store_solo(1, 1, 1.0);
    cache.store_pair(1, 1, 2, 1, 2.0);
    cache.forget(1);
    EXPECT_EQ(cache.find_solo(1, 1), nullptr);
    EXPECT_EQ(cache.find_pair(1, 1, 2, 1), nullptr);
}

TEST(WeightCacheTest, ModelEpochChangeClearsEverything) {
    WeightCache cache;
    cache.sync_model_epoch(0);
    cache.store_solo(1, 1, 1.0);
    cache.store_pair(1, 1, 2, 1, 2.0);
    cache.sync_model_epoch(0);  // unchanged: entries survive
    EXPECT_NE(cache.find_solo(1, 1), nullptr);
    cache.sync_model_epoch(1);  // refit: every coefficient moved
    EXPECT_EQ(cache.find_solo(1, 1), nullptr);
    EXPECT_EQ(cache.find_pair(1, 1, 2, 1), nullptr);
}

// -------------------------------------------------- odd-n greedy matching --
// Regression (hot-path fix): the greedy matcher used to pair floor(n/2)
// vertices and silently drop the last one on odd n, violating the module's
// "every solver throws on odd n" contract the partial allocator depends on
// (it pads to even *before* solving precisely because no perfect matching
// exists otherwise).

TEST(GreedyMatcher, ThrowsOnOddVertexCount) {
    SynpaPolicy::Options opts;
    opts.selector = PairSelector::kGreedy;
    const SynpaPolicy policy(model::InterferenceModel::paper_table4(), opts);
    matching::WeightMatrix odd(3, 1.0);
    EXPECT_THROW(policy.matcher().min_weight_perfect(odd), std::invalid_argument);
    EXPECT_THROW(policy.matcher().max_weight_perfect(odd), std::invalid_argument);
    matching::WeightMatrix empty(0);
    EXPECT_THROW(policy.matcher().min_weight_perfect(empty), std::invalid_argument);
}

TEST(GreedyMatcher, EvenInstancesStillSolve) {
    SynpaPolicy::Options opts;
    opts.selector = PairSelector::kGreedy;
    const SynpaPolicy policy(model::InterferenceModel::paper_table4(), opts);
    matching::WeightMatrix w(4, 5.0);
    w.set(0, 1, 1.0);
    w.set(2, 3, 1.0);
    const matching::MatchingResult r = policy.matcher().min_weight_perfect(w);
    EXPECT_EQ(r.pairs.size(), 2u);
    EXPECT_NEAR(r.total_weight, 2.0, 1e-12);
}

// ------------------------------------------------- warm-started grouping --

namespace grouping_helpers {

double synthetic_pair_weight(int u, int v) {
    return static_cast<double>((u * 31 + v * 17 + u * v) % 97) / 97.0 + 0.5;
}

/// Deterministic synthetic group cost with real pairwise structure, plus a
/// call counter so tests can meter the oracle.
matching::GroupCost counting_cost(std::size_t& calls) {
    return [&calls](std::span<const int> g) {
        ++calls;
        double total = 0.0;
        for (std::size_t i = 0; i < g.size(); ++i)
            for (std::size_t j = i + 1; j < g.size(); ++j)
                total += synthetic_pair_weight(g[i], g[j]);
        return total + static_cast<double>(g.size());
    };
}

void expect_valid_partition(const matching::GroupingResult& r, std::size_t n,
                            std::size_t cores, std::size_t width) {
    std::set<int> seen;
    EXPECT_LE(r.groups.size(), cores);
    for (const auto& g : r.groups) {
        EXPECT_GE(g.size(), 1u);
        EXPECT_LE(g.size(), width);
        for (const int id : g) EXPECT_TRUE(seen.insert(id).second);
    }
    EXPECT_EQ(seen.size(), n);
}

}  // namespace grouping_helpers

TEST(WarmGrouping, EmptyIncumbentReproducesColdBitForBit) {
    using namespace grouping_helpers;
    constexpr std::size_t n = 40, cores = 16, width = 4;
    std::size_t cold_calls = 0, warm_calls = 0;
    const matching::GroupingResult cold =
        matching::min_weight_grouping_heuristic(n, cores, width, counting_cost(cold_calls));
    const matching::GroupingResult warm = matching::min_weight_grouping_heuristic(
        n, cores, width, counting_cost(warm_calls), {});
    EXPECT_EQ(cold.groups, warm.groups);
    EXPECT_EQ(cold.total_weight, warm.total_weight);  // bitwise
    EXPECT_EQ(cold_calls, warm_calls);
}

TEST(WarmGrouping, UnchangedIncumbentResolvesAlmostForFree) {
    using namespace grouping_helpers;
    constexpr std::size_t n = 64, cores = 32, width = 4;
    std::size_t cold_calls = 0;
    const matching::GroupingResult cold =
        matching::min_weight_grouping(n, cores, width, counting_cost(cold_calls));

    // Re-solve the identical instance seeded from its own solution: every
    // bucket seeds clean, so the only oracle traffic is one cost per
    // non-empty bucket.
    std::size_t warm_calls = 0;
    const matching::GroupingResult warm = matching::min_weight_grouping(
        n, cores, width, counting_cost(warm_calls), cold.groups);
    EXPECT_EQ(warm.groups, cold.groups);
    EXPECT_EQ(warm.total_weight, cold.total_weight);  // bitwise
    EXPECT_LE(warm_calls, cold.groups.size());
    EXPECT_GE(cold_calls, 20 * warm_calls);  // the whole point
}

TEST(WarmGrouping, SingleArrivalCostsNearDirtySet) {
    using namespace grouping_helpers;
    constexpr std::size_t n = 64, cores = 32, width = 4;
    std::size_t cold_calls = 0;
    const matching::GroupingResult cold =
        matching::min_weight_grouping(n, cores, width, counting_cost(cold_calls));

    // One arrival: task n is new, the incumbent covers 0..n-1.  The warm
    // re-solve must produce a valid partition at >= 5x fewer oracle calls
    // than a cold solve of the same instance (the ISSUE's acceptance ratio,
    // asserted at bench scale too).
    std::size_t cold_np1 = 0, warm_np1 = 0;
    const matching::GroupingResult cold_next =
        matching::min_weight_grouping(n + 1, cores, width, counting_cost(cold_np1));
    const matching::GroupingResult warm_next = matching::min_weight_grouping(
        n + 1, cores, width, counting_cost(warm_np1), cold.groups);
    expect_valid_partition(cold_next, n + 1, cores, width);
    expect_valid_partition(warm_next, n + 1, cores, width);
    EXPECT_GE(cold_np1, 5 * warm_np1);
}

TEST(WarmGrouping, StaleIncumbentIdsAreTolerated) {
    using namespace grouping_helpers;
    constexpr std::size_t n = 20, cores = 8, width = 4;
    // Incumbent full of garbage: out-of-range ids, duplicates, an overfull
    // group.  Everything falls through to greedy seeding; the result must
    // still be a valid partition.
    const std::vector<std::vector<int>> stale = {
        {99, -3, 0, 0, 1, 2, 3, 4, 5}, {7, 7}, {1000}};
    std::size_t calls = 0;
    const matching::GroupingResult warm = matching::min_weight_grouping_heuristic(
        n, cores, width, counting_cost(calls), stale);
    expect_valid_partition(warm, n, cores, width);
}

// Regression (hot-path fix): the heuristic's final assembly used to call
// the GroupCost oracle once per final group to rebuild total_weight, even
// though every final bucket's cost was already cached.  At width 1 the
// whole solve is exactly countable: seeding tries every empty bucket
// (n + n-1 + ... + 1 calls), one local-search pass evaluates every ordered
// (a, b) swap (2 calls each; the empty donor side is free), and assembly
// must add ZERO — pre-fix it added n.
TEST(WarmGrouping, AssemblyAddsNoOracleCalls) {
    constexpr std::size_t n = 8;
    std::size_t calls = 0;
    const matching::GroupCost cost = [&calls](std::span<const int> g) {
        ++calls;
        double total = 0.0;
        for (const int id : g) total += static_cast<double>(id + 1);
        return total;
    };
    const matching::GroupingResult r =
        matching::min_weight_grouping_heuristic(n, n, 1, cost);
    EXPECT_EQ(r.groups.size(), n);
    EXPECT_EQ(r.total_weight, static_cast<double>(n * (n + 1) / 2));
    const std::size_t seeding = n * (n + 1) / 2;
    const std::size_t search = 2 * n * (n - 1);
    EXPECT_EQ(calls, seeding + search);  // pre-fix: + n assembly calls
}

// ------------------------------------------------ warm stabilized pairs --

TEST(WarmStabilized, UnchangedInputsReturnPreviousVerbatim) {
    matching::WeightMatrix w(4, 5.0);
    w.set(0, 1, 1.0);
    w.set(2, 3, 1.0);
    const matching::BlossomMatcher matcher;
    const matching::StabilizedSelection first =
        matching::stabilized_min_weight(w, {}, matcher, 0.002, 0.001);
    ASSERT_EQ(first.pairs.size(), 2u);

    const matching::StabilizedSelection warm = matching::stabilized_min_weight(
        w, first.pairs, matcher, 0.002, 0.001, &first, /*inputs_unchanged=*/true);
    EXPECT_EQ(warm.pairs, first.pairs);
    EXPECT_EQ(warm.selected_weight, first.selected_weight);

    // A failed certificate falls through to the cold path (which keeps the
    // incumbent here — it is optimal already).
    const matching::StabilizedSelection cold = matching::stabilized_min_weight(
        w, first.pairs, matcher, 0.002, 0.001, &first, /*inputs_unchanged=*/false);
    EXPECT_EQ(cold.pairs, first.pairs);
    EXPECT_TRUE(cold.kept_current);
}

// -------------------------------------------- policy solve memo + alarms --

TEST(PolicySolveMemo, SteadyQuantaReuseTheChipSolve) {
    SynpaPolicy::Options opts;
    opts.weight_cache = true;
    SynpaPolicy policy(model::InterferenceModel::paper_table4(), opts);
    // Solo observations with exactly representable fractions: estimates hit
    // their EMA fixed point on the first quantum, so from the second
    // reallocate on, nothing in the memo key moves.
    const std::vector<sched::TaskObservation> obs = {
        make_obs(1, 0, -1, kExactFractions), make_obs(2, 0, -1, {0.5, 0.25, 0.25}),
        make_obs(3, 1, -1, {0.25, 0.5, 0.25}), make_obs(4, 1, -1, {0.125, 0.375, 0.5})};
    const sched::CoreAllocation first = policy.reallocate(obs);
    const std::uint64_t reuse_after_first = policy.weight_cache_stats().solve_reuse;
    const sched::CoreAllocation second = policy.reallocate(obs);
    EXPECT_GT(policy.weight_cache_stats().solve_reuse, reuse_after_first);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t g = 0; g < first.size(); ++g) {
        const auto a = first[g].members();
        const auto b = second[g].members();
        EXPECT_EQ(std::vector<int>(a.begin(), a.end()),
                  std::vector<int>(b.begin(), b.end()));
    }
}

TEST(PolicySolveMemo, PhaseAlarmInvalidatesTheMemo) {
    SynpaPolicy::Options opts;
    opts.weight_cache = true;
    SynpaPolicy policy(model::InterferenceModel::paper_table4(), opts);
    const std::vector<sched::TaskObservation> obs = {
        make_obs(1, 0, -1, kExactFractions), make_obs(2, 0, -1, {0.5, 0.25, 0.25}),
        make_obs(3, 1, -1, {0.25, 0.5, 0.25}), make_obs(4, 1, -1, {0.125, 0.375, 0.5})};
    policy.reallocate(obs);
    policy.reallocate(obs);
    const std::uint64_t reuse = policy.weight_cache_stats().solve_reuse;
    const std::uint64_t epoch = policy.estimator().estimate_epoch(2);

    policy.on_phase_alarm(2);  // freshness revoked, value untouched
    EXPECT_EQ(policy.estimator().estimate_epoch(2), epoch + 1);
    policy.reallocate(obs);
    // The alarmed quantum may not reuse the memo (the epoch moved) ...
    EXPECT_EQ(policy.weight_cache_stats().solve_reuse, reuse);
    // ... but the estimate itself did not change, so the re-solve settles
    // straight back into reuse on the following quantum.
    policy.reallocate(obs);
    EXPECT_GT(policy.weight_cache_stats().solve_reuse, reuse);
}

TEST(PolicySolveMemo, TaskLifecycleInvalidatesTheMemo) {
    SynpaPolicy::Options opts;
    opts.weight_cache = true;
    SynpaPolicy policy(model::InterferenceModel::paper_table4(), opts);
    const std::vector<sched::TaskObservation> obs = {
        make_obs(1, 0, -1, kExactFractions), make_obs(2, 0, -1, {0.5, 0.25, 0.25}),
        make_obs(3, 1, -1, {0.25, 0.5, 0.25}), make_obs(4, 1, -1, {0.125, 0.375, 0.5})};
    policy.reallocate(obs);
    policy.reallocate(obs);
    const std::uint64_t reuse = policy.weight_cache_stats().solve_reuse;

    const std::uint64_t old_epoch = policy.estimator().estimate_epoch(4);
    policy.on_task_replaced(4, 9);
    EXPECT_GT(policy.estimator().estimate_epoch(4), old_epoch);
    EXPECT_GT(policy.estimator().estimate_epoch(9), 0u);

    auto relaunched = obs;
    relaunched[3] = make_obs(9, 1, -1, {0.125, 0.375, 0.5});
    policy.reallocate(relaunched);  // new id: the memo key cannot match
    EXPECT_EQ(policy.weight_cache_stats().solve_reuse, reuse);
}

// --------------------------------------- cache on/off scenario identity --

uarch::SimConfig sweep_config(int num_chips, int smt_ways) {
    uarch::SimConfig cfg;
    cfg.num_chips = num_chips;
    cfg.cores = 2;
    cfg.smt_ways = smt_ways;
    cfg.cycles_per_quantum = 4'000;
    return cfg;
}

std::vector<sched::TaskSpec> sweep_closed_specs() {
    return {
        {.app_name = "nab_r", .seed = 1, .target_insts = 24'000, .isolated_ipc = 2.0},
        {.app_name = "mcf", .seed = 2, .target_insts = 24'000, .isolated_ipc = 0.6},
        {.app_name = "gobmk", .seed = 3, .target_insts = 24'000, .isolated_ipc = 1.0},
        {.app_name = "bwaves", .seed = 4, .target_insts = 24'000, .isolated_ipc = 1.7},
        {.app_name = "leela_r", .seed = 5, .target_insts = 24'000, .isolated_ipc = 1.1},
        {.app_name = "hmmer", .seed = 6, .target_insts = 24'000, .isolated_ipc = 1.9},
        {.app_name = "lbm_r", .seed = 7, .target_insts = 24'000, .isolated_ipc = 0.8},
        {.app_name = "astar", .seed = 8, .target_insts = 24'000, .isolated_ipc = 1.2},
    };
}

scenario::ScenarioSpec sweep_open_spec() {
    scenario::ScenarioSpec spec;
    spec.name = "weight-cache-open";
    spec.process = scenario::ArrivalProcess::kPoisson;
    spec.app_mix = {"mcf", "leela_r", "gobmk", "nab_r"};
    spec.initial_tasks = 4;
    spec.arrival_rate = 0.4;
    spec.service_quanta = 6;
    spec.horizon_quanta = 30;
    spec.seed = 5;
    return spec;
}

/// Exact run signature (quanta, migrations, per-task float schedule) — any
/// allocation divergence between the cached and uncached paths shows up
/// here within a quantum or two.
std::string run_signature(const scenario::ScenarioResult& result) {
    std::string sig = std::to_string(result.quanta_executed) + "/" +
                      std::to_string(result.migrations);
    for (const scenario::TaskRecord& rec : result.tasks) {
        sig += ";" + std::to_string(rec.task_id) + ":" +
               std::to_string(rec.finish_quantum) + ":" +
               std::to_string(rec.admit_quantum);
    }
    return sig;
}

TEST(WeightCacheIdentity, CachedRunsMatchUncachedEverywhere) {
    // The tentpole's acceptance sweep: widths {2,4} x chips {1,4} x
    // closed/open.  The cached path must be bit-identical to the legacy
    // recompute in every cell — same quanta, same migrations, same exact
    // per-task finish times.
    for (const int width : {2, 4}) {
        for (const int chips : {1, 4}) {
            const uarch::SimConfig cfg = sweep_config(chips, width);
            // Closed scenarios must fill the platform: cycle the app list
            // out to one spec per hardware context.
            const std::vector<sched::TaskSpec> base = sweep_closed_specs();
            std::vector<sched::TaskSpec> specs;
            for (int i = 0; i < chips * 2 * width; ++i) {
                sched::TaskSpec spec = base[static_cast<std::size_t>(i) % base.size()];
                spec.seed = static_cast<std::uint64_t>(i + 1);
                specs.push_back(spec);
            }
            const scenario::ScenarioTrace closed =
                scenario::closed_trace("weight-cache-closed", specs);
            const scenario::ScenarioTrace open = scenario::build_trace(sweep_open_spec(), cfg);
            for (const scenario::ScenarioTrace* trace : {&closed, &open}) {
                std::vector<std::string> signatures;
                std::uint64_t cached_lookups = 0;
                for (const bool cached : {false, true}) {
                    uarch::Platform platform(cfg);
                    SynpaPolicy::Options opts;
                    opts.weight_cache = cached;
                    SynpaPolicy policy(model::InterferenceModel::paper_table4(), opts);
                    scenario::ScenarioRunner runner(platform, policy, *trace,
                                                    {.max_quanta = 3'000});
                    const scenario::ScenarioResult result = runner.run();
                    EXPECT_TRUE(result.completed)
                        << "width " << width << " chips " << chips;
                    signatures.push_back(run_signature(result));
                    const WeightCache::Stats& stats = policy.weight_cache_stats();
                    if (cached) {
                        cached_lookups = stats.hits + stats.misses + stats.solve_reuse;
                    } else {
                        EXPECT_EQ(stats.hits + stats.misses + stats.solve_reuse, 0u);
                    }
                }
                EXPECT_EQ(signatures[0], signatures[1])
                    << "cache changed the schedule at width " << width << " chips "
                    << chips;
                EXPECT_GT(cached_lookups, 0u);  // the cached run really cached
            }
        }
    }
}

// ----------------------------------------------- 512-context steady state --

TEST(WeightCacheScale, SteadyStateHitRateAtFiveTwelveContexts) {
    // The CI-gated acceptance metric: on a 512-hardware-context platform
    // (4 chips x 64 cores x SMT-2 — Step 2 builds the complete pair
    // matrix, so the query set repeats verbatim every quantum) under a
    // saturated long-running closed load, the post-warmup window must
    // answer >= 90% of its cost lookups from the cache — or issue no
    // lookups at all because the whole-chip solve memo absorbed the
    // quantum.
    uarch::SimConfig cfg;
    cfg.num_chips = 4;
    cfg.cores = 64;
    cfg.smt_ways = 2;
    cfg.cycles_per_quantum = 1'000;

    const std::vector<std::string> apps = {"mcf",    "leela_r", "gobmk", "nab_r",
                                           "bwaves", "hmmer",   "lbm_r", "astar"};
    std::vector<sched::TaskSpec> specs;
    specs.reserve(512);
    for (int i = 0; i < 512; ++i) {
        sched::TaskSpec spec;
        spec.app_name = apps[static_cast<std::size_t>(i) % apps.size()];
        spec.seed = static_cast<std::uint64_t>(i + 1);
        spec.target_insts = 500'000;  // outlives the measurement window
        spec.isolated_ipc = 1.0;
        specs.push_back(spec);
    }
    const scenario::ScenarioTrace trace = scenario::closed_trace("wc-512", specs);

    uarch::Platform platform(cfg);
    ASSERT_EQ(platform.hw_contexts(), 512);
    SynpaPolicy::Options opts;
    opts.weight_cache = true;
    // The platform is stochastic at the event level, so raw EMA estimates
    // never reach a bitwise fixed point (with deadband 0 this scenario's
    // hit rate is exactly 0%) — the incremental configuration pairs the
    // cache with a slower EMA and its noise deadband (the documented
    // SYNPA_EMA_DEADBAND setting for steady-state workloads).  Measured
    // here: ~98% window hit rate, with ~70% of chip-quanta skipping their
    // solve outright through the whole-chip memo.
    opts.estimator.ema_alpha = 0.2;
    opts.estimator.ema_deadband = 0.1;
    SynpaPolicy policy(model::InterferenceModel::paper_table4(), opts);

    constexpr std::uint64_t kWarmupQuanta = 100;
    std::uint64_t quantum = 0;
    WeightCache::Stats warm{};
    scenario::ScenarioRunner::Options ropts;
    ropts.max_quanta = 160;
    ropts.record_timeline = false;
    ropts.on_quantum = [&](const uarch::Platform&) {
        if (++quantum == kWarmupQuanta) warm = policy.weight_cache_stats();
    };
    scenario::ScenarioRunner runner(platform, policy, trace, ropts);
    runner.run();
    ASSERT_GT(quantum, kWarmupQuanta);

    const WeightCache::Stats& total = policy.weight_cache_stats();
    const std::uint64_t hits = total.hits - warm.hits;
    const std::uint64_t misses = total.misses - warm.misses;
    if (hits + misses > 0) {
        const double rate = static_cast<double>(hits) / static_cast<double>(hits + misses);
        EXPECT_GE(rate, 0.9) << hits << " hits / " << misses
                             << " misses after warmup";
    } else {
        // Zero lookups post-warmup means every quantum reused its chip
        // solve outright — stronger than any hit rate.
        EXPECT_GT(total.solve_reuse, warm.solve_reuse);
    }
}

}  // namespace
