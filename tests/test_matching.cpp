// Tests for the matching solvers: brute force, subset DP, and Blossom must
// agree on optimal weight across random instances (the key property that
// validates the Blossom implementation), plus hysteresis behaviour.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "matching/matching.hpp"

namespace {

using namespace synpa::matching;
using synpa::common::Rng;

WeightMatrix random_matrix(std::size_t n, std::uint64_t seed, double lo = 0.0,
                           double hi = 10.0) {
    Rng rng(seed, 0x3a3);
    WeightMatrix w(n);
    for (std::size_t u = 0; u < n; ++u)
        for (std::size_t v = u + 1; v < n; ++v) w.set(u, v, rng.uniform(lo, hi));
    return w;
}

void expect_valid_perfect(const MatchingResult& m, std::size_t n) {
    ASSERT_EQ(m.mate.size(), n);
    ASSERT_EQ(m.pairs.size(), n / 2);
    std::vector<bool> seen(n, false);
    for (auto [u, v] : m.pairs) {
        ASSERT_GE(u, 0);
        ASSERT_LT(static_cast<std::size_t>(v), n);
        ASSERT_NE(u, v);
        EXPECT_FALSE(seen[static_cast<std::size_t>(u)]);
        EXPECT_FALSE(seen[static_cast<std::size_t>(v)]);
        seen[static_cast<std::size_t>(u)] = seen[static_cast<std::size_t>(v)] = true;
        EXPECT_EQ(m.mate[static_cast<std::size_t>(u)], v);
        EXPECT_EQ(m.mate[static_cast<std::size_t>(v)], u);
    }
}

TEST(WeightMatrixTest, SymmetricSetGet) {
    WeightMatrix w(4);
    w.set(1, 3, 2.5);
    EXPECT_DOUBLE_EQ(w.get(3, 1), 2.5);
    EXPECT_THROW(w.get(4, 0), std::out_of_range);
    EXPECT_THROW(w.set(0, 4, 1.0), std::out_of_range);
}

TEST(WeightMatrixTest, MinMaxWeight) {
    WeightMatrix w(3);
    w.set(0, 1, -1.0);
    w.set(0, 2, 5.0);
    w.set(1, 2, 2.0);
    EXPECT_DOUBLE_EQ(w.min_weight(), -1.0);
    EXPECT_DOUBLE_EQ(w.max_weight(), 5.0);
}

TEST(Matchers, RejectOddOrEmpty) {
    // The documented odd-N contract: every perfect-matching solver throws a
    // clear error instead of padding silently — odd instances must go
    // through min_weight_partial.
    const BruteForceMatcher bf;
    const SubsetDpMatcher dp;
    const BlossomMatcher bl;
    for (const Matcher* m : {static_cast<const Matcher*>(&bf),
                             static_cast<const Matcher*>(&dp),
                             static_cast<const Matcher*>(&bl)}) {
        for (const std::size_t odd : {1u, 3u, 5u, 7u}) {
            EXPECT_THROW(m->min_weight_perfect(random_matrix(odd, odd)),
                         std::invalid_argument);
            EXPECT_THROW(m->max_weight_perfect(random_matrix(odd, odd)),
                         std::invalid_argument);
        }
        EXPECT_THROW(m->min_weight_perfect(WeightMatrix(0)), std::invalid_argument);
    }
}

// ---------- partial (imperfect) matching ----------

TEST(PartialMatching, OddCountLeavesTheRightTaskAlone) {
    // Three tasks, two cores: pairing (0,1) costs 2, any pair with 2 costs
    // 9; solo costs 1 each.  Optimum: pair (0,1), task 2 alone.
    WeightMatrix w(3);
    w.set(0, 1, 2.0);
    w.set(0, 2, 9.0);
    w.set(1, 2, 9.0);
    const std::vector<double> solo = {1.0, 1.0, 1.0};
    const BlossomMatcher matcher;
    const PartialMatching m = min_weight_partial(w, solo, 2, matcher);
    ASSERT_EQ(m.pairs.size(), 1u);
    EXPECT_EQ(m.pairs[0], std::make_pair(0, 1));
    ASSERT_EQ(m.singles.size(), 1u);
    EXPECT_EQ(m.singles[0], 2);
    EXPECT_DOUBLE_EQ(m.total_weight, 3.0);
}

TEST(PartialMatching, PrefersSinglesWhenPairsAreExpensive) {
    // Four tasks, four cores: every pair is worse than two solos, so the
    // optimum runs everything alone (the "runs alone" benefit term wins).
    WeightMatrix w(4);
    for (std::size_t u = 0; u < 4; ++u)
        for (std::size_t v = u + 1; v < 4; ++v) w.set(u, v, 5.0);
    const std::vector<double> solo = {1.0, 1.0, 1.0, 1.0};
    const PartialMatching m = min_weight_partial(w, solo, 4, BlossomMatcher{});
    EXPECT_TRUE(m.pairs.empty());
    EXPECT_EQ(m.singles, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_DOUBLE_EQ(m.total_weight, 4.0);
}

TEST(PartialMatching, ForcedSharingPicksTheCheapestPairs) {
    // Six tasks, four cores: at least two pairs must share.  Make (0,1) and
    // (2,3) clearly cheapest.
    WeightMatrix w(6, 10.0);
    w.set(0, 1, 2.0);
    w.set(2, 3, 2.5);
    const std::vector<double> solo(6, 1.0);
    const PartialMatching m = min_weight_partial(w, solo, 4, SubsetDpMatcher{});
    ASSERT_EQ(m.pairs.size(), 2u);
    ASSERT_EQ(m.singles.size(), 2u);
    EXPECT_EQ(m.singles, (std::vector<int>{4, 5}));
    EXPECT_DOUBLE_EQ(m.total_weight, 2.0 + 2.5 + 1.0 + 1.0);
}

TEST(PartialMatching, FullLoadReducesToPerfectMatching) {
    const WeightMatrix w = random_matrix(8, 0x11);
    const std::vector<double> solo(8, 0.0);
    const BlossomMatcher matcher;
    const PartialMatching partial = min_weight_partial(w, solo, 4, matcher);
    const MatchingResult perfect = matcher.min_weight_perfect(w);
    EXPECT_TRUE(partial.singles.empty());
    EXPECT_DOUBLE_EQ(partial.total_weight, perfect.total_weight);
}

TEST(PartialMatching, SolversAgreeOnRandomInstances) {
    for (std::uint64_t seed = 0; seed < 12; ++seed) {
        const std::size_t n = 3 + seed % 6;  // 3..8 tasks
        const std::size_t cores = 4;
        const WeightMatrix w = random_matrix(n, seed, 1.5, 6.0);
        Rng rng(seed, 0x50f0);
        std::vector<double> solo(n);
        for (double& s : solo) s = rng.uniform(0.8, 1.6);
        const PartialMatching a = min_weight_partial(w, solo, cores, BlossomMatcher{});
        const PartialMatching b = min_weight_partial(w, solo, cores, SubsetDpMatcher{});
        EXPECT_NEAR(a.total_weight, b.total_weight, 1e-9) << "seed " << seed;
        // Every task appears exactly once across pairs and singles.
        std::vector<int> seen(n, 0);
        for (auto [u, v] : a.pairs) {
            seen[static_cast<std::size_t>(u)] += 1;
            seen[static_cast<std::size_t>(v)] += 1;
        }
        for (int u : a.singles) seen[static_cast<std::size_t>(u)] += 1;
        for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(seen[i], 1) << "seed " << seed;
        EXPECT_LE(a.pairs.size() + a.singles.size(), cores);
    }
}

TEST(PartialMatching, RejectsOverloadAndBadInputs) {
    const WeightMatrix w = random_matrix(6, 0x7);
    const std::vector<double> solo(6, 1.0);
    EXPECT_THROW(min_weight_partial(w, solo, 2, BlossomMatcher{}), std::invalid_argument);
    EXPECT_THROW(min_weight_partial(w, std::vector<double>(5, 1.0), 4, BlossomMatcher{}),
                 std::invalid_argument);
    EXPECT_THROW(min_weight_partial(w, solo, 0, BlossomMatcher{}), std::invalid_argument);
}

TEST(Matchers, TrivialTwoVertices) {
    WeightMatrix w(2);
    w.set(0, 1, 7.0);
    for (const MatchingResult& m :
         {BruteForceMatcher{}.min_weight_perfect(w), SubsetDpMatcher{}.min_weight_perfect(w),
          BlossomMatcher{}.min_weight_perfect(w)}) {
        expect_valid_perfect(m, 2);
        EXPECT_DOUBLE_EQ(m.total_weight, 7.0);
    }
}

TEST(Matchers, KnownFourVertexInstance) {
    // Optimal min pairing: (0,1) + (2,3) = 1 + 1 = 2.
    WeightMatrix w(4);
    w.set(0, 1, 1.0);
    w.set(2, 3, 1.0);
    w.set(0, 2, 10.0);
    w.set(0, 3, 10.0);
    w.set(1, 2, 10.0);
    w.set(1, 3, 10.0);
    for (const MatchingResult& m :
         {BruteForceMatcher{}.min_weight_perfect(w), SubsetDpMatcher{}.min_weight_perfect(w),
          BlossomMatcher{}.min_weight_perfect(w)}) {
        expect_valid_perfect(m, 4);
        EXPECT_DOUBLE_EQ(m.total_weight, 2.0);
        EXPECT_EQ(m.mate[0], 1);
        EXPECT_EQ(m.mate[2], 3);
    }
}

// Property: all three solvers find the same optimal total on random
// instances, for both min and max orientation.
class MatcherAgreement : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MatcherAgreement, MinAndMaxTotalsAgree) {
    const auto [n, seed] = GetParam();
    const WeightMatrix w =
        random_matrix(static_cast<std::size_t>(n), static_cast<std::uint64_t>(seed));
    const BruteForceMatcher bf;
    const SubsetDpMatcher dp;
    const BlossomMatcher bl;

    const auto bf_min = bf.min_weight_perfect(w);
    const auto dp_min = dp.min_weight_perfect(w);
    const auto bl_min = bl.min_weight_perfect(w);
    expect_valid_perfect(bf_min, static_cast<std::size_t>(n));
    expect_valid_perfect(dp_min, static_cast<std::size_t>(n));
    expect_valid_perfect(bl_min, static_cast<std::size_t>(n));
    EXPECT_NEAR(dp_min.total_weight, bf_min.total_weight, 1e-9);
    // Blossom quantizes weights to a fine grid; allow that tolerance.
    EXPECT_NEAR(bl_min.total_weight, bf_min.total_weight, 1e-3);

    const auto bf_max = bf.max_weight_perfect(w);
    const auto dp_max = dp.max_weight_perfect(w);
    const auto bl_max = bl.max_weight_perfect(w);
    EXPECT_NEAR(dp_max.total_weight, bf_max.total_weight, 1e-9);
    EXPECT_NEAR(bl_max.total_weight, bf_max.total_weight, 1e-3);
    EXPECT_GE(bf_max.total_weight, bf_min.total_weight);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, MatcherAgreement,
                         ::testing::Combine(::testing::Values(2, 4, 6, 8, 10),
                                            ::testing::Range(0, 8)));

TEST(Blossom, NegativeWeightsHandled) {
    Rng rng(4, 0);
    for (int trial = 0; trial < 10; ++trial) {
        const WeightMatrix w = random_matrix(8, 1000 + trial, -5.0, 5.0);
        const auto bl = BlossomMatcher{}.min_weight_perfect(w);
        const auto dp = SubsetDpMatcher{}.min_weight_perfect(w);
        expect_valid_perfect(bl, 8);
        EXPECT_NEAR(bl.total_weight, dp.total_weight, 1e-3);
    }
}

TEST(Blossom, LargerInstancesStayConsistentWithDp) {
    for (int n : {12, 16, 20}) {
        const WeightMatrix w = random_matrix(static_cast<std::size_t>(n), 77 + n);
        const auto bl = BlossomMatcher{}.min_weight_perfect(w);
        const auto dp = SubsetDpMatcher{}.min_weight_perfect(w);
        expect_valid_perfect(bl, static_cast<std::size_t>(n));
        EXPECT_NEAR(bl.total_weight, dp.total_weight, 1e-3);
    }
}

TEST(Blossom, ScalesBeyondDpLimits) {
    // n = 64 is far above the subset-DP range; verify validity and that the
    // result is no worse than a greedy pairing.
    const std::size_t n = 64;
    const WeightMatrix w = random_matrix(n, 31337);
    const auto bl = BlossomMatcher{}.min_weight_perfect(w);
    expect_valid_perfect(bl, n);

    // Greedy reference.
    std::vector<bool> used(n, false);
    double greedy_total = 0.0;
    for (std::size_t k = 0; k < n / 2; ++k) {
        double best = 1e18;
        std::size_t bu = 0, bv = 0;
        for (std::size_t u = 0; u < n; ++u)
            for (std::size_t v = u + 1; v < n; ++v)
                if (!used[u] && !used[v] && w.get(u, v) < best) {
                    best = w.get(u, v);
                    bu = u;
                    bv = v;
                }
        used[bu] = used[bv] = true;
        greedy_total += best;
    }
    EXPECT_LE(bl.total_weight, greedy_total + 1e-6);
}

TEST(MatchingWeight, SumsPairs) {
    WeightMatrix w(4);
    w.set(0, 1, 1.5);
    w.set(2, 3, 2.5);
    EXPECT_DOUBLE_EQ(matching_weight(w, {{0, 1}, {2, 3}}), 4.0);
}

TEST(Stabilized, KeepsCurrentWithinThreshold) {
    WeightMatrix w(4);
    // Two nearly-equal matchings.
    w.set(0, 1, 1.0);
    w.set(2, 3, 1.0);
    w.set(0, 2, 1.0001);
    w.set(1, 3, 1.0001);
    w.set(0, 3, 5.0);
    w.set(1, 2, 5.0);
    const SubsetDpMatcher dp;
    const std::vector<std::pair<int, int>> current = {{0, 2}, {1, 3}};  // slightly worse
    const auto sel = stabilized_min_weight(w, current, dp, 0.01, 0.01);
    EXPECT_TRUE(sel.kept_current);
    EXPECT_EQ(sel.pairs, current);
}

TEST(Stabilized, MovesWhenGainIsLarge) {
    WeightMatrix w(4);
    w.set(0, 1, 1.0);
    w.set(2, 3, 1.0);
    w.set(0, 2, 10.0);
    w.set(1, 3, 10.0);
    w.set(0, 3, 10.0);
    w.set(1, 2, 10.0);
    const SubsetDpMatcher dp;
    const std::vector<std::pair<int, int>> current = {{0, 2}, {1, 3}};
    const auto sel = stabilized_min_weight(w, current, dp, 0.01, 0.01);
    EXPECT_FALSE(sel.kept_current);
    EXPECT_NEAR(sel.selected_weight, 2.0, 1e-9);
    EXPECT_NEAR(sel.current_weight, 20.0, 1e-9);
}

TEST(Stabilized, NoCurrentJustSolves) {
    WeightMatrix w(2);
    w.set(0, 1, 3.0);
    const SubsetDpMatcher dp;
    const auto sel = stabilized_min_weight(w, {}, dp);
    EXPECT_FALSE(sel.kept_current);
    EXPECT_NEAR(sel.selected_weight, 3.0, 1e-9);
}

// ---------- k-way core grouping ----------

/// Deterministic random cost table keyed by member bitmask, so the solver
/// under test and the brute-force reference score groups identically.
std::vector<double> random_cost_table(std::size_t n, std::uint64_t seed) {
    Rng rng(seed, 0x9c0);
    std::vector<double> table(1u << n);
    for (double& c : table) c = rng.uniform(0.5, 8.0);
    return table;
}

GroupCost table_cost(const std::vector<double>& table) {
    return [&table](std::span<const int> group) {
        std::uint32_t mask = 0;
        for (int v : group) mask |= 1u << v;
        return table[mask];
    };
}

/// Exhaustive reference: enumerate every partition of {0..n-1} into at most
/// `cores` groups of at most `width` members (canonical: each group owns
/// the lowest remaining index).
double brute_force_grouping(std::uint32_t remaining, std::size_t groups_left,
                            std::size_t width, const std::vector<double>& table) {
    if (remaining == 0) return 0.0;
    if (groups_left == 0) return 1e18;
    const std::uint32_t low = remaining & (~remaining + 1u);
    const std::uint32_t rest = remaining ^ low;
    double best = 1e18;
    for (std::uint32_t sub = rest;; sub = (sub - 1) & rest) {
        const std::uint32_t group = sub | low;
        if (static_cast<std::size_t>(std::popcount(group)) <= width) {
            const double tail =
                brute_force_grouping(remaining ^ group, groups_left - 1, width, table);
            best = std::min(best, table[group] + tail);
        }
        if (sub == 0) break;
    }
    return best;
}

void expect_valid_grouping(const GroupingResult& g, std::size_t n, std::size_t cores,
                           std::size_t width) {
    EXPECT_LE(g.groups.size(), cores);
    std::vector<int> seen(n, 0);
    for (const auto& group : g.groups) {
        ASSERT_FALSE(group.empty());
        ASSERT_LE(group.size(), width);
        EXPECT_TRUE(std::is_sorted(group.begin(), group.end()));
        for (int v : group) {
            ASSERT_GE(v, 0);
            ASSERT_LT(static_cast<std::size_t>(v), n);
            seen[static_cast<std::size_t>(v)] += 1;
        }
    }
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(seen[i], 1) << "task " << i;  // exactly-once coverage
}

TEST(Grouping, MatchesBruteForceAcrossWidths) {
    // Every width the TX2 BIOS offers, odd and even n, tight and ample core
    // budgets (tight budgets force full groups, ample ones allow partial
    // groups and idle cores).
    for (const std::size_t width : {2u, 3u, 4u}) {
        for (std::size_t n = 1; n <= 8; ++n) {
            const std::size_t tight = (n + width - 1) / width;
            for (const std::size_t cores : {tight, n}) {
                const std::vector<double> table =
                    random_cost_table(n, 100 * width + 10 * n + cores);
                const GroupingResult got =
                    min_weight_grouping(n, cores, width, table_cost(table));
                expect_valid_grouping(got, n, cores, width);
                const double want =
                    brute_force_grouping((1u << n) - 1u, cores, width, table);
                EXPECT_NEAR(got.total_weight, want, 1e-9)
                    << "n=" << n << " cores=" << cores << " width=" << width;
                EXPECT_NEAR(grouping_weight(got.groups, table_cost(table)),
                            got.total_weight, 1e-9);
            }
        }
    }
}

TEST(Grouping, Width2AgreesWithPairSolvers) {
    // At width 2 the grouper must reproduce the classical imperfect
    // matching: pair costs from a weight matrix, singleton costs from solo.
    const std::size_t n = 7, cores = 4;
    const WeightMatrix w = random_matrix(n, 0x77, 1.0, 6.0);
    Rng rng(0x77, 0x50f1);
    std::vector<double> solo(n);
    for (double& s : solo) s = rng.uniform(0.8, 1.8);
    const GroupCost cost = [&](std::span<const int> group) {
        if (group.size() == 1) return solo[static_cast<std::size_t>(group[0])];
        return w.get(static_cast<std::size_t>(group[0]), static_cast<std::size_t>(group[1]));
    };
    const GroupingResult grouped = min_weight_grouping(n, cores, 2, cost);
    const PartialMatching matched = min_weight_partial(w, solo, cores, SubsetDpMatcher{});
    EXPECT_NEAR(grouped.total_weight, matched.total_weight, 1e-9);
}

TEST(Grouping, DeterministicIncludingHeuristicPath) {
    // Identical inputs must give identical groupings — on the exact path
    // and on the large-n greedy/local-search path (no hidden randomness).
    for (const std::size_t n : {8u, 20u}) {  // 20 > kExactGroupingLimit
        const std::size_t cores = 6, width = 4;
        const std::vector<double> table = random_cost_table(n, 0xbeef + n);
        const GroupingResult a = min_weight_grouping(n, cores, width, table_cost(table));
        const GroupingResult b = min_weight_grouping(n, cores, width, table_cost(table));
        expect_valid_grouping(a, n, cores, width);
        EXPECT_EQ(a.groups, b.groups);
        EXPECT_DOUBLE_EQ(a.total_weight, b.total_weight);
    }
}

TEST(Grouping, HeuristicIsNoWorseThanSequentialFill) {
    // The greedy + local-search path must beat (or match) the naive
    // consecutive-chunks grouping on a structured instance.
    const std::size_t n = 16, cores = 4, width = 4;
    const std::vector<double> table = random_cost_table(n, 0x5eed);
    const GroupCost cost = table_cost(table);
    const GroupingResult got = min_weight_grouping(n, cores, width, cost);
    expect_valid_grouping(got, n, cores, width);
    std::vector<std::vector<int>> naive;
    for (std::size_t k = 0; k < n; k += width) {
        std::vector<int> g;
        for (std::size_t s = k; s < k + width; ++s) g.push_back(static_cast<int>(s));
        naive.push_back(std::move(g));
    }
    EXPECT_LE(got.total_weight, grouping_weight(naive, cost) + 1e-9);
}

TEST(Grouping, PrefersPartialGroupsWhenSolosAreCheap) {
    // Ample cores + expensive sharing: the optimum runs everyone alone.
    const std::size_t n = 5;
    const GroupCost cost = [](std::span<const int> group) {
        return group.size() == 1 ? 1.0 : 50.0 * static_cast<double>(group.size());
    };
    const GroupingResult got = min_weight_grouping(n, n, 4, cost);
    EXPECT_EQ(got.groups.size(), n);
    EXPECT_DOUBLE_EQ(got.total_weight, 5.0);
}

TEST(Grouping, GreedyStaysWithinFactorOfExactAtTheSwitchover) {
    // min_weight_grouping runs the exact subset DP up to N = 12 and the
    // greedy + local-search heuristic from N = 13 on.  Right at the
    // boundary the two are comparable *on the cost structure the scheduler
    // actually feeds them* — SYNPA's group predictor is additive in the
    // pairwise terms (Equation 1 superposition), not an arbitrary table —
    // so across a batch of random pairwise instances at N = 12 the
    // heuristic must stay within a fixed factor of the exact optimum (and
    // never beat it — the DP is optimal).  Crossing 12 -> 13 live tasks
    // therefore cannot cliff the allocation quality.
    constexpr double kFactor = 1.5;
    const std::size_t n = 12;
    for (const std::size_t width : {3u, 4u}) {
        for (const std::size_t cores : {(n + width - 1) / width, n / 2}) {
            for (std::uint64_t seed = 0; seed < 8; ++seed) {
                const WeightMatrix w =
                    random_matrix(n, 0x12b0 + 97 * seed + 13 * width + cores, 1.0, 6.0);
                Rng rng(seed + 31 * width, 0x5010);
                std::vector<double> solo(n);
                for (double& x : solo) x = rng.uniform(0.8, 2.0);
                const GroupCost cost = [&](std::span<const int> group) {
                    double total = 0.0;
                    for (std::size_t a = 0; a < group.size(); ++a)
                        for (std::size_t b = a + 1; b < group.size(); ++b)
                            total += w.get(static_cast<std::size_t>(group[a]),
                                           static_cast<std::size_t>(group[b]));
                    if (group.size() == 1)
                        total = solo[static_cast<std::size_t>(group[0])];
                    return total;
                };
                const GroupingResult exact = min_weight_grouping(n, cores, width, cost);
                const GroupingResult greedy =
                    min_weight_grouping_heuristic(n, cores, width, cost);
                expect_valid_grouping(greedy, n, cores, width);
                EXPECT_GE(greedy.total_weight, exact.total_weight - 1e-9)
                    << "heuristic beat the exact optimum?!";
                EXPECT_LE(greedy.total_weight, kFactor * exact.total_weight + 1e-9)
                    << "width=" << width << " cores=" << cores << " seed=" << seed;
            }
        }
    }
    // N = 13 (first heuristic-path size) stays feasible and deterministic.
    const std::vector<double> table = random_cost_table(13, 0x13);
    const GroupingResult a = min_weight_grouping(13, 4, 4, table_cost(table));
    const GroupingResult b = min_weight_grouping(13, 4, 4, table_cost(table));
    expect_valid_grouping(a, 13, 4, 4);
    EXPECT_EQ(a.groups, b.groups);
}

TEST(Grouping, RejectsInfeasibleInstances) {
    const GroupCost unit = [](std::span<const int>) { return 1.0; };
    EXPECT_THROW(min_weight_grouping(9, 2, 4, unit), std::invalid_argument);
    EXPECT_THROW(min_weight_grouping(4, 0, 4, unit), std::invalid_argument);
    EXPECT_THROW(min_weight_grouping(4, 2, 0, unit), std::invalid_argument);
    const GroupingResult empty = min_weight_grouping(0, 4, 2, unit);
    EXPECT_TRUE(empty.groups.empty());
    EXPECT_DOUBLE_EQ(empty.total_weight, 0.0);
}

}  // namespace
