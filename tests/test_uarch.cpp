// Tests for the simulator substrate: cache-sharing math, the DRAM queue,
// configuration, and chip-level invariants (counter identities, determinism,
// SMT slowdown, migration warmup, fetch-port contention).
#include <gtest/gtest.h>

#include <cstdlib>

#include "apps/instance.hpp"
#include "apps/spec_suite.hpp"
#include "model/categories.hpp"
#include "uarch/cache.hpp"
#include "uarch/chip.hpp"
#include "uarch/memory.hpp"
#include "uarch/platform.hpp"
#include "uarch/sim_config.hpp"

namespace {

using namespace synpa;
using namespace synpa::uarch;

// ---------- cache model ----------

TEST(Cache, ProportionalSharesSumToCapacity) {
    const std::vector<double> fp = {1.0, 3.0};
    const auto shares = proportional_shares(8.0, fp);
    EXPECT_DOUBLE_EQ(shares[0], 2.0);
    EXPECT_DOUBLE_EQ(shares[1], 6.0);
}

TEST(Cache, ZeroFootprintsGetFullCapacity) {
    const std::vector<double> fp = {0.0, 0.0};
    const auto shares = proportional_shares(8.0, fp);
    EXPECT_DOUBLE_EQ(shares[0], 8.0);
    EXPECT_DOUBLE_EQ(shares[1], 8.0);
}

TEST(Cache, NegativeFootprintThrows) {
    const std::vector<double> fp = {-1.0};
    EXPECT_THROW(proportional_shares(8.0, fp), std::invalid_argument);
}

TEST(Cache, CoverageBounds) {
    EXPECT_DOUBLE_EQ(coverage(32.0, 16.0), 1.0);  // fits fully
    EXPECT_DOUBLE_EQ(coverage(16.0, 32.0), 0.5);
    EXPECT_DOUBLE_EQ(coverage(16.0, 0.0), 1.0);  // no footprint
    EXPECT_GT(coverage(0.0, 32.0), 0.0);         // floored, not zero
}

TEST(Cache, MissMultiplierMonotoneInCoverage) {
    const double m_full = miss_multiplier(1.0, 0.85, 3.0);
    const double m_half = miss_multiplier(0.5, 0.85, 3.0);
    const double m_tiny = miss_multiplier(0.05, 0.85, 3.0);
    EXPECT_DOUBLE_EQ(m_full, 1.0);
    EXPECT_GT(m_half, m_full);
    EXPECT_GT(m_tiny, m_half);
    EXPECT_LE(m_tiny, 3.0);  // capped
}

TEST(Cache, SharedMultiplierIndexChecked) {
    const std::vector<double> fp = {1.0, 1.0};
    EXPECT_THROW(shared_cache_miss_multiplier(8.0, fp, 5, 0.85, 3.0), std::out_of_range);
    EXPECT_GE(shared_cache_miss_multiplier(8.0, fp, 0, 0.85, 3.0), 1.0);
}

// ---------- memory system ----------

TEST(Memory, IdleKeepsFactorAtOne) {
    SimConfig cfg;
    MemorySystem mem(cfg);
    mem.end_quantum(0, 10'000);
    EXPECT_DOUBLE_EQ(mem.queue_factor(), 1.0);
}

TEST(Memory, SaturationRaisesAndCapsFactor) {
    SimConfig cfg;
    MemorySystem mem(cfg);
    for (int i = 0; i < 20; ++i)
        mem.end_quantum(static_cast<std::uint64_t>(10'000 * cfg.mem_bw_accesses_per_cycle * 5),
                        10'000);
    EXPECT_GE(mem.queue_factor(), 1.4);
    EXPECT_LE(mem.queue_factor(), cfg.mem_queue_factor_cap);
}

TEST(Memory, ResetRestoresBaseline) {
    SimConfig cfg;
    MemorySystem mem(cfg);
    mem.end_quantum(100'000, 10'000);
    mem.reset();
    EXPECT_DOUBLE_EQ(mem.queue_factor(), 1.0);
}

// ---------- configuration ----------

TEST(Config, TableTwoDefaults) {
    const SimConfig cfg;
    EXPECT_EQ(cfg.dispatch_width, 4);
    EXPECT_EQ(cfg.rob_size, 128);
    EXPECT_EQ(cfg.iq_size, 60);
    EXPECT_EQ(cfg.load_buffer, 64);
    EXPECT_EQ(cfg.store_buffer, 36);
    EXPECT_DOUBLE_EQ(cfg.l1i_kb, 32.0);
    EXPECT_DOUBLE_EQ(cfg.l2_kb, 256.0);
    EXPECT_DOUBLE_EQ(cfg.llc_mb, 28.0);
    EXPECT_EQ(cfg.smt_ways, 2);
}

TEST(Config, RobSharePartitionsByActiveThreads) {
    // The window partitions by *running* threads, not the configured width:
    // a lone thread always gets the full ROB, even in SMT-4 BIOS mode.
    SimConfig cfg;
    EXPECT_EQ(cfg.rob_share(1), 128);
    EXPECT_EQ(cfg.rob_share(2), 64);
    cfg.smt_ways = 4;
    EXPECT_EQ(cfg.rob_share(1), 128);
    EXPECT_EQ(cfg.rob_share(2), 64);
    EXPECT_EQ(cfg.rob_share(3), 42);
    EXPECT_EQ(cfg.rob_share(4), 32);
}

TEST(Config, EnvOverride) {
    ::setenv("SYNPA_QUANTUM_CYCLES", "12345", 1);
    const SimConfig cfg = SimConfig::from_env();
    EXPECT_EQ(cfg.cycles_per_quantum, 12345u);
    ::unsetenv("SYNPA_QUANTUM_CYCLES");
}

TEST(Config, SmtWaysEnvOverrideIsClamped) {
    ::setenv("SYNPA_SMT_WAYS", "4", 1);
    EXPECT_EQ(SimConfig::from_env().smt_ways, 4);
    ::setenv("SYNPA_SMT_WAYS", "9", 1);  // beyond kMaxSmtWays
    EXPECT_EQ(SimConfig::from_env().smt_ways, kMaxSmtWays);
    ::setenv("SYNPA_SMT_WAYS", "0", 1);
    EXPECT_EQ(SimConfig::from_env().smt_ways, 1);
    ::unsetenv("SYNPA_SMT_WAYS");
}

TEST(Config, FingerprintSensitivity) {
    SimConfig a, b;
    EXPECT_EQ(config_fingerprint(a), config_fingerprint(b));
    b.mem_latency += 1;
    EXPECT_NE(config_fingerprint(a), config_fingerprint(b));
    b = a;
    b.cycles_per_quantum += 1;
    EXPECT_NE(config_fingerprint(a), config_fingerprint(b));
}

// ---------- chip ----------

SimConfig small_config(int cores = 1) {
    SimConfig cfg;
    cfg.cores = cores;
    cfg.cycles_per_quantum = 5'000;
    return cfg;
}

TEST(Chip, BindUnbindLifecycle) {
    Chip chip(small_config());
    apps::AppInstance t(1, apps::find_app("mcf"), 1);
    chip.bind(t, {.core = 0, .slot = 0});
    EXPECT_TRUE(chip.is_bound(1));
    EXPECT_EQ(chip.placement(1).core, 0);
    EXPECT_EQ(chip.bound_tasks().size(), 1u);
    chip.unbind(1);
    EXPECT_FALSE(chip.is_bound(1));
    EXPECT_THROW(chip.placement(1), std::logic_error);
}

TEST(Chip, SmtWidthBoundsSlots) {
    // SMT-2 chips reject slot 2; SMT-4 chips accept four threads per core
    // and report them all as co-runners of each other.
    Chip narrow(small_config());
    apps::AppInstance n1(1, apps::find_app("mcf"), 1);
    EXPECT_THROW(narrow.bind(n1, {.core = 0, .slot = 2}), std::out_of_range);

    SimConfig cfg = small_config();
    cfg.smt_ways = 4;
    Chip wide(cfg);
    std::vector<std::unique_ptr<apps::AppInstance>> tasks;
    const std::vector<std::string> names = {"mcf", "lbm_r", "leela_r", "nab_r"};
    for (int s = 0; s < 4; ++s) {
        tasks.push_back(
            std::make_unique<apps::AppInstance>(s + 1, apps::find_app(names[(std::size_t)s]),
                                                static_cast<std::uint64_t>(s + 1)));
        wide.bind(*tasks.back(), {.core = 0, .slot = s});
    }
    EXPECT_EQ(wide.core(0).active_threads(), 4);
    EXPECT_TRUE(wide.core(0).smt_active());
    wide.run_quantum();  // all four threads must make progress
    for (const auto& t : tasks) EXPECT_GT(t->insts_retired(), 0u);
}

TEST(Chip, BindErrors) {
    Chip chip(small_config());
    apps::AppInstance a(1, apps::find_app("mcf"), 1);
    apps::AppInstance b(2, apps::find_app("lbm_r"), 2);
    EXPECT_THROW(chip.bind(a, {.core = 5, .slot = 0}), std::out_of_range);
    chip.bind(a, {.core = 0, .slot = 0});
    EXPECT_THROW(chip.bind(a, {.core = 0, .slot = 1}), std::logic_error);  // double bind
    EXPECT_THROW(chip.bind(b, {.core = 0, .slot = 0}), std::logic_error);  // occupied
    EXPECT_THROW(chip.unbind(99), std::logic_error);
}

TEST(Chip, CycleAccountingIdentity) {
    // CPU_CYCLES must exactly equal full-dispatch + frontend + backend after
    // the three-step characterization, for any application.
    for (const char* app : {"mcf", "leela_r", "nab_r", "perlbench"}) {
        Chip chip(small_config());
        apps::AppInstance t(1, apps::find_app(app), 7);
        chip.bind(t, {.core = 0, .slot = 0});
        for (int q = 0; q < 5; ++q) chip.run_quantum();
        const auto b = model::characterize(t.counters(), 4);
        const double sum = b.categories[0] + b.categories[1] + b.categories[2];
        EXPECT_NEAR(sum, static_cast<double>(b.cycles), 1e-6) << app;
        EXPECT_EQ(b.cycles, chip.config().cycles_per_quantum * 5);
    }
}

TEST(Chip, DeterministicAcrossRuns) {
    auto run = [] {
        Chip chip(small_config());
        apps::AppInstance t(1, apps::find_app("leela_r"), 99);
        chip.bind(t, {.core = 0, .slot = 0});
        for (int q = 0; q < 4; ++q) chip.run_quantum();
        return t.counters();
    };
    const auto a = run();
    const auto b = run();
    for (std::size_t i = 0; i < pmu::kEventCount; ++i) {
        const auto e = static_cast<pmu::Event>(i);
        EXPECT_EQ(a.value(e), b.value(e)) << pmu::event_name(e);
    }
}

TEST(Chip, SmtSlowsBothThreadsDown) {
    // Any co-runner must cost some throughput vs isolated execution.
    auto isolated_ipc = [](const char* app) {
        Chip chip(small_config());
        apps::AppInstance t(1, apps::find_app(app), 5);
        chip.bind(t, {.core = 0, .slot = 0});
        for (int q = 0; q < 6; ++q) chip.run_quantum();
        return model::characterize(t.counters(), 4).ipc();
    };
    Chip chip(small_config());
    apps::AppInstance a(1, apps::find_app("mcf"), 5);
    apps::AppInstance b(2, apps::find_app("milc"), 6);
    chip.bind(a, {.core = 0, .slot = 0});
    chip.bind(b, {.core = 0, .slot = 1});
    for (int q = 0; q < 6; ++q) chip.run_quantum();
    EXPECT_LT(model::characterize(a.counters(), 4).ipc(), isolated_ipc("mcf"));
    EXPECT_LT(model::characterize(b.counters(), 4).ipc(), isolated_ipc("milc"));
}

TEST(Chip, MigrationTriggersWarmup) {
    Chip chip(small_config(2));
    apps::AppInstance t(1, apps::find_app("mcf"), 5);
    chip.bind(t, {.core = 0, .slot = 0});
    chip.run_quantum();
    chip.unbind(1);
    chip.bind(t, {.core = 1, .slot = 0});  // different core -> cold caches
    EXPECT_GT(t.warmup_multiplier(), 1.0);
}

TEST(Chip, SameCoreRebindIsFree) {
    Chip chip(small_config(2));
    apps::AppInstance t(1, apps::find_app("mcf"), 5);
    chip.bind(t, {.core = 0, .slot = 0});
    chip.run_quantum();
    chip.unbind(1);
    chip.bind(t, {.core = 0, .slot = 1});  // same core, other SMT slot
    EXPECT_DOUBLE_EQ(t.warmup_multiplier(), 1.0);
}

TEST(Chip, FrontendPairContention) {
    // Two frontend-hungry applications sharing the fetch port must stall
    // more on the frontend than one of them does next to a mostly-stalled
    // memory-bound thread.
    auto frontend_fraction = [](const char* partner) {
        SimConfig cfg = small_config();
        Chip chip(cfg);
        apps::AppInstance a(1, apps::find_app("gobmk"), 3);
        apps::AppInstance b(2, apps::find_app(partner), 4);
        chip.bind(a, {.core = 0, .slot = 0});
        chip.bind(b, {.core = 0, .slot = 1});
        for (int q = 0; q < 8; ++q) chip.run_quantum();
        return model::characterize(a.counters(), 4).fractions()[1];
    };
    EXPECT_GT(frontend_fraction("gobmk"), frontend_fraction("mcf"));
}

TEST(Chip, QuantaAndCyclesAdvance) {
    Chip chip(small_config());
    apps::AppInstance t(1, apps::find_app("nab_r"), 1);
    chip.bind(t, {.core = 0, .slot = 0});
    chip.run_quantum();
    chip.run_quantum();
    EXPECT_EQ(chip.quanta_elapsed(), 2u);
    EXPECT_EQ(chip.now(), 2 * chip.config().cycles_per_quantum);
}

TEST(Chip, TaskCountersThrowOnUnknown) {
    Chip chip(small_config());
    EXPECT_THROW(chip.task_counters(3), std::logic_error);
}

}  // namespace

// ---------- platform (multi-chip) ----------

namespace {

using synpa::uarch::Platform;
using synpa::uarch::validate_platform;

synpa::uarch::SimConfig platform_config(int chips, int cores = 2, int ways = 2) {
    synpa::uarch::SimConfig cfg;
    cfg.num_chips = chips;
    cfg.cores = cores;
    cfg.smt_ways = ways;
    cfg.cycles_per_quantum = 2'000;
    return cfg;
}

TEST(PlatformTest, GlobalCoreIdsMapChipMajor) {
    const Platform platform(platform_config(3, 4));
    EXPECT_EQ(platform.chip_count(), 3);
    EXPECT_EQ(platform.cores_per_chip(), 4);
    EXPECT_EQ(platform.core_count(), 12);
    EXPECT_EQ(platform.hw_contexts(), 24);
    EXPECT_EQ(platform.chip_of_core(0), 0);
    EXPECT_EQ(platform.chip_of_core(3), 0);
    EXPECT_EQ(platform.chip_of_core(4), 1);
    EXPECT_EQ(platform.chip_of_core(11), 2);
    EXPECT_EQ(platform.local_core(11), 3);
}

TEST(PlatformTest, BindPlacementAndValidationSpanChips) {
    Platform platform(platform_config(2));
    synpa::apps::AppInstance a(1, synpa::apps::find_app("mcf"), 1);
    synpa::apps::AppInstance b(2, synpa::apps::find_app("gobmk"), 2);
    platform.bind(a, {.core = 1, .slot = 0});   // chip 0
    platform.bind(b, {.core = 3, .slot = 1});   // chip 1
    validate_platform(platform);
    EXPECT_EQ(platform.placement(1).core, 1);
    EXPECT_EQ(platform.placement(2).core, 3);
    EXPECT_EQ(platform.bound_tasks().size(), 2u);
    EXPECT_TRUE(platform.chip(0).is_bound(1));
    EXPECT_TRUE(platform.chip(1).is_bound(2));
    EXPECT_THROW(platform.bind(a, {.core = 0, .slot = 0}), std::logic_error);
    synpa::apps::AppInstance c(3, synpa::apps::find_app("nab_r"), 3);
    EXPECT_THROW(platform.bind(c, {.core = 4, .slot = 0}), std::out_of_range);
    platform.unbind(1);
    platform.unbind(2);
    EXPECT_THROW(platform.placement(1), std::logic_error);
    EXPECT_EQ(platform.bound_tasks().size(), 0u);
}

TEST(PlatformTest, SingleChipMatchesDirectChipBitForBit) {
    // The whole refactor rests on this: a 1-chip platform must reproduce a
    // direct Chip run exactly (same counters after the same quanta).
    const synpa::uarch::SimConfig cfg = platform_config(1);
    synpa::uarch::Chip chip(cfg);
    Platform platform(cfg);
    synpa::apps::AppInstance t_chip(1, synpa::apps::find_app("mcf"), 9);
    synpa::apps::AppInstance t_plat(1, synpa::apps::find_app("mcf"), 9);
    chip.bind(t_chip, {.core = 0, .slot = 0});
    platform.bind(t_plat, {.core = 0, .slot = 0});
    for (int q = 0; q < 5; ++q) {
        chip.run_quantum();
        platform.run_quantum();
    }
    EXPECT_EQ(t_chip.insts_retired(), t_plat.insts_retired());
    EXPECT_EQ(platform.quanta_elapsed(), chip.quanta_elapsed());
    EXPECT_EQ(platform.now(), chip.now());
    EXPECT_EQ(platform.cross_chip_migrations(), 0u);
}

TEST(PlatformTest, ChipsHavePrivateLlcAndDram) {
    // A memory hog on chip 0 must not slow a co-resident of chip 1: each
    // chip owns its LLC and DRAM channel, so cross-chip isolation holds.
    const auto run_partnered = [](bool same_chip) {
        Platform platform(platform_config(2, 1, 2));  // 2 chips x 1 core
        synpa::apps::AppInstance victim(1, synpa::apps::find_app("leela_r"), 5);
        synpa::apps::AppInstance hog(2, synpa::apps::find_app("lbm_r"), 6);
        platform.bind(victim, {.core = 0, .slot = 0});
        platform.bind(hog, {.core = same_chip ? 0 : 1, .slot = same_chip ? 1 : 0});
        for (int q = 0; q < 8; ++q) platform.run_quantum();
        return victim.insts_retired();
    };
    EXPECT_GT(run_partnered(/*same_chip=*/false), run_partnered(/*same_chip=*/true));
}

TEST(PlatformTest, IntraChipMoveCostsLessThanCrossChipMove) {
    const auto progress_after_move = [](int to_core) {
        Platform platform(platform_config(2, 2, 2));
        synpa::apps::AppInstance t(1, synpa::apps::find_app("mcf"), 11);
        platform.bind(t, {.core = 0, .slot = 0});
        for (int q = 0; q < 6; ++q) platform.run_quantum();  // warm up
        platform.unbind(1);
        platform.bind(t, {.core = to_core, .slot = 0});
        const std::uint64_t before = t.insts_retired();
        for (int q = 0; q < 2; ++q) platform.run_quantum();
        return t.insts_retired() - before;
    };
    const std::uint64_t stay = progress_after_move(0);        // no move
    const std::uint64_t intra = progress_after_move(1);       // same chip
    const std::uint64_t cross = progress_after_move(2);       // other chip
    EXPECT_LE(intra, stay);
    EXPECT_LT(cross, intra);  // the cross-chip window is the expensive one
}

}  // namespace
