// Tests for the model module: the three-step characterization arithmetic,
// Equation 1 mechanics, model inversion (round-trip property), the trainer
// pipeline and the extended (ablation) characterization.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/instance.hpp"
#include "apps/spec_suite.hpp"
#include "common/rng.hpp"
#include "uarch/chip.hpp"
#include "model/categories.hpp"
#include "model/extended_model.hpp"
#include "model/interference_model.hpp"
#include "model/inversion.hpp"
#include "model/trainer.hpp"
#include "workloads/groups.hpp"

namespace {

using namespace synpa;
using namespace synpa::model;

pmu::CounterBank make_bank(std::uint64_t cycles, std::uint64_t insts, std::uint64_t fe,
                           std::uint64_t be) {
    pmu::CounterBank b;
    b.increment(pmu::Event::kCpuCycles, cycles);
    b.increment(pmu::Event::kInstSpec, insts);
    b.increment(pmu::Event::kStallFrontend, fe);
    b.increment(pmu::Event::kStallBackend, be);
    return b;
}

TEST(Characterize, StepArithmetic) {
    // 1000 cycles, 800 insts, 200 FE stalls, 300 BE stalls, width 4:
    //   Dc = 500, F-Dc = 200, Reveals = 300 -> BE total = 600.
    const auto b = characterize(make_bank(1000, 800, 200, 300), 4);
    EXPECT_DOUBLE_EQ(b.dispatch_cycles, 500.0);
    EXPECT_DOUBLE_EQ(b.full_dispatch_cycles, 200.0);
    EXPECT_DOUBLE_EQ(b.revealed_stalls, 300.0);
    EXPECT_DOUBLE_EQ(b.categories[0], 200.0);
    EXPECT_DOUBLE_EQ(b.categories[1], 200.0);
    EXPECT_DOUBLE_EQ(b.categories[2], 600.0);
}

TEST(Characterize, FractionsSumToOne) {
    const auto b = characterize(make_bank(1000, 800, 200, 300), 4);
    const auto f = b.fractions();
    EXPECT_NEAR(f[0] + f[1] + f[2], 1.0, 1e-12);
}

TEST(Characterize, FullDispatchClampedToDispatchCycles) {
    // More instructions than dispatch cycles could carry: F-Dc clamps.
    const auto b = characterize(make_bank(100, 4000, 0, 0), 4);
    EXPECT_DOUBLE_EQ(b.full_dispatch_cycles, 100.0);
    EXPECT_DOUBLE_EQ(b.revealed_stalls, 0.0);
}

TEST(Characterize, StallsClampedToCycles) {
    // Overlapping counters must never produce negative dispatch cycles.
    const auto b = characterize(make_bank(100, 10, 80, 80), 4);
    EXPECT_GE(b.dispatch_cycles, 0.0);
    const auto f = b.fractions();
    EXPECT_NEAR(f[0] + f[1] + f[2], 1.0, 1e-12);
}

TEST(Characterize, EmptyWindow) {
    const auto b = characterize(pmu::CounterBank{}, 4);
    EXPECT_EQ(b.cycles, 0u);
    EXPECT_DOUBLE_EQ(b.ipc(), 0.0);
}

TEST(Characterize, IpcComputed) {
    const auto b = characterize(make_bank(1000, 2500, 0, 0), 4);
    EXPECT_DOUBLE_EQ(b.ipc(), 2.5);
}

TEST(Model, PaperTableFourValues) {
    const InterferenceModel m = InterferenceModel::paper_table4();
    const auto& fd = m.coefficients(Category::kFullDispatch);
    EXPECT_DOUBLE_EQ(fd.alpha, 0.0072);
    EXPECT_DOUBLE_EQ(fd.beta, 0.9060);
    EXPECT_DOUBLE_EQ(fd.rho, 0.0314);
    const auto& be = m.coefficients(Category::kBackendStall);
    EXPECT_DOUBLE_EQ(be.gamma, 1.4391);
}

TEST(Model, PredictMatchesHandComputation) {
    CategoryCoefficients k{.alpha = 0.1, .beta = 1.2, .gamma = 0.3, .rho = 0.5};
    EXPECT_DOUBLE_EQ(k.predict(0.4, 0.6), 0.1 + 1.2 * 0.4 + 0.3 * 0.6 + 0.5 * 0.24);
}

TEST(Model, SlowdownIsCategorySum) {
    const InterferenceModel m = InterferenceModel::paper_table4();
    const CategoryVector a = {0.5, 0.2, 0.3};
    const CategoryVector b = {0.3, 0.3, 0.4};
    const auto pred = m.predict(a, b);
    EXPECT_NEAR(m.predict_slowdown(a, b), pred[0] + pred[1] + pred[2], 1e-12);
    // SMT execution costs at least as much as isolated in any sane model.
    EXPECT_GT(m.predict_slowdown(a, b), 1.0);
}

TEST(Model, ToStringMentionsEveryCategory) {
    const std::string s = InterferenceModel::paper_table4().to_string();
    for (const char* name : kCategoryNames) EXPECT_NE(s.find(name), std::string::npos);
}

// Round-trip property: forward-model a pair of isolated vectors, normalize
// to fractions, invert, and require the original vectors back.
class InversionRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(InversionRoundTrip, RecoversIsolatedFractions) {
    common::Rng rng(static_cast<std::uint64_t>(GetParam()), 0x1aa);
    // Random plausible model: beta-dominant, mild co-runner terms.
    std::array<CategoryCoefficients, kCategoryCount> coeffs{};
    for (auto& k : coeffs) {
        k.alpha = rng.uniform(0.0, 0.2);
        k.beta = rng.uniform(0.9, 1.4);
        k.gamma = rng.uniform(0.0, 0.4);
        k.rho = rng.uniform(0.0, 0.5);
    }
    const InterferenceModel m{coeffs};

    auto random_simplex = [&rng] {
        CategoryVector v{rng.uniform(0.05, 1.0), rng.uniform(0.05, 1.0),
                         rng.uniform(0.05, 1.0)};
        const double s = v[0] + v[1] + v[2];
        for (double& x : v) x /= s;
        return v;
    };
    const CategoryVector st_i = random_simplex();
    const CategoryVector st_j = random_simplex();

    const CategoryVector smt_i = m.predict(st_i, st_j);
    const CategoryVector smt_j = m.predict(st_j, st_i);
    const double si = smt_i[0] + smt_i[1] + smt_i[2];
    const double sj = smt_j[0] + smt_j[1] + smt_j[2];
    const CategoryVector fi = {smt_i[0] / si, smt_i[1] / si, smt_i[2] / si};
    const CategoryVector fj = {smt_j[0] / sj, smt_j[1] / sj, smt_j[2] / sj};

    const ModelInverter inverter(m);
    const InversionResult r = inverter.invert(fi, fj);
    ASSERT_TRUE(r.converged);
    for (std::size_t c = 0; c < kCategoryCount; ++c) {
        EXPECT_NEAR(r.st_i[c], st_i[c], 0.02) << "category " << c;
        EXPECT_NEAR(r.st_j[c], st_j[c], 0.02) << "category " << c;
    }
    EXPECT_NEAR(r.slowdown_i, si, 0.05);
    EXPECT_NEAR(r.slowdown_j, sj, 0.05);
}

INSTANTIATE_TEST_SUITE_P(RandomModels, InversionRoundTrip, ::testing::Range(0, 20));

TEST(Inversion, EstimatesStayOnSimplex) {
    const ModelInverter inverter(InterferenceModel::paper_table4());
    const InversionResult r = inverter.invert({0.1, 0.3, 0.6}, {0.2, 0.1, 0.7});
    const double si = r.st_i[0] + r.st_i[1] + r.st_i[2];
    const double sj = r.st_j[0] + r.st_j[1] + r.st_j[2];
    EXPECT_NEAR(si, 1.0, 1e-6);
    EXPECT_NEAR(sj, 1.0, 1e-6);
    for (double x : r.st_i) EXPECT_GE(x, 0.0);
    for (double x : r.st_j) EXPECT_GE(x, 0.0);
}

TEST(Inversion, DegenerateInputFallsBackGracefully) {
    const ModelInverter inverter(InterferenceModel::paper_table4());
    const InversionResult r = inverter.invert({0, 0, 0}, {0, 0, 0});
    const double si = r.st_i[0] + r.st_i[1] + r.st_i[2];
    EXPECT_NEAR(si, 1.0, 1e-6);  // projected, never NaN
    EXPECT_TRUE(std::isfinite(r.slowdown_i));
}

// ---------- trainer ----------

uarch::SimConfig train_config() {
    uarch::SimConfig cfg;
    cfg.cycles_per_quantum = 5'000;
    return cfg;
}

TEST(Trainer, IsolatedProfileInterpolation) {
    const IsolatedProfile prof =
        profile_isolated(apps::find_app("nab_r"), train_config(), 10, 3);
    EXPECT_EQ(prof.quanta().size(), 10u);
    EXPECT_GT(prof.total_instructions(), 0u);
    EXPECT_GT(prof.ipc(), 0.0);

    const std::uint64_t n = prof.total_instructions();
    EXPECT_TRUE(prof.covers(0, n));
    EXPECT_FALSE(prof.covers(0, n + 1));
    EXPECT_FALSE(prof.covers(5, 5));

    // Cycles are additive over adjacent ranges.
    const double whole = prof.cycles_for(0, n);
    const double split = prof.cycles_for(0, n / 2) + prof.cycles_for(n / 2, n);
    EXPECT_NEAR(whole, split, 1e-6);
    EXPECT_NEAR(whole, static_cast<double>(prof.total_cycles()), 1.0);

    // Categories are additive too, and fractions normalize.
    const auto cats = prof.categories_for(0, n);
    EXPECT_NEAR(cats[0] + cats[1] + cats[2], whole, 1.0);
    const auto f = prof.overall_fractions();
    EXPECT_NEAR(f[0] + f[1] + f[2], 1.0, 1e-9);
}

TEST(Trainer, PairSamplesAreWellFormed) {
    const uarch::SimConfig cfg = train_config();
    TrainerOptions opts;
    opts.isolated_quanta = 30;
    opts.pair_quanta = 10;
    const Trainer trainer(cfg, opts);
    const auto& a = apps::find_app("mcf");
    const auto& b = apps::find_app("nab_r");
    const auto pa = profile_isolated(a, cfg, 30, 100);
    const auto pb = profile_isolated(b, cfg, 30, 200);
    const auto samples = trainer.collect_pair_samples(a, b, pa, pb, 100, 200);
    ASSERT_GT(samples.size(), 4u);
    for (const TrainingSample& s : samples) {
        const double st_sum = s.st_self[0] + s.st_self[1] + s.st_self[2];
        EXPECT_NEAR(st_sum, 1.0, 0.05);  // isolated fractions
        const double slowdown = s.smt_per_st[0] + s.smt_per_st[1] + s.smt_per_st[2];
        EXPECT_GT(slowdown, 0.9);   // SMT cannot be much faster than isolated
        EXPECT_LT(slowdown, 4.0);   // and contention is bounded
    }
}

TEST(Trainer, FitRejectsTooFewSamples) {
    EXPECT_THROW(Trainer::fit({}, TrainerOptions{}), std::runtime_error);
}

TEST(Trainer, SmallTrainingRunProducesSaneModel) {
    TrainerOptions opts;
    opts.isolated_quanta = 24;
    opts.pair_quanta = 10;
    opts.threads = 1;
    const std::vector<std::string> apps = {"mcf", "nab_r", "gobmk", "bwaves"};
    const TrainingResult r = Trainer(train_config(), opts).train(apps);
    EXPECT_EQ(r.pair_runs, 10u);  // C(4,2) + 4 self-pairs
    EXPECT_GT(r.sample_count, 20u);
    EXPECT_EQ(r.profiles.size(), 4u);
    for (std::size_t c = 0; c < kCategoryCount; ++c) {
        // Own-behaviour must dominate each category.
        EXPECT_GT(r.model.coefficients(static_cast<Category>(c)).beta, 0.5);
        EXPECT_LT(r.mse[c], 0.2);
    }
}

// ---------- extended (ablation) characterization ----------

TEST(Extended, CategoriesSumToCycles) {
    uarch::SimConfig cfg = train_config();
    uarch::Chip chip(cfg);
    apps::AppInstance t(1, apps::find_app("leela_r"), 4);
    chip.bind(t, {.core = 0, .slot = 0});
    for (int q = 0; q < 4; ++q) chip.run_quantum();
    const ExtendedVector v = characterize_extended(t.counters(), cfg);
    double sum = 0.0;
    for (double x : v) sum += x;
    EXPECT_NEAR(sum, static_cast<double>(t.counters().value(pmu::Event::kCpuCycles)), 1e-6);
}

TEST(Extended, RefinesTheCoarseCategories) {
    uarch::SimConfig cfg = train_config();
    uarch::Chip chip(cfg);
    apps::AppInstance t(1, apps::find_app("mcf"), 4);
    chip.bind(t, {.core = 0, .slot = 0});
    for (int q = 0; q < 4; ++q) chip.run_quantum();
    const ExtendedVector v = characterize_extended(t.counters(), cfg);
    const auto coarse = characterize(t.counters(), cfg.dispatch_width);
    EXPECT_NEAR(v[0], coarse.categories[0], 1e-6);                    // full dispatch
    EXPECT_NEAR(v[1] + v[2], coarse.categories[1], 1e-6);             // FE split
    EXPECT_NEAR(v[3] + v[4] + v[5] + v[6] + v[7], coarse.categories[2], 1e-6);  // BE split
}

TEST(Extended, ProfileRunsEndToEnd) {
    const ExtendedProfile p =
        profile_isolated_extended(apps::find_app("bwaves"), train_config(), 6, 9);
    EXPECT_EQ(p.quanta.size(), 6u);
    EXPECT_GT(p.quanta.back().insts_end, 0u);
}

}  // namespace
